package scalablebulk

// One benchmark per table and figure of the paper's evaluation section
// (§5–§6). Each benchmark regenerates its table/figure through the shared
// Session (results are cached across benchmarks, so the whole suite costs
// one sweep of simulations) and prints the rows once, to stdout, the first
// time it runs — the same rows cmd/sbfig prints.
//
// Sizing: the default workload is 16 chunks/core at 64 processors (1024
// chunks of whole-problem work per application). Set SB_BENCH_CHUNKS to
// raise it for higher-fidelity regeneration.

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"scalablebulk/internal/core"
	"scalablebulk/internal/system"
)

var (
	benchMu      sync.Mutex
	benchSession *Session
	benchPrinted = map[string]bool{}
)

// benchS returns the shared session (built lazily under the mutex).
func benchS() *Session {
	benchMu.Lock()
	defer benchMu.Unlock()
	if benchSession == nil {
		chunks := 16
		if v := os.Getenv("SB_BENCH_CHUNKS"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				chunks = n
			}
		}
		benchSession = NewSession(chunks, 1, os.Stdout)
	}
	return benchSession
}

// runFigure regenerates a figure, printing its rows only on the first call.
func runFigure(b *testing.B, name string, gen func(s *Session) error) {
	b.Helper()
	s := benchS()
	for i := 0; i < b.N; i++ {
		// SetOut is race-clean: the session routes all rendering through the
		// configured writer under its own lock.
		benchMu.Lock()
		if benchPrinted[name] {
			s.SetOut(discardWriter{})
		} else {
			s.SetOut(os.Stdout)
			fmt.Printf("\n=== %s ===\n", name)
			benchPrinted[name] = true
		}
		benchMu.Unlock()
		if err := gen(s); err != nil {
			b.Fatal(err)
		}
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkTable2MachineThroughput measures raw simulator throughput on the
// Table 2 machine: simulated cycles per wall-second for a 64-processor
// ScalableBulk run of FFT.
func BenchmarkTable2MachineThroughput(b *testing.B) {
	prof, _ := AppByName("FFT")
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(64, ProtoScalableBulk)
		cfg.ChunksPerCore = 8
		res, err := Run(prof, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Cycles), "simcycles/op")
	}
}

// BenchmarkTable3Protocols runs one contended application under all four
// Table 3 protocols and reports each protocol's mean commit latency.
func BenchmarkTable3Protocols(b *testing.B) {
	s := benchS()
	for i := 0; i < b.N; i++ {
		for _, protocol := range Protocols {
			r, err := s.Result("Barnes", protocol, 64)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.MeanCommitLatency(), protocol+"_cycles")
		}
	}
}

// BenchmarkFig07SplashExecutionTime regenerates Figure 7: SPLASH-2
// execution-time breakdowns and speedups for all four protocols.
func BenchmarkFig07SplashExecutionTime(b *testing.B) {
	runFigure(b, "Figure 7", func(s *Session) error {
		for _, p := range Protocols {
			if err := s.Figure7(p); err != nil {
				return err
			}
		}
		return nil
	})
}

// BenchmarkFig08ParsecExecutionTime regenerates Figure 8 (PARSEC).
func BenchmarkFig08ParsecExecutionTime(b *testing.B) {
	runFigure(b, "Figure 8", func(s *Session) error {
		for _, p := range Protocols {
			if err := s.Figure8(p); err != nil {
				return err
			}
		}
		return nil
	})
}

// BenchmarkFig09SplashDirsPerCommit regenerates Figure 9.
func BenchmarkFig09SplashDirsPerCommit(b *testing.B) {
	runFigure(b, "Figure 9", func(s *Session) error { return s.Figure9() })
}

// BenchmarkFig10ParsecDirsPerCommit regenerates Figure 10.
func BenchmarkFig10ParsecDirsPerCommit(b *testing.B) {
	runFigure(b, "Figure 10", func(s *Session) error { return s.Figure10() })
}

// BenchmarkFig11SplashDirDistribution regenerates Figure 11.
func BenchmarkFig11SplashDirDistribution(b *testing.B) {
	runFigure(b, "Figure 11", func(s *Session) error { return s.Figure11() })
}

// BenchmarkFig12ParsecDirDistribution regenerates Figure 12.
func BenchmarkFig12ParsecDirDistribution(b *testing.B) {
	runFigure(b, "Figure 12", func(s *Session) error { return s.Figure12() })
}

// BenchmarkFig13CommitLatency regenerates Figure 13 and reports the
// headline all-application mean latencies per protocol at 64 processors
// (paper: ScalableBulk 91, TCC 411, SEQ 153, BulkSC 2954).
func BenchmarkFig13CommitLatency(b *testing.B) {
	runFigure(b, "Figure 13", func(s *Session) error { return s.Figure13() })
	means, err := benchS().MeanLatencyTable(64)
	if err != nil {
		b.Fatal(err)
	}
	for p, m := range means {
		b.ReportMetric(m, p+"_mean64")
	}
}

// BenchmarkFig14SplashBottleneckRatio regenerates Figure 14.
func BenchmarkFig14SplashBottleneckRatio(b *testing.B) {
	runFigure(b, "Figure 14", func(s *Session) error { return s.Figure14() })
}

// BenchmarkFig15ParsecBottleneckRatio regenerates Figure 15.
func BenchmarkFig15ParsecBottleneckRatio(b *testing.B) {
	runFigure(b, "Figure 15", func(s *Session) error { return s.Figure15() })
}

// BenchmarkFig16SplashChunkQueue regenerates Figure 16.
func BenchmarkFig16SplashChunkQueue(b *testing.B) {
	runFigure(b, "Figure 16", func(s *Session) error { return s.Figure16() })
}

// BenchmarkFig17ParsecChunkQueue regenerates Figure 17.
func BenchmarkFig17ParsecChunkQueue(b *testing.B) {
	runFigure(b, "Figure 17", func(s *Session) error { return s.Figure17() })
}

// BenchmarkFig18SplashTraffic regenerates Figure 18.
func BenchmarkFig18SplashTraffic(b *testing.B) {
	runFigure(b, "Figure 18", func(s *Session) error { return s.Figure18() })
}

// BenchmarkFig19ParsecTraffic regenerates Figure 19.
func BenchmarkFig19ParsecTraffic(b *testing.B) {
	runFigure(b, "Figure 19", func(s *Session) error { return s.Figure19() })
}

// BenchmarkSquashClassification regenerates the §6.1 squash statistics
// (paper: 1.5% data-conflict squashes, 2.3% aliasing squashes at 64p).
func BenchmarkSquashClassification(b *testing.B) {
	runFigure(b, "Squash classification (§6.1)", func(s *Session) error { return s.SquashSummary() })
}

// --- Ablations (design choices DESIGN.md calls out) ---

// ablationRun runs Barnes at 64 processors with a tweaked config.
func ablationRun(b *testing.B, mutate func(*Config)) *Result {
	b.Helper()
	prof, _ := AppByName("Barnes")
	cfg := DefaultConfig(64, ProtoScalableBulk)
	cfg.ChunksPerCore = 12
	mutate(&cfg)
	res, err := Run(prof, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationOCI compares ScalableBulk with and without Optimistic
// Commit Initiation (§3.3): OCI removes the failed group's formation and
// failure delivery from the winning commit's critical path.
func BenchmarkAblationOCI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := ablationRun(b, func(c *Config) {})
		without := ablationRun(b, func(c *Config) { c.Protocol = ProtoNoOCI })
		b.ReportMetric(with.MeanCommitLatency(), "oci_cycles")
		b.ReportMetric(without.MeanCommitLatency(), "nooci_cycles")
		b.ReportMetric(float64(with.Cycles), "oci_exec")
		b.ReportMetric(float64(without.Cycles), "nooci_exec")
	}
}

// BenchmarkAblationPriorityRotation compares the baseline lowest-ID leader
// policy against §3.2.2's rotating priorities.
func BenchmarkAblationPriorityRotation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := ablationRun(b, func(c *Config) {})
		rot := ablationRun(b, func(c *Config) {
			sb := core.DefaultConfig()
			sb.RotationInterval = 10000
			c.ProtoOptions = sb
		})
		b.ReportMetric(base.MeanCommitLatency(), "fixed_cycles")
		b.ReportMetric(rot.MeanCommitLatency(), "rotating_cycles")
	}
}

// BenchmarkAblationStarvationMAX sweeps the §3.2.2 MAX threshold.
func BenchmarkAblationStarvationMAX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, max := range []int{4, 12, 64} {
			r := ablationRun(b, func(c *Config) {
				sb := core.DefaultConfig()
				sb.MaxSquashes = max
				c.ProtoOptions = sb
			})
			b.ReportMetric(float64(r.Cycles), fmt.Sprintf("max%d_exec", max))
			b.ReportMetric(float64(r.Proto.Stats()["fail_reserved"]), fmt.Sprintf("max%d_resv", max))
		}
	}
}

// BenchmarkAblationContention compares runs with and without per-link NoC
// contention modeling.
func BenchmarkAblationContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := ablationRun(b, func(c *Config) {})
		without := ablationRun(b, func(c *Config) { c.Contention = false })
		b.ReportMetric(with.MeanCommitLatency(), "contended_cycles")
		b.ReportMetric(without.MeanCommitLatency(), "ideal_cycles")
	}
}

// BenchmarkAblationChunkSize reproduces the paper's §2.2 argument: "with
// chunk sizes one order of magnitude smaller than Scalable TCC, chunk
// commit is more frequent, and its overhead is harder to hide". Growing the
// chunks (towards Scalable TCC's software-defined transactions) makes TCC's
// per-directory serialization vanish; at the paper's 2000 instructions it
// is plainly visible.
func BenchmarkAblationChunkSize(b *testing.B) {
	prof, _ := AppByName("Radix")
	for i := 0; i < b.N; i++ {
		for _, instr := range []int{2000, 8000, 32000} {
			big := prof
			big.ChunkInstr = instr
			cfg := DefaultConfig(64, ProtoTCC)
			// Same total instructions: fewer, bigger chunks.
			cfg.ChunksPerCore = 12 * 2000 / instr
			if cfg.ChunksPerCore < 1 {
				cfg.ChunksPerCore = 1
			}
			res, err := Run(big, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.MeanCommitLatency(), fmt.Sprintf("tcc%d_lat", instr))
			b.ReportMetric(res.Coll.MeanQueueLength(), fmt.Sprintf("tcc%d_queue", instr))
		}
	}
}

// BenchmarkAblationSignatureAliasing reports the squash mix, isolating the
// signature-aliasing cost the paper quantifies in §6.1.
func BenchmarkAblationSignatureAliasing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := ablationRun(b, func(c *Config) {})
		b.ReportMetric(float64(r.Coll.SquashTrueConflict), "true_squash")
		b.ReportMetric(float64(r.Coll.SquashAliasing), "alias_squash")
	}
}

var _ = system.Protocols // keep import for ablation visibility
