module scalablebulk

go 1.22
