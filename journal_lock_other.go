//go:build !unix

package scalablebulk

import "os"

// lockJournalFile is a no-op on platforms without flock: journal sharing
// protection degrades to the fingerprint verification every Lookup performs.
func lockJournalFile(*os.File) error { return nil }
