package scalablebulk

import (
	"bytes"
	"strings"
	"testing"
)

// TestDefaultConfigMatchesTable2 pins the paper's Table 2 parameters.
func TestDefaultConfigMatchesTable2(t *testing.T) {
	cfg := DefaultConfig(64, ProtoScalableBulk)
	if cfg.Cores != 64 {
		t.Error("cores")
	}
	if cfg.LinkLatency != 7 {
		t.Error("interconnect link latency must be 7 cycles")
	}
	if cfg.MemLatency != 300 {
		t.Error("memory roundtrip must be 300 cycles")
	}
	if cfg.L1.SizeBytes != 32<<10 || cfg.L1.Assoc != 4 {
		t.Error("L1 must be 32KB/4-way")
	}
	if cfg.L2.SizeBytes != 512<<10 || cfg.L2.Assoc != 8 {
		t.Error("L2 must be 512KB/8-way")
	}
	if cfg.ProtoOptions != nil {
		t.Error("DefaultConfig leaves ProtoOptions nil (registry defaults apply)")
	}
	if !IsProtocol(ProtoScalableBulk) || !IsProtocol(ProtoNoOCI) {
		t.Error("ScalableBulk and its OCI-off ablation must be registered")
	}
}

func TestEighteenApps(t *testing.T) {
	if len(Splash2()) != 11 || len(Parsec()) != 7 || len(Apps()) != 18 {
		t.Fatalf("apps: %d SPLASH-2, %d PARSEC", len(Splash2()), len(Parsec()))
	}
	if _, ok := AppByName("Canneal"); !ok {
		t.Fatal("AppByName broken")
	}
}

func TestRunSmoke(t *testing.T) {
	prof, _ := AppByName("FFT")
	cfg := DefaultConfig(8, ProtoScalableBulk)
	cfg.ChunksPerCore = 4
	res, err := Run(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChunksCommitted != 32 {
		t.Fatalf("committed %d", res.ChunksCommitted)
	}
}

func TestSessionCachesRuns(t *testing.T) {
	s := NewSession(2, 1, nil)
	a, err := s.Result("LU", ProtoScalableBulk, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Result("LU", ProtoScalableBulk, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("session did not cache the run")
	}
}

// TestFigureGenerators runs each figure generator on a two-app session and
// sanity-checks the emitted rows. (The full 18-app regeneration is the
// benchmark suite's job.)
func TestFigureGenerators(t *testing.T) {
	var buf bytes.Buffer
	s := NewSession(4, 1, &buf)
	// Restrict via direct calls on small subsets where figure API allows;
	// the dispatcher runs the full set, so use the cheapest figure ids.
	if err := s.Figure9(); err != nil {
		t.Fatal(err)
	}
	if err := s.Figure11(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 9", "Radix_64", "AVERAGE_32", "Figure 11"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFigureDispatcherRejectsUnknown(t *testing.T) {
	s := NewSession(1, 1, nil)
	if err := s.Figure(42); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if len(FigureIDs()) != 13 {
		t.Fatalf("FigureIDs = %v", FigureIDs())
	}
}

func TestSortedAppsHelper(t *testing.T) {
	a := sortedApps()
	if len(a) != 18 || a[0] > a[1] {
		t.Fatalf("sortedApps broken: %v", a)
	}
}

// TestPrefetchParallel populates a tiny session from multiple goroutines
// and checks the figures then run entirely from cache (and match a
// serially-built session — determinism is unaffected by parallelism).
func TestPrefetchParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel prefetch sweep")
	}
	par := NewSession(2, 1, nil)
	if err := par.Prefetch(4); err != nil {
		t.Fatal(err)
	}
	ser := NewSession(2, 1, nil)
	a, err := par.Result("LU", ProtoTCC, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ser.Result("LU", ProtoTCC, 32)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Traffic.Messages != b.Traffic.Messages {
		t.Fatalf("parallel prefetch changed results: %d/%d vs %d/%d",
			a.Cycles, a.Traffic.Messages, b.Cycles, b.Traffic.Messages)
	}
}
