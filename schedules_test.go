package scalablebulk

// Regression corpus replay: every schedule under testdata/schedules/ must
// reproduce exactly what it records — clean runs stay clean (bit-identical
// final digest), documented-dependence witnesses keep reproducing their
// violation. Each file's note says which historic bug or dependence it pins;
// a failure here means a protocol change altered behavior under that
// interleaving.

import (
	"path/filepath"
	"testing"

	"scalablebulk/internal/explore"
)

func TestScheduleCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "schedules", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no schedules under testdata/schedules — the corpus is part of the suite")
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			s, err := explore.LoadSchedule(path)
			if err != nil {
				t.Fatal(err)
			}
			if s.Expect == nil {
				t.Fatal("corpus schedules must carry an expectation")
			}
			if s.Note == "" {
				t.Fatal("corpus schedules must explain themselves in a note")
			}
			rr, err := s.Replay()
			if err != nil {
				t.Errorf("did not reproduce: %v\nnote: %s", err, s.Note)
				if rr != nil && rr.Dump != "" {
					t.Logf("machine state:\n%s", rr.Dump)
				}
			}
		})
	}
}
