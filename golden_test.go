package scalablebulk

// Golden fingerprint pinning: the protocol-registry refactor (and any future
// refactor of the commit-engine kernel) must be behavior-preserving, bit for
// bit. The fingerprints under testdata/goldens were generated from the
// pre-registry switch-based wiring; every registered paper protocol plus the
// OCI-off ablation must keep reproducing them exactly at 16 and 64 cores.
//
// Regenerate (only when a change is *intended* to move results) with:
//
//	go test -run TestGoldenFingerprints -update .

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGoldens = flag.Bool("update", false, "rewrite the golden fingerprint files")

// goldenPoints is the pinned matrix: every paper protocol plus the OCI-off
// variant, at 16 and 64 cores.
func goldenPoints() []string {
	return append(append([]string(nil), Protocols...), ProtoNoOCI)
}

func goldenPath(protocol string, cores int) string {
	return filepath.Join("testdata", "goldens", fmt.Sprintf("%s-%d.txt", protocol, cores))
}

// TestGoldenFingerprints compares every protocol × {16,64} fingerprint
// against its pinned pre-refactor value.
func TestGoldenFingerprints(t *testing.T) {
	goldenMatrix(t, "Barnes", func(protocol string, cores int) string {
		return goldenPath(protocol, cores)
	})
}

// TestGoldenZipfFingerprints pins the zipf adversarial workload the same way:
// every protocol × {16,64} under the hot-line conflict storm must keep
// reproducing its recorded fingerprint bit for bit, so neither the workload
// registry nor the generator family can drift silently.
func TestGoldenZipfFingerprints(t *testing.T) {
	goldenMatrix(t, "zipf", func(protocol string, cores int) string {
		return filepath.Join("testdata", "goldens", fmt.Sprintf("zipf-%s-%d.txt", protocol, cores))
	})
}

func goldenMatrix(t *testing.T, app string, path func(protocol string, cores int) string) {
	const seed = 7
	for _, protocol := range goldenPoints() {
		for _, cores := range []int{16, 64} {
			protocol, cores := protocol, cores
			t.Run(fmt.Sprintf("%s/%d", protocol, cores), func(t *testing.T) {
				got := serialFingerprint(t, app, protocol, cores, seed)
				p := path(protocol, cores)
				if *updateGoldens {
					if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(p, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(p)
				if err != nil {
					t.Fatalf("missing golden (run with -update to create): %v", err)
				}
				if got != string(want) {
					t.Errorf("fingerprint drifted from pinned golden %s:\n--- want\n%s--- got\n%s",
						p, want, got)
				}
			})
		}
	}
}
