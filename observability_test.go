package scalablebulk

import (
	"sync"
	"testing"
	"time"

	"scalablebulk/internal/metrics"
	"scalablebulk/internal/sig"
)

// TestSweepProgressAndMetrics drives a small sweep with the heartbeat and a
// metrics registry attached: the final heartbeat must report completion with
// a fingerprint, and the registry must hold the folded-in run counters plus
// the live sweep gauges.
func TestSweepProgressAndMetrics(t *testing.T) {
	s := NewSession(1, 1, nil)
	s.ProgressInterval = time.Millisecond
	var mu sync.Mutex
	var beats []SweepProgress
	s.OnProgress = func(p SweepProgress) {
		mu.Lock()
		beats = append(beats, p)
		mu.Unlock()
	}
	reg := metrics.NewRegistry()
	s.Metrics = reg

	points := []Point{
		{App: "FFT", Protocol: ProtoScalableBulk, Cores: 4},
		{App: "Radix", Protocol: ProtoScalableBulk, Cores: 4},
	}
	if err := s.SweepList(points, 2); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(beats) == 0 {
		t.Fatal("no heartbeats delivered")
	}
	last := beats[len(beats)-1]
	if !last.Final {
		t.Fatalf("last heartbeat not final: %+v", last)
	}
	if last.Done != 2 || last.Total != 2 || last.Failed != 0 {
		t.Fatalf("final heartbeat = %+v, want done=2 total=2 failed=0", last)
	}
	if last.LastFingerprint == "" || last.LastPoint.App == "" {
		t.Fatalf("final heartbeat lacks last-point identity: %+v", last)
	}
	if last.Elapsed <= 0 {
		t.Fatalf("final heartbeat has no elapsed time: %+v", last)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["runs_total"]; got != 2 {
		t.Fatalf("runs_total = %d, want 2", got)
	}
	if got := snap.Counters["chunks_committed_total"]; got != 2*4*16 {
		t.Fatalf("chunks_committed_total = %d, want %d", got, 2*4*16)
	}
	if got := snap.Gauges["sweep_done"]; got != 2 {
		t.Fatalf("sweep_done gauge = %v, want 2", got)
	}
	if snap.Histograms["commit_latency_cycles"].Count == 0 {
		t.Fatal("commit latency histogram empty after two runs")
	}
}

// TestCrashBundleCarriesFlightRecorder checks the flight recorder tail
// travels from a panic inside a traced run, through the *RunPanic, into the
// point's crash report.
func TestCrashBundleCarriesFlightRecorder(t *testing.T) {
	s := NewSession(1, 1, nil)
	s.Configure = func(cfg *Config) {
		cfg.FlightRecorder = 32
		cfg.OnApplyWrite = func(sig.Line, int) { panic("injected for flight-recorder test") }
	}
	_, err := s.Result("FFT", ProtoScalableBulk, 4)
	ce, ok := err.(*CrashError)
	if !ok {
		t.Fatalf("got %v, want *CrashError", err)
	}
	if n := len(ce.Report.FlightRecorder); n == 0 || n > 32 {
		t.Fatalf("crash report flight recorder tail has %d lines, want 1..32", n)
	}
}
