package scalablebulk

// Golden-trace determinism tests: the simulator's contract is that a
// (config, seed) pair fully determines every measurement, bit for bit,
// regardless of process, goroutine scheduling, or whether results were
// produced serially or by the parallel sweep engine. These tests catch any
// map-iteration or goroutine-order leak into results.

import (
	"bytes"
	"fmt"
	"testing"
)

// detChunks sizes the determinism runs: TotalWork = 64 × detChunks chunks
// spread over the machine, small enough to keep the matrix fast.
const detChunks = 1

// serialFingerprint runs one point exactly the way Session.run does and
// fingerprints it.
func serialFingerprint(t *testing.T, app, protocol string, cores int, seed int64) string {
	return fingerprintWith(t, app, protocol, cores, 0, seed)
}

// fingerprintWith is serialFingerprint with an explicit engine choice:
// shards = 0 runs the serial calendar, N > 0 the sharded engine.
func fingerprintWith(t *testing.T, app, protocol string, cores, shards int, seed int64) string {
	t.Helper()
	cfg := DefaultConfig(cores, protocol)
	cfg.Seed = seed
	cfg.Shards = shards
	prof, ok := AppByName(app)
	if !ok {
		// Registered workload sources (the adversarial family) fingerprint
		// under their own name, exactly as Session.run resolves them.
		if prof, ok = WorkloadProfile(app); !ok {
			t.Fatalf("unknown app or workload %q", app)
		}
		cfg.Workload = app
	}
	r, err := RunScaled(prof, cfg, 64*detChunks)
	if err != nil {
		t.Fatalf("%s/%s/%d shards=%d: %v", app, protocol, cores, shards, err)
	}
	return ResultFingerprint(r)
}

// TestDeterminismShardedEveryProtocol is the tentpole gate of the sharded
// engine: every registered protocol (variants included) × every registered
// workload source, run serially and at Shards ∈ {2, 4, 8}, must produce
// byte-identical ResultFingerprints — results are independent of the shard
// count and of OS scheduling.
func TestDeterminismShardedEveryProtocol(t *testing.T) {
	const cores, seed = 16, 7
	apps := []string{"Barnes", "FFT"}
	for _, w := range RegisteredWorkloads() {
		if w.Name != "synthetic" {
			apps = append(apps, w.Name)
		}
	}
	for _, p := range RegisteredProtocols() {
		for _, app := range apps {
			protocol, app := p.Name, app
			t.Run(fmt.Sprintf("%s/%s", protocol, app), func(t *testing.T) {
				t.Parallel()
				want := fingerprintWith(t, app, protocol, cores, 0, seed)
				for _, shards := range []int{2, 4, 8} {
					if got := fingerprintWith(t, app, protocol, cores, shards, seed); got != want {
						t.Errorf("shards=%d differs from serial:\n--- serial\n%s--- shards=%d\n%s",
							shards, want, shards, got)
					}
				}
			})
		}
	}
}

// TestDeterminismEveryProtocol runs every protocol at 16 and 64 processors
// with a fixed seed three ways — serial, serial again, and through a
// parallel sweep — and requires byte-identical fingerprints.
func TestDeterminismEveryProtocol(t *testing.T) {
	const app, seed = "Barnes", 7

	// Parallel path: one session, all points populated by a 4-worker sweep.
	par := NewSession(detChunks, seed, nil)
	var pts []Point
	for _, protocol := range Protocols {
		for _, cores := range []int{16, 64} {
			pts = append(pts, Point{app, protocol, cores})
		}
	}
	if err := par.SweepList(pts, 4); err != nil {
		t.Fatal(err)
	}

	for _, protocol := range Protocols {
		for _, cores := range []int{16, 64} {
			name := fmt.Sprintf("%s/%d", protocol, cores)
			first := serialFingerprint(t, app, protocol, cores, seed)
			again := serialFingerprint(t, app, protocol, cores, seed)
			if first != again {
				t.Errorf("%s: two serial runs differ:\n--- run 1\n%s--- run 2\n%s", name, first, again)
			}
			r, err := par.Result(app, protocol, cores)
			if err != nil {
				t.Fatalf("%s: sweep result: %v", name, err)
			}
			if got := ResultFingerprint(r); got != first {
				t.Errorf("%s: parallel sweep differs from serial:\n--- serial\n%s--- sweep\n%s", name, first, got)
			}
		}
	}
}

// TestDeterminismFigureOutput renders figures from a serially-populated
// session and from a session populated by a parallel sweep, and requires
// byte-identical output.
func TestDeterminismFigureOutput(t *testing.T) {
	render := func(s *Session) string {
		var buf bytes.Buffer
		s.SetOut(&buf)
		if err := s.Figure9(); err != nil {
			t.Fatal(err)
		}
		if err := s.Figure11(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	// The points Figures 9 and 11 consume.
	var pts []Point
	for _, p := range Splash2() {
		for _, cores := range []int{32, 64} {
			pts = append(pts, Point{p.Name, ProtoScalableBulk, cores})
		}
	}

	serial := NewSession(detChunks, 3, nil)
	serialOut := render(serial) // Result() calls run points one at a time

	swept := NewSession(detChunks, 3, nil)
	if err := swept.SweepList(pts, 4); err != nil {
		t.Fatal(err)
	}
	sweptOut := render(swept) // all points come from the sweep-filled cache

	if serialOut != sweptOut {
		t.Errorf("figure output differs between serial and swept sessions:\n--- serial\n%s--- swept\n%s",
			serialOut, sweptOut)
	}
	if len(serialOut) == 0 {
		t.Error("figure render produced no output")
	}
}

// TestSweepSingleFlight checks that concurrent requests for one point share
// a single simulation: after a wide sweep over a duplicated point list the
// session must have run each unique point exactly once (observable as a
// stable fingerprint and no error).
func TestSweepSingleFlight(t *testing.T) {
	s := NewSession(detChunks, 5, nil)
	pts := make([]Point, 32)
	for i := range pts {
		pts[i] = Point{"FFT", ProtoScalableBulk, 16} // same point 32 times
	}
	if err := s.SweepList(pts, 8); err != nil {
		t.Fatal(err)
	}
	r1, err := s.Result("FFT", ProtoScalableBulk, 16)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Result("FFT", ProtoScalableBulk, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("cache returned different Result pointers for one point")
	}
	if got, want := ResultFingerprint(r1), serialFingerprint(t, "FFT", ProtoScalableBulk, 16, 5); got != want {
		t.Errorf("swept result differs from serial:\n--- serial\n%s--- swept\n%s", want, got)
	}
}
