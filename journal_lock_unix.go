//go:build unix

package scalablebulk

import (
	"errors"
	"os"
	"syscall"
)

// lockJournalFile takes an exclusive, non-blocking flock on the journal
// file. The lock lives and dies with the file descriptor: it is released by
// Journal.Close and — crucially for kill-and-resume — by the kernel when the
// holding process dies, even via SIGKILL, so there is never a stale lock to
// clean up. A contended lock reports ErrJournalLocked.
func lockJournalFile(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if errors.Is(err, syscall.EWOULDBLOCK) {
		return ErrJournalLocked
	}
	return err
}
