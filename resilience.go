package scalablebulk

// Execution-resilience support for sweeps and soaks: per-point crash bundles
// (a panicking point becomes a JSON report instead of killing the sweep) and
// a JSONL checkpoint journal of completed points, fingerprint-verified on
// load so Session.Resume can skip verified-complete work and an interrupted
// sweep still produces byte-identical figure output. See DESIGN.md §10.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"time"

	"scalablebulk/internal/event"
	"scalablebulk/internal/fault"
	"scalablebulk/internal/mesh"
	"scalablebulk/internal/protocol"
	"scalablebulk/internal/stats"
	"scalablebulk/internal/system"
	"scalablebulk/internal/workload"
)

// configSignature canonicalizes every result-determining Config field. The
// journal keys entries by its hash, so a journal is only reused against the
// exact machine, workload sizing, seed and fault schedule that produced it.
// MaxCycles and RunTimeout are deliberately excluded: they are budgets, and
// the measurements of a run that completed do not depend on them. The trace
// fields (TraceSink, FlightRecorder, TraceReads) are excluded too: tracing
// observes a run without perturbing its results, so a traced run may reuse an
// untraced run's journal entry and vice versa.
func configSignature(cfg Config) string {
	faults := "off"
	if cfg.Faults.Enabled() {
		faults = cfg.Faults.Name
	}
	// Resolve nil ProtoOptions to the registry default so an explicit
	// default-valued option block and an omitted one hash identically.
	opts := cfg.ProtoOptions
	if opts == nil {
		if d, ok := protocol.Lookup(cfg.Protocol); ok {
			opts = d.DefaultOptions()
		}
	}
	// "" and "synthetic" are the same source; hash them identically.
	wl := cfg.Workload
	if wl == "" {
		wl = workload.SourceName
	}
	return fmt.Sprintf(
		"v3 cores=%d proto=%s wl=%s chunks=%d warmup=%d seed=%d link=%d mem=%d dir=%d cont=%t l1=%d/%d l2=%d/%d opts=%+v faults=%s fseed=%d check=%t",
		cfg.Cores, cfg.Protocol, wl, cfg.ChunksPerCore, cfg.WarmupChunks, cfg.Seed,
		cfg.LinkLatency, cfg.MemLatency, cfg.DirLookup, cfg.Contention,
		cfg.L1.SizeBytes, cfg.L1.Assoc, cfg.L2.SizeBytes, cfg.L2.Assoc,
		opts, faults, cfg.FaultSeed, cfg.Check)
}

// ConfigHash is the short hex digest of the config's canonical signature,
// used as the journal key alongside the point.
func ConfigHash(cfg Config) string {
	h := sha256.Sum256([]byte(configSignature(cfg)))
	return hex.EncodeToString(h[:8])
}

func fingerprintHash(fp string) string {
	h := sha256.Sum256([]byte(fp))
	return hex.EncodeToString(h[:])
}

// FingerprintSHA is the SHA-256 hex digest of a run's ResultFingerprint —
// the form journals store and recorded workload traces embed, so a replayed
// run can be verified against the recording without keeping the full
// fingerprint text.
func FingerprintSHA(r *Result) string { return fingerprintHash(ResultFingerprint(r)) }

// CrashReport is the crash-bundle schema: everything needed to reproduce and
// diagnose one panicking sweep point. Written as JSON under the crash
// directory while the remaining points keep running.
type CrashReport struct {
	Time         string `json:"time"`
	App          string `json:"app"`
	Protocol     string `json:"protocol"`
	Cores        int    `json:"cores"`
	Seed         int64  `json:"seed"`
	FaultProfile string `json:"fault_profile,omitempty"`
	FaultSeed    int64  `json:"fault_seed,omitempty"`
	ConfigHash   string `json:"config_hash"`
	// Corr is the farm correlation ID of the sweep that ran the point, when
	// the crash happened under a farm lease — the grep key tying this bundle
	// to the client log, server event log and journal entry.
	Corr        string              `json:"corr,omitempty"`
	Cycle       event.Time          `json:"cycle_reached,omitempty"`
	Panic       string              `json:"panic"`
	MachineDump string              `json:"machine_dump,omitempty"` // truncated (system.MaxDumpLines)
	Stack       string              `json:"stack"`
	Attempts    []system.RunAttempt `json:"attempts,omitempty"`
	// FlightRecorder is the trace ring's tail (oldest first) when the run had
	// Config.FlightRecorder enabled: the last events before the crash.
	FlightRecorder []string `json:"flight_recorder,omitempty"`
}

// NewCrashReport builds the crash bundle for a panic value recovered while
// running point p under cfg. If the panic unwound out of the simulator it
// arrives wrapped in *system.RunPanic, which carries the simulated cycle
// reached, the truncated machine dump and the original stack; a bare value
// gets the recovery site's stack instead.
func NewCrashReport(p Point, cfg Config, recovered any) *CrashReport {
	cr := &CrashReport{
		Time: time.Now().UTC().Format(time.RFC3339),
		App:  p.App, Protocol: p.Protocol, Cores: p.Cores,
		Seed:       cfg.Seed,
		ConfigHash: ConfigHash(cfg),
		Panic:      fmt.Sprint(recovered),
		Stack:      string(debug.Stack()),
	}
	if cfg.Faults.Enabled() {
		cr.FaultProfile = cfg.Faults.Name
		cr.FaultSeed = cfg.FaultSeed
	}
	if rp, ok := recovered.(*system.RunPanic); ok {
		cr.Cycle = rp.Cycle
		cr.MachineDump = rp.Dump
		cr.Stack = rp.Stack
		cr.Panic = fmt.Sprint(rp.Value)
		cr.FlightRecorder = rp.Flight
	}
	return cr
}

// WriteCrashBundle writes the report as an indented JSON file under dir
// (created if needed) and returns its path.
func WriteCrashBundle(dir string, r *CrashReport) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, crashBundleName(r, time.Now().UnixNano()))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// crashBundleName builds a bundle filename that cannot collide across
// distinct points: sanitizeName is lossy ("a/b" and "a_b" both sanitize to
// "a_b"), so the readable prefix is followed by a short digest of the
// unsanitized point identity plus the config hash, which distinguishes
// points the sanitized names cannot.
func crashBundleName(r *CrashReport, nano int64) string {
	h := sha256.Sum256([]byte(r.App + "\x00" + r.Protocol + "\x00" + r.ConfigHash))
	return fmt.Sprintf("crash-%s-%s-%d-%s-%d.json",
		sanitizeName(r.App), sanitizeName(r.Protocol), r.Cores,
		hex.EncodeToString(h[:4]), nano)
}

func sanitizeName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// CrashError is the error a panicking sweep point resolves to: the point
// keeps its slot in the sweep's failure summary while the remaining points
// run to completion.
type CrashError struct {
	Point      Point
	Report     *CrashReport
	BundlePath string // "" when no crash directory was configured
	WriteErr   error  // non-nil if writing the bundle itself failed
}

func (e *CrashError) Error() string {
	s := fmt.Sprintf("point %s/%s/%d panicked: %s",
		e.Point.App, e.Point.Protocol, e.Point.Cores, e.Report.Panic)
	if e.BundlePath != "" {
		s += " (crash bundle: " + e.BundlePath + ")"
	}
	if e.WriteErr != nil {
		s += fmt.Sprintf(" (crash bundle write failed: %v)", e.WriteErr)
	}
	return s
}

// resultJSON is the restorable subset of Result persisted in the journal:
// every field any figure reduction or ResultFingerprint reads. The live
// protocol engine (Result.Proto) is run-scoped and not persisted — restored
// results render figures, they don't expose engine diagnostics.
type resultJSON struct {
	App              string            `json:"app"`
	Protocol         string            `json:"protocol"`
	Cores            int               `json:"cores"`
	Cycles           event.Time        `json:"cycles"`
	Breakdown        stats.Breakdown   `json:"breakdown"`
	PerCore          []stats.Breakdown `json:"per_core"`
	ChunksCommitted  uint64            `json:"chunks_committed"`
	Squashes         int               `json:"squashes"`
	PerCoreCommitted []int             `json:"per_core_committed"`
	Coll             *stats.Collector  `json:"collector"`
	Traffic          mesh.Stats        `json:"traffic"`
	Faults           *fault.Stats      `json:"faults,omitempty"`
	Checked          bool              `json:"checked,omitempty"`
}

func toResultJSON(r *Result) *resultJSON {
	return &resultJSON{
		App: r.App, Protocol: r.Protocol, Cores: r.Cores,
		Cycles: r.Cycles, Breakdown: r.Breakdown, PerCore: r.PerCore,
		ChunksCommitted: r.ChunksCommitted, Squashes: r.Squashes,
		PerCoreCommitted: r.PerCoreCommitted, Coll: r.Coll,
		Traffic: r.Traffic, Faults: r.Faults, Checked: r.Checked,
	}
}

func (r *resultJSON) restore() *Result {
	return &Result{
		App: r.App, Protocol: r.Protocol, Cores: r.Cores,
		Cycles: r.Cycles, Breakdown: r.Breakdown, PerCore: r.PerCore,
		ChunksCommitted: r.ChunksCommitted, Squashes: r.Squashes,
		PerCoreCommitted: r.PerCoreCommitted, Coll: r.Coll,
		Traffic: r.Traffic, Faults: r.Faults, Checked: r.Checked,
	}
}

// MarshalResult encodes the restorable subset of a Result — the same fields
// the checkpoint journal persists — as JSON. The farm wire protocol ships
// worker results to the server through this encoding; the attempt history
// travels separately (it is excluded from fingerprints).
func MarshalResult(r *Result) ([]byte, error) { return json.Marshal(toResultJSON(r)) }

// UnmarshalResult decodes a MarshalResult encoding back into a restored
// Result. Callers that need integrity (the farm server and thin clients)
// re-hash the restored result's ResultFingerprint and compare it against the
// digest that traveled alongside.
func UnmarshalResult(data []byte) (*Result, error) {
	var rj resultJSON
	if err := json.Unmarshal(data, &rj); err != nil {
		return nil, err
	}
	return rj.restore(), nil
}

// journalEntry is one JSONL line: a completed point keyed by (point,
// config-hash), its full restorable result, the SHA-256 of its
// ResultFingerprint (verified on load), and the attempt history.
type journalEntry struct {
	V           int                 `json:"v"`
	App         string              `json:"app"`
	Protocol    string              `json:"protocol"`
	Cores       int                 `json:"cores"`
	ConfigHash  string              `json:"config_hash"`
	Fingerprint string              `json:"fingerprint_sha256"`
	WallMS      float64             `json:"wall_ms"`
	Attempts    []system.RunAttempt `json:"attempts,omitempty"`
	// Corr is the farm correlation ID of the sweep that recorded the entry
	// ("" for in-process sweeps).
	Corr   string      `json:"corr,omitempty"`
	Result *resultJSON `json:"result"`
}

type journalKey struct {
	app, protocol string
	cores         int
	configHash    string
}

// Journal is the durable sweep checkpoint: an append-only JSONL file of
// completed points. Safe for concurrent use by sweep workers and for sharing
// across Sessions (e.g. one journal spanning a soak's seed rounds).
type Journal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	entries map[journalKey]*journalEntry
}

// ErrJournalLocked marks an OpenJournal attempt against a journal another
// live process holds open (errors.Is); the concrete *JournalLockedError
// carries the path. The lock is the file itself (flock), so a process killed
// with SIGKILL releases it automatically — there are no stale lock files to
// clean up.
var ErrJournalLocked = errors.New("journal is locked by another process")

// JournalLockedError reports the contended journal path.
type JournalLockedError struct{ Path string }

func (e *JournalLockedError) Error() string {
	return fmt.Sprintf("journal %s is locked by another process", e.Path)
}

// Unwrap makes errors.Is(err, ErrJournalLocked) match.
func (e *JournalLockedError) Unwrap() error { return ErrJournalLocked }

// OpenJournal opens (creating if absent) the journal at path and loads its
// entries. The file is locked exclusively for the life of the Journal, so
// two processes (e.g. a restarted sbserver and a stale one) can never append
// to the same journal concurrently: the second open fails with
// *JournalLockedError. A truncated final line — the signature of a kill
// mid-append — is discarded: the file is truncated back to the last complete
// entry before appending resumes, so a crashed writer never corrupts the
// journal.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := lockJournalFile(f); err != nil {
		f.Close()
		if errors.Is(err, ErrJournalLocked) {
			return nil, &JournalLockedError{Path: path}
		}
		return nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	j := &Journal{path: path, entries: map[journalKey]*journalEntry{}}
	valid := 0
	for valid < len(data) {
		nl := bytes.IndexByte(data[valid:], '\n')
		if nl < 0 {
			break // truncated tail: drop it
		}
		line := data[valid : valid+nl]
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			break // corrupt line: drop it and everything after
		}
		if e.V == 1 && e.Result != nil {
			e := e
			j.entries[journalKey{e.App, e.Protocol, e.Cores, e.ConfigHash}] = &e
		}
		valid += nl + 1
	}
	if err := f.Truncate(int64(valid)); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	j.f = f
	return j, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Len returns the number of loaded-plus-recorded entries.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Lookup restores the journaled result for (p, configHash). The restored
// result's ResultFingerprint is re-hashed and compared against the recorded
// digest; a mismatch (corruption, or a result produced by different code)
// reports ok=false so the point is re-run rather than trusted.
func (j *Journal) Lookup(p Point, configHash string) (res *Result, attempts []system.RunAttempt, ok bool) {
	j.mu.Lock()
	e := j.entries[journalKey{p.App, p.Protocol, p.Cores, configHash}]
	j.mu.Unlock()
	if e == nil {
		return nil, nil, false
	}
	res = e.Result.restore()
	if fingerprintHash(ResultFingerprint(res)) != e.Fingerprint {
		return nil, nil, false
	}
	return res, e.Attempts, true
}

// Record appends one completed point, fsyncing so a subsequent kill cannot
// lose it.
func (j *Journal) Record(p Point, configHash string, res *Result, wall time.Duration) error {
	return j.RecordCorr(p, configHash, res, wall, "")
}

// RecordCorr is Record with a correlation ID stamped into the entry — the
// farm server records through this so `grep <corr>` finds the journal line
// alongside the event log and crash bundles.
func (j *Journal) RecordCorr(p Point, configHash string, res *Result, wall time.Duration, corr string) error {
	e := &journalEntry{
		V: 1, App: p.App, Protocol: p.Protocol, Cores: p.Cores,
		ConfigHash:  configHash,
		Fingerprint: fingerprintHash(ResultFingerprint(res)),
		WallMS:      float64(wall.Microseconds()) / 1000,
		Attempts:    res.Attempts,
		Corr:        corr,
		Result:      toResultJSON(res),
	}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.entries[journalKey{p.App, p.Protocol, p.Cores, configHash}] = e
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return err
	}
	return j.f.Sync()
}

// JournalPoint summarizes one journal entry for reports: the point, how long
// it took, and its retry history.
type JournalPoint struct {
	Point      Point               `json:"point"`
	ConfigHash string              `json:"config_hash"`
	WallMS     float64             `json:"wall_ms"`
	Attempts   []system.RunAttempt `json:"attempts,omitempty"`
}

// Points lists the journal's entries (order unspecified).
func (j *Journal) Points() []JournalPoint {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]JournalPoint, 0, len(j.entries))
	for _, e := range j.entries {
		out = append(out, JournalPoint{
			Point:      Point{e.App, e.Protocol, e.Cores},
			ConfigHash: e.ConfigHash, WallMS: e.WallMS, Attempts: e.Attempts,
		})
	}
	return out
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
