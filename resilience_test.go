package scalablebulk

// Resilience-layer tests: per-point panic isolation with crash bundles,
// mid-sweep cancellation, journal round-trips with fingerprint verification
// and truncated-tail recovery, and the headline acceptance check — a sweep
// killed partway resumes from its journal and still renders byte-identical
// figure output.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"scalablebulk/internal/sig"
)

// TestSweepPanicIsolation: one point's panic becomes a *CrashError with a
// valid JSON crash bundle while every other point completes.
func TestSweepPanicIsolation(t *testing.T) {
	victim := Point{"FFT", ProtoTCC, 16}
	points := []Point{
		{"Radix", ProtoScalableBulk, 8},
		{"Radix", ProtoTCC, 8},
		{"FFT", ProtoScalableBulk, 16},
		victim,
	}
	dir := t.TempDir()
	s := NewSession(detChunks, 2, nil)
	s.CrashDir = dir
	s.testPointHook = func(p Point) {
		if p == victim {
			panic("injected sweep panic")
		}
	}
	out := s.SweepContext(context.Background(), points, 2)
	if out.Completed != len(points)-1 {
		t.Errorf("completed = %d, want %d (all but the victim)", out.Completed, len(points)-1)
	}
	if out.Aborted {
		t.Error("a panicking point must not abort the sweep")
	}
	if len(out.Failures) != 1 || out.Failures[0].Point != victim {
		t.Fatalf("failures = %+v, want exactly the victim", out.Failures)
	}
	var ce *CrashError
	if !errors.As(out.Failures[0].Err, &ce) {
		t.Fatalf("failure error is %T, want *CrashError", out.Failures[0].Err)
	}
	if ce.WriteErr != nil || ce.BundlePath == "" {
		t.Fatalf("crash bundle not written: path=%q err=%v", ce.BundlePath, ce.WriteErr)
	}
	data, err := os.ReadFile(ce.BundlePath)
	if err != nil {
		t.Fatal(err)
	}
	var rep CrashReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("crash bundle is not valid JSON: %v", err)
	}
	if rep.App != victim.App || rep.Protocol != victim.Protocol || rep.Cores != victim.Cores {
		t.Errorf("bundle identifies %s/%s/%d, want the victim", rep.App, rep.Protocol, rep.Cores)
	}
	if rep.Panic != "injected sweep panic" || rep.Stack == "" || rep.ConfigHash == "" {
		t.Errorf("bundle incomplete: panic=%q stack=%dB hash=%q", rep.Panic, len(rep.Stack), rep.ConfigHash)
	}

	// The non-victim points really completed.
	if _, err := s.Result("Radix", ProtoTCC, 8); err != nil {
		t.Errorf("sibling point failed: %v", err)
	}
}

// TestCrashBundleFromRunPanic: a panic inside the simulator (not the test
// seam) reaches the bundle wrapped in machine context — simulated cycle and
// truncated machine dump.
func TestCrashBundleFromRunPanic(t *testing.T) {
	s := NewSession(detChunks, 2, nil)
	s.Configure = func(cfg *Config) {
		if cfg.Protocol == ProtoTCC {
			cfg.OnApplyWrite = func(sig.Line, int) { panic("mid-simulation fault") }
		}
	}
	_, err := s.Result("Radix", ProtoTCC, 8)
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("expected *CrashError, got %v", err)
	}
	rep := ce.Report
	if rep.Panic != "mid-simulation fault" {
		t.Errorf("Panic = %q", rep.Panic)
	}
	if rep.Cycle == 0 {
		t.Error("Cycle = 0; the simulated time at the panic is lost")
	}
	if rep.MachineDump == "" {
		t.Error("MachineDump empty; the machine state at the panic is lost")
	}
	if !strings.Contains(rep.Stack, "goroutine") {
		t.Error("Stack is not the panicking goroutine's Go stack")
	}
	// The healthy protocol on the same session is untouched.
	if _, err := s.Result("Radix", ProtoScalableBulk, 8); err != nil {
		t.Errorf("healthy point failed: %v", err)
	}
}

// TestResumeAfterCancelByteIdenticalFigures is the acceptance test for
// durable sweeps: cancel a journaled sweep partway, resume it on a fresh
// session from the journal alone, and require figure output byte-identical
// to an uninterrupted reference session.
func TestResumeAfterCancelByteIdenticalFigures(t *testing.T) {
	render := func(s *Session) string {
		var buf bytes.Buffer
		s.SetOut(&buf)
		if err := s.Figure9(); err != nil {
			t.Fatal(err)
		}
		if err := s.Figure11(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	// The points Figures 9 and 11 consume.
	var pts []Point
	for _, p := range Splash2() {
		for _, cores := range []int{32, 64} {
			pts = append(pts, Point{p.Name, ProtoScalableBulk, cores})
		}
	}
	const seed = 3

	ref := NewSession(detChunks, seed, nil)
	want := render(ref)

	// First sweep: journaled, canceled after the 6th point starts.
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s1 := NewSession(detChunks, seed, nil)
	if _, err := s1.AttachJournal(path); err != nil {
		t.Fatal(err)
	}
	var started atomic.Int64
	s1.testPointHook = func(Point) {
		if started.Add(1) == 6 {
			cancel()
		}
	}
	out1 := s1.SweepContext(ctx, pts, 4)
	if !out1.Aborted {
		t.Fatal("canceled sweep not reported as aborted")
	}
	if len(out1.Failures) != 0 {
		t.Fatalf("cancellation produced point failures: %+v", out1.Failures)
	}
	s1.Journal().Close()

	// The journal left behind is consistent: every entry fingerprint-verifies.
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	checkpointed := j.Len()
	if checkpointed == 0 {
		t.Fatal("canceled sweep checkpointed nothing")
	}
	if checkpointed >= len(pts) {
		t.Fatalf("cancellation did not interrupt the sweep (%d/%d points)", checkpointed, len(pts))
	}
	for _, jp := range j.Points() {
		if _, _, ok := j.Lookup(jp.Point, jp.ConfigHash); !ok {
			t.Errorf("journal entry %v does not verify", jp.Point)
		}
	}
	j.Close()

	// Resume on a fresh session: journaled points restore, the rest run.
	s2 := NewSession(detChunks, seed, nil)
	if _, err := s2.AttachJournal(path); err != nil {
		t.Fatal(err)
	}
	out2 := s2.SweepContext(context.Background(), pts, 4)
	if err := out2.Err(); err != nil {
		t.Fatal(err)
	}
	if out2.Restored != checkpointed {
		t.Errorf("restored %d points, journal held %d", out2.Restored, checkpointed)
	}
	if out2.Completed != len(pts) {
		t.Errorf("resumed sweep completed %d/%d points", out2.Completed, len(pts))
	}
	s2.Journal().Close()

	if got := render(s2); got != want {
		t.Errorf("resumed session's figures differ from the uninterrupted reference:\n--- reference\n%s--- resumed\n%s", want, got)
	}
}

// TestJournalRoundTripVerifies: a recorded result survives a journal
// close/reopen bit-for-bit — including the collector state behind
// BottleneckRatio — and loading tolerates a truncated tail and garbage.
func TestJournalRoundTripVerifies(t *testing.T) {
	prof, _ := AppByName("Radix")
	cfg := DefaultConfig(8, ProtoScalableBulk)
	cfg.Seed = 3
	cfg.ChunksPerCore = 8
	res, err := Run(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := Point{"Radix", ProtoScalableBulk, 8}
	hash := ConfigHash(cfg)

	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(p, hash, res, time.Second); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	got, _, ok := j2.Lookup(p, hash)
	if !ok {
		t.Fatal("recorded entry does not restore")
	}
	if ResultFingerprint(got) != ResultFingerprint(res) {
		t.Error("restored fingerprint differs from the live result")
	}
	if got.Coll.BottleneckRatio() != res.Coll.BottleneckRatio() {
		t.Errorf("BottleneckRatio diverged after restore: %v != %v",
			got.Coll.BottleneckRatio(), res.Coll.BottleneckRatio())
	}
	if _, _, ok := j2.Lookup(p, "deadbeef00000000"); ok {
		t.Error("Lookup matched a foreign config hash")
	}
	j2.Close()

	// A kill mid-append leaves a truncated tail; reopening drops it and
	// keeps every complete entry.
	if f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644); err == nil {
		f.WriteString(`{"v":1,"app":"Barnes","truncated`)
		f.Close()
	}
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j3.Len() != 1 {
		t.Errorf("after truncated-tail recovery Len = %d, want 1", j3.Len())
	}
	if _, _, ok := j3.Lookup(p, hash); !ok {
		t.Error("complete entry lost during truncated-tail recovery")
	}
	// And the file itself was truncated back, so appending stays valid JSONL.
	if err := j3.Record(Point{"FFT", ProtoScalableBulk, 8}, hash, res, 0); err != nil {
		t.Fatal(err)
	}
	j3.Close()
	j4, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j4.Len() != 2 {
		t.Errorf("post-recovery append not readable: Len = %d, want 2", j4.Len())
	}
	j4.Close()
}

// TestJournalRejectsTamperedResult: an entry whose stored result no longer
// matches its recorded fingerprint is ignored, forcing a re-run.
func TestJournalRejectsTamperedResult(t *testing.T) {
	prof, _ := AppByName("FFT")
	cfg := DefaultConfig(8, ProtoScalableBulk)
	cfg.Seed = 2
	cfg.ChunksPerCore = 4
	res, err := Run(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := Point{"FFT", ProtoScalableBulk, 8}
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(p, ConfigHash(cfg), res, 0); err != nil {
		t.Fatal(err)
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte(`"cycles":`+jsonNumber(res.Cycles)), []byte(`"cycles":1`), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("tamper target not found in journal line")
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if _, _, ok := j2.Lookup(p, ConfigHash(cfg)); ok {
		t.Error("tampered entry passed fingerprint verification")
	}
}

func jsonNumber[T ~uint64 | ~int64](v T) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestCrashBundleNamesDistinct: apps (or protocols) that sanitize to the
// same filesystem-safe string must still get distinct bundle filenames —
// the hash suffix disambiguates what sanitizeName flattens.
func TestCrashBundleNamesDistinct(t *testing.T) {
	mk := func(app, proto string) *CrashReport {
		cfg := DefaultConfig(4, proto)
		return &CrashReport{App: app, Protocol: proto, Cores: 4, ConfigHash: ConfigHash(cfg)}
	}
	const nano = 1234567890
	a := crashBundleName(mk("a/b", "TCC"), nano)
	b := crashBundleName(mk("a_b", "TCC"), nano)
	if a == b {
		t.Errorf("colliding bundle names for a/b vs a_b: %q", a)
	}
	// Same app, different protocol must differ too (protocol changes the
	// config hash, but the name must differ even at identical timestamps).
	c := crashBundleName(mk("a/b", "ScalableBulk"), nano)
	if a == c {
		t.Errorf("colliding bundle names across protocols: %q", a)
	}
	for _, n := range []string{a, b, c} {
		if strings.ContainsAny(n, "/\\ ") {
			t.Errorf("bundle name %q not filesystem-safe", n)
		}
	}
}

// TestJournalLockContended: a second OpenJournal against a live journal must
// fail with the typed lock error, and succeed once the holder closes.
func TestJournalLockContended(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	_, err = OpenJournal(path)
	if !errors.Is(err, ErrJournalLocked) {
		t.Fatalf("contended open: got %v, want ErrJournalLocked", err)
	}
	var locked *JournalLockedError
	if !errors.As(err, &locked) || locked.Path != path {
		t.Fatalf("contended open: got %#v, want *JournalLockedError with path %q", err, path)
	}
	j.Close()
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	j2.Close()
}

// TestShardsExcludedFromIdentity: Config.Shards selects an execution engine,
// not an experiment — every identity artifact (ConfigHash v3, journal keys,
// ResultFingerprint) must be byte-identical whether a point ran serially or
// sharded, so a journal written by a serial sweep satisfies a sharded resume
// and vice versa.
func TestShardsExcludedFromIdentity(t *testing.T) {
	prof, _ := AppByName("FFT")
	cfg := DefaultConfig(8, ProtoScalableBulk)
	cfg.Seed = 11
	cfg.ChunksPerCore = 4

	sig0, hash0 := configSignature(cfg), ConfigHash(cfg)
	if strings.Contains(sig0, "shard") {
		t.Fatalf("configSignature mentions sharding: %q", sig0)
	}
	for _, s := range []int{2, 4, 8} {
		c := cfg
		c.Shards = s
		if got := configSignature(c); got != sig0 {
			t.Errorf("Shards=%d perturbs configSignature:\n  %q\n  %q", s, got, sig0)
		}
		if got := ConfigHash(c); got != hash0 {
			t.Errorf("Shards=%d perturbs ConfigHash: %s != %s", s, got, hash0)
		}
	}

	// A serial run's journal entry must satisfy a lookup keyed by a sharded
	// config, and the sharded run's own fingerprint must verify against it.
	serial, err := Run(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := Point{"FFT", ProtoScalableBulk, 8}
	j, err := OpenJournal(filepath.Join(t.TempDir(), "j.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Record(p, hash0, serial, time.Second); err != nil {
		t.Fatal(err)
	}

	sharded := cfg
	sharded.Shards = 2
	res2, err := Run(prof, sharded)
	if err != nil {
		t.Fatal(err)
	}
	if ResultFingerprint(res2) != ResultFingerprint(serial) {
		t.Fatal("sharded fingerprint differs from serial; identity test is moot")
	}
	got, _, ok := j.Lookup(p, ConfigHash(sharded))
	if !ok {
		t.Fatal("sharded ConfigHash misses the serial journal entry")
	}
	if FingerprintSHA(got) != FingerprintSHA(res2) {
		t.Error("journaled serial result does not verify against the sharded run")
	}
}
