// Scaling sweeps machine sizes on fixed whole-problem work (the paper's
// strong-scaling setup) and prints the speedup curve per protocol —
// the essence of Figures 7/8: distributed protocols scale from 32 to 64
// processors; the centralized BulkSC arbiter stops scaling.
package main

import (
	"fmt"
	"log"
	"os"

	"scalablebulk"
)

func main() {
	app := "Water-S"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	prof, ok := scalablebulk.AppByName(app)
	if !ok {
		log.Fatalf("unknown app %q", app)
	}

	const totalWork = 1024 // whole-problem chunks, split across the cores
	sizes := []int{1, 4, 16, 32, 64}

	fmt.Printf("%s, %d chunks of total work — execution cycles (speedup vs 1 core)\n", app, totalWork)
	fmt.Printf("%-8s", "cores")
	for _, protocol := range scalablebulk.Protocols {
		fmt.Printf(" %22s", protocol)
	}
	fmt.Println()

	base := map[string]float64{}
	for _, cores := range sizes {
		fmt.Printf("%-8d", cores)
		for _, protocol := range scalablebulk.Protocols {
			cfg := scalablebulk.DefaultConfig(cores, protocol)
			res, err := scalablebulk.RunScaled(prof, cfg, totalWork)
			if err != nil {
				log.Fatal(err)
			}
			if cores == 1 {
				base[protocol] = float64(res.Cycles)
			}
			fmt.Printf(" %13d (%5.1fx)", res.Cycles, base[protocol]/float64(res.Cycles))
		}
		fmt.Println()
	}
}
