// Quickstart: simulate one application on the paper's Table 2 machine and
// print what the protocol did.
package main

import (
	"fmt"
	"log"

	"scalablebulk"
)

func main() {
	// Pick one of the 18 SPLASH-2 / PARSEC application models.
	prof, ok := scalablebulk.AppByName("Barnes")
	if !ok {
		log.Fatal("unknown application")
	}

	// The Table 2 machine: 64 cores on a 2D torus, 32KB L1 / 512KB L2,
	// 2Kbit signatures, 2000-instruction chunks, ScalableBulk commits.
	cfg := scalablebulk.DefaultConfig(64, scalablebulk.ProtoScalableBulk)
	cfg.ChunksPerCore = 16

	res, err := scalablebulk.Run(prof, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s, %d processors, %s protocol\n", res.App, res.Cores, res.Protocol)
	fmt.Printf("  committed %d chunks in %d cycles\n", res.ChunksCommitted, res.Cycles)
	fmt.Printf("  mean chunk-commit latency: %.0f cycles\n", res.MeanCommitLatency())

	dirsTotal, dirsWrite := res.Coll.MeanDirsPerCommit()
	fmt.Printf("  directories per commit: %.1f (%.1f recording writes)\n", dirsTotal, dirsWrite)

	tot := float64(res.Breakdown.Total())
	fmt.Printf("  cycles: %.0f%% useful, %.0f%% cache miss, %.0f%% commit stall, %.0f%% squash\n",
		100*float64(res.Breakdown.Useful)/tot,
		100*float64(res.Breakdown.CacheMiss)/tot,
		100*float64(res.Breakdown.Commit)/tot,
		100*float64(res.Breakdown.Squash)/tot)
	fmt.Printf("  squashes: %d true conflicts, %d signature aliasing\n",
		res.Coll.SquashTrueConflict, res.Coll.SquashAliasing)
}
