// Radixstorm reproduces the paper's motivating case (§6.1): Radix's random
// bucket writes touch ~10 directory modules per chunk commit with almost no
// address overlap between chunks. Protocols that serialize same-directory
// commits (Scalable TCC, SEQ-PRO) choke; ScalableBulk overlaps them.
package main

import (
	"fmt"
	"log"

	"scalablebulk"
)

func main() {
	prof, _ := scalablebulk.AppByName("Radix")

	fmt.Println("Radix on 64 processors — same work under each commit protocol")
	fmt.Printf("%-20s %12s %14s %12s %10s\n",
		"protocol", "exec cycles", "commit stall%", "mean lat", "dirs/commit")

	var sbCycles float64
	for _, protocol := range scalablebulk.Protocols {
		cfg := scalablebulk.DefaultConfig(64, protocol)
		cfg.ChunksPerCore = 16
		res, err := scalablebulk.Run(prof, cfg)
		if err != nil {
			log.Fatal(err)
		}
		stall := 100 * float64(res.Breakdown.Commit) / float64(res.Breakdown.Total())
		dirs, _ := res.Coll.MeanDirsPerCommit()
		fmt.Printf("%-20s %12d %13.1f%% %12.0f %10.1f\n",
			protocol, res.Cycles, stall, res.MeanCommitLatency(), dirs)
		if protocol == scalablebulk.ProtoScalableBulk {
			sbCycles = float64(res.Cycles)
		} else {
			fmt.Printf("%-20s %11.2fx slower than ScalableBulk\n", "", float64(res.Cycles)/sbCycles)
		}
	}
	fmt.Println("\nScalableBulk commits chunks that share directories but not addresses")
	fmt.Println("concurrently (§2.3); TCC and SEQ serialize them, BulkSC funnels every")
	fmt.Println("commit through one arbiter.")
}
