// Chunksize demonstrates the paper's §2.2 argument — "Is Commit Really
// Critical?". Scalable TCC's and SRC's evaluations used software-defined
// transactions of 10K–40K instructions and concluded commit overhead hides
// behind execution; ScalableBulk targets automatic 2000-instruction chunks,
// where commits are an order of magnitude more frequent.
//
// This example sweeps the chunk size under the TCC baseline: at 2000
// instructions its same-directory serialization queues chunks machine-wide;
// by 32000 instructions the overhead disappears — exactly why the earlier
// papers saw no problem and this paper does.
package main

import (
	"fmt"
	"log"

	"scalablebulk"
)

func main() {
	prof, _ := scalablebulk.AppByName("Radix")
	const totalInstr = 64 * 2000 // per-core instructions, held constant

	fmt.Println("Radix on 64 processors under Scalable TCC, same total work:")
	fmt.Printf("%-12s %10s %14s %12s %12s\n",
		"chunk size", "commits", "mean lat (cy)", "chunk queue", "exec cycles")
	for _, instr := range []int{2000, 4000, 8000, 16000, 32000} {
		big := prof
		big.ChunkInstr = instr
		cfg := scalablebulk.DefaultConfig(64, scalablebulk.ProtoTCC)
		cfg.ChunksPerCore = totalInstr / instr
		res, err := scalablebulk.Run(big, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12d %10d %14.0f %12.2f %12d\n",
			instr, res.ChunksCommitted, res.MeanCommitLatency(),
			res.Coll.MeanQueueLength(), res.Cycles)
	}
	fmt.Println("\nSame instructions, bigger chunks, far fewer commits: TCC's execution")
	fmt.Println("time collapses as the commit serialization amortizes (§2.2) — which is")
	fmt.Println("why the transaction-oriented baselines saw no commit problem and")
	fmt.Println("ScalableBulk's always-on, 2000-instruction environment does.")
}
