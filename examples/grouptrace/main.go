// Grouptrace drives a hand-built collision through the ScalableBulk engine
// and prints the message-level outcome: the Figure 3/4/5 story — group
// formation, collision resolution at the lowest common module, Optimistic
// Commit Initiation and the commit_recall — on a six-module machine.
package main

import (
	"fmt"
	"os"

	"scalablebulk/internal/chunk"
	"scalablebulk/internal/core"
	"scalablebulk/internal/dir"
	"scalablebulk/internal/event"
	"scalablebulk/internal/mem"
	"scalablebulk/internal/mesh"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/sig"
	"scalablebulk/internal/stats"
	"scalablebulk/internal/trace"
)

// procSim is a miniature committing processor, enough to ack invalidations
// with OCI recalls and retry failed commits.
type procSim struct {
	id    int
	env   *dir.Env
	proto *core.Protocol
	chk   *chunk.Chunk
	done  bool
}

func (f *procSim) handle(m *msg.Msg) {
	switch m.Kind {
	case msg.CommitSuccess:
		if f.chk != nil && m.Tag == f.chk.Tag {
			fmt.Printf("%8d  P%d: commit of %s SUCCEEDED\n", f.env.Eng.Now(), f.id, m.Tag)
			f.done = true
		}
	case msg.CommitFailure:
		if f.chk != nil && m.Tag == f.chk.Tag && uint64(f.chk.Retries) == m.TID {
			fmt.Printf("%8d  P%d: commit of %s failed; retrying\n", f.env.Eng.Now(), f.id, m.Tag)
			f.chk.Retries++
			ck := f.chk
			f.env.Eng.After(120, func() { f.proto.RequestCommit(f.id, ck) })
		}
	case msg.BulkInv:
		var recall *msg.RecallInfo
		if f.chk != nil && !f.done && f.chk.ConflictsWith(&m.WSig) {
			fmt.Printf("%8d  P%d: bulk_inv from P%d squashes my in-flight chunk → commit_recall\n",
				f.env.Eng.Now(), f.id, m.Tag.Proc)
			recall = &msg.RecallInfo{Tag: f.chk.Tag, Try: uint64(f.chk.Retries), GVec: f.chk.Dirs}
			f.chk.Retries++
			ck := f.chk
			// Re-execute, then retry the commit.
			f.env.Eng.After(400, func() { f.proto.RequestCommit(f.id, ck) })
		}
		f.env.Net.Send(&msg.Msg{Kind: msg.BulkInvAck, Src: f.id, Dst: m.Src, Tag: m.Tag, Recall: recall})
	}
}

func main() {
	eng := event.New()
	net := mesh.New(eng, mesh.Config{Nodes: 6, LinkLatency: 7})
	env := &dir.Env{
		Eng: eng, Net: net, Map: mem.NewMapper(6), State: dir.NewState(),
		Coll: stats.New(), DirLookup: 2, MemLatency: 300,
	}
	// Structured protocol trace, rendered as text lines on stdout.
	env.Trace = trace.New(eng, trace.NewText(os.Stdout))
	env.Coll.Trace = env.Trace
	proto := core.New(env, core.DefaultConfig())
	net.OnSend = func(m *msg.Msg) {
		extra := ""
		if m.Recall != nil {
			extra = fmt.Sprintf("  [piggy-backed commit_recall for %s]", m.Recall.Tag)
		}
		fmt.Printf("%8d    msg %s%s\n", eng.Now(), m, extra)
	}

	procs := make([]*procSim, 6)
	for i := range procs {
		procs[i] = &procSim{id: i, env: env, proto: proto}
		node := i
		rp := &dir.ReadPath{Env: env, Proto: proto}
		net.Register(node, func(m *msg.Msg) {
			if m.Kind.SideOf() == msg.SideDir {
				if !rp.HandleDir(node, m) {
					proto.HandleDir(node, m)
				}
			} else {
				procs[node].handle(m)
			}
		})
	}

	// Home pages on specific modules: line 1000·d lives on module d.
	mk := func(proc int, seq uint64, writes ...sig.Line) *chunk.Chunk {
		ck := &chunk.Chunk{Tag: msg.CTag{Proc: proc, Seq: seq}, Instr: 2000}
		for _, l := range writes {
			env.Map.Home(l, int(l)/1000%6)
			ck.Accesses = append(ck.Accesses, chunk.Access{Line: l, Write: true})
		}
		ck.Finalize(func(l sig.Line) int { h, _ := env.Map.HomeIfMapped(l); return h })
		return ck
	}

	fmt.Println("--- Scenario 1 (Figure 3): one chunk groups modules 1, 2 and 5 ---")
	c1 := mk(0, 1, 1000, 2000, 5000)
	env.State.AddSharer(2000, 3) // P3 caches a written line → bulk_inv traffic
	procs[0].chk = c1
	proto.RequestCommit(0, c1)
	eng.Run()

	fmt.Println()
	fmt.Println("--- Scenario 2 (Figures 4/5): colliding groups, OCI recall ---")
	// P1 and P2 write overlapping addresses: their groups share modules 2,3.
	a := mk(1, 1, 2064, 3064)
	b := mk(2, 1, 2064, 3100)
	// Each caches the line the other writes, so the winner's bulk_inv hits
	// the loser while the loser's own commit is in flight (the OCI case).
	env.State.AddSharer(2064, 1)
	env.State.AddSharer(2064, 2)
	procs[1].chk = a
	procs[2].chk = b
	proto.RequestCommit(2, b) // P2 gets a head start and wins
	eng.After(30, func() { proto.RequestCommit(1, a) })
	eng.Run()

	fmt.Printf("\nfailure causes: %+v\n", proto.Fails)
}
