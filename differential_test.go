package scalablebulk

// Differential cross-protocol tests: all four commit protocols implement
// the same chunk-based memory model, so on the same workload they must agree
// on everything the model defines — how many chunks commit and which writes
// reach the directory — even though they disagree on timing, traffic, and
// squash counts. A protocol that drops, duplicates, or misattributes a
// committed write diverges here.

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"testing"

	"scalablebulk/internal/sig"
)

// testShards reads SB_SHARDS, the engine shard count the conformance and
// differential suites execute under. The CI race-matrix job sets it to re-run
// these suites on the sharded engine under -race; results are S-invariant by
// the sharded engine's contract, so every assertion applies verbatim.
func testShards(t *testing.T) int {
	t.Helper()
	s := os.Getenv("SB_SHARDS")
	if s == "" {
		return 0
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		t.Fatalf("SB_SHARDS=%q: want a non-negative shard count", s)
	}
	return n
}

// writeKey identifies one committed-write attribution.
type writeKey struct {
	line   sig.Line
	writer int
}

// runWithWrites runs prof under one protocol and collects the multiset of
// committed writes applied to the directory.
func runWithWrites(t *testing.T, prof Profile, protocol string, cores, chunksPerCore int) (*Result, map[writeKey]int) {
	t.Helper()
	writes := map[writeKey]int{}
	cfg := DefaultConfig(cores, protocol)
	cfg.ChunksPerCore = chunksPerCore
	cfg.Seed = 11
	cfg.Shards = testShards(t)
	// Check also drains in-flight protocol stragglers after the last core
	// finishes (e.g. BulkSC's final ArbDone, which applies that chunk's
	// writes at the arbiter), so the write multisets compare quiescent
	// states — and the online invariant checker vets every run for free.
	cfg.Check = true
	cfg.OnApplyWrite = func(l sig.Line, writer int) { writes[writeKey{l, writer}]++ }
	r, err := Run(prof, cfg)
	if err != nil {
		skipOnShardHazard(t, err)
		t.Fatalf("%s/%s: %v", prof.Name, protocol, err)
	}
	return r, writes
}

// skipOnShardHazard skips the (sub)test when a SB_SHARDS run hit the typed
// first-touch hazard: the sharded engine aborts fail-stop rather than let a
// schedule-dependent page mapping produce divergent results, and the serial
// leg of the CI matrix still covers the point.
func skipOnShardHazard(t *testing.T, err error) {
	t.Helper()
	if errors.Is(err, ErrShardHazard) {
		t.Skipf("sharded first-touch hazard (covered by the serial leg): %v", err)
	}
}

// conflictFreeProfile builds a workload whose chunk footprints are entirely
// private to each thread: no shared accesses, no scatter writes, no hot
// lines. No pair of chunks from different cores can conflict.
func conflictFreeProfile() Profile {
	return Profile{
		Name: "ConflictFree", Suite: "TEST",
		ChunkInstr: 2000, Accesses: 12, WriteFrac: 0.4,
		SharedFrac: 0, ScatterFrac: 0, ConflictFrac: 0, ReadHotFrac: 0,
		RunLen: 4, SharedPagesPerChunk: 1,
		TotalPrivatePages: 256, SharedPages: 8,
		PrivateSkew: 2, SharedSkew: 1, HotLines: 0,
	}
}

// forcedConflictProfile makes every chunk write the single hot shared line,
// so every pair of concurrent chunks conflicts and the protocols must
// serialize the commits.
func forcedConflictProfile() Profile {
	return Profile{
		Name: "ForcedConflict", Suite: "TEST",
		ChunkInstr: 2000, Accesses: 12, WriteFrac: 0.4,
		SharedFrac: 0.2, ScatterFrac: 0, ConflictFrac: 1, ReadHotFrac: 0,
		RunLen: 4, SharedPagesPerChunk: 1,
		TotalPrivatePages: 256, SharedPages: 8,
		PrivateSkew: 2, SharedSkew: 1, HotLines: 1,
	}
}

// TestDifferentialConflictFree: with disjoint footprints, all four protocols
// must commit every chunk with zero squashes and apply identical
// committed-write multisets.
func TestDifferentialConflictFree(t *testing.T) {
	const cores, chunks = 16, 3
	prof := conflictFreeProfile()

	var refWrites map[writeKey]int
	var refProto string
	for _, protocol := range Protocols {
		r, writes := runWithWrites(t, prof, protocol, cores, chunks)
		if got, want := r.ChunksCommitted, uint64(cores*chunks); got != want {
			t.Errorf("%s: committed %d chunks, want %d", protocol, got, want)
		}
		if r.Squashes != 0 {
			t.Errorf("%s: %d squashes on a conflict-free workload", protocol, r.Squashes)
		}
		for c, n := range r.PerCoreCommitted {
			if n != chunks {
				t.Errorf("%s: core %d committed %d chunks, want %d", protocol, c, n, chunks)
			}
		}
		if refWrites == nil {
			refWrites, refProto = writes, protocol
			if len(writes) == 0 {
				t.Fatalf("%s: no committed writes observed", protocol)
			}
			continue
		}
		if !reflect.DeepEqual(writes, refWrites) {
			t.Errorf("%s committed-write multiset differs from %s: %s",
				protocol, refProto, diffWrites(refWrites, writes))
		}
	}
}

// TestDifferentialForcedConflict: under maximal contention every chunk still
// commits exactly once per core slot in all four protocols (commits
// serialize rather than deadlock or drop work), and the committed writes are
// identical — squashed executions are re-executed bit-identically.
func TestDifferentialForcedConflict(t *testing.T) {
	const cores, chunks = 16, 3
	prof := forcedConflictProfile()

	var refWrites map[writeKey]int
	var refProto string
	sawSquash := false
	for _, protocol := range Protocols {
		r, writes := runWithWrites(t, prof, protocol, cores, chunks)
		if got, want := r.ChunksCommitted, uint64(cores*chunks); got != want {
			t.Errorf("%s: committed %d chunks, want %d", protocol, got, want)
		}
		for c, n := range r.PerCoreCommitted {
			if n != chunks {
				t.Errorf("%s: core %d committed %d chunks, want %d", protocol, c, n, chunks)
			}
		}
		if r.Squashes > 0 {
			sawSquash = true
		}
		if refWrites == nil {
			refWrites, refProto = writes, protocol
			continue
		}
		if !reflect.DeepEqual(writes, refWrites) {
			t.Errorf("%s committed-write multiset differs from %s: %s",
				protocol, refProto, diffWrites(refWrites, writes))
		}
	}
	if !sawSquash {
		t.Error("forced-conflict workload squashed nothing under any protocol; the workload is not exercising conflicts")
	}
}

// runWorkloadWithWrites runs one registered workload source under one
// protocol, collecting the committed-write multiset and each core's commit
// order. prof carries the synthetic profile for the "synthetic" source and
// the label profile for adversarial sources.
func runWorkloadWithWrites(t *testing.T, wl string, prof Profile, protocol string, cores, chunksPerCore int) (*Result, map[writeKey]int, [][]uint64) {
	t.Helper()
	writes := map[writeKey]int{}
	order := make([][]uint64, cores)
	cfg := DefaultConfig(cores, protocol)
	cfg.ChunksPerCore = chunksPerCore
	cfg.Seed = 11
	cfg.Shards = testShards(t)
	cfg.Workload = wl
	cfg.Check = true
	cfg.OnApplyWrite = func(l sig.Line, writer int) { writes[writeKey{l, writer}]++ }
	cfg.OnCommit = func(core int, seq uint64) { order[core] = append(order[core], seq) }
	r, err := Run(prof, cfg)
	if err != nil {
		skipOnShardHazard(t, err)
		t.Fatalf("%s/%s: %v", wl, protocol, err)
	}
	return r, writes, order
}

// matrixWorkloads enumerates every registered workload source with the
// profile it runs under: a small synthetic application model for the default
// source, the source's own label for the adversarial family.
func matrixWorkloads(t *testing.T) []struct {
	Name string
	Prof Profile
} {
	t.Helper()
	var out []struct {
		Name string
		Prof Profile
	}
	for _, w := range RegisteredWorkloads() {
		prof, ok := WorkloadProfile(w.Name)
		if !ok {
			prof = forcedConflictProfile() // the synthetic default, under contention
		}
		out = append(out, struct {
			Name string
			Prof Profile
		}{w.Name, prof})
	}
	if len(out) < 5 {
		t.Fatalf("workload registry has %d sources, want the synthetic default plus ≥4 adversarial", len(out))
	}
	return out
}

// checkCommitOrder asserts each core committed exactly chunks chunks in
// program order — the per-core serialization every protocol must preserve.
func checkCommitOrder(t *testing.T, wl, protocol string, order [][]uint64, chunks int) {
	t.Helper()
	for core, seqs := range order {
		if len(seqs) != chunks {
			t.Errorf("%s/%s: core %d committed %d chunks, want %d", wl, protocol, core, len(seqs), chunks)
			continue
		}
		for i, seq := range seqs {
			if seq != uint64(i) {
				t.Errorf("%s/%s: core %d commit %d has seq %d, want %d (program order)",
					wl, protocol, core, i, seq, i)
				break
			}
		}
	}
}

// TestDifferentialWorkloadMatrix runs every evaluated protocol against every
// registered workload source — synthetic plus the adversarial family — and
// requires, per workload: all chunks committed, identical committed-write
// multisets across protocols, and each core's commits in program order. This
// is the cross product the workload registry exists to buy: a new source
// registered anywhere is confronted with every protocol here for free.
func TestDifferentialWorkloadMatrix(t *testing.T) {
	const cores, chunks = 8, 3
	for _, w := range matrixWorkloads(t) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			var refWrites map[writeKey]int
			var refProto string
			for _, protocol := range Protocols {
				r, writes, order := runWorkloadWithWrites(t, w.Name, w.Prof, protocol, cores, chunks)
				if got, want := r.ChunksCommitted, uint64(cores*chunks); got != want {
					t.Errorf("%s/%s: committed %d chunks, want %d", w.Name, protocol, got, want)
				}
				checkCommitOrder(t, w.Name, protocol, order, chunks)
				if refWrites == nil {
					refWrites, refProto = writes, protocol
					if len(writes) == 0 {
						t.Fatalf("%s/%s: no committed writes observed", w.Name, protocol)
					}
					continue
				}
				if !reflect.DeepEqual(writes, refWrites) {
					t.Errorf("%s: %s committed-write multiset differs from %s: %s",
						w.Name, protocol, refProto, diffWrites(refWrites, writes))
				}
			}
		})
	}
}

// diffWrites summarizes the first few differences between two multisets.
func diffWrites(a, b map[writeKey]int) string {
	var out string
	n := 0
	for k, va := range a {
		if vb := b[k]; va != vb && n < 5 {
			out += fmt.Sprintf(" line %#x by core %d: %d vs %d;", uint64(k.line), k.writer, va, vb)
			n++
		}
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok && n < 5 {
			out += fmt.Sprintf(" line %#x by core %d: absent vs %d;", uint64(k.line), k.writer, vb)
			n++
		}
	}
	if out == "" {
		out = fmt.Sprintf(" sizes %d vs %d", len(a), len(b))
	}
	return out
}
