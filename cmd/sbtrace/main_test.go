package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"scalablebulk/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden trace")

func tinyOpts(format string) traceOpts {
	return traceOpts{
		app: "Barnes", protocol: "ScalableBulk",
		cores: 4, chunks: 1, seed: 1,
		format: format, coreF: -1,
		// Lifecycle kinds only: NoC arrows would bloat the golden file
		// without adding coverage (the delivery-time contract is tested in
		// internal/trace and internal/system).
		kinds: "exec,commit,hold,commit_req,group_formed,group_fail,squash,commit_done",
	}
}

// TestGoldenTextTrace locks the human-readable lifecycle trace of a tiny
// deterministic run. Run with -update after an intentional format or
// protocol change; CI diffs against the checked-in file.
func TestGoldenTextTrace(t *testing.T) {
	var buf bytes.Buffer
	sink, err := buildSink(&buf, tinyOpts("text"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runTrace(tinyOpts("text"), sink); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "barnes4.golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace differs from %s (run with -update after intentional changes)\ngot %d bytes, want %d",
			golden, buf.Len(), len(want))
	}
}

// TestPerfettoPipeline runs the sbtrace perfetto path end to end and
// validates the Chrome trace-event schema — the acceptance check behind the
// CI trace-smoke job.
func TestPerfettoPipeline(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOpts("perfetto")
	o.kinds = "" // full stream: exporter must balance everything
	sink, err := buildSink(&buf, o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runTrace(o, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if res.ChunksCommitted == 0 {
		t.Fatal("no chunks committed")
	}
	if err := trace.ValidatePerfetto(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

// TestBuildSinkRejectsBadFlags covers the CLI error paths.
func TestBuildSinkRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	for _, o := range []traceOpts{
		{format: "yaml", coreF: -1},
		{format: "text", coreF: -1, kinds: "nope"},
		{format: "text", coreF: -1, chunk: "3.7"},
	} {
		if _, err := buildSink(&buf, o); err == nil {
			t.Errorf("buildSink accepted %+v", o)
		}
	}
}
