// Command sbtrace runs a small machine with structured tracing enabled and
// writes the event stream — the message-level view of Figures 3, 4 and 5,
// now backed by the trace package, so the same run can render as the classic
// text log, as machine-readable JSONL, or as Chrome trace-event JSON for
// Perfetto / chrome://tracing.
//
// Usage:
//
//	sbtrace -app Barnes -cores 8 -chunks 2 | head -100
//	sbtrace -app Barnes -cores 8 -format perfetto -o trace.json
//	sbtrace -format jsonl -kind squash,commit -core 3
//
// Delivery events are emitted at delivery time (after contention retiming
// and fault rewrites), so with -reads the printed cycle numbers match the
// actual arrival order.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"scalablebulk/internal/cache"
	"scalablebulk/internal/cliutil"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/system"
	"scalablebulk/internal/trace"
	"scalablebulk/internal/workload"
)

// traceOpts is everything the CLI configures; factored out so tests drive the
// same pipeline the command runs.
type traceOpts struct {
	app, protocol string
	cores, chunks int
	seed          int64
	reads         bool
	format        string // "text", "jsonl" or "perfetto"
	coreF         int    // -1: all
	kinds         string // comma-separated kind names, "" = all
	chunk         string // "P3.7", "" = all
}

// buildSink assembles the format sink wrapped in any requested filters.
func buildSink(w io.Writer, o traceOpts) (trace.Sink, error) {
	var sink trace.Sink
	switch o.format {
	case "text":
		sink = trace.NewText(w)
	case "jsonl":
		sink = trace.NewJSONL(w)
	case "perfetto":
		sink = trace.NewPerfetto(w)
	default:
		return nil, fmt.Errorf("unknown format %q (want text, jsonl or perfetto)", o.format)
	}
	if o.coreF < 0 && o.kinds == "" && o.chunk == "" {
		return sink, nil
	}
	f := trace.NewFilter(sink)
	f.Core = o.coreF
	if o.kinds != "" {
		f.Kinds = make(map[trace.Kind]bool)
		for _, name := range strings.Split(o.kinds, ",") {
			k, ok := trace.KindByName(strings.TrimSpace(name))
			if !ok {
				return nil, fmt.Errorf("unknown event kind %q", name)
			}
			f.Kinds[k] = true
		}
	}
	if o.chunk != "" {
		var proc int
		var seq uint64
		if _, err := fmt.Sscanf(o.chunk, "P%d.%d", &proc, &seq); err != nil {
			return nil, fmt.Errorf("bad chunk %q (want P<proc>.<seq>): %v", o.chunk, err)
		}
		f.Chunk = &msg.CTag{Proc: proc, Seq: seq}
	}
	return f, nil
}

// runTrace runs the machine with the sink attached and returns the result.
func runTrace(o traceOpts, sink trace.Sink) (*system.Result, error) {
	prof, ok := workload.ByName(o.app)
	if !ok {
		return nil, fmt.Errorf("unknown app %q", o.app)
	}
	cfg := system.DefaultConfig(o.cores, o.protocol)
	cfg.ChunksPerCore = o.chunks
	cfg.Seed = o.seed
	// Tiny caches keep the trace interesting (more sharing).
	cfg.L1 = cache.Config{SizeBytes: 8 << 10, Assoc: 4}
	cfg.L2 = cache.Config{SizeBytes: 64 << 10, Assoc: 8}
	cfg.TraceSink = sink
	cfg.TraceReads = o.reads
	return system.Run(prof, cfg)
}

func main() {
	o := traceOpts{}
	flag.StringVar(&o.app, "app", "Barnes", "application model")
	flag.StringVar(&o.protocol, "proto", system.ProtoScalableBulk,
		"commit protocol (see -protocols for the registry)")
	flag.IntVar(&o.cores, "cores", 8, "number of processors")
	flag.IntVar(&o.chunks, "chunks", 2, "chunks per core")
	flag.Int64Var(&o.seed, "seed", 1, "deterministic seed")
	flag.BoolVar(&o.reads, "reads", false, "also trace read-path messages")
	flag.StringVar(&o.format, "format", "text", "output format: text, jsonl or perfetto")
	flag.IntVar(&o.coreF, "core", -1, "keep only events touching this tile")
	flag.StringVar(&o.kinds, "kind", "", "comma-separated event kinds to keep (e.g. commit,squash)")
	flag.StringVar(&o.chunk, "chunk", "", "keep only events about this chunk (e.g. P3.7)")
	out := flag.String("o", "", "output file (default stdout)")
	protoList := flag.Bool("protocols", false, "list registered commit protocols and exit")
	flag.Parse()

	if *protoList {
		fmt.Print(cliutil.ProtocolList())
		return
	}
	if err := cliutil.CheckProtocol(o.protocol); err != nil {
		fmt.Fprintln(os.Stderr, "sbtrace:", err)
		os.Exit(1)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	sink, err := buildSink(w, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := runTrace(o, sink)
	if cerr := sink.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%8d  all %d chunks committed; %d messages, %d squashes\n",
		res.Cycles, res.ChunksCommitted, res.Traffic.Messages, res.Squashes)
}
