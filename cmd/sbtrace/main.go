// Command sbtrace runs a small machine with the ScalableBulk engine's
// protocol trace enabled and prints every network message plus every
// group-formation event — the message-level view of Figures 3, 4 and 5.
//
// Usage:
//
//	sbtrace -app Barnes -cores 8 -chunks 2 | head -100
package main

import (
	"flag"
	"fmt"
	"os"

	"scalablebulk/internal/cache"
	"scalablebulk/internal/core"
	"scalablebulk/internal/dir"
	"scalablebulk/internal/event"
	"scalablebulk/internal/mem"
	"scalablebulk/internal/mesh"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/proc"
	"scalablebulk/internal/stats"
	"scalablebulk/internal/workload"
)

func main() {
	app := flag.String("app", "Barnes", "application model")
	cores := flag.Int("cores", 8, "number of processors")
	chunks := flag.Int("chunks", 2, "chunks per core")
	seed := flag.Int64("seed", 1, "deterministic seed")
	reads := flag.Bool("reads", false, "also trace read-path messages")
	flag.Parse()

	prof, ok := workload.ByName(*app)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *app)
		os.Exit(1)
	}

	eng := event.New()
	net := mesh.New(eng, mesh.Config{Nodes: *cores, LinkLatency: 7, Contention: true})
	env := &dir.Env{
		Eng: eng, Net: net, Map: mem.NewMapper(*cores), State: dir.NewState(),
		Coll: stats.New(), DirLookup: 2, MemLatency: 300,
	}
	proto := core.New(env, core.DefaultConfig())
	proto.Trace = func(format string, args ...any) {
		fmt.Printf("%8d  * %s\n", eng.Now(), fmt.Sprintf(format, args...))
	}
	isRead := func(k msg.Kind) bool {
		switch k {
		case msg.ReadReq, msg.ReadMemReply, msg.ReadShReply, msg.ReadDirtyFwd,
			msg.ReadDirtyReply, msg.ReadNack:
			return true
		}
		return false
	}
	net.OnSend = func(m *msg.Msg) {
		if !*reads && isRead(m.Kind) {
			return
		}
		extra := ""
		if m.Kind == msg.CommitRequest {
			extra = fmt.Sprintf(" gvec=%v try=%d", m.GVec, m.TID)
		}
		if m.Recall != nil {
			extra = fmt.Sprintf(" +recall(%s try %d)", m.Recall.Tag, m.Recall.Try)
		}
		fmt.Printf("%8d  > %s%s\n", eng.Now(), m, extra)
	}

	gen := workload.New(prof, *cores, *seed)
	procs := make([]*proc.Proc, *cores)
	env.Cores = make([]dir.Core, *cores)
	pcfg := proc.DefaultConfig()
	pcfg.Seed = *seed
	for i := 0; i < *cores; i++ {
		// Tiny caches keep the trace interesting (more sharing).
		procs[i] = proc.New(env, proto, gen, i, *chunks,
			cache.Config{SizeBytes: 8 << 10, Assoc: 4},
			cache.Config{SizeBytes: 64 << 10, Assoc: 8}, pcfg)
		env.Cores[i] = procs[i]
	}
	rp := &dir.ReadPath{Env: env, Proto: proto}
	for i := 0; i < *cores; i++ {
		node := i
		net.Register(node, func(m *msg.Msg) {
			if m.Kind.SideOf() == msg.SideDir {
				if !rp.HandleDir(node, m) {
					proto.HandleDir(node, m)
				}
			} else {
				procs[node].Handle(m)
			}
		})
	}
	for _, p := range procs {
		p.Start()
	}
	for {
		done := true
		for _, p := range procs {
			if !p.Done() {
				done = false
				break
			}
		}
		if done {
			break
		}
		if !eng.Step() {
			fmt.Fprintln(os.Stderr, "deadlock: event queue drained")
			os.Exit(1)
		}
	}
	fmt.Printf("%8d  all %d chunks committed; %d messages, group failures: %+v\n",
		eng.Now(), *cores**chunks, net.Stats().Messages, proto.Fails)
}
