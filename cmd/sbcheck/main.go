// Command sbcheck is the model checker front-end: it explores the
// mesh-message interleavings of a small configuration for each selected
// protocol, checking the I1–I5 invariants, committed-write serializability
// and quiescence at every step. On a violation it writes a minimized,
// replayable counterexample schedule; given -schedule it instead replays a
// recorded schedule and verifies it reproduces bit-identically.
//
// Usage:
//
//	sbcheck                                  # explore all protocols at 2×2
//	sbcheck -proto ScalableBulk -cores 3     # one protocol, bigger config
//	sbcheck -unordered                       # adversarial: lift per-pair FIFO
//	sbcheck -noreduce                        # cross-check the DPOR reduction
//	sbcheck -schedule ce.json                # replay a recorded schedule
//	sbcheck -protocols                       # list the protocol registry
//
// Exit codes: 0 exhausted (or replay reproduced) with no violation; 1
// setup/internal error; 2 clean but bounded (a budget tripped before the
// space was exhausted); 3 violation found (or replay mismatch).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"scalablebulk/internal/cliutil"
	"scalablebulk/internal/explore"
	"scalablebulk/internal/protocol"
)

type protoReport struct {
	Report *explore.Report `json:"report"`
	WallMS float64         `json:"wall_ms"`
	// Counterexample is the path the minimized schedule was written to.
	Counterexample string `json:"counterexample,omitempty"`
}

type checkReport struct {
	GeneratedBy string         `json:"generated_by"`
	Config      map[string]any `json:"config"`
	Protocols   []protoReport  `json:"protocols"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		protos    = flag.String("proto", "", "comma-separated protocols to check (default: every registered protocol)")
		protoList = flag.Bool("protocols", false, "list registered commit protocols and exit")
		cores     = flag.Int("cores", 2, "cores in the checked configuration (2–4 is the useful range)")
		chunks    = flag.Int("chunks", 2, "chunks per core")
		seed      = flag.Int64("seed", 1, "workload seed")
		profile   = flag.String("profile", "conflict", "checking workload: conflict | free")
		depth     = flag.Int("depth", 2000, "max scheduling choice steps per run (exceeding it reports a livelock)")
		budget    = flag.Int("budget", 150_000, "max schedules to execute (hitting it makes the result bounded, not exhaustive)")
		states    = flag.Int("states", 500_000, "max visited choice-point digests")
		unordered = flag.Bool("unordered", false, "lift the per-(src,dst) FIFO delivery order (adversarial over-approximation of the torus)")
		skips     = flag.Int("skips", explore.DefaultMaxSkips, "fairness bound: times one pending message may be passed over (-1: unlimited — expect starvation livelocks)")
		noreduce  = flag.Bool("noreduce", false, "disable partial-order reduction (exhaustive cross-check; much slower)")
		schedule  = flag.String("schedule", "", "replay this recorded schedule file instead of exploring")
		specPath  = flag.String("spec", "", "explore from this spec file (sbsoak writes one per failed point) instead of building a spec from flags")
		saveDir   = flag.String("savedir", ".", "directory for counterexample schedule files ('' disables writing them)")
		outPath   = flag.String("o", "", "write a JSON report to this path (- for stdout)")
	)
	flag.Parse()

	if *protoList {
		fmt.Print(cliutil.ProtocolList())
		return 0
	}
	if *schedule != "" {
		return replay(*schedule)
	}

	var fromSpec *explore.Spec
	if *specPath != "" {
		s, err := explore.LoadSpec(*specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sbcheck:", err)
			return 1
		}
		fromSpec = &s
	}

	names := protocol.Names()
	if fromSpec != nil {
		names = []string{fromSpec.Proto}
	} else if *protos != "" {
		names = strings.Split(*protos, ",")
	}
	for _, n := range names {
		if err := cliutil.CheckProtocol(n); err != nil {
			fmt.Fprintln(os.Stderr, "sbcheck:", err)
			return 1
		}
	}
	profiles := explore.Profiles()
	prof, ok := profiles[*profile]
	if !ok {
		fmt.Fprintf(os.Stderr, "sbcheck: unknown profile %q (have: conflict, free)\n", *profile)
		return 1
	}

	rep := checkReport{
		GeneratedBy: "cmd/sbcheck",
		Config: map[string]any{
			"cores": *cores, "chunks": *chunks, "seed": *seed, "profile": *profile,
			"depth": *depth, "budget": *budget, "states": *states,
			"unordered": *unordered, "skips": *skips, "noreduce": *noreduce,
		},
	}
	worst := 0
	for _, name := range names {
		opts := explore.DefaultOptions(name)
		if fromSpec != nil {
			opts.Spec = *fromSpec
			if *unordered {
				opts.Unordered = true
			}
		} else {
			opts.Cores = *cores
			opts.Chunks = *chunks
			opts.Seed = *seed
			opts.Profile = prof
			opts.Unordered = *unordered
			opts.MaxSkips = *skips
		}
		opts.MaxDepth = *depth
		opts.MaxRuns = *budget
		opts.MaxStates = *states
		opts.NoReduce = *noreduce

		start := time.Now()
		r, err := explore.Explore(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sbcheck:", err)
			return 1
		}
		pr := protoReport{Report: r, WallMS: float64(time.Since(start).Microseconds()) / 1000}
		fmt.Println(r.Summary())
		switch {
		case r.Violation != nil:
			worst = 3
			if r.Dump != "" {
				fmt.Printf("  machine state at the violation:\n%s", indent(r.Dump))
			}
			if r.Schedule != nil && *saveDir != "" {
				path := fmt.Sprintf("%s/sbcheck-%s-%s.json", *saveDir,
					sanitize(name), r.Violation.Kind)
				r.Schedule.Note = fmt.Sprintf("minimized counterexample: %s", r.Violation)
				if err := r.Schedule.Save(path); err != nil {
					fmt.Fprintln(os.Stderr, "sbcheck:", err)
					return 1
				}
				pr.Counterexample = path
				fmt.Printf("  counterexample written to %s (replay: sbcheck -schedule %s)\n", path, path)
			}
		case r.Outcome == "bounded" && worst == 0:
			worst = 2
		}
		rep.Protocols = append(rep.Protocols, pr)
	}

	if *outPath != "" {
		data, _ := json.MarshalIndent(&rep, "", "  ")
		data = append(data, '\n')
		if *outPath == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sbcheck:", err)
			return 1
		}
	}
	return worst
}

// replay re-executes a recorded schedule and reports whether it reproduced.
func replay(path string) int {
	s, err := explore.LoadSchedule(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbcheck:", err)
		return 1
	}
	if s.Note != "" {
		fmt.Printf("%s: %s\n", path, s.Note)
	}
	rr, err := s.Replay()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbcheck: NOT REPRODUCED:", err)
		if rr != nil && rr.Dump != "" {
			fmt.Printf("  machine state:\n%s", indent(rr.Dump))
		}
		return 3
	}
	if rr.Violation != nil {
		fmt.Printf("reproduced: %s (%d choice steps)\n", rr.Violation, rr.Steps)
		if rr.Dump != "" {
			fmt.Printf("  machine state at the violation:\n%s", indent(rr.Dump))
		}
		for _, line := range rr.Flight {
			fmt.Printf("  flight: %s\n", line)
		}
		return 0
	}
	fmt.Printf("reproduced: clean run, %d choice steps, final digest %#x\n", rr.Steps, rr.Digest)
	return 0
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n    ") + "\n"
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '-'
	}, name)
}
