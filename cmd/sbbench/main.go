// Command sbbench is the reproducible benchmark runner behind the repo's
// BENCH_*.json performance trajectory. One invocation measures three layers:
//
//   - micro: the DES event queue (calendar vs the preserved heap reference)
//     and the signature kernels (word-level vs the Ref* baselines), in
//     ns/op and allocs/op via testing.Benchmark;
//   - per-protocol: one contended application (Barnes, 64 processors) under
//     each protocol — wall time, simulated cycles/second, and heap
//     allocations per run;
//   - sweep: the full figure sweep on the parallel engine (and, without
//     -quick, serially as well, for the measured speedup), plus per-figure
//     render times from the populated cache.
//
// Output is a JSON report (-o) and, optionally, a benchstat-compatible text
// file (-gobench) for comparison against bench/baseline.txt. Everything is
// seeded and deterministic except wall-clock timings.
//
// Exit codes: 0 success; 1 setup/internal error; 2 aborted by SIGINT/SIGTERM
// or the -timeout budget; 3 completed with sweep point failures (crash
// bundles land in -crashdir).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	scalablebulk "scalablebulk"
	"scalablebulk/internal/cliutil"
	"scalablebulk/internal/event"
	"scalablebulk/internal/farm"
	"scalablebulk/internal/metrics"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/sig"
	"scalablebulk/internal/trace"
)

type microResult struct {
	NsPerOp     float64 `json:"ns_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	BytesPerOp  int64   `json:"bytes_op"`
}

type protocolResult struct {
	Protocol     string  `json:"protocol"`
	App          string  `json:"app"`
	Cores        int     `json:"cores"`
	WallMS       float64 `json:"wall_ms"`
	SimCycles    uint64  `json:"sim_cycles"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	Mallocs      uint64  `json:"mallocs"`
	Committed    uint64  `json:"chunks_committed"`
}

type figureResult struct {
	Figure string  `json:"figure"`
	WallMS float64 `json:"render_wall_ms"`
}

// scalingResult is one (cores, shards) cell of the sharded-engine scaling
// layer. Speedup is wall(shards=1) / wall(this cell) at the same core count,
// so the 1-shard row is always 1.0 and >1.0 means the parallel engine beat
// its own single-shard overhead baseline on this host.
type scalingResult struct {
	App           string  `json:"app"`
	Cores         int     `json:"cores"`
	Shards        int     `json:"shards"`
	WallMS        float64 `json:"wall_ms"`
	SimCycles     uint64  `json:"sim_cycles"`
	CyclesPerSec  float64 `json:"cycles_per_sec"`
	Speedup       float64 `json:"speedup"`
	SerialRounds  uint64  `json:"serial_rounds"`
	ParallelRound uint64  `json:"parallel_rounds"`
	BarrierStalls uint64  `json:"barrier_stalls"`
}

type sweepResult struct {
	Points         int     `json:"points"`
	Parallelism    int     `json:"parallelism"`
	ParallelWallMS float64 `json:"parallel_wall_ms"`
	SerialWallMS   float64 `json:"serial_wall_ms,omitempty"`
	Speedup        float64 `json:"speedup,omitempty"`
}

type report struct {
	Bench       string                 `json:"bench"`
	GeneratedBy string                 `json:"generated_by"`
	Config      map[string]any         `json:"config"`
	Micro       map[string]microResult `json:"micro"`
	Protocols   []protocolResult       `json:"protocols"`
	Scaling     []scalingResult        `json:"scaling,omitempty"`
	Figures     []figureResult         `json:"figures"`
	Sweep       sweepResult            `json:"sweep"`
}

func main() {
	os.Exit(run())
}

func run() int {
	testing.Init() // registers -test.benchtime, which micro() adjusts per mode
	var (
		quick     = flag.Bool("quick", false, "CI smoke mode: shorter micro runs, skip the serial sweep")
		chunks    = flag.Int("chunks", 4, "Session ChunksPerCore (figure-sweep sizing)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		par       = flag.Int("j", 0, "sweep parallelism (0 = GOMAXPROCS)")
		timeout   = flag.Duration("timeout", 0, "per-run wall-clock budget (0 = none)")
		crashDir  = flag.String("crashdir", "", "directory for per-point crash bundles ('' disables)")
		outPath   = flag.String("o", "BENCH_PR10.json", "JSON report path (- for stdout)")
		gobench   = flag.String("gobench", "", "also write benchstat-compatible text to this path")
		telemetry = flag.String("telemetry", "", "serve live metrics on this address while benchmarking (e.g. :8090)")
		server    = flag.String("server", "", "run the figure sweep on a sweep-farm server at this base URL (skips the serial comparison)")
		protoList = flag.Bool("protocols", false, "list registered commit protocols and exit")
		wl        = flag.String("workload", "", "workload source for the per-protocol runs (see -workloads); empty = synthetic Barnes")
		wlList    = flag.Bool("workloads", false, "list registered workload sources and exit")
	)
	flag.Parse()

	if *protoList {
		fmt.Print(cliutil.ProtocolList())
		return 0
	}
	if *wlList {
		fmt.Print(cliutil.WorkloadList())
		return 0
	}
	if err := cliutil.CheckWorkload(*wl); err != nil {
		fmt.Fprintln(os.Stderr, "sbbench:", err)
		return 1
	}

	ctx, stop := cliutil.SignalContext()
	defer stop()

	var reg *metrics.Registry
	if *telemetry != "" {
		reg = metrics.NewRegistry()
		addr, closeFn, err := metrics.Serve(*telemetry, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sbbench:", err)
			return 1
		}
		defer closeFn()
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics\n", addr)
	}

	parallelism := *par
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	rep := report{
		Bench:       "PR10",
		GeneratedBy: "cmd/sbbench",
		Config: map[string]any{
			"chunks_per_core": *chunks,
			"seed":            *seed,
			"parallelism":     parallelism,
			"quick":           *quick,
			"gomaxprocs":      runtime.GOMAXPROCS(0),
		},
		Micro: map[string]microResult{},
	}

	benchTime := 2 * time.Second
	if *quick {
		benchTime = 300 * time.Millisecond
	}

	fmt.Fprintln(os.Stderr, "== micro: event queue ==")
	rep.Micro["event_calendar"] = micro(benchTime, benchEventCalendar)
	rep.Micro["event_heap"] = micro(benchTime, benchEventHeap)
	fmt.Fprintln(os.Stderr, "== micro: sig kernels ==")
	rep.Micro["sig_overlaps"] = micro(benchTime, benchSigOverlaps)
	rep.Micro["sig_overlaps_ref"] = micro(benchTime, benchSigOverlapsRef)
	rep.Micro["sig_empty"] = micro(benchTime, benchSigEmpty)
	rep.Micro["sig_empty_ref"] = micro(benchTime, benchSigEmptyRef)
	rep.Micro["sig_union"] = micro(benchTime, benchSigUnion)
	rep.Micro["sig_union_ref"] = micro(benchTime, benchSigUnionRef)
	fmt.Fprintln(os.Stderr, "== micro: trace nil-sink ==")
	rep.Micro["trace_nilsink"] = micro(benchTime, benchTraceNilSink)
	if m := rep.Micro["trace_nilsink"]; m.AllocsPerOp != 0 {
		// The disabled tracer allocating would tax every simulated message;
		// fail loudly rather than publish a poisoned baseline.
		fmt.Fprintf(os.Stderr, "sbbench: trace_nilsink allocated %d allocs/op, want 0\n", m.AllocsPerOp)
		return 1
	}

	benchApp := "Barnes"
	if _, ok := scalablebulk.WorkloadProfile(*wl); ok {
		benchApp = *wl
	}
	fmt.Fprintf(os.Stderr, "== per-protocol runs (%s, 64 processors) ==\n", benchApp)
	for _, protocol := range scalablebulk.Protocols {
		pr, err := protocolRun(ctx, protocol, *wl, *chunks, *seed, *timeout, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sbbench: %s: %v\n", protocol, err)
			if errors.Is(err, scalablebulk.ErrAborted) {
				return 2
			}
			return 1
		}
		rep.Protocols = append(rep.Protocols, pr)
	}

	fmt.Fprintln(os.Stderr, "== sharded-engine scaling (Barnes) ==")
	sc, err := scalingRuns(ctx, *chunks, *seed, *timeout, *quick)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbbench:", err)
		if errors.Is(err, scalablebulk.ErrAborted) {
			return 2
		}
		return 1
	}
	rep.Scaling = sc

	fmt.Fprintln(os.Stderr, "== figure sweep ==")
	sw, figs, code := sweep(ctx, *chunks, *seed, parallelism, !*quick && *server == "", *timeout, *crashDir, *server, reg)
	rep.Sweep, rep.Figures = sw, figs
	if code != 0 && code != 3 {
		return code
	}

	if err := writeJSON(*outPath, &rep); err != nil {
		fmt.Fprintln(os.Stderr, "sbbench:", err)
		return 1
	}
	if *gobench != "" {
		if err := writeGobench(*gobench, &rep); err != nil {
			fmt.Fprintln(os.Stderr, "sbbench:", err)
			return 1
		}
	}
	return code
}

func micro(d time.Duration, fn func(*testing.B)) microResult {
	prev := flag.Lookup("test.benchtime")
	if prev != nil {
		_ = prev.Value.Set(d.String())
	}
	r := testing.Benchmark(fn)
	return microResult{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// benchEventCalendar replays the simulator's event mix (chains of +7 link
// hops and +2 directory lookups, occasional +300 memory trips, cancelled
// +200k watchdogs) on the calendar engine; benchEventHeap replays the same
// mix on the preserved heap reference.
func benchEventCalendar(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := event.New()
		eventLoad(10_000,
			func(t event.Time, fn event.Handler) func() { tk := e.At(t, fn); return tk.Cancel },
			e.Now, e.Step)
	}
}

func benchEventHeap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := event.NewHeap()
		eventLoad(10_000,
			func(t event.Time, fn event.Handler) func() { tk := e.At(t, fn); return tk.Cancel },
			e.Now, e.Step)
	}
}

func eventLoad(n int, at func(event.Time, event.Handler) func(), now func() event.Time, step func() bool) {
	var watchdogs []func()
	var chain event.Handler
	left := n
	chain = func() {
		if left == 0 {
			return
		}
		left--
		d := event.Time(7)
		switch left % 29 {
		case 0:
			d = 300
		case 1:
			d = 2
		}
		at(now()+d, chain)
		if left%97 == 0 {
			watchdogs = append(watchdogs, at(now()+200_000, func() {}))
		}
		if len(watchdogs) > 4 {
			watchdogs[0]()
			watchdogs = watchdogs[1:]
		}
	}
	at(1, chain)
	for step() {
	}
}

var (
	sinkBool bool
	sinkSig  sig.Sig
)

func sigFixtures() (a, b sig.Sig) {
	return sig.FromLines([]sig.Line{1, 513, 4097, 70000}),
		sig.FromLines([]sig.Line{2, 514, 4098, 70001})
}

func benchSigOverlaps(b *testing.B) {
	x, y := sigFixtures()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkBool = x.Overlaps(&y)
	}
}

func benchSigOverlapsRef(b *testing.B) {
	x, y := sigFixtures()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkBool = sig.RefOverlaps(&x, &y)
	}
}

func benchSigEmpty(b *testing.B) {
	x, _ := sigFixtures()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkBool = x.Empty()
	}
}

func benchSigEmptyRef(b *testing.B) {
	x, _ := sigFixtures()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkBool = sig.RefEmpty(&x)
	}
}

func benchSigUnion(b *testing.B) {
	x, y := sigFixtures()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkSig = x.Union(y)
	}
}

func benchSigUnionRef(b *testing.B) {
	x, y := sigFixtures()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkSig = sig.RefUnion(x, y)
	}
}

// benchTraceNilSink measures the disabled-tracer emission paths — the price
// every message pays when no -trace sink is attached. The contract is zero
// allocations and low single-digit ns/op; run() hard-fails on any allocation.
func benchTraceNilSink(b *testing.B) {
	var tr *trace.Tracer
	m := &msg.Msg{Kind: msg.Grab, Src: 1, Dst: 2, Tag: msg.CTag{Proc: 1, Seq: 3}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span(trace.KCommit, trace.PhaseBegin, 3, false, m.Tag, 0)
		tr.MsgSend(m)
		tr.MsgDeliver(m)
	}
}

// protocolRun measures one full simulation: wall time, simulated
// cycles/second of wall time, and heap allocations.
func protocolRun(ctx context.Context, protocol, wl string, chunks int, seed int64, timeout time.Duration, reg *metrics.Registry) (protocolResult, error) {
	prof, _ := scalablebulk.AppByName("Barnes")
	cfg := scalablebulk.DefaultConfig(64, protocol)
	cfg.ChunksPerCore = chunks
	cfg.Seed = seed
	cfg.RunTimeout = timeout
	if lbl, ok := scalablebulk.WorkloadProfile(wl); ok {
		prof, cfg.Workload = lbl, wl
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := scalablebulk.RunContext(ctx, prof, cfg)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return protocolResult{}, err
	}
	metrics.ObserveRun(reg, res.Coll, res.Traffic)
	metrics.ObserveSharding(reg, res.Sharding, res.RingResidency)
	pr := protocolResult{
		Protocol:     protocol,
		App:          prof.Name,
		Cores:        64,
		WallMS:       float64(wall.Microseconds()) / 1000,
		SimCycles:    uint64(res.Cycles),
		CyclesPerSec: float64(res.Cycles) / wall.Seconds(),
		Mallocs:      after.Mallocs - before.Mallocs,
		Committed:    res.ChunksCommitted,
	}
	fmt.Fprintf(os.Stderr, "  %-18s %8.1f ms  %12.0f cycles/s  %9d mallocs\n",
		protocol, pr.WallMS, pr.CyclesPerSec, pr.Mallocs)
	return pr, nil
}

// scalingRuns measures the sharded engine against the serial reference:
// Shards ∈ {0, 1, 2, 4, 8} on 64- and 256-processor machines, plus a
// 1024-processor serial-vs-8-shard pair in full mode (the machine the
// figure extension in EXPERIMENTS.md targets). Total work is held constant
// per core count via RunScaled. Speedup compares each cell against the
// serial (Shards = 0) cell at the same core count, so >1.0 means the
// sharded engine beat the reference engine outright on this host, and the
// 1-shard row isolates the lockstep/staging overhead. Alongside timings it
// enforces the engine's contract: every cell at one core count must
// produce the serial cell's ResultFingerprint, or the benchmark fails
// outright rather than publish timings of divergent simulations.
func scalingRuns(ctx context.Context, chunks int, seed int64, timeout time.Duration, quick bool) ([]scalingResult, error) {
	prof, _ := scalablebulk.AppByName("Barnes")
	cells := map[int][]int{
		64:  {0, 1, 2, 4, 8},
		256: {0, 1, 2, 4, 8},
	}
	coreCounts := []int{64, 256}
	if !quick {
		// The 1024-core pair is minutes of wall time; -quick (CI) skips it.
		cells[1024] = []int{0, 8}
		coreCounts = append(coreCounts, 1024)
	}
	var out []scalingResult
	for _, cores := range coreCounts {
		var base float64
		var baseFP string
		for _, shards := range cells[cores] {
			cfg := scalablebulk.DefaultConfig(cores, scalablebulk.ProtoScalableBulk)
			cfg.Seed = seed
			cfg.RunTimeout = timeout
			cfg.Shards = shards
			runtime.GC()
			start := time.Now()
			res, err := scalablebulk.RunScaledContext(ctx, prof, cfg, 64*chunks)
			wall := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("scaling %d cores / %d shards: %w", cores, shards, err)
			}
			fp := scalablebulk.FingerprintSHA(res)
			sr := scalingResult{
				App: prof.Name, Cores: cores, Shards: shards,
				WallMS:       float64(wall.Microseconds()) / 1000,
				SimCycles:    uint64(res.Cycles),
				CyclesPerSec: float64(res.Cycles) / wall.Seconds(),
			}
			if sh := res.Sharding; sh != nil {
				sr.SerialRounds, sr.ParallelRound, sr.BarrierStalls =
					sh.SerialRounds, sh.ParallelRounds, sh.BarrierStalls
			}
			if shards == 0 {
				base, baseFP = sr.WallMS, fp
			} else if fp != baseFP {
				return nil, fmt.Errorf("scaling %d cores: fingerprint diverged between serial and %d shards", cores, shards)
			}
			sr.Speedup = base / sr.WallMS
			fmt.Fprintf(os.Stderr, "  %4d cores %2d shards  %8.1f ms  speedup %.2fx\n",
				cores, shards, sr.WallMS, sr.Speedup)
			out = append(out, sr)
		}
	}
	return out, nil
}

// sweep times the full figure sweep on the parallel engine and, when serial
// is set, serially on a fresh session for the measured speedup. Figure
// renders are timed afterward from the populated cache. The int is the
// process exit code: 0 clean, 2 aborted, 3 point failures (figures skipped).
func sweep(ctx context.Context, chunks int, seed int64, parallelism int, serial bool, timeout time.Duration, crashDir, server string, reg *metrics.Registry) (sweepResult, []figureResult, int) {
	configure := func(cfg *scalablebulk.Config) { cfg.RunTimeout = timeout }
	s := scalablebulk.NewSession(chunks, seed, nil)
	s.Configure = configure
	s.CrashDir = crashDir
	s.Metrics = reg
	points := s.SweepPoints()

	var out *scalablebulk.SweepOutcome
	start := time.Now()
	if server != "" {
		// Farm mode: the points run on sbworkers; results are injected into
		// the session cache so figure rendering below is identical.
		spec := &farm.SweepSpec{
			ChunksPerCore: chunks, Seed: seed,
			RunTimeoutMS: timeout.Milliseconds(), Points: points,
		}
		client := &farm.Client{Base: server, Corr: farm.NewCorrID()}
		fmt.Fprintf(os.Stderr, "  farm sweep corr=%s\n", client.Corr)
		var err error
		out, err = client.RunSweep(ctx, spec, func(p farm.Point, res *scalablebulk.Result, _ bool) {
			s.Inject(p, res)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sbbench:", err)
			return sweepResult{Points: len(points)}, nil, cliutil.ExitError
		}
	} else {
		out = s.SweepContext(ctx, points, parallelism)
	}
	parWall := time.Since(start)
	sw := sweepResult{
		Points:         len(points),
		Parallelism:    parallelism,
		ParallelWallMS: float64(parWall.Microseconds()) / 1000,
	}
	fmt.Fprintf(os.Stderr, "  parallel sweep (%d points, j=%d): %.1f ms\n",
		len(points), parallelism, sw.ParallelWallMS)
	if code := cliutil.SweepExitCode(os.Stderr, "sbbench", out); code != 0 {
		return sw, nil, code
	}

	if serial {
		s2 := scalablebulk.NewSession(chunks, seed, nil)
		s2.Configure = configure
		s2.CrashDir = crashDir
		start = time.Now()
		out2 := s2.SweepContext(ctx, points, 1)
		serWall := time.Since(start)
		if code := cliutil.SweepExitCode(os.Stderr, "sbbench", out2); code != 0 {
			return sw, nil, code
		}
		sw.SerialWallMS = float64(serWall.Microseconds()) / 1000
		sw.Speedup = serWall.Seconds() / parWall.Seconds()
		fmt.Fprintf(os.Stderr, "  serial sweep: %.1f ms (speedup %.2fx)\n", sw.SerialWallMS, sw.Speedup)
	}

	var figs []figureResult
	s.SetOut(io.Discard)
	for _, id := range scalablebulk.FigureIDs() {
		start = time.Now()
		if err := s.Figure(id); err != nil {
			fmt.Fprintln(os.Stderr, "sbbench: figure:", err)
			return sw, figs, 1
		}
		figs = append(figs, figureResult{
			Figure: fmt.Sprintf("Figure %d", id),
			WallMS: float64(time.Since(start).Microseconds()) / 1000,
		})
	}
	return sw, figs, 0
}

func writeJSON(path string, rep *report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// writeGobench renders the report in the `go test -bench` text format that
// benchstat parses, so CI can diff runs against bench/baseline.txt.
func writeGobench(path string, rep *report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "goos: %s\ngoarch: %s\npkg: scalablebulk/cmd/sbbench\n", runtime.GOOS, runtime.GOARCH)
	names := []string{
		"event_calendar", "event_heap",
		"sig_overlaps", "sig_overlaps_ref",
		"sig_empty", "sig_empty_ref",
		"sig_union", "sig_union_ref",
		"trace_nilsink",
	}
	camel := map[string]string{
		"event_calendar": "EventCalendar", "event_heap": "EventHeap",
		"sig_overlaps": "SigOverlaps", "sig_overlaps_ref": "SigOverlapsRef",
		"sig_empty": "SigEmpty", "sig_empty_ref": "SigEmptyRef",
		"sig_union": "SigUnion", "sig_union_ref": "SigUnionRef",
		"trace_nilsink": "TraceNilSink",
	}
	for _, n := range names {
		m, ok := rep.Micro[n]
		if !ok {
			continue
		}
		fmt.Fprintf(f, "Benchmark%s 	       1 	 %.1f ns/op 	 %d B/op 	 %d allocs/op\n",
			camel[n], m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}
	for _, p := range rep.Protocols {
		fmt.Fprintf(f, "BenchmarkRun%s 	       1 	 %.0f ns/op\n", sanitize(p.Protocol), p.WallMS*1e6)
	}
	for _, sc := range rep.Scaling {
		fmt.Fprintf(f, "BenchmarkScaling%dc%ds 	       1 	 %.0f ns/op\n", sc.Cores, sc.Shards, sc.WallMS*1e6)
	}
	fmt.Fprintf(f, "BenchmarkSweepParallel 	       1 	 %.0f ns/op\n", rep.Sweep.ParallelWallMS*1e6)
	if rep.Sweep.SerialWallMS > 0 {
		fmt.Fprintf(f, "BenchmarkSweepSerial 	       1 	 %.0f ns/op\n", rep.Sweep.SerialWallMS*1e6)
	}
	return nil
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9':
			out = append(out, r)
		}
	}
	return string(out)
}
