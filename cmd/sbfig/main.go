// Command sbfig regenerates the paper's evaluation figures (Figures 7–19 of
// §6) as text tables, printing the same rows/series the paper plots.
//
// Usage:
//
//	sbfig                  # regenerate every figure
//	sbfig -fig 13          # just the commit-latency characterization
//	sbfig -chunks 32       # higher-fidelity (slower) regeneration
//	sbfig -journal f.jsonl # checkpoint the prefetch; kill + rerun resumes
//
// Exit codes: 0 success; 1 setup/internal error; 2 aborted by SIGINT/SIGTERM;
// 3 prefetch completed with point failures.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scalablebulk"
	"scalablebulk/internal/cliutil"
)

func main() {
	os.Exit(run())
}

func run() int {
	fig := flag.Int("fig", 0, "figure number 7–19 (0 = all)")
	chunks := flag.Int("chunks", 16, "chunks per core at 64 processors (whole-problem work = 64× this)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	squash := flag.Bool("squash", false, "also print the §6.1 squash classification")
	par := flag.Int("j", 0, "parallel simulations during prefetch (0 = all CPUs)")
	journal := flag.String("journal", "", "JSONL checkpoint journal for the prefetch; an interrupted run resumes from it")
	protoList := flag.Bool("protocols", false, "list registered commit protocols and exit")
	wl := flag.String("workload", "", "workload source override for every swept point (see -workloads); changes what the figures measure")
	wlList := flag.Bool("workloads", false, "list registered workload sources and exit")
	flag.Parse()

	if *protoList {
		fmt.Print(cliutil.ProtocolList())
		return 0
	}
	if *wlList {
		fmt.Print(cliutil.WorkloadList())
		return 0
	}
	if err := cliutil.CheckWorkload(*wl); err != nil {
		fmt.Fprintln(os.Stderr, "sbfig:", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	s := scalablebulk.NewSession(*chunks, *seed, os.Stdout)
	if *wl != "" {
		s.Configure = func(cfg *scalablebulk.Config) { cfg.Workload = *wl }
	}
	if *journal != "" {
		n, err := s.AttachJournal(*journal)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer s.Journal().Close()
		fmt.Fprintf(os.Stderr, "journal %s: %d checkpointed point(s)\n", *journal, n)
	}
	if *fig == 0 {
		// Regenerating everything: run the simulations in parallel first.
		fmt.Fprintln(os.Stderr, "prefetching simulations...")
		out := s.SweepContext(ctx, s.SweepPoints(), *par)
		for _, f := range out.Failures {
			fmt.Fprintf(os.Stderr, "sbfig: FAIL %s/%s/%d: %v\n",
				f.Point.App, f.Point.Protocol, f.Point.Cores, f.Err)
		}
		if out.Restored > 0 {
			fmt.Fprintf(os.Stderr, "restored %d point(s) from the journal\n", out.Restored)
		}
		switch {
		case len(out.Failures) > 0:
			return 3
		case out.Aborted:
			fmt.Fprintln(os.Stderr, "sbfig: aborted")
			return 2
		}
	}
	ids := scalablebulk.FigureIDs()
	if *fig != 0 {
		ids = []int{*fig}
	}
	start := time.Now()
	for _, id := range ids {
		fmt.Printf("\n================ Figure %d ================\n", id)
		if err := s.Figure(id); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if *squash || *fig == 0 {
		fmt.Printf("\n================ §6.1 squashes ================\n")
		if err := s.SquashSummary(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	fmt.Printf("\nregenerated in %v\n", time.Since(start).Round(time.Second))
	return 0
}
