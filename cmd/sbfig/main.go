// Command sbfig regenerates the paper's evaluation figures (Figures 7–19 of
// §6) as text tables, printing the same rows/series the paper plots.
//
// Usage:
//
//	sbfig                  # regenerate every figure
//	sbfig -fig 13          # just the commit-latency characterization
//	sbfig -chunks 32       # higher-fidelity (slower) regeneration
//	sbfig -journal f.jsonl # checkpoint the prefetch; kill + rerun resumes
//
// Exit codes: 0 success; 1 setup/internal error; 2 aborted by SIGINT/SIGTERM;
// 3 prefetch completed with point failures.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"scalablebulk"
	"scalablebulk/internal/cliutil"
	"scalablebulk/internal/farm"
)

func main() {
	os.Exit(run())
}

func run() int {
	fig := flag.Int("fig", 0, "figure number 7–19 (0 = all)")
	chunks := flag.Int("chunks", 16, "chunks per core at 64 processors (whole-problem work = 64× this)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	shards := flag.Int("shards", 0, "event-engine shards per simulation (0 = serial); figure output is byte-identical at any value")
	squash := flag.Bool("squash", false, "also print the §6.1 squash classification")
	par := flag.Int("j", 0, "parallel simulations during prefetch (0 = all CPUs)")
	journal := flag.String("journal", "", "JSONL checkpoint journal for the prefetch; an interrupted run resumes from it")
	server := flag.String("server", "", "prefetch the sweep on a sweep-farm server at this base URL instead of in-process")
	protoList := flag.Bool("protocols", false, "list registered commit protocols and exit")
	wl := flag.String("workload", "", "workload source override for every swept point (see -workloads); changes what the figures measure")
	wlList := flag.Bool("workloads", false, "list registered workload sources and exit")
	flag.Parse()

	if *protoList {
		fmt.Print(cliutil.ProtocolList())
		return 0
	}
	if *wlList {
		fmt.Print(cliutil.WorkloadList())
		return 0
	}
	if err := cliutil.CheckWorkload(*wl); err != nil {
		fmt.Fprintln(os.Stderr, "sbfig:", err)
		return cliutil.ExitError
	}

	ctx, stop := cliutil.SignalContext()
	defer stop()

	s := scalablebulk.NewSession(*chunks, *seed, os.Stdout)
	if *wl != "" || *shards != 0 {
		wlName, nShards := *wl, *shards
		s.Configure = func(cfg *scalablebulk.Config) {
			if wlName != "" {
				cfg.Workload = wlName
			}
			cfg.Shards = nShards
		}
	}
	if *journal != "" && *server == "" {
		n, err := s.AttachJournal(*journal)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return cliutil.ExitError
		}
		defer s.Journal().Close()
		fmt.Fprintf(os.Stderr, "journal %s: %d checkpointed point(s)\n", *journal, n)
	}
	if *fig == 0 || *server != "" {
		// Regenerating everything: run the simulations in parallel first —
		// locally, or on the farm with results injected into the session's
		// cache so the figure renderers below never notice the difference.
		var out *scalablebulk.SweepOutcome
		if *server != "" {
			fmt.Fprintln(os.Stderr, "prefetching simulations via", *server, "...")
			spec := &farm.SweepSpec{
				ChunksPerCore: *chunks, Seed: *seed, Workload: *wl,
				Points: s.SweepPoints(),
			}
			client := &farm.Client{Base: *server, Corr: farm.NewCorrID()}
			fmt.Fprintf(os.Stderr, "farm sweep corr=%s\n", client.Corr)
			var err error
			out, err = client.RunSweep(ctx, spec, func(p farm.Point, res *scalablebulk.Result, _ bool) {
				s.Inject(p, res)
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "sbfig:", err)
				return cliutil.ExitError
			}
		} else {
			fmt.Fprintln(os.Stderr, "prefetching simulations...")
			out = s.SweepContext(ctx, s.SweepPoints(), *par)
		}
		if out.Restored > 0 {
			fmt.Fprintf(os.Stderr, "restored %d point(s) from the journal\n", out.Restored)
		}
		if code := cliutil.SweepExitCode(os.Stderr, "sbfig", out); code != cliutil.ExitOK {
			if out.Aborted && len(out.Failures) == 0 {
				fmt.Fprintln(os.Stderr, "sbfig: aborted")
			}
			return code
		}
	}
	ids := scalablebulk.FigureIDs()
	if *fig != 0 {
		ids = []int{*fig}
	}
	start := time.Now()
	for _, id := range ids {
		fmt.Printf("\n================ Figure %d ================\n", id)
		if err := s.Figure(id); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return cliutil.ExitError
		}
	}
	if *squash || *fig == 0 {
		fmt.Printf("\n================ §6.1 squashes ================\n")
		if err := s.SquashSummary(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return cliutil.ExitError
		}
	}
	fmt.Printf("\nregenerated in %v\n", time.Since(start).Round(time.Second))
	return cliutil.ExitOK
}
