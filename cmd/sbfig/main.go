// Command sbfig regenerates the paper's evaluation figures (Figures 7–19 of
// §6) as text tables, printing the same rows/series the paper plots.
//
// Usage:
//
//	sbfig                  # regenerate every figure
//	sbfig -fig 13          # just the commit-latency characterization
//	sbfig -chunks 32       # higher-fidelity (slower) regeneration
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"scalablebulk"
)

func main() {
	fig := flag.Int("fig", 0, "figure number 7–19 (0 = all)")
	chunks := flag.Int("chunks", 16, "chunks per core at 64 processors (whole-problem work = 64× this)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	squash := flag.Bool("squash", false, "also print the §6.1 squash classification")
	par := flag.Int("j", 0, "parallel simulations during prefetch (0 = all CPUs)")
	flag.Parse()

	s := scalablebulk.NewSession(*chunks, *seed, os.Stdout)
	if *fig == 0 {
		// Regenerating everything: run the simulations in parallel first.
		fmt.Fprintln(os.Stderr, "prefetching simulations...")
		if err := s.Prefetch(*par); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	ids := scalablebulk.FigureIDs()
	if *fig != 0 {
		ids = []int{*fig}
	}
	start := time.Now()
	for _, id := range ids {
		fmt.Printf("\n================ Figure %d ================\n", id)
		if err := s.Figure(id); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *squash || *fig == 0 {
		fmt.Printf("\n================ §6.1 squashes ================\n")
		if err := s.SquashSummary(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Printf("\nregenerated in %v\n", time.Since(start).Round(time.Second))
}
