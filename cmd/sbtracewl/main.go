// Command sbtracewl records, inspects and verifies workload traces (the
// internal/tracefmt format replayed by -workload replay:PATH).
//
// Usage:
//
//	sbtracewl record -o run.sbwt -workload zipf -cores 16 -chunks 16
//	sbtracewl inspect run.sbwt            # header + per-section statistics
//	sbtracewl inspect -records run.sbwt   # also dump every record
//	sbtracewl verify run.sbwt             # replay; check the embedded fingerprint
//
// record runs one simulation with the recording interposer and writes the
// captured trace, embedding the run's protocol and ResultFingerprint SHA-256.
// verify replays the trace under its recorded protocol and fails (exit 1) if
// the replayed fingerprint diverges from the embedded one — the bit-identity
// contract of DESIGN.md §14.
package main

import (
	"flag"
	"fmt"
	"os"

	"scalablebulk"
	"scalablebulk/internal/cliutil"
	"scalablebulk/internal/tracefmt"
	"scalablebulk/internal/workload"
)

func main() {
	os.Exit(run())
}

func usage() int {
	fmt.Fprintln(os.Stderr, "usage: sbtracewl record|inspect|verify [flags] [trace]")
	fmt.Fprintln(os.Stderr, "  sbtracewl record -o FILE [-workload SRC] [-app APP] [-protocol P] [-cores N] [-chunks N] [-seed S]")
	fmt.Fprintln(os.Stderr, "  sbtracewl inspect [-records] FILE")
	fmt.Fprintln(os.Stderr, "  sbtracewl verify FILE")
	return 2
}

func run() int {
	if len(os.Args) < 2 {
		return usage()
	}
	switch os.Args[1] {
	case "record":
		return record(os.Args[2:])
	case "inspect":
		return inspect(os.Args[2:])
	case "verify":
		return verify(os.Args[2:])
	default:
		return usage()
	}
}

func record(args []string) int {
	fs := flag.NewFlagSet("sbtracewl record", flag.ExitOnError)
	out := fs.String("o", "", "output trace file (required)")
	wl := fs.String("workload", "", "workload source to record (default: synthetic -app model)")
	app := fs.String("app", "Radix", "application model when recording the synthetic source")
	protocol := fs.String("protocol", scalablebulk.ProtoScalableBulk, "commit protocol of the recording run")
	cores := fs.Int("cores", 4, "number of processors")
	chunks := fs.Int("chunks", 8, "chunks committed per core")
	seed := fs.Int64("seed", 1, "deterministic seed")
	_ = fs.Parse(args)
	if *out == "" {
		fmt.Fprintln(os.Stderr, "sbtracewl record: -o is required")
		return 2
	}
	if err := cliutil.CheckProtocol(*protocol); err != nil {
		fmt.Fprintln(os.Stderr, "sbtracewl:", err)
		return 1
	}
	if err := cliutil.CheckWorkload(*wl); err != nil {
		fmt.Fprintln(os.Stderr, "sbtracewl:", err)
		return 1
	}

	prof, ok := scalablebulk.WorkloadProfile(*wl)
	if !ok {
		if prof, ok = scalablebulk.AppByName(*app); !ok {
			fmt.Fprintf(os.Stderr, "sbtracewl: unknown app %q\n", *app)
			return 1
		}
	}
	cfg := scalablebulk.DefaultConfig(*cores, *protocol)
	cfg.ChunksPerCore = *chunks
	cfg.Seed = *seed
	cfg.Workload = *wl
	rec, factory, err := workload.Record(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbtracewl:", err)
		return 1
	}
	cfg.WorkloadFactory = factory

	res, err := scalablebulk.Run(prof, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbtracewl:", err)
		return 1
	}
	rec.SetRunMeta(*protocol, scalablebulk.FingerprintSHA(res))
	tr := rec.Trace()
	if err := tracefmt.WriteFile(*out, tr); err != nil {
		fmt.Fprintln(os.Stderr, "sbtracewl:", err)
		return 1
	}
	st := tracefmt.SectionStats(tr.Chunks)
	fmt.Printf("recorded %s: %s/%s under %s, %d cores, %d+%d chunks/core, %d accesses (%d writes), %d pages\n",
		*out, tr.Header.App, tr.Header.Source, tr.Header.Protocol, tr.Header.Threads,
		tr.Header.ChunksPerCore, tr.Header.WarmupPerCore, st.Accesses, st.Writes, st.Pages)
	return 0
}

func inspect(args []string) int {
	fs := flag.NewFlagSet("sbtracewl inspect", flag.ExitOnError)
	records := fs.Bool("records", false, "also dump every record's accesses")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		return usage()
	}
	tr, err := tracefmt.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbtracewl:", err)
		return 1
	}
	h := tr.Header
	fmt.Printf("trace %s (format v%d)\n", fs.Arg(0), tracefmt.Version)
	fmt.Printf("  app/source:      %s/%s\n", h.App, h.Source)
	fmt.Printf("  recorded under:  %s (fingerprint sha256 %s)\n", orDash(h.Protocol), orDash(h.Fingerprint))
	fmt.Printf("  machine:         %d cores, %d chunks/core + %d warm-up, seed %d, %d pages/thread\n",
		h.Threads, h.ChunksPerCore, h.WarmupPerCore, h.Seed, h.PagesPerThread)
	for _, sec := range []struct {
		name string
		recs []tracefmt.Rec
	}{{"warmup", tr.Warmup}, {"chunks", tr.Chunks}} {
		st := tracefmt.SectionStats(sec.recs)
		fmt.Printf("  %-8s %6d records, %8d accesses (%d writes), %d distinct pages\n",
			sec.name, st.Records, st.Accesses, st.Writes, st.Pages)
	}
	if *records {
		for _, sec := range []struct {
			name string
			recs []tracefmt.Rec
		}{{"warmup", tr.Warmup}, {"chunks", tr.Chunks}} {
			for i := range sec.recs {
				r := &sec.recs[i]
				fmt.Printf("%s core=%d seq=%d instr=%d accesses=%d\n",
					sec.name, r.Proc, r.Seq, r.Instr, len(r.Accesses))
				for _, a := range r.Accesses {
					rw := "R"
					if a.Write {
						rw = "W"
					}
					fmt.Printf("  %s line=%d page=%d\n", rw, a.Line, uint64(a.Line)>>7)
				}
			}
		}
	}
	return 0
}

func verify(args []string) int {
	fs := flag.NewFlagSet("sbtracewl verify", flag.ExitOnError)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		return usage()
	}
	tr, err := tracefmt.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbtracewl:", err)
		return 1
	}
	h := tr.Header
	if h.Protocol == "" || h.Fingerprint == "" {
		fmt.Fprintln(os.Stderr, "sbtracewl: trace has no embedded protocol/fingerprint to verify against")
		return 1
	}
	cfg := scalablebulk.DefaultConfig(h.Threads, h.Protocol)
	cfg.ChunksPerCore, cfg.WarmupChunks = h.ChunksPerCore, h.WarmupPerCore
	cfg.Seed = h.Seed
	cfg.WorkloadFactory = workload.Replay(tr)
	prof := scalablebulk.Profile{Name: h.App, Suite: "TRACE"}
	res, err := scalablebulk.Run(prof, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbtracewl:", err)
		return 1
	}
	got := scalablebulk.FingerprintSHA(res)
	if got != h.Fingerprint {
		fmt.Fprintf(os.Stderr, "sbtracewl: FAIL: replayed fingerprint %s != recorded %s\n", got, h.Fingerprint)
		return 1
	}
	fmt.Printf("ok: replay under %s reproduces the recorded fingerprint (%s)\n", h.Protocol, got)
	return 0
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
