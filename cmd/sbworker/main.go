// Command sbworker is the sweep-farm execution side: it leases points from
// an sbserver, runs them under the spec's retry policy while heartbeating
// the lease, and delivers fingerprint-digested results.
//
//	sbworker -server http://127.0.0.1:8356 -j 2
//
// SIGTERM/SIGINT drains gracefully: no new leases, in-flight points finish
// and deliver, then the worker exits 0. A worker killed outright simply
// stops heartbeating — the server re-queues its leases.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"scalablebulk/internal/cliutil"
	"scalablebulk/internal/farm"
)

func main() { os.Exit(run()) }

func run() int {
	host, _ := os.Hostname()
	if host == "" {
		host = "worker"
	}
	var (
		server    = flag.String("server", "http://127.0.0.1:8356", "farm server base URL")
		id        = flag.String("id", fmt.Sprintf("%s-%d", host, os.Getpid()), "worker identity reported to the server")
		parallel  = flag.Int("j", 1, "concurrent leases")
		poll      = flag.Duration("poll", 0, "idle poll interval (0 uses the server's hint)")
		rpcFaults = flag.String("rpcfaults", "", "RPC fault-injection profile (flaky, lossy, chaos; empty disables)")
		faultSeed = flag.Int64("rpcfaultseed", 1, "seed for the RPC fault injector")
		logFormat = flag.String("log-format", "text", "structured log format: text or json")
	)
	flag.Parse()

	logger, err := cliutil.NewLogger(*logFormat, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbworker: %v\n", err)
		return cliutil.ExitError
	}

	client := &farm.Client{Base: *server}
	prof, err := farm.RPCFaultByName(*rpcFaults, *faultSeed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbworker: %v\n", err)
		return cliutil.ExitError
	}
	if prof != nil {
		client.HTTP = &http.Client{
			Transport: farm.NewFaultTransport(nil, *prof),
			Timeout:   30 * time.Second,
		}
	}

	ctx, stop := cliutil.SignalContext()
	defer stop()
	w := &farm.Worker{
		Client:   client,
		ID:       *id,
		Parallel: *parallel,
		Poll:     *poll,
		Log:      logger,
	}
	logger.Info("worker_start", "id", *id, "server", *server, "parallel", *parallel)
	if err := w.Run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "sbworker: %v\n", err)
		return cliutil.ExitError
	}
	return cliutil.ExitOK
}
