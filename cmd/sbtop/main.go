// Command sbtop is the farm's live status view: a refreshing terminal table
// of sweeps (with progress, throughput and ETA), workers, live leases, the
// poison list and a tail of recent events, all from one GET /api/v1/farm.
//
//	sbtop -server http://127.0.0.1:8356             # live view, 2s refresh
//	sbtop -server http://127.0.0.1:8356 -once       # one snapshot, no clear
//	sbtop -server http://127.0.0.1:8356 -once -json # raw FarmStatus JSON
//
// Exit code 0 on a clean snapshot or Ctrl-C, 1 when the server can't be
// reached.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"scalablebulk/internal/cliutil"
	"scalablebulk/internal/farm"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		server   = flag.String("server", "http://127.0.0.1:8356", "farm server base URL")
		interval = flag.Duration("interval", 2*time.Second, "refresh interval in live mode")
		once     = flag.Bool("once", false, "print one snapshot and exit (no screen clearing)")
		asJSON   = flag.Bool("json", false, "emit the raw FarmStatus JSON (implies -once semantics per refresh)")
		events   = flag.Int("events", 10, "event-tail length to request")
	)
	flag.Parse()

	client := &farm.Client{Base: *server, RetryInterval: 100 * time.Millisecond,
		MaxRetryWait: time.Second}
	ctx, stop := cliutil.SignalContext()
	defer stop()

	for {
		// Bound each fetch so a dead server fails fast instead of retrying
		// forever inside the client.
		fctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		fs, err := client.FarmStatus(fctx, *events)
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				return cliutil.ExitOK
			}
			fmt.Fprintf(os.Stderr, "sbtop: %v\n", err)
			return cliutil.ExitError
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			enc.Encode(fs)
		} else {
			if !*once {
				fmt.Print("\x1b[2J\x1b[H") // clear + home
			}
			render(os.Stdout, *server, fs)
		}
		if *once {
			return cliutil.ExitOK
		}
		select {
		case <-ctx.Done():
			return cliutil.ExitOK
		case <-time.After(*interval):
		}
	}
}

func render(w io.Writer, server string, fs *farm.FarmStatus) {
	state := "running"
	if fs.Draining {
		state = "DRAINING"
	}
	fmt.Fprintf(w, "sbtop — %s  %s  seq=%d  %s\n\n", server, fs.Now, fs.Seq, state)

	fmt.Fprintf(w, "Sweeps (%d)\n", len(fs.Sweeps))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  SWEEP\tCORR\tDONE\tQUEUED\tLEASED\tFAILED\tPOISON\tREQ\tPTS/S\tETA\tELAPSED")
	for _, sp := range fs.Sweeps {
		fmt.Fprintf(tw, "  %s\t%s\t%d/%d\t%d\t%d\t%d\t%d\t%d\t%.2f\t%s\t%s\n",
			sp.SweepID, sp.Corr, sp.Done, sp.Total, sp.Queued, sp.Leased,
			sp.Failed, sp.Poisoned, sp.Requeues, sp.PointsPerSec,
			fmtETA(sp), fmtMS(sp.ElapsedMS))
	}
	tw.Flush()

	fmt.Fprintf(w, "\nWorkers (%d)\n", len(fs.Workers))
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  WORKER\tLEASES\tDONE\tFAILED\tCRASHED\tIDLE")
	for _, ws := range fs.Workers {
		fmt.Fprintf(tw, "  %s\t%d\t%d\t%d\t%d\t%s\n",
			ws.ID, ws.Leases, ws.Done, ws.Failed, ws.Crashed, fmtMS(ws.IdleMS))
	}
	tw.Flush()

	fmt.Fprintf(w, "\nLive leases (%d)\n", len(fs.Leases))
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  LEASE\tSWEEP\tPOINT\tWORKER\tATTEMPT\tAGE/TTL")
	for _, ls := range fs.Leases {
		fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\t%d\t%s/%s\n",
			ls.Lease, ls.Sweep, ls.Point, ls.Worker, ls.Attempt,
			fmtMS(ls.AgeMS), fmtMS(ls.TTLMS))
	}
	tw.Flush()

	if len(fs.Poisoned) > 0 {
		fmt.Fprintf(w, "\nPoisoned (%d)\n", len(fs.Poisoned))
		for _, ps := range fs.Poisoned {
			fmt.Fprintf(w, "  %s point %d (%s): %s\n",
				ps.Sweep, ps.PointID, ps.Point, ps.Error)
		}
	}

	if len(fs.Events) > 0 {
		fmt.Fprintf(w, "\nRecent events\n")
		for _, e := range fs.Events {
			parts := []string{fmt.Sprintf("%6d  %-16s", e.Seq, e.Kind)}
			if e.Sweep != "" {
				parts = append(parts, "sweep="+e.Sweep)
			}
			if e.Point != "" {
				parts = append(parts, "point="+e.Point)
			}
			if e.Worker != "" {
				parts = append(parts, "worker="+e.Worker)
			}
			if e.Detail != "" {
				parts = append(parts, e.Detail)
			}
			fmt.Fprintf(w, "  %s\n", strings.Join(parts, " "))
		}
	}
}

// fmtETA renders a SweepProgress ETA: "-" while unknown, "done" when
// terminal, a duration otherwise.
func fmtETA(sp farm.SweepProgress) string {
	switch {
	case sp.Terminal:
		return "done"
	case sp.ETAMS < 0:
		return "-"
	}
	return fmtMS(sp.ETAMS)
}

// fmtMS renders a millisecond count compactly (1.2s, 3m05s, 450ms).
func fmtMS(ms int64) string {
	d := time.Duration(ms) * time.Millisecond
	switch {
	case d < time.Second:
		return fmt.Sprintf("%dms", ms)
	case d < time.Minute:
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
	return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
}
