// Command sbsoak is the long-soak runner: it sweeps applications ×
// protocols × core counts under a fault profile across seed rounds, with
// every resilience feature engaged — per-run wall-clock timeouts, per-point
// panic isolation with crash bundles, retry-with-budget-escalation for
// transient MaxCycles aborts, and a JSONL checkpoint journal so a soak
// killed by SIGINT/SIGTERM resumes where it left off.
//
// Usage:
//
//	sbsoak                                  # default soak (chaos profile)
//	sbsoak -quick                           # CI smoke matrix
//	sbsoak -rounds 8 -faults loss -j 4      # 8 seed rounds of the loss profile
//	sbsoak -proto ScalableBulk,TCC          # restrict the protocol matrix
//	sbsoak -protocols                       # list the protocol registry
//	sbsoak -journal soak.jsonl              # kill it; rerun resumes
//
// Exit codes: 0 all points completed; 1 setup/internal error; 2 aborted
// (signal or deadline); 3 completed with point failures (see -crashdir).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"scalablebulk"
	"scalablebulk/internal/cliutil"
	"scalablebulk/internal/event"
	"scalablebulk/internal/explore"
	"scalablebulk/internal/farm"
	"scalablebulk/internal/fault"
	"scalablebulk/internal/metrics"
)

type roundReport struct {
	Seed      int64   `json:"seed"`
	Profile   string  `json:"fault_profile"`
	Points    int     `json:"points"`
	Completed int     `json:"completed"`
	Restored  int     `json:"restored"`
	Failures  int     `json:"failures"`
	WallMS    float64 `json:"wall_ms"`
}

type soakReport struct {
	GeneratedBy string                      `json:"generated_by"`
	Config      map[string]any              `json:"config"`
	Rounds      []roundReport               `json:"rounds"`
	Points      int                         `json:"points_total"`
	Completed   int                         `json:"completed_total"`
	Restored    int                         `json:"restored_total"`
	Failures    []string                    `json:"failures,omitempty"`
	Retried     []scalablebulk.JournalPoint `json:"retried,omitempty"`
	Aborted     bool                        `json:"aborted"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		journalPath = flag.String("journal", "sbsoak.journal.jsonl", "JSONL checkpoint journal; an interrupted soak resumes from it ('' disables)")
		crashDir    = flag.String("crashdir", "crashes", "directory for per-point crash bundles ('' disables)")
		chunks      = flag.Int("chunks", 4, "Session ChunksPerCore (whole-problem work = 64× this)")
		seed        = flag.Int64("seed", 1, "base seed; round r uses seed+r")
		shards      = flag.Int("shards", 0, "event-engine shards per run (0 = serial); fingerprints and journals are shard-invariant")
		rounds      = flag.Int("rounds", 2, "seed rounds to sweep")
		faults      = flag.String("faults", "chaos",
			"fault-injection profile: off | "+strings.Join(fault.Names(), " | "))
		faultSeed = flag.Int64("faultseed", 0, "fault injector seed (0: reuse the run seed)")
		apps      = flag.String("apps", "Radix,Barnes,FFT", "comma-separated application models and/or workload source names")
		protos    = flag.String("proto", strings.Join(scalablebulk.Protocols, ","), "comma-separated protocols to soak")
		protoList = flag.Bool("protocols", false, "list registered commit protocols and exit")
		wlList    = flag.Bool("workloads", false, "list registered workload sources and exit")
		coresList = flag.String("cores", "8,16", "comma-separated core counts")
		par       = flag.Int("j", 0, "sweep parallelism (0 = GOMAXPROCS)")
		timeout   = flag.Duration("timeout", 0, "per-run wall-clock budget (0 = none)")
		maxCycles = flag.Int64("maxcycles", 0, "starting cycle budget per run (0 = Table 2 default); small values exercise retry escalation")
		retries   = flag.Int("retries", 3, "max attempts per point under faults (1 disables retry)")
		outPath   = flag.String("o", "", "write a JSON soak report to this path (- for stdout)")
		quick     = flag.Bool("quick", false, "CI smoke matrix: 2 apps × 4 protocols × 8 cores, 1 round, tiny chunks")
		progress  = flag.Duration("progress", 30*time.Second, "sweep heartbeat period on stderr (0 disables)")
		telemetry = flag.String("telemetry", "", "serve live metrics on this address (e.g. :8090): /metrics, /debug/vars, /debug/pprof")
		server    = flag.String("server", "", "run each round's sweep on a sweep-farm server at this base URL (the server owns the journal)")
	)
	flag.Parse()

	if *protoList {
		fmt.Print(cliutil.ProtocolList())
		return 0
	}
	if *wlList {
		fmt.Print(cliutil.WorkloadList())
		return 0
	}
	if *quick {
		*apps, *coresList, *rounds, *chunks = "Radix,FFT", "8", 1, 2
	}
	profile, err := fault.ByName(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbsoak:", err)
		return cliutil.ExitError
	}
	var points []scalablebulk.Point
	coreCounts, err := splitInts(*coresList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbsoak:", err)
		return cliutil.ExitError
	}
	for _, app := range strings.Split(*apps, ",") {
		if _, ok := scalablebulk.AppByName(app); !ok {
			if _, ok := scalablebulk.WorkloadProfile(app); !ok {
				fmt.Fprintf(os.Stderr, "sbsoak: unknown app or workload %q (-workloads lists sources)\n", app)
				return cliutil.ExitError
			}
		}
		for _, protocol := range strings.Split(*protos, ",") {
			if err := cliutil.CheckProtocol(protocol); err != nil {
				fmt.Fprintln(os.Stderr, "sbsoak:", err)
				return cliutil.ExitError
			}
			for _, cores := range coreCounts {
				points = append(points, scalablebulk.Point{App: app, Protocol: protocol, Cores: cores})
			}
		}
	}
	parallelism := *par
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}

	ctx, stop := cliutil.SignalContext()
	defer stop()

	var reg *metrics.Registry
	if *telemetry != "" {
		reg = metrics.NewRegistry()
		addr, closeFn, err := metrics.Serve(*telemetry, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sbsoak:", err)
			return cliutil.ExitError
		}
		defer closeFn()
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics (also /debug/vars, /debug/pprof)\n", addr)
	}

	var journal *scalablebulk.Journal
	if *journalPath != "" && *server == "" {
		journal, err = scalablebulk.OpenJournal(*journalPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sbsoak:", err)
			return cliutil.ExitError
		}
		defer journal.Close()
		fmt.Fprintf(os.Stderr, "journal %s: %d checkpointed point(s)\n", *journalPath, journal.Len())
	}

	rep := soakReport{
		GeneratedBy: "cmd/sbsoak",
		Config: map[string]any{
			"chunks_per_core": *chunks, "seed": *seed, "rounds": *rounds,
			"faults": *faults, "apps": *apps, "protocols": *protos,
			"cores": *coresList, "parallelism": parallelism,
			"timeout": timeout.String(), "maxcycles": *maxCycles,
			"retries": *retries, "quick": *quick,
			"progress": progress.String(), "telemetry": *telemetry,
		},
	}
	var failures []string
	for r := 0; r < *rounds; r++ {
		roundSeed := *seed + int64(r)
		s := scalablebulk.NewSession(*chunks, roundSeed, nil)
		s.CrashDir = *crashDir
		s.Metrics = reg
		if *progress > 0 {
			round := r + 1
			s.ProgressInterval = *progress
			s.OnProgress = func(p scalablebulk.SweepProgress) {
				if p.Final {
					return // the per-round summary line covers completion
				}
				fmt.Fprintf(os.Stderr,
					"round %d: %d/%d points (%d failed), %s elapsed, ETA %s, last %s/%s/%d fp=%s\n",
					round, p.Done, p.Total, p.Failed,
					p.Elapsed.Round(time.Second), p.ETA.Round(time.Second),
					p.LastPoint.App, p.LastPoint.Protocol, p.LastPoint.Cores, p.LastFingerprint)
			}
		}
		s.Configure = func(cfg *scalablebulk.Config) {
			cfg.Faults = profile
			cfg.FaultSeed = *faultSeed
			cfg.RunTimeout = *timeout
			cfg.Shards = *shards
			if *maxCycles > 0 {
				cfg.MaxCycles = event.Time(*maxCycles)
			}
		}
		if *retries > 1 {
			pol := scalablebulk.DefaultRetryPolicy()
			pol.MaxAttempts = *retries
			s.Retry = &pol
		}
		if journal != nil {
			s.UseJournal(journal)
		}
		start := time.Now()
		var out *scalablebulk.SweepOutcome
		if *server != "" {
			// Farm mode: the round's sweep runs on sbworkers; the server owns
			// the journal, so restores and dedup happen there.
			spec := &farm.SweepSpec{
				ChunksPerCore: *chunks, Seed: roundSeed,
				Faults: *faults, FaultSeed: *faultSeed,
				MaxCycles: uint64(*maxCycles), RunTimeoutMS: timeout.Milliseconds(),
				Retries: *retries, Points: points,
			}
			client := &farm.Client{Base: *server, Corr: farm.NewCorrID()}
			fmt.Fprintf(os.Stderr, "sbsoak: round seed=%d corr=%s\n", roundSeed, client.Corr)
			var rerr error
			out, rerr = client.RunSweep(ctx, spec, nil)
			if rerr != nil {
				fmt.Fprintln(os.Stderr, "sbsoak:", rerr)
				return cliutil.ExitError
			}
		} else {
			out = s.SweepContext(ctx, points, parallelism)
		}
		rr := roundReport{
			Seed: roundSeed, Profile: *faults, Points: out.Points,
			Completed: out.Completed, Restored: out.Restored,
			Failures: len(out.Failures),
			WallMS:   float64(time.Since(start).Microseconds()) / 1000,
		}
		rep.Rounds = append(rep.Rounds, rr)
		rep.Points += out.Points
		rep.Completed += out.Completed
		rep.Restored += out.Restored
		for _, f := range out.Failures {
			failures = append(failures, f.Err.Error())
			fmt.Fprintf(os.Stderr, "FAIL %s/%s/%d: %v\n", f.Point.App, f.Point.Protocol, f.Point.Cores, f.Err)
			if path, err := writeCheckSpec(*crashDir, f.Point, roundSeed, *chunks, profile.Enabled()); err != nil {
				fmt.Fprintf(os.Stderr, "sbsoak: check spec: %v\n", err)
			} else if path != "" {
				fmt.Fprintf(os.Stderr, "  model-check this shape: sbcheck -spec %s\n", path)
			}
		}
		fmt.Printf("round %d (seed %d, profile %s): points=%d completed=%d restored=%d failures=%d (%.1fs)\n",
			r+1, roundSeed, *faults, rr.Points, rr.Completed, rr.Restored, rr.Failures,
			time.Since(start).Seconds())
		if out.Aborted {
			rep.Aborted = true
			break
		}
	}
	rep.Failures = failures
	if journal != nil {
		for _, jp := range journal.Points() {
			if len(jp.Attempts) > 1 {
				rep.Retried = append(rep.Retried, jp)
			}
		}
	}

	fmt.Printf("sbsoak: done points=%d completed=%d restored=%d failures=%d aborted=%v\n",
		rep.Points, rep.Completed, rep.Restored, len(failures), rep.Aborted)
	if *outPath != "" {
		data, _ := json.MarshalIndent(&rep, "", "  ")
		data = append(data, '\n')
		if *outPath == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sbsoak:", err)
			return cliutil.ExitError
		}
	}
	switch {
	case rep.Aborted:
		return cliutil.ExitAborted
	case len(failures) > 0:
		return cliutil.ExitPointFailures
	}
	return cliutil.ExitOK
}

// writeCheckSpec serializes a failed point as an sbcheck starting state: the
// same protocol and seed on a checker-sized configuration (2–4 cores, ≤3
// chunks) with the point's application profile. The checker cannot reproduce
// a fault-injected run, but it can exhaust the interleavings of the failing
// shape — with unordered mode standing in for the injector's delivery jitter,
// which is why a faulted point's spec sets it.
func writeCheckSpec(dir string, p scalablebulk.Point, seed int64, chunks int, faulted bool) (string, error) {
	if dir == "" {
		return "", nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	prof, ok := scalablebulk.AppByName(p.App)
	if !ok {
		// Workload-source points have no synthetic profile the checker could
		// re-run; skip the spec rather than write an unreproducible one.
		if _, isWL := scalablebulk.WorkloadProfile(p.App); isWL {
			return "", nil
		}
		return "", fmt.Errorf("unknown app %q", p.App)
	}
	spec := explore.DefaultSpec(p.Protocol)
	spec.Cores = min(p.Cores, 4)
	spec.Chunks = min(chunks, 3)
	spec.Seed = seed
	spec.Profile = prof
	spec.Unordered = faulted
	path := filepath.Join(dir, fmt.Sprintf("%s-%s-%d.sbcheck.json", p.App, p.Protocol, p.Cores))
	if err := spec.Save(path); err != nil {
		return "", err
	}
	return path, nil
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad core count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
