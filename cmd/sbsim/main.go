// Command sbsim runs one simulation of the Table 2 machine and prints its
// measurements: execution time, cycle breakdown, commit latency,
// directories per commit, squashes and traffic.
//
// Usage:
//
//	sbsim -app Radix -cores 64 -protocol ScalableBulk -chunks 32
//	sbsim -workload zipf -cores 16          # adversarial workload source
//	sbsim -record run.sbwt -cores 4         # record the workload trace
//	sbsim -replay run.sbwt -protocol TCC    # replay it under any protocol
//	sbsim -list        # application models
//	sbsim -protocols   # registered commit protocols
//	sbsim -workloads   # registered workload sources
//
// Exit codes: 0 success; 1 error (a panic writes a crash bundle when
// -crashdir is set); 2 aborted by SIGINT/SIGTERM or the -timeout budget.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"scalablebulk"
	"scalablebulk/internal/cliutil"
	"scalablebulk/internal/farm"
	"scalablebulk/internal/fault"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/stats"
	"scalablebulk/internal/tracefmt"
	"scalablebulk/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	app := flag.String("app", "Radix", "application model (see -list)")
	cores := flag.Int("cores", 64, "number of processors (1, 32 or 64 in the paper)")
	protocol := flag.String("protocol", scalablebulk.ProtoScalableBulk,
		"commit protocol (see -protocols for the registry)")
	chunks := flag.Int("chunks", 32, "chunks committed per core")
	seed := flag.Int64("seed", 1, "deterministic seed")
	shards := flag.Int("shards", 0, "event-engine shards (0 = serial reference engine); results are byte-identical at any value")
	faults := flag.String("faults", "off",
		"fault-injection profile: off | "+strings.Join(fault.Names(), " | "))
	faultSeed := flag.Int64("faultseed", 0, "fault injector seed (0: reuse -seed); one (profile, seed) pair replays bit-identically")
	checkInv := flag.Bool("check", false, "run the online invariant checker (violations fail the run)")
	timeout := flag.Duration("timeout", 0, "per-run wall-clock budget (0 = none); exceeding it aborts with exit code 2")
	crashDir := flag.String("crashdir", "", "write a JSON crash bundle here if the run panics")
	retry := flag.Bool("retry", false, "retry transient MaxCycles aborts under faults with escalated budgets")
	wl := flag.String("workload", "", "workload source (see -workloads) or replay:PATH; empty = synthetic -app model")
	record := flag.String("record", "", "record the run's chunk streams as a workload trace at FILE")
	replay := flag.String("replay", "", "replay the workload trace at FILE, adopting its recorded machine shape")
	server := flag.String("server", "", "run the point on a sweep-farm server at this base URL instead of in-process")
	list := flag.Bool("list", false, "list application models and exit")
	protoList := flag.Bool("protocols", false, "list registered commit protocols and exit")
	wlList := flag.Bool("workloads", false, "list registered workload sources and exit")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	flag.Parse()

	if *list {
		for _, p := range scalablebulk.Apps() {
			fmt.Printf("%-14s %s\n", p.Name, p.Suite)
		}
		return 0
	}
	if *protoList {
		fmt.Print(cliutil.ProtocolList())
		return 0
	}
	if *wlList {
		fmt.Print(cliutil.WorkloadList())
		return 0
	}

	if err := cliutil.CheckProtocol(*protocol); err != nil {
		fmt.Fprintln(os.Stderr, "sbsim:", err)
		return cliutil.ExitError
	}
	if *replay != "" {
		*wl = "replay:" + *replay
	}
	if err := cliutil.CheckWorkload(*wl); err != nil {
		fmt.Fprintln(os.Stderr, "sbsim:", err)
		return cliutil.ExitError
	}

	if *server != "" {
		return runOnFarm(*server, *app, *protocol, *cores, *chunks, *seed,
			*faults, *faultSeed, *checkInv, *retry, *wl, *record, *replay,
			timeout.Milliseconds(), *asJSON)
	}

	cfg := scalablebulk.DefaultConfig(*cores, *protocol)
	cfg.ChunksPerCore = *chunks
	cfg.Seed = *seed
	cfg.Workload = *wl

	// Resolve the run's profile label: the -app model for the synthetic
	// source, the source's own name for adversarial generators, the recorded
	// header for a replayed trace (which also pins the machine shape, so the
	// replay is bit-identical to the recording under any protocol).
	var prof scalablebulk.Profile
	if path, isReplay := strings.CutPrefix(*wl, "replay:"); isReplay {
		tr, err := tracefmt.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sbsim:", err)
			return 1
		}
		h := tr.Header
		prof = scalablebulk.Profile{Name: h.App, Suite: "TRACE"}
		cfg.Cores, cfg.Seed = h.Threads, h.Seed
		cfg.ChunksPerCore, cfg.WarmupChunks = h.ChunksPerCore, h.WarmupPerCore
		cfg.WorkloadFactory = workload.Replay(tr)
		fmt.Fprintf(os.Stderr, "sbsim: replaying %s: %s/%s, %d cores, %d chunks/core (recorded under %s)\n",
			path, h.App, h.Source, h.Threads, h.ChunksPerCore, h.Protocol)
	} else if lbl, ok := scalablebulk.WorkloadProfile(*wl); ok {
		prof = lbl
	} else if prof, ok = scalablebulk.AppByName(*app); !ok {
		fmt.Fprintf(os.Stderr, "unknown app %q; try -list\n", *app)
		return cliutil.ExitError
	}

	var rec *workload.Recording
	if *record != "" {
		r, factory, err := workload.Record(*wl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sbsim:", err)
			return 1
		}
		rec, cfg.WorkloadFactory = r, factory
	}
	prof2, err := fault.ByName(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return cliutil.ExitError
	}
	cfg.Faults = prof2
	cfg.FaultSeed = *faultSeed
	cfg.Check = *checkInv
	cfg.RunTimeout = *timeout
	cfg.Shards = *shards

	ctx, stop := cliutil.SignalContext()
	defer stop()

	var res *scalablebulk.Result
	err = func() (err error) {
		defer func() {
			if rec := recover(); rec != nil {
				pt := scalablebulk.Point{App: prof.Name, Protocol: *protocol, Cores: cfg.Cores}
				cr := scalablebulk.NewCrashReport(pt, cfg, rec)
				if *crashDir != "" {
					if path, werr := scalablebulk.WriteCrashBundle(*crashDir, cr); werr == nil {
						fmt.Fprintln(os.Stderr, "sbsim: crash bundle:", path)
					} else {
						fmt.Fprintln(os.Stderr, "sbsim: crash bundle write failed:", werr)
					}
				}
				err = fmt.Errorf("panic: %s", cr.Panic)
			}
		}()
		if *retry {
			res, err = scalablebulk.RunWithRetry(ctx, prof, cfg, scalablebulk.DefaultRetryPolicy())
		} else {
			res, err = scalablebulk.RunContext(ctx, prof, cfg)
		}
		return err
	}()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if errors.Is(err, scalablebulk.ErrAborted) {
			return cliutil.ExitAborted
		}
		return cliutil.ExitError
	}

	if rec != nil {
		rec.SetRunMeta(*protocol, scalablebulk.FingerprintSHA(res))
		tr := rec.Trace()
		if err := tracefmt.WriteFile(*record, tr); err != nil {
			fmt.Fprintln(os.Stderr, "sbsim: record:", err)
			return cliutil.ExitError
		}
		st := tracefmt.SectionStats(tr.Chunks)
		fmt.Fprintf(os.Stderr, "sbsim: recorded %s: %d chunks, %d accesses (%d writes) over %d pages\n",
			*record, st.Records, st.Accesses, st.Writes, st.Pages)
	}

	if *asJSON {
		return emitJSON(res)
	}
	printResult(prof.Name, *protocol, cfg, res)
	return cliutil.ExitOK
}

// runOnFarm is sbsim's thin-client mode: the point runs on a sweep-farm
// server (possibly restored straight from its journal) and prints here
// exactly as a local run would. Trace record/replay stay local-only — they
// read and write files on this machine.
func runOnFarm(server, app, protocol string, cores, chunks int, seed int64,
	faults string, faultSeed int64, check, retry bool, wl, record, replay string,
	timeoutMS int64, asJSON bool) int {
	if record != "" || replay != "" {
		fmt.Fprintln(os.Stderr, "sbsim: -record/-replay are local-only and cannot combine with -server")
		return cliutil.ExitError
	}
	appLabel := app
	if _, ok := scalablebulk.WorkloadProfile(wl); ok {
		appLabel = wl
	}
	retries := 1 // a single attempt, like the local non-retry path
	if retry {
		retries = 0 // the default escalating policy
	}
	spec := &farm.SweepSpec{
		ChunksPerCore: chunks,
		Scaling:       farm.ScalingFixed,
		Seed:          seed,
		Workload:      wl,
		Faults:        faults,
		FaultSeed:     faultSeed,
		RunTimeoutMS:  timeoutMS,
		Retries:       retries,
		Check:         check,
		Points:        []farm.Point{{App: appLabel, Protocol: protocol, Cores: cores}},
	}

	ctx, stop := cliutil.SignalContext()
	defer stop()
	client := &farm.Client{Base: server, Corr: farm.NewCorrID()}
	fmt.Fprintf(os.Stderr, "sbsim: farm sweep corr=%s (grep it across client, server and worker logs)\n", client.Corr)
	var res *scalablebulk.Result
	out, err := client.RunSweep(ctx, spec, func(_ farm.Point, r *scalablebulk.Result, _ bool) {
		res = r
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbsim:", err)
		return cliutil.ExitError
	}
	if code := cliutil.SweepExitCode(os.Stderr, "sbsim", out); code != cliutil.ExitOK {
		return code
	}
	if res == nil {
		fmt.Fprintln(os.Stderr, "sbsim: farm sweep finished without a result")
		return cliutil.ExitError
	}
	if asJSON {
		return emitJSON(res)
	}
	printResult(appLabel, protocol, spec.Config(spec.Points[0]), res)
	return cliutil.ExitOK
}

// printResult renders the human-readable measurement block shared by the
// local and -server paths.
func printResult(app, protocol string, cfg scalablebulk.Config, res *scalablebulk.Result) {
	fmt.Printf("%s on %d processors under %s (%d chunks/core, seed %d)\n",
		app, cfg.Cores, protocol, cfg.ChunksPerCore, cfg.Seed)
	fmt.Printf("  execution time:        %d cycles\n", res.Cycles)
	fmt.Printf("  chunks committed:      %d\n", res.ChunksCommitted)
	tot := float64(res.Breakdown.Total())
	fmt.Printf("  cycle breakdown:       useful %.1f%%  cache-miss %.1f%%  commit %.1f%%  squash %.1f%%\n",
		100*float64(res.Breakdown.Useful)/tot, 100*float64(res.Breakdown.CacheMiss)/tot,
		100*float64(res.Breakdown.Commit)/tot, 100*float64(res.Breakdown.Squash)/tot)
	fmt.Printf("  mean commit latency:   %.0f cycles\n", res.MeanCommitLatency())
	dt, dw := res.Coll.MeanDirsPerCommit()
	fmt.Printf("  directories/commit:    %.2f total, %.2f write group\n", dt, dw)
	fmt.Printf("  squashes:              %d data-conflict, %d signature-aliasing\n",
		res.Coll.SquashTrueConflict, res.Coll.SquashAliasing)
	fmt.Printf("  commit failures:       %d  (bottleneck ratio %.2f, mean queue %.2f)\n",
		res.Coll.CommitFailures, res.Coll.BottleneckRatio(), res.Coll.MeanQueueLength())

	cls := stats.TrafficClasses(res.Traffic.ByKind)
	var names []string
	for c := 0; c < int(msg.NumClasses); c++ {
		names = append(names, fmt.Sprintf("%s=%d", msg.Class(c), cls[c]))
	}
	fmt.Printf("  network messages:      %d (%s)\n", res.Traffic.Messages, strings.Join(names, " "))
	fmt.Printf("  result fingerprint:    sha256 %s\n", scalablebulk.FingerprintSHA(res))
	if res.Faults != nil {
		fmt.Printf("  faults injected:       %s\n", res.Faults)
	}
	if res.Checked {
		fmt.Printf("  invariants:            checked, none violated\n")
	}
	if len(res.Attempts) > 1 {
		fmt.Printf("  retry attempts:        %d (final budget %d cycles)\n",
			len(res.Attempts), res.Attempts[len(res.Attempts)-1].MaxCycles)
	}
}

// emitJSON prints the run's headline measurements as one JSON object, for
// scripting sweeps around sbsim.
func emitJSON(res *scalablebulk.Result) int {
	dt, dw := res.Coll.MeanDirsPerCommit()
	cls := stats.TrafficClasses(res.Traffic.ByKind)
	classes := map[string]uint64{}
	for c := 0; c < int(msg.NumClasses); c++ {
		classes[msg.Class(c).String()] = cls[c]
	}
	out := map[string]any{
		"app":             res.App,
		"protocol":        res.Protocol,
		"cores":           res.Cores,
		"cycles":          res.Cycles,
		"chunksCommitted": res.ChunksCommitted,
		"breakdown": map[string]uint64{
			"useful": res.Breakdown.Useful, "cacheMiss": res.Breakdown.CacheMiss,
			"commit": res.Breakdown.Commit, "squash": res.Breakdown.Squash,
		},
		"meanCommitLatency":  res.MeanCommitLatency(),
		"dirsPerCommit":      dt,
		"writeDirsPerCommit": dw,
		"squashConflict":     res.Coll.SquashTrueConflict,
		"squashAliasing":     res.Coll.SquashAliasing,
		"commitFailures":     res.Coll.CommitFailures,
		"bottleneckRatio":    res.Coll.BottleneckRatio(),
		"meanQueueLength":    res.Coll.MeanQueueLength(),
		"messages":           res.Traffic.Messages,
		"messageClasses":     classes,
		"fingerprintSHA":     scalablebulk.FingerprintSHA(res),
	}
	if res.Faults != nil {
		out["faults"] = map[string]uint64{
			"planned": res.Faults.Planned, "delayed": res.Faults.Delayed,
			"duplicated": res.Faults.Duplicated, "retransmits": res.Faults.Retransmits,
			"hot": res.Faults.HotHits,
		}
	}
	if res.Checked {
		out["invariantsChecked"] = true
	}
	if res.Attempts != nil {
		out["attempts"] = res.Attempts
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return cliutil.ExitError
	}
	return 0
}
