// Command sbserver is the sweep-farm job server: it accepts sweep specs
// over HTTP/JSON, dedupes completed points through the checkpoint journal,
// and hands points to sbworker processes under time-bounded leases.
//
//	sbserver -addr :8356 -journal farm.jsonl
//
// SIGTERM (or SIGINT) drains gracefully: no new leases are granted,
// in-flight leases finish or expire, then the server exits 0. A server
// killed outright restarts from the journal — completed points survive.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	scalablebulk "scalablebulk"
	"scalablebulk/internal/cliutil"
	"scalablebulk/internal/farm"
	"scalablebulk/internal/metrics"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr         = flag.String("addr", "127.0.0.1:8356", "listen address for the farm API")
		journalPath  = flag.String("journal", "", "checkpoint journal path (JSONL); empty disables durability")
		crashDir     = flag.String("crashdir", "", "directory for worker crash bundles")
		eventsPath   = flag.String("events", "", "lease-lifecycle event log path (JSONL)")
		leaseTTL     = flag.Duration("lease", 10*time.Second, "lease TTL; workers heartbeat at TTL/3")
		poisonAfter  = flag.Int("poison", 3, "quarantine a point after this many distinct worker deaths")
		maxAttempts  = flag.Int("retries", 3, "lease grants per point before it fails (effective cap is max of this and -poison)")
		seed         = flag.Int64("seed", 1, "seed for the requeue-backoff jitter PRNG")
		drainTimeout = flag.Duration("draintimeout", 30*time.Second, "max wait for in-flight leases on shutdown")
		logFormat    = flag.String("log-format", "text", "structured log format: text or json")
		ssePing      = flag.Duration("sseping", 5*time.Second, "SSE keepalive-comment interval")
		eventRing    = flag.Int("eventring", 8192, "in-memory event ring size for SSE Last-Event-ID resume")
	)
	flag.Parse()

	logger, err := cliutil.NewLogger(*logFormat, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbserver: %v\n", err)
		return cliutil.ExitError
	}

	opts := farm.Options{
		LeaseTTL:     *leaseTTL,
		PoisonAfter:  *poisonAfter,
		MaxAttempts:  *maxAttempts,
		Seed:         *seed,
		CrashDir:     *crashDir,
		SSEPing:      *ssePing,
		EventHistory: *eventRing,
		Logger:       logger,
	}
	if *journalPath != "" {
		j, err := scalablebulk.OpenJournal(*journalPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sbserver: %v\n", err)
			return cliutil.ExitError
		}
		defer j.Close()
		opts.Journal = j
		logger.Info("journal_open", "path", *journalPath, "points", j.Len())
	}
	if *eventsPath != "" {
		ev, err := farm.OpenEventLog(*eventsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sbserver: %v\n", err)
			return cliutil.ExitError
		}
		defer func() {
			// Close surfaces the first write error the log swallowed while
			// emitting — a full disk shows up at shutdown instead of never.
			if cerr := ev.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "sbserver: event log: %v (%d events dropped)\n",
					cerr, ev.Dropped())
			}
		}()
		opts.Events = ev
	}
	reg := metrics.NewRegistry()
	opts.Metrics = reg

	srv := farm.NewServer(opts)
	mux := metrics.Handler(reg)
	api := srv.Handler()
	mux.Handle("/v1/", api)
	mux.Handle("/api/v1/", api)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbserver: %v\n", err)
		return cliutil.ExitError
	}
	httpSrv := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Printf("sbserver: listening on %s\n", ln.Addr())
	logger.Info("listening", "addr", ln.Addr().String())

	ctx, stop := cliutil.SignalContext()
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "sbserver: %v\n", err)
		return cliutil.ExitError
	case <-ctx.Done():
	}

	// Graceful drain: stop granting leases, let in-flight points land (or
	// their leases expire), then shut the listener down.
	logger.Info("draining")
	select {
	case <-srv.Drain():
	case <-time.After(*drainTimeout):
		logger.Warn("drain_timeout", "detail", "abandoning in-flight leases")
	}
	httpSrv.Close()
	logger.Info("drained")
	return cliutil.ExitOK
}
