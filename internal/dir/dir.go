// Package dir provides the substrate shared by all four commit protocols:
// the distributed directory state (per-line sharer/owner tracking), the
// environment handed to a protocol engine (network, clock, mapper, cores,
// statistics), and the conventional read path that serves cache misses
// between chunk commits.
//
// One directory module lives on every tile; module i owns exactly the lines
// whose pages were first-touch mapped to tile i (see package mem). The
// protocol engines (packages core, tcc, seqpro, bulksc) layer chunk-commit
// transactions on top of this state.
package dir

import (
	"scalablebulk/internal/bitset"
	"scalablebulk/internal/chunk"
	"scalablebulk/internal/event"
	"scalablebulk/internal/mem"
	"scalablebulk/internal/mesh"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/sig"
	"scalablebulk/internal/stats"
	"scalablebulk/internal/trace"
)

// LineInfo is the directory entry for one cache line.
type LineInfo struct {
	Sharers bitset.Set
	Owner   int // processor holding the line dirty, or -1
	Dirty   bool
}

// State is the machine-wide directory content. Each module only ever
// touches lines homed at it, so by default a single map keyed by line is
// equivalent to per-module storage while keeping lookups one-hop. Sharded
// runs call Partition so each shard's directory modules get their own map:
// the parallel read-path rounds then mutate disjoint parts concurrently
// without locks, while the (serialized) commit rounds look across parts.
type State struct {
	lines  map[sig.Line]*LineInfo   // single-part storage (partOf == nil)
	parts  []map[sig.Line]*LineInfo // per-shard storage after Partition
	partOf func(sig.Line) int

	// OnApply, when non-nil, observes every committed-write application
	// (invariant checking). Nil on performance runs.
	OnApply func(l sig.Line, writer int)
}

// NewState returns empty directory state.
func NewState() *State { return &State{lines: make(map[sig.Line]*LineInfo)} }

// Partition splits the storage into parts; partOf maps a line to the part
// owning its home tile. Every entry is only ever created after the line's
// page is mapped (reads reach the home they were routed to, commit write
// sets are finalized through the mapper first), so partOf sees a stable
// home for every line that has an entry. Existing entries migrate.
func (s *State) Partition(parts int, partOf func(sig.Line) int) {
	s.parts = make([]map[sig.Line]*LineInfo, parts)
	for i := range s.parts {
		s.parts[i] = make(map[sig.Line]*LineInfo)
	}
	for l, li := range s.lines {
		s.parts[partOf(l)][l] = li
	}
	s.lines = nil
	s.partOf = partOf
}

// tab returns the map holding (or due to hold) a line's entry.
func (s *State) tab(l sig.Line) map[sig.Line]*LineInfo {
	if s.partOf == nil {
		return s.lines
	}
	return s.parts[s.partOf(l)]
}

// Get returns the entry for a line, or nil if it was never cached.
func (s *State) Get(l sig.Line) *LineInfo { return s.tab(l)[l] }

// Touch returns the entry for a line, creating it if needed.
func (s *State) Touch(l sig.Line) *LineInfo {
	t := s.tab(l)
	if li, ok := t[l]; ok {
		return li
	}
	li := &LineInfo{Owner: -1}
	t[l] = li
	return li
}

// AddSharer records that processor p now caches line l.
func (s *State) AddSharer(l sig.Line, p int) { s.Touch(l).Sharers.Add(p) }

// ApplyCommitWrite updates the directory for one committed written line:
// all copies except the writer's are (being) invalidated, and the writer
// becomes the dirty owner.
func (s *State) ApplyCommitWrite(l sig.Line, writer int) {
	if s.OnApply != nil {
		s.OnApply(l, writer)
	}
	li := s.Touch(l)
	li.Sharers.Clear()
	li.Sharers.Add(writer)
	li.Owner = writer
	li.Dirty = true
}

// SharersOf accumulates into dst the processors (other than exclude) that
// share any of the given lines whose home is the module home. This is the
// directory-side "expand the W signature and compile the list of sharers"
// step of §3.1; the exact line list stands in for signature expansion (see
// DESIGN.md §2).
func (s *State) SharersOf(lines []sig.Line, home int, mapper *mem.Mapper, exclude int, dst *bitset.Set) {
	for _, l := range lines {
		if h, ok := mapper.HomeIfMapped(l); !ok || h != home {
			continue
		}
		li := s.tab(l)[l]
		if li == nil {
			continue
		}
		li.Sharers.ForEach(func(p int) {
			if p != exclude {
				dst.Add(p)
			}
		})
	}
}

// SharersOfAll accumulates into dst every processor other than exclude that
// shares any of the given lines, regardless of home module. Baseline
// protocols whose invalidation fan-out is computed at a central point
// (BulkSC's committing processor, SEQ-PRO's occupier) use this.
func (s *State) SharersOfAll(lines []sig.Line, exclude int, dst *bitset.Set) {
	for _, l := range lines {
		li := s.tab(l)[l]
		if li == nil {
			continue
		}
		li.Sharers.ForEach(func(p int) {
			if p != exclude {
				dst.Add(p)
			}
		})
	}
}

// Core is the face a processor shows to the protocol engines.
type Core interface {
	// CommitFinished tells the core that chunk tag committed successfully.
	CommitFinished(tag msg.CTag)
	// CommitRefused tells the core that the commit attempt failed; the core
	// waits and retries (§3.2: "prompts it to wait for a while and then
	// retry the commit request").
	CommitRefused(tag msg.CTag)
	// BulkInvalidate delivers a committing chunk's W signature for cached
	// line invalidation and chunk disambiguation. lines is the exact write
	// set behind the signature (simulation-only; see DESIGN.md §2). It
	// returns the tag of a chunk that was squashed while in commit flight —
	// the Optimistic Commit Initiation case needing a commit_recall — or
	// nil if no in-flight commit was hurt. immune, when non-nil, names a
	// chunk past its serialization point (its commit is already applied and
	// only acknowledgements are outstanding): its cached copies are still
	// invalidated, but the chunk itself is not squashed — the invalidating
	// writer serializes after it.
	BulkInvalidate(w *sig.Sig, lines []sig.Line, committer int, immune *msg.CTag) *msg.CTag
	// InvalidateLine is the per-line variant used by Scalable TCC, whose
	// invalidations are individual cache-line messages (exact, no
	// signature aliasing). immune, when non-nil, names a chunk past its
	// serialization point (every probed directory acked): the cached copy
	// is still invalidated, but that chunk is not squashed — the writer
	// holds a younger TID, so its write does not invalidate the immune
	// chunk's reads. Semantics otherwise match BulkInvalidate.
	InvalidateLine(l sig.Line, committer int, immune *msg.CTag) *msg.CTag
	// MaybeDefer lets a conservative core buffer an incoming invalidation
	// while it awaits its commit decision (BulkSC's pre-OCI behavior,
	// §3.3); it reports whether the message was deferred. Deferred
	// messages are consumed — and acknowledged — once the decision lands.
	MaybeDefer(m *msg.Msg) bool
	// ResumeInvalidations ends the conservative deferral window early:
	// BulkSC's arbiter grant is a decision even though the commit is still
	// completing.
	ResumeInvalidations()
}

// Protocol is a chunk-commit protocol engine (ScalableBulk or a baseline).
type Protocol interface {
	// Name returns the Table 3 protocol name.
	Name() string
	// RequestCommit starts committing chunk ck from processor p. The chunk
	// is finalized (signatures and g_vec built).
	RequestCommit(p int, ck *chunk.Chunk)
	// HandleDir processes a directory-side message arriving at node.
	HandleDir(node int, m *msg.Msg)
	// HandleProc processes protocol-specific processor-side messages that
	// the generic core logic does not consume.
	HandleProc(node int, m *msg.Msg)
	// ReadBlocked reports whether a load to line l arriving at directory
	// node must be nacked because it hits a committing chunk's write set
	// (§3.1).
	ReadBlocked(node int, l sig.Line) bool
}

// Probe observes processor-side commit milestones (invariant checking). The
// interface lives here so the checker can implement it without an import
// cycle; all hooks are optional (nil Probe on performance runs).
type Probe interface {
	// CommitRequested fires when a processor submits (or re-submits) a
	// chunk for commit, before the protocol engine sees it.
	CommitRequested(proc int, ck *chunk.Chunk)
	// ChunkCommitted fires when a processor retires a chunk — the
	// authoritative per-(proc,seq) commit event.
	ChunkCommitted(proc int, seq uint64, t event.Time)
}

// Env is everything a protocol engine or read path needs from the machine.
// On serial runs Eng is the *event.Engine and Net the *mesh.Network; on
// sharded runs the protocol engines hold an Env with the coordinator's
// GlobalView while each shard's tiles hold one with their ShardView and
// ShardPort, so events and sends land on the owning shard.
type Env struct {
	Eng   event.Sched
	Net   mesh.Port
	Map   *mem.Mapper
	State *State
	Cores []Core
	Coll  *stats.Collector

	// Probe, when non-nil, receives commit milestones (invariant checking).
	Probe Probe
	// Trace, when non-nil, receives structured lifecycle events (package
	// trace). Nil on performance runs — emission sites pay one nil check.
	Trace *trace.Tracer

	// DirLookup is the directory-module processing latency charged per
	// transaction step (signature expansion, CST lookup).
	DirLookup event.Time
	// MemLatency is the memory round-trip latency (Table 2: 300 cycles).
	MemLatency event.Time
}

// ReadPath serves conventional cache-miss transactions at every directory
// module. The active protocol is consulted so reads that hit a committing
// chunk's write set are nacked (§3.1).
type ReadPath struct {
	Env   *Env
	Proto Protocol

	// Nacks counts loads bounced by this read path's directory modules.
	// It is kept here rather than on the shared stats.Collector so the
	// parallel read-path rounds of a sharded run stay lock-free; the system
	// layer folds it into Collector.ReadNacks when the run finishes.
	Nacks uint64
}

// HandleDir processes read-path messages addressed to a directory module.
// It reports whether the message was a read-path message.
func (rp *ReadPath) HandleDir(node int, m *msg.Msg) bool {
	switch m.Kind {
	case msg.ReadReq:
		rp.serve(node, m)
		return true
	case msg.ReadDirtyFwd:
		// This tile's cache owns the dirty line: forward the data to the
		// requester (recorded in Tag.Proc).
		r := rp.Env.Net.NewMsg()
		r.Kind, r.Src, r.Dst = msg.ReadDirtyReply, node, m.Tag.Proc
		r.Tag, r.Line = m.Tag, m.Line
		rp.Env.Net.Send(r)
		return true
	default:
		return false
	}
}

// serve handles a ReadReq at its home module. The request is a Transient
// message the network recycles as soon as this handler returns, so every
// field the deferred replies need is copied into locals first.
func (rp *ReadPath) serve(node int, m *msg.Msg) {
	env := rp.Env
	requester := m.Src
	l := m.Line
	tag := m.Tag

	if rp.Proto != nil && rp.Proto.ReadBlocked(node, l) {
		rp.Nacks++
		r := env.Net.NewMsg()
		r.Kind, r.Src, r.Dst, r.Tag, r.Line = msg.ReadNack, node, requester, tag, l
		env.Net.Send(r)
		return
	}

	li := env.State.Get(l)
	switch {
	case li != nil && li.Dirty && li.Owner != requester && li.Owner >= 0:
		// Served by the remote dirty owner (RemoteDirtyRd). The forward
		// carries the requester in Tag.Proc. After the read the data is
		// shared: the owner keeps a copy, memory is considered updated.
		owner := li.Owner
		li.Dirty = false
		li.Owner = -1
		li.Sharers.Add(requester)
		env.Eng.After(env.DirLookup, func() {
			r := env.Net.NewMsg()
			r.Kind, r.Src, r.Dst = msg.ReadDirtyFwd, node, owner
			r.Tag, r.Line = msg.CTag{Proc: requester}, l
			env.Net.Send(r)
		})
	case li != nil && !li.Sharers.Empty():
		// Served cache-to-cache from a shared copy (RemoteShRd).
		li.Sharers.Add(requester)
		env.Eng.After(env.DirLookup, func() {
			r := env.Net.NewMsg()
			r.Kind, r.Src, r.Dst, r.Tag, r.Line = msg.ReadShReply, node, requester, tag, l
			env.Net.Send(r)
		})
	default:
		// Served from memory (MemRd).
		env.State.AddSharer(l, requester)
		env.Eng.After(env.DirLookup+env.MemLatency, func() {
			r := env.Net.NewMsg()
			r.Kind, r.Src, r.Dst, r.Tag, r.Line = msg.ReadMemReply, node, requester, tag, l
			env.Net.Send(r)
		})
	}
}
