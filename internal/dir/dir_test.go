package dir

import (
	"testing"

	"scalablebulk/internal/bitset"
	"scalablebulk/internal/chunk"
	"scalablebulk/internal/event"
	"scalablebulk/internal/mem"
	"scalablebulk/internal/mesh"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/sig"
	"scalablebulk/internal/stats"
)

func TestStateTouchAndSharers(t *testing.T) {
	s := NewState()
	if s.Get(5) != nil {
		t.Fatal("untouched line has an entry")
	}
	s.AddSharer(5, 2)
	s.AddSharer(5, 7)
	li := s.Get(5)
	if li == nil || !li.Sharers.Has(2) || !li.Sharers.Has(7) {
		t.Fatal("sharers not recorded")
	}
	if li.Dirty || li.Owner != -1 {
		t.Fatal("fresh line must be clean and unowned")
	}
}

func TestApplyCommitWrite(t *testing.T) {
	s := NewState()
	s.AddSharer(9, 1)
	s.AddSharer(9, 2)
	s.ApplyCommitWrite(9, 3)
	li := s.Get(9)
	if !li.Dirty || li.Owner != 3 {
		t.Fatal("commit write did not set dirty owner")
	}
	if li.Sharers.Has(1) || li.Sharers.Has(2) || !li.Sharers.Has(3) {
		t.Fatalf("sharers after commit = %s", li.Sharers.String())
	}
}

func TestSharersOfFiltersByHome(t *testing.T) {
	s := NewState()
	mp := mem.NewMapper(4)
	// Page of line 0 homed at dir 1; page of line 128 homed at dir 2.
	mp.Home(0, 1)
	mp.Home(128, 2)
	s.AddSharer(0, 5)
	s.AddSharer(128, 6)

	var dst bitset.Set
	s.SharersOf([]sig.Line{0, 128}, 1, mp, -1, &dst)
	if !dst.Has(5) || dst.Has(6) {
		t.Fatalf("home filter failed: %s", dst.String())
	}
	// Exclusion of the committer.
	dst.Clear()
	s.SharersOf([]sig.Line{0}, 1, mp, 5, &dst)
	if !dst.Empty() {
		t.Fatalf("committer not excluded: %s", dst.String())
	}
	// Unmapped lines are skipped.
	dst.Clear()
	s.SharersOf([]sig.Line{99999}, 1, mp, -1, &dst)
	if !dst.Empty() {
		t.Fatal("unmapped line produced sharers")
	}
}

// fakeProto nacks reads to one specific line.
type fakeProto struct{ blocked sig.Line }

func (f *fakeProto) Name() string                          { return "fake" }
func (f *fakeProto) RequestCommit(int, *chunk.Chunk)       {}
func (f *fakeProto) HandleDir(int, *msg.Msg)               {}
func (f *fakeProto) HandleProc(int, *msg.Msg)              {}
func (f *fakeProto) ReadBlocked(node int, l sig.Line) bool { return l == f.blocked }

var _ Protocol = (*fakeProto)(nil)

func testEnv(t *testing.T, nodes int) (*Env, *mesh.Network, *event.Engine) {
	t.Helper()
	eng := event.New()
	net := mesh.New(eng, mesh.Config{Nodes: nodes, LinkLatency: 7})
	env := &Env{
		Eng: eng, Net: net, Map: mem.NewMapper(nodes), State: NewState(),
		Coll: stats.New(), DirLookup: 2, MemLatency: 300,
	}
	return env, net, eng
}

func TestReadPathMemoryRead(t *testing.T) {
	env, net, eng := testEnv(t, 4)
	rp := &ReadPath{Env: env}
	var got *msg.Msg
	net.Register(0, func(m *msg.Msg) { c := *m; got = &c }) // copy: Transient msgs are recycled after the handler
	net.Register(1, func(m *msg.Msg) { rp.HandleDir(1, m) })

	env.Map.Home(10, 1)
	net.Send(&msg.Msg{Kind: msg.ReadReq, Src: 0, Dst: 1, Line: 10})
	eng.Run()
	if got == nil || got.Kind != msg.ReadMemReply {
		t.Fatalf("got %v, want read_mem_reply", got)
	}
	if eng.Now() < 300 {
		t.Fatalf("memory read completed in %d cycles, faster than memory", eng.Now())
	}
	if li := env.State.Get(10); li == nil || !li.Sharers.Has(0) {
		t.Fatal("requester not recorded as sharer")
	}
}

func TestReadPathSharedRead(t *testing.T) {
	env, net, eng := testEnv(t, 4)
	rp := &ReadPath{Env: env}
	var got *msg.Msg
	net.Register(0, func(m *msg.Msg) { c := *m; got = &c }) // copy: Transient msgs are recycled after the handler
	net.Register(1, func(m *msg.Msg) { rp.HandleDir(1, m) })

	env.Map.Home(10, 1)
	env.State.AddSharer(10, 3) // someone already caches it
	net.Send(&msg.Msg{Kind: msg.ReadReq, Src: 0, Dst: 1, Line: 10})
	eng.Run()
	if got == nil || got.Kind != msg.ReadShReply {
		t.Fatalf("got %v, want read_sh_reply", got)
	}
	if eng.Now() >= 300 {
		t.Fatal("shared read paid memory latency")
	}
}

func TestReadPathDirtyForward(t *testing.T) {
	env, net, eng := testEnv(t, 4)
	rp := &ReadPath{Env: env}
	var got *msg.Msg
	net.Register(0, func(m *msg.Msg) { c := *m; got = &c }) // copy: Transient msgs are recycled after the handler
	net.Register(1, func(m *msg.Msg) { rp.HandleDir(1, m) })
	net.Register(2, func(m *msg.Msg) { rp.HandleDir(2, m) }) // owner tile

	env.Map.Home(10, 1)
	env.State.ApplyCommitWrite(10, 2) // P2 owns line 10 dirty
	net.Send(&msg.Msg{Kind: msg.ReadReq, Src: 0, Dst: 1, Line: 10})
	eng.Run()
	if got == nil || got.Kind != msg.ReadDirtyReply {
		t.Fatalf("got %v, want read_dirty_reply", got)
	}
	li := env.State.Get(10)
	if li.Dirty || !li.Sharers.Has(0) {
		t.Fatal("dirty read did not downgrade to shared")
	}
	// Second read is now a shared read.
	st := net.Stats()
	if st.ByKind[msg.ReadDirtyFwd] != 1 {
		t.Fatalf("dirty fwd count = %d", st.ByKind[msg.ReadDirtyFwd])
	}
}

func TestReadPathNack(t *testing.T) {
	env, net, eng := testEnv(t, 4)
	rp := &ReadPath{Env: env, Proto: &fakeProto{blocked: 10}}
	var got *msg.Msg
	net.Register(0, func(m *msg.Msg) { c := *m; got = &c }) // copy: Transient msgs are recycled after the handler
	net.Register(1, func(m *msg.Msg) { rp.HandleDir(1, m) })

	env.Map.Home(10, 1)
	net.Send(&msg.Msg{Kind: msg.ReadReq, Src: 0, Dst: 1, Line: 10})
	eng.Run()
	if got == nil || got.Kind != msg.ReadNack {
		t.Fatalf("got %v, want read_nack", got)
	}
	if rp.Nacks != 1 {
		t.Fatalf("Nacks = %d", rp.Nacks)
	}
}

func TestReadPathIgnoresNonReadMessages(t *testing.T) {
	env, _, _ := testEnv(t, 4)
	rp := &ReadPath{Env: env}
	if rp.HandleDir(0, &msg.Msg{Kind: msg.Grab}) {
		t.Fatal("read path consumed a protocol message")
	}
}

func TestSharersOfAllIgnoresHomes(t *testing.T) {
	s := NewState()
	s.AddSharer(0, 5)
	s.AddSharer(128, 6)
	s.AddSharer(128, 7)
	var dst bitset.Set
	s.SharersOfAll([]sig.Line{0, 128, 999}, 6, &dst)
	if !dst.Has(5) || !dst.Has(7) {
		t.Fatalf("missing sharers: %s", dst.String())
	}
	if dst.Has(6) {
		t.Fatal("exclusion failed")
	}
}
