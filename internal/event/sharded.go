// Sharded execution: a deterministic parallel wrapper over the calendar
// queue. The simulated machine is partitioned by tile into S shards, each
// with its own calendar; the coordinator advances a global lockstep clock one
// populated cycle at a time and classifies each cycle's due set:
//
//   - A round containing only *local* events (read-path traffic and per-tile
//     timers, which touch nothing outside their own tile) fans out across S
//     worker goroutines. Side effects that cross tiles — network sends,
//     observer callbacks — are staged with ordering keys and replayed by the
//     coordinator at the epoch barrier, in key order.
//   - A round containing any *global* event (commit-protocol messages and
//     timers, which reach the shared protocol engines, workload generator and
//     statistics) executes entirely on the coordinator, in merged key order —
//     exactly the serial engine's semantics.
//
// Ordering keys make the whole construction schedule-invariant: every event
// carries a (parent fire index, child index) composite — "the i-th event to
// fire spawned me as its j-th action" — packed into the calendar's 64-bit seq
// field. Events fire in (time, key) order. A straightforward induction shows
// this order equals the serial engine's (time, scalar seq) order: the serial
// counter assigns consecutive seqs to each firing event's children, and
// parents fire in seq order, so comparing (parent fire index, child index)
// lexicographically reproduces the scalar comparison. Keys are assigned from
// deterministic round state, never from OS scheduling, so every fingerprint
// is byte-identical to the serial engine's for any shard count.
package event

import (
	"fmt"
	"sync"
)

// childBits sizes the child-index field of the packed ordering key: up to
// ~1M scheduling actions per firing event (a 1024-core broadcast is ~1K),
// leaving 44 bits of parent fire index (~1.7e13 events per run).
const (
	childBits = 20
	childMask = (1 << childBits) - 1
)

// keyCtx is the ordering-key generator for the currently executing event.
type keyCtx struct {
	parent uint64
	child  uint64
}

func (c *keyCtx) next() uint64 {
	if c.child > childMask {
		panic(fmt.Sprintf("event: event %d exceeded %d scheduling actions", c.parent, childMask))
	}
	k := c.parent<<childBits | c.child
	c.child++
	return k
}

// stagedAction is one cross-tile side effect recorded during a parallel
// round, replayed by the coordinator at the barrier in key order.
type stagedAction struct {
	key uint64
	fn  func(any)
	arg any
}

// ShardStats are the sharded engine's execution counters. They are
// observability only — deliberately excluded from result fingerprints, which
// must be independent of the shard count.
type ShardStats struct {
	// Shards is the shard count the engine ran with.
	Shards int
	// Rounds counts lockstep rounds (populated cycles, including re-rounds
	// when a handler schedules into the current cycle).
	Rounds uint64
	// SerialRounds counts rounds serialized on the coordinator because the
	// due set contained a global event.
	SerialRounds uint64
	// ParallelRounds counts rounds fanned out across the shard workers.
	ParallelRounds uint64
	// BarrierStalls counts coordinator waits at epoch barriers (one per
	// parallel round that dispatched work).
	BarrierStalls uint64
	// StagedActions counts cross-tile side effects handed off through the
	// barrier (sends and observer callbacks staged during parallel rounds).
	StagedActions uint64
}

// ShardedEngine runs one simulated machine across S shard calendars in
// deterministic lockstep. Construct with NewSharded, hand each component the
// Sched view for its tile's shard (Views) or the coordinator's GlobalView
// (Global), drive with RoundStep, and Stop when done. All coordinator-side
// methods (RoundStep, DeliverAt, Stop) must be called from one goroutine.
type ShardedEngine struct {
	clock Time
	cals  []*Engine
	views []*ShardView

	fireIdx uint64 // next parent fire index; 0 is the build/start phase
	fired   uint64

	parallel  bool   // a parallel round is executing on the workers
	sctx      keyCtx // key generator for serialized/build execution
	replay    bool   // replaying staged actions at a barrier
	replayKey uint64

	// Per-shard round scratch: due items, their assigned fire indices, the
	// merged execution order (shard index per merged position), and the
	// reusable per-shard cursors.
	due   [][]*item
	fids  [][]uint64
	order []int32
	heads []int

	stats ShardStats

	// BeginParallelRound/EndParallelRound, when non-nil, bracket every
	// parallel round (coordinator side). The system layer uses them to arm
	// and check the page-mapper's first-touch collision detector.
	BeginParallelRound func()
	EndParallelRound   func()

	// Halt, when non-nil, is consulted after every serialized-round event.
	// When it reports true the round suspends with its remaining due items
	// intact: the next RoundStep resumes exactly where the round stopped.
	// This reproduces the serial driver's stop-between-events semantics —
	// the run ends at the event that finishes the last processor, not at the
	// cycle boundary — so stats never include post-completion stragglers the
	// serial engine would have left unfired. Completion can only flip inside
	// a serialized round (commit completion is a global event), so parallel
	// rounds never consult it.
	Halt func() bool

	// Suspended serialized-round state (see Halt): resumeAt indexes the
	// merged order; heads retains the per-shard cursors across the suspend.
	suspended bool
	resumeAt  int

	workers sync.WaitGroup
	work    []chan struct{}
	done    chan int
	started bool
	stopped bool
	panics  []any // per-shard recovered panic values, re-raised at the barrier
}

// NewSharded returns a sharded engine with S shard calendars and the clock
// at cycle 0. S must be at least 1.
func NewSharded(shards int) *ShardedEngine {
	if shards < 1 {
		panic("event: NewSharded needs at least one shard")
	}
	se := &ShardedEngine{
		cals:   make([]*Engine, shards),
		views:  make([]*ShardView, shards),
		due:    make([][]*item, shards),
		fids:   make([][]uint64, shards),
		panics: make([]any, shards),
	}
	se.fireIdx = 1 // fire index 0 is the virtual build/start parent
	se.stats.Shards = shards
	for i := range se.cals {
		se.cals[i] = New()
		se.views[i] = &ShardView{se: se, idx: i, cal: se.cals[i]}
	}
	return se
}

// Shards returns the shard count.
func (se *ShardedEngine) Shards() int { return len(se.cals) }

// Now returns the global lockstep clock.
func (se *ShardedEngine) Now() Time { return se.clock }

// Fired returns the total number of events fired across all shards.
func (se *ShardedEngine) Fired() uint64 { return se.fired }

// Stats returns the engine's execution counters.
func (se *ShardedEngine) Stats() ShardStats { return se.stats }

// RingResidency sums the retained calendar-ring capacity across all shard
// calendars (see Engine.RingResidency).
func (se *ShardedEngine) RingResidency() uint64 {
	var total uint64
	for _, cal := range se.cals {
		total += cal.RingResidency()
	}
	return total
}

// Views returns the per-shard Sched views, indexed by shard.
func (se *ShardedEngine) Views() []*ShardView { return se.views }

// View returns the Sched view for one shard.
func (se *ShardedEngine) View(shard int) *ShardView { return se.views[shard] }

// Global returns the coordinator's Sched view: everything scheduled through
// it is a global event, serialized into coordinator rounds. The protocol
// engines and the commit kernel hold this view.
func (se *ShardedEngine) Global() *GlobalView { return &GlobalView{se: se} }

// curKey returns the ordering key for the next scheduling action of the
// current coordinator-side execution context: the staged action's own key
// during barrier replay, else the next child of the executing event.
func (se *ShardedEngine) curKey() uint64 {
	if se.replay {
		return se.replayKey
	}
	return se.sctx.next()
}

// DeliverAt schedules fn(arg) at absolute time t on the given shard's
// calendar with the current execution context's ordering key. It is the
// cross-shard handoff the network layer uses to land a message delivery on
// the destination tile's shard; local=false marks the delivery global. Must
// only be called from coordinator-side execution (serialized rounds, barrier
// replay, or the build phase) — parallel-round handlers hand cross-tile work
// off by staging it instead.
func (se *ShardedEngine) DeliverAt(shard int, t Time, local bool, fn func(any), arg any) Ticket {
	if se.parallel {
		panic("event: DeliverAt during a parallel round")
	}
	return se.cals[shard].put(t, se.curKey(), !local, nil, fn, arg)
}

// nextTime finds the earliest pending event time across all shards.
func (se *ShardedEngine) nextTime() (Time, bool) {
	var best Time
	found := false
	for _, cal := range se.cals {
		if t, ok := cal.peek(); ok && (!found || t < best) {
			best = t
			found = true
		}
	}
	return best, found
}

// RoundStep advances the clock to the earliest populated cycle and fires
// that cycle's due events — serialized on the coordinator if any is global,
// else in parallel across the shard workers with staged side effects
// replayed at the barrier. It returns the number of events fired; 0 means
// every calendar is empty.
func (se *ShardedEngine) RoundStep() int {
	if se.suspended {
		se.suspended = false
		if n := se.runSerialRound(se.resumeAt); n > 0 {
			return n
		}
		// Every remaining item had been cancelled; fall through to a fresh
		// round.
	}
	t, ok := se.nextTime()
	if !ok {
		return 0
	}
	se.clock = t
	nDue, anyGlobal := 0, false
	for i, cal := range se.cals {
		cal.now = t
		se.due[i] = cal.popDue(t, se.due[i][:0])
		nDue += len(se.due[i])
		for _, it := range se.due[i] {
			if it.global {
				anyGlobal = true
			}
		}
	}
	if nDue == 0 {
		// Every due item at this cycle was cancelled (popDue released them);
		// move on to the next populated cycle, or report empty.
		return se.RoundStep()
	}
	se.mergeAssign(nDue)
	se.stats.Rounds++
	if anyGlobal {
		se.stats.SerialRounds++
		se.runSerialRound(0)
	} else {
		se.stats.ParallelRounds++
		se.runParallelRound()
	}
	return nDue
}

// mergeAssign walks the shards' due lists (each already key-sorted) in
// global key order, assigning each item its parent fire index and recording
// the merged order for serialized execution. A linear min-scan per item is
// right for the supported shard counts (a handful): it beats heap
// bookkeeping and allocates nothing.
func (se *ShardedEngine) mergeAssign(nDue int) {
	se.order = se.order[:0]
	heads := se.resetHeads()
	for n := 0; n < nDue; n++ {
		best := -1
		var bestKey uint64
		for s, list := range se.due {
			if heads[s] >= len(list) {
				continue
			}
			if k := list[heads[s]].seq; best < 0 || k < bestKey {
				best, bestKey = s, k
			}
		}
		se.assign(best, heads[best])
		heads[best]++
	}
}

// resetHeads returns the shared per-shard cursor scratch, zeroed.
func (se *ShardedEngine) resetHeads() []int {
	if se.heads == nil {
		se.heads = make([]int, len(se.due))
	}
	for i := range se.heads {
		se.heads[i] = 0
	}
	return se.heads
}

func (se *ShardedEngine) assign(shard, pos int) {
	if pos == 0 {
		se.fids[shard] = se.fids[shard][:0]
	}
	se.fids[shard] = append(se.fids[shard], se.fireIdx)
	se.fireIdx++
	se.order = append(se.order, int32(shard))
}

// runSerialRound executes the merged due set on the coordinator in key
// order — byte-for-byte the serial engine's behavior for this cycle —
// starting at position from in the merged order (nonzero when resuming a
// Halt-suspended round). It returns the number of items processed.
func (se *ShardedEngine) runSerialRound(from int) int {
	if from == 0 {
		se.resetHeads()
	}
	heads := se.heads
	processed := 0
	for oi := from; oi < len(se.order); oi++ {
		s := int(se.order[oi])
		it := se.due[s][heads[s]]
		fid := se.fids[s][heads[s]]
		heads[s]++
		processed++
		if it.dead {
			se.cals[s].release(it)
			continue
		}
		se.sctx = keyCtx{parent: fid}
		se.fired++
		fn, afn, arg := it.fn, it.afn, it.arg
		se.cals[s].release(it)
		if afn != nil {
			afn(arg)
		} else {
			fn()
		}
		if oi+1 < len(se.order) && se.Halt != nil && se.Halt() {
			se.suspended, se.resumeAt = true, oi+1
			return processed
		}
	}
	return processed
}

// runParallelRound fans the due lists out to the shard workers, waits at the
// barrier, re-raises any worker panic, then replays the staged cross-tile
// actions in merged key order.
func (se *ShardedEngine) runParallelRound() {
	if se.BeginParallelRound != nil {
		se.BeginParallelRound()
	}
	se.parallel = true
	if !se.started {
		se.startWorkers()
	}
	dispatched := 0
	for s := range se.due {
		if len(se.due[s]) > 0 {
			dispatched++
			se.work[s] <- struct{}{}
		}
	}
	for i := 0; i < dispatched; i++ {
		se.fired += uint64(<-se.done)
	}
	if dispatched > 0 {
		se.stats.BarrierStalls++
	}
	se.parallel = false
	for s, v := range se.panics {
		if v != nil {
			se.panics[s] = nil
			panic(v)
		}
	}
	se.replayStaged()
	if se.EndParallelRound != nil {
		se.EndParallelRound()
	}
}

// replayStaged applies the parallel round's staged actions in key order: the
// order the serial engine would have produced these side effects in.
func (se *ShardedEngine) replayStaged() {
	se.replay = true
	heads := se.resetHeads()
	for {
		best := -1
		var bestKey uint64
		for s, v := range se.views {
			if heads[s] >= len(v.stage) {
				continue
			}
			if k := v.stage[heads[s]].key; best < 0 || k < bestKey {
				best, bestKey = s, k
			}
		}
		if best < 0 {
			break
		}
		a := se.views[best].stage[heads[best]]
		heads[best]++
		se.stats.StagedActions++
		se.replayKey = a.key
		a.fn(a.arg)
	}
	se.replay = false
	for _, v := range se.views {
		for i := range v.stage {
			v.stage[i] = stagedAction{}
		}
		v.stage = v.stage[:0]
	}
}

// startWorkers launches the long-lived shard goroutines (lazily, at the
// first parallel round).
func (se *ShardedEngine) startWorkers() {
	se.started = true
	se.work = make([]chan struct{}, len(se.cals))
	se.done = make(chan int, len(se.cals))
	for s := range se.cals {
		se.work[s] = make(chan struct{})
		se.workers.Add(1)
		go se.worker(s)
	}
}

func (se *ShardedEngine) worker(s int) {
	defer se.workers.Done()
	for range se.work[s] {
		se.done <- se.runShard(s)
	}
}

// runShard executes one shard's due list in key order on its worker
// goroutine, returning the number of events fired (the coordinator folds it
// into the engine's counter at the barrier). A panic is captured and
// re-raised by the coordinator at the barrier so the standard RunPanic
// machinery still sees it.
func (se *ShardedEngine) runShard(s int) (fired int) {
	defer func() {
		if r := recover(); r != nil {
			se.panics[s] = r
		}
	}()
	v := se.views[s]
	cal := se.cals[s]
	for j, it := range se.due[s] {
		if it.dead {
			cal.release(it)
			continue
		}
		v.pctx = keyCtx{parent: se.fids[s][j]}
		fired++
		fn, afn, arg := it.fn, it.afn, it.arg
		cal.release(it)
		if afn != nil {
			afn(arg)
		} else {
			fn()
		}
	}
	return fired
}

// Stop shuts the worker goroutines down. Idempotent; the engine must not be
// stepped afterwards.
func (se *ShardedEngine) Stop() {
	if se.stopped {
		return
	}
	se.stopped = true
	if se.started {
		for _, ch := range se.work {
			close(ch)
		}
		se.workers.Wait()
	}
}

// ShardView is one shard's scheduling face. During serialized rounds (and
// the build phase) it runs on the coordinator; during parallel rounds it
// must only be used by its own shard's worker — which holds by construction,
// because only the shard's tiles reference it.
type ShardView struct {
	se    *ShardedEngine
	idx   int
	cal   *Engine
	pctx  keyCtx // key generator during parallel rounds (worker-local)
	stage []stagedAction
}

// Shard returns the view's shard index.
func (v *ShardView) Shard() int { return v.idx }

// Now returns the global lockstep clock.
func (v *ShardView) Now() Time { return v.se.clock }

// Parallel reports whether a parallel round is executing — the signal for
// the network layer to stage sends instead of routing them immediately.
func (v *ShardView) Parallel() bool { return v.se.parallel }

func (v *ShardView) key() uint64 {
	if v.se.parallel {
		return v.pctx.next()
	}
	return v.se.curKey()
}

// At schedules fn at absolute time t on this shard, as a local event.
func (v *ShardView) At(t Time, fn Handler) Ticket {
	return v.cal.put(t, v.key(), false, fn, nil, nil)
}

// AtArg schedules fn(arg) at absolute time t on this shard, as a local event.
func (v *ShardView) AtArg(t Time, fn func(any), arg any) Ticket {
	return v.cal.put(t, v.key(), false, nil, fn, arg)
}

// After schedules fn at Now()+d on this shard, as a local event.
func (v *ShardView) After(d Time, fn Handler) Ticket { return v.At(v.se.clock+d, fn) }

// AfterArg is AtArg relative to now.
func (v *ShardView) AfterArg(d Time, fn func(any), arg any) Ticket {
	return v.AtArg(v.se.clock+d, fn, arg)
}

// AfterGlobal schedules fn at Now()+d as a global event: it stays on this
// shard's calendar but forces its round to serialize on the coordinator.
// Tile code uses it for the timers whose handlers reach shared state (commit
// submission, commit-retry backoff).
func (v *ShardView) AfterGlobal(d Time, fn Handler) Ticket {
	return v.cal.put(v.se.clock+d, v.key(), true, fn, nil, nil)
}

// Stage records a cross-tile side effect during a parallel round, keyed into
// the event's action sequence; the coordinator replays it at the barrier in
// global key order. Outside a parallel round the effect applies immediately
// (the coordinator is the only executor, so ordering is already serial).
func (v *ShardView) Stage(fn func(any), arg any) {
	if !v.se.parallel {
		fn(arg)
		return
	}
	v.stage = append(v.stage, stagedAction{key: v.pctx.next(), fn: fn, arg: arg})
}

// GlobalView is the coordinator's scheduling face: every event scheduled
// through it is global (serialized round) and lands on shard 0's calendar —
// which shard holds it is irrelevant, because global events execute on the
// coordinator in merged key order. Scheduling through it during a parallel
// round panics: that would mean protocol code ran outside a serialized
// round, which the shard classification must prevent.
type GlobalView struct{ se *ShardedEngine }

// Now returns the global lockstep clock.
func (g *GlobalView) Now() Time { return g.se.clock }

func (g *GlobalView) put(t Time, fn Handler, afn func(any), arg any) Ticket {
	se := g.se
	if se.parallel {
		panic("event: global schedule during a parallel round")
	}
	return se.cals[0].put(t, se.curKey(), true, fn, afn, arg)
}

// At schedules fn at absolute time t as a global event.
func (g *GlobalView) At(t Time, fn Handler) Ticket { return g.put(t, fn, nil, nil) }

// AtArg schedules fn(arg) at absolute time t as a global event.
func (g *GlobalView) AtArg(t Time, fn func(any), arg any) Ticket {
	return g.put(t, nil, fn, arg)
}

// After schedules fn at Now()+d as a global event.
func (g *GlobalView) After(d Time, fn Handler) Ticket { return g.put(g.se.clock+d, fn, nil, nil) }

// AfterArg is AtArg relative to now.
func (g *GlobalView) AfterArg(d Time, fn func(any), arg any) Ticket {
	return g.put(g.se.clock+d, nil, fn, arg)
}

// AfterGlobal is After (already global).
func (g *GlobalView) AfterGlobal(d Time, fn Handler) Ticket { return g.After(d, fn) }
