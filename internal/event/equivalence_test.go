package event

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// trace drives a scheduler through a scripted random workload and records
// the exact firing order. Both engines must produce bit-identical traces.
type scheduler interface {
	Now() Time
	Pending() int
	Fired() uint64
	Step() bool
	RunUntil(limit Time) uint64
}

// script is a deterministic schedule: initial events, handler-spawned
// events, and cancellations, all derived from one seed. Delays mimic the
// machine model: mostly short (+2, +7, +300), with rare +200k watchdogs that
// exercise the calendar overflow heap, plus same-cycle collisions scheduled
// both inside and outside the window to exercise the seq-order bucket merge.
func runScript(t *testing.T, seed int64, mk func() (scheduler, func(Time, Handler) func())) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	eng, at := mk()

	var trace []string
	var cancels []func()
	id := 0
	delays := []Time{1, 2, 2, 7, 7, 7, 13, 48, 300, 1600, 5000, 200_000}

	var spawn func(depth int) Handler
	spawn = func(depth int) Handler {
		myID := id
		id++
		return func() {
			trace = append(trace, fmt.Sprintf("%d@%d", myID, eng.Now()))
			if depth < 3 {
				n := rng.Intn(3)
				for i := 0; i < n; i++ {
					d := delays[rng.Intn(len(delays))]
					c := at(eng.Now()+d, spawn(depth+1))
					if rng.Intn(8) == 0 {
						cancels = append(cancels, c)
					}
				}
			}
		}
	}

	for i := 0; i < 60; i++ {
		d := delays[rng.Intn(len(delays))]
		c := at(d, spawn(0))
		if rng.Intn(6) == 0 {
			cancels = append(cancels, c)
		}
	}
	// A burst of same-cycle events far out: some land in the overflow heap
	// now, the rest are scheduled into the ring after time advances, so FIFO
	// across the two paths is on trial.
	for i := 0; i < 10; i++ {
		at(199_000, spawn(0))
	}
	for _, c := range cancels {
		c()
	}
	cancels = nil

	// Mix RunUntil idling (which must not disturb later schedules) with
	// stepping and late scheduling.
	eng.RunUntil(100)
	at(eng.Now()+3, spawn(0))
	for eng.Step() {
		if eng.Fired() == 40 {
			at(eng.Now(), spawn(0)) // same-cycle from a non-handler context
		}
	}
	eng.RunUntil(eng.Now() + 10_000) // idle clock advance on empty queue
	at(eng.Now()+299_999, spawn(1))  // far event after an idle jump
	eng.RunUntil(eng.Now() + 1_000_000)
	if eng.Pending() != 0 {
		t.Fatalf("events left pending: %d", eng.Pending())
	}
	trace = append(trace, fmt.Sprintf("end@%d fired=%d", eng.Now(), eng.Fired()))
	return trace
}

// TestCalendarMatchesHeapReference drives the calendar Engine and the heap
// reference through identical schedules and requires identical firing order.
func TestCalendarMatchesHeapReference(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		cal := runScript(t, seed, func() (scheduler, func(Time, Handler) func()) {
			e := New()
			return e, func(at Time, fn Handler) func() { tk := e.At(at, fn); return tk.Cancel }
		})
		ref := runScript(t, seed, func() (scheduler, func(Time, Handler) func()) {
			e := NewHeap()
			return e, func(at Time, fn Handler) func() { tk := e.At(at, fn); return tk.Cancel }
		})
		if len(cal) != len(ref) {
			t.Fatalf("seed %d: trace lengths differ: calendar %d vs heap %d", seed, len(cal), len(ref))
		}
		for i := range cal {
			if cal[i] != ref[i] {
				t.Fatalf("seed %d: traces diverge at %d: calendar %q vs heap %q", seed, i, cal[i], ref[i])
			}
		}
	}
}

// Property: under random (delay, cancel) vectors the two engines fire the
// same number of events at the same final clock.
func TestPropertyCalendarHeapAgree(t *testing.T) {
	f := func(delays []uint32, cancelMask []bool, seed int64) bool {
		if len(delays) > 300 {
			delays = delays[:300]
		}
		cal := New()
		ref := NewHeap()
		var calOrder, refOrder []int
		calCancel := make([]func(), len(delays))
		refCancel := make([]func(), len(delays))
		for i, d := range delays {
			i := i
			at := Time(d % 500_000)
			tk := cal.At(at, func() { calOrder = append(calOrder, i) })
			calCancel[i] = tk.Cancel
			hk := ref.At(at, func() { refOrder = append(refOrder, i) })
			refCancel[i] = hk.Cancel
		}
		for i := range delays {
			if i < len(cancelMask) && cancelMask[i] {
				calCancel[i]()
				refCancel[i]()
			}
		}
		cal.Run()
		ref.Run()
		if len(calOrder) != len(refOrder) || cal.Now() != ref.Now() || cal.Fired() != ref.Fired() {
			return false
		}
		for i := range calOrder {
			if calOrder[i] != refOrder[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// simLoad approximates the simulator's event mix: chains of short-delay
// events (link hops, directory lookups), occasional +300 memory trips, and
// +200k watchdogs that are cancelled before firing.
func simLoad(n int, at func(Time, Handler) func(), now func() Time, step func() bool) {
	var watchdogs []func()
	var chain Handler
	left := n
	chain = func() {
		if left == 0 {
			return
		}
		left--
		d := Time(7)
		switch left % 29 {
		case 0:
			d = 300
		case 1:
			d = 2
		}
		at(now()+d, chain)
		if left%97 == 0 {
			watchdogs = append(watchdogs, at(now()+200_000, func() {}))
		}
		if len(watchdogs) > 4 {
			watchdogs[0]()
			watchdogs = watchdogs[1:]
		}
	}
	at(1, chain)
	for step() {
	}
}

func BenchmarkEngineCalendar(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		simLoad(10_000,
			func(t Time, fn Handler) func() { tk := e.At(t, fn); return tk.Cancel },
			e.Now, e.Step)
	}
}

func BenchmarkEngineHeap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewHeap()
		simLoad(10_000,
			func(t Time, fn Handler) func() { tk := e.At(t, fn); return tk.Cancel },
			e.Now, e.Step)
	}
}
