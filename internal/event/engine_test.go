package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var e Engine
	ran := false
	e.After(5, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("event did not fire")
	}
	if e.Now() != 5 {
		t.Fatalf("Now = %d, want 5", e.Now())
	}
}

func TestFIFOOrderingAtSameTime(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { order = append(order, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-cycle events fired out of scheduling order: %v", order)
	}
	if len(order) != 10 {
		t.Fatalf("fired %d events, want 10", len(order))
	}
}

func TestTimeOrdering(t *testing.T) {
	e := New()
	var times []Time
	for _, d := range []Time{9, 3, 14, 3, 0, 100, 7} {
		e.At(d, func() { times = append(times, e.Now()) })
	}
	e.Run()
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("events fired out of time order: %v", times)
		}
	}
}

func TestScheduleInsideHandler(t *testing.T) {
	e := New()
	var hits []Time
	e.At(1, func() {
		hits = append(hits, e.Now())
		e.After(4, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 5 {
		t.Fatalf("hits = %v, want [1 5]", hits)
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	tk := e.At(3, func() { fired = true })
	tk.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel and cancel-after-run are no-ops.
	tk.Cancel()
}

func TestCancelOneOfMany(t *testing.T) {
	e := New()
	var got []int
	var tks []Ticket
	for i := 0; i < 5; i++ {
		i := i
		tks = append(tks, e.At(Time(i), func() { got = append(got, i) }))
	}
	tks[2].Cancel()
	e.Run()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, d := range []Time{2, 4, 6, 8} {
		e.At(d, func() { fired = append(fired, e.Now()) })
	}
	n := e.RunUntil(5)
	if n != 2 {
		t.Fatalf("RunUntil fired %d, want 2", n)
	}
	if e.Now() != 5 {
		t.Fatalf("Now = %d, want 5", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("total fired %d, want 4", len(fired))
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := New()
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Fatalf("Now = %d, want 1000", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestFiredCounter(t *testing.T) {
	e := New()
	for i := 0; i < 7; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Fired() != 7 {
		t.Fatalf("Fired = %d, want 7", e.Fired())
	}
}

// Property: for any random schedule, events fire in nondecreasing time order
// and every non-cancelled event fires exactly once.
func TestPropertyOrderAndCompleteness(t *testing.T) {
	f := func(delays []uint16, seed int64) bool {
		if len(delays) > 200 {
			delays = delays[:200]
		}
		e := New()
		rng := rand.New(rand.NewSource(seed))
		fired := make([]bool, len(delays))
		var last Time
		ok := true
		cancelled := make(map[int]bool)
		var tks []Ticket
		for i, d := range delays {
			i := i
			tks = append(tks, e.At(Time(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
				if fired[i] {
					ok = false // double fire
				}
				fired[i] = true
			}))
		}
		for i := range delays {
			if rng.Intn(4) == 0 {
				tks[i].Cancel()
				cancelled[i] = true
			}
		}
		e.Run()
		for i := range delays {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 1000; j++ {
			e.At(Time(j%97), func() {})
		}
		e.Run()
	}
}
