package event

import (
	"fmt"
	"hash/maphash"
	"testing"
)

// The sharded engine's contract is bit-exact equivalence with the serial
// Engine: per-tile firing order, the coordinator-side order of cross-tile
// side effects (the "wire"), the final clock and the fired count must all be
// independent of the shard count. These tests drive a scripted multi-tile
// workload — local timers, cross-tile messages (staged during parallel
// rounds), global timers, cancellations, same-cycle re-rounds and
// overflow-horizon events — through the serial Engine and through
// ShardedEngine at several shard counts, and require identical traces.

const shTiles = 12

// shPkt is a scripted cross-tile message.
type shPkt struct {
	id     string
	src    int
	dst    int
	d      Time
	global bool
	depth  int
}

// shHash derives all scripted behavior from (seed, id): the script must be a
// pure function of event identity so every engine executes the same tree.
func shHash(seed uint64, id string) uint64 {
	var h maphash.Hash
	h.SetSeed(shSeed)
	var b [8]byte
	for i := range b {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	h.WriteString(id)
	return h.Sum64()
}

var shSeed = maphash.MakeSeed()

// runShardScript executes the scripted workload; shards == 0 runs the serial
// Engine, otherwise a ShardedEngine with that many shards. It returns the
// per-tile firing traces, the wire trace, and the final (clock, fired) pair.
func runShardScript(t *testing.T, seed uint64, shards int) ([][]string, []string, Time, uint64) {
	t.Helper()
	tileTr := make([][]string, shTiles)
	var wire []string

	var se *ShardedEngine
	var eng *Engine
	shardOf := make([]int, shTiles)
	if shards > 0 {
		se = NewSharded(shards)
		defer se.Stop()
		for i := range shardOf {
			shardOf[i] = i * shards / shTiles
		}
	} else {
		eng = New()
	}
	now := func() Time {
		if se != nil {
			return se.Now()
		}
		return eng.Now()
	}

	var fire func(tile int, id string, depth int)
	var lastTicket [shTiles]Ticket
	var lastID [shTiles]string

	schedLocal := func(tile int, d Time, id string, depth int) Ticket {
		fn := func() { fire(tile, id, depth) }
		if se != nil {
			return se.View(shardOf[tile]).After(d, fn)
		}
		return eng.After(d, fn)
	}
	schedGlobal := func(tile int, d Time, id string, depth int) {
		fn := func() {
			// Global handler: touches shared state, then schedules local
			// follow-ups on other tiles (as protocol engines poke cores).
			wire = append(wire, fmt.Sprintf("g %s@%d", id, now()))
			fire(tile, id, depth)
		}
		if se != nil {
			se.View(shardOf[tile]).AfterGlobal(d, fn)
		} else {
			eng.AfterGlobal(d, fn)
		}
	}
	deliver := func(a any) {
		p := a.(*shPkt)
		fire(p.dst, p.id, p.depth)
	}
	route := func(a any) {
		p := a.(*shPkt)
		wire = append(wire, fmt.Sprintf("s %s %d->%d@%d", p.id, p.src, p.dst, now()))
		at := now() + p.d
		if se != nil {
			se.DeliverAt(shardOf[p.dst], at, !p.global, deliver, p)
		} else {
			eng.AtArg(at, deliver, p)
		}
	}
	send := func(p *shPkt) {
		if se != nil {
			if v := se.View(shardOf[p.src]); v.Parallel() {
				v.Stage(route, p)
				return
			}
		}
		route(p)
	}

	delays := []Time{0, 1, 2, 2, 7, 7, 13, 48, 300, 2000, 5000, 200_000}
	fire = func(tile int, id string, depth int) {
		tileTr[tile] = append(tileTr[tile], fmt.Sprintf("%s@%d", id, now()))
		if depth >= 4 {
			return
		}
		x := shHash(seed, id)
		n := int(x % 4) // 0..3 children
		for c := 0; c < n; c++ {
			cid := fmt.Sprintf("%s.%d", id, c)
			y := shHash(seed, cid)
			d := delays[y%uint64(len(delays))]
			switch (y / 7) % 5 {
			case 0, 1:
				lastTicket[tile] = schedLocal(tile, d, cid, depth+1)
				lastID[tile] = cid
				tileTr[tile] = append(tileTr[tile], "S "+cid)
			case 2:
				dst := int((y / 31) % shTiles)
				send(&shPkt{id: cid, src: tile, dst: dst, d: d + 1,
					global: (y/63)%4 == 0, depth: depth + 1})
			case 3:
				schedGlobal(tile, d, cid, depth+1)
			case 4:
				lastTicket[tile].Cancel()
				tileTr[tile] = append(tileTr[tile], "K "+lastID[tile]+" by "+cid)
				lastTicket[tile] = Ticket{}
				lastID[tile] = ""
			}
		}
	}

	for tile := 0; tile < shTiles; tile++ {
		id := fmt.Sprintf("r%d", tile)
		schedLocal(tile, Time(1+(tile*5)%9), id, 0)
	}

	if se != nil {
		for se.RoundStep() > 0 {
		}
		return tileTr, wire, se.Now(), se.Fired()
	}
	eng.Run()
	return tileTr, wire, eng.Now(), eng.Fired()
}

// TestShardedMatchesSerial drives the script through the serial Engine and
// sharded engines at 1..12 shards and requires bit-identical traces.
func TestShardedMatchesSerial(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		tiles, wire, end, fired := runShardScript(t, seed, 0)
		for _, shards := range []int{1, 2, 3, 4, 5, 8, 12} {
			sTiles, sWire, sEnd, sFired := runShardScript(t, seed, shards)
			if sEnd != end || sFired != fired {
				t.Errorf("seed %d shards %d: end=%d fired=%d, serial end=%d fired=%d",
					seed, shards, sEnd, sFired, end, fired)
			}
			for tile := range tiles {
				if len(sTiles[tile]) != len(tiles[tile]) {
					t.Fatalf("seed %d shards %d tile %d: %d events vs serial %d",
						seed, shards, tile, len(sTiles[tile]), len(tiles[tile]))
				}
				for i := range tiles[tile] {
					if sTiles[tile][i] != tiles[tile][i] {
						t.Fatalf("seed %d shards %d tile %d event %d: %q vs serial %q",
							seed, shards, tile, i, sTiles[tile][i], tiles[tile][i])
					}
				}
			}
			if len(sWire) != len(wire) {
				t.Fatalf("seed %d shards %d: wire %d entries vs serial %d",
					seed, shards, len(sWire), len(wire))
			}
			for i := range wire {
				if sWire[i] != wire[i] {
					t.Fatalf("seed %d shards %d wire %d: %q vs serial %q",
						seed, shards, i, sWire[i], wire[i])
				}
			}
		}
	}
}

// TestShardedHaltResume suspends serialized rounds after every event via the
// Halt hook and verifies the resumed execution still matches an unhalted run.
func TestShardedHaltResume(t *testing.T) {
	run := func(haltEvery uint64) (Time, uint64) {
		se := NewSharded(3)
		defer se.Stop()
		var count uint64
		var chain func(i int) Handler
		chain = func(i int) Handler {
			return func() {
				count++
				if i < 6 {
					// Fan same-cycle global events to build multi-event
					// serialized rounds worth suspending.
					se.View(i%3).AfterGlobal(3, chain(i+1))
					se.View((i+1)%3).AfterGlobal(3, chain(i+1))
				} else if i < 40 {
					se.View(i%3).AfterGlobal(3, chain(i+1))
				}
			}
		}
		if haltEvery > 0 {
			n := uint64(0)
			se.Halt = func() bool { n++; return n%haltEvery == 0 }
		}
		se.View(0).AfterGlobal(1, chain(0))
		steps := 0
		for se.RoundStep() > 0 {
			steps++
			if steps > 1_000_000 {
				t.Fatal("runaway")
			}
		}
		return se.Now(), count
	}
	end, count := run(0)
	for _, every := range []uint64{1, 2, 3} {
		e, c := run(every)
		if e != end || c != count {
			t.Errorf("halt every %d: end=%d count=%d, want end=%d count=%d", every, e, c, end, count)
		}
	}
}

// TestShardedStats sanity-checks the execution counters: a run with both
// local and global activity must count serial and parallel rounds, barrier
// stalls, and staged actions.
func TestShardedStats(t *testing.T) {
	_, _, _, fired := runShardScript(t, 3, 4)
	if fired == 0 {
		t.Fatal("script fired nothing")
	}
	se := NewSharded(2)
	defer se.Stop()
	se.View(0).After(1, func() {})
	se.View(1).After(1, func() {})
	se.View(0).AfterGlobal(2, func() {})
	for se.RoundStep() > 0 {
	}
	st := se.Stats()
	if st.Shards != 2 || st.ParallelRounds != 1 || st.SerialRounds != 1 || st.Rounds != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.BarrierStalls == 0 {
		t.Errorf("expected barrier stalls, got %+v", st)
	}
}
