// Package event implements the deterministic discrete-event simulation (DES)
// engine that drives the whole machine model: the global cycle clock and an
// ordered queue of pending events.
//
// The engine is strictly deterministic: events scheduled for the same cycle
// fire in the order they were scheduled (FIFO tie-breaking by a monotonically
// increasing sequence number). All components of the simulated multicore —
// cores, caches, the torus network, directory modules, and the commit
// protocol engines — share a single Engine, so a given configuration and
// random seed always produces bit-identical results.
//
// Internally the queue is a calendar (bucket) queue tuned for the event
// horizon the machine model actually generates: almost every event lands
// within a few hundred cycles of now (link hops at +7, directory lookups at
// +2, memory at +300, commit retries under ~2k), so the near future is a
// ring of per-cycle buckets where push and pop are O(1), while the rare
// long-horizon events (the +200k commit watchdogs) wait in a small overflow
// heap and migrate into the ring as the window slides over them. The old
// container/heap implementation is preserved as HeapEngine (see heap.go) and
// the two are cross-checked for identical firing order by the equivalence
// tests in this package.
package event

import (
	"fmt"
)

// Time is the simulation clock, measured in processor cycles.
type Time uint64

// Handler is a callback invoked when an event fires. It runs at the event's
// scheduled time; Engine.Now() inside the handler returns that time.
type Handler func()

// Sched is the scheduling face a machine component holds: the clock plus the
// At/After family. The serial *Engine implements it directly; under sharded
// execution (see sharded.go) each component instead holds a *ShardView (whose
// events stay on the owning tile's shard) or the *GlobalView (whose events
// force a serialized round), so one component codebase runs under both
// execution models.
type Sched interface {
	// Now returns the current simulation time.
	Now() Time
	// At schedules fn at absolute time t.
	At(t Time, fn Handler) Ticket
	// AtArg schedules fn(arg) at absolute time t without a closure.
	AtArg(t Time, fn func(any), arg any) Ticket
	// After schedules fn at Now()+d.
	After(d Time, fn Handler) Ticket
	// AfterArg is AtArg relative to now.
	AfterArg(d Time, fn func(any), arg any) Ticket
	// AfterGlobal schedules fn at Now()+d as a *global* event: one whose
	// handler may touch cross-tile state (protocol engines, the workload
	// generator, shared statistics). On the serial engine it is After; on a
	// shard view it marks the event so the round that fires it executes
	// serialized on the coordinator.
	AfterGlobal(d Time, fn Handler) Ticket
}

// window is the calendar span: events within [now, now+window) live in the
// per-cycle ring, later ones in the overflow heap. It must be a power of two
// and comfortably exceed the common event horizon (memory at +300, capped
// commit backoff under ~2k) so the ring absorbs virtually all traffic.
const (
	windowBits = 12
	window     = Time(1) << windowBits
	windowMask = window - 1
)

type item struct {
	at  Time
	seq uint64
	// Exactly one of fn/afn is set. afn(arg) avoids a closure allocation on
	// the hottest scheduling path (network message delivery).
	fn   Handler
	afn  func(any)
	arg  any
	dead bool
	// global marks an event whose handler may touch cross-tile state. Only
	// the sharded engine consults it (a due set containing any global event
	// executes as a serialized round); the serial engine ignores it.
	global bool
}

// bucket is one ring slot: a FIFO of same-cycle items. head indexes the next
// unconsumed item so popping is O(1) without memmove; the backing slice is
// reused across window wraps.
type bucket struct {
	items []*item
	head  int
}

// maxIdleBucketCap bounds the backing capacity a drained bucket keeps across
// window wraps. Without a cap every slot retains the largest same-cycle burst
// it ever saw (a 1024-core commit broadcast can park a KB-scale slice in each
// of 4096 slots for the rest of the run); with it, a drained bucket larger
// than the common-case burst is released back to the allocator.
const maxIdleBucketCap = 128

// reset empties a drained bucket, dropping oversized backing storage.
func (b *bucket) reset() {
	if cap(b.items) > maxIdleBucketCap {
		b.items = nil
	} else {
		b.items = b.items[:0]
	}
	b.head = 0
}

func (b *bucket) push(it *item) {
	if b.head > 0 && b.head == len(b.items) {
		b.reset()
	}
	b.items = append(b.items, it)
}

// Ticket identifies a scheduled event so it can be cancelled before firing.
type Ticket struct {
	it  *item
	seq uint64
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a harmless no-op: items are pooled, so the
// ticket's sequence number guards against a stale cancel hitting a recycled
// slot.
func (t Ticket) Cancel() {
	if t.it != nil && t.it.seq == t.seq {
		t.it.dead = true
	}
}

// Engine is a deterministic discrete-event scheduler.
// The zero value is ready to use.
type Engine struct {
	now   Time
	seq   uint64
	fired uint64

	// Calendar ring: buckets[t&windowMask] holds the items scheduled for
	// cycle t, for t in [cursor, cursor+window). cursor is the scan position:
	// every live item in the ring is at cursor or later, and at rest (outside
	// Step) cursor never exceeds the earliest live ring item.
	buckets []bucket
	cursor  Time
	near    int // items in the ring, cancelled included

	over overflow // long-horizon items, cancelled included

	pending int // near + len(over)
	free    []*item
}

// New returns a fresh engine with the clock at cycle 0.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the total number of events that have fired; useful for
// progress reporting and for asserting determinism in tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events waiting in the queue (including
// cancelled ones that have not yet been discarded).
func (e *Engine) Pending() int { return e.pending }

func (e *Engine) alloc() *item {
	if n := len(e.free); n > 0 {
		it := e.free[n-1]
		e.free = e.free[:n-1]
		return it
	}
	return &item{}
}

func (e *Engine) release(it *item) {
	it.fn = nil
	it.afn = nil
	it.arg = nil
	it.dead = false
	it.global = false
	// Invalidate the sequence number so a stale Cancel (a ticket for an event
	// that already fired) cannot match the pooled slot and assassinate the
	// unrelated event that next reuses it.
	it.seq = ^uint64(0)
	e.free = append(e.free, it)
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// that is always a simulator bug, not a recoverable condition.
func (e *Engine) At(t Time, fn Handler) Ticket {
	it := e.schedule(t)
	it.fn = fn
	return Ticket{it, it.seq}
}

// AtArg schedules fn(arg) at absolute time t. It is At without the closure
// allocation: fn is typically a long-lived method value and arg the event's
// payload, so the only per-event allocation is the pooled queue slot.
func (e *Engine) AtArg(t Time, fn func(any), arg any) Ticket {
	it := e.schedule(t)
	it.afn = fn
	it.arg = arg
	return Ticket{it, it.seq}
}

func (e *Engine) schedule(t Time) *item {
	if t < e.now {
		panic(fmt.Sprintf("event: schedule at %d before now %d", t, e.now))
	}
	if e.buckets == nil {
		e.buckets = make([]bucket, window)
	}
	// Between a RunUntil that idles the clock forward and the next Step, now
	// may have passed cursor; the ring below now is empty, so snap forward.
	if e.cursor < e.now {
		e.cursor = e.now
	}
	it := e.alloc()
	it.at = t
	it.seq = e.seq
	e.seq++
	if t < e.cursor+window {
		e.buckets[t&windowMask].push(it)
		e.near++
	} else {
		e.over.push(it)
	}
	e.pending++
	return it
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn Handler) Ticket { return e.At(e.now+d, fn) }

// AfterArg is AtArg relative to now.
func (e *Engine) AfterArg(d Time, fn func(any), arg any) Ticket {
	return e.AtArg(e.now+d, fn, arg)
}

// AfterGlobal is After: on the serial engine every event already executes
// under the single global clock, so the global marking is a no-op. It exists
// so components can express "this handler touches cross-tile state" through
// the Sched interface and have the sharded engine serialize such rounds.
func (e *Engine) AfterGlobal(d Time, fn Handler) Ticket { return e.After(d, fn) }

// put inserts an item with an externally assigned ordering key (the sharded
// engine's (parent fire index, child index) composite packed into seq) in
// key-sorted bucket position. The serial scheduling path keeps using
// schedule()'s append-only fast path; put pays an insertion scan because the
// sharded engine pushes barrier-handoff items whose keys may precede
// same-cycle items the owning shard scheduled locally during the round.
func (e *Engine) put(t Time, key uint64, global bool, fn Handler, afn func(any), arg any) Ticket {
	if t < e.now {
		panic(fmt.Sprintf("event: schedule at %d before now %d", t, e.now))
	}
	if e.buckets == nil {
		e.buckets = make([]bucket, window)
	}
	if e.cursor < e.now {
		e.cursor = e.now
	}
	it := e.alloc()
	it.at = t
	it.seq = key
	it.global = global
	it.fn, it.afn, it.arg = fn, afn, arg
	if t < e.cursor+window {
		b := &e.buckets[t&windowMask]
		if b.head > 0 && b.head == len(b.items) {
			b.reset()
		}
		pos := len(b.items)
		for pos > b.head && b.items[pos-1].seq > key {
			pos--
		}
		b.items = append(b.items, nil)
		copy(b.items[pos+1:], b.items[pos:])
		b.items[pos] = it
		e.near++
	} else {
		e.over.push(it)
	}
	e.pending++
	return Ticket{it, key}
}

// popDue removes and returns every live item scheduled at exactly time t, in
// seq/key order, appending to buf; cancelled items due at t are discarded.
// Items are returned unfired and unreleased: the sharded engine fires them
// (skipping any cancelled mid-round) and releases them back to this calendar
// afterwards.
//
// Unlike Step, popDue never moves the scan cursor past t: after the round the
// coordinator will schedule barrier-replayed deliveries anywhere in
// (t, next-round time], and a cursor parked at a future bucket would strand
// them in slots the scan had already passed. With the cursor pinned to the
// lockstep clock, every live item is always at cursor or later and the ring
// window is [t, t+window) for both put and migrate.
func (e *Engine) popDue(t Time, buf []*item) []*item {
	e.now = t
	if e.cursor < t {
		e.cursor = t
	}
	if e.pending == 0 || e.buckets == nil {
		return buf
	}
	e.migrate()
	b := &e.buckets[t&windowMask]
	for b.head < len(b.items) {
		it := b.items[b.head]
		if it.at != t {
			if !it.dead {
				break // future wrap of this slot; unreachable while live items pin the cursor
			}
			// A cancelled item from an earlier pass of this slot that the
			// cursor jumped over; discard it in passing.
			b.items[b.head] = nil
			b.head++
			e.near--
			e.pending--
			e.release(it)
			continue
		}
		b.items[b.head] = nil
		b.head++
		e.near--
		e.pending--
		if it.dead {
			e.release(it)
			continue
		}
		buf = append(buf, it)
	}
	if b.head == len(b.items) {
		b.reset()
	}
	return buf
}

// migrate moves overflow items whose time has entered the ring window into
// their buckets. Ring buckets are FIFO by sequence number; an item that
// waited in the overflow heap may carry an older sequence number than
// same-cycle items scheduled directly into the ring, so it is merged into
// sequence position rather than appended.
func (e *Engine) migrate() {
	for !e.over.empty() && e.over.min().at < e.cursor+window {
		it := e.over.pop()
		if it.dead {
			e.pending--
			e.release(it)
			continue
		}
		b := &e.buckets[it.at&windowMask]
		pos := len(b.items)
		for pos > b.head && b.items[pos-1].seq > it.seq {
			pos--
		}
		b.items = append(b.items, nil)
		copy(b.items[pos+1:], b.items[pos:])
		b.items[pos] = it
		e.near++
	}
}

// next advances cursor to the earliest live item and returns it, leaving it
// queued. It discards cancelled items along the way. Returns nil when the
// queue holds no live events.
func (e *Engine) next() *item {
	if e.cursor < e.now {
		e.cursor = e.now
	}
	for e.pending > 0 {
		e.migrate()
		if e.near == 0 {
			if e.over.empty() {
				return nil // migrate drained the last (cancelled) items
			}
			// Everything lives beyond the window: slide it to the overflow
			// minimum (the migrate at the top of the loop pulls it in).
			e.cursor = e.over.min().at
			continue
		}
		b := &e.buckets[e.cursor&windowMask]
		for b.head < len(b.items) {
			it := b.items[b.head]
			if !it.dead {
				return it
			}
			b.items[b.head] = nil
			b.head++
			e.near--
			e.pending--
			e.release(it)
		}
		b.reset()
		e.cursor++
	}
	return nil
}

// RingResidency reports the total backing capacity (in item slots) retained
// across the calendar ring's buckets — the memory the ring is holding onto
// between bursts. Exposed as a metrics gauge; the maxIdleBucketCap shrink
// keeps it bounded by window × maxIdleBucketCap.
func (e *Engine) RingResidency() uint64 {
	var total uint64
	for i := range e.buckets {
		total += uint64(cap(e.buckets[i].items))
	}
	return total
}

// Step fires the single earliest pending event and advances the clock to its
// time. It reports whether an event fired (false when the queue is empty).
func (e *Engine) Step() bool {
	it := e.next()
	if it == nil {
		return false
	}
	b := &e.buckets[e.cursor&windowMask]
	b.items[b.head] = nil
	b.head++
	e.near--
	e.pending--
	e.now = it.at
	e.fired++
	fn, afn, arg := it.fn, it.afn, it.arg
	e.release(it)
	if afn != nil {
		afn(arg)
	} else {
		fn()
	}
	return true
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// peek returns the time of the earliest live event without advancing the
// scan cursor (so a RunUntil that stops early leaves the calendar invariants
// untouched for later scheduling). It discards cancelled items it encounters.
func (e *Engine) peek() (Time, bool) {
	if e.cursor < e.now {
		e.cursor = e.now
	}
	for !e.over.empty() && e.over.min().dead {
		e.pending--
		e.release(e.over.pop())
	}
	var best Time
	found := false
	if !e.over.empty() {
		best = e.over.min().at
		found = true
	}
	for c := e.cursor; e.near > 0 && c < e.cursor+window; c++ {
		b := &e.buckets[c&windowMask]
		for b.head < len(b.items) && b.items[b.head].dead {
			it := b.items[b.head]
			b.items[b.head] = nil
			b.head++
			e.near--
			e.pending--
			e.release(it)
		}
		if b.head < len(b.items) {
			if at := b.items[b.head].at; !found || at < best {
				best = at
				found = true
			}
			break
		}
	}
	return best, found
}

// NextAt returns the time of the earliest live pending event without firing
// it (false when the queue is empty). The model-checking explorer uses it to
// decide whether to keep stepping the engine or to open a scheduling choice
// point; like peek it discards cancelled items it scans past, which never
// changes firing order.
func (e *Engine) NextAt() (Time, bool) { return e.peek() }

// RunUntil fires events with time ≤ limit, leaving later events queued, and
// advances the clock to limit. It returns the number of events fired.
func (e *Engine) RunUntil(limit Time) uint64 {
	start := e.fired
	for {
		t, ok := e.peek()
		if !ok || t > limit {
			break
		}
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
	return e.fired - start
}

// RunFor is RunUntil(Now()+d).
func (e *Engine) RunFor(d Time) uint64 { return e.RunUntil(e.now + d) }

// overflow is a minimal binary min-heap ordered by (at, seq), holding the
// rare events scheduled beyond the calendar window.
type overflow struct{ h []*item }

func (o *overflow) empty() bool { return len(o.h) == 0 }
func (o *overflow) min() *item  { return o.h[0] }

func (o *overflow) less(a, b *item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (o *overflow) push(it *item) {
	o.h = append(o.h, it)
	i := len(o.h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !o.less(o.h[i], o.h[p]) {
			break
		}
		o.h[i], o.h[p] = o.h[p], o.h[i]
		i = p
	}
}

func (o *overflow) pop() *item {
	top := o.h[0]
	n := len(o.h) - 1
	o.h[0] = o.h[n]
	o.h[n] = nil
	o.h = o.h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && o.less(o.h[l], o.h[s]) {
			s = l
		}
		if r < n && o.less(o.h[r], o.h[s]) {
			s = r
		}
		if s == i {
			break
		}
		o.h[i], o.h[s] = o.h[s], o.h[i]
		i = s
	}
	return top
}
