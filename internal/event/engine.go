// Package event implements the deterministic discrete-event simulation (DES)
// engine that drives the whole machine model: the global cycle clock and an
// ordered queue of pending events.
//
// The engine is strictly deterministic: events scheduled for the same cycle
// fire in the order they were scheduled (FIFO tie-breaking by a monotonically
// increasing sequence number). All components of the simulated multicore —
// cores, caches, the torus network, directory modules, and the commit
// protocol engines — share a single Engine, so a given configuration and
// random seed always produces bit-identical results.
package event

import (
	"container/heap"
	"fmt"
)

// Time is the simulation clock, measured in processor cycles.
type Time uint64

// Handler is a callback invoked when an event fires. It runs at the event's
// scheduled time; Engine.Now() inside the handler returns that time.
type Handler func()

type item struct {
	at   Time
	seq  uint64
	fn   Handler
	idx  int
	dead bool
}

type queue []*item

func (q queue) Len() int { return len(q) }

func (q queue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q queue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *queue) Push(x any) {
	it := x.(*item)
	it.idx = len(*q)
	*q = append(*q, it)
}

func (q *queue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Ticket identifies a scheduled event so it can be cancelled before firing.
type Ticket struct{ it *item }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a harmless no-op.
func (t Ticket) Cancel() {
	if t.it != nil {
		t.it.dead = true
	}
}

// Engine is a deterministic discrete-event scheduler.
// The zero value is ready to use.
type Engine struct {
	now   Time
	seq   uint64
	q     queue
	fired uint64
}

// New returns a fresh engine with the clock at cycle 0.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the total number of events that have fired; useful for
// progress reporting and for asserting determinism in tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events waiting in the queue (including
// cancelled ones that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.q) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// that is always a simulator bug, not a recoverable condition.
func (e *Engine) At(t Time, fn Handler) Ticket {
	if t < e.now {
		panic(fmt.Sprintf("event: schedule at %d before now %d", t, e.now))
	}
	it := &item{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.q, it)
	return Ticket{it}
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn Handler) Ticket { return e.At(e.now+d, fn) }

// Step fires the single earliest pending event and advances the clock to its
// time. It reports whether an event fired (false when the queue is empty).
func (e *Engine) Step() bool {
	for len(e.q) > 0 {
		it := heap.Pop(&e.q).(*item)
		if it.dead {
			continue
		}
		e.now = it.at
		e.fired++
		it.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time ≤ limit, leaving later events queued, and
// advances the clock to limit. It returns the number of events fired.
func (e *Engine) RunUntil(limit Time) uint64 {
	start := e.fired
	for len(e.q) > 0 {
		// Peek the earliest live event.
		it := e.q[0]
		if it.dead {
			heap.Pop(&e.q)
			continue
		}
		if it.at > limit {
			break
		}
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
	return e.fired - start
}

// RunFor is RunUntil(Now()+d).
func (e *Engine) RunFor(d Time) uint64 { return e.RunUntil(e.now + d) }
