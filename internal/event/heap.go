package event

import (
	"container/heap"
	"fmt"
)

// HeapEngine is the original container/heap-based scheduler, preserved as
// the reference implementation: the equivalence tests in this package drive
// it and the calendar-queue Engine through identical random schedules and
// assert bit-identical firing order, and the benchmark suite (cmd/sbbench)
// reports both so the event-queue optimization stays measured against its
// baseline. Production code uses Engine.
type HeapEngine struct {
	now   Time
	seq   uint64
	q     heapQueue
	fired uint64
}

type heapItem struct {
	at   Time
	seq  uint64
	fn   Handler
	idx  int
	dead bool
}

type heapQueue []*heapItem

func (q heapQueue) Len() int { return len(q) }

func (q heapQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q heapQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *heapQueue) Push(x any) {
	it := x.(*heapItem)
	it.idx = len(*q)
	*q = append(*q, it)
}

func (q *heapQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// HeapTicket cancels a HeapEngine event.
type HeapTicket struct{ it *heapItem }

// Cancel prevents the event from firing; no-op if already fired/cancelled.
func (t HeapTicket) Cancel() {
	if t.it != nil {
		t.it.dead = true
	}
}

// NewHeap returns a fresh reference engine with the clock at cycle 0.
func NewHeap() *HeapEngine { return &HeapEngine{} }

// Now returns the current simulation time.
func (e *HeapEngine) Now() Time { return e.now }

// Fired returns the total number of events that have fired.
func (e *HeapEngine) Fired() uint64 { return e.fired }

// Pending returns the number of queued events (cancelled included).
func (e *HeapEngine) Pending() int { return len(e.q) }

// At schedules fn to run at absolute time t.
func (e *HeapEngine) At(t Time, fn Handler) HeapTicket {
	if t < e.now {
		panic(fmt.Sprintf("event: schedule at %d before now %d", t, e.now))
	}
	it := &heapItem{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.q, it)
	return HeapTicket{it}
}

// After schedules fn to run d cycles from now.
func (e *HeapEngine) After(d Time, fn Handler) HeapTicket { return e.At(e.now+d, fn) }

// Step fires the single earliest pending event and advances the clock.
func (e *HeapEngine) Step() bool {
	for len(e.q) > 0 {
		it := heap.Pop(&e.q).(*heapItem)
		if it.dead {
			continue
		}
		e.now = it.at
		e.fired++
		it.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (e *HeapEngine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time ≤ limit and advances the clock to limit.
func (e *HeapEngine) RunUntil(limit Time) uint64 {
	start := e.fired
	for len(e.q) > 0 {
		it := e.q[0]
		if it.dead {
			heap.Pop(&e.q)
			continue
		}
		if it.at > limit {
			break
		}
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
	return e.fired - start
}

// RunFor is RunUntil(Now()+d).
func (e *HeapEngine) RunFor(d Time) uint64 { return e.RunUntil(e.now + d) }
