package farm

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// SSE event types on GET /api/v1/sweeps/{id}/events. Every event's data is
// one line of JSON; "result" and "snapshot" carry an id: line (the hub seq)
// so Last-Event-ID resume replays nothing the client already applied.
const (
	sseResult   = "result"   // data: PointResult (full result bytes)
	sseFarm     = "farm"     // data: Event (non-result lifecycle event)
	sseProgress = "progress" // data: SweepProgress (after each batch; no id)
	sseSnapshot = "snapshot" // data: SweepStatus with the full result stream
	sseEnd      = "end"      // data: SweepProgress; the sweep is terminal
)

// handleSweepEvents streams one sweep's live telemetry as Server-Sent
// Events. Results stream as full PointResults; other lifecycle events stream
// as "farm" events; a "progress" aggregation follows each batch. A client
// that reconnects with Last-Event-ID behind the hub's retained ring gets a
// "snapshot" (full SweepStatus) instead of a pretend-contiguous replay —
// result application is idempotent by PointID, so replay and snapshot both
// converge. The stream ends with an "end" event once every point is
// terminal.
func (s *Server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	if !s.sweepExists(id) {
		http.Error(w, "unknown sweep "+id, http.StatusNotFound)
		return
	}
	var after uint64
	lastID := r.Header.Get("Last-Event-ID")
	if lastID == "" {
		lastID = r.URL.Query().Get("after") // curl convenience
	}
	if lastID != "" {
		after, _ = strconv.ParseUint(lastID, 10, 64)
	}
	s.count("farm_sse_connects")
	if s.log != nil {
		s.log.Info("sse_connect", "sweep", id, "after", after)
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no") // defeat buffering proxies
	w.WriteHeader(http.StatusOK)
	out := &sseWriter{w: w, fl: fl}

	// Subscribe before the first drain so no emit between drain and wait is
	// missed; the wake channel is level-triggered (capacity 1).
	wake, unsub := s.hub.subscribe()
	defer unsub()
	ping := time.NewTicker(s.opts.SSEPing)
	defer ping.Stop()
	filter := func(e Event) bool { return e.Sweep == id || e.Sweep == "" }

	// Immediate progress so a fresh connection has proof of life before the
	// first event (and a poll-fallback heuristic can tell "SSE works, sweep
	// is idle" from "transport ate the stream").
	if out.send(0, sseProgress, s.sweepProgress(id)) != nil {
		return
	}

	for {
		for {
			evs, gapped := s.hub.since(after, filter)
			if gapped {
				st, seq, ok := s.sweepSnapshot(id)
				if !ok {
					return
				}
				if out.send(seq, sseSnapshot, st) != nil {
					return
				}
				after = seq
				continue
			}
			if len(evs) == 0 {
				break
			}
			for _, e := range evs {
				after = e.Seq
				s.count("farm_sse_events")
				if e.Kind == "result" && e.Sweep == id {
					if pr, ok := s.sweepResult(id, e.PointID); ok {
						if out.send(e.Seq, sseResult, pr) != nil {
							return
						}
						continue
					}
				}
				if out.send(e.Seq, sseFarm, e) != nil {
					return
				}
			}
			if out.send(0, sseProgress, s.sweepProgress(id)) != nil {
				return
			}
		}
		// Events are emitted under s.mu before the sweep's counts change
		// hands, so once the drain runs dry a terminal observation means the
		// client has everything.
		if p := s.sweepProgress(id); p != nil && p.Terminal {
			out.send(0, sseEnd, p)
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-wake:
		case <-ping.C:
			if out.comment("ping") != nil {
				return
			}
		}
	}
}

func (s *Server) sweepExists(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.sweeps[id]
	return ok
}

// sweepProgress computes the live progress for one sweep (nil when unknown),
// running the expiry sweep first so a stalled farm still advances.
func (s *Server) sweepProgress(id string) *SweepProgress {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	if !ok {
		return nil
	}
	s.expireLocked(sw)
	return s.progressLocked(sw)
}

// sweepSnapshot builds the full-stream SweepStatus plus the hub seq it is
// current as of — the resume point an SSE client adopts after a gap.
func (s *Server) sweepSnapshot(id string) (*SweepStatus, uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	if !ok {
		return nil, 0, false
	}
	s.expireLocked(sw)
	return s.statusLocked(sw, 0), s.hub.last(), true
}

// sweepResult fetches one point's terminal record from the result stream.
func (s *Server) sweepResult(id string, pointID int) (PointResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	if !ok {
		return PointResult{}, false
	}
	if pr := s.findResult(sw, pointID); pr != nil {
		return *pr, true
	}
	return PointResult{}, false
}

// sseWriter frames SSE events. json.Marshal output never contains a raw
// newline, so every event is a single data: line.
type sseWriter struct {
	w  http.ResponseWriter
	fl http.Flusher
}

func (o *sseWriter) send(id uint64, typ string, data any) error {
	payload, err := json.Marshal(data)
	if err != nil {
		return err
	}
	if id > 0 {
		if _, err := fmt.Fprintf(o.w, "id: %d\n", id); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(o.w, "event: %s\ndata: %s\n\n", typ, payload); err != nil {
		return err
	}
	o.fl.Flush()
	return nil
}

func (o *sseWriter) comment(c string) error {
	_, err := fmt.Fprintf(o.w, ": %s\n\n", c)
	o.fl.Flush()
	return err
}

// sseEvent is one parsed client-side event.
type sseEvent struct {
	ID   string
	Type string
	Data []byte
}

// sseReader parses a text/event-stream body. onActivity fires per line read
// (including comments), which is what feeds the client's idle watchdog —
// keepalive pings count as life even when no events flow.
type sseReader struct {
	br         *bufio.Reader
	onActivity func()
}

func newSSEReader(r *bufio.Reader, onActivity func()) *sseReader {
	return &sseReader{br: r, onActivity: onActivity}
}

// next reads one event, skipping comments and blank keepalives. Any read
// error (including a mid-event cut) surfaces as-is.
func (r *sseReader) next() (*sseEvent, error) {
	ev := &sseEvent{}
	var data [][]byte
	seen := false
	for {
		line, err := r.br.ReadString('\n')
		if err != nil {
			return nil, err
		}
		if r.onActivity != nil {
			r.onActivity()
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			if !seen {
				continue
			}
			ev.Data = bytes.Join(data, []byte("\n"))
			return ev, nil
		}
		if strings.HasPrefix(line, ":") {
			continue // comment / keepalive
		}
		field, value, _ := strings.Cut(line, ":")
		value = strings.TrimPrefix(value, " ")
		switch field {
		case "event":
			ev.Type = value
			seen = true
		case "data":
			data = append(data, []byte(value))
			seen = true
		case "id":
			ev.ID = value
			seen = true
		}
	}
}
