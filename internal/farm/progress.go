package farm

import (
	"sort"
	"time"
)

// newDist buckets values (already in their final unit) against bounds and
// fills the exact summary fields.
func newDist(values []float64, bounds []float64) Dist {
	d := Dist{
		Bounds: append([]float64(nil), bounds...),
		Counts: make([]uint64, len(bounds)+1),
	}
	for _, v := range values {
		i := sort.SearchFloat64s(bounds, v)
		if i < len(bounds) && v == bounds[i] {
			i++ // exclusive upper edges, like metrics.Histogram
		}
		d.Counts[i]++
		d.Count++
		d.Sum += v
		if d.Count == 1 || v < d.Min {
			d.Min = v
		}
		if v > d.Max {
			d.Max = v
		}
	}
	return d
}

// attemptBounds buckets lease grants per point for SweepProgress.Attempts.
var attemptBounds = []float64{1, 2, 3, 5, 8}

// progressLocked computes the live SweepProgress for one sweep. Caller holds
// s.mu and has already run expireLocked.
func (s *Server) progressLocked(sw *sweep) *SweepProgress {
	now := s.opts.Clock()
	p := &SweepProgress{
		SweepID: sw.id,
		Corr:    sw.corr,
		Total:   len(sw.spec.Points),
	}
	p.Queued, p.Leased, p.Done, p.Failed, p.Poisoned = sw.table.counts()
	p.Terminal = p.Done+p.Failed+p.Poisoned >= p.Total

	var attempts, ages []float64
	workers := map[string]bool{}
	for _, e := range sw.table.entries {
		attempts = append(attempts, float64(e.attempt))
		p.Requeues += e.requeues
	}
	for _, la := range sw.table.leases {
		ages = append(ages, float64(now.Sub(la.l.granted).Microseconds())/1000)
		workers[la.l.worker] = true
	}
	p.Attempts = newDist(attempts, attemptBounds)
	p.LeaseAgeMS = newDist(ages, leaseAgeBounds)
	p.Workers = len(workers)

	for _, pr := range sw.results {
		if pr.Restored {
			p.Restored++
		}
	}
	elapsed := now.Sub(sw.created)
	p.ElapsedMS = elapsed.Milliseconds()
	fresh := p.Done - p.Restored
	p.ETAMS = -1
	if fresh > 0 && elapsed > 0 {
		p.PointsPerSec = float64(fresh) / elapsed.Seconds()
		remaining := p.Total - p.Done - p.Failed - p.Poisoned
		p.ETAMS = int64(float64(remaining) / p.PointsPerSec * 1000)
	}
	if p.Terminal {
		p.ETAMS = 0
	}
	return p
}

// farmStatusLocked builds the whole-server view for GET /api/v1/farm.
// Caller holds s.mu and has already expired every sweep.
func (s *Server) farmStatusLocked(eventTail int) *FarmStatus {
	now := s.opts.Clock()
	fs := &FarmStatus{
		Now:      now.UTC().Format(time.RFC3339Nano),
		Seq:      s.hub.last(),
		Draining: s.draining.Load(),
	}
	liveLeases := map[string]int{}
	for _, id := range s.order {
		sw := s.sweeps[id]
		fs.Sweeps = append(fs.Sweeps, *s.progressLocked(sw))
		for _, la := range sw.table.leases {
			liveLeases[la.l.worker]++
			fs.Leases = append(fs.Leases, LeaseStatus{
				Sweep: sw.id, Lease: la.l.id, Worker: la.l.worker,
				PointID: la.entry.id, Point: pointLabel(la.entry.point),
				Corr: sw.corr, Attempt: la.entry.attempt,
				AgeMS: now.Sub(la.l.granted).Milliseconds(),
				TTLMS: s.opts.LeaseTTL.Milliseconds(),
			})
		}
		for _, e := range sw.table.entries {
			if e.state == statePoisoned {
				fs.Poisoned = append(fs.Poisoned, PoisonStatus{
					Sweep: sw.id, PointID: e.id, Point: pointLabel(e.point),
					Corr: sw.corr, Error: e.lastErr,
				})
			}
		}
	}
	sort.Slice(fs.Leases, func(i, j int) bool {
		a, b := fs.Leases[i], fs.Leases[j]
		if a.Sweep != b.Sweep {
			return a.Sweep < b.Sweep
		}
		return a.PointID < b.PointID
	})

	ids := make([]string, 0, len(s.workers))
	for id := range s.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		wi := s.workers[id]
		fs.Workers = append(fs.Workers, WorkerStatus{
			ID:     id,
			IdleMS: now.Sub(wi.lastSeen).Milliseconds(),
			Leases: liveLeases[id],
			Done:   wi.done, Failed: wi.failed, Crashed: wi.crashed,
		})
	}
	if eventTail > 0 {
		fs.Events = s.hub.tail(eventTail, nil)
	}
	return fs
}

// workerInfo aggregates what the server has seen of one worker identity.
type workerInfo struct {
	lastSeen time.Time
	done     uint64
	failed   uint64
	crashed  uint64
}

// touchWorker records contact from a worker. Caller holds s.mu.
func (s *Server) touchWorker(id string) *workerInfo {
	if id == "" {
		return nil
	}
	wi := s.workers[id]
	if wi == nil {
		wi = &workerInfo{}
		s.workers[id] = wi
	}
	wi.lastSeen = s.opts.Clock()
	return wi
}
