package farm

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
)

// CorrHeader carries the correlation ID on every farm HTTP exchange. The
// submitting client mints one per sweep (NewCorrID), the server echoes it
// back on the submit response and threads it through leases, events, journal
// entries and crash bundles — `grep <id>` across a client log, the server's
// event log, the journal and a crash bundle reconstructs one point's life.
const CorrHeader = "X-Correlation-ID"

// NewCorrID mints a fresh correlation ID ("c-" + 12 random hex chars).
func NewCorrID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to a
		// constant rather than panic in a telemetry path.
		return "c-unrandom"
	}
	return fmt.Sprintf("c-%s", hex.EncodeToString(b[:]))
}
