package farm

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	scalablebulk "scalablebulk"
	"scalablebulk/internal/metrics"
)

// TestSSESweepConvergesUnderLossyRPC: the headline SSE contract — a client
// consuming a sweep over SSE through a lossy fault-injecting transport
// (drops, duplicates, delays) and a cursor-polling client on the same sweep
// both converge to byte-identical ResultFingerprints against the in-process
// reference, with zero divergent results.
func TestSSESweepConvergesUnderLossyRPC(t *testing.T) {
	spec := testSpec()
	want := inProcessFingerprints(t, spec)

	reg := metrics.NewRegistry()
	opts := quickOpts()
	opts.Metrics = reg
	opts.SSEPing = 100 * time.Millisecond
	base, _, stop := startServer(t, opts, filepath.Join(t.TempDir(), "farm.jsonl"), "")
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	wg := startWorker(wctx, fastClient(base), "w1", nil)
	defer wg.Wait()

	lossy := func(seed int64) *http.Client {
		prof, err := RPCFaultByName("lossy", seed)
		if err != nil {
			t.Fatal(err)
		}
		return &http.Client{Transport: NewFaultTransport(nil, *prof)}
	}
	sseClient := fastClient(base)
	sseClient.HTTP = lossy(7)
	sseClient.SSEIdle = 2 * time.Second
	pollClient := fastClient(base)
	pollClient.HTTP = lossy(11)
	pollClient.NoSSE = true

	type outcome struct {
		got map[Point]string
		out *scalablebulk.SweepOutcome
		err error
	}
	runOne := func(c *Client) outcome {
		got := map[Point]string{}
		var mu sync.Mutex
		out, err := c.RunSweep(ctx, spec, func(p Point, res *scalablebulk.Result, _ bool) {
			mu.Lock()
			got[p] = scalablebulk.FingerprintSHA(res)
			mu.Unlock()
		})
		return outcome{got, out, err}
	}
	results := make(chan outcome, 2)
	go func() { results <- runOne(sseClient) }()
	go func() { results <- runOne(pollClient) }()
	for i := 0; i < 2; i++ {
		oc := <-results
		if oc.err != nil {
			t.Fatal(oc.err)
		}
		if oc.out.Completed != len(spec.Points) || len(oc.out.Failures) > 0 || oc.out.Aborted {
			t.Fatalf("outcome: %+v", oc.out)
		}
		for p, fp := range want {
			if oc.got[p] != fp {
				t.Errorf("%s/%s/%d: fingerprint %s != in-process %s",
					p.App, p.Protocol, p.Cores, oc.got[p], fp)
			}
		}
	}
	wcancel()

	snap := reg.Snapshot()
	if snap.Counters["farm_sse_connects"] == 0 {
		t.Error("farm_sse_connects never incremented: the SSE path was not exercised")
	}
	if n := snap.Counters["farm_results_divergent"]; n != 0 {
		t.Errorf("farm_results_divergent = %d, want 0", n)
	}
}

// TestSSEResumeAfterStreamKill kills an SSE stream mid-sweep, lets the
// sweep finish while disconnected, and reconnects with Last-Event-ID into a
// deliberately tiny event ring — forcing the snapshot path — asserting every
// result lands exactly once and fingerprints match the in-process reference.
func TestSSEResumeAfterStreamKill(t *testing.T) {
	spec := testSpec()
	want := inProcessFingerprints(t, spec)

	opts := quickOpts()
	opts.EventHistory = 2 // force Last-Event-ID past the ring on reconnect
	opts.SSEPing = 100 * time.Millisecond
	base, _, stop := startServer(t, opts, filepath.Join(t.TempDir(), "farm.jsonl"), "")
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	c := fastClient(base)
	sub, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Connect before any worker runs so the first result arrives live.
	connect := func(after uint64) *http.Response {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			base+"/api/v1/sweeps/"+sub.SweepID+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		if after > 0 {
			req.Header.Set("Last-Event-ID", fmt.Sprintf("%d", after))
		}
		resp, err := (&http.Client{}).Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("SSE connect: %d", resp.StatusCode)
		}
		return resp
	}
	resp := connect(0)

	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	wg := startWorker(wctx, fastClient(base), "w1", nil)
	defer wg.Wait()

	run := &sweepRun{
		c:    c,
		out:  &scalablebulk.SweepOutcome{Points: sub.Points},
		seen: map[int]bool{},
	}
	got := map[Point]string{}
	run.onResult = func(p Point, res *scalablebulk.Result, _ bool) {
		if _, dup := got[p]; dup {
			t.Errorf("point %s/%s/%d applied twice", p.App, p.Protocol, p.Cores)
		}
		got[p] = scalablebulk.FingerprintSHA(res)
	}

	// Read until the first result, then kill the stream mid-sweep.
	var lastID uint64
	rd := newSSEReader(bufio.NewReader(resp.Body), nil)
	for {
		ev, err := rd.next()
		if err != nil {
			t.Fatalf("first stream died before a result: %v", err)
		}
		if ev.ID != "" {
			fmt.Sscanf(ev.ID, "%d", &lastID)
		}
		if ev.Type == sseResult {
			var pr PointResult
			if err := json.Unmarshal(ev.Data, &pr); err != nil {
				t.Fatal(err)
			}
			if err := run.apply(pr); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	resp.Body.Close() // kill the stream

	// Let the sweep finish (and the tiny ring evict) while disconnected.
	deadline := time.Now().Add(time.Minute)
	for {
		st, err := c.Status(ctx, sub.SweepID, 0)
		if err != nil {
			t.Fatal(err)
		}
		if st.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep did not finish")
		}
		time.Sleep(20 * time.Millisecond)
	}
	wcancel()

	// Reconnect with Last-Event-ID: the ring has moved past it, so the
	// server must answer with a snapshot rather than a pretend-contiguous
	// replay; replayed results dedupe through the same apply sink.
	resp2 := connect(lastID)
	defer resp2.Body.Close()
	sawSnapshot := false
	rd2 := newSSEReader(bufio.NewReader(resp2.Body), nil)
	for {
		ev, err := rd2.next()
		if err != nil {
			t.Fatalf("resume stream: %v", err)
		}
		switch ev.Type {
		case sseSnapshot:
			sawSnapshot = true
			var st SweepStatus
			if err := json.Unmarshal(ev.Data, &st); err != nil {
				t.Fatal(err)
			}
			for _, pr := range st.Results {
				if err := run.apply(pr); err != nil {
					t.Fatal(err)
				}
			}
		case sseResult:
			var pr PointResult
			if err := json.Unmarshal(ev.Data, &pr); err != nil {
				t.Fatal(err)
			}
			if err := run.apply(pr); err != nil {
				t.Fatal(err)
			}
		case sseEnd:
			goto done
		}
	}
done:
	if !sawSnapshot {
		t.Error("resume past the ring did not produce a snapshot event")
	}
	if run.out.Completed != len(spec.Points) || len(run.out.Failures) > 0 {
		t.Fatalf("outcome after resume: %+v", run.out)
	}
	for p, fp := range want {
		if got[p] != fp {
			t.Errorf("%s/%s/%d: fingerprint %s != in-process %s",
				p.App, p.Protocol, p.Cores, got[p], fp)
		}
	}
}

// TestCorrelationIDThreadsThrough: one correlation ID, minted at the client,
// must be greppable in the client's structured log, the worker's structured
// log, the server's event log, the journal entry of a completed point, and
// the crash bundle of a point whose run panicked.
func TestCorrelationIDThreadsThrough(t *testing.T) {
	dir := t.TempDir()
	eventsPath := filepath.Join(dir, "events.jsonl")
	journalPath := filepath.Join(dir, "journal.jsonl")
	crashDir := filepath.Join(dir, "crash")

	ev, err := OpenEventLog(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	opts := quickOpts()
	opts.PoisonAfter = 2
	opts.Events = ev
	opts.CrashDir = crashDir
	base, _, stop := startServer(t, opts, journalPath, "")
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var clientLog, workerLog bytes.Buffer
	client := fastClient(base)
	client.Corr = NewCorrID()
	client.Log = slog.New(slog.NewTextHandler(&clientLog, nil))

	// Two workers whose run panics on the FFT point: each panic becomes a
	// crash bundle, and two distinct crashing workers poison the point.
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	var wgs []*sync.WaitGroup
	var logMu sync.Mutex
	for i := 0; i < 2; i++ {
		w := &Worker{
			Client: fastClient(base),
			ID:     fmt.Sprintf("w%d", i+1),
			Poll:   20 * time.Millisecond,
			OnPoint: func(_ string, p Point) {
				if p.App == "FFT" {
					panic("injected panic for correlation test")
				}
			},
			Log: slog.New(slog.NewTextHandler(lockedWriter{&logMu, &workerLog}, nil)),
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { defer wg.Done(); w.Run(wctx) }()
		wgs = append(wgs, &wg)
	}
	defer func() {
		for _, wg := range wgs {
			wg.Wait()
		}
	}()

	out, err := client.RunSweep(ctx, testSpec(), nil)
	wcancel()
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed != 2 || len(out.Failures) != 1 {
		t.Fatalf("outcome: %+v", out)
	}

	corr := client.Corr
	grep := func(name string, data []byte) {
		t.Helper()
		if !bytes.Contains(data, []byte(corr)) {
			t.Errorf("%s does not contain correlation ID %s:\n%s", name, corr, data)
		}
	}
	logMu.Lock()
	grep("client log", clientLog.Bytes())
	grep("worker log", workerLog.Bytes())
	logMu.Unlock()

	if err := ev.Close(); err != nil {
		t.Fatalf("event log close: %v", err)
	}
	events, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	grep("server event log", events)

	journal, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	grep("journal", journal)

	bundles, err := filepath.Glob(filepath.Join(crashDir, "crash-*.json"))
	if err != nil || len(bundles) == 0 {
		t.Fatalf("no crash bundles written (err=%v)", err)
	}
	found := false
	for _, b := range bundles {
		data, err := os.ReadFile(b)
		if err != nil {
			t.Fatal(err)
		}
		var cr scalablebulk.CrashReport
		if err := json.Unmarshal(data, &cr); err != nil {
			t.Fatalf("bundle %s: %v", b, err)
		}
		if cr.Corr == corr {
			found = true
		}
	}
	if !found {
		t.Errorf("no crash bundle carries correlation ID %s", corr)
	}
}

// lockedWriter serializes two workers' slog handlers onto one buffer.
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestEventLogDropAccounting: a write failure must not be silent — it counts
// in Dropped and the farm_eventlog_dropped metric, and surfaces as the first
// write error from Close.
func TestEventLogDropAccounting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	l, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	l.AttachMetrics(reg)

	l.Emit(Event{Kind: "ok"})
	if n := l.Dropped(); n != 0 {
		t.Fatalf("dropped after clean emit: %d", n)
	}

	// Sabotage the file descriptor underneath the log: subsequent writes
	// fail exactly like a full or yanked disk.
	l.f.Close()
	l.Emit(Event{Kind: "lost"})
	l.Emit(Event{Kind: "lost-too"})

	if n := l.Dropped(); n != 2 {
		t.Errorf("Dropped() = %d, want 2", n)
	}
	if n := reg.Snapshot().Counters["farm_eventlog_dropped"]; n != 2 {
		t.Errorf("farm_eventlog_dropped = %d, want 2", n)
	}
	if err := l.Close(); err == nil {
		t.Error("Close() = nil, want the latched write error")
	}
}

// TestEventSeqSurvivesRestart: a server restarted over the same event log
// resumes the monotonic sequence from the file's max seq and announces the
// restart with a "restarted" event carrying it.
func TestEventSeqSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	l1, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if l1.LastSeq() != 0 {
		t.Fatalf("fresh log LastSeq = %d", l1.LastSeq())
	}
	s1 := NewServer(Options{Events: l1})
	s1.emit(Event{Kind: "a"})
	if e := s1.emit(Event{Kind: "b"}); e.Seq != 2 {
		t.Fatalf("second event seq = %d, want 2", e.Seq)
	}
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 2 {
		t.Fatalf("reopened LastSeq = %d, want 2", l2.LastSeq())
	}
	s2 := NewServer(Options{Events: l2})
	if e := s2.emit(Event{Kind: "c"}); e.Seq != 4 {
		t.Errorf("post-restart event seq = %d, want 4 (3 taken by restarted)", e.Seq)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	var seqs []uint64
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		kinds = append(kinds, e.Kind)
		seqs = append(seqs, e.Seq)
	}
	wantKinds := []string{"a", "b", "restarted", "c"}
	if len(kinds) != len(wantKinds) {
		t.Fatalf("event kinds = %v, want %v", kinds, wantKinds)
	}
	for i := range wantKinds {
		if kinds[i] != wantKinds[i] {
			t.Errorf("event %d kind = %q, want %q", i, kinds[i], wantKinds[i])
		}
		if seqs[i] != uint64(i+1) {
			t.Errorf("event %d seq = %d, want %d", i, seqs[i], i+1)
		}
	}
	// The restarted event names the seq it resumed from.
	if !strings.Contains(string(data), "prev_max_seq=2") {
		t.Error("restarted event does not carry prev_max_seq=2")
	}
}

// TestProgressAndFarmStatus: the aggregation endpoints report a finished
// sweep as terminal with consistent counts, and the farm view lists the
// sweep, its worker, and a recent-event tail.
func TestProgressAndFarmStatus(t *testing.T) {
	spec := testSpec()
	base, _, stop := startServer(t, quickOpts(), filepath.Join(t.TempDir(), "farm.jsonl"), "")
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	wg := startWorker(wctx, fastClient(base), "w1", nil)
	defer wg.Wait()

	c := fastClient(base)
	c.Corr = NewCorrID()
	out, err := c.RunSweep(ctx, spec, nil)
	wcancel()
	if err != nil || out.Completed != len(spec.Points) {
		t.Fatalf("sweep: %+v, %v", out, err)
	}

	p, err := c.Progress(ctx, spec.ID())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Terminal || p.Done != len(spec.Points) || p.Total != len(spec.Points) {
		t.Errorf("progress: %+v", p)
	}
	if p.ETAMS != 0 {
		t.Errorf("terminal ETAMS = %d, want 0", p.ETAMS)
	}
	if p.Corr != c.Corr {
		t.Errorf("progress corr = %q, want %q", p.Corr, c.Corr)
	}
	if p.Attempts.Count != uint64(len(spec.Points)) {
		t.Errorf("attempts dist count = %d, want %d", p.Attempts.Count, len(spec.Points))
	}

	fs, err := c.FarmStatus(ctx, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Sweeps) != 1 || !fs.Sweeps[0].Terminal {
		t.Errorf("farm sweeps: %+v", fs.Sweeps)
	}
	if len(fs.Workers) == 0 {
		t.Error("farm status lists no workers")
	} else {
		var w1 *WorkerStatus
		for i := range fs.Workers {
			if fs.Workers[i].ID == "w1" {
				w1 = &fs.Workers[i]
			}
		}
		if w1 == nil || w1.Done != uint64(len(spec.Points)) {
			t.Errorf("worker w1 status: %+v", fs.Workers)
		}
	}
	if len(fs.Events) == 0 || fs.Seq == 0 {
		t.Errorf("farm status events/seq: %d events, seq %d", len(fs.Events), fs.Seq)
	}
}
