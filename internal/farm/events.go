package farm

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"

	"scalablebulk/internal/metrics"
)

// Event is one line of the farm's lease-lifecycle log: sweep submissions,
// lease grants/renewals/expiries, results, failures, poisonings, drains,
// restarts. The simulator's internal/trace schema is chunk-lifecycle-specific,
// so the farm keeps its own JSONL stream with the same spirit: append-only,
// machine-readable, greppable by kind — and now also fanned out live over
// SSE (see Server.handleSweepEvents).
type Event struct {
	// Seq is the hub's monotonic sequence number. It is per-process but
	// survives restarts over the same event log: a restarted server resumes
	// from the log's max seq (and says so with a "restarted" event), so an
	// interleaved grep/tail over the file still sorts totally by seq.
	Seq     uint64 `json:"seq"`
	Time    string `json:"time"`
	Kind    string `json:"kind"`
	Sweep   string `json:"sweep,omitempty"`
	Worker  string `json:"worker,omitempty"`
	Lease   string `json:"lease,omitempty"`
	PointID int    `json:"point_id,omitempty"`
	Point   string `json:"point,omitempty"` // "app/protocol/cores"
	// Corr is the correlation ID minted by the submitting client and
	// threaded through every lease, result, crash bundle and journal entry
	// the point produces — one grep reconstructs a point's whole life.
	Corr   string `json:"corr,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// EventLog appends JSONL events to a file. Safe for concurrent use; writes
// are line-atomic under the lock. Logging is best-effort — a write error
// never fails the operation that emitted the event — but not silent: drops
// are counted (Dropped, and the farm_eventlog_dropped metric when a registry
// is attached) and the first write error is reported by Close.
type EventLog struct {
	mu       sync.Mutex
	f        *os.File
	lastSeq  uint64
	dropped  uint64
	firstErr error
	reg      *metrics.Registry
}

// OpenEventLog opens (appending) or creates the JSONL event log at path. An
// existing log is scanned for its max event seq so a restarted server can
// resume the sequence (LastSeq) instead of reissuing numbers the file
// already holds.
func OpenEventLog(path string) (*EventLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	l := &EventLog{f: f}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		var e struct {
			Seq uint64 `json:"seq"`
		}
		if json.Unmarshal(sc.Bytes(), &e) == nil && e.Seq > l.lastSeq {
			l.lastSeq = e.Seq
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// LastSeq returns the max event seq found in the file at open time — zero
// for a fresh log.
func (l *EventLog) LastSeq() uint64 {
	if l == nil {
		return 0
	}
	return l.lastSeq
}

// AttachMetrics routes drop accounting into reg's farm_eventlog_dropped
// counter (in addition to the local Dropped count).
func (l *EventLog) AttachMetrics(reg *metrics.Registry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reg = reg
}

// Emit appends one event, stamping the wall-clock time unless the caller
// (the server's hub) already did. A marshal or write failure drops the event
// and is charged to the drop counter; the first write error is latched for
// Close.
func (l *EventLog) Emit(e Event) {
	if l == nil {
		return
	}
	if e.Time == "" {
		e.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	data, err := json.Marshal(e)
	l.mu.Lock()
	defer l.mu.Unlock()
	if err == nil {
		if l.f == nil {
			return // closed: not a drop, the log was told to stop
		}
		_, err = l.f.Write(append(data, '\n'))
	}
	if err != nil {
		l.dropped++
		if l.firstErr == nil {
			l.firstErr = err
		}
		if l.reg != nil {
			l.reg.Counter("farm_eventlog_dropped").Add(1)
		}
	}
}

// Dropped returns how many events were lost to marshal or write errors.
func (l *EventLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Close closes the underlying file and surfaces the first write error the
// log swallowed while emitting — so a full disk shows up at shutdown instead
// of never.
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return l.firstErr
	}
	err := l.f.Close()
	l.f = nil
	if l.firstErr != nil {
		return l.firstErr
	}
	return err
}
