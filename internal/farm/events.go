package farm

import (
	"encoding/json"
	"os"
	"sync"
	"time"
)

// Event is one line of the farm's lease-lifecycle log: sweep submissions,
// lease grants/renewals/expiries, results, failures, poisonings, drains.
// The simulator's internal/trace schema is chunk-lifecycle-specific, so the
// farm keeps its own JSONL stream with the same spirit: append-only,
// machine-readable, greppable by kind.
type Event struct {
	Time    string `json:"time"`
	Kind    string `json:"kind"`
	Sweep   string `json:"sweep,omitempty"`
	Worker  string `json:"worker,omitempty"`
	Lease   string `json:"lease,omitempty"`
	PointID int    `json:"point_id,omitempty"`
	Point   string `json:"point,omitempty"` // "app/protocol/cores"
	Detail  string `json:"detail,omitempty"`
}

// EventLog appends JSONL events to a file. Safe for concurrent use; writes
// are line-atomic under the lock. Logging is best-effort — a write error
// never fails the operation that emitted the event.
type EventLog struct {
	mu sync.Mutex
	f  *os.File
}

// OpenEventLog opens (appending) or creates the JSONL event log at path.
func OpenEventLog(path string) (*EventLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &EventLog{f: f}, nil
}

// Emit appends one event, stamping the wall-clock time.
func (l *EventLog) Emit(e Event) {
	if l == nil {
		return
	}
	e.Time = time.Now().UTC().Format(time.RFC3339Nano)
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		l.f.Write(append(data, '\n'))
	}
}

// Close closes the underlying file.
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
