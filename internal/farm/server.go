package farm

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	scalablebulk "scalablebulk"
)

// sweep is one submitted spec's live state: its lease table plus the
// append-only, completion-ordered result stream clients page through.
type sweep struct {
	id   string
	spec *SweepSpec
	// corr is the correlation ID minted by the submitting client (or by the
	// server when the client sent none); every lease, event, journal entry
	// and crash bundle of this sweep carries it.
	corr    string
	created time.Time
	hashes  []string // ConfigHash per point, derived once at submit
	table   *leaseTable
	results []PointResult
	// resolved dedupes terminal transitions: a point appears in results
	// exactly once even if duplicate results race.
	resolved []bool
}

// Server is the farm's job server. It owns the journal, the sweeps, and the
// lease scheduler; every handler works under one lock (simulation work
// happens in workers — the server only moves small records around). Live
// telemetry — the event hub, SSE streams, progress aggregation — reads the
// same state under the same lock.
type Server struct {
	opts Options
	rng  *rand.Rand
	hub  *eventHub
	log  *slog.Logger

	mu       sync.Mutex
	sweeps   map[string]*sweep
	order    []string // submission order, for fair deterministic leasing
	workers  map[string]*workerInfo
	leaseSeq uint64
	corrSeq  atomic.Uint64
	draining atomic.Bool
	// drained closes when draining is set and no leases remain live.
	drained chan struct{}
}

// NewServer builds a Server over opts (zero-value fields select defaults).
// When the event log already holds events — the signature of a restart over
// the same -events file — the server resumes the sequence from the log's max
// seq and announces itself with a "restarted" event carrying it.
func NewServer(opts Options) *Server {
	opts = opts.withDefaults()
	opts.Events.AttachMetrics(opts.Metrics)
	s := &Server{
		opts:    opts,
		rng:     rand.New(rand.NewSource(opts.Seed*0x9e3779b9 + 1)),
		hub:     newEventHub(opts.Events, opts.EventHistory, opts.Clock),
		log:     opts.Logger,
		sweeps:  map[string]*sweep{},
		workers: map[string]*workerInfo{},
		drained: make(chan struct{}),
	}
	if prev := opts.Events.LastSeq(); prev > 0 {
		s.emit(Event{Kind: "restarted", Detail: fmt.Sprintf("prev_max_seq=%d", prev)})
	}
	return s
}

// emit publishes one event through the hub (seq + time stamped there), the
// event log, and the structured log.
func (s *Server) emit(e Event) Event {
	e = s.hub.emit(e)
	if s.log != nil {
		s.log.Info(e.Kind,
			"seq", e.Seq, "sweep", e.Sweep, "worker", e.Worker, "lease", e.Lease,
			"point", e.Point, "corr", e.Corr, "detail", e.Detail)
	}
	return e
}

// Handler returns the farm API mux:
//
//	POST /v1/sweep                     submit a spec (idempotent by spec ID)
//	GET  /v1/sweep                     status + result stream (?id=...&after=N)
//	POST /v1/lease                     acquire a point lease
//	POST /v1/heartbeat                 renew a lease (410 when the lease is gone)
//	POST /v1/result                    deliver a completed point (orphans accepted)
//	POST /v1/fail                      report a failed or crashed run
//	GET  /v1/healthz                   liveness
//	GET  /api/v1/sweeps/{id}/events    live SSE stream (Last-Event-ID resume)
//	GET  /api/v1/sweeps/{id}/progress  per-sweep progress aggregation
//	GET  /api/v1/farm                  whole-farm status (sbtop's endpoint)
func (s *Server) Handler() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweep", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweep", s.handleStatus)
	mux.HandleFunc("POST /v1/lease", s.handleLease)
	mux.HandleFunc("POST /v1/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("POST /v1/result", s.handleResult)
	mux.HandleFunc("POST /v1/fail", s.handleFail)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /api/v1/sweeps/{id}/events", s.handleSweepEvents)
	mux.HandleFunc("GET /api/v1/sweeps/{id}/progress", s.handleSweepProgress)
	mux.HandleFunc("GET /api/v1/farm", s.handleFarmStatus)
	return mux
}

func (s *Server) count(name string) {
	if s.opts.Metrics != nil {
		s.opts.Metrics.Counter(name).Add(1)
	}
}

func pointLabel(p Point) string {
	return fmt.Sprintf("%s/%s/%d", p.App, p.Protocol, p.Cores)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// handleSubmit registers a sweep (idempotently — an identical spec attaches
// to the live sweep) and immediately resolves every point the journal
// already holds a verified result for. The submission's correlation ID
// arrives in the X-Correlation-ID header; a client that sends none gets one
// minted here, returned in the response header either way.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	if !readJSON(w, r, &spec) {
		return
	}
	if err := spec.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	id := spec.ID()
	corr := r.Header.Get(CorrHeader)

	s.mu.Lock()
	defer s.mu.Unlock()
	if sw, ok := s.sweeps[id]; ok {
		if corr != "" && corr != sw.corr {
			// A different client attached to the live sweep: note it, but
			// the sweep keeps the first submitter's ID.
			s.emit(Event{Kind: "sweep_attached", Sweep: id, Corr: sw.corr,
				Detail: "resubmitted with corr=" + corr})
		}
		restored := 0
		for _, pr := range sw.results {
			if pr.Restored {
				restored++
			}
		}
		w.Header().Set(CorrHeader, sw.corr)
		writeJSON(w, SubmitResponse{
			SweepID: id, Points: len(sw.spec.Points), Restored: restored, Existing: true,
		})
		return
	}

	if corr == "" {
		corr = fmt.Sprintf("c-srv-%s-%d", id, s.corrSeq.Add(1))
	}
	sw := &sweep{
		id:       id,
		spec:     &spec,
		corr:     corr,
		created:  s.opts.Clock(),
		table:    newLeaseTable(spec.Points, s.opts, s.opts.Clock, s.rng),
		resolved: make([]bool, len(spec.Points)),
	}
	restored := 0
	for i, p := range spec.Points {
		h := scalablebulk.ConfigHash(spec.Config(p))
		sw.hashes = append(sw.hashes, h)
		if s.opts.Journal == nil {
			continue
		}
		res, attempts, ok := s.opts.Journal.Lookup(p, h)
		if !ok {
			continue
		}
		data, err := scalablebulk.MarshalResult(res)
		if err != nil {
			continue
		}
		sw.table.markDone(i)
		sw.resolved[i] = true
		sw.results = append(sw.results, PointResult{
			PointID: i, Point: p, Status: StatusDone, ConfigHash: h,
			FingerprintSHA: scalablebulk.FingerprintSHA(res),
			Result:         data, Attempts: attempts, Restored: true,
		})
		restored++
	}
	s.sweeps[id] = sw
	s.order = append(s.order, id)
	s.count("farm_sweeps_submitted")
	s.emit(Event{Kind: "sweep_submitted", Sweep: id, Corr: corr,
		Detail: fmt.Sprintf("points=%d restored=%d", len(spec.Points), restored)})
	// Every journal-restored point gets its own result event so SSE
	// consumers (and the grep trail) see restores like any other completion.
	for _, pr := range sw.results {
		s.emit(Event{Kind: "result", Sweep: id, Corr: corr,
			PointID: pr.PointID, Point: pointLabel(pr.Point), Detail: "restored"})
	}
	w.Header().Set(CorrHeader, corr)
	writeJSON(w, SubmitResponse{SweepID: id, Points: len(spec.Points), Restored: restored})
}

// handleStatus reports counts plus the completion-ordered result stream
// from the caller's cursor, and the live progress aggregation.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	after, _ := strconv.Atoi(r.URL.Query().Get("after"))

	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	if !ok {
		http.Error(w, "unknown sweep "+id, http.StatusNotFound)
		return
	}
	s.expireLocked(sw)
	if after < 0 {
		after = 0
	}
	writeJSON(w, s.statusLocked(sw, after))
}

// statusLocked builds the SweepStatus from the caller's cursor. Caller holds
// s.mu and has already run expireLocked.
func (s *Server) statusLocked(sw *sweep, after int) *SweepStatus {
	st := &SweepStatus{SweepID: sw.id, Corr: sw.corr,
		Total: len(sw.spec.Points), Draining: s.draining.Load()}
	st.Pending, st.Leased, st.Done, st.Failed, st.Poisoned = sw.table.counts()
	if after < len(sw.results) {
		st.Results = append(st.Results, sw.results[after:]...)
	}
	st.NextCursor = len(sw.results)
	st.Progress = s.progressLocked(sw)
	return st
}

// handleSweepProgress serves the per-sweep aggregation on its own.
func (s *Server) handleSweepProgress(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	if !ok {
		http.Error(w, "unknown sweep "+id, http.StatusNotFound)
		return
	}
	s.expireLocked(sw)
	writeJSON(w, s.progressLocked(sw))
}

// handleFarmStatus serves the whole-farm view (sbtop's endpoint).
// ?events=N bounds the event tail (default 32, 0 disables).
func (s *Server) handleFarmStatus(w http.ResponseWriter, r *http.Request) {
	tail := 32
	if v := r.URL.Query().Get("events"); v != "" {
		tail, _ = strconv.Atoi(v)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.order {
		s.expireLocked(s.sweeps[id])
	}
	writeJSON(w, s.farmStatusLocked(tail))
}

// expireLocked runs the lease-expiry sweep for one sweep's table and
// records the resulting terminal transitions. Called with s.mu held, from
// every handler that observes time passing — the server needs no timer
// goroutine and tests control the clock completely.
func (s *Server) expireLocked(sw *sweep) {
	dead := sw.table.expire()
	for _, la := range dead {
		s.count("farm_leases_expired")
		s.emit(Event{Kind: "lease_expired", Sweep: sw.id, Corr: sw.corr,
			Worker: la.l.worker, Lease: la.l.id,
			PointID: la.entry.id, Point: pointLabel(la.entry.point)})
	}
	s.harvestTerminal(sw)
	s.checkDrained()
}

// harvestTerminal appends newly terminal (failed/poisoned) points to the
// result stream exactly once.
func (s *Server) harvestTerminal(sw *sweep) {
	for _, e := range sw.table.entries {
		if sw.resolved[e.id] {
			continue
		}
		var status string
		switch e.state {
		case stateFailed:
			status = StatusFailed
			s.count("farm_points_failed")
		case statePoisoned:
			status = StatusPoisoned
			s.count("farm_points_poisoned")
			s.emit(Event{Kind: "point_poisoned", Sweep: sw.id, Corr: sw.corr,
				PointID: e.id, Point: pointLabel(e.point), Detail: e.lastErr})
		default:
			continue
		}
		sw.resolved[e.id] = true
		sw.results = append(sw.results, PointResult{
			PointID: e.id, Point: e.point, Status: status,
			ConfigHash: sw.hashes[e.id], Error: e.lastErr,
		})
		s.emit(Event{Kind: "result", Sweep: sw.id, Corr: sw.corr,
			PointID: e.id, Point: pointLabel(e.point), Detail: status})
	}
}

// handleLease grants the first eligible point across sweeps in submission
// order. While draining it grants nothing and tells workers so.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Worker == "" {
		http.Error(w, "worker id required", http.StatusBadRequest)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.touchWorker(req.Worker)
	if s.draining.Load() {
		writeJSON(w, leaseResponse{Draining: true})
		return
	}
	for _, id := range s.order {
		sw := s.sweeps[id]
		s.expireLocked(sw)
		s.leaseSeq++
		leaseID := fmt.Sprintf("l-%d", s.leaseSeq)
		e, l := sw.table.acquire(req.Worker, leaseID)
		if e == nil {
			continue
		}
		s.count("farm_leases_granted")
		s.emit(Event{Kind: "lease_granted", Sweep: sw.id, Corr: sw.corr,
			Worker: req.Worker, Lease: l.id, PointID: e.id,
			Point: pointLabel(e.point), Detail: fmt.Sprintf("attempt=%d", e.attempt)})
		writeJSON(w, leaseResponse{Job: &Job{
			SweepID: sw.id, LeaseID: l.id, PointID: e.id, Point: e.point,
			Spec: *sw.spec, ConfigHash: sw.hashes[e.id], Corr: sw.corr,
			TTLMS: s.opts.LeaseTTL.Milliseconds(), Attempt: e.attempt,
		}})
		return
	}
	// No work right now: poll again after a fraction of the lease TTL
	// (work may appear when a lease expires or a new sweep arrives).
	writeJSON(w, leaseResponse{RetryMS: s.opts.LeaseTTL.Milliseconds() / 10})
}

// handleHeartbeat renews a lease; 410 Gone tells the worker the lease was
// lost (expired and re-queued, or the point resolved elsewhere) and the run
// should be abandoned silently.
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touchWorker(req.Worker)
	sw, ok := s.sweeps[req.SweepID]
	if !ok {
		http.Error(w, "unknown sweep", http.StatusGone)
		return
	}
	s.expireLocked(sw)
	if !sw.table.heartbeat(req.LeaseID) {
		http.Error(w, "lease gone", http.StatusGone)
		return
	}
	s.count("farm_heartbeats")
	writeJSON(w, struct{}{})
}

// handleResult accepts a completed point. The server never trusts the
// worker's digest alone: it restores the result and re-derives the
// fingerprint before journaling. Orphan results — unknown lease or even
// unknown sweep, the signature of a server restart — are verified and
// journaled too, so no completed work is ever lost.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	var req resultRequest
	if !readJSON(w, r, &req) {
		return
	}
	res, err := scalablebulk.UnmarshalResult(req.Result)
	if err != nil {
		http.Error(w, "undecodable result: "+err.Error(), http.StatusBadRequest)
		return
	}
	sha := scalablebulk.FingerprintSHA(res)
	if sha != req.FingerprintSHA {
		s.count("farm_results_divergent")
		http.Error(w, "fingerprint mismatch: result does not hash to the digest shipped with it",
			http.StatusConflict)
		return
	}
	res.Attempts = req.Attempts

	s.mu.Lock()
	defer s.mu.Unlock()
	wi := s.touchWorker(req.Worker)
	sw, ok := s.sweeps[req.SweepID]
	if !ok {
		// Orphan beyond the sweep itself: the server restarted and the
		// sweep was not resubmitted yet. Journal the verified result so
		// the resubmission restores it.
		s.journalLocked(req.Point, req.ConfigHash, res, req.WallMS, req.Corr)
		s.count("farm_results_orphaned")
		s.emit(Event{Kind: "result_orphaned", Sweep: req.SweepID, Corr: req.Corr,
			Worker: req.Worker, Point: pointLabel(req.Point)})
		writeJSON(w, struct{}{})
		return
	}
	s.expireLocked(sw)
	if req.PointID < 0 || req.PointID >= len(sw.spec.Points) {
		http.Error(w, "point id out of range", http.StatusBadRequest)
		return
	}
	if sw.hashes[req.PointID] != req.ConfigHash {
		s.count("farm_results_divergent")
		http.Error(w, "config hash mismatch: worker and server derive different configs (version skew?)",
			http.StatusConflict)
		return
	}
	if sw.resolved[req.PointID] {
		// Duplicate delivery (retried RPC, or a re-granted lease racing
		// the original holder). Equal fingerprints are idempotent;
		// divergent fingerprints mean nondeterminism and must scream.
		prev := s.findResult(sw, req.PointID)
		if prev != nil && prev.FingerprintSHA != sha {
			s.count("farm_results_divergent")
			http.Error(w, "divergent duplicate: same point, different fingerprint",
				http.StatusConflict)
			return
		}
		writeJSON(w, struct{}{})
		return
	}

	s.journalLocked(req.Point, req.ConfigHash, res, req.WallMS, sw.corr)
	sw.table.complete(req.PointID, req.LeaseID)
	sw.resolved[req.PointID] = true
	sw.results = append(sw.results, PointResult{
		PointID: req.PointID, Point: req.Point, Status: StatusDone,
		ConfigHash: req.ConfigHash, FingerprintSHA: sha,
		Result: req.Result, Attempts: req.Attempts,
	})
	if wi != nil {
		wi.done++
	}
	s.count("farm_results_ok")
	s.emit(Event{Kind: "result", Sweep: sw.id, Corr: sw.corr, Worker: req.Worker,
		Lease: req.LeaseID, PointID: req.PointID, Point: pointLabel(req.Point),
		Detail: StatusDone})
	s.checkDrained()
	writeJSON(w, struct{}{})
}

func (s *Server) findResult(sw *sweep, pointID int) *PointResult {
	for i := range sw.results {
		if sw.results[i].PointID == pointID {
			return &sw.results[i]
		}
	}
	return nil
}

// journalLocked records a verified result; journaling failures are logged
// but do not fail the delivery (the result is still live in memory).
func (s *Server) journalLocked(p Point, hash string, res *scalablebulk.Result, wallMS float64, corr string) {
	if s.opts.Journal == nil {
		return
	}
	if _, _, ok := s.opts.Journal.Lookup(p, hash); ok {
		return // already journaled (duplicate or cross-sweep dedup)
	}
	wall := time.Duration(wallMS * float64(time.Millisecond))
	if err := s.opts.Journal.RecordCorr(p, hash, res, wall, corr); err != nil {
		s.emit(Event{Kind: "journal_error", Point: pointLabel(p), Corr: corr,
			Detail: err.Error()})
	}
}

// handleFail records a failed or crashed run under a live lease. Crash
// reports become crash bundles under CrashDir; a crash charges the poison
// counter, an ordinary error re-queues with backoff.
func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	var req failRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Crash != nil && s.opts.CrashDir != "" {
		if req.Crash.Corr == "" {
			req.Crash.Corr = req.Corr
		}
		if _, err := scalablebulk.WriteCrashBundle(s.opts.CrashDir, req.Crash); err != nil {
			s.emit(Event{Kind: "crash_bundle_error", Corr: req.Corr, Detail: err.Error()})
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	wi := s.touchWorker(req.Worker)
	sw, ok := s.sweeps[req.SweepID]
	if !ok {
		writeJSON(w, struct{}{}) // orphan failure: the re-submitted sweep re-runs the point anyway
		return
	}
	s.expireLocked(sw)
	if sw.table.fail(req.LeaseID, req.Crash != nil, req.Error) {
		s.count("farm_point_failures")
		if wi != nil {
			wi.failed++
			if req.Crash != nil {
				wi.crashed++
			}
		}
		s.emit(Event{Kind: "run_failed", Sweep: sw.id, Corr: sw.corr, Worker: req.Worker,
			Lease: req.LeaseID, PointID: req.PointID, Point: pointLabel(req.Point),
			Detail: req.Error})
	}
	s.harvestTerminal(sw)
	s.checkDrained()
	writeJSON(w, struct{}{})
}

// Drain flips the server into shutdown mode: no new leases are granted, and
// the returned channel closes once no lease remains live (every in-flight
// point resolved or expired). Callers bound the wait themselves.
func (s *Server) Drain() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.draining.Swap(true) {
		s.emit(Event{Kind: "draining"})
	}
	s.checkDrained()
	return s.drained
}

// checkDrained closes the drained channel when draining with no live
// leases. Called with s.mu held.
func (s *Server) checkDrained() {
	if !s.draining.Load() {
		return
	}
	for _, sw := range s.sweeps {
		if len(sw.table.leases) > 0 {
			return
		}
	}
	select {
	case <-s.drained:
	default:
		close(s.drained)
	}
}
