package farm

import (
	"strings"
	"testing"

	scalablebulk "scalablebulk"
)

func TestSweepSpecIDStable(t *testing.T) {
	a, b := testSpec(), testSpec()
	if a.ID() != b.ID() {
		t.Fatalf("identical specs hash differently: %s vs %s", a.ID(), b.ID())
	}
	if len(a.ID()) != 16 {
		t.Fatalf("ID length = %d, want 16 hex chars", len(a.ID()))
	}
	// Any knob change must change the identity.
	variants := []func(*SweepSpec){
		func(s *SweepSpec) { s.Seed++ },
		func(s *SweepSpec) { s.ChunksPerCore++ },
		func(s *SweepSpec) { s.Scaling = ScalingFixed },
		func(s *SweepSpec) { s.Workload = "uniform" },
		func(s *SweepSpec) { s.Faults = "flaky" },
		func(s *SweepSpec) { s.Check = true },
		func(s *SweepSpec) { s.Points = s.Points[:2] },
		func(s *SweepSpec) { s.Points[0], s.Points[1] = s.Points[1], s.Points[0] },
	}
	for i, mut := range variants {
		v := testSpec()
		mut(v)
		if v.ID() == a.ID() {
			t.Errorf("variant %d has the same ID as the base spec", i)
		}
	}
}

func TestSweepSpecValidate(t *testing.T) {
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []struct {
		name string
		mut  func(*SweepSpec)
		want string
	}{
		{"no points", func(s *SweepSpec) { s.Points = nil }, "no points"},
		{"bad scaling", func(s *SweepSpec) { s.Scaling = "weak" }, "scaling"},
		{"bad fault profile", func(s *SweepSpec) { s.Faults = "nonesuch" }, "fault"},
		{"bad protocol", func(s *SweepSpec) { s.Points[0].Protocol = "MOESI" }, "protocol"},
		{"zero cores", func(s *SweepSpec) { s.Points[0].Cores = 0 }, "cores"},
		{"bad app", func(s *SweepSpec) { s.Points[0].App = "NoSuchApp" }, "NoSuchApp"},
	}
	for _, tc := range bad {
		s := testSpec()
		tc.mut(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the spec", tc.name)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(tc.want)) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestSpecConfigMatchesSession guards the determinism contract at its root:
// the Config a farm worker derives from a spec must hash identically to the
// one Session.SweepContext derives for the same point, or journal dedup and
// fingerprint equality silently break.
func TestSpecConfigMatchesSession(t *testing.T) {
	spec := testSpec()
	for _, p := range spec.Points {
		want := scalablebulk.ConfigHash(scalablebulk.SweepPointConfig(p, spec.ChunksPerCore, spec.Seed))
		got := scalablebulk.ConfigHash(spec.Config(p))
		if got != want {
			t.Errorf("%s/%s/%d: farm config hash %s != session %s",
				p.App, p.Protocol, p.Cores, got, want)
		}
	}
	// Defaulted chunks (≤0) must match the Session default too.
	d := testSpec()
	d.ChunksPerCore = 0
	for _, p := range d.Points {
		want := scalablebulk.ConfigHash(scalablebulk.SweepPointConfig(p, 64, d.Seed))
		if got := scalablebulk.ConfigHash(d.Config(p)); got != want {
			t.Errorf("defaulted chunks: %s/%s/%d hash mismatch", p.App, p.Protocol, p.Cores)
		}
	}
}

// TestSpecConfigFixedScaling checks sbsim's literal semantics: every point
// gets ChunksPerCore verbatim, exactly as DefaultConfig + overrides.
func TestSpecConfigFixedScaling(t *testing.T) {
	spec := testSpec()
	spec.Scaling = ScalingFixed
	spec.ChunksPerCore = 5
	for _, p := range spec.Points {
		want := scalablebulk.DefaultConfig(p.Cores, p.Protocol)
		want.Seed = spec.Seed
		want.ChunksPerCore = 5
		if got := spec.Config(p); scalablebulk.ConfigHash(got) != scalablebulk.ConfigHash(want) {
			t.Errorf("%s/%s/%d: fixed-scaling config diverges from DefaultConfig",
				p.App, p.Protocol, p.Cores)
		}
		if got := spec.Config(p); got.ChunksPerCore != 5 {
			t.Errorf("fixed scaling gave ChunksPerCore=%d, want 5", got.ChunksPerCore)
		}
	}
}

func TestRetryPolicy(t *testing.T) {
	s := testSpec()
	if got, want := s.RetryPolicy().MaxAttempts, scalablebulk.DefaultRetryPolicy().MaxAttempts; got != want {
		t.Errorf("default retries = %d, want policy default %d", got, want)
	}
	s.Retries = 1
	if got := s.RetryPolicy().MaxAttempts; got != 1 {
		t.Errorf("explicit retries = %d, want 1", got)
	}
}

func TestRPCFaultByName(t *testing.T) {
	for _, name := range RPCFaultNames() {
		p, err := RPCFaultByName(name, 1)
		if err != nil || p == nil {
			t.Errorf("profile %q: %v", name, err)
		}
	}
	for _, off := range []string{"", "off", "none"} {
		if p, err := RPCFaultByName(off, 1); err != nil || p != nil {
			t.Errorf("%q: got %+v, %v; want nil, nil", off, p, err)
		}
	}
	if _, err := RPCFaultByName("nonesuch", 1); err == nil {
		t.Error("unknown profile accepted")
	}
}
