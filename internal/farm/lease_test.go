package farm

import (
	"math/rand"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for deterministic lease-table tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func testRNG() *rand.Rand                    { return rand.New(rand.NewSource(7)) }
func pts(n int) []Point {
	out := make([]Point, n)
	for i := range out {
		out[i] = Point{App: "Radix", Protocol: "ScalableBulk", Cores: 8 << i}
	}
	return out
}

func testOpts() Options {
	return Options{
		LeaseTTL: 10 * time.Second, PoisonAfter: 3, MaxAttempts: 3,
		Requeue: requeuePolicy{Backoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, Jitter: 0.5},
	}.withDefaults()
}

func TestLeaseExpiryRequeues(t *testing.T) {
	clk := newFakeClock()
	tab := newLeaseTable(pts(1), testOpts(), clk.now, testRNG())

	e, l := tab.acquire("w1", "l-1")
	if e == nil || e.id != 0 || l.worker != "w1" {
		t.Fatalf("acquire = %+v, %+v", e, l)
	}
	if e2, _ := tab.acquire("w2", "l-2"); e2 != nil {
		t.Fatalf("second acquire got the leased point %d", e2.id)
	}
	// Heartbeats hold the lease across the TTL.
	clk.advance(8 * time.Second)
	if !tab.heartbeat("l-1") {
		t.Fatal("heartbeat on a live lease failed")
	}
	clk.advance(8 * time.Second)
	if dead := tab.expire(); dead != nil {
		t.Fatalf("renewed lease expired: %+v", dead)
	}
	// Without renewal the lease dies and the point re-queues.
	clk.advance(11 * time.Second)
	dead := tab.expire()
	if len(dead) != 1 || dead[0].l.worker != "w1" {
		t.Fatalf("expire = %+v, want w1's lease", dead)
	}
	if e.state != statePending || e.attempt != 1 || !e.deadWorkers["w1"] {
		t.Fatalf("after expiry: state=%v attempt=%d dead=%v", e.state, e.attempt, e.deadWorkers)
	}
	if tab.heartbeat("l-1") {
		t.Fatal("heartbeat on an expired lease succeeded")
	}
	// The re-queue is gated by backoff: immediately re-acquiring fails,
	// after the backoff window it succeeds.
	if e2, _ := tab.acquire("w2", "l-2"); e2 != nil {
		t.Fatal("acquire inside the backoff window succeeded")
	}
	clk.advance(time.Second)
	if e2, _ := tab.acquire("w2", "l-2"); e2 == nil || e2.attempt != 2 {
		t.Fatalf("acquire after backoff = %+v", e2)
	}
}

func TestPoisonAfterDistinctWorkerDeaths(t *testing.T) {
	clk := newFakeClock()
	opts := testOpts()
	opts.PoisonAfter = 2
	opts.MaxAttempts = 10 // attempts must not fail the point before poison triggers
	tab := newLeaseTable(pts(1), opts, clk.now, testRNG())

	for i, w := range []string{"w1", "w2"} {
		clk.advance(time.Second)
		e, _ := tab.acquire(w, "l-"+w)
		if e == nil {
			t.Fatalf("acquire %d by %s failed", i, w)
		}
		clk.advance(opts.LeaseTTL + time.Second)
		tab.expire()
	}
	e := tab.entries[0]
	if e.state != statePoisoned {
		t.Fatalf("after 2 distinct deaths: state=%v, want poisoned", e.state)
	}
	if _, _, done, failed, poisoned := tab.counts(); done != 0 || failed != 0 || poisoned != 1 {
		t.Fatalf("counts: done=%d failed=%d poisoned=%d", done, failed, poisoned)
	}
}

func TestSameWorkerDeathsDoNotPoison(t *testing.T) {
	clk := newFakeClock()
	opts := testOpts()
	opts.PoisonAfter = 2
	opts.MaxAttempts = 10
	tab := newLeaseTable(pts(1), opts, clk.now, testRNG())

	// The same worker dying over and over is a bad worker, not a poisoned
	// point: the distinct-worker counter must stay at 1.
	for i := 0; i < 4; i++ {
		clk.advance(time.Second)
		if e, _ := tab.acquire("w1", "l-x"); e == nil {
			t.Fatalf("acquire %d failed", i)
		}
		clk.advance(opts.LeaseTTL + time.Second)
		tab.expire()
	}
	if e := tab.entries[0]; e.state == statePoisoned {
		t.Fatal("point poisoned by repeated deaths of one worker")
	}
}

func TestRetryBudgetFailsPoint(t *testing.T) {
	clk := newFakeClock()
	opts := testOpts()
	opts.MaxAttempts = 2
	opts.PoisonAfter = 1 // below MaxAttempts, so the attempt cap (max of the two) governs
	tab := newLeaseTable(pts(1), opts, clk.now, testRNG())

	for i := 0; i < 2; i++ {
		clk.advance(time.Second)
		e, l := tab.acquire("w1", "l-1")
		if e == nil {
			t.Fatalf("acquire %d failed", i)
		}
		if !tab.fail(l.id, false, "boom") {
			t.Fatalf("fail %d did not find the lease", i)
		}
	}
	if e := tab.entries[0]; e.state != stateFailed {
		t.Fatalf("after exhausting attempts: state=%v, want failed", e.state)
	}
}

func TestEffectiveCapIsMaxOfAttemptsAndPoison(t *testing.T) {
	clk := newFakeClock()
	opts := testOpts()
	opts.MaxAttempts = 1
	opts.PoisonAfter = 3
	tab := newLeaseTable(pts(1), opts, clk.now, testRNG())

	// With 3 distinct workers required to poison, a MaxAttempts of 1 must
	// not wedge the point first — the effective cap is max(1, 3).
	for _, w := range []string{"w1", "w2", "w3"} {
		clk.advance(time.Second)
		e, _ := tab.acquire(w, "l-"+w)
		if e == nil {
			t.Fatalf("acquire by %s failed (point wedged early: state=%v)",
				w, tab.entries[0].state)
		}
		clk.advance(opts.LeaseTTL + time.Second)
		tab.expire()
	}
	if e := tab.entries[0]; e.state != statePoisoned {
		t.Fatalf("state=%v, want poisoned after 3 distinct deaths", e.state)
	}
}

func TestBackoffScheduleIsSeededAndCapped(t *testing.T) {
	clk := newFakeClock()
	opts := testOpts()
	tab1 := newLeaseTable(pts(1), opts, clk.now, rand.New(rand.NewSource(3)))
	tab2 := newLeaseTable(pts(1), opts, clk.now, rand.New(rand.NewSource(3)))
	for n := 1; n <= 6; n++ {
		b1, b2 := tab1.backoff(n), tab2.backoff(n)
		if b1 != b2 {
			t.Fatalf("attempt %d: same seed produced %v vs %v", n, b1, b2)
		}
		limit := opts.Requeue.MaxBackoff + time.Duration(float64(opts.Requeue.MaxBackoff)*opts.Requeue.Jitter)
		if b1 < 0 || b1 > limit {
			t.Fatalf("attempt %d: backoff %v outside [0, %v]", n, b1, limit)
		}
	}
}

func TestCompleteResolvesOrphanedPoint(t *testing.T) {
	clk := newFakeClock()
	tab := newLeaseTable(pts(1), testOpts(), clk.now, testRNG())
	e, l := tab.acquire("w1", "l-1")
	clk.advance(testOpts().LeaseTTL + time.Second)
	tab.expire() // w1 presumed dead, point re-queued
	if e.state != statePending {
		t.Fatalf("state=%v, want pending", e.state)
	}
	// w1 was alive after all and delivers: the completion lands even though
	// its lease is gone.
	tab.complete(0, l.id)
	if e.state != stateDone {
		t.Fatalf("state=%v, want done after orphan completion", e.state)
	}
}
