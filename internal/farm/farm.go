// Package farm is the sharded sweep farm: an HTTP/JSON job server that
// accepts sweep specs (protocol × cores × workload points), dedupes
// identical points through the checkpoint journal, and hands points to
// worker processes under time-bounded leases with heartbeat renewal.
//
// The durability story stacks three layers:
//
//   - Leases. A worker holds each point under a TTL it must renew by
//     heartbeat. A worker that dies — SIGKILL, OOM, network partition —
//     simply stops renewing; the server's expiry sweep re-queues the point
//     behind a seeded-jitter exponential backoff.
//   - Poisoning. A point whose leases die under PoisonAfter distinct
//     workers is quarantined as poisoned (the point kills workers, not the
//     other way around) and reported with its crash bundle instead of
//     being retried forever.
//   - The journal. Completed points are persisted through the root
//     package's fingerprint-verified JSONL journal before they are
//     acknowledged, so a server killed mid-sweep restarts, replays the
//     journal, and resumes with every completed point intact. Workers that
//     finish while the server is down deliver orphan results on reconnect;
//     the server verifies and journals them even though the lease is gone.
//
// Determinism is the acceptance contract: a farm sweep — with workers
// killed and the server restarted mid-run — produces byte-identical
// ResultFingerprints to the same spec run in-process through
// Session.SweepContext.
package farm

import (
	"log/slog"
	"time"

	scalablebulk "scalablebulk"
	"scalablebulk/internal/metrics"
)

// Options configures a Server.
type Options struct {
	// LeaseTTL bounds each lease; a worker heartbeats at TTL/3 and a lease
	// not renewed within TTL is presumed dead. 0 selects 10s.
	LeaseTTL time.Duration
	// PoisonAfter quarantines a point after its leases died under this
	// many distinct workers. 0 selects 3.
	PoisonAfter int
	// MaxAttempts caps lease grants per point; the effective cap is
	// max(MaxAttempts, PoisonAfter). 0 selects the retry default of 3.
	MaxAttempts int
	// Requeue shapes the re-queue backoff (Backoff, MaxBackoff, Jitter);
	// zero fields select the system retry defaults (25ms base, 2s cap,
	// 0.5 jitter).
	Requeue requeuePolicy
	// Seed seeds the backoff-jitter PRNG so scheduling noise is
	// reproducible run to run.
	Seed int64
	// Journal, when non-nil, is the durable checkpoint every completed
	// point is recorded into (and restored from at submit).
	Journal *scalablebulk.Journal
	// CrashDir, when nonempty, receives crash bundles forwarded by
	// workers whose runs panicked.
	CrashDir string
	// Events, when non-nil, receives the lease-lifecycle event stream.
	Events *EventLog
	// Metrics, when non-nil, receives farm counters and gauges.
	Metrics *metrics.Registry
	// EventHistory bounds the in-memory event ring SSE clients resume from
	// (Last-Event-ID); a client further behind than this gets a snapshot
	// instead of a replay. 0 selects 8192.
	EventHistory int
	// SSEPing is the keepalive-comment interval on SSE streams (defeats
	// idle-connection reapers between events). 0 selects 5s.
	SSEPing time.Duration
	// Logger, when non-nil, receives a structured log line per farm event
	// (kind, sweep, worker, lease, point, corr).
	Logger *slog.Logger
	// Clock replaces time.Now for tests.
	Clock func() time.Time
}

func (o Options) withDefaults() Options {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.PoisonAfter <= 0 {
		o.PoisonAfter = 3
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Requeue.Backoff <= 0 {
		o.Requeue.Backoff = 25 * time.Millisecond
	}
	if o.Requeue.MaxBackoff <= 0 {
		o.Requeue.MaxBackoff = 2 * time.Second
	}
	if o.Requeue.Jitter == 0 {
		o.Requeue.Jitter = 0.5
	}
	if o.EventHistory <= 0 {
		o.EventHistory = 8192
	}
	if o.SSEPing <= 0 {
		o.SSEPing = 5 * time.Second
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}
