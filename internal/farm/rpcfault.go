package farm

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// RPCFaultProfile shapes seeded RPC-layer fault injection, mirroring
// internal/fault's named-profile idiom at the wire instead of the NoC:
// requests are dropped (the transport reports a connection error),
// duplicated (sent twice, exercising idempotency), or delayed.
type RPCFaultProfile struct {
	Name string
	// Drop is the probability a request is discarded before sending.
	Drop float64
	// Dup is the probability a request is sent twice back to back.
	Dup float64
	// Delay is the maximum uniform extra latency added per request.
	Delay time.Duration
	// Seed seeds the injector's PRNG; a given (profile, seed) pair yields
	// the same fault schedule every run.
	Seed int64
}

// rpcProfiles is the named registry, mild to hostile.
var rpcProfiles = map[string]RPCFaultProfile{
	"flaky": {Name: "flaky", Drop: 0.05, Dup: 0.05, Delay: 20 * time.Millisecond},
	"lossy": {Name: "lossy", Drop: 0.20, Dup: 0.10, Delay: 50 * time.Millisecond},
	"chaos": {Name: "chaos", Drop: 0.35, Dup: 0.25, Delay: 100 * time.Millisecond},
}

// RPCFaultNames lists the registered profile names, sorted.
func RPCFaultNames() []string {
	names := make([]string, 0, len(rpcProfiles))
	for n := range rpcProfiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RPCFaultByName resolves a profile name; "", "off", "none" disable.
func RPCFaultByName(name string, seed int64) (*RPCFaultProfile, error) {
	switch name {
	case "", "off", "none":
		return nil, nil
	}
	p, ok := rpcProfiles[name]
	if !ok {
		return nil, fmt.Errorf("farm: unknown RPC fault profile %q (have %v)",
			name, RPCFaultNames())
	}
	p.Seed = seed
	return &p, nil
}

// errInjectedDrop is what a dropped request surfaces as — a transport
// error, so the Client's retry loop handles it like a real network fault.
var errInjectedDrop = errors.New("farm: injected RPC drop")

// FaultTransport is an http.RoundTripper that injects the profile's faults
// in front of a base transport. Drops return a transport error (retried by
// Client.do), duplicates send the request twice and return the second
// response (the first is drained and discarded — the server must treat the
// repeat idempotently), delays add seeded uniform latency.
type FaultTransport struct {
	Base    http.RoundTripper
	Profile RPCFaultProfile

	mu  sync.Mutex
	rng *rand.Rand
}

// NewFaultTransport wires a FaultTransport over base (nil selects
// http.DefaultTransport).
func NewFaultTransport(base http.RoundTripper, prof RPCFaultProfile) *FaultTransport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &FaultTransport{
		Base: base, Profile: prof,
		rng: rand.New(rand.NewSource(prof.Seed*0x9e3779b9 + 0x5bd1e995)),
	}
}

func (t *FaultTransport) draw() (drop, dup bool, delay time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	drop = t.Profile.Drop > 0 && t.rng.Float64() < t.Profile.Drop
	dup = t.Profile.Dup > 0 && t.rng.Float64() < t.Profile.Dup
	if t.Profile.Delay > 0 {
		delay = time.Duration(t.rng.Int63n(int64(t.Profile.Delay) + 1))
	}
	return
}

// RoundTrip implements http.RoundTripper.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	drop, dup, delay := t.draw()
	if delay > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(delay):
		}
	}
	if drop {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, errInjectedDrop
	}
	if dup && req.Body != nil && req.GetBody == nil {
		// Can't replay a one-shot body; buffer it so both sends work.
		data, err := io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
		req.Body = io.NopCloser(bytes.NewReader(data))
		req.GetBody = func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(data)), nil
		}
	}
	if dup {
		first := req.Clone(req.Context())
		if req.GetBody != nil {
			body, err := req.GetBody()
			if err != nil {
				return nil, err
			}
			first.Body = body
		}
		if resp, err := t.Base.RoundTrip(first); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if req.GetBody != nil {
			body, err := req.GetBody()
			if err != nil {
				return nil, err
			}
			req.Body = body
		}
	}
	return t.Base.RoundTrip(req)
}
