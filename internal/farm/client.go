package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	scalablebulk "scalablebulk"
)

// ErrLeaseGone reports a heartbeat or delivery against a lease the server
// no longer holds: the lease expired (the worker looked dead) or the point
// resolved elsewhere. The worker's correct response is to abandon the run
// silently — the server has already re-queued or finished the point.
var ErrLeaseGone = errors.New("farm: lease gone")

// ErrDraining reports a lease request against a draining server.
var ErrDraining = errors.New("farm: server is draining")

// Client speaks the farm wire protocol. Transport-level failures —
// connection refused, reset, timeout — are retried with backoff until the
// context dies, which is what lets a thin client or worker ride through a
// server restart: the server comes back, replays its journal, and the
// retried call lands on the recovered state.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8356".
	Base string
	// HTTP is the underlying client; nil selects a default with sane
	// timeouts. Tests wire a FaultTransport here.
	HTTP *http.Client
	// RetryInterval paces transport-retry backoff (0 selects 250ms);
	// MaxRetryWait bounds it (0 selects 5s).
	RetryInterval time.Duration
	MaxRetryWait  time.Duration
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// httpError is a non-2xx response: the server answered, so the transport
// works and retrying the same request is pointless unless the status says
// otherwise.
type httpError struct {
	Status int
	Body   string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("farm: server returned %d: %s", e.Status, e.Body)
}

// do POSTs (or GETs when body is nil) path with a JSON body and decodes the
// JSON response into out, retrying transport errors with capped backoff
// until ctx is done.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return err
		}
	}
	interval := c.RetryInterval
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	maxWait := c.MaxRetryWait
	if maxWait <= 0 {
		maxWait = 5 * time.Second
	}
	for {
		req, err := http.NewRequestWithContext(ctx, method, c.Base+path, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.http().Do(req)
		if err == nil {
			data, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil {
				if resp.StatusCode/100 != 2 {
					return &httpError{Status: resp.StatusCode,
						Body: string(bytes.TrimSpace(data))}
				}
				if out == nil {
					return nil
				}
				return json.Unmarshal(data, out)
			}
			err = rerr
		}
		// Transport failure: the server may be restarting. Back off and
		// retry until the caller gives up.
		select {
		case <-ctx.Done():
			return fmt.Errorf("farm: %s %s: %w (last transport error: %v)",
				method, path, ctx.Err(), err)
		case <-time.After(interval):
		}
		interval *= 2
		if interval > maxWait {
			interval = maxWait
		}
	}
}

// Submit registers spec with the server (idempotent: resubmitting an
// identical spec attaches to the live sweep).
func (c *Client) Submit(ctx context.Context, spec *SweepSpec) (*SubmitResponse, error) {
	var resp SubmitResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sweep", spec, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Status fetches sweep status plus the result stream after cursor.
func (c *Client) Status(ctx context.Context, sweepID string, after int) (*SweepStatus, error) {
	var st SweepStatus
	q := url.Values{"id": {sweepID}, "after": {strconv.Itoa(after)}}
	if err := c.do(ctx, http.MethodGet, "/v1/sweep?"+q.Encode(), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Lease asks for work. A nil job with nil error means nothing is runnable
// right now (retry after the hinted interval); ErrDraining means stop.
func (c *Client) Lease(ctx context.Context, worker string) (*Job, time.Duration, error) {
	var resp leaseResponse
	if err := c.do(ctx, http.MethodPost, "/v1/lease", leaseRequest{Worker: worker}, &resp); err != nil {
		return nil, 0, err
	}
	if resp.Draining {
		return nil, 0, ErrDraining
	}
	retry := time.Duration(resp.RetryMS) * time.Millisecond
	return resp.Job, retry, nil
}

// Heartbeat renews a lease; ErrLeaseGone means abandon the run.
func (c *Client) Heartbeat(ctx context.Context, job *Job, worker string) error {
	err := c.do(ctx, http.MethodPost, "/v1/heartbeat", heartbeatRequest{
		SweepID: job.SweepID, LeaseID: job.LeaseID, Worker: worker,
	}, nil)
	var he *httpError
	if errors.As(err, &he) && he.Status == http.StatusGone {
		return ErrLeaseGone
	}
	return err
}

// Result delivers a completed point.
func (c *Client) Result(ctx context.Context, job *Job, worker string, res *scalablebulk.Result, wall time.Duration) error {
	data, err := scalablebulk.MarshalResult(res)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, "/v1/result", resultRequest{
		SweepID: job.SweepID, LeaseID: job.LeaseID, Worker: worker,
		PointID: job.PointID, Point: job.Point, ConfigHash: job.ConfigHash,
		FingerprintSHA: scalablebulk.FingerprintSHA(res),
		Result:         data, Attempts: res.Attempts,
		WallMS: float64(wall.Microseconds()) / 1000,
	}, nil)
}

// Fail reports a failed (or crashed) run.
func (c *Client) Fail(ctx context.Context, job *Job, worker, msg string, crash *scalablebulk.CrashReport) error {
	return c.do(ctx, http.MethodPost, "/v1/fail", failRequest{
		SweepID: job.SweepID, LeaseID: job.LeaseID, Worker: worker,
		PointID: job.PointID, Point: job.Point, Error: msg, Crash: crash,
	}, nil)
}

// RunSweep is the thin-client driver the CLIs' -server mode uses: submit
// the spec, then poll the result stream until every point is terminal,
// returning a SweepOutcome shaped exactly like Session.SweepContext's. On
// reconnect (any successful resubmission after a transport gap) the cursor
// resets to zero and results dedupe by point — the stream is append-only,
// so nothing is lost or double-counted. onResult, when non-nil, observes
// each completed point once, with the restored flag distinguishing journal
// hits from fresh runs.
func (c *Client) RunSweep(ctx context.Context, spec *SweepSpec, onResult func(p Point, res *scalablebulk.Result, restored bool)) (*scalablebulk.SweepOutcome, error) {
	sub, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	out := &scalablebulk.SweepOutcome{Points: sub.Points}
	seen := make(map[int]bool, sub.Points)
	cursor := 0
	poll := c.RetryInterval
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, sub.SweepID, cursor)
		if err != nil {
			var he *httpError
			if errors.As(err, &he) && he.Status == http.StatusNotFound {
				// The server restarted and lost the in-memory sweep:
				// resubmit (idempotent — journaled points restore) and
				// rewind the cursor; seen dedupes replayed results.
				if _, err := c.Submit(ctx, spec); err != nil {
					return out, err
				}
				cursor = 0
				continue
			}
			if ctx.Err() != nil {
				out.Aborted = true
				return out, nil
			}
			return out, err
		}
		cursor = st.NextCursor
		for _, pr := range st.Results {
			if seen[pr.PointID] {
				continue
			}
			seen[pr.PointID] = true
			switch pr.Status {
			case StatusDone:
				res, err := scalablebulk.UnmarshalResult(pr.Result)
				if err != nil {
					return out, fmt.Errorf("farm: undecodable result for %s: %w",
						pointLabel(pr.Point), err)
				}
				if scalablebulk.FingerprintSHA(res) != pr.FingerprintSHA {
					return out, fmt.Errorf("farm: result for %s does not verify against its fingerprint",
						pointLabel(pr.Point))
				}
				res.Attempts = pr.Attempts
				out.Completed++
				if pr.Restored {
					out.Restored++
				}
				if onResult != nil {
					onResult(pr.Point, res, pr.Restored)
				}
			default:
				out.Failures = append(out.Failures, scalablebulk.PointFailure{
					Point: pr.Point, Err: fmt.Errorf("%s: %s", pr.Status, pr.Error),
				})
			}
		}
		if st.Terminal() {
			return out, nil
		}
		select {
		case <-ctx.Done():
			out.Aborted = true
			return out, nil
		case <-time.After(poll):
		}
	}
}
