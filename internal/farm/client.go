package farm

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	scalablebulk "scalablebulk"
)

// ErrLeaseGone reports a heartbeat or delivery against a lease the server
// no longer holds: the lease expired (the worker looked dead) or the point
// resolved elsewhere. The worker's correct response is to abandon the run
// silently — the server has already re-queued or finished the point.
var ErrLeaseGone = errors.New("farm: lease gone")

// ErrDraining reports a lease request against a draining server.
var ErrDraining = errors.New("farm: server is draining")

// Client speaks the farm wire protocol. Transport-level failures —
// connection refused, reset, timeout — are retried with backoff until the
// context dies, which is what lets a thin client or worker ride through a
// server restart: the server comes back, replays its journal, and the
// retried call lands on the recovered state.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8356".
	Base string
	// HTTP is the underlying client; nil selects a default with sane
	// timeouts. Tests wire a FaultTransport here. SSE streams reuse only
	// its Transport — a whole-request Timeout would kill a long stream.
	HTTP *http.Client
	// Corr is the correlation ID stamped on every request
	// (X-Correlation-ID). RunSweep mints one (NewCorrID) when empty.
	Corr string
	// NoSSE forces RunSweep onto the cursor-polling path.
	NoSSE bool
	// SSEIdle bounds how long an SSE stream may go silent (no events, no
	// keepalives) before the client abandons the connection and redials.
	// 0 selects 30s.
	SSEIdle time.Duration
	// Log, when non-nil, receives structured progress lines (submission,
	// per-point completion, transport fallbacks) carrying Corr.
	Log *slog.Logger
	// RetryInterval paces transport-retry backoff (0 selects 250ms);
	// MaxRetryWait bounds it (0 selects 5s).
	RetryInterval time.Duration
	MaxRetryWait  time.Duration
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// sseHTTP is the streaming client: same transport (so fault injection and
// test wiring apply), no overall timeout (a healthy stream lives for the
// whole sweep — the idle watchdog bounds a dead one instead).
func (c *Client) sseHTTP() *http.Client {
	if c.HTTP != nil {
		return &http.Client{Transport: c.HTTP.Transport}
	}
	return &http.Client{}
}

func (c *Client) logInfo(msg string, args ...any) {
	if c.Log != nil {
		c.Log.Info(msg, append([]any{"corr", c.Corr}, args...)...)
	}
}

// httpError is a non-2xx response: the server answered, so the transport
// works and retrying the same request is pointless unless the status says
// otherwise.
type httpError struct {
	Status int
	Body   string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("farm: server returned %d: %s", e.Status, e.Body)
}

// do POSTs (or GETs when body is nil) path with a JSON body and decodes the
// JSON response into out, retrying transport errors with capped backoff
// until ctx is done.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return err
		}
	}
	interval := c.RetryInterval
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	maxWait := c.MaxRetryWait
	if maxWait <= 0 {
		maxWait = 5 * time.Second
	}
	for {
		req, err := http.NewRequestWithContext(ctx, method, c.Base+path, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.Corr != "" {
			req.Header.Set(CorrHeader, c.Corr)
		}
		resp, err := c.http().Do(req)
		if err == nil {
			data, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil {
				if resp.StatusCode/100 != 2 {
					return &httpError{Status: resp.StatusCode,
						Body: string(bytes.TrimSpace(data))}
				}
				if out == nil {
					return nil
				}
				return json.Unmarshal(data, out)
			}
			err = rerr
		}
		// Transport failure: the server may be restarting. Back off and
		// retry until the caller gives up.
		select {
		case <-ctx.Done():
			return fmt.Errorf("farm: %s %s: %w (last transport error: %v)",
				method, path, ctx.Err(), err)
		case <-time.After(interval):
		}
		interval *= 2
		if interval > maxWait {
			interval = maxWait
		}
	}
}

// Submit registers spec with the server (idempotent: resubmitting an
// identical spec attaches to the live sweep).
func (c *Client) Submit(ctx context.Context, spec *SweepSpec) (*SubmitResponse, error) {
	var resp SubmitResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sweep", spec, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Status fetches sweep status plus the result stream after cursor.
func (c *Client) Status(ctx context.Context, sweepID string, after int) (*SweepStatus, error) {
	var st SweepStatus
	q := url.Values{"id": {sweepID}, "after": {strconv.Itoa(after)}}
	if err := c.do(ctx, http.MethodGet, "/v1/sweep?"+q.Encode(), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Progress fetches the server's live per-sweep aggregation.
func (c *Client) Progress(ctx context.Context, sweepID string) (*SweepProgress, error) {
	var p SweepProgress
	if err := c.do(ctx, http.MethodGet, "/api/v1/sweeps/"+sweepID+"/progress", nil, &p); err != nil {
		return nil, err
	}
	return &p, nil
}

// FarmStatus fetches the whole-farm view (sbtop's endpoint) with an event
// tail of up to events entries.
func (c *Client) FarmStatus(ctx context.Context, events int) (*FarmStatus, error) {
	var fs FarmStatus
	q := url.Values{"events": {strconv.Itoa(events)}}
	if err := c.do(ctx, http.MethodGet, "/api/v1/farm?"+q.Encode(), nil, &fs); err != nil {
		return nil, err
	}
	return &fs, nil
}

// Lease asks for work. A nil job with nil error means nothing is runnable
// right now (retry after the hinted interval); ErrDraining means stop.
func (c *Client) Lease(ctx context.Context, worker string) (*Job, time.Duration, error) {
	var resp leaseResponse
	if err := c.do(ctx, http.MethodPost, "/v1/lease", leaseRequest{Worker: worker}, &resp); err != nil {
		return nil, 0, err
	}
	if resp.Draining {
		return nil, 0, ErrDraining
	}
	retry := time.Duration(resp.RetryMS) * time.Millisecond
	return resp.Job, retry, nil
}

// Heartbeat renews a lease; ErrLeaseGone means abandon the run.
func (c *Client) Heartbeat(ctx context.Context, job *Job, worker string) error {
	err := c.do(ctx, http.MethodPost, "/v1/heartbeat", heartbeatRequest{
		SweepID: job.SweepID, LeaseID: job.LeaseID, Worker: worker,
	}, nil)
	var he *httpError
	if errors.As(err, &he) && he.Status == http.StatusGone {
		return ErrLeaseGone
	}
	return err
}

// Result delivers a completed point.
func (c *Client) Result(ctx context.Context, job *Job, worker string, res *scalablebulk.Result, wall time.Duration) error {
	data, err := scalablebulk.MarshalResult(res)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, "/v1/result", resultRequest{
		SweepID: job.SweepID, LeaseID: job.LeaseID, Worker: worker, Corr: job.Corr,
		PointID: job.PointID, Point: job.Point, ConfigHash: job.ConfigHash,
		FingerprintSHA: scalablebulk.FingerprintSHA(res),
		Result:         data, Attempts: res.Attempts,
		WallMS: float64(wall.Microseconds()) / 1000,
	}, nil)
}

// Fail reports a failed (or crashed) run.
func (c *Client) Fail(ctx context.Context, job *Job, worker, msg string, crash *scalablebulk.CrashReport) error {
	return c.do(ctx, http.MethodPost, "/v1/fail", failRequest{
		SweepID: job.SweepID, LeaseID: job.LeaseID, Worker: worker, Corr: job.Corr,
		PointID: job.PointID, Point: job.Point, Error: msg, Crash: crash,
	}, nil)
}

// sweepRun accumulates one RunSweep's state. Both delivery paths — SSE and
// cursor polling — funnel every PointResult through apply, which verifies,
// dedupes by PointID, and updates the outcome exactly once per point; that
// shared idempotent sink is why the two paths (and any mid-run switch
// between them) converge to identical outcomes.
type sweepRun struct {
	c        *Client
	out      *scalablebulk.SweepOutcome
	seen     map[int]bool
	onResult func(p Point, res *scalablebulk.Result, restored bool)
}

// apply folds one terminal point into the outcome (idempotently).
func (r *sweepRun) apply(pr PointResult) error {
	if r.seen[pr.PointID] {
		return nil
	}
	r.seen[pr.PointID] = true
	switch pr.Status {
	case StatusDone:
		res, err := scalablebulk.UnmarshalResult(pr.Result)
		if err != nil {
			return fmt.Errorf("farm: undecodable result for %s: %w",
				pointLabel(pr.Point), err)
		}
		if scalablebulk.FingerprintSHA(res) != pr.FingerprintSHA {
			return fmt.Errorf("farm: result for %s does not verify against its fingerprint",
				pointLabel(pr.Point))
		}
		res.Attempts = pr.Attempts
		r.out.Completed++
		if pr.Restored {
			r.out.Restored++
		}
		r.c.logInfo("point_done", "point", pointLabel(pr.Point),
			"point_id", pr.PointID, "restored", pr.Restored)
		if r.onResult != nil {
			r.onResult(pr.Point, res, pr.Restored)
		}
	default:
		r.c.logInfo("point_failed", "point", pointLabel(pr.Point),
			"point_id", pr.PointID, "status", pr.Status, "error", pr.Error)
		r.out.Failures = append(r.out.Failures, scalablebulk.PointFailure{
			Point: pr.Point, Err: fmt.Errorf("%s: %s", pr.Status, pr.Error),
		})
	}
	return nil
}

// terminal reports whether every point has been applied.
func (r *sweepRun) terminal() bool {
	return r.out.Completed+len(r.out.Failures) >= r.out.Points
}

// RunSweep is the thin-client driver the CLIs' -server mode uses: submit
// the spec, then consume the result stream until every point is terminal,
// returning a SweepOutcome shaped exactly like Session.SweepContext's.
//
// The stream arrives over SSE (GET /api/v1/sweeps/{id}/events) with
// Last-Event-ID resume; when the transport proves SSE-hostile — repeated
// silent streams, a proxy that strips the content type — the client falls
// back permanently to cursor polling. Either way every result passes the
// same verify-dedupe-apply sink, so the two paths converge byte-identically.
// onResult, when non-nil, observes each completed point once, with the
// restored flag distinguishing journal hits from fresh runs.
func (c *Client) RunSweep(ctx context.Context, spec *SweepSpec, onResult func(p Point, res *scalablebulk.Result, restored bool)) (*scalablebulk.SweepOutcome, error) {
	if c.Corr == "" {
		c.Corr = NewCorrID()
	}
	sub, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	c.logInfo("sweep_submitted", "sweep", sub.SweepID,
		"points", sub.Points, "restored", sub.Restored)
	run := &sweepRun{
		c:        c,
		out:      &scalablebulk.SweepOutcome{Points: sub.Points},
		seen:     make(map[int]bool, sub.Points),
		onResult: onResult,
	}
	if !c.NoSSE {
		done, err := c.runSweepSSE(ctx, spec, sub.SweepID, run)
		if done || err != nil {
			return run.out, err
		}
		c.logInfo("sse_fallback", "sweep", sub.SweepID,
			"detail", "transport breaks SSE; switching to cursor polling")
	}
	return c.runSweepPoll(ctx, spec, sub.SweepID, run)
}

// sseFallbackAfter is how many consecutive connection attempts may die
// without delivering a single event before the client declares the
// transport SSE-hostile and falls back to polling.
const sseFallbackAfter = 5

// runSweepSSE consumes the sweep over SSE. Returns done=true when the sweep
// reached terminal (or ctx died — run.out is marked aborted); done=false
// with nil error means SSE is unusable here and the caller should poll.
func (c *Client) runSweepSSE(ctx context.Context, spec *SweepSpec, sweepID string, run *sweepRun) (done bool, err error) {
	idle := c.SSEIdle
	if idle <= 0 {
		idle = 30 * time.Second
	}
	backoff := c.RetryInterval
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	var lastID uint64
	silentConnects := 0
	for {
		if ctx.Err() != nil {
			run.out.Aborted = true
			return true, nil
		}
		gotEvent, fatal, err := c.sseAttempt(ctx, sweepID, lastID, idle, run, &lastID)
		if run.terminal() {
			return true, nil
		}
		if fatal != nil {
			return true, fatal
		}
		if err != nil {
			var he *httpError
			if errors.As(err, &he) {
				if he.Status == http.StatusNotFound {
					// Server restarted and lost the sweep: resubmit
					// (idempotent; journaled points restore) and rewind.
					if _, serr := c.Submit(ctx, spec); serr != nil {
						return true, serr
					}
					lastID = 0
					continue
				}
				// The server (or something impersonating it) answered
				// non-2xx: SSE is not going to work on this path.
				return false, nil
			}
		}
		if gotEvent {
			silentConnects = 0
		} else {
			silentConnects++
			if silentConnects >= sseFallbackAfter {
				return false, nil
			}
		}
		select {
		case <-ctx.Done():
			run.out.Aborted = true
			return true, nil
		case <-time.After(backoff):
		}
	}
}

// sseAttempt runs one SSE connection until the stream ends, errors, goes
// idle past the watchdog, or the sweep finishes. gotEvent reports whether
// at least one event arrived; fatal carries unrecoverable errors (divergent
// fingerprints, undecodable results).
func (c *Client) sseAttempt(ctx context.Context, sweepID string, after uint64, idle time.Duration, run *sweepRun, lastID *uint64) (gotEvent bool, fatal, connErr error) {
	connCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(connCtx, http.MethodGet,
		c.Base+"/api/v1/sweeps/"+sweepID+"/events", nil)
	if err != nil {
		return false, err, nil
	}
	req.Header.Set("Accept", "text/event-stream")
	if after > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(after, 10))
	}
	if c.Corr != "" {
		req.Header.Set(CorrHeader, c.Corr)
	}

	// Idle watchdog: a stream that goes silent — a transport that buffered
	// the response, a half-dead connection — is cut and redialed. Keepalive
	// pings reset it, so a healthy-but-quiet farm is not cut.
	watchdog := time.AfterFunc(idle, cancel)
	defer watchdog.Stop()

	resp, err := c.sseHTTP().Do(req)
	if err != nil {
		return false, nil, err
	}
	defer func() {
		// Cancel first: the stream may still be live (early terminal exit),
		// and a canceled connection tears down instead of lingering.
		cancel()
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return false, nil, &httpError{Status: resp.StatusCode,
			Body: string(bytes.TrimSpace(body))}
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		// A proxy rewrote the stream into something else: poll instead.
		return false, nil, &httpError{Status: resp.StatusCode, Body: "not an event stream: " + ct}
	}

	rd := newSSEReader(bufio.NewReader(resp.Body), func() { watchdog.Reset(idle) })
	for {
		ev, err := rd.next()
		if err != nil {
			return gotEvent, nil, err
		}
		gotEvent = true
		if ev.ID != "" {
			if id, perr := strconv.ParseUint(ev.ID, 10, 64); perr == nil {
				*lastID = id
			}
		}
		switch ev.Type {
		case sseResult:
			var pr PointResult
			if err := json.Unmarshal(ev.Data, &pr); err != nil {
				return gotEvent, fmt.Errorf("farm: undecodable SSE result: %w", err), nil
			}
			if err := run.apply(pr); err != nil {
				return gotEvent, err, nil
			}
		case sseSnapshot:
			var st SweepStatus
			if err := json.Unmarshal(ev.Data, &st); err != nil {
				return gotEvent, fmt.Errorf("farm: undecodable SSE snapshot: %w", err), nil
			}
			for _, pr := range st.Results {
				if err := run.apply(pr); err != nil {
					return gotEvent, err, nil
				}
			}
		case sseEnd:
			if !run.terminal() {
				// The server says terminal but we missed results (should be
				// impossible — end follows the drained stream). Resync via
				// the polling path rather than trust a broken stream.
				return gotEvent, nil, fmt.Errorf("farm: SSE end with %d/%d points applied",
					run.out.Completed+len(run.out.Failures), run.out.Points)
			}
			return gotEvent, nil, nil
		default:
			// farm/progress events are telemetry here; they also reset the
			// watchdog via onActivity.
		}
		if run.terminal() {
			return gotEvent, nil, nil
		}
	}
}

// runSweepPoll is the cursor-polling driver (and the SSE fallback). On
// reconnect (any successful resubmission after a transport gap) the cursor
// resets to zero and results dedupe by point — the stream is append-only, so
// nothing is lost or double-counted.
func (c *Client) runSweepPoll(ctx context.Context, spec *SweepSpec, sweepID string, run *sweepRun) (*scalablebulk.SweepOutcome, error) {
	cursor := 0
	poll := c.RetryInterval
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, sweepID, cursor)
		if err != nil {
			var he *httpError
			if errors.As(err, &he) && he.Status == http.StatusNotFound {
				// The server restarted and lost the in-memory sweep:
				// resubmit (idempotent — journaled points restore) and
				// rewind the cursor; seen dedupes replayed results.
				if _, err := c.Submit(ctx, spec); err != nil {
					return run.out, err
				}
				cursor = 0
				continue
			}
			if ctx.Err() != nil {
				run.out.Aborted = true
				return run.out, nil
			}
			return run.out, err
		}
		cursor = st.NextCursor
		for _, pr := range st.Results {
			if err := run.apply(pr); err != nil {
				return run.out, err
			}
		}
		if st.Terminal() {
			return run.out, nil
		}
		select {
		case <-ctx.Done():
			run.out.Aborted = true
			return run.out, nil
		case <-time.After(poll):
		}
	}
}
