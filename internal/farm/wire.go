package farm

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	scalablebulk "scalablebulk"
	"scalablebulk/internal/event"
	"scalablebulk/internal/fault"
	"scalablebulk/internal/system"
)

// Point aliases the root sweep point so farm wire types and Session-side
// thin clients speak the same identity.
type Point = scalablebulk.Point

// Scaling names for SweepSpec.Scaling.
const (
	// ScalingStrong divides the Session's fixed total work budget
	// (64×ChunksPerCore chunks) across the cores of each point — the
	// strong-scaling semantics every figure sweep uses.
	ScalingStrong = "strong"
	// ScalingFixed gives every point ChunksPerCore chunks per core
	// verbatim — sbsim's literal semantics.
	ScalingFixed = "fixed"
)

// SweepSpec is the wire description of one sweep: every knob that feeds the
// canonical config of its points, plus the point list itself. Two specs that
// marshal identically have the same ID, which makes submission idempotent —
// a reconnecting client resubmits and the server recognizes the sweep it
// already holds.
type SweepSpec struct {
	// ChunksPerCore sizes the work budget (interpreted per Scaling);
	// ≤0 selects the Session default of 64.
	ChunksPerCore int `json:"chunks_per_core,omitempty"`
	// Scaling is ScalingStrong (default) or ScalingFixed.
	Scaling string `json:"scaling,omitempty"`
	// Seed is the base PRNG seed shared by every point.
	Seed int64 `json:"seed,omitempty"`
	// Workload optionally overrides the chunk-stream source by registry
	// spec (Config.Workload) for points whose App is an application model.
	Workload string `json:"workload,omitempty"`
	// Faults names a fault-injection profile ("", "off", "none" disable).
	Faults string `json:"faults,omitempty"`
	// FaultSeed seeds the injector; zero reuses Seed.
	FaultSeed int64 `json:"fault_seed,omitempty"`
	// MaxCycles overrides the deadlock-guard budget when nonzero.
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// RunTimeoutMS bounds each attempt's wall-clock time when nonzero.
	RunTimeoutMS int64 `json:"run_timeout_ms,omitempty"`
	// Retries caps RunWithRetry attempts per lease (≤0 selects the
	// default policy's 3).
	Retries int `json:"retries,omitempty"`
	// Check wires the online invariant checker into every run.
	Check bool `json:"check,omitempty"`
	// Points is the sweep's point list, in submission order.
	Points []Point `json:"points"`
}

// ID is the sweep's identity: the SHA-256 of the spec's canonical JSON,
// truncated to 16 hex characters. Identical specs — same knobs, same points
// in the same order — collapse to the same sweep on resubmission.
func (s *SweepSpec) ID() string {
	data, _ := json.Marshal(s)
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:8])
}

// Validate rejects a spec whose points could not run: unknown protocols,
// unresolvable app labels, unknown fault profiles, or a bad scaling name.
// Validation happens server-side at submit so a typo fails the POST, not a
// worker attempt minutes later.
func (s *SweepSpec) Validate() error {
	if len(s.Points) == 0 {
		return fmt.Errorf("farm: sweep spec has no points")
	}
	switch s.Scaling {
	case "", ScalingStrong, ScalingFixed:
	default:
		return fmt.Errorf("farm: unknown scaling %q (want %q or %q)",
			s.Scaling, ScalingStrong, ScalingFixed)
	}
	if _, err := fault.ByName(s.Faults); err != nil {
		return fmt.Errorf("farm: %w", err)
	}
	for _, p := range s.Points {
		if !scalablebulk.IsProtocol(p.Protocol) {
			return fmt.Errorf("farm: point %s/%s/%d: unknown protocol %q",
				p.App, p.Protocol, p.Cores, p.Protocol)
		}
		if p.Cores < 1 {
			return fmt.Errorf("farm: point %s/%s/%d: cores must be ≥ 1",
				p.App, p.Protocol, p.Cores)
		}
		cfg := s.Config(p)
		if _, err := scalablebulk.ResolvePointProfile(p.App, &cfg); err != nil {
			return fmt.Errorf("farm: point %s/%s/%d: %w", p.App, p.Protocol, p.Cores, err)
		}
	}
	return nil
}

// Config materializes the exact Config a point runs under — the same
// derivation the in-process Session uses, so a farm sweep's ConfigHash (and
// therefore its journal keys and ResultFingerprints) is byte-identical to a
// local SweepContext over the same spec.
func (s *SweepSpec) Config(p Point) scalablebulk.Config {
	var cfg scalablebulk.Config
	if s.Scaling == ScalingFixed {
		cfg = scalablebulk.DefaultConfig(p.Cores, p.Protocol)
		cfg.Seed = s.Seed
		if s.ChunksPerCore > 0 {
			cfg.ChunksPerCore = s.ChunksPerCore
		}
	} else {
		cpc := s.ChunksPerCore
		if cpc <= 0 {
			cpc = 64
		}
		cfg = scalablebulk.SweepPointConfig(p, cpc, s.Seed)
	}
	if s.Workload != "" {
		cfg.Workload = s.Workload
	}
	if s.MaxCycles > 0 {
		cfg.MaxCycles = event.Time(s.MaxCycles)
	}
	if s.RunTimeoutMS > 0 {
		cfg.RunTimeout = time.Duration(s.RunTimeoutMS) * time.Millisecond
	}
	if prof, err := fault.ByName(s.Faults); err == nil && prof != nil {
		cfg.Faults = prof
		cfg.FaultSeed = s.FaultSeed
	}
	cfg.Check = s.Check
	return cfg
}

// Resolve returns the profile and config for one point, with App resolved
// through the same application/workload-source registries the Session uses.
func (s *SweepSpec) Resolve(p Point) (scalablebulk.Profile, scalablebulk.Config, error) {
	cfg := s.Config(p)
	prof, err := scalablebulk.ResolvePointProfile(p.App, &cfg)
	return prof, cfg, err
}

// RetryPolicy is the per-attempt retry policy workers apply inside one
// lease, derived from the spec's Retries knob.
func (s *SweepSpec) RetryPolicy() scalablebulk.RetryPolicy {
	pol := scalablebulk.DefaultRetryPolicy()
	if s.Retries > 0 {
		pol.MaxAttempts = s.Retries
	}
	return pol
}

// SubmitResponse answers POST /v1/sweep.
type SubmitResponse struct {
	SweepID string `json:"sweep_id"`
	// Points is the sweep's total point count.
	Points int `json:"points"`
	// Restored counts points satisfied immediately from the server's
	// journal (dedup across sweeps and across server restarts).
	Restored int `json:"restored"`
	// Existing is true when an identical spec was already submitted; the
	// resubmission attached to the live sweep instead of starting over.
	Existing bool `json:"existing,omitempty"`
}

// Job is one granted lease: the point to run, the spec it belongs to, the
// server's config hash for version-skew detection, and the lease terms.
type Job struct {
	SweepID string    `json:"sweep_id"`
	LeaseID string    `json:"lease_id"`
	PointID int       `json:"point_id"` // index into the spec's Points
	Point   Point     `json:"point"`
	Spec    SweepSpec `json:"spec"`
	// Corr is the sweep's correlation ID (minted by the submitting client);
	// the worker threads it through its logs, the result/fail reports and
	// any crash bundle, so one grep follows the point across processes.
	Corr string `json:"corr,omitempty"`
	// ConfigHash is the server's hash of the point's config. A worker
	// whose binary derives a different hash must refuse the job — running
	// it would journal a result under a key the server can never match.
	ConfigHash string `json:"config_hash"`
	// TTLMS is the lease duration; the worker heartbeats well inside it.
	TTLMS int64 `json:"ttl_ms"`
	// Attempt is 1 for the first lease of a point, incrementing on every
	// re-queue after an expiry or failure.
	Attempt int `json:"attempt"`
}

type leaseRequest struct {
	Worker string `json:"worker"`
}

type leaseResponse struct {
	// Job is nil when no work is available.
	Job *Job `json:"job,omitempty"`
	// Draining tells workers the server is shutting down: stop polling.
	Draining bool `json:"draining,omitempty"`
	// RetryMS hints how long to wait before polling again.
	RetryMS int64 `json:"retry_ms,omitempty"`
}

type heartbeatRequest struct {
	SweepID string `json:"sweep_id"`
	LeaseID string `json:"lease_id"`
	Worker  string `json:"worker"`
}

type resultRequest struct {
	SweepID    string `json:"sweep_id"`
	LeaseID    string `json:"lease_id,omitempty"` // empty for orphan results
	Worker     string `json:"worker"`
	Corr       string `json:"corr,omitempty"`
	PointID    int    `json:"point_id"`
	Point      Point  `json:"point"`
	ConfigHash string `json:"config_hash"`
	// FingerprintSHA is the worker's digest of the result fingerprint; the
	// server re-derives it from Result and refuses a mismatch.
	FingerprintSHA string              `json:"fingerprint_sha256"`
	Result         json.RawMessage     `json:"result"` // MarshalResult bytes
	Attempts       []system.RunAttempt `json:"attempts,omitempty"`
	WallMS         float64             `json:"wall_ms,omitempty"`
}

type failRequest struct {
	SweepID string `json:"sweep_id"`
	LeaseID string `json:"lease_id"`
	Worker  string `json:"worker"`
	Corr    string `json:"corr,omitempty"`
	PointID int    `json:"point_id"`
	Point   Point  `json:"point"`
	Error   string `json:"error"`
	// Crash carries the crash bundle when the run panicked; a crashing
	// point counts toward poisoning exactly like a lease-expiry death.
	Crash *scalablebulk.CrashReport `json:"crash,omitempty"`
}

// Point terminal states reported in SweepStatus results.
const (
	StatusDone     = "done"
	StatusFailed   = "failed"   // exhausted the retry budget with run errors
	StatusPoisoned = "poisoned" // killed PoisonAfter distinct workers
)

// PointResult is one terminal point in a sweep's completion-ordered result
// stream.
type PointResult struct {
	PointID        int                 `json:"point_id"`
	Point          Point               `json:"point"`
	Status         string              `json:"status"`
	ConfigHash     string              `json:"config_hash"`
	FingerprintSHA string              `json:"fingerprint_sha256,omitempty"`
	Result         json.RawMessage     `json:"result,omitempty"`
	Attempts       []system.RunAttempt `json:"attempts,omitempty"`
	Error          string              `json:"error,omitempty"`
	// Restored marks a point satisfied from the journal without a run.
	Restored bool `json:"restored,omitempty"`
}

// SweepStatus answers GET /v1/sweep: aggregate counts plus the result
// stream after the client's cursor. A client that reconnects resets its
// cursor to zero and dedupes by PointID — results are append-only. The same
// shape is the payload of the SSE "snapshot" event, where Results always
// holds the full stream.
type SweepStatus struct {
	SweepID  string `json:"sweep_id"`
	Corr     string `json:"corr,omitempty"`
	Total    int    `json:"total"`
	Pending  int    `json:"pending"`
	Leased   int    `json:"leased"`
	Done     int    `json:"done"`
	Failed   int    `json:"failed"`
	Poisoned int    `json:"poisoned"`
	Draining bool   `json:"draining,omitempty"`
	// Results holds the terminal points from the request's cursor onward;
	// NextCursor is the cursor to pass next time.
	Results    []PointResult `json:"results,omitempty"`
	NextCursor int           `json:"next_cursor"`
	// Progress is the server's live aggregation for this sweep (rates,
	// histograms, ETA).
	Progress *SweepProgress `json:"progress,omitempty"`
}

// Terminal reports whether every point has reached a terminal state.
func (s *SweepStatus) Terminal() bool {
	return s.Done+s.Failed+s.Poisoned >= s.Total
}

// Dist is a small self-describing distribution: fixed histogram buckets
// (Counts has len(Bounds)+1 entries, the last an overflow bucket) plus exact
// count/sum/min/max, computed server-side from live state.
type Dist struct {
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"counts,omitempty"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min,omitempty"`
	Max    float64   `json:"max,omitempty"`
}

// Mean returns Sum/Count (0 when empty).
func (d Dist) Mean() float64 {
	if d.Count == 0 {
		return 0
	}
	return d.Sum / float64(d.Count)
}

// SweepProgress is the server-side per-sweep aggregation exposed over
// GET /api/v1/sweeps/{id}/progress, folded into SweepStatus, and streamed as
// SSE "progress" events: state counts, throughput, live lease ages, the
// requeue picture and an ETA.
type SweepProgress struct {
	SweepID  string `json:"sweep_id"`
	Corr     string `json:"corr,omitempty"`
	Total    int    `json:"total"`
	Queued   int    `json:"queued"`
	Leased   int    `json:"leased"`
	Done     int    `json:"done"`
	Failed   int    `json:"failed"`
	Poisoned int    `json:"poisoned"`
	// Restored counts Done points satisfied from the journal without a run.
	Restored int `json:"restored"`
	// PointsPerSec is fresh (non-restored) completions over the sweep's
	// lifetime; ETAMS extrapolates the remaining points at that rate
	// (-1 while the rate is still unknown).
	PointsPerSec float64 `json:"points_per_sec"`
	ElapsedMS    int64   `json:"elapsed_ms"`
	ETAMS        int64   `json:"eta_ms"`
	// Requeues is the total number of re-queues (grants beyond each point's
	// first) so far; Attempts distributes lease grants across points.
	Requeues int  `json:"requeues"`
	Attempts Dist `json:"attempts"`
	// LeaseAgeMS distributes the ages of the currently live leases.
	LeaseAgeMS Dist `json:"lease_age_ms"`
	// Workers counts distinct workers currently holding leases.
	Workers  int  `json:"workers"`
	Terminal bool `json:"terminal"`
}

// WorkerStatus is one worker's row in FarmStatus, aggregated from every
// request the server has seen it make.
type WorkerStatus struct {
	ID string `json:"id"`
	// IdleMS is how long ago the worker last contacted the server.
	IdleMS int64 `json:"idle_ms"`
	// Leases counts the live leases it holds right now.
	Leases  int    `json:"leases"`
	Done    uint64 `json:"done"`
	Failed  uint64 `json:"failed"`
	Crashed uint64 `json:"crashed"`
}

// LeaseStatus is one live lease in FarmStatus.
type LeaseStatus struct {
	Sweep   string `json:"sweep"`
	Lease   string `json:"lease"`
	Worker  string `json:"worker"`
	PointID int    `json:"point_id"`
	Point   string `json:"point"`
	Corr    string `json:"corr,omitempty"`
	Attempt int    `json:"attempt"`
	AgeMS   int64  `json:"age_ms"`
	TTLMS   int64  `json:"ttl_ms"`
}

// PoisonStatus is one quarantined point in FarmStatus.
type PoisonStatus struct {
	Sweep   string `json:"sweep"`
	PointID int    `json:"point_id"`
	Point   string `json:"point"`
	Corr    string `json:"corr,omitempty"`
	Error   string `json:"error,omitempty"`
}

// FarmStatus answers GET /api/v1/farm: the whole server at a glance —
// per-sweep progress, the worker pool, live leases, the poison list and an
// event tail. This is sbtop's wire format.
type FarmStatus struct {
	Now      string          `json:"now"`
	Seq      uint64          `json:"seq"`
	Draining bool            `json:"draining,omitempty"`
	Sweeps   []SweepProgress `json:"sweeps,omitempty"`
	Workers  []WorkerStatus  `json:"workers,omitempty"`
	Leases   []LeaseStatus   `json:"leases,omitempty"`
	Poisoned []PoisonStatus  `json:"poisoned,omitempty"`
	Events   []Event         `json:"events,omitempty"`
}
