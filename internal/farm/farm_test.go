package farm

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	scalablebulk "scalablebulk"
	"scalablebulk/internal/metrics"
)

// testSpec is a small but real sweep: two apps × one protocol × two core
// counts, strong scaling, tiny work budget.
func testSpec() *SweepSpec {
	return &SweepSpec{
		ChunksPerCore: 1,
		Seed:          42,
		Points: []Point{
			{App: "Radix", Protocol: "ScalableBulk", Cores: 8},
			{App: "Radix", Protocol: "ScalableBulk", Cores: 16},
			{App: "FFT", Protocol: "TCC", Cores: 8},
		},
	}
}

// inProcessFingerprints runs the spec through Session.SweepContext — the
// reference the farm must reproduce byte-identically.
func inProcessFingerprints(t *testing.T, spec *SweepSpec) map[Point]string {
	t.Helper()
	s := scalablebulk.NewSession(spec.ChunksPerCore, spec.Seed, nil)
	out := s.SweepContext(context.Background(), spec.Points, 2)
	if len(out.Failures) > 0 || out.Aborted {
		t.Fatalf("reference sweep failed: %+v", out)
	}
	fps := map[Point]string{}
	for _, p := range spec.Points {
		res, err := s.Result(p.App, p.Protocol, p.Cores)
		if err != nil {
			t.Fatal(err)
		}
		fps[p] = scalablebulk.FingerprintSHA(res)
	}
	return fps
}

// startServer binds a farm server (plus journal at journalPath when set) on
// addr ("" picks a port) and returns its base URL and a shutdown func that
// also closes the journal.
func startServer(t *testing.T, opts Options, journalPath, addr string) (string, *Server, func()) {
	t.Helper()
	if journalPath != "" {
		j, err := scalablebulk.OpenJournal(journalPath)
		if err != nil {
			t.Fatal(err)
		}
		opts.Journal = j
	}
	srv := NewServer(opts)
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	var once sync.Once
	stop := func() {
		once.Do(func() {
			hs.Close()
			if opts.Journal != nil {
				opts.Journal.Close()
			}
		})
	}
	return "http://" + ln.Addr().String(), srv, stop
}

func quickOpts() Options {
	return Options{
		LeaseTTL:    500 * time.Millisecond,
		PoisonAfter: 3,
		MaxAttempts: 5,
		Requeue:     requeuePolicy{Backoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond, Jitter: 0.5},
		Seed:        1,
	}
}

func startWorker(ctx context.Context, c *Client, id string, onPoint func(string, Point)) *sync.WaitGroup {
	var wg sync.WaitGroup
	wg.Add(1)
	w := &Worker{Client: c, ID: id, Poll: 20 * time.Millisecond, OnPoint: onPoint}
	go func() {
		defer wg.Done()
		w.Run(ctx)
	}()
	return &wg
}

func fastClient(base string) *Client {
	return &Client{Base: base, RetryInterval: 20 * time.Millisecond, MaxRetryWait: 200 * time.Millisecond}
}

// TestFarmSweepMatchesInProcess: the headline determinism contract — a farm
// sweep over live workers yields byte-identical ResultFingerprints to the
// same spec swept in-process.
func TestFarmSweepMatchesInProcess(t *testing.T) {
	spec := testSpec()
	want := inProcessFingerprints(t, spec)

	base, _, stop := startServer(t, quickOpts(), filepath.Join(t.TempDir(), "farm.jsonl"), "")
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	wg := startWorker(wctx, fastClient(base), "w1", nil)
	defer wg.Wait()

	got := map[Point]string{}
	out, err := fastClient(base).RunSweep(ctx, spec, func(p Point, res *scalablebulk.Result, _ bool) {
		got[p] = scalablebulk.FingerprintSHA(res)
	})
	wcancel()
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed != len(spec.Points) || len(out.Failures) > 0 || out.Aborted {
		t.Fatalf("outcome: %+v", out)
	}
	for p, fp := range want {
		if got[p] != fp {
			t.Errorf("%s/%s/%d: farm fingerprint %s != in-process %s",
				p.App, p.Protocol, p.Cores, got[p], fp)
		}
	}
}

// TestWorkerKilledMidLease: a worker that takes a lease and dies (never
// heartbeats) must not lose the point — the lease expires, the point
// re-queues, a healthy worker completes it, and it completes exactly once.
func TestWorkerKilledMidLease(t *testing.T) {
	spec := testSpec()
	reg := metrics.NewRegistry()
	opts := quickOpts()
	opts.LeaseTTL = 200 * time.Millisecond
	opts.Metrics = reg
	base, _, stop := startServer(t, opts, filepath.Join(t.TempDir(), "farm.jsonl"), "")
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// "Kill" a worker mid-lease: take a lease directly and never heartbeat
	// or deliver — exactly what the server sees when a worker is SIGKILLed.
	c := fastClient(base)
	if _, err := c.Submit(ctx, spec); err != nil {
		t.Fatal(err)
	}
	job, _, err := c.Lease(ctx, "w-dead")
	if err != nil || job == nil {
		t.Fatalf("dead worker's lease: %+v, %v", job, err)
	}

	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	wg := startWorker(wctx, fastClient(base), "w-live", nil)
	defer wg.Wait()

	out, err := fastClient(base).RunSweep(ctx, spec, nil)
	wcancel()
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed != len(spec.Points) || len(out.Failures) > 0 {
		t.Fatalf("outcome after worker death: %+v", out)
	}
	if n := reg.Counter("farm_leases_expired").Value(); n < 1 {
		t.Errorf("lease expiries = %d, want ≥ 1", n)
	}
	// Exactly once: one accepted result per point, no divergent duplicates.
	if n := reg.Counter("farm_results_ok").Value(); n != uint64(len(spec.Points)) {
		t.Errorf("accepted results = %d, want %d", n, len(spec.Points))
	}
	if n := reg.Counter("farm_results_divergent").Value(); n != 0 {
		t.Errorf("divergent results = %d, want 0", n)
	}
}

// deliver runs the job's point for real and posts the result, standing in
// for a healthy worker.
func deliver(ctx context.Context, t *testing.T, c *Client, job *Job) {
	t.Helper()
	prof, cfg, err := job.Spec.Resolve(job.Point)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scalablebulk.RunContext(ctx, prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Result(ctx, job, "w-healthy", res, time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestPoisonedPointQuarantined: a point that crashes PoisonAfter distinct
// workers is quarantined with a crash bundle instead of retrying forever,
// and the rest of the sweep completes.
func TestPoisonedPointQuarantined(t *testing.T) {
	spec := testSpec()
	poisonPoint := spec.Points[1]
	crashDir := t.TempDir()
	opts := quickOpts()
	opts.PoisonAfter = 2
	opts.MaxAttempts = 2
	opts.CrashDir = crashDir
	base, _, stop := startServer(t, opts, "", "")
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	c := fastClient(base)
	if _, err := c.Submit(ctx, spec); err != nil {
		t.Fatal(err)
	}
	// Drive leases by hand: healthy deliveries for every point except the
	// poison one, which kills two distinct workers via crash reports. Every
	// lease uses a fresh worker identity — the server attributes a death to
	// the worker holding the lease.
	deaths := 0
	for i := 0; deaths < 2; i++ {
		worker := fmt.Sprintf("w-%d", i)
		job, wait, err := c.Lease(ctx, worker)
		if err != nil {
			t.Fatal(err)
		}
		if job == nil { // poison point inside its requeue backoff window
			time.Sleep(max(wait, 5*time.Millisecond))
			continue
		}
		if job.Point != poisonPoint {
			deliver(ctx, t, c, job)
			continue
		}
		deaths++
		_, cfg, err := job.Spec.Resolve(job.Point)
		if err != nil {
			t.Fatal(err)
		}
		crash := scalablebulk.NewCrashReport(job.Point, cfg, fmt.Sprintf("induced crash %d", deaths))
		if err := c.Fail(ctx, job, worker, "induced crash", crash); err != nil {
			t.Fatal(err)
		}
	}
	// Drain whatever the crash loop left pending. Once the table is empty a
	// lease comes back nil — and the quarantined point must never be among
	// the grants.
	for {
		job, _, err := c.Lease(ctx, "w-healthy")
		if err != nil {
			t.Fatal(err)
		}
		if job == nil {
			break
		}
		if job.Point == poisonPoint {
			t.Fatal("poisoned point was re-leased after quarantine")
		}
		deliver(ctx, t, c, job)
	}
	out, err := c.RunSweep(ctx, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Failures) != 1 {
		t.Fatalf("failures = %+v, want exactly the poisoned point", out.Failures)
	}
	f := out.Failures[0]
	if f.Point != poisonPoint {
		t.Errorf("failed point = %+v, want %+v", f.Point, poisonPoint)
	}
	if !strings.Contains(f.Err.Error(), "poisoned") {
		t.Errorf("failure error %q does not mention poisoning", f.Err)
	}
	if out.Completed != len(spec.Points)-1 {
		t.Errorf("completed = %d, want %d", out.Completed, len(spec.Points)-1)
	}
	// Each crash death wrote a bundle for postmortem.
	ents, err := os.ReadDir(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Errorf("crash bundles = %d, want 2", len(ents))
	}
}

// TestServerRestartResumesFromJournal: kill the server mid-sweep, restart
// it on the same journal and address, and the sweep completes with
// fingerprints byte-identical to an uninterrupted in-process run. This is
// the PR's acceptance scenario.
func TestServerRestartResumesFromJournal(t *testing.T) {
	spec := testSpec()
	want := inProcessFingerprints(t, spec)
	journal := filepath.Join(t.TempDir(), "farm.jsonl")

	base, _, stop1 := startServer(t, quickOpts(), journal, "")
	addr := strings.TrimPrefix(base, "http://")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Let exactly one point complete, then kill the server.
	firstDone := make(chan struct{}, 1)
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	var completedOnce sync.Once
	wg := startWorker(wctx, fastClient(base), "w1", nil)

	// Observe the first journaled entry by polling the file.
	go func() {
		for ctx.Err() == nil {
			if data, err := os.ReadFile(journal); err == nil && len(data) > 0 {
				completedOnce.Do(func() { close(firstDone) })
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	client := fastClient(base)
	outc := make(chan *scalablebulk.SweepOutcome, 1)
	got := map[Point]string{}
	var gotMu sync.Mutex
	go func() {
		out, err := client.RunSweep(ctx, spec, func(p Point, res *scalablebulk.Result, _ bool) {
			gotMu.Lock()
			got[p] = scalablebulk.FingerprintSHA(res)
			gotMu.Unlock()
		})
		if err != nil {
			t.Error(err)
		}
		outc <- out
	}()

	select {
	case <-firstDone:
	case <-ctx.Done():
		t.Fatal("no point completed before the kill window")
	}
	// Kill the server (journal closes, flock releases) and restart it on
	// the same address and journal. The thin client and the worker ride
	// through on transport retries; the worker's in-flight result may land
	// as an orphan and must still be accepted.
	stop1()
	base2, _, stop2 := startServer(t, quickOpts(), journal, addr)
	defer stop2()
	if base2 != base {
		t.Fatalf("restarted server bound %s, want %s", base2, base)
	}

	var out *scalablebulk.SweepOutcome
	select {
	case out = <-outc:
	case <-ctx.Done():
		t.Fatal("sweep did not finish after server restart")
	}
	wcancel()
	wg.Wait()
	if out.Completed != len(spec.Points) || len(out.Failures) > 0 || out.Aborted {
		t.Fatalf("outcome after restart: %+v", out)
	}
	gotMu.Lock()
	defer gotMu.Unlock()
	for p, fp := range want {
		if got[p] != fp {
			t.Errorf("%s/%s/%d: post-restart fingerprint %s != uninterrupted %s",
				p.App, p.Protocol, p.Cores, got[p], fp)
		}
	}
	// The journal must hold every point — the restart reused it. The second
	// server still holds the flock, so stop it before inspecting.
	stop2()
	j, err := scalablebulk.OpenJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != len(spec.Points) {
		t.Errorf("journal holds %d points, want %d", j.Len(), len(spec.Points))
	}
}

// TestRPCFaultInjectionConverges: under a hostile seeded RPC fault profile
// (drops, duplicates, delays) the sweep still completes with fingerprints
// identical to the in-process reference — the wire protocol is idempotent
// and retried end to end.
func TestRPCFaultInjectionConverges(t *testing.T) {
	spec := testSpec()
	want := inProcessFingerprints(t, spec)
	reg := metrics.NewRegistry()
	opts := quickOpts()
	opts.Metrics = reg
	base, _, stop := startServer(t, opts, "", "")
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	prof, err := RPCFaultByName("lossy", 7)
	if err != nil {
		t.Fatal(err)
	}
	faulty := func() *Client {
		return &Client{
			Base:          base,
			HTTP:          &http.Client{Transport: NewFaultTransport(nil, *prof)},
			RetryInterval: 10 * time.Millisecond,
			MaxRetryWait:  100 * time.Millisecond,
		}
	}
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	wg := startWorker(wctx, faulty(), "w1", nil)
	defer wg.Wait()

	got := map[Point]string{}
	out, err := faulty().RunSweep(ctx, spec, func(p Point, res *scalablebulk.Result, _ bool) {
		got[p] = scalablebulk.FingerprintSHA(res)
	})
	wcancel()
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed != len(spec.Points) || len(out.Failures) > 0 {
		t.Fatalf("outcome under RPC faults: %+v", out)
	}
	for p, fp := range want {
		if got[p] != fp {
			t.Errorf("%s/%s/%d: fingerprint %s != reference %s",
				p.App, p.Protocol, p.Cores, got[p], fp)
		}
	}
	if n := reg.Counter("farm_results_divergent").Value(); n != 0 {
		t.Errorf("divergent results under faults = %d, want 0", n)
	}
}

// TestDrainRejectsLeases: a draining server grants nothing and tells
// workers to stop; the drain completes once no lease is live.
func TestDrainRejectsLeases(t *testing.T) {
	spec := testSpec()
	base, srv, stop := startServer(t, quickOpts(), "", "")
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	c := fastClient(base)
	if _, err := c.Submit(ctx, spec); err != nil {
		t.Fatal(err)
	}
	drained := srv.Drain()
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("drain with no live leases did not complete")
	}
	if _, _, err := c.Lease(ctx, "w1"); !errors.Is(err, ErrDraining) {
		t.Fatalf("lease on draining server: %v, want ErrDraining", err)
	}
}

// TestOrphanResultAccepted: a result delivered for a sweep the server no
// longer knows (restart without resubmission) is verified and journaled, so
// the eventual resubmission restores it instead of re-running.
func TestOrphanResultAccepted(t *testing.T) {
	spec := testSpec()
	journal := filepath.Join(t.TempDir(), "farm.jsonl")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Run one point's simulation directly to stand in for a worker that
	// finished while its server was down.
	p := spec.Points[0]
	prof, cfg, err := spec.Resolve(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scalablebulk.RunContext(ctx, prof, cfg)
	if err != nil {
		t.Fatal(err)
	}

	base, _, stop := startServer(t, quickOpts(), journal, "")
	defer stop()
	c := fastClient(base)
	// Deliver with a fabricated sweep/lease the fresh server has never seen.
	job := &Job{SweepID: spec.ID(), LeaseID: "l-ghost", PointID: 0, Point: p,
		Spec: *spec, ConfigHash: scalablebulk.ConfigHash(cfg)}
	if err := c.Result(ctx, job, "w-ghost", res, time.Second); err != nil {
		t.Fatalf("orphan result rejected: %v", err)
	}
	// Resubmission must restore the orphaned point from the journal.
	sub, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Restored != 1 {
		t.Fatalf("restored = %d, want 1 (the orphan)", sub.Restored)
	}
}

// TestSubmitIsIdempotent: identical specs collapse to one sweep; a
// divergent result for an already-done point is refused with 409.
func TestSubmitIsIdempotent(t *testing.T) {
	spec := testSpec()
	base, _, stop := startServer(t, quickOpts(), "", "")
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	c := fastClient(base)
	s1, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if s1.SweepID != s2.SweepID || !s2.Existing {
		t.Fatalf("resubmit: %+v then %+v, want same id with Existing", s1, s2)
	}
}
