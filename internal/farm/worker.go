package farm

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	scalablebulk "scalablebulk"
)

// Worker is the farm's execution side: lease a point, run it under the
// spec's retry policy while heartbeating the lease, deliver the result (or
// the failure, with a crash report when the run panicked), repeat.
type Worker struct {
	Client *Client
	// ID names this worker to the server; it is the unit the poison
	// counter counts distinct deaths by.
	ID string
	// Parallel is the number of concurrent leases (≤0 selects 1).
	Parallel int
	// Poll paces idle polling when the server has no work (0 selects the
	// server's hint, falling back to 500ms).
	Poll time.Duration
	// OnPoint, when non-nil, observes every leased point before it runs,
	// inside the run's panic-isolation scope — the failure-mode tests use
	// it to kill workers mid-lease or inject panics that become real crash
	// bundles.
	OnPoint func(workerID string, p Point)
	// Printf, when non-nil, receives progress lines.
	Printf func(format string, args ...any)
	// Log, when non-nil, receives structured progress lines; every
	// job-scoped line carries the sweep's correlation ID.
	Log *slog.Logger
}

func (w *Worker) logf(format string, args ...any) {
	if w.Printf != nil {
		w.Printf(format, args...)
	}
}

// logJob emits one structured line about a leased job, stamped with the
// identifiers (sweep, lease, point, corr) that make the line greppable
// alongside the server's event log and crash bundles.
func (w *Worker) logJob(job *Job, msg string, args ...any) {
	if w.Log == nil {
		return
	}
	w.Log.Info(msg, append([]any{
		"worker", w.ID, "sweep", job.SweepID, "lease", job.LeaseID,
		"point", pointLabel(job.Point), "point_id", job.PointID,
		"attempt", job.Attempt, "corr", job.Corr,
	}, args...)...)
}

// Run leases and executes points until ctx is canceled or the server
// drains. Cancellation is graceful: in-flight points finish and deliver
// (the run itself is only abandoned if the server says the lease is gone).
func (w *Worker) Run(ctx context.Context) error {
	par := w.Parallel
	if par <= 0 {
		par = 1
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	defer wg.Wait()
	for {
		if ctx.Err() != nil {
			return nil
		}
		job, retry, err := w.Client.Lease(ctx, w.ID)
		if errors.Is(err, ErrDraining) {
			w.logf("worker %s: server draining, exiting", w.ID)
			return nil
		}
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		if job == nil {
			wait := w.Poll
			if wait <= 0 {
				wait = retry
			}
			if wait <= 0 {
				wait = 500 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(wait):
			}
			continue
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			return nil
		}
		wg.Add(1)
		go func(job *Job) {
			defer wg.Done()
			defer func() { <-sem }()
			w.runJob(ctx, job)
		}(job)
	}
}

// runJob executes one leased point end to end. The run is detached from the
// lease loop's cancellation — a SIGTERM stops new leases but lets this
// point finish and deliver — and is instead canceled when the server
// declares the lease gone (the point is already re-queued; finishing would
// only waste cycles).
func (w *Worker) runJob(ctx context.Context, job *Job) {
	w.logJob(job, "lease_granted")
	prof, cfg, err := job.Spec.Resolve(job.Point)
	if err != nil {
		w.failJob(job, fmt.Sprintf("resolve: %v", err), nil)
		return
	}
	if h := scalablebulk.ConfigHash(cfg); h != job.ConfigHash {
		// Version skew: this binary derives a different canonical config
		// than the server's. Running would journal under a key the server
		// can never match — refuse loudly instead.
		w.failJob(job, fmt.Sprintf(
			"config hash skew: worker derives %s, server expects %s (mismatched binaries?)",
			h, job.ConfigHash), nil)
		return
	}

	// The run outlives the lease loop's ctx (graceful drain) but dies with
	// the lease: heartbeats renew it, and a gone lease cancels the run.
	runCtx, cancelRun := context.WithCancel(context.WithoutCancel(ctx))
	defer cancelRun()
	leaseGone := false
	hbDone := make(chan struct{})
	ttl := time.Duration(job.TTLMS) * time.Millisecond
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	go func() {
		defer close(hbDone)
		tick := time.NewTicker(ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-tick.C:
			}
			hbCtx, cancel := context.WithTimeout(runCtx, ttl)
			err := w.Client.Heartbeat(hbCtx, job, w.ID)
			cancel()
			if errors.Is(err, ErrLeaseGone) {
				leaseGone = true
				cancelRun()
				return
			}
		}
	}()

	start := time.Now()
	res, runErr := w.runPoint(runCtx, job, prof, cfg)
	cancelRun()
	<-hbDone
	if leaseGone {
		// The server presumed us dead and re-queued the point; someone
		// else owns it now. Abandon silently.
		w.logf("worker %s: lease %s gone, abandoning %s", w.ID, job.LeaseID, pointLabel(job.Point))
		w.logJob(job, "lease_gone")
		return
	}
	if runErr != nil {
		var ce *scalablebulk.CrashError
		var crash *scalablebulk.CrashReport
		if errors.As(runErr, &ce) {
			crash = ce.Report
		}
		w.failJob(job, runErr.Error(), crash)
		return
	}
	// Delivery uses a fresh context: even a canceled worker delivers the
	// finished result (bounded, in case the server is gone for good).
	dctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Minute)
	defer cancel()
	if err := w.Client.Result(dctx, job, w.ID, res, time.Since(start)); err != nil {
		w.logf("worker %s: result delivery for %s failed: %v", w.ID, pointLabel(job.Point), err)
		w.logJob(job, "result_delivery_failed", "error", err.Error())
		return
	}
	w.logf("worker %s: completed %s (attempt %d)", w.ID, pointLabel(job.Point), job.Attempt)
	w.logJob(job, "completed")
}

// runPoint executes the simulation with panic isolation: a panic becomes a
// *CrashError carrying the crash report (stamped with the sweep's
// correlation ID), exactly like the in-process sweep worker's recovery.
// OnPoint runs inside this scope, so a test hook that panics produces a
// genuine crash bundle rather than killing the worker.
func (w *Worker) runPoint(ctx context.Context, job *Job, prof scalablebulk.Profile, cfg scalablebulk.Config) (res *scalablebulk.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			report := scalablebulk.NewCrashReport(job.Point, cfg, r)
			report.Corr = job.Corr
			res, err = nil, &scalablebulk.CrashError{Point: job.Point, Report: report}
		}
	}()
	if w.OnPoint != nil {
		w.OnPoint(w.ID, job.Point)
	}
	return scalablebulk.RunWithRetry(ctx, prof, cfg, job.Spec.RetryPolicy())
}

// failJob reports a failure, best-effort and bounded.
func (w *Worker) failJob(job *Job, msg string, crash *scalablebulk.CrashReport) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := w.Client.Fail(ctx, job, w.ID, msg, crash); err != nil {
		w.logf("worker %s: fail report for %s lost: %v", w.ID, pointLabel(job.Point), err)
	}
	w.logf("worker %s: failed %s: %s", w.ID, pointLabel(job.Point), msg)
	w.logJob(job, "run_failed", "error", msg, "crashed", crash != nil)
}
