package farm

import (
	"sync"
	"time"
)

// eventHub is the server's live event spine: it stamps every Event with a
// monotonic seq and wall-clock time, mirrors it to the JSONL EventLog, keeps
// a bounded in-memory ring for SSE resume (Last-Event-ID), and wakes
// subscribed streams. Subscribers never receive events over channels — they
// re-read the ring by seq, so a slow consumer can never make the hub drop or
// block; it just catches up (or takes a snapshot when the ring has already
// evicted its resume point).
type eventHub struct {
	mu    sync.Mutex
	seq   uint64
	ring  []Event // ring[i] holds seq (minSeq+i); append-only window
	cap   int
	log   *EventLog
	clock func() time.Time
	subs  map[chan struct{}]struct{}
}

func newEventHub(log *EventLog, capacity int, clock func() time.Time) *eventHub {
	if capacity <= 0 {
		capacity = 8192
	}
	if clock == nil {
		clock = time.Now
	}
	h := &eventHub{cap: capacity, log: log, clock: clock, subs: map[chan struct{}]struct{}{}}
	// Resume the sequence from the log so seqs stay unique (and totally
	// ordered) across restarts over the same file.
	h.seq = log.LastSeq()
	return h
}

// emit stamps and publishes one event, returning it with seq and time set.
func (h *eventHub) emit(e Event) Event {
	h.mu.Lock()
	h.seq++
	e.Seq = h.seq
	e.Time = h.clock().UTC().Format(time.RFC3339Nano)
	h.ring = append(h.ring, e)
	if len(h.ring) > h.cap {
		h.ring = h.ring[len(h.ring)-h.cap:]
	}
	subs := make([]chan struct{}, 0, len(h.subs))
	for ch := range h.subs {
		subs = append(subs, ch)
	}
	h.mu.Unlock()

	h.log.Emit(e) // EventLog locks itself; keep it out of the hub lock
	for _, ch := range subs {
		select {
		case ch <- struct{}{}:
		default: // already signaled; the subscriber will re-read the ring
		}
	}
	return e
}

// subscribe registers a wakeup channel (capacity 1) the hub pokes on every
// emit. unsubscribe with the returned func.
func (h *eventHub) subscribe() (chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch, func() {
		h.mu.Lock()
		delete(h.subs, ch)
		h.mu.Unlock()
	}
}

// since returns the retained events with seq > after that pass filter, plus
// gapped=true when the ring has already evicted events the caller never saw
// (its resume point predates the window) — the signal to send a snapshot
// instead of pretending the stream is contiguous.
func (h *eventHub) since(after uint64, filter func(Event) bool) (evs []Event, gapped bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	minSeq := h.seq - uint64(len(h.ring)) + 1 // seq of ring[0]; h.seq when empty
	if len(h.ring) == 0 {
		return nil, after < h.seq
	}
	if after+1 < minSeq {
		gapped = true
	}
	for i := range h.ring {
		e := h.ring[i]
		if e.Seq <= after {
			continue
		}
		if filter == nil || filter(e) {
			evs = append(evs, e)
		}
	}
	return evs, gapped
}

// last returns the newest seq issued.
func (h *eventHub) last() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seq
}

// tail returns the newest n retained events (oldest first), optionally
// filtered.
func (h *eventHub) tail(n int, filter func(Event) bool) []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	var evs []Event
	for i := len(h.ring) - 1; i >= 0 && len(evs) < n; i-- {
		if filter == nil || filter(h.ring[i]) {
			evs = append(evs, h.ring[i])
		}
	}
	for i, j := 0, len(evs)-1; i < j; i, j = i+1, j-1 {
		evs[i], evs[j] = evs[j], evs[i]
	}
	return evs
}
