package farm

import (
	"fmt"
	"math/rand"
	"time"

	"scalablebulk/internal/system"
)

// pointState is the lease table's per-point state machine:
//
//	Pending ──acquire──▶ Leased ──result──▶ Done
//	   ▲                    │
//	   └──expiry / fail─────┘   (deaths from PoisonAfter distinct
//	        (backoff)            workers, or attempts past the cap,
//	                             short-circuit to Poisoned/Failed)
type pointState int

const (
	statePending pointState = iota
	stateLeased
	stateDone
	stateFailed
	statePoisoned
)

// lease is one grant of a point to a worker, renewable by heartbeat until
// it expires or resolves.
type lease struct {
	id      string
	worker  string
	granted time.Time
	expires time.Time
}

// pointEntry tracks one sweep point through the lease state machine.
type pointEntry struct {
	id    int
	point Point
	state pointState
	// attempt counts lease grants; notBefore gates re-queue backoff;
	// requeues counts returns to Pending after a death or failure.
	attempt   int
	requeues  int
	notBefore time.Time
	// deadWorkers records the distinct workers whose lease on this point
	// died (expired or crashed) — the poison counter.
	deadWorkers map[string]bool
	lastErr     string
}

// leaseTable is the server's scheduler state for one sweep: which points
// are pending, leased, or terminal, with expiry sweeping, seeded-jitter
// re-queue backoff, and poisoning. All methods require the caller to hold
// the owning server's lock; the table itself is not concurrency-safe.
type leaseTable struct {
	opts    Options
	now     func() time.Time
	rng     *rand.Rand
	entries []*pointEntry
	// leases indexes live leases by lease ID.
	leases map[string]*leaseAt
}

// leaseAt ties a live lease back to its point entry.
type leaseAt struct {
	l     *lease
	entry *pointEntry
}

func newLeaseTable(points []Point, opts Options, now func() time.Time, rng *rand.Rand) *leaseTable {
	t := &leaseTable{opts: opts, now: now, rng: rng, leases: map[string]*leaseAt{}}
	for i, p := range points {
		t.entries = append(t.entries, &pointEntry{
			id: i, point: p, deadWorkers: map[string]bool{},
		})
	}
	return t
}

// markDone transitions a point terminal without a lease — journal restores
// at submit time.
func (t *leaseTable) markDone(pointID int) { t.entries[pointID].state = stateDone }

// expire sweeps every leased point whose lease lapsed: the holding worker
// is presumed dead, its death is charged to the poison counter, and the
// point re-queues with backoff (or poisons). Returns the expired leases so
// the server can log and count them.
func (t *leaseTable) expire() []leaseAt {
	now := t.now()
	var dead []leaseAt
	for id, la := range t.leases {
		if now.After(la.l.expires) {
			dead = append(dead, *la)
			delete(t.leases, id)
			t.observeLeaseAge(la.l)
			t.chargeDeath(la.entry, la.l.worker, "lease expired (worker presumed dead)")
		}
	}
	return dead
}

// leaseAgeBounds and requeueBackoffBounds bucket the farm's two latency
// histograms (milliseconds) for /metrics.prom and SweepProgress.
var (
	leaseAgeBounds       = []float64{10, 50, 100, 500, 1000, 5000, 15000, 60000}
	requeueBackoffBounds = []float64{10, 50, 250, 1000, 2500, 10000}
)

// observeLeaseAge records how long a just-released lease was held.
func (t *leaseTable) observeLeaseAge(l *lease) {
	if t.opts.Metrics == nil {
		return
	}
	age := t.now().Sub(l.granted)
	t.opts.Metrics.Histogram("farm_lease_age_ms", leaseAgeBounds).
		Observe(float64(age.Microseconds()) / 1000)
}

// acquire grants the first eligible pending point to worker, or returns nil
// when nothing is runnable right now. Eligibility is deterministic point
// order gated by each entry's backoff window.
func (t *leaseTable) acquire(worker, leaseID string) (*pointEntry, *lease) {
	now := t.now()
	for _, e := range t.entries {
		if e.state != statePending || now.Before(e.notBefore) {
			continue
		}
		e.state = stateLeased
		e.attempt++
		l := &lease{id: leaseID, worker: worker, granted: now, expires: now.Add(t.opts.LeaseTTL)}
		t.leases[leaseID] = &leaseAt{l: l, entry: e}
		return e, l
	}
	return nil, nil
}

// heartbeat renews a live lease; false means the lease is gone (expired and
// re-queued, or resolved) and the worker should abandon the run.
func (t *leaseTable) heartbeat(leaseID string) bool {
	la, ok := t.leases[leaseID]
	if !ok {
		return false
	}
	la.l.expires = t.now().Add(t.opts.LeaseTTL)
	return true
}

// lookup resolves a live lease ID.
func (t *leaseTable) lookup(leaseID string) (*leaseAt, bool) {
	la, ok := t.leases[leaseID]
	return la, ok
}

// complete resolves a lease's point as Done. The lease may already be gone
// (expired while the result was in flight) — the point still completes if
// it is not already terminal.
func (t *leaseTable) complete(pointID int, leaseID string) {
	if la, ok := t.leases[leaseID]; ok {
		delete(t.leases, leaseID)
		t.observeLeaseAge(la.l)
		la.entry.state = stateDone
		return
	}
	if e := t.entries[pointID]; e.state != stateDone {
		// Orphan completion: lease expired or server restarted, but the
		// work is real and verified — take it.
		if e.state == stateLeased {
			t.dropLeaseOf(e)
		}
		e.state = stateDone
	}
}

// dropLeaseOf removes whatever live lease points at e (a re-grant after the
// original holder's expiry) — its holder will get a gone heartbeat.
func (t *leaseTable) dropLeaseOf(e *pointEntry) {
	for id, la := range t.leases {
		if la.entry == e {
			delete(t.leases, id)
		}
	}
}

// fail records a run failure under a live lease. A crash (worker survived
// but the run panicked) charges the poison counter like a death; an
// ordinary error re-queues with backoff until the attempt cap.
func (t *leaseTable) fail(leaseID string, crashed bool, msg string) bool {
	la, ok := t.leases[leaseID]
	if !ok {
		return false
	}
	delete(t.leases, leaseID)
	t.observeLeaseAge(la.l)
	la.entry.lastErr = msg
	if crashed {
		t.chargeDeath(la.entry, la.l.worker, msg)
	} else {
		t.requeue(la.entry, msg)
	}
	return true
}

// chargeDeath marks worker dead on e's poison counter and re-queues or
// poisons the point.
func (t *leaseTable) chargeDeath(e *pointEntry, worker, msg string) {
	e.deadWorkers[worker] = true
	e.lastErr = msg
	if len(e.deadWorkers) >= t.opts.PoisonAfter {
		e.state = statePoisoned
		e.lastErr = fmt.Sprintf("poisoned: killed %d distinct workers; last: %s",
			len(e.deadWorkers), msg)
		return
	}
	t.requeue(e, msg)
}

// requeue returns a point to Pending behind a seeded-jitter exponential
// backoff window, or marks it Failed once the attempt cap is spent. The cap
// is max(MaxAttempts, PoisonAfter) so a small worker pool can still reach
// the poison threshold before the budget wedges the point.
func (t *leaseTable) requeue(e *pointEntry, msg string) {
	budget := t.opts.MaxAttempts
	if t.opts.PoisonAfter > budget {
		budget = t.opts.PoisonAfter
	}
	if e.attempt >= budget {
		e.state = stateFailed
		e.lastErr = fmt.Sprintf("retry budget exhausted after %d leases; last: %s",
			e.attempt, msg)
		return
	}
	e.state = statePending
	e.requeues++
	pause := t.backoff(e.attempt)
	e.notBefore = t.now().Add(pause)
	if t.opts.Metrics != nil {
		t.opts.Metrics.Histogram("farm_requeue_backoff_ms", requeueBackoffBounds).
			Observe(float64(pause.Microseconds()) / 1000)
	}
}

// backoff mirrors system.RetryPolicy's schedule — base×2^(n-1) capped, plus
// a uniform seeded jitter — so concurrent re-queues decorrelate without
// nondeterministic randomness sources.
func (t *leaseTable) backoff(attempt int) time.Duration {
	pol := t.opts.Requeue
	pause := pol.Backoff
	for i := 1; i < attempt; i++ {
		pause *= 2
		if pause >= pol.MaxBackoff {
			pause = pol.MaxBackoff
			break
		}
	}
	if pause > pol.MaxBackoff {
		pause = pol.MaxBackoff
	}
	if pol.Jitter > 0 && pause > 0 {
		pause += time.Duration(t.rng.Int63n(int64(float64(pause)*pol.Jitter) + 1))
	}
	return pause
}

// counts tallies the table for SweepStatus.
func (t *leaseTable) counts() (pending, leased, done, failed, poisoned int) {
	for _, e := range t.entries {
		switch e.state {
		case statePending:
			pending++
		case stateLeased:
			leased++
		case stateDone:
			done++
		case stateFailed:
			failed++
		case statePoisoned:
			poisoned++
		}
	}
	return
}

// requeuePolicy is the subset of system.RetryPolicy the table's backoff
// uses; aliased so Options can embed it without exporting system.
type requeuePolicy = system.RetryPolicy
