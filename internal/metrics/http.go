package metrics

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// publishOnce guards the process-global expvar name: expvar.Publish panics
// on duplicate names, and tests (or a soak that builds several servers)
// may call Serve more than once per process. The published Func always
// reads the most recently served registry.
var (
	publishOnce sync.Once
	published   atomic.Pointer[Registry]
)

// Serve exposes the registry over HTTP on addr (the -telemetry flag):
//
//	/metrics       deterministic JSON snapshot of the registry
//	/metrics.prom  Prometheus text exposition (version 0.0.4)
//	/debug/vars    expvar (Go runtime memstats + the registry under
//	               "scalablebulk")
//	/debug/pprof   live CPU/heap/goroutine profiling for multi-hour soaks
//
// It returns the bound address (useful with ":0") and a shutdown func. The
// server runs on its own goroutine and never touches the simulator's
// single-threaded internals — only the atomic registry.
func Serve(addr string, reg *Registry) (string, func() error, error) {
	mux := Handler(reg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}

// Handler builds the telemetry mux Serve exposes — /metrics JSON snapshot,
// /debug/vars expvar, /debug/pprof — without binding a listener, so servers
// that own their own mux (the sweep farm's sbserver) can mount telemetry
// alongside their API endpoints.
func Handler(reg *Registry) *http.ServeMux {
	published.Store(reg)
	publishOnce.Do(func() {
		expvar.Publish("scalablebulk", expvar.Func(func() any {
			if r := published.Load(); r != nil {
				return r.Snapshot()
			}
			return nil
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics.prom", PromHandler(reg))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		data, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(append(data, '\n'))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
