package metrics

import (
	"scalablebulk/internal/event"
	"scalablebulk/internal/mesh"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/stats"
)

// CommitLatencyBounds buckets commit latencies like Figure 13's x-axis
// (cycles).
var CommitLatencyBounds = []float64{50, 100, 200, 400, 800, 1600, 3200, 6400}

// GroupSizeBounds buckets directories-per-commit like Figures 11/12.
var GroupSizeBounds = []float64{1, 2, 3, 4, 6, 8, 12, 16}

// QueueDepthBounds buckets sampled queued-chunk counts (Figures 16/17).
var QueueDepthBounds = []float64{1, 2, 4, 8, 16, 32}

// ObserveRun folds one finished run's collector and traffic counters into
// the registry. It is called between runs (never on the DES hot loop), so a
// live /metrics scrape during a soak sees per-point aggregates accumulate.
func ObserveRun(r *Registry, coll *stats.Collector, traffic mesh.Stats) {
	if r == nil {
		return
	}
	r.Counter("runs_total").Add(1)
	r.Counter("chunks_committed_total").Add(coll.ChunksCommitted)
	r.Counter("commit_failures_total").Add(coll.CommitFailures)
	r.Counter("read_nacks_total").Add(coll.ReadNacks)
	r.Counter("squash_conflict_total").Add(coll.SquashTrueConflict)
	r.Counter("squash_aliasing_total").Add(coll.SquashAliasing)

	r.Counter("noc_messages_total").Add(traffic.Messages)
	r.Counter("noc_delivered_total").Add(traffic.Delivered)
	r.Counter("noc_flit_hops_total").Add(traffic.FlitHops)
	for k := 0; k < msg.NumKinds; k++ {
		if traffic.ByKind[k] > 0 {
			r.Counter("noc_sent_" + msg.Kind(k).String() + "_total").Add(traffic.ByKind[k])
		}
	}

	lat := r.Histogram("commit_latency_cycles", CommitLatencyBounds)
	for _, v := range coll.CommitLat {
		lat.Observe(float64(v))
	}
	dirs := r.Histogram("group_size_dirs", GroupSizeBounds)
	for _, v := range coll.DirsTotal {
		dirs.Observe(float64(v))
	}
	queue := r.Histogram("queue_depth_chunks", QueueDepthBounds)
	for _, v := range coll.QueueSamples {
		queue.Observe(float64(v))
	}
}

// ObserveSharding folds one run's sharded-engine execution counters into the
// registry: round mix, epoch-barrier stalls, staged cross-shard actions and
// the calendar ring's retained capacity. sh is nil for serial runs — only the
// residency gauge (meaningful for both engines) is published then.
func ObserveSharding(r *Registry, sh *event.ShardStats, ringResidency uint64) {
	if r == nil {
		return
	}
	r.Gauge("engine_ring_residency_items").Set(float64(ringResidency))
	if sh == nil {
		return
	}
	r.Counter("shard_rounds_total").Add(sh.Rounds)
	r.Counter("shard_serial_rounds_total").Add(sh.SerialRounds)
	r.Counter("shard_parallel_rounds_total").Add(sh.ParallelRounds)
	r.Counter("shard_barrier_stalls_total").Add(sh.BarrierStalls)
	r.Counter("shard_staged_actions_total").Add(sh.StagedActions)
	r.Gauge("shard_count").Set(float64(sh.Shards))
}
