package metrics

import (
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var updateProm = flag.Bool("update", false, "rewrite the exposition golden file")

// promTestRegistry is a registry with one of everything, values chosen so
// bucket accumulation, float formatting and quantile interpolation all show
// up in the golden.
func promTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("farm_results_ok").Add(12)
	r.Counter("farm_leases_granted").Add(34)
	r.Gauge("farm_points_per_sec").Set(2.5)
	r.Gauge("queue_depth").Set(0)
	h := r.Histogram("farm_lease_age_ms", []float64{10, 100, 1000})
	for _, v := range []float64{5, 10, 50, 70, 500, 5000} {
		h.Observe(v)
	}
	return r
}

// TestPromGolden pins the exposition output byte for byte. Regenerate with
//
//	go test ./internal/metrics -run TestPromGolden -update
func TestPromGolden(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, promTestRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	golden := filepath.Join("testdata", "exposition.prom")
	if *updateProm {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden (run with -update to regenerate):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestPromParses walks the output with a minimal exposition parser: every
// non-comment line must be `name{labels} value` with a parseable float, every
// # TYPE must name a valid type, and histogram buckets must be cumulative.
func TestPromParses(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, promTestRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	var lastBucket float64 = -1
	var lastBucketCum uint64
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram", "summary":
			default:
				t.Errorf("invalid metric type %q in %q", parts[3], line)
			}
			lastBucket, lastBucketCum = -1, 0
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line %q has no value", line)
		}
		name, value := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(value, 64)
		if err != nil && value != "+Inf" && value != "NaN" {
			t.Errorf("unparseable value %q in %q", value, line)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Errorf("unbalanced label braces in %q", line)
			}
			name = name[:i]
		}
		for i, r := range name {
			ok := r == '_' || r == ':' ||
				(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
				(i > 0 && r >= '0' && r <= '9')
			if !ok {
				t.Errorf("invalid metric name %q in %q", name, line)
				break
			}
		}
		if strings.HasSuffix(name, "_bucket") {
			le := line[strings.Index(line, `le="`)+4:]
			le = le[:strings.IndexByte(le, '"')]
			bound := math.Inf(1)
			if le != "+Inf" {
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("unparseable le %q in %q", le, line)
				}
			}
			cum := uint64(v)
			if bound <= lastBucket {
				t.Errorf("bucket bounds not increasing at %q", line)
			}
			if cum < lastBucketCum {
				t.Errorf("bucket counts not cumulative at %q", line)
			}
			lastBucket, lastBucketCum = bound, cum
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := HistogramSnapshot{
		Bounds: []float64{10, 100},
		Counts: []uint64{4, 4, 2}, // [0,10) ×4, [10,100) ×4, overflow ×2
		Count:  10,
	}
	// Median rank 5 lands in the second bucket, one observation in: 10 +
	// (5-4)/4 × 90 = 32.5.
	if got := h.Quantile(0.5); math.Abs(got-32.5) > 1e-9 {
		t.Errorf("p50 = %v, want 32.5", got)
	}
	// Rank 9.9 lands in the overflow bucket: clamped to the last bound.
	if got := h.Quantile(0.99); got != 100 {
		t.Errorf("p99 = %v, want 100 (clamped)", got)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty-histogram quantile = %v, want NaN", got)
	}
}

func TestPromEndpoint(t *testing.T) {
	addr, closeFn, err := Serve("127.0.0.1:0", promTestRegistry())
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	defer closeFn()
	resp, err := http.Get("http://" + addr + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics.prom = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Errorf("content type = %q, want %q", ct, PromContentType)
	}
	if !strings.Contains(string(body), "farm_results_ok 12") {
		t.Errorf("exposition missing counter sample:\n%s", body)
	}
}

func ExampleWritePrometheus() {
	r := NewRegistry()
	r.Counter("points_done").Add(3)
	var b strings.Builder
	WritePrometheus(&b, r.Snapshot())
	fmt.Print(b.String())
	// Output:
	// # TYPE points_done counter
	// points_done 3
}
