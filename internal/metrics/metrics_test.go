package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"scalablebulk/internal/event"
	"scalablebulk/internal/mesh"
	"scalablebulk/internal/stats"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Counter("c").Add(3)
	if got := r.Counter("c").Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	r.Gauge("g").Set(1.5)
	if got := r.Gauge("g").Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
	h := r.Histogram("h", []float64{10, 100})
	for _, v := range []float64{5, 10, 50, 500} {
		h.Observe(v)
	}
	counts, count, sum := h.Snapshot()
	if count != 4 || sum != 565 {
		t.Errorf("histogram count=%d sum=%v, want 4, 565", count, sum)
	}
	// 5 → [0,10); 10 and 50 → [10,100); 500 → overflow.
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 1 {
		t.Errorf("histogram counts = %v, want [1 2 1]", counts)
	}
	h.Reset()
	if _, count, _ := h.Snapshot(); count != 0 {
		t.Errorf("count after Reset = %d, want 0", count)
	}

	s := r.Snapshot()
	if s.Counters["c"] != 5 || s.Gauges["g"] != 1.5 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestObserveRun(t *testing.T) {
	r := NewRegistry()
	coll := stats.New()
	coll.CommitStarted(0, 1, 0, 10)
	coll.GroupFormed(0, 1, 0, 20)
	coll.CommitEnded(0, 1, 0, 60, true)
	coll.CommitLatency(50)
	coll.DirsPerCommit(3, 1)
	coll.SampleQueue(2)
	coll.Squashed(true)
	var traffic mesh.Stats
	traffic.Messages, traffic.Delivered, traffic.FlitHops = 10, 11, 120
	traffic.ByKind[0] = 10

	ObserveRun(r, coll, traffic)
	ObserveRun(nil, coll, traffic) // nil registry is a no-op

	s := r.Snapshot()
	if s.Counters["chunks_committed_total"] != 1 ||
		s.Counters["squash_conflict_total"] != 1 ||
		s.Counters["noc_flit_hops_total"] != 120 {
		t.Errorf("snapshot counters = %v", s.Counters)
	}
	if h := s.Histograms["commit_latency_cycles"]; h.Count != 1 || h.Sum != 50 {
		t.Errorf("latency histogram = %+v", h)
	}
}

// TestObserveSharding drives a real two-shard engine through a mixed
// local/global round sequence and folds its counters into the registry: the
// epoch-barrier stall counter must come out nonzero (every parallel round
// ends in at least one coordinator wait), and serial runs must still publish
// the ring-residency gauge.
func TestObserveSharding(t *testing.T) {
	se := event.NewSharded(2)
	defer se.Stop()
	se.View(0).After(1, func() {})
	se.View(1).After(1, func() {})
	se.View(0).AfterGlobal(2, func() {})
	for se.RoundStep() > 0 {
	}
	st := se.Stats()

	r := NewRegistry()
	ObserveSharding(r, &st, se.RingResidency())
	ObserveSharding(nil, &st, 0) // nil registry is a no-op

	s := r.Snapshot()
	if s.Counters["shard_barrier_stalls_total"] == 0 {
		t.Errorf("barrier stall counter is zero after a parallel round: %v", s.Counters)
	}
	if s.Counters["shard_parallel_rounds_total"] == 0 || s.Counters["shard_serial_rounds_total"] == 0 {
		t.Errorf("round counters missing: %v", s.Counters)
	}
	if s.Gauges["shard_count"] != 2 {
		t.Errorf("shard_count gauge = %v, want 2", s.Gauges["shard_count"])
	}
	if _, ok := s.Gauges["engine_ring_residency_items"]; !ok {
		t.Errorf("ring residency gauge missing: %v", s.Gauges)
	}

	// Serial run: no shard stats, but residency still lands.
	r2 := NewRegistry()
	ObserveSharding(r2, nil, 17)
	s2 := r2.Snapshot()
	if s2.Gauges["engine_ring_residency_items"] != 17 {
		t.Errorf("serial residency gauge = %v, want 17", s2.Gauges["engine_ring_residency_items"])
	}
	if len(s2.Counters) != 0 {
		t.Errorf("serial run published shard counters: %v", s2.Counters)
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("points_done").Add(7)
	addr, closeFn, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Skipf("cannot listen: %v", err) // sandboxed environments
	}
	defer closeFn()

	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
		if path == "/metrics" {
			var s Snapshot
			if err := json.Unmarshal(body, &s); err != nil {
				t.Errorf("/metrics not JSON: %v", err)
			} else if s.Counters["points_done"] != 7 {
				t.Errorf("/metrics counters = %v", s.Counters)
			}
		}
	}
}
