package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"scalablebulk/internal/mesh"
	"scalablebulk/internal/stats"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Counter("c").Add(3)
	if got := r.Counter("c").Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	r.Gauge("g").Set(1.5)
	if got := r.Gauge("g").Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
	h := r.Histogram("h", []float64{10, 100})
	for _, v := range []float64{5, 10, 50, 500} {
		h.Observe(v)
	}
	counts, count, sum := h.Snapshot()
	if count != 4 || sum != 565 {
		t.Errorf("histogram count=%d sum=%v, want 4, 565", count, sum)
	}
	// 5 → [0,10); 10 and 50 → [10,100); 500 → overflow.
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 1 {
		t.Errorf("histogram counts = %v, want [1 2 1]", counts)
	}
	h.Reset()
	if _, count, _ := h.Snapshot(); count != 0 {
		t.Errorf("count after Reset = %d, want 0", count)
	}

	s := r.Snapshot()
	if s.Counters["c"] != 5 || s.Gauges["g"] != 1.5 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestObserveRun(t *testing.T) {
	r := NewRegistry()
	coll := stats.New()
	coll.CommitStarted(0, 1, 0, 10)
	coll.GroupFormed(0, 1, 0, 20)
	coll.CommitEnded(0, 1, 0, 60, true)
	coll.CommitLatency(50)
	coll.DirsPerCommit(3, 1)
	coll.SampleQueue(2)
	coll.Squashed(true)
	var traffic mesh.Stats
	traffic.Messages, traffic.Delivered, traffic.FlitHops = 10, 11, 120
	traffic.ByKind[0] = 10

	ObserveRun(r, coll, traffic)
	ObserveRun(nil, coll, traffic) // nil registry is a no-op

	s := r.Snapshot()
	if s.Counters["chunks_committed_total"] != 1 ||
		s.Counters["squash_conflict_total"] != 1 ||
		s.Counters["noc_flit_hops_total"] != 120 {
		t.Errorf("snapshot counters = %v", s.Counters)
	}
	if h := s.Histograms["commit_latency_cycles"]; h.Count != 1 || h.Sum != 50 {
		t.Errorf("latency histogram = %+v", h)
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("points_done").Add(7)
	addr, closeFn, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Skipf("cannot listen: %v", err) // sandboxed environments
	}
	defer closeFn()

	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
		if path == "/metrics" {
			var s Snapshot
			if err := json.Unmarshal(body, &s); err != nil {
				t.Errorf("/metrics not JSON: %v", err)
			} else if s.Counters["points_done"] != 7 {
				t.Errorf("/metrics counters = %v", s.Counters)
			}
		}
	}
}
