// Package metrics is the live-telemetry half of the observability layer: a
// small registry of counters, gauges and histograms that long soaks publish
// over HTTP (expvar + pprof) so multi-hour runs can be watched and profiled
// without stopping them.
//
// The registry is safe for concurrent use — sweep workers update it while
// the HTTP handler snapshots it — unlike the single-threaded simulator
// internals it summarizes. Values are snapshotted from stats.Collector and
// mesh traffic counters between runs (see Observe*), never from inside the
// DES hot loop.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram buckets observations: bucket i counts values in
// [Bounds[i-1], Bounds[i]), with an implicit overflow bucket past the last
// bound. Count and Sum allow mean computation.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64
	count  uint64
	sum    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) && v == h.bounds[i] {
		i++ // bounds are exclusive upper edges
	}
	h.counts[i]++
}

// Snapshot returns the bucket counts (len(Bounds)+1 entries), total count
// and sum.
func (h *Histogram) Snapshot() (counts []uint64, count uint64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.counts...), h.count, h.sum
}

// Reset zeroes the histogram (per-round soaks reuse registries).
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.count, h.sum = 0, 0
}

// Registry holds named instruments. Get-or-create accessors make wiring
// one-liners; names are reported in sorted order for determinism.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls reuse the existing bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]uint64, len(bounds)+1),
		}
		r.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is one histogram's state in a Snapshot.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot captures every instrument, with deterministic (sorted) key order
// inside each section.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]uint64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(histograms)),
	}
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range histograms {
		counts, count, sum := h.Snapshot()
		s.Histograms[k] = HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: counts, Count: count, Sum: sum,
		}
	}
	return s
}
