package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Prometheus text exposition format version this
// package writes.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// summaryQuantiles are the quantiles estimated from each histogram's buckets
// and emitted as a sibling summary metric (<name>_approx). Bucket counts only
// bound a quantile to its bucket, so the estimate interpolates linearly
// inside the bucket — good enough to watch a soak, not a substitute for the
// raw buckets (which are exported in full).
var summaryQuantiles = []float64{0.5, 0.9, 0.99}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as cumulative le-labeled buckets with _sum and _count, plus an estimated
// quantile summary under <name>_approx. Output is deterministic — metrics
// sort by name within each section — so it can be golden-tested.
func WritePrometheus(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(s.Gauges[name])); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := writePromHistogram(w, promName(name), s.Histograms[name]); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	// Buckets are cumulative in the exposition format; the registry keeps
	// them disjoint, so accumulate while walking the bounds.
	cum := uint64(0)
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(bound), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(h.Sum), name, h.Count); err != nil {
		return err
	}
	// The estimated quantile summary rides alongside under a distinct name
	// (a summary and a histogram cannot share one).
	if _, err := fmt.Fprintf(w, "# TYPE %s_approx summary\n", name); err != nil {
		return err
	}
	for _, q := range summaryQuantiles {
		v := h.Quantile(q)
		if _, err := fmt.Fprintf(w, "%s_approx{quantile=%q} %s\n",
			name, strconv.FormatFloat(q, 'g', -1, 64), promFloat(v)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_approx_sum %s\n%s_approx_count %d\n",
		name, promFloat(h.Sum), name, h.Count); err != nil {
		return err
	}
	return nil
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the snapshot's buckets,
// interpolating linearly inside the bucket the rank lands in. An empty
// histogram reports NaN; ranks past the last bound report the last bound
// (the overflow bucket has no upper edge to interpolate toward).
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return math.NaN()
	}
	rank := q * float64(h.Count)
	cum := uint64(0)
	lower := 0.0
	for i, bound := range h.Bounds {
		prev := cum
		cum += h.Counts[i]
		if float64(cum) >= rank {
			in := h.Counts[i]
			if in == 0 {
				return bound
			}
			frac := (rank - float64(prev)) / float64(in)
			return lower + frac*(bound-lower)
		}
		lower = bound
	}
	if len(h.Bounds) == 0 {
		return math.NaN()
	}
	return h.Bounds[len(h.Bounds)-1]
}

// promFloat formats a float the way the exposition format expects: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promName sanitizes a registry name into a legal exposition metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*). Registry names are snake_case already; this
// only defends against the odd dotted or dashed name.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// PromHandler serves the registry in the Prometheus text exposition format —
// the /metrics.prom endpoint, next to the JSON /metrics.
func PromHandler(reg *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		var b strings.Builder
		if err := WritePrometheus(&b, reg.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		io.WriteString(w, b.String())
	}
}
