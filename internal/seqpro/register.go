package seqpro

import (
	"fmt"

	"scalablebulk/internal/dir"
	"scalablebulk/internal/protocol"
)

// Name is the registry key for the SEQ-PRO engine.
const Name = "SEQ"

func init() {
	protocol.Register(protocol.Descriptor{
		Name:           Name,
		Doc:            "SEQ-PRO: sequential directory occupation in ascending order, fully serialized commits (§2.2)",
		Rank:           2,
		Evaluated:      true,
		DefaultOptions: func() any { return DefaultConfig() },
		New: func(env *dir.Env, opts any) (protocol.Engine, error) {
			cfg, ok := opts.(Config)
			if !ok {
				return nil, fmt.Errorf("%s: options must be seqpro.Config, got %T", Name, opts)
			}
			return New(env, cfg), nil
		},
	})
}
