// Package seqpro implements the SEQ-PRO baseline from SRC (Table 3:
// "SEQ-PRO from [14]"): a committing processor occupies the directory
// modules in its read- and write-sets one at a time, in ascending order; an
// occupied module queues later requesters. Occupation is exclusive, so two
// chunks that accessed different addresses homed at the same module still
// serialize — the shortcoming ScalableBulk removes (§2.1).
package seqpro

import (
	"fmt"

	"scalablebulk/internal/bitset"
	"scalablebulk/internal/chunk"
	"scalablebulk/internal/dir"
	"scalablebulk/internal/event"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/protocol"
	"scalablebulk/internal/protocol/kernel"
	"scalablebulk/internal/sig"
)

// Config tunes the protocol.
type Config struct {
	// CommitDeadline is the stall watchdog: an occupation chain still
	// incomplete this many cycles after its request unwinds (occupied
	// modules release) and the processor retries. Zero selects
	// DefaultCommitDeadline; WatchdogDisabled turns it off.
	CommitDeadline event.Time
}

// DefaultCommitDeadline and WatchdogDisabled alias the machine-wide values in
// internal/protocol, kept here so existing callers keep compiling.
const (
	DefaultCommitDeadline = protocol.DefaultCommitDeadline
	WatchdogDisabled      = protocol.WatchdogDisabled
)

// DefaultConfig returns the evaluation configuration.
func DefaultConfig() Config { return Config{CommitDeadline: DefaultCommitDeadline} }

// modState is one directory module's occupancy.
type modState struct {
	occupant *occupancy
	queue    []*msg.Msg // waiting seq_occupy requests, FIFO
}

// occupancy describes who holds a module and with what write set (for read
// nacking). The attempt index disambiguates occupancies of retried chunks:
// a duplicated release of attempt N must not free attempt N+1's occupancy
// of the same tag.
type occupancy struct {
	tag  msg.CTag
	try  uint64
	wsig sig.Sig
}

// job is the committing processor's sequential occupation chain. try is the
// attempt index snapshotted at RequestCommit: ck.Retries changes under our
// feet when a bulk invalidation squashes the in-flight chunk (the processor
// increments it before Abort runs), so every message this attempt sends must
// use the snapshot or its releases would miss the try-0 occupancies.
type job struct {
	ck       *chunk.Chunk
	try      uint64
	nextIdx  int   // next directory in ck.Dirs to occupy
	occupied []int // modules granted so far
	// inv counts each sharer's invalidation ack once (dup guard).
	inv     kernel.AckSet[int]
	aborted bool
}

// Protocol is the SEQ-PRO engine; it implements protocol.Engine.
type Protocol struct {
	env  *dir.Env
	cfg  Config
	k    *kernel.Kernel
	mods []*modState
	jobs map[int]*job
}

var (
	_ protocol.Engine   = (*Protocol)(nil)
	_ protocol.Debugger = (*Protocol)(nil)
)

// New builds a SEQ-PRO engine over env.
func New(env *dir.Env, cfg Config) *Protocol {
	p := &Protocol{env: env, cfg: cfg, k: kernel.New(env, cfg.CommitDeadline),
		jobs: make(map[int]*job)}
	for i := 0; i < env.Net.Nodes(); i++ {
		p.mods = append(p.mods, &modState{})
	}
	return p
}

// Name implements dir.Protocol.
func (p *Protocol) Name() string { return Name }

// Stats implements protocol.Engine.
func (p *Protocol) Stats() map[string]uint64 {
	return map[string]uint64{"fail_watchdog": p.k.WD.Fired}
}

// RequestCommit implements dir.Protocol: start the ascending occupation.
func (p *Protocol) RequestCommit(proc int, ck *chunk.Chunk) {
	p.k.Started(proc, ck)
	j := &job{ck: ck, try: uint64(ck.Retries)}
	p.jobs[proc] = j
	if len(ck.Dirs) == 0 {
		p.formed(proc, j)
		return
	}
	p.occupyNext(proc, j)
	p.armWatchdog(proc, ck)
}

// armWatchdog schedules the kernel stall deadline for one commit attempt. A
// fired watchdog unwinds an attempt still building its occupation chain; an
// attempt already formed applied its writes and is past its serialization
// point, so the deadline re-arms and keeps watching the ack collection.
func (p *Protocol) armWatchdog(proc int, ck *chunk.Chunk) {
	try := uint64(ck.Retries)
	p.k.WD.Arm(proc, false, ck.Tag, int(try), func() kernel.Disposition {
		j := p.jobs[proc]
		if j == nil || j.ck != ck || j.try != try || j.aborted {
			return kernel.Closed
		}
		if j.nextIdx >= len(j.ck.Dirs) {
			return kernel.Watching
		}
		return kernel.Stalled
	}, func() {
		p.Abort(proc, ck.Tag)
		p.env.Cores[proc].CommitRefused(ck.Tag)
	})
}

func (p *Protocol) occupyNext(proc int, j *job) {
	d := j.ck.Dirs[j.nextIdx]
	p.env.Net.Send(&msg.Msg{
		Kind: msg.SeqOccupy, Src: proc, Dst: d, Tag: j.ck.Tag,
		WSig: j.ck.WSig, TID: j.try,
	})
}

// HandleDir implements dir.Protocol: occupy/release at a module.
func (p *Protocol) HandleDir(node int, m *msg.Msg) {
	ms := p.mods[node]
	switch m.Kind {
	case msg.SeqOccupy:
		if ms.occupant != nil && ms.occupant.tag == m.Tag && ms.occupant.try == m.TID {
			return // duplicate of the current occupancy; grant already sent
		}
		for _, q := range ms.queue {
			if q.Tag == m.Tag && q.TID == m.TID {
				return // duplicate of a queued request
			}
		}
		if ms.occupant == nil {
			ms.occupant = &occupancy{tag: m.Tag, try: m.TID, wsig: m.WSig}
			p.k.HoldBegin(node, m.Tag, int(m.TID))
			p.env.Eng.After(p.env.DirLookup, func() {
				p.env.Net.Send(&msg.Msg{Kind: msg.SeqGrant, Src: node, Dst: m.Tag.Proc, Tag: m.Tag, TID: m.TID})
			})
		} else {
			// The transaction blocks if the directory is taken (§2.1).
			ms.queue = append(ms.queue, m)
		}
	case msg.SeqRelease:
		if ms.occupant == nil || ms.occupant.tag != m.Tag || ms.occupant.try != m.TID {
			// Release for a stale occupancy (aborted before the grant was
			// consumed): drop any queued request of the same attempt instead.
			for i, q := range ms.queue {
				if q.Tag == m.Tag && q.TID == m.TID {
					ms.queue = append(ms.queue[:i], ms.queue[i+1:]...)
					break
				}
			}
			return
		}
		p.k.HoldEnd(node, m.Tag, int(m.TID))
		ms.occupant = nil
		if len(ms.queue) > 0 {
			next := ms.queue[0]
			ms.queue = ms.queue[1:]
			ms.occupant = &occupancy{tag: next.Tag, try: next.TID, wsig: next.WSig}
			p.k.HoldBegin(node, next.Tag, int(next.TID))
			p.env.Eng.After(p.env.DirLookup, func() {
				p.env.Net.Send(&msg.Msg{Kind: msg.SeqGrant, Src: node, Dst: next.Tag.Proc, Tag: next.Tag, TID: next.TID})
			})
		}
	default:
		panic(fmt.Sprintf("seqpro: unexpected directory message %s", m))
	}
}

// HandleProc implements dir.Protocol: grant/invalidation handling at the
// committing processor.
func (p *Protocol) HandleProc(node int, m *msg.Msg) {
	switch m.Kind {
	case msg.SeqGrant:
		p.onGrant(node, m)
	case msg.SeqInval:
		// A formed job is past its serialization point: its occupation
		// chain serialized it against every conflicting commit, so the
		// invalidating writer formed after it and this chunk's reads stay
		// valid. Squashing it would re-run a commit whose writes are
		// already applied — committing the chunk twice. The cached copies
		// still die and younger chunks still squash.
		var immune *msg.CTag
		if j := p.jobs[node]; j != nil && !j.aborted && j.nextIdx >= len(j.ck.Dirs) {
			t := j.ck.Tag
			immune = &t
		}
		squashed := p.env.Cores[node].BulkInvalidate(&m.WSig, m.WriteLines, m.Tag.Proc, immune)
		p.env.Net.Send(&msg.Msg{Kind: msg.SeqInvalAck, Src: node, Dst: m.Src, Tag: m.Tag})
		if squashed != nil {
			// The squashed chunk's occupation chain must unwind so other
			// chunks queued at its modules can progress.
			p.Abort(node, *squashed)
		}
	case msg.SeqInvalAck:
		p.onInvAck(node, m)
	default:
		panic(fmt.Sprintf("seqpro: unexpected processor message %s", m))
	}
}

func (p *Protocol) onGrant(proc int, m *msg.Msg) {
	j := p.jobs[proc]
	if j == nil || j.ck.Tag != m.Tag || j.aborted || j.try != m.TID {
		// Stale grant (after an abort, or for an older attempt): hand the
		// module straight back, echoing the grant's attempt index so only
		// the matching ghost occupancy is freed.
		p.env.Net.Send(&msg.Msg{Kind: msg.SeqRelease, Src: proc, Dst: m.Src, Tag: m.Tag, TID: m.TID})
		return
	}
	for _, d := range j.occupied {
		if d == m.Src {
			return // duplicate grant for a module this attempt already holds
		}
	}
	if j.nextIdx >= len(j.ck.Dirs) || m.Src != j.ck.Dirs[j.nextIdx] {
		// Grant from a module this attempt is not waiting on (a duplicated
		// occupy minted a ghost occupancy after the chain released): free it.
		p.env.Net.Send(&msg.Msg{Kind: msg.SeqRelease, Src: proc, Dst: m.Src, Tag: m.Tag, TID: m.TID})
		return
	}
	j.occupied = append(j.occupied, m.Src)
	j.nextIdx++
	if j.nextIdx < len(j.ck.Dirs) {
		p.occupyNext(proc, j)
		return
	}
	p.formed(proc, j)
}

// formed: every module is occupied — the commit is authorized. Send the W
// signature to all sharers of the write set for invalidation and
// disambiguation.
func (p *Protocol) formed(proc int, j *job) {
	p.k.Formed(proc, j.ck.Tag.Seq, j.ck.Retries)
	p.env.Coll.SampleQueue(p.queuedChunks())

	var sharers bitset.Set
	p.env.State.SharersOfAll(j.ck.WriteLines, proc, &sharers)
	targets := sharers.Members()
	j.inv.Expect(len(targets))
	// The occupied modules serialized this commit against every conflicting
	// one; once the invalidations are on the wire the directory state can
	// be updated and the modules released, so queued chunks stop convoying
	// behind the (slow) invalidation round trip. The committer itself still
	// waits for every ack before declaring the chunk committed.
	for _, l := range j.ck.WriteLines {
		p.env.State.ApplyCommitWrite(l, proc)
	}
	for _, t := range targets {
		p.env.Net.Send(&msg.Msg{
			Kind: msg.SeqInval, Src: proc, Dst: t, Tag: j.ck.Tag,
			WSig: j.ck.WSig, WriteLines: j.ck.WriteLines,
		})
	}
	p.releaseAll(proc, j)
	if j.inv.Done() {
		p.complete(proc, j)
	}
}

// queuedChunks counts chunks machine-wide whose occupation is blocked in
// some module's queue (the Figures 16/17 metric). A chunk waits in at most
// one queue at a time because occupation is sequential.
func (p *Protocol) queuedChunks() int {
	n := 0
	for _, ms := range p.mods {
		n += len(ms.queue)
	}
	return n
}

func (p *Protocol) onInvAck(proc int, m *msg.Msg) {
	j := p.jobs[proc]
	if j == nil || j.ck.Tag != m.Tag || j.aborted {
		return
	}
	if !j.inv.Ack(m.Src) {
		return // duplicate ack from the same sharer
	}
	if j.inv.Done() {
		p.complete(proc, j)
	}
}

func (p *Protocol) complete(proc int, j *job) {
	delete(p.jobs, proc)
	p.k.Done(proc, false, j.ck.Tag, int(j.try))
	p.env.Cores[proc].CommitFinished(j.ck.Tag)
}

func (p *Protocol) releaseAll(proc int, j *job) {
	for _, d := range j.occupied {
		p.env.Net.Send(&msg.Msg{Kind: msg.SeqRelease, Src: proc, Dst: d, Tag: j.ck.Tag, TID: j.try})
	}
	j.occupied = nil
}

// Abort unwinds a squashed chunk's occupation chain: occupied modules are
// released and any in-flight occupy request is withdrawn. The processor
// model calls this when a bulk invalidation squashes its in-flight commit.
func (p *Protocol) Abort(proc int, tag msg.CTag) {
	j := p.jobs[proc]
	if j == nil || j.ck.Tag != tag || j.aborted {
		return
	}
	if j.nextIdx >= len(j.ck.Dirs) {
		// Already formed: the occupancy serialized this commit and its
		// writes are applied — it is past its serialization point and
		// cannot be cancelled. The processor's re-execution will be
		// abandoned when the (late) completion arrives.
		return
	}
	j.aborted = true
	// Withdraw the outstanding occupy (it may be queued at the module or
	// its grant may already be in flight; both are handled at receipt).
	if j.nextIdx < len(j.ck.Dirs) {
		d := j.ck.Dirs[j.nextIdx]
		p.env.Net.Send(&msg.Msg{Kind: msg.SeqRelease, Src: proc, Dst: d, Tag: tag, TID: j.try})
	}
	p.releaseAll(proc, j)
	delete(p.jobs, proc)
}

// DebugModule renders one directory module's occupancy for deadlock
// diagnostics.
func (p *Protocol) DebugModule(i int) string {
	ms := p.mods[i]
	if ms.occupant == nil && len(ms.queue) == 0 {
		return ""
	}
	s := fmt.Sprintf("D%d:", i)
	if ms.occupant != nil {
		s += fmt.Sprintf(" occupant=%s try=%d", ms.occupant.tag, ms.occupant.try)
	}
	for _, q := range ms.queue {
		s += fmt.Sprintf(" queued[%s try=%d]", q.Tag, q.TID)
	}
	return s
}

// ReadBlocked implements dir.Protocol: loads hitting the occupant's write
// signature are nacked, as in ScalableBulk's §3.1 primitive.
func (p *Protocol) ReadBlocked(node int, l sig.Line) bool {
	occ := p.mods[node].occupant
	return occ != nil && occ.wsig.Member(l)
}

// PendingAttempts implements protocol.AttemptEnumerator: live occupation
// chains plus directory-side residue. A ghost occupancy (held module with no
// live job) or a stranded queue entry counts here even though every chunk
// committed — exactly the leak class the PR 1 livelock fix closed.
func (p *Protocol) PendingAttempts() int {
	n := len(p.jobs)
	for _, m := range p.mods {
		if m.occupant != nil {
			n++
		}
		n += len(m.queue)
	}
	return n
}
