package seqpro_test

import (
	"testing"

	"scalablebulk/internal/msg"
	"scalablebulk/internal/system"
	"scalablebulk/internal/workload"
)

func run(t *testing.T, app string, cores, chunks int) *system.Result {
	t.Helper()
	prof, ok := workload.ByName(app)
	if !ok {
		t.Fatalf("unknown app %s", app)
	}
	cfg := system.DefaultConfig(cores, system.ProtoSEQ)
	cfg.ChunksPerCore = chunks
	res, err := system.Run(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSequentialOccupation: each commit occupies its directories one at a
// time, so occupy grants ≥ successful commits × average directories, and
// every grant is eventually matched by a release.
func TestSequentialOccupation(t *testing.T) {
	res := run(t, "Water-S", 16, 6)
	st := res.Traffic
	if st.ByKind[msg.SeqOccupy] == 0 || st.ByKind[msg.SeqGrant] == 0 {
		t.Fatal("no occupy traffic")
	}
	if st.ByKind[msg.SeqRelease] < st.ByKind[msg.SeqGrant] {
		t.Fatalf("releases %d < grants %d (occupancy leak)",
			st.ByKind[msg.SeqRelease], st.ByKind[msg.SeqGrant])
	}
	dt, _ := res.Coll.MeanDirsPerCommit()
	minOccupies := uint64(float64(res.ChunksCommitted) * dt * 0.9)
	if st.ByKind[msg.SeqOccupy] < minOccupies {
		t.Fatalf("occupies %d < expected ≈ commits×dirs %d", st.ByKind[msg.SeqOccupy], minOccupies)
	}
}

// TestQueueingUnderContention: Radix chunks block in directory queues
// (Figures 16/17's SEQ bars).
func TestQueueingUnderContention(t *testing.T) {
	res := run(t, "Radix", 32, 8)
	if res.Coll.MeanQueueLength() == 0 {
		t.Fatal("Radix under SEQ should queue chunks")
	}
	if res.ChunksCommitted != 32*8 {
		t.Fatalf("committed %d", res.ChunksCommitted)
	}
}

// TestInvalidationRoundTrip: committed chunks with sharers send W-signature
// invalidations from the committing processor; every one is acked.
func TestInvalidationRoundTrip(t *testing.T) {
	res := run(t, "Barnes", 16, 6)
	st := res.Traffic
	if st.ByKind[msg.SeqInval] == 0 {
		t.Fatal("no invalidations on a sharing-heavy app")
	}
	if st.ByKind[msg.SeqInval] != st.ByKind[msg.SeqInvalAck] {
		t.Fatalf("inval %d != acks %d", st.ByKind[msg.SeqInval], st.ByKind[msg.SeqInvalAck])
	}
}

// TestConflictSquashRecovery: squashed chunks unwind their occupancy chains
// and re-execute; everything still completes.
func TestConflictSquashRecovery(t *testing.T) {
	res := run(t, "Canneal", 16, 6)
	if res.ChunksCommitted != 16*6 {
		t.Fatalf("committed %d", res.ChunksCommitted)
	}
	if res.Squashes == 0 {
		t.Fatal("expected squashes on Canneal")
	}
}

// TestSEQSlowerThanScalableBulkOnRadix is §2.1: SEQ serializes chunks that
// share directory modules even with disjoint addresses.
func TestSEQSlowerThanScalableBulkOnRadix(t *testing.T) {
	prof, _ := workload.ByName("Radix")
	seqCfg := system.DefaultConfig(32, system.ProtoSEQ)
	seqCfg.ChunksPerCore = 8
	seq, err := system.Run(prof, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	sbCfg := system.DefaultConfig(32, system.ProtoScalableBulk)
	sbCfg.ChunksPerCore = 8
	sb, err := system.Run(prof, sbCfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Cycles <= sb.Cycles {
		t.Fatalf("SEQ (%d cycles) should be slower than ScalableBulk (%d) on Radix",
			seq.Cycles, sb.Cycles)
	}
}
