// Package cliutil holds small helpers shared by the cmd/ front-ends:
// rendering the protocol registry for every CLI's -protocols list flag and
// validating -protocol selections before a machine is built.
package cliutil

import (
	"fmt"
	"strings"

	"scalablebulk/internal/protocol"
	"scalablebulk/internal/workload"
)

// ProtocolList renders the registry as the listing every CLI's -protocols
// flag prints: one line per protocol — evaluated (Table 3) entries first,
// variants after — with its one-line description.
func ProtocolList() string {
	var b strings.Builder
	for _, d := range protocol.Descriptors() {
		kind := "evaluated"
		if !d.Evaluated {
			kind = "variant"
		}
		fmt.Fprintf(&b, "%-22s %-10s %s\n", d.Name, kind, d.Doc)
	}
	return b.String()
}

// CheckProtocol validates one -protocol flag value against the registry, so
// a typo fails at flag handling with the full list of registered names
// instead of deep inside system.Run.
func CheckProtocol(name string) error {
	if _, ok := protocol.Lookup(name); !ok {
		return fmt.Errorf("unknown protocol %q (registered: %s; -protocols describes them)",
			name, strings.Join(protocol.Names(), ", "))
	}
	return nil
}

// WorkloadList renders the workload-source registry for every CLI's
// -workloads list flag: the synthetic default first, then the adversarial
// family, plus the replay spec syntax.
func WorkloadList() string {
	var b strings.Builder
	for _, d := range workload.Descriptors() {
		kind := "default"
		if d.Adversarial {
			kind = "adversarial"
		}
		fmt.Fprintf(&b, "%-14s %-12s %s\n", d.Name, kind, d.Doc)
	}
	fmt.Fprintf(&b, "%-14s %-12s %s\n", "replay:PATH", "trace",
		"replay the recorded workload trace at PATH bit-identically")
	return b.String()
}

// CheckWorkload validates one -workload flag value ("" selects the synthetic
// default), so a typo fails at flag handling with the registered names.
func CheckWorkload(spec string) error {
	_, err := workload.Resolve(spec)
	return err
}
