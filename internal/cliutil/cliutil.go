// Package cliutil holds small helpers shared by the cmd/ front-ends:
// rendering the protocol registry for every CLI's -protocols list flag,
// validating -protocol selections before a machine is built, the shared
// process exit-code contract, and the SIGINT/SIGTERM cancellation context
// every long-running tool installs.
package cliutil

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"

	scalablebulk "scalablebulk"
	"scalablebulk/internal/protocol"
	"scalablebulk/internal/workload"
)

// Exit codes shared by every CLI (sbsim, sbfig, sbbench, sbsoak, sbserver,
// sbworker): success, setup/internal error, aborted by signal or deadline,
// and completed-with-point-failures. Failure beats abort so a crashed point
// is never mistaken for a clean Ctrl-C.
const (
	ExitOK            = 0
	ExitError         = 1
	ExitAborted       = 2
	ExitPointFailures = 3
)

// SignalContext returns a context canceled on SIGINT/SIGTERM, plus its stop
// function. After stop (or after the first signal) a second signal falls
// back to the default handler and kills the process — the standard
// "graceful once, forceful twice" contract all the CLIs share.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// SweepExitCode prints one FAIL line per failed point to w (tool prefixes
// the lines, stderr style) and maps the outcome to the shared exit-code
// contract: point failures beat aborts, a clean abort is ExitAborted, and a
// fully completed sweep is ExitOK.
func SweepExitCode(w io.Writer, tool string, out *scalablebulk.SweepOutcome) int {
	if w == nil {
		w = io.Discard
	}
	for _, f := range out.Failures {
		fmt.Fprintf(w, "%s: FAIL %s/%s/%d: %v\n",
			tool, f.Point.App, f.Point.Protocol, f.Point.Cores, f.Err)
	}
	switch {
	case len(out.Failures) > 0:
		return ExitPointFailures
	case out.Aborted:
		return ExitAborted
	}
	return ExitOK
}

// NewLogger builds the structured logger behind every CLI's -log-format
// flag: "text" (human-readable key=value) or "json" (one JSON object per
// line, for log shippers). An unknown format errors at flag-handling time.
func NewLogger(format string, w io.Writer) (*slog.Logger, error) {
	if w == nil {
		w = os.Stderr
	}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// ProtocolList renders the registry as the listing every CLI's -protocols
// flag prints: one line per protocol — evaluated (Table 3) entries first,
// variants after — with its one-line description.
func ProtocolList() string {
	var b strings.Builder
	for _, d := range protocol.Descriptors() {
		kind := "evaluated"
		if !d.Evaluated {
			kind = "variant"
		}
		fmt.Fprintf(&b, "%-22s %-10s %s\n", d.Name, kind, d.Doc)
	}
	return b.String()
}

// CheckProtocol validates one -protocol flag value against the registry, so
// a typo fails at flag handling with the full list of registered names
// instead of deep inside system.Run.
func CheckProtocol(name string) error {
	if _, ok := protocol.Lookup(name); !ok {
		return fmt.Errorf("unknown protocol %q (registered: %s; -protocols describes them)",
			name, strings.Join(protocol.Names(), ", "))
	}
	return nil
}

// WorkloadList renders the workload-source registry for every CLI's
// -workloads list flag: the synthetic default first, then the adversarial
// family, plus the replay spec syntax.
func WorkloadList() string {
	var b strings.Builder
	for _, d := range workload.Descriptors() {
		kind := "default"
		if d.Adversarial {
			kind = "adversarial"
		}
		fmt.Fprintf(&b, "%-14s %-12s %s\n", d.Name, kind, d.Doc)
	}
	fmt.Fprintf(&b, "%-14s %-12s %s\n", "replay:PATH", "trace",
		"replay the recorded workload trace at PATH bit-identically")
	return b.String()
}

// CheckWorkload validates one -workload flag value ("" selects the synthetic
// default), so a typo fails at flag handling with the registered names.
func CheckWorkload(spec string) error {
	_, err := workload.Resolve(spec)
	return err
}
