package cliutil

import (
	"errors"
	"strings"
	"testing"

	scalablebulk "scalablebulk"
)

func TestSweepExitCode(t *testing.T) {
	fail := scalablebulk.PointFailure{
		Point: scalablebulk.Point{App: "Radix", Protocol: "TCC", Cores: 8},
		Err:   errors.New("boom"),
	}
	cases := []struct {
		name string
		out  scalablebulk.SweepOutcome
		want int
	}{
		{"clean", scalablebulk.SweepOutcome{Points: 2, Completed: 2}, ExitOK},
		{"aborted", scalablebulk.SweepOutcome{Points: 2, Completed: 1, Aborted: true}, ExitAborted},
		{"failures", scalablebulk.SweepOutcome{Points: 2, Completed: 1,
			Failures: []scalablebulk.PointFailure{fail}}, ExitPointFailures},
		// Failures beat aborts: a crashed point must not look like Ctrl-C.
		{"failures_and_abort", scalablebulk.SweepOutcome{Points: 2, Aborted: true,
			Failures: []scalablebulk.PointFailure{fail}}, ExitPointFailures},
	}
	for _, tc := range cases {
		var b strings.Builder
		if got := SweepExitCode(&b, "tool", &tc.out); got != tc.want {
			t.Errorf("%s: exit code = %d, want %d", tc.name, got, tc.want)
		}
		if len(tc.out.Failures) > 0 && !strings.Contains(b.String(), "tool: FAIL Radix/TCC/8") {
			t.Errorf("%s: missing FAIL line, got %q", tc.name, b.String())
		}
	}
	if got := SweepExitCode(nil, "tool", &scalablebulk.SweepOutcome{}); got != ExitOK {
		t.Errorf("nil writer: exit code = %d, want 0", got)
	}
}

func TestSignalContext(t *testing.T) {
	ctx, stop := SignalContext()
	if ctx.Err() != nil {
		t.Fatalf("fresh signal context already canceled: %v", ctx.Err())
	}
	stop()
	select {
	case <-ctx.Done():
	default:
		t.Fatal("stop() did not cancel the context")
	}
}
