package mem

import (
	"testing"
	"testing/quick"

	"scalablebulk/internal/sig"
)

func TestPageOf(t *testing.T) {
	if PageOf(0) != 0 || PageOf(127) != 0 {
		t.Fatal("lines 0..127 must share page 0")
	}
	if PageOf(128) != 1 {
		t.Fatalf("line 128 in page %d, want 1", PageOf(128))
	}
}

func TestLineOfAddr(t *testing.T) {
	if LineOfAddr(0) != 0 || LineOfAddr(31) != 0 || LineOfAddr(32) != 1 {
		t.Fatal("byte→line conversion wrong")
	}
}

func TestFirstTouchSticky(t *testing.T) {
	m := NewMapper(8)
	l := sig.Line(1000)
	h := m.Home(l, 5)
	if h != 5 {
		t.Fatalf("first touch by 5 assigned home %d", h)
	}
	// Subsequent touches by other nodes do not move the page.
	if got := m.Home(l, 2); got != 5 {
		t.Fatalf("home moved to %d", got)
	}
	// Same page, different line → same home.
	if got := m.Home(l+1, 7); got != 5 {
		t.Fatalf("same-page line got home %d", got)
	}
	// Different page is independent.
	if got := m.Home(l+LinesPerPage, 7); got != 7 {
		t.Fatalf("new page home = %d, want 7", got)
	}
}

func TestHomeIfMapped(t *testing.T) {
	m := NewMapper(4)
	if _, ok := m.HomeIfMapped(50); ok {
		t.Fatal("unmapped page reported mapped")
	}
	m.Home(50, 3)
	d, ok := m.HomeIfMapped(50)
	if !ok || d != 3 {
		t.Fatalf("HomeIfMapped = %d,%v", d, ok)
	}
	if m.MappedPages() != 1 {
		t.Fatalf("MappedPages = %d", m.MappedPages())
	}
}

func TestSingleDirectoryMachine(t *testing.T) {
	m := NewMapper(1)
	for i := 0; i < 100; i++ {
		if m.Home(sig.Line(i*1000), i%7) != 0 {
			t.Fatal("single-dir machine must home everything at 0")
		}
	}
}

// Property: the home of any line is a valid directory and stable across
// repeated touches from arbitrary nodes.
func TestPropertyHomeStable(t *testing.T) {
	m := NewMapper(16)
	f := func(line uint32, t1, t2 uint8) bool {
		l := sig.Line(line)
		h1 := m.Home(l, int(t1)%16)
		h2 := m.Home(l, int(t2)%16)
		return h1 == h2 && h1 >= 0 && h1 < 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
