// Package mem models the physical address space of the simulated machine:
// 32-byte cache lines, 4 KB pages, and the simple first-touch policy that
// maps virtual pages to physical pages in the directory modules ("A simple
// first-touch policy is used to map virtual pages to physical pages in the
// directory modules", §5 of the paper).
package mem

import "scalablebulk/internal/sig"

const (
	// LineBytes is the cache-line size (Table 2: 32 B lines).
	LineBytes = 32
	// PageBytes is the virtual/physical page size.
	PageBytes = 4096
	// LinesPerPage is the number of cache lines in a page.
	LinesPerPage = PageBytes / LineBytes
	// pageShift converts a line address to a page number.
	pageShift = 7 // log2(LinesPerPage)
)

// Page is a page number (line address >> pageShift).
type Page uint64

// PageOf returns the page containing a line.
func PageOf(l sig.Line) Page { return Page(l >> pageShift) }

// LineOfAddr converts a byte address to its line address.
func LineOfAddr(addr uint64) sig.Line { return sig.Line(addr / LineBytes) }

// Mapper assigns pages to home directory modules with a first-touch policy:
// the first node to touch a page becomes its home. The assignment is sticky
// for the lifetime of a run, as in a real OS page table.
type Mapper struct {
	dirs  int
	pages map[Page]int
	next  int // round-robin fallback for touches from out-of-range nodes
}

// NewMapper creates a mapper for a machine with the given number of
// directory modules (one per tile).
func NewMapper(dirs int) *Mapper {
	if dirs <= 0 {
		panic("mem: need at least one directory module")
	}
	return &Mapper{dirs: dirs, pages: make(map[Page]int)}
}

// Dirs returns the number of directory modules.
func (m *Mapper) Dirs() int { return m.dirs }

// Home returns the home directory module of a line, assigning the page to
// the toucher's tile on first touch.
func (m *Mapper) Home(l sig.Line, toucher int) int {
	p := PageOf(l)
	if d, ok := m.pages[p]; ok {
		return d
	}
	d := toucher % m.dirs
	m.pages[p] = d
	return d
}

// HomeIfMapped returns the home of a line if its page has been touched.
func (m *Mapper) HomeIfMapped(l sig.Line) (int, bool) {
	d, ok := m.pages[PageOf(l)]
	return d, ok
}

// MappedPages returns the number of pages that have been assigned a home.
func (m *Mapper) MappedPages() int { return len(m.pages) }
