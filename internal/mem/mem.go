// Package mem models the physical address space of the simulated machine:
// 32-byte cache lines, 4 KB pages, and the simple first-touch policy that
// maps virtual pages to physical pages in the directory modules ("A simple
// first-touch policy is used to map virtual pages to physical pages in the
// directory modules", §5 of the paper).
package mem

import (
	"sync"
	"sync/atomic"

	"scalablebulk/internal/sig"
)

const (
	// LineBytes is the cache-line size (Table 2: 32 B lines).
	LineBytes = 32
	// PageBytes is the virtual/physical page size.
	PageBytes = 4096
	// LinesPerPage is the number of cache lines in a page.
	LinesPerPage = PageBytes / LineBytes
	// pageShift converts a line address to a page number.
	pageShift = 7 // log2(LinesPerPage)
)

// Page is a page number (line address >> pageShift).
type Page uint64

// PageOf returns the page containing a line.
func PageOf(l sig.Line) Page { return Page(l >> pageShift) }

// LineOfAddr converts a byte address to its line address.
func LineOfAddr(addr uint64) sig.Line { return sig.Line(addr / LineBytes) }

// Mapper assigns pages to home directory modules with a first-touch policy:
// the first node to touch a page becomes its home. The assignment is sticky
// for the lifetime of a run, as in a real OS page table.
type Mapper struct {
	dirs  int
	pages map[Page]int
	next  int // round-robin fallback for touches from out-of-range nodes

	// Locked-mode support for sharded runs (EnableLocking): the page table
	// is consulted concurrently by the shard workers during parallel
	// read-path rounds, so accesses take mu. First touches remain legal in
	// parallel rounds — a single toucher mapping a fresh page is
	// order-independent — but if a *second* tile whose first-touch home
	// would differ reaches a page mapped earlier in the same round, the
	// mapping has become schedule-dependent and the hazard flag trips; the
	// run aborts rather than risk a fingerprint that depends on S.
	mu       sync.RWMutex
	locked   bool
	inRound  bool
	roundNew map[Page]int // pages first-touched in the current parallel round
	hazard   atomic.Bool
	hazardPg atomic.Uint64
}

// NewMapper creates a mapper for a machine with the given number of
// directory modules (one per tile).
func NewMapper(dirs int) *Mapper {
	if dirs <= 0 {
		panic("mem: need at least one directory module")
	}
	return &Mapper{dirs: dirs, pages: make(map[Page]int)}
}

// Dirs returns the number of directory modules.
func (m *Mapper) Dirs() int { return m.dirs }

// Home returns the home directory module of a line, assigning the page to
// the toucher's tile on first touch.
func (m *Mapper) Home(l sig.Line, toucher int) int {
	p := PageOf(l)
	if !m.locked {
		if d, ok := m.pages[p]; ok {
			return d
		}
		d := toucher % m.dirs
		m.pages[p] = d
		return d
	}
	m.mu.RLock()
	d, ok := m.pages[p]
	var newHome int
	fresh := false
	if ok && m.inRound {
		newHome, fresh = m.roundNew[p]
	}
	m.mu.RUnlock()
	if ok {
		if fresh && toucher%m.dirs != newHome {
			m.flagHazard(p)
		}
		return d
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if d, ok := m.pages[p]; ok {
		// Another worker mapped the page between our read and write locks.
		if m.inRound {
			if h, fr := m.roundNew[p]; fr && toucher%m.dirs != h {
				m.flagHazard(p)
			}
		}
		return d
	}
	d = toucher % m.dirs
	m.pages[p] = d
	if m.inRound {
		m.roundNew[p] = d
	}
	return d
}

func (m *Mapper) flagHazard(p Page) {
	m.hazardPg.Store(uint64(p))
	m.hazard.Store(true)
}

// EnableLocking switches the mapper into the thread-safe mode sharded runs
// need. Serial runs never call it and keep the zero-overhead path.
func (m *Mapper) EnableLocking() {
	m.locked = true
	m.roundNew = make(map[Page]int)
}

// BeginParallelRound arms first-touch hazard detection for one parallel
// round (locked mode only; called by the system layer from the sharded
// engine's round hooks).
func (m *Mapper) BeginParallelRound() {
	clear(m.roundNew)
	m.inRound = true
}

// EndParallelRound disarms first-touch hazard detection.
func (m *Mapper) EndParallelRound() { m.inRound = false }

// Hazard reports whether a schedule-dependent first-touch collision was
// detected, and the page it happened on.
func (m *Mapper) Hazard() (Page, bool) {
	if !m.hazard.Load() {
		return 0, false
	}
	return Page(m.hazardPg.Load()), true
}

// HomeIfMapped returns the home of a line if its page has been touched.
func (m *Mapper) HomeIfMapped(l sig.Line) (int, bool) {
	if m.locked {
		m.mu.RLock()
		defer m.mu.RUnlock()
	}
	d, ok := m.pages[PageOf(l)]
	return d, ok
}

// MappedPages returns the number of pages that have been assigned a home.
func (m *Mapper) MappedPages() int {
	if m.locked {
		m.mu.RLock()
		defer m.mu.RUnlock()
	}
	return len(m.pages)
}
