package workload

// The adversarial generator family: seeded, deterministic chunk streams
// aimed at commit-protocol weak spots rather than at reproducing the paper's
// applications. Each named instance is one parameter block (the same
// named-profile template as internal/fault's injection profiles) registered
// as a workload source, so every suite that iterates the registry — golden,
// conformance, differential, soak — confronts every protocol with these
// patterns for free. Like the synthetic generator, chunk (proc, seq) is a
// pure function of (params, threads, seed), so squashed chunks re-execute
// identically and runs are bit-identical per seed.

import (
	"math"
	"math/rand"

	"scalablebulk/internal/chunk"
	"scalablebulk/internal/mem"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/sig"
)

// Adversarial-region page layout: each family gets its own base, far from
// both the synthetic shared region (1<<20) and the private region (1<<22),
// so footprints of different kinds can never collide accidentally.
const (
	advZipfBase   = 1<<21 + 0x00000 // zipfian hot pool
	advPipeBase   = 1<<21 + 0x10000 // one buffer page per pipeline stage
	advConvoyBase = 1<<21 + 0x20000 // lock words + queue-head page
	advStormBase  = 1<<21 + 0x30000 // directory-hotspot page array
	advKVBase     = 1<<21 + 0x40000 // KV-store key space

	// advPrivatePages is the adversarial sources' per-thread private
	// working set: a small request-state footprint, not the application
	// working sets the synthetic profiles model.
	advPrivatePages = 16
)

// AdvParams is the shared parameter template of the adversarial family.
// Every named instance fills the subset its kind reads; the zero value of
// an unused field is ignored.
type AdvParams struct {
	Kind string // zipf | pipeline | convoy | stormdir | kvstore

	// Accesses is the line-granular footprint per chunk.
	Accesses int
	// WriteFrac is the write probability of shared accesses (zipf, kvstore).
	WriteFrac float64
	// PrivateFrac is the fraction of accesses directed at the thread's
	// private request state.
	PrivateFrac float64
	// Skew is the zipfian exponent s (> 1) of hot-line / hot-key popularity.
	Skew float64
	// Lines sizes the contended pool: hot lines (zipf) or keys (kvstore).
	Lines int
	// Payload is the producer–consumer block length in lines (pipeline) and
	// the per-chunk page fan-out (stormdir).
	Payload int
	// Locks is the number of contended lock lines (convoy).
	Locks int
	// StormDirs is how many directory modules home the entire storm region
	// (stormdir): every commit's write group converges on these few modules.
	StormDirs int
	// StormPages sizes the storm region (stormdir).
	StormPages int
}

// advInstances are the registered named generators. Parameters are sized so
// conflicts and hotspots fire hard at 8–64 cores while short test runs still
// complete under every protocol's watchdog.
var advInstances = []struct {
	name, doc string
	p         AdvParams
}{
	{
		name: "zipf",
		doc:  "zipfian hot-line sharing: all cores read/write a skewed hot pool (conflict storm)",
		p: AdvParams{Kind: "zipf", Accesses: 24, WriteFrac: 0.35,
			PrivateFrac: 0.45, Skew: 1.2, Lines: 64},
	},
	{
		name: "pipeline",
		doc:  "producer-consumer pipeline: core p writes the block core p+1 reads (neighbor squash chains)",
		p: AdvParams{Kind: "pipeline", Accesses: 24, PrivateFrac: 0.3,
			Payload: 8},
	},
	{
		name: "convoy",
		doc:  "lock convoy: every chunk writes one of a few lock lines (total commit serialization)",
		p: AdvParams{Kind: "convoy", Accesses: 16, PrivateFrac: 0.5,
			Locks: 2},
	},
	{
		name: "stormdir",
		doc:  "directory-hotspot storm: disjoint write sets that all home at two directory modules",
		p: AdvParams{Kind: "stormdir", Accesses: 24, PrivateFrac: 0.35,
			Payload: 8, StormDirs: 2, StormPages: 128},
	},
	{
		name: "kvstore",
		doc:  "millions-of-users KV store: zipf-popular keys over a huge space, read-mostly, no spatial locality",
		p: AdvParams{Kind: "kvstore", Accesses: 32, WriteFrac: 0.06,
			PrivateFrac: 0.25, Skew: 1.07, Lines: 1 << 17},
	},
}

// AdvByName returns the parameter block of a registered adversarial
// generator (for tests and tooling).
func AdvByName(name string) (AdvParams, bool) {
	for _, in := range advInstances {
		if in.name == name {
			return in.p, true
		}
	}
	return AdvParams{}, false
}

func init() {
	for _, in := range advInstances {
		in := in
		Register(Descriptor{
			Name:        in.name,
			Doc:         in.doc,
			Adversarial: true,
			New: func(prof Profile, threads int, seed int64) (Source, error) {
				return newAdv(in.name, in.p, threads, seed), nil
			},
		})
	}
}

// adv implements Source for one adversarial parameter block.
type adv struct {
	name    string
	p       AdvParams
	threads int
	seed    int64
}

func newAdv(name string, p AdvParams, threads int, seed int64) *adv {
	return &adv{name: name, p: p, threads: threads, seed: seed}
}

func (a *adv) PagesPerThread() int { return advPrivatePages }

func (a *adv) NextChunk(proc int, seq uint64) *chunk.Chunk {
	return a.gen(proc, seq, false)
}

func (a *adv) WarmupChunk(proc int, i int) *chunk.Chunk {
	return a.gen(proc, ^uint64(0)-uint64(i), true)
}

// hashName folds the generator name into the seed chain so two generators
// under one seed produce unrelated streams.
func hashName(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

func (a *adv) rng(proc int, seq uint64) *rand.Rand {
	h := splitmix64(uint64(a.seed) ^ hashName(a.name))
	h = splitmix64(h ^ uint64(proc))
	h = splitmix64(h ^ seq)
	return rand.New(rand.NewSource(int64(h)))
}

// privateLine picks a line in the thread's private region with skewed reuse.
func (a *adv) privateLine(rng *rand.Rand, proc int) sig.Line {
	page := uint64(privateBasePage+proc*privateStride) +
		uint64(math.Pow(rng.Float64(), 2.5)*float64(advPrivatePages))
	return sig.Line(page*mem.LinesPerPage + uint64(rng.Intn(mem.LinesPerPage)))
}

func (a *adv) gen(proc int, seq uint64, warmup bool) *chunk.Chunk {
	rng := a.rng(proc, seq)
	ck := &chunk.Chunk{
		Tag:   msg.CTag{Proc: proc, Seq: seq},
		Instr: 2000,
	}
	if warmup {
		a.genWarmup(rng, proc, ck)
		return ck
	}
	switch a.p.Kind {
	case "zipf":
		a.genZipf(rng, proc, ck)
	case "pipeline":
		a.genPipeline(rng, proc, seq, ck)
	case "convoy":
		a.genConvoy(rng, proc, seq, ck)
	case "stormdir":
		a.genStorm(rng, proc, ck)
	case "kvstore":
		a.genKV(rng, proc, ck)
	default:
		panic("workload: unknown adversarial kind " + a.p.Kind)
	}
	return ck
}

func (a *adv) add(ck *chunk.Chunk, l sig.Line, write bool) {
	ck.Accesses = append(ck.Accesses, chunk.Access{Line: l, Write: write})
}

// genWarmup touches the kind's shared structures with a fixed round-robin
// page-to-core assignment — first-touch homes spread across the machine the
// way an initialization phase would assign them — plus the thread's private
// request state. stormdir is the exception: its whole region is first-touched
// by cores 0..StormDirs-1 only, which is precisely what concentrates every
// commit on those few directory modules.
func (a *adv) genWarmup(rng *rand.Rand, proc int, ck *chunk.Chunk) {
	switch a.p.Kind {
	case "zipf":
		pages := poolPages(a.p.Lines)
		for j := proc % a.threads; j < pages; j += a.threads {
			a.add(ck, sig.Line(uint64(advZipfBase+j)*mem.LinesPerPage), false)
		}
	case "pipeline":
		// Each stage initializes its own buffer page (the producer writes
		// it first in a real pipeline).
		a.add(ck, sig.Line(uint64(advPipeBase+proc)*mem.LinesPerPage), true)
	case "convoy":
		if proc == 0 {
			// The lock words and queue head live on one page, homed where
			// the lock was initialized.
			a.add(ck, sig.Line(uint64(advConvoyBase)*mem.LinesPerPage), true)
		}
	case "stormdir":
		if proc < a.p.StormDirs {
			for j := proc; j < a.p.StormPages; j += a.p.StormDirs {
				a.add(ck, sig.Line(uint64(advStormBase+j)*mem.LinesPerPage), false)
			}
		}
	case "kvstore":
		// With a million-key space only the head pages get pre-warmed
		// homes; the tail is first-touched (deterministically) during
		// measurement, like a cold KV cache filling.
		pages := poolPages(a.p.Lines)
		n := 0
		for j := proc % a.threads; j < pages && n < 32; j += a.threads {
			a.add(ck, sig.Line(uint64(advKVBase+j)*mem.LinesPerPage), false)
			n++
		}
	}
	for k := 0; k < 4; k++ {
		a.add(ck, a.privateLine(rng, proc), false)
	}
}

// poolPages is how many pages hold a pool of n lines.
func poolPages(n int) int { return (n + mem.LinesPerPage - 1) / mem.LinesPerPage }

// genZipf: every shared access draws a line from a zipf(s) distribution over
// a small hot pool shared by all cores. The head of the distribution is so
// popular that concurrent chunks collide constantly — the true-sharing storm
// the synthetic profiles keep at the paper's ~1.5% squash rate.
func (a *adv) genZipf(rng *rand.Rand, proc int, ck *chunk.Chunk) {
	z := rand.NewZipf(rng, a.p.Skew, 1, uint64(a.p.Lines-1))
	for len(ck.Accesses) < a.p.Accesses {
		if rng.Float64() < a.p.PrivateFrac {
			a.add(ck, a.privateLine(rng, proc), false)
			continue
		}
		rank := z.Uint64()
		line := sig.Line(uint64(advZipfBase)*mem.LinesPerPage + rank)
		a.add(ck, line, rng.Float64() < a.p.WriteFrac)
	}
}

// genPipeline: stage p consumes the block stage p-1 produced and produces
// its own. Concurrent neighbors conflict on every handoff slot — the squash
// chains ripple down the pipe, the pathological case for eager invalidation.
func (a *adv) genPipeline(rng *rand.Rand, proc int, seq uint64, ck *chunk.Chunk) {
	slots := mem.LinesPerPage / a.p.Payload
	slot := int(seq) % slots
	prev := (proc + a.threads - 1) % a.threads
	readBase := uint64(advPipeBase+prev)*mem.LinesPerPage + uint64(slot*a.p.Payload)
	writeBase := uint64(advPipeBase+proc)*mem.LinesPerPage + uint64(slot*a.p.Payload)
	for k := 0; k < a.p.Payload; k++ {
		a.add(ck, sig.Line(readBase+uint64(k)), false)
	}
	for k := 0; k < a.p.Payload; k++ {
		a.add(ck, sig.Line(writeBase+uint64(k)), true)
	}
	for len(ck.Accesses) < a.p.Accesses {
		a.add(ck, a.privateLine(rng, proc), rng.Float64() < 0.3)
	}
}

// genConvoy: every chunk acquires one of a few locks — a read-modify-write
// of the lock line all cores contend on — then does private work. Commits
// serialize completely; the protocols must drain the convoy without
// starvation or livelock.
func (a *adv) genConvoy(rng *rand.Rand, proc int, seq uint64, ck *chunk.Chunk) {
	lock := uint64(advConvoyBase)*mem.LinesPerPage + seq%uint64(a.p.Locks)
	a.add(ck, sig.Line(lock), true)
	// Read the queue head (read-mostly sharing on the same page).
	a.add(ck, sig.Line(uint64(advConvoyBase)*mem.LinesPerPage+uint64(a.p.Locks)), false)
	for len(ck.Accesses) < a.p.Accesses {
		a.add(ck, a.privateLine(rng, proc), rng.Float64() < 0.4)
	}
}

// genStorm: each core writes its own line (offset = core id) in Payload
// random pages of a region whose every page homes at one of StormDirs
// directory modules. Concurrent write sets are address-disjoint — zero data
// conflicts — yet every commit's write group converges on the same couple of
// directories: the case that serializes TCC and SEQ but not ScalableBulk
// (§2.1), pushed to its limit.
func (a *adv) genStorm(rng *rand.Rand, proc int, ck *chunk.Chunk) {
	off := uint64(proc % mem.LinesPerPage)
	for k := 0; k < a.p.Payload; k++ {
		page := uint64(advStormBase + rng.Intn(a.p.StormPages))
		a.add(ck, sig.Line(page*mem.LinesPerPage+off), true)
	}
	for len(ck.Accesses) < a.p.Accesses {
		a.add(ck, a.privateLine(rng, proc), false)
	}
}

// genKV: the "millions of users" pattern — every access is a random key in a
// huge space with zipfian popularity and no spatial locality (each key maps
// to an unrelated line via a hash), read-mostly with a small write fraction.
// Hot-key writes collide across cores; the long tail streams through the
// caches and scatters directory groups machine-wide.
func (a *adv) genKV(rng *rand.Rand, proc int, ck *chunk.Chunk) {
	z := rand.NewZipf(rng, a.p.Skew, 1, uint64(a.p.Lines-1))
	for len(ck.Accesses) < a.p.Accesses {
		if rng.Float64() < a.p.PrivateFrac {
			a.add(ck, a.privateLine(rng, proc), rng.Float64() < 0.5)
			continue
		}
		key := z.Uint64()
		slot := splitmix64(key) % uint64(a.p.Lines)
		line := sig.Line(uint64(advKVBase)*mem.LinesPerPage + slot)
		a.add(ck, line, rng.Float64() < a.p.WriteFrac)
	}
}
