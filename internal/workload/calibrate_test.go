package workload

// Calibration tests: the profiles in profiles.go are tuned against the
// paper's observations (§6.1–§6.2). These tests pin the *footprint shapes*
// the commit protocols see, app by app, so a profile edit that silently
// breaks a paper-visible property fails here. Directory counts are checked
// against a 64-way first-touch assignment built the way system.Run's
// warm-up builds it.

import (
	"testing"

	"scalablebulk/internal/mem"
	"scalablebulk/internal/sig"
)

// footprint summarizes many generated chunks of one app at 64 threads.
type footprint struct {
	dirs, writeDirs float64 // mean directories per chunk (≈ Figures 9/10)
	writeFrac       float64 // fraction of accesses that write
	pages           float64 // mean distinct pages per chunk
}

func measure(t *testing.T, prof Profile) footprint {
	t.Helper()
	const threads, chunksPerProc = 64, 6
	w := New(prof, threads, 1)
	mp := mem.NewMapper(threads)
	// First-touch priming, like system.Run's warm-up.
	for i := 0; i < 32; i++ {
		for p := 0; p < threads; p++ {
			ck := w.WarmupChunk(p, i)
			for _, a := range ck.Accesses {
				mp.Home(a.Line, p)
			}
		}
	}
	var fp footprint
	var accesses, writes float64
	n := 0
	for p := 0; p < threads; p += 4 {
		for s := uint64(0); s < chunksPerProc; s++ {
			ck := w.NextChunk(p, s)
			ck.Finalize(func(l sig.Line) int { return mp.Home(l, p) })
			pages := map[mem.Page]bool{}
			for _, a := range ck.Accesses {
				pages[mem.PageOf(a.Line)] = true
				accesses++
				if a.Write {
					writes++
				}
			}
			fp.dirs += float64(len(ck.Dirs))
			fp.writeDirs += float64(len(ck.WriteDirs))
			fp.pages += float64(len(pages))
			n++
		}
	}
	fp.dirs /= float64(n)
	fp.writeDirs /= float64(n)
	fp.pages /= float64(n)
	fp.writeFrac = writes / accesses
	return fp
}

// band asserts lo ≤ v ≤ hi.
func band(t *testing.T, app, what string, v, lo, hi float64) {
	t.Helper()
	if v < lo || v > hi {
		t.Errorf("%s: %s = %.2f, want in [%.1f, %.1f]", app, what, v, lo, hi)
	}
}

// TestDirectoriesPerCommitBands pins each app's directories-per-commit to
// the band the paper reports (§6.2: "most applications access an average of
// 2–6 directories"; Radix/Barnes/Canneal/Blackscholes above that).
func TestDirectoriesPerCommitBands(t *testing.T) {
	bands := map[string][2]float64{
		// SPLASH-2
		"Radix":     {8, 14},
		"Cholesky":  {1.5, 4},
		"Barnes":    {5, 10},
		"FFT":       {1.5, 4},
		"Water-N":   {2, 5},
		"FMM":       {3.5, 8},
		"LU":        {1, 3},
		"Ocean":     {1, 3.5},
		"Water-S":   {1.5, 4},
		"Radiosity": {3.5, 8},
		"Raytrace":  {3, 7},
		// PARSEC
		"Vips":         {1.5, 4},
		"Swaptions":    {1, 2.5},
		"Blackscholes": {4.5, 9},
		"Fluidanimate": {2.5, 5.5},
		"Canneal":      {6, 11},
		"Dedup":        {2.5, 6},
		"Facesim":      {1.5, 4.5},
	}
	for _, prof := range All() {
		b, ok := bands[prof.Name]
		if !ok {
			t.Fatalf("no band for %s", prof.Name)
		}
		fp := measure(t, prof)
		band(t, prof.Name, "dirs/commit", fp.dirs, b[0], b[1])
	}
}

// TestRadixWriteGroups pins §6.1/§6.2's Radix signature: "practically all
// of the directories in the group record writes".
func TestRadixWriteGroups(t *testing.T) {
	prof, _ := ByName("Radix")
	fp := measure(t, prof)
	if fp.writeDirs < 0.9*fp.dirs {
		t.Fatalf("Radix write groups %.2f of %.2f dirs; want ≥ 90%%", fp.writeDirs, fp.dirs)
	}
	band(t, "Radix", "writeFrac", fp.writeFrac, 0.3, 0.6)
}

// TestRaytraceReadDominated: Raytrace is the read-heavy outlier (wide read
// groups, low write fraction).
func TestRaytraceReadDominated(t *testing.T) {
	prof, _ := ByName("Raytrace")
	fp := measure(t, prof)
	if fp.writeFrac > 0.2 {
		t.Fatalf("Raytrace writeFrac %.2f, want ≤ 0.2", fp.writeFrac)
	}
	if fp.dirs-fp.writeDirs < 0.8 {
		t.Fatalf("Raytrace read-only groups %.2f, want ≥ 0.8", fp.dirs-fp.writeDirs)
	}
}

// TestLocalityOrdering: the locality-friendly apps touch far fewer pages
// per chunk than the scattered ones — the property behind every
// directory-count figure.
func TestLocalityOrdering(t *testing.T) {
	get := func(name string) footprint {
		prof, _ := ByName(name)
		return measure(t, prof)
	}
	lu, canneal, radix := get("LU"), get("Canneal"), get("Radix")
	if lu.pages*2 > canneal.pages {
		t.Fatalf("LU pages/chunk (%.1f) not ≪ Canneal (%.1f)", lu.pages, canneal.pages)
	}
	if lu.pages*2 > radix.pages {
		t.Fatalf("LU pages/chunk (%.1f) not ≪ Radix (%.1f)", lu.pages, radix.pages)
	}
}

// TestSuperlinearWorkingSets: the three §6.1 superlinear apps carry
// whole-problem working sets far beyond one 512 KB L2 (128 pages).
func TestSuperlinearWorkingSets(t *testing.T) {
	for _, name := range []string{"Ocean", "Cholesky", "Raytrace"} {
		prof, _ := ByName(name)
		if prof.TotalPrivatePages < 8*128 {
			t.Errorf("%s working set %d pages; must dwarf one L2 (128 pages)", name, prof.TotalPrivatePages)
		}
	}
}

// TestConflictRatesSmall: §6.1 — data conflicts are rare. The per-chunk
// hot-line write probability stays small for every app.
func TestConflictRatesSmall(t *testing.T) {
	for _, prof := range All() {
		if prof.ConflictFrac > 0.06 {
			t.Errorf("%s ConflictFrac %.2f too high for §6.1's ~1.5%% squash rate", prof.Name, prof.ConflictFrac)
		}
	}
}
