package workload

// The pluggable workload-source layer (DESIGN.md §14): the synthetic
// SPLASH-2/PARSEC generator, the adversarial family, and trace replay all
// implement one Source contract behind a named registry (mirroring the
// protocol registry of §12), so internal/system builds chunk streams without
// naming any concrete generator and every registered source is iterated by
// the conformance and differential suites for free.

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"scalablebulk/internal/chunk"
)

// Source produces the chunk streams of one simulated run. Implementations
// must be deterministic: NextChunk(proc, seq) is a pure function of the
// source's construction parameters, so a squashed chunk re-executes
// identically and two runs of one configuration are bit-identical.
type Source interface {
	// NextChunk returns the seq-th measured chunk of core proc.
	NextChunk(proc int, seq uint64) *chunk.Chunk
	// WarmupChunk returns the i-th cache/page-table warm-up footprint of
	// core proc; warm-up assigns first-touch directory homes.
	WarmupChunk(proc int, i int) *chunk.Chunk
	// PagesPerThread is each thread's private working set in pages.
	PagesPerThread() int
}

// Validator is implemented by sources that can only serve specific machine
// shapes (trace replay). internal/system calls it after construction and
// fails the run with the returned error instead of panicking mid-stream.
type Validator interface {
	Validate(cores, chunksPerCore, warmupChunks int) error
}

// Factory builds a Source for one run. prof parameterizes the synthetic
// generator; adversarial generators and replay ignore everything but its
// name. threads and seed come from the run's Config.
type Factory func(prof Profile, threads int, seed int64) (Source, error)

// SourceName is the registry key of the default synthetic generator.
const SourceName = "synthetic"

// replayPrefix introduces a trace-replay spec: "replay:PATH".
const replayPrefix = "replay:"

// Descriptor declares one registered workload source.
type Descriptor struct {
	// Name is the registry key, matched exactly against Config.Workload and
	// the CLIs' -workload flags.
	Name string
	// Doc is the one-line description printed by the CLIs' -workloads list.
	Doc string
	// Adversarial marks generators aimed at commit-protocol weak spots;
	// they ignore the application profile (except as a label) and are
	// addressable as run labels through SourceProfile.
	Adversarial bool
	// New builds the source.
	New Factory
}

var (
	regMu    sync.RWMutex
	registry = map[string]Descriptor{}
)

// Register adds a workload source to the registry; source families call it
// from init. It panics on duplicates or incomplete descriptors — programming
// errors caught on first use, exactly like the protocol registry.
func Register(d Descriptor) {
	if d.Name == "" || d.New == nil {
		panic(fmt.Sprintf("workload: incomplete descriptor %+v", d))
	}
	if strings.HasPrefix(d.Name, replayPrefix) {
		panic(fmt.Sprintf("workload: %q collides with the replay spec syntax", d.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[d.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate registration of %q", d.Name))
	}
	registry[d.Name] = d
}

// Lookup returns the descriptor registered under name.
func Lookup(name string) (Descriptor, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	d, ok := registry[name]
	return d, ok
}

// Descriptors returns every registered source, the synthetic default first,
// the rest by name.
func Descriptors() []Descriptor {
	regMu.RLock()
	out := make([]Descriptor, 0, len(registry))
	for _, d := range registry {
		out = append(out, d)
	}
	regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if a, b := out[i].Name == SourceName, out[j].Name == SourceName; a != b {
			return a
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Names returns every registered source name in Descriptors order.
func Names() []string {
	ds := Descriptors()
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Name
	}
	return out
}

// Resolve maps a -workload / Config.Workload spec to a factory: "" and
// "synthetic" select the default generator, "replay:PATH" replays the trace
// at PATH, anything else is a registry lookup.
func Resolve(spec string) (Factory, error) {
	if spec == "" {
		spec = SourceName
	}
	if path, ok := strings.CutPrefix(spec, replayPrefix); ok {
		return ReplayFile(path), nil
	}
	d, ok := Lookup(spec)
	if !ok {
		return nil, fmt.Errorf("workload: unknown source %q (registered: %s)",
			spec, strings.Join(Names(), ", "))
	}
	return d.New, nil
}

// SourceProfile returns the label Profile under which a non-synthetic
// registered source runs (Result.App, journal keys, golden names): the
// source's own name. The synthetic generator has no label of its own — it
// models whatever application profile it is given — so it reports ok=false,
// as does an unknown name.
func SourceProfile(name string) (Profile, bool) {
	d, ok := Lookup(name)
	if !ok || d.Name == SourceName {
		return Profile{}, false
	}
	return Profile{Name: d.Name, Suite: "WORKLOAD"}, true
}

func init() {
	Register(Descriptor{
		Name: SourceName,
		Doc:  "synthetic SPLASH-2/PARSEC application models (§5, the default)",
		New: func(prof Profile, threads int, seed int64) (Source, error) {
			return New(prof, threads, seed), nil
		},
	})
}
