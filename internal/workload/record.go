package workload

// Trace record and replay (DESIGN.md §14): a Recording interposes on any
// registered source and captures every chunk the simulator requests —
// warm-up included — into an internal/tracefmt trace; a replay source serves
// a decoded trace back, reproducing the recorded run bit-identically
// (ResultFingerprint-verified by the replay suite). Real traces and
// fuzzer/sbcheck-minimized regressions thereby become first-class workloads:
// anything expressible as a trace file runs under every registered protocol.

import (
	"fmt"

	"scalablebulk/internal/chunk"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/tracefmt"
)

// Recording captures the chunk streams of exactly one run. Build one with
// Record, pass the factory as Config.WorkloadFactory, run, then call Trace.
type Recording struct {
	spec   string
	warmup map[tracefmt.Key]tracefmt.Rec
	chunks map[tracefmt.Key]tracefmt.Rec
	hdr    tracefmt.Header
	used   bool
}

// Record resolves spec (a registry name or "replay:PATH") and returns a
// Recording plus the factory that instruments it. The factory supports a
// single run: recording interleaved streams of two machines into one trace
// would be meaningless, so a second instantiation fails.
func Record(spec string) (*Recording, Factory, error) {
	inner, err := Resolve(spec)
	if err != nil {
		return nil, nil, err
	}
	if spec == "" {
		spec = SourceName
	}
	rec := &Recording{
		spec:   spec,
		warmup: map[tracefmt.Key]tracefmt.Rec{},
		chunks: map[tracefmt.Key]tracefmt.Rec{},
	}
	factory := func(prof Profile, threads int, seed int64) (Source, error) {
		if rec.used {
			return nil, fmt.Errorf("workload: a Recording captures a single run; build a new one per run")
		}
		rec.used = true
		src, err := inner(prof, threads, seed)
		if err != nil {
			return nil, err
		}
		rec.hdr = tracefmt.Header{
			App: prof.Name, Source: spec, Threads: threads,
			PagesPerThread: src.PagesPerThread(), Seed: seed,
		}
		return &recorder{rec: rec, inner: src}, nil
	}
	return rec, factory, nil
}

// SetRunMeta attaches the recording run's provenance — its protocol and the
// SHA-256 hex of its ResultFingerprint — for later `sbtracewl verify`.
func (r *Recording) SetRunMeta(protocol, fingerprintSHA string) {
	r.hdr.Protocol = protocol
	r.hdr.Fingerprint = fingerprintSHA
}

// Trace assembles the captured streams into a canonical trace. ChunksPerCore
// and WarmupPerCore are derived from what the run actually requested.
func (r *Recording) Trace() *tracefmt.Trace {
	t := &tracefmt.Trace{Header: r.hdr}
	maxSeq, maxWarm := -1, -1
	for k, rec := range r.chunks {
		t.Chunks = append(t.Chunks, rec)
		if int(k.Seq) > maxSeq {
			maxSeq = int(k.Seq)
		}
	}
	for k, rec := range r.warmup {
		t.Warmup = append(t.Warmup, rec)
		if int(k.Seq) > maxWarm {
			maxWarm = int(k.Seq)
		}
	}
	t.Header.ChunksPerCore = maxSeq + 1
	t.Header.WarmupPerCore = maxWarm + 1
	tracefmt.SortRecs(t.Warmup)
	tracefmt.SortRecs(t.Chunks)
	return t
}

// recorder wraps the live source, deduplicating by key: a squashed chunk is
// re-requested and must (and does) regenerate identically, so one copy
// suffices.
type recorder struct {
	rec   *Recording
	inner Source
}

func (r *recorder) PagesPerThread() int { return r.inner.PagesPerThread() }

func (r *recorder) NextChunk(proc int, seq uint64) *chunk.Chunk {
	ck := r.inner.NextChunk(proc, seq)
	k := tracefmt.Key{Proc: proc, Seq: seq}
	if _, ok := r.rec.chunks[k]; !ok {
		r.rec.chunks[k] = tracefmt.Rec{Proc: proc, Seq: seq, Instr: ck.Instr, Accesses: ck.Accesses}
	}
	return ck
}

func (r *recorder) WarmupChunk(proc int, i int) *chunk.Chunk {
	ck := r.inner.WarmupChunk(proc, i)
	k := tracefmt.Key{Proc: proc, Seq: uint64(i)}
	if _, ok := r.rec.warmup[k]; !ok {
		r.rec.warmup[k] = tracefmt.Rec{Proc: proc, Seq: uint64(i), Instr: ck.Instr, Accesses: ck.Accesses}
	}
	return ck
}

// Replay builds a factory serving the decoded trace. The factory checks the
// thread count; chunk and warm-up budgets are checked by internal/system
// through the Validator contract before the run starts.
func Replay(t *tracefmt.Trace) Factory {
	return func(prof Profile, threads int, seed int64) (Source, error) {
		if threads != t.Header.Threads {
			return nil, fmt.Errorf("workload: trace recorded at %d cores, machine has %d",
				t.Header.Threads, threads)
		}
		rs := &replaySource{
			tr:     t,
			warmup: make(map[tracefmt.Key]*tracefmt.Rec, len(t.Warmup)),
			chunks: make(map[tracefmt.Key]*tracefmt.Rec, len(t.Chunks)),
		}
		for i := range t.Warmup {
			r := &t.Warmup[i]
			rs.warmup[tracefmt.Key{Proc: r.Proc, Seq: r.Seq}] = r
		}
		for i := range t.Chunks {
			r := &t.Chunks[i]
			rs.chunks[tracefmt.Key{Proc: r.Proc, Seq: r.Seq}] = r
		}
		return rs, nil
	}
}

// ReplayFile defers reading PATH to run construction, so a missing or
// corrupt file surfaces as a build error on the run that needs it.
func ReplayFile(path string) Factory {
	return func(prof Profile, threads int, seed int64) (Source, error) {
		t, err := tracefmt.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return Replay(t)(prof, threads, seed)
	}
}

type replaySource struct {
	tr     *tracefmt.Trace
	warmup map[tracefmt.Key]*tracefmt.Rec
	chunks map[tracefmt.Key]*tracefmt.Rec
}

func (r *replaySource) PagesPerThread() int { return r.tr.Header.PagesPerThread }

// Validate implements Validator: a run may consume at most what was
// recorded. (Bit-identical reproduction additionally needs the exact
// recorded ChunksPerCore and WarmupChunks, which the replay tools adopt from
// the header.)
func (r *replaySource) Validate(cores, chunksPerCore, warmupChunks int) error {
	h := r.tr.Header
	if cores != h.Threads {
		return fmt.Errorf("workload: trace recorded at %d cores, machine has %d", h.Threads, cores)
	}
	if chunksPerCore > h.ChunksPerCore {
		return fmt.Errorf("workload: trace records %d chunks/core, run wants %d",
			h.ChunksPerCore, chunksPerCore)
	}
	if warmupChunks > h.WarmupPerCore {
		return fmt.Errorf("workload: trace records %d warm-up chunks/core, run wants %d",
			h.WarmupPerCore, warmupChunks)
	}
	return nil
}

func (r *replaySource) NextChunk(proc int, seq uint64) *chunk.Chunk {
	rec, ok := r.chunks[tracefmt.Key{Proc: proc, Seq: seq}]
	if !ok {
		panic(fmt.Sprintf("workload: replayed trace has no chunk for core %d seq %d (recorded %d chunks/core at %d cores)",
			proc, seq, r.tr.Header.ChunksPerCore, r.tr.Header.Threads))
	}
	return rec.Chunk(msg.CTag{Proc: proc, Seq: seq})
}

func (r *replaySource) WarmupChunk(proc int, i int) *chunk.Chunk {
	rec, ok := r.warmup[tracefmt.Key{Proc: proc, Seq: uint64(i)}]
	if !ok {
		panic(fmt.Sprintf("workload: replayed trace has no warm-up chunk for core %d index %d (recorded %d/core)",
			proc, i, r.tr.Header.WarmupPerCore))
	}
	return rec.Chunk(msg.CTag{Proc: proc, Seq: ^uint64(0) - uint64(i)})
}
