package workload

// Unit tests for the source registry, the adversarial generator family's
// determinism contract, and the record/replay interposer — the pieces the
// root-level conformance/differential/replay suites build on.

import (
	"reflect"
	"strings"
	"testing"

	"scalablebulk/internal/tracefmt"
)

func TestRegistryShape(t *testing.T) {
	names := Names()
	if len(names) == 0 || names[0] != SourceName {
		t.Fatalf("Names() = %v; want synthetic first", names)
	}
	adversarial := 0
	for _, d := range Descriptors() {
		if d.Doc == "" {
			t.Errorf("source %q has no doc line", d.Name)
		}
		if d.Adversarial {
			adversarial++
			if d.Name == SourceName {
				t.Error("the synthetic default must not be marked adversarial")
			}
		}
	}
	if adversarial < 4 {
		t.Errorf("only %d adversarial sources registered, want >= 4", adversarial)
	}
	if _, ok := Lookup("no-such-source"); ok {
		t.Error("Lookup succeeded on an unregistered name")
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, d Descriptor) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("Register accepted an invalid descriptor")
				}
			}()
			Register(d)
		})
	}
	nop := func(prof Profile, threads int, seed int64) (Source, error) { return nil, nil }
	mustPanic("duplicate", Descriptor{Name: SourceName, New: nop})
	mustPanic("no name", Descriptor{New: nop})
	mustPanic("no factory", Descriptor{Name: "half-baked"})
	mustPanic("replay prefix", Descriptor{Name: "replay:sneaky", New: nop})
}

func TestResolve(t *testing.T) {
	for _, spec := range []string{"", SourceName, "zipf"} {
		factory, err := Resolve(spec)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", spec, err)
		}
		src, err := factory(Profile{Name: "Barnes"}, 4, 1)
		if err != nil || src == nil {
			t.Fatalf("factory from Resolve(%q) failed: %v", spec, err)
		}
	}

	if _, err := Resolve("no-such-source"); err == nil {
		t.Error("Resolve accepted an unknown source")
	} else if !strings.Contains(err.Error(), SourceName) {
		t.Errorf("unknown-source error %q does not list the registered names", err)
	}

	// A replay spec resolves (the syntax is always valid); the missing file
	// surfaces when a run tries to construct the source.
	factory, err := Resolve("replay:/no/such/trace.sbwt")
	if err != nil {
		t.Fatalf("Resolve(replay:...): %v", err)
	}
	if _, err := factory(Profile{}, 4, 1); err == nil {
		t.Error("replay factory succeeded on a missing trace file")
	}
}

func TestSourceProfile(t *testing.T) {
	if _, ok := SourceProfile(SourceName); ok {
		t.Error("the synthetic source must not claim a label profile")
	}
	if _, ok := SourceProfile("no-such-source"); ok {
		t.Error("SourceProfile succeeded on an unregistered name")
	}
	prof, ok := SourceProfile("zipf")
	if !ok || prof.Name != "zipf" || prof.Suite != "WORKLOAD" {
		t.Errorf("SourceProfile(zipf) = %+v, %v", prof, ok)
	}
}

// collectStream materializes a sample of src's streams for equality checks.
func collectStream(t *testing.T, src Source, threads int) [][]any {
	t.Helper()
	var out [][]any
	for proc := 0; proc < threads; proc++ {
		for i := 0; i < 2; i++ {
			ck := src.WarmupChunk(proc, i)
			out = append(out, []any{ck.Instr, ck.Accesses})
		}
		for seq := uint64(0); seq < 6; seq++ {
			ck := src.NextChunk(proc, seq)
			out = append(out, []any{ck.Instr, ck.Accesses})
		}
	}
	return out
}

// TestAdversarialDeterminism pins the generator contract every source must
// honor: chunk (proc, seq) is a pure function of (params, threads, seed) —
// re-requests (squash re-execution) and fresh sources at the same seed agree
// exactly, and a different seed actually changes the stream.
func TestAdversarialDeterminism(t *testing.T) {
	const threads = 8
	for _, d := range Descriptors() {
		if !d.Adversarial {
			continue
		}
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			prof := Profile{Name: d.Name, Suite: "WORKLOAD"}
			mk := func(seed int64) Source {
				src, err := d.New(prof, threads, seed)
				if err != nil {
					t.Fatal(err)
				}
				return src
			}
			a, b := mk(7), mk(7)
			if a.PagesPerThread() <= 0 {
				t.Errorf("PagesPerThread() = %d", a.PagesPerThread())
			}
			sa := collectStream(t, a, threads)
			if !reflect.DeepEqual(sa, collectStream(t, b, threads)) {
				t.Fatal("two sources at one seed produced different streams")
			}
			// Re-requesting a chunk (a squash) regenerates it identically.
			if !reflect.DeepEqual(a.NextChunk(3, 2).Accesses, a.NextChunk(3, 2).Accesses) {
				t.Fatal("NextChunk is not pure: a squashed chunk would re-execute differently")
			}
			if reflect.DeepEqual(sa, collectStream(t, mk(8), threads)) {
				t.Fatal("seed change left the stream untouched")
			}
			for _, row := range sa {
				if row[1] == nil {
					t.Fatal("generator produced a chunk with no accesses")
				}
			}
		})
	}
}

func TestRecordDedupAndSingleRun(t *testing.T) {
	rec, factory, err := Record("")
	if err != nil {
		t.Fatal(err)
	}
	src, err := factory(Profile{Name: "Radix"}, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	// A squash re-requests the same chunk; the recording must keep one copy.
	first := src.NextChunk(0, 0)
	again := src.NextChunk(0, 0)
	if !reflect.DeepEqual(first.Accesses, again.Accesses) {
		t.Fatal("recorder broke NextChunk purity")
	}
	src.NextChunk(1, 0)
	src.WarmupChunk(0, 0)

	tr := rec.Trace()
	if len(tr.Chunks) != 2 || len(tr.Warmup) != 1 {
		t.Errorf("trace has %d chunks + %d warmup records, want 2 + 1", len(tr.Chunks), len(tr.Warmup))
	}
	h := tr.Header
	if h.App != "Radix" || h.Source != SourceName || h.Threads != 2 || h.Seed != 5 ||
		h.ChunksPerCore != 1 || h.WarmupPerCore != 1 {
		t.Errorf("header %+v does not reflect the recorded run", h)
	}
	rec.SetRunMeta("TCC", "abc123")
	if got := rec.Trace().Header; got.Protocol != "TCC" || got.Fingerprint != "abc123" {
		t.Errorf("SetRunMeta not reflected in header %+v", got)
	}

	if _, err := factory(Profile{Name: "Radix"}, 2, 5); err == nil {
		t.Error("a Recording factory instantiated twice; a trace would interleave two runs")
	}
}

func TestReplayValidation(t *testing.T) {
	rec, factory, err := Record("")
	if err != nil {
		t.Fatal(err)
	}
	src, err := factory(Profile{Name: "FFT"}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for proc := 0; proc < 2; proc++ {
		src.WarmupChunk(proc, 0)
		for seq := uint64(0); seq < 3; seq++ {
			src.NextChunk(proc, seq)
		}
	}
	tr := rec.Trace()

	if _, err := Replay(tr)(Profile{}, 4, 3); err == nil {
		t.Error("replay accepted the wrong core count at construction")
	}
	replayed, err := Replay(tr)(Profile{}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := replayed.(Validator)
	if !ok {
		t.Fatal("replay source does not implement Validator; system could over-consume a trace")
	}
	if err := v.Validate(2, 3, 1); err != nil {
		t.Errorf("recorded shape rejected: %v", err)
	}
	if err := v.Validate(2, 2, 1); err != nil {
		t.Errorf("smaller chunk budget rejected: %v", err)
	}
	for name, args := range map[string][3]int{
		"cores":  {4, 3, 1},
		"chunks": {2, 4, 1},
		"warmup": {2, 3, 2},
	} {
		if err := v.Validate(args[0], args[1], args[2]); err == nil {
			t.Errorf("Validate accepted an oversized %s budget", name)
		}
	}

	// Replay serves the recorded stream back verbatim.
	orig, err := Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	live, err := orig(Profile{Name: "FFT"}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for proc := 0; proc < 2; proc++ {
		for seq := uint64(0); seq < 3; seq++ {
			got, want := replayed.NextChunk(proc, seq), live.NextChunk(proc, seq)
			if got.Instr != want.Instr || !reflect.DeepEqual(got.Accesses, want.Accesses) {
				t.Fatalf("replayed chunk (%d,%d) differs from the live generator", proc, seq)
			}
		}
	}

	// Out-of-budget requests are a backstop panic with a descriptive message
	// (Validate prevents reaching them through internal/system).
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NextChunk served a chunk the trace does not contain")
			}
		}()
		replayed.NextChunk(0, 99)
	}()
}

func TestRecordedTraceRoundTrips(t *testing.T) {
	rec, factory, err := Record("stormdir")
	if err != nil {
		t.Fatal(err)
	}
	src, err := factory(Profile{Name: "stormdir", Suite: "WORKLOAD"}, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	for proc := 0; proc < 2; proc++ {
		src.WarmupChunk(proc, 0)
		src.NextChunk(proc, 0)
	}
	tr := rec.Trace()
	back, err := tracefmt.Decode(tracefmt.Encode(tr))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, tr) {
		t.Error("recorded trace did not survive encode/decode")
	}
}
