// Package workload models the memory behavior of the paper's 18
// applications (11 SPLASH-2 + 7 PARSEC, §5) as parameterized chunk-footprint
// generators. We cannot ship the original binaries or the SESC simulator;
// instead each application is characterized by the properties that the
// commit protocols actually observe — footprint size and locality, how many
// directory modules a chunk touches (Figures 9–12), write dispersion
// (Radix's random bucket writes), read sharing, and true-conflict rates
// (§6.1) — and the generator synthesizes chunk streams with those
// properties. See DESIGN.md §2 and §3 for the substitution argument.
package workload

import (
	"math"
	"math/rand"

	"scalablebulk/internal/chunk"
	"scalablebulk/internal/mem"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/sig"
)

// Profile characterizes one application's chunk behavior.
type Profile struct {
	Name  string
	Suite string // "SPLASH-2" or "PARSEC"

	// ChunkInstr is the dynamic instruction count per chunk (Table 2: 2000).
	ChunkInstr int
	// Accesses is the number of line-granular memory touches per chunk.
	Accesses int
	// WriteFrac is the fraction of accesses that are writes.
	WriteFrac float64
	// SharedFrac is the fraction of access runs directed at the global
	// shared region (the rest hit the thread's private region).
	SharedFrac float64
	// RunLen is the spatial-locality run length: consecutive lines touched
	// per run. Low values (Canneal, Barnes) scatter accesses across pages
	// and directories.
	RunLen int
	// ScatterFrac is the fraction of writes sprayed one line at a time
	// across random shared pages — Radix's random bucket writes, which
	// give it write groups spanning most directories (§6.1/§6.2).
	ScatterFrac float64
	// SharedPagesPerChunk is how many distinct shared pages a chunk's
	// non-scatter shared runs cluster on; together with ScatterFrac it
	// controls the directories-accessed-per-commit of Figures 9–12.
	SharedPagesPerChunk int
	// TotalPrivatePages is the whole-problem private working set in pages;
	// each of T threads owns TotalPrivatePages/T of it. Large values make
	// single-processor runs thrash one L2 — the superlinear-speedup effect
	// for Ocean, Cholesky and Raytrace (§6.1).
	TotalPrivatePages int
	// SharedPages is the size of the global shared region.
	SharedPages int
	// PrivateSkew ≥ 1 skews private-page reuse toward a hot subset
	// (higher → better cache behavior).
	PrivateSkew float64
	// SharedSkew ≥ 1 skews which shared pages chunks work on: real
	// applications revisit hot shared structures (active matrix panels,
	// tree roots), which is what lets caches capture shared data. 1 means
	// uniform (Canneal's random netlist walks).
	SharedSkew float64
	// HotLines is the number of heavily contended shared lines.
	HotLines int
	// ConflictFrac is the per-chunk probability of writing a hot line —
	// the true-sharing squash generator (§6.1: ~1.5% of chunks squash on
	// data conflicts at 64 processors).
	ConflictFrac float64
	// ReadHotFrac is the per-run probability of reading the hot shared
	// area instead (read-mostly sharing: wide Read Groups in Figs 9/10).
	ReadHotFrac float64
}

// Page-layout constants: regions are placed far apart so footprints of
// different kinds can never collide accidentally.
const (
	sharedBasePage  = 1 << 20
	privateBasePage = 1 << 22
	privateStride   = 1 << 16 // pages reserved per thread

	// hotReadPages is the number of leading shared pages holding hot
	// read-mostly data; the contended hot write lines live on the page
	// right after, so read-hot traffic does not spuriously conflict.
	hotReadPages = 4
	hotWritePage = sharedBasePage + hotReadPages
	// dataPagesOffset is where the bulk shared data starts.
	dataPagesOffset = hotReadPages + 1
)

// Workload instantiates a profile for a machine size. It implements
// proc.Generator deterministically: chunk (p, seq) is a pure function of
// (profile, threads, seed, p, seq), so squashed chunks re-execute
// identically.
type Workload struct {
	Prof    Profile
	threads int
	seed    int64

	pagesPerThread int
}

// New builds a workload for the given thread count.
func New(prof Profile, threads int, seed int64) *Workload {
	ppt := prof.TotalPrivatePages / threads
	if ppt < 4 {
		ppt = 4
	}
	if ppt > privateStride/2 {
		ppt = privateStride / 2
	}
	return &Workload{Prof: prof, threads: threads, seed: seed, pagesPerThread: ppt}
}

// PagesPerThread returns each thread's private working set in pages.
func (w *Workload) PagesPerThread() int { return w.pagesPerThread }

// splitmix64 provides the per-chunk deterministic seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NextChunk implements proc.Generator.
func (w *Workload) NextChunk(proc int, seq uint64) *chunk.Chunk {
	return w.gen(proc, seq, false)
}

// WarmupChunk generates cache/page-table warm-up footprints. Warm-up
// differs from the measured phase in one respect: partitioned scatter
// regions (Radix's buckets) are touched unpartitioned, the way the
// application's initialization phase touches the whole array — so bucket
// pages get first-touch homes all over the machine instead of following the
// current write partition.
func (w *Workload) WarmupChunk(proc int, i int) *chunk.Chunk {
	return w.gen(proc, ^uint64(0)-uint64(i), true)
}

func (w *Workload) gen(proc int, seq uint64, warmup bool) *chunk.Chunk {
	// Chain the seed, processor and sequence number through separate
	// splitmix rounds: any bit of any of them changes the whole stream.
	h := splitmix64(uint64(w.seed))
	h = splitmix64(h ^ uint64(proc))
	h = splitmix64(h ^ seq)
	rng := rand.New(rand.NewSource(int64(h)))
	p := w.Prof

	ck := &chunk.Chunk{
		Tag:   msg.CTag{Proc: proc, Seq: seq},
		Instr: p.ChunkInstr,
	}
	privBase := uint64(privateBasePage + proc*privateStride)

	runLen := p.RunLen
	if runLen < 1 {
		runLen = 1
	}
	slots := mem.LinesPerPage / runLen

	// The chunk's shared runs cluster on a few pages — real chunks work on
	// a handful of shared structures at a time, which is what keeps the
	// average directories-per-commit in the paper's 2–6 range (§6.2).
	nShared := p.SharedPagesPerChunk
	if nShared < 1 {
		nShared = 1
	}
	sharedPool := make([]uint64, nShared)
	dataPages := max(p.SharedPages, 1)
	sharedSkew := p.SharedSkew
	if sharedSkew < 1 {
		sharedSkew = 1
	}
	pickShared := func() uint64 {
		u := math.Pow(rng.Float64(), sharedSkew)
		return sharedBasePage + dataPagesOffset + uint64(u*float64(dataPages))
	}
	for i := range sharedPool {
		sharedPool[i] = pickShared()
	}

	for len(ck.Accesses) < p.Accesses {
		switch {
		case rng.Float64() < p.ScatterFrac*p.WriteFrac:
			// Radix-style bucket write ("the writes to these buckets are
			// random ... no spatial locality", §6.1). Each thread owns a
			// page-partitioned slice of the bucket array — concurrent
			// write sets are address-disjoint — but the partition rotates
			// between sort passes, so the pages a thread writes are homed
			// all over the machine: chunks with disjoint addresses that
			// nevertheless share directory modules, exactly the case that
			// serializes TCC and SEQ but not ScalableBulk (§2.1).
			var page uint64
			if warmup {
				page = sharedBasePage + dataPagesOffset + uint64(rng.Intn(dataPages))
			} else {
				epoch := seq >> 3
				residue := (uint64(proc) + epoch) % uint64(w.threads)
				// Stripe the partition across the region: the thread's
				// pages are spread machine-wide, touching many homes.
				idx := residue + uint64(rng.Intn(max(dataPages/w.threads, 1)))*uint64(w.threads)
				page = sharedBasePage + dataPagesOffset + idx%uint64(dataPages)
			}
			off := rng.Intn(mem.LinesPerPage)
			line := sig.Line(page*mem.LinesPerPage + uint64(off))
			ck.Accesses = append(ck.Accesses, chunk.Access{Line: line, Write: true})
		default:
			var page uint64
			write := true
			private := false
			switch {
			case rng.Float64() < p.ReadHotFrac:
				// Hot read-mostly shared data: wide read groups.
				page = sharedBasePage + uint64(rng.Intn(hotReadPages))
				write = false
			case rng.Float64() < p.SharedFrac:
				page = sharedPool[rng.Intn(nShared)]
			default:
				// Private page with skewed reuse: u^skew concentrates on a
				// hot subset, keeping it cache-resident.
				u := math.Pow(rng.Float64(), p.PrivateSkew)
				page = privBase + uint64(u*float64(w.pagesPerThread))
				private = true
			}
			// Runs are slot-aligned. Private pages reuse hot slots (cache
			// residency); on shared pages different chunks work on
			// different slots, so concurrent writers of one structure
			// rarely touch the same lines (real conflicts stay rare, §6.1).
			var slot int
			if private {
				slot = int(math.Pow(rng.Float64(), p.PrivateSkew) * float64(slots))
			} else {
				slot = rng.Intn(slots)
			}
			if slot >= slots {
				slot = slots - 1
			}
			off := slot * runLen
			n := runLen
			if rem := p.Accesses - len(ck.Accesses); n > rem {
				n = rem
			}
			for i := 0; i < n; i++ {
				line := sig.Line(page*mem.LinesPerPage + uint64(off+i))
				ck.Accesses = append(ck.Accesses, chunk.Access{
					Line:  line,
					Write: write && rng.Float64() < p.WriteFrac,
				})
			}
		}
	}
	// True-sharing conflict: a write to one of the hot contended lines,
	// which live on their own page so they never collide with hot reads.
	if p.HotLines > 0 && rng.Float64() < p.ConflictFrac {
		line := sig.Line(hotWritePage*mem.LinesPerPage + uint64(rng.Intn(p.HotLines)))
		ck.Accesses = append(ck.Accesses, chunk.Access{Line: line, Write: true})
	}
	return ck
}
