package workload

import (
	"testing"

	"scalablebulk/internal/chunk"
	"scalablebulk/internal/mem"
)

func TestDeterministicRegeneration(t *testing.T) {
	w := New(Splash2()[0], 8, 42)
	a := w.NextChunk(3, 7)
	b := w.NextChunk(3, 7)
	if len(a.Accesses) != len(b.Accesses) {
		t.Fatal("regenerated chunk differs in length")
	}
	for i := range a.Accesses {
		if a.Accesses[i] != b.Accesses[i] {
			t.Fatalf("access %d differs: %v vs %v", i, a.Accesses[i], b.Accesses[i])
		}
	}
}

func TestChunksDifferAcrossSeqAndProc(t *testing.T) {
	w := New(Splash2()[0], 8, 42)
	a := w.NextChunk(0, 1)
	b := w.NextChunk(0, 2)
	c := w.NextChunk(1, 1)
	same := func(x, y *chunk.Chunk) bool {
		if len(x.Accesses) != len(y.Accesses) {
			return false
		}
		for i := range x.Accesses {
			if x.Accesses[i] != y.Accesses[i] {
				return false
			}
		}
		return true
	}
	if same(a, b) || same(a, c) {
		t.Fatal("distinct chunks produced identical footprints")
	}
}

func TestPrivateRegionsDisjoint(t *testing.T) {
	w := New(Splash2()[6], 16, 1) // LU: mostly private
	seen := map[mem.Page]int{}
	for p := 0; p < 16; p++ {
		for s := uint64(0); s < 10; s++ {
			ck := w.NextChunk(p, s)
			for _, a := range ck.Accesses {
				pg := mem.PageOf(a.Line)
				if pg >= sharedBasePage && pg < privateBasePage {
					continue // shared region
				}
				if owner, ok := seen[pg]; ok && owner != p {
					t.Fatalf("private page %d touched by both %d and %d", pg, owner, p)
				}
				seen[pg] = p
			}
		}
	}
}

func TestAccessCountsAndChunkSize(t *testing.T) {
	for _, prof := range All() {
		w := New(prof, 64, 9)
		ck := w.NextChunk(5, 3)
		if ck.Instr != 2000 {
			t.Errorf("%s: chunk size %d, want 2000 (Table 2)", prof.Name, ck.Instr)
		}
		if len(ck.Accesses) < prof.Accesses || len(ck.Accesses) > prof.Accesses+1 {
			t.Errorf("%s: %d accesses, want ~%d", prof.Name, len(ck.Accesses), prof.Accesses)
		}
	}
}

func TestEighteenApplications(t *testing.T) {
	if len(Splash2()) != 11 {
		t.Fatalf("SPLASH-2 apps = %d, want 11 (§5)", len(Splash2()))
	}
	if len(Parsec()) != 7 {
		t.Fatalf("PARSEC apps = %d, want 7 (§5)", len(Parsec()))
	}
	names := map[string]bool{}
	for _, p := range All() {
		if names[p.Name] {
			t.Fatalf("duplicate profile %s", p.Name)
		}
		names[p.Name] = true
	}
	if _, ok := ByName("Radix"); !ok {
		t.Fatal("ByName failed for Radix")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName invented an app")
	}
}

func TestRadixScattersWrites(t *testing.T) {
	radix, _ := ByName("Radix")
	lu, _ := ByName("LU")
	wr := New(radix, 64, 3)
	wl := New(lu, 64, 3)
	pagesOf := func(w *Workload) int {
		pages := map[mem.Page]bool{}
		for s := uint64(0); s < 20; s++ {
			ck := w.NextChunk(0, s)
			for _, a := range ck.Accesses {
				if a.Write {
					pages[mem.PageOf(a.Line)] = true
				}
			}
		}
		return len(pages) / 20
	}
	if pagesOf(wr) <= 2*pagesOf(wl) {
		t.Fatalf("Radix write dispersion (%d pages/chunk) not ≫ LU (%d)", pagesOf(wr), pagesOf(wl))
	}
}

func TestWorkingSetScalesWithThreads(t *testing.T) {
	ocean, _ := ByName("Ocean")
	one := New(ocean, 1, 1)
	many := New(ocean, 64, 1)
	if one.PagesPerThread() <= many.PagesPerThread() {
		t.Fatal("single-thread run must carry the whole working set (superlinear effect)")
	}
}
