package workload

// The per-application profiles below are calibrated against the paper's
// observations rather than against the original binaries (which we cannot
// run — see DESIGN.md §2):
//
//   - §6.2 / Figures 9–10: most applications access 2–6 directories per
//     chunk commit on average; Radix, Barnes, Canneal, and Blackscholes
//     access many more, and Radix's groups are almost all write groups.
//   - §6.1: Radix "implements a parallel radix sort that ranks integers and
//     writes them into separate buckets ... writes are random ... no
//     spatial locality", giving TCC/SEQ their largest commit overheads.
//   - §6.1: Ocean, Cholesky, and Raytrace attain superlinear speedups
//     because one processor's run can use only a single L2 cache — their
//     whole-problem working sets far exceed 512 KB.
//   - §6.1: data conflicts are rare (~1.5% of chunks squashed at 64
//     processors), so ConflictFrac values are small.
//
// The calibration test in calibrate_test.go checks the resulting
// directories-per-commit averages and footprint shapes.

func base() Profile {
	return Profile{
		ChunkInstr:          2000,
		Accesses:            96,
		WriteFrac:           0.3,
		SharedFrac:          0.3,
		RunLen:              8,
		TotalPrivatePages:   4096,
		SharedPages:         512,
		PrivateSkew:         3.2,
		HotLines:            32,
		ConflictFrac:        0.02,
		SharedPagesPerChunk: 2,
		SharedSkew:          1.15,
	}
}

func splash(name string, f func(*Profile)) Profile {
	p := base()
	p.Name, p.Suite = name, "SPLASH-2"
	f(&p)
	return p
}

func parsec(name string, f func(*Profile)) Profile {
	p := base()
	p.Name, p.Suite = name, "PARSEC"
	f(&p)
	return p
}

// Splash2 returns the 11 SPLASH-2 application models of §5 (LU and Ocean
// are the contiguous versions).
func Splash2() []Profile {
	return []Profile{
		splash("Radix", func(p *Profile) {
			// Random bucket writes, no spatial locality: write groups span
			// most directories (§6.1, §6.2).
			p.WriteFrac = 0.45
			p.ScatterFrac = 0.81
			p.SharedSkew = 1
			p.SharedFrac = 0.3
			p.SharedPages = 1024
			p.RunLen = 4
			p.SharedPagesPerChunk = 2
			p.ConflictFrac = 0.01
		}),
		splash("Cholesky", func(p *Profile) {
			// Sparse factorization: big working set → superlinear (§6.1).
			p.TotalPrivatePages = 24576
			p.SharedFrac = 0.25
			p.RunLen = 12
		}),
		splash("Barnes", func(p *Profile) {
			// Octree walks: poor locality, many directories per commit.
			p.SharedFrac = 0.55
			p.RunLen = 2
			p.SharedPages = 768
			p.SharedPagesPerChunk = 5
			p.ReadHotFrac = 0.08
			p.ConflictFrac = 0.04
		}),
		splash("FFT", func(p *Profile) {
			// Blocked transpose: strong spatial locality, few directories.
			p.SharedFrac = 0.25
			p.RunLen = 16
		}),
		splash("Water-N", func(p *Profile) {
			p.SharedFrac = 0.35
			p.RunLen = 6
			p.ConflictFrac = 0.03
		}),
		splash("FMM", func(p *Profile) {
			p.SharedFrac = 0.45
			p.RunLen = 4
			p.SharedPagesPerChunk = 4
			p.ReadHotFrac = 0.06
		}),
		splash("LU", func(p *Profile) {
			// Contiguous blocked LU: mostly private, excellent locality.
			p.SharedFrac = 0.12
			p.RunLen = 16
			p.SharedPagesPerChunk = 1
			p.WriteFrac = 0.35
		}),
		splash("Ocean", func(p *Profile) {
			// Contiguous grids: huge working set → superlinear (§6.1).
			p.TotalPrivatePages = 32768
			p.SharedFrac = 0.2
			p.RunLen = 16
		}),
		splash("Water-S", func(p *Profile) {
			p.SharedFrac = 0.25
			p.RunLen = 8
			p.ConflictFrac = 0.025
		}),
		splash("Radiosity", func(p *Profile) {
			p.SharedFrac = 0.45
			p.RunLen = 3
			p.SharedPagesPerChunk = 4
			p.ReadHotFrac = 0.1
			p.ConflictFrac = 0.04
		}),
		splash("Raytrace", func(p *Profile) {
			// Read-dominated scene traversal; big read-shared working set →
			// superlinear (§6.1).
			p.WriteFrac = 0.12
			p.SharedFrac = 0.45
			p.SharedPagesPerChunk = 3
			p.ReadHotFrac = 0.2
			p.TotalPrivatePages = 24576
			p.RunLen = 4
			p.ConflictFrac = 0.01
		}),
	}
}

// Parsec returns the 7 PARSEC application models of §5.
func Parsec() []Profile {
	return []Profile{
		parsec("Vips", func(p *Profile) {
			p.SharedFrac = 0.2
			p.RunLen = 12
		}),
		parsec("Swaptions", func(p *Profile) {
			// Near-embarrassingly parallel: tiny shared footprint.
			p.SharedFrac = 0.06
			p.RunLen = 12
			p.SharedPagesPerChunk = 1
			p.ConflictFrac = 0.005
		}),
		parsec("Blackscholes", func(p *Profile) {
			// Interleaved option records: chunks touch many directories
			// (Figure 10) despite the simple kernel.
			p.SharedFrac = 0.55
			p.RunLen = 2
			p.SharedPages = 1024
			p.SharedPagesPerChunk = 6
			p.WriteFrac = 0.35
			p.ConflictFrac = 0.01
		}),
		parsec("Fluidanimate", func(p *Profile) {
			p.SharedFrac = 0.3
			p.RunLen = 6
			p.SharedPagesPerChunk = 3
			p.ConflictFrac = 0.04
		}),
		parsec("Canneal", func(p *Profile) {
			// Random pointer chasing over a huge netlist: worst locality,
			// many directories, frequent conflicts (Figure 10, §6.1).
			p.SharedFrac = 0.65
			p.RunLen = 1
			p.SharedPages = 2048
			p.SharedPagesPerChunk = 8
			p.SharedSkew = 1
			p.PrivateSkew = 1.3
			p.TotalPrivatePages = 16384
			p.ConflictFrac = 0.05
			p.WriteFrac = 0.35
		}),
		parsec("Dedup", func(p *Profile) {
			p.SharedFrac = 0.35
			p.RunLen = 6
			p.SharedPagesPerChunk = 3
			p.ConflictFrac = 0.025
		}),
		parsec("Facesim", func(p *Profile) {
			p.SharedFrac = 0.3
			p.RunLen = 10
			p.TotalPrivatePages = 8192
		}),
	}
}

// All returns every application model, SPLASH-2 first (the paper's order).
func All() []Profile { return append(Splash2(), Parsec()...) }

// ByName finds a profile; ok is false if the name is unknown.
func ByName(name string) (Profile, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
