// Package fault is a seeded, deterministic fault injector for the simulated
// interconnect. It implements mesh.Interposer: every message the network
// would deliver passes through Plan, which may add delay jitter (reordering
// messages relative to each other), duplicate the message, model a transient
// loss as a link-level retransmission (detect + resend delay; nothing is ever
// permanently lost — the protocols assume a reliable fabric), or degrade a
// hot node whose links are slow.
//
// Faults are configured per traffic class by a Profile and drawn from a
// single seeded PRNG, so a (profile, seed) pair replays bit-identically: the
// simulator is single-threaded and message injection order is deterministic,
// hence the injector's draw sequence is too.
package fault

import (
	"fmt"
	"math/rand"

	"scalablebulk/internal/event"
	"scalablebulk/internal/mesh"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/trace"
)

// ClassFaults configures the faults applied to one traffic class.
type ClassFaults struct {
	// DelayProb is the chance a delivery is jittered by up to DelayMax
	// extra cycles (uniform in [1, DelayMax]). Jitter larger than the
	// inter-message spacing reorders messages.
	DelayProb float64
	DelayMax  event.Time
	// DupProb is the chance the message is delivered twice; the duplicate
	// is an independent deep copy arriving up to DupDelayMax cycles after
	// the primary delivery.
	DupProb     float64
	DupDelayMax event.Time
	// DropProb is the chance a delivery attempt is transiently lost. Each
	// loss costs the profile's RetransmitDelay before the resend arrives;
	// consecutive losses compound up to MaxRetransmits.
	DropProb float64
}

func (c ClassFaults) enabled() bool {
	return c.DelayProb > 0 || c.DupProb > 0 || c.DropProb > 0
}

// Profile names a reproducible fault scenario.
type Profile struct {
	Name string
	Desc string
	// PerClass holds the fault rates for each msg.Class.
	PerClass [msg.NumClasses]ClassFaults
	// RetransmitDelay is the link-level loss-detection + resend time paid
	// per transient loss.
	RetransmitDelay event.Time
	// MaxRetransmits caps consecutive losses of one message (the resend
	// after the cap always gets through).
	MaxRetransmits int
	// HotNode, if ≥ 0, degrades every non-local message to or from that
	// node by HotDelay cycles ("hot link" / "slow node").
	HotNode  int
	HotDelay event.Time
}

// Enabled reports whether the profile injects any fault at all.
func (p *Profile) Enabled() bool {
	if p == nil {
		return false
	}
	for _, c := range p.PerClass {
		if c.enabled() {
			return true
		}
	}
	return p.HotNode >= 0 && p.HotDelay > 0
}

// Stats counts injected faults.
type Stats struct {
	Planned     uint64 // messages seen by the injector
	Delayed     uint64 // deliveries jittered
	Duplicated  uint64 // extra copies created
	Retransmits uint64 // transient losses (each adds one resend delay)
	HotHits     uint64 // deliveries degraded by the hot node
}

// Injector applies a Profile to a message stream. It implements
// mesh.Interposer.
type Injector struct {
	prof  Profile
	rng   *rand.Rand
	stats Stats

	// Trace, when non-nil, records every injected fault as a structured
	// event. Emission never draws from the PRNG, so tracing a faulted run
	// does not perturb its replay.
	Trace *trace.Tracer
}

var _ mesh.Interposer = (*Injector)(nil)

// New builds an injector for the profile, seeded for replay.
func New(prof Profile, seed int64) *Injector {
	return &Injector{prof: prof, rng: rand.New(rand.NewSource(seed))}
}

// Profile returns the injector's profile.
func (in *Injector) Profile() Profile { return in.prof }

// Stats returns a copy of the fault counters.
func (in *Injector) Stats() Stats { return in.stats }

// Plan implements mesh.Interposer. Local (Src == Dst) deliveries model
// intra-tile wires and are never faulted.
func (in *Injector) Plan(m *msg.Msg, now, at event.Time) []mesh.Delivery {
	in.stats.Planned++
	if m.Src == m.Dst {
		return []mesh.Delivery{{At: at, M: m}}
	}
	cf := in.prof.PerClass[m.Kind.ClassOf()]
	t := at

	if in.prof.HotNode >= 0 && in.prof.HotDelay > 0 &&
		(m.Src == in.prof.HotNode || m.Dst == in.prof.HotNode) {
		t += in.prof.HotDelay
		in.stats.HotHits++
		in.Trace.Fault(trace.KFaultHot, m)
	}
	if cf.DelayProb > 0 && in.rng.Float64() < cf.DelayProb {
		t += 1 + event.Time(in.rng.Int63n(int64(cf.DelayMax)))
		in.stats.Delayed++
		in.Trace.Fault(trace.KFaultDelay, m)
	}
	if cf.DropProb > 0 {
		for r := 0; r < in.prof.MaxRetransmits; r++ {
			if in.rng.Float64() >= cf.DropProb {
				break
			}
			t += in.prof.RetransmitDelay
			in.stats.Retransmits++
			in.Trace.Fault(trace.KFaultRetransmit, m)
		}
	}
	out := []mesh.Delivery{{At: t, M: m}}
	if cf.DupProb > 0 && in.rng.Float64() < cf.DupProb {
		dupAt := t + 1
		if cf.DupDelayMax > 0 {
			dupAt += event.Time(in.rng.Int63n(int64(cf.DupDelayMax)))
		}
		out = append(out, mesh.Delivery{At: dupAt, M: m.Clone()})
		in.stats.Duplicated++
		in.Trace.Fault(trace.KFaultDup, m)
	}
	return out
}

// String summarizes the fault counters.
func (s Stats) String() string {
	return fmt.Sprintf("planned=%d delayed=%d duplicated=%d retransmits=%d hot=%d",
		s.Planned, s.Delayed, s.Duplicated, s.Retransmits, s.HotHits)
}
