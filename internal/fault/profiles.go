package fault

import (
	"fmt"
	"sort"

	"scalablebulk/internal/msg"
)

// uniform builds a PerClass array applying the same faults to every class.
func uniform(c ClassFaults) (out [msg.NumClasses]ClassFaults) {
	for i := range out {
		out[i] = c
	}
	return out
}

// commitOnly applies faults to the two commit-protocol classes only, leaving
// the read path clean — it stresses the commit state machines specifically.
func commitOnly(c ClassFaults) (out [msg.NumClasses]ClassFaults) {
	out[msg.ClassLargeC] = c
	out[msg.ClassSmallC] = c
	return out
}

// profiles are the built-in named scenarios. Rates are chosen so a faulted
// run completes (watchdogs and retransmissions recover) while every fault
// path fires many times in a short soak.
var profiles = []Profile{
	{
		Name:     "jitter",
		Desc:     "mild delivery jitter on all classes",
		PerClass: uniform(ClassFaults{DelayProb: 0.30, DelayMax: 40}),
		HotNode:  -1,
	},
	{
		Name: "reorder",
		Desc: "aggressive jitter on commit traffic; adjacent protocol messages swap order",
		PerClass: commitOnly(ClassFaults{
			DelayProb: 0.80, DelayMax: 300,
		}),
		HotNode: -1,
	},
	{
		Name: "dup",
		Desc: "commit messages duplicated with delayed copies, plus mild jitter",
		PerClass: commitOnly(ClassFaults{
			DelayProb: 0.20, DelayMax: 60,
			DupProb: 0.10, DupDelayMax: 200,
		}),
		HotNode: -1,
	},
	{
		Name:            "loss",
		Desc:            "transient losses with link-level retransmission on all classes",
		PerClass:        uniform(ClassFaults{DropProb: 0.15}),
		RetransmitDelay: 50,
		MaxRetransmits:  4,
		HotNode:         -1,
	},
	{
		Name:     "hotspot",
		Desc:     "node 0's links degraded, plus mild jitter everywhere",
		PerClass: uniform(ClassFaults{DelayProb: 0.20, DelayMax: 30}),
		HotNode:  0,
		HotDelay: 100,
	},
	{
		Name: "chaos",
		Desc: "jitter + duplication + loss + hot node combined",
		PerClass: commitOnly(ClassFaults{
			DelayProb: 0.50, DelayMax: 200,
			DupProb: 0.08, DupDelayMax: 150,
			DropProb: 0.10,
		}),
		RetransmitDelay: 50,
		MaxRetransmits:  3,
		HotNode:         0,
		HotDelay:        60,
	},
}

// Profiles returns the built-in profiles.
func Profiles() []Profile { return append([]Profile(nil), profiles...) }

// Names returns the built-in profile names, sorted.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for _, p := range profiles {
		out = append(out, p.Name)
	}
	sort.Strings(out)
	return out
}

// ByName resolves a built-in profile. "off", "none" and "" mean no faults
// (nil profile).
func ByName(name string) (*Profile, error) {
	switch name {
	case "", "off", "none":
		return nil, nil
	}
	for i := range profiles {
		if profiles[i].Name == name {
			p := profiles[i]
			return &p, nil
		}
	}
	return nil, fmt.Errorf("fault: unknown profile %q (have %v)", name, Names())
}
