package fault

import (
	"testing"

	"scalablebulk/internal/event"
	"scalablebulk/internal/mesh"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/sig"
)

func mk(kind msg.Kind, src, dst int) *msg.Msg {
	return &msg.Msg{Kind: kind, Src: src, Dst: dst, Tag: msg.CTag{Proc: src, Seq: 1}}
}

func mustProfile(t *testing.T, name string) Profile {
	t.Helper()
	p, err := ByName(name)
	if err != nil || p == nil {
		t.Fatalf("ByName(%q) = %v, %v", name, p, err)
	}
	return *p
}

// TestDeterministicReplay: the same (profile, seed) over the same message
// stream produces the identical delivery plan.
func TestDeterministicReplay(t *testing.T) {
	for _, name := range Names() {
		prof := mustProfile(t, name)
		plan := func(seed int64) []mesh.Delivery {
			in := New(prof, seed)
			var out []mesh.Delivery
			for i := 0; i < 500; i++ {
				m := mk(msg.Grab, i%7, (i+3)%7)
				out = append(out, in.Plan(m, event.Time(i*10), event.Time(i*10+21))...)
			}
			return out
		}
		a, b := plan(42), plan(42)
		if len(a) != len(b) {
			t.Fatalf("%s: replay produced %d vs %d deliveries", name, len(a), len(b))
		}
		for i := range a {
			if a[i].At != b[i].At {
				t.Fatalf("%s: delivery %d at %d vs %d", name, i, a[i].At, b[i].At)
			}
		}
		c := plan(43)
		same := len(a) == len(c)
		if same {
			for i := range a {
				if a[i].At != c[i].At {
					same = false
					break
				}
			}
		}
		if same && prof.Enabled() {
			t.Errorf("%s: different seeds produced identical plans (suspicious)", name)
		}
	}
}

// TestNoPermanentLoss: every planned message yields at least one delivery,
// and the primary delivery never precedes the nominal arrival time.
func TestNoPermanentLoss(t *testing.T) {
	for _, name := range Names() {
		in := New(mustProfile(t, name), 7)
		for i := 0; i < 2000; i++ {
			at := event.Time(i*5 + 13)
			ds := in.Plan(mk(msg.CommitRequest, i%9, (i+1)%9), event.Time(i*5), at)
			if len(ds) == 0 {
				t.Fatalf("%s: message %d dropped permanently", name, i)
			}
			if ds[0].At < at {
				t.Fatalf("%s: delivery %d planned at %d before nominal %d", name, i, ds[0].At, at)
			}
		}
	}
}

// TestDuplicateIsDeepCopy: the duplicate is a Clone, so handler-side mutation
// of one delivery cannot corrupt the other.
func TestDuplicateIsDeepCopy(t *testing.T) {
	prof := mustProfile(t, "dup")
	prof.PerClass = commitOnly(ClassFaults{DupProb: 1.0, DupDelayMax: 10})
	in := New(prof, 1)
	m := mk(msg.Grab, 0, 1)
	m.GVec = []int{1, 2}
	m.WriteLines = []sig.Line{5}
	ds := in.Plan(m, 0, 10)
	if len(ds) != 2 {
		t.Fatalf("DupProb=1 produced %d deliveries, want 2", len(ds))
	}
	if ds[0].M != m {
		t.Fatal("primary delivery must carry the original message")
	}
	if ds[1].M == m {
		t.Fatal("duplicate must be a distinct message")
	}
	ds[1].M.GVec[0] = -1
	ds[1].M.WriteLines[0] = 999
	if m.GVec[0] != 1 || m.WriteLines[0] != 5 {
		t.Fatal("duplicate aliases the original payload")
	}
	if ds[1].At <= ds[0].At {
		t.Fatal("duplicate must arrive after the primary")
	}
}

// TestPerClassGating: a commit-only profile leaves read-path traffic
// untouched.
func TestPerClassGating(t *testing.T) {
	in := New(mustProfile(t, "reorder"), 3)
	for i := 0; i < 1000; i++ {
		at := event.Time(i*4 + 9)
		ds := in.Plan(mk(msg.ReadMemReply, 1, 2), event.Time(i*4), at)
		if len(ds) != 1 || ds[0].At != at {
			t.Fatal("reorder profile must not touch MemRd traffic")
		}
	}
	if s := in.Stats(); s.Delayed != 0 || s.Duplicated != 0 || s.Retransmits != 0 {
		t.Fatalf("read-only stream injected faults: %v", s)
	}
}

// TestLocalDeliveriesExempt: Src == Dst messages are intra-tile and never
// faulted.
func TestLocalDeliveriesExempt(t *testing.T) {
	prof := mustProfile(t, "chaos")
	in := New(prof, 5)
	for i := 0; i < 500; i++ {
		at := event.Time(i + 1)
		ds := in.Plan(mk(msg.CommitSuccess, 4, 4), event.Time(i), at)
		if len(ds) != 1 || ds[0].At != at {
			t.Fatal("local delivery was faulted")
		}
	}
}

// TestRetransmitDelaysAndCounts: with DropProb=1 the resend chain costs
// exactly MaxRetransmits × RetransmitDelay and still delivers.
func TestRetransmitDelaysAndCounts(t *testing.T) {
	prof := Profile{
		PerClass:        uniform(ClassFaults{DropProb: 1.0}),
		RetransmitDelay: 50,
		MaxRetransmits:  3,
		HotNode:         -1,
	}
	in := New(prof, 1)
	ds := in.Plan(mk(msg.Grab, 0, 1), 0, 100)
	if len(ds) != 1 {
		t.Fatalf("got %d deliveries", len(ds))
	}
	if want := event.Time(100 + 3*50); ds[0].At != want {
		t.Fatalf("delivery at %d, want %d", ds[0].At, want)
	}
	if s := in.Stats(); s.Retransmits != 3 {
		t.Fatalf("Retransmits = %d, want 3", s.Retransmits)
	}
}

// TestHotNodeDegradation: traffic touching the hot node pays HotDelay; other
// traffic does not.
func TestHotNodeDegradation(t *testing.T) {
	prof := Profile{HotNode: 2, HotDelay: 100}
	in := New(prof, 1)
	if ds := in.Plan(mk(msg.Grab, 2, 5), 0, 30); ds[0].At != 130 {
		t.Fatalf("hot-src delivery at %d, want 130", ds[0].At)
	}
	if ds := in.Plan(mk(msg.Grab, 5, 2), 0, 30); ds[0].At != 130 {
		t.Fatalf("hot-dst delivery at %d, want 130", ds[0].At)
	}
	if ds := in.Plan(mk(msg.Grab, 4, 5), 0, 30); ds[0].At != 30 {
		t.Fatalf("cold delivery at %d, want 30", ds[0].At)
	}
	if s := in.Stats(); s.HotHits != 2 {
		t.Fatalf("HotHits = %d, want 2", s.HotHits)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"", "off", "none"} {
		p, err := ByName(name)
		if p != nil || err != nil {
			t.Fatalf("ByName(%q) = %v, %v; want nil, nil", name, p, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("unknown profile must error")
	}
	if !mustHave(Names(), "chaos") || !mustHave(Names(), "jitter") {
		t.Fatalf("missing built-in profiles: %v", Names())
	}
	var off *Profile
	if off.Enabled() {
		t.Fatal("nil profile must report disabled")
	}
}

func mustHave(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
