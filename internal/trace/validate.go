package trace

import (
	"encoding/json"
	"fmt"
)

// ValidatePerfetto checks a rendered Perfetto document against the Chrome
// trace-event schema rules every consumer assumes: a non-empty traceEvents
// array, required fields per phase, balanced B/E per track and b/e per async
// id. The trace tests and the CI trace-smoke job both run it.
func ValidatePerfetto(data []byte) error {
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("empty traceEvents")
	}
	syncDepth := map[[2]float64]int{}
	asyncOpen := map[string]int{}
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "" {
			return fmt.Errorf("event %d missing ph: %v", i, ev)
		}
		pid, okPid := ev["pid"].(float64)
		tid, okTid := ev["tid"].(float64)
		if !okPid || !okTid {
			return fmt.Errorf("event %d missing pid/tid: %v", i, ev)
		}
		if ph != "M" {
			if _, ok := ev["ts"].(float64); !ok {
				return fmt.Errorf("event %d missing ts: %v", i, ev)
			}
		}
		tr := [2]float64{pid, tid}
		switch ph {
		case "B":
			syncDepth[tr]++
		case "E":
			syncDepth[tr]--
			if syncDepth[tr] < 0 {
				return fmt.Errorf("event %d: E without B on track %v", i, tr)
			}
		case "b", "e":
			id, _ := ev["id"].(string)
			if id == "" {
				return fmt.Errorf("event %d: async event without id: %v", i, ev)
			}
			if _, ok := ev["cat"].(string); !ok {
				return fmt.Errorf("event %d: async event without cat: %v", i, ev)
			}
			if ph == "b" {
				asyncOpen[id]++
			} else {
				asyncOpen[id]--
				if asyncOpen[id] < 0 {
					return fmt.Errorf("event %d: e without b for id %s", i, id)
				}
			}
		case "i":
			if _, ok := ev["name"].(string); !ok {
				return fmt.Errorf("event %d: instant without name: %v", i, ev)
			}
		case "M":
		default:
			return fmt.Errorf("event %d: unexpected ph %q", i, ph)
		}
	}
	for tr, d := range syncDepth {
		if d != 0 {
			return fmt.Errorf("track %v: %d unbalanced B events", tr, d)
		}
	}
	for id, d := range asyncOpen {
		if d != 0 {
			return fmt.Errorf("id %s: %d unbalanced b events", id, d)
		}
	}
	return nil
}
