package trace

import (
	"io"

	"scalablebulk/internal/msg"
)

// TextSink writes one human-readable line per event, compatible in spirit
// with the old printf trace (cycle gutter, ">"/"<" NoC arrows, "*" protocol
// lines).
type TextSink struct {
	w   io.Writer
	buf []byte
}

// NewText builds a text sink over w.
func NewText(w io.Writer) *TextSink { return &TextSink{w: w} }

// Event implements Sink.
func (s *TextSink) Event(e Event) {
	s.buf = e.AppendText(s.buf[:0])
	s.buf = append(s.buf, '\n')
	s.w.Write(s.buf)
}

// Close implements Sink.
func (s *TextSink) Close() error { return nil }

// JSONLSink writes one deterministic JSON object per line. Same seed ⇒
// byte-identical stream; that contract is what the determinism tests check.
type JSONLSink struct {
	w   io.Writer
	buf []byte
}

// NewJSONL builds a JSONL sink over w.
func NewJSONL(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Event implements Sink.
func (s *JSONLSink) Event(e Event) {
	s.buf = e.AppendJSON(s.buf[:0])
	s.buf = append(s.buf, '\n')
	s.w.Write(s.buf)
}

// Close implements Sink.
func (s *JSONLSink) Close() error { return nil }

// Ring is the flight recorder: a fixed-size circular buffer that keeps the
// last N events. Its Dump is attached to DeadlockError machine dumps and to
// crash bundles, so a failed run carries the moments leading up to the
// failure without paying for a full trace.
type Ring struct {
	buf  []Event
	next int
	full bool
}

// NewRing builds a flight recorder keeping the last n events (min 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, n)}
}

// Event implements Sink.
func (r *Ring) Event(e Event) {
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Close implements Sink.
func (r *Ring) Close() error { return nil }

// Len returns the number of recorded events (≤ capacity).
func (r *Ring) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Snapshot returns the recorded events, oldest first.
func (r *Ring) Snapshot() []Event {
	out := make([]Event, 0, r.Len())
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	return append(out, r.buf[:r.next]...)
}

// Dump renders the recorded events as text lines, oldest first.
func (r *Ring) Dump() []string {
	evs := r.Snapshot()
	if len(evs) == 0 {
		return nil
	}
	out := make([]string, len(evs))
	buf := make([]byte, 0, 96)
	for i := range evs {
		buf = evs[i].AppendText(buf[:0])
		out[i] = string(buf)
	}
	return out
}

// Filter passes through only matching events. Zero-value fields match
// everything: Core < 0 or unset via NewFilter, nil Kinds, nil Chunk.
type Filter struct {
	Next Sink
	// Core keeps events touching this tile (Node, message endpoint, or the
	// subject chunk's owner); -1 keeps all.
	Core int
	// Kinds keeps only listed kinds when non-nil.
	Kinds map[Kind]bool
	// Chunk keeps events about this chunk (Tag or Other) when non-nil.
	Chunk *msg.CTag
}

// NewFilter wraps next with a match-everything filter.
func NewFilter(next Sink) *Filter { return &Filter{Next: next, Core: -1} }

// Event implements Sink.
func (f *Filter) Event(e Event) {
	if f.Core >= 0 && e.Node != f.Core && e.Tag.Proc != f.Core {
		switch e.Kind {
		case KSend, KDeliver, KFaultDelay, KFaultDup, KFaultRetransmit, KFaultHot:
			if e.Src != f.Core && e.Dst != f.Core {
				return
			}
		default:
			return
		}
	}
	if f.Kinds != nil && !f.Kinds[e.Kind] {
		return
	}
	if f.Chunk != nil && e.Tag != *f.Chunk && !(e.HasOther && e.Other == *f.Chunk) {
		return
	}
	f.Next.Event(e)
}

// Close implements Sink.
func (f *Filter) Close() error { return f.Next.Close() }

// Multi fans every event out to all sinks.
type Multi []Sink

// Event implements Sink.
func (m Multi) Event(e Event) {
	for _, s := range m {
		s.Event(e)
	}
}

// Close implements Sink, closing every sink and returning the first error.
func (m Multi) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
