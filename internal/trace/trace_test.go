package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"scalablebulk/internal/event"
	"scalablebulk/internal/msg"
)

// TestNilTracerZeroAllocs is the hot-loop guard: a disabled tracer must not
// allocate on any emission path, or PR 2's calendar-queue gains are lost.
func TestNilTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	m := &msg.Msg{Kind: msg.Grab, Src: 1, Dst: 2, Tag: msg.CTag{Proc: 1, Seq: 3}}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Span(KExec, PhaseBegin, 3, false, m.Tag, 0)
		tr.Instant(KSquash, 3, false, m.Tag, 0)
		tr.Emit(Event{Kind: KCollision, Node: 5, Dir: true, Tag: m.Tag})
		tr.MsgSend(m)
		tr.MsgDeliver(m)
		tr.Fault(KFaultDelay, m)
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocated %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkNilSink is the same guard in benchmark form; cmd/sbbench wires it
// into the baseline comparison.
func BenchmarkNilSink(b *testing.B) {
	var tr *Tracer
	m := &msg.Msg{Kind: msg.Grab, Src: 1, Dst: 2, Tag: msg.CTag{Proc: 1, Seq: 3}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span(KCommit, PhaseBegin, 3, false, m.Tag, 0)
		tr.MsgSend(m)
		tr.MsgDeliver(m)
	}
}

func testTracer(sink Sink) *Tracer {
	eng := event.New()
	return New(eng, sink)
}

func TestNewNilSinkIsDisabled(t *testing.T) {
	if tr := New(event.New(), nil); tr != nil {
		t.Fatalf("New with nil sink = %v, want nil tracer", tr)
	}
	if (*Tracer)(nil).Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
}

func TestTextAndJSONFormats(t *testing.T) {
	var text, jsonl bytes.Buffer
	tr := testTracer(Multi{NewText(&text), NewJSONL(&jsonl)})
	tag := msg.CTag{Proc: 3, Seq: 7}
	other := msg.CTag{Proc: 4, Seq: 2}
	tr.Span(KCommit, PhaseBegin, 3, false, tag, 1)
	tr.Emit(Event{Kind: KCollision, Node: 5, Dir: true, Tag: tag, Try: 1, Other: other, HasOther: true})
	tr.Emit(Event{Kind: KCommit, Phase: PhaseEnd, Node: 3, Tag: tag, Try: 1, Cause: CauseCollision})
	tr.MsgSend(&msg.Msg{Kind: msg.Grab, Src: 5, Dst: 6, Tag: tag})

	wantText := []string{
		"[      0] * P3 commit begin P3.7 try=1",
		"[      0] * D5 collision P3.7 try=1 by P4.2",
		"[      0] * P3 commit end P3.7 try=1 fail cause=collision",
		"[      0] > g 5->6 P3.7",
	}
	gotText := strings.Split(strings.TrimRight(text.String(), "\n"), "\n")
	if len(gotText) != len(wantText) {
		t.Fatalf("text lines = %d, want %d:\n%s", len(gotText), len(wantText), text.String())
	}
	for i := range wantText {
		if gotText[i] != wantText[i] {
			t.Errorf("text line %d = %q, want %q", i, gotText[i], wantText[i])
		}
	}

	for i, line := range strings.Split(strings.TrimRight(jsonl.String(), "\n"), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("jsonl line %d not valid JSON: %v\n%s", i, err, line)
		}
		for _, key := range []string{"t", "ev", "ph", "node", "side", "tag", "try"} {
			if _, ok := obj[key]; !ok {
				t.Errorf("jsonl line %d missing %q: %s", i, key, line)
			}
		}
	}
}

func TestReadsGate(t *testing.T) {
	var buf bytes.Buffer
	tr := testTracer(NewText(&buf))
	read := &msg.Msg{Kind: msg.ReadReq, Src: 0, Dst: 1}
	tr.MsgSend(read)
	tr.MsgDeliver(read)
	if buf.Len() != 0 {
		t.Fatalf("read-path traffic leaked through with Reads off:\n%s", buf.String())
	}
	tr.Reads = true
	tr.MsgSend(read)
	tr.MsgDeliver(read)
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("Reads on recorded %d events, want 2:\n%s", got, buf.String())
	}
}

func TestRingKeepsLastN(t *testing.T) {
	r := NewRing(4)
	tr := testTracer(r)
	for i := 0; i < 10; i++ {
		tr.Instant(KSquash, i, false, msg.CTag{Proc: i}, 0)
	}
	if r.Len() != 4 {
		t.Fatalf("ring Len = %d, want 4", r.Len())
	}
	snap := r.Snapshot()
	for i, e := range snap {
		if want := 6 + i; e.Node != want {
			t.Errorf("snapshot[%d].Node = %d, want %d (oldest-first order)", i, e.Node, want)
		}
	}
	if dump := r.Dump(); len(dump) != 4 {
		t.Errorf("Dump has %d lines, want 4:\n%s", len(dump), strings.Join(dump, "\n"))
	}
}

func TestFilter(t *testing.T) {
	r := NewRing(64)
	f := NewFilter(r)
	f.Core = 3
	tr := testTracer(f)
	tag3 := msg.CTag{Proc: 3, Seq: 1}
	tr.Instant(KSquash, 3, false, tag3, 0)                      // node match
	tr.Instant(KSquash, 5, false, msg.CTag{Proc: 5, Seq: 1}, 0) // no match
	tr.MsgSend(&msg.Msg{Kind: msg.Grab, Src: 3, Dst: 7})        // endpoint match
	tr.MsgSend(&msg.Msg{Kind: msg.Grab, Src: 6, Dst: 7})        // no match
	if r.Len() != 2 {
		t.Fatalf("core filter kept %d events, want 2:\n%s", r.Len(), strings.Join(r.Dump(), "\n"))
	}

	r2 := NewRing(64)
	f2 := NewFilter(r2)
	f2.Kinds = map[Kind]bool{KSquash: true}
	f2.Chunk = &tag3
	tr2 := testTracer(f2)
	tr2.Instant(KSquash, 3, false, tag3, 0)
	tr2.Instant(KCommitDone, 3, false, tag3, 0)                  // kind mismatch
	tr2.Instant(KSquash, 9, false, msg.CTag{Proc: 9, Seq: 2}, 0) // chunk mismatch
	tr2.Emit(Event{Kind: KSquash, Node: 4, Tag: msg.CTag{Proc: 4}, Other: tag3, HasOther: true})
	if r2.Len() != 2 {
		t.Fatalf("kind+chunk filter kept %d events, want 2:\n%s", r2.Len(), strings.Join(r2.Dump(), "\n"))
	}
}

// TestPerfettoValid checks the exporter output against the Chrome
// trace-event schema rules the CI smoke job enforces: a traceEvents array,
// required fields per event, balanced B/E per track and b/e per id.
func TestPerfettoValid(t *testing.T) {
	var buf bytes.Buffer
	p := NewPerfetto(&buf)
	tr := testTracer(p)
	tag := msg.CTag{Proc: 0, Seq: 1}
	tr.Span(KExec, PhaseBegin, 0, false, tag, 0)
	tr.Span(KExec, PhaseEnd, 0, false, tag, 0)
	tr.Span(KCommit, PhaseBegin, 0, false, tag, 0)
	tr.Span(KHold, PhaseBegin, 2, true, tag, 0)
	tr.Instant(KGroupFormed, 2, true, tag, 0)
	tr.Span(KHold, PhaseEnd, 2, true, tag, 0)
	// KCommit deliberately left open: Close must balance it.
	if err := tr.sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePerfetto(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("group_formed")) {
		t.Error("instant name missing from output")
	}
}

// TestValidatePerfettoRejectsBadDocs exercises the validator's own failure
// paths on handcrafted documents.
func TestValidatePerfettoRejectsBadDocs(t *testing.T) {
	bad := []string{
		`not json`,
		`{"traceEvents":[]}`,
		`{"traceEvents":[{"ph":"E","pid":1,"tid":0,"ts":5}]}`,
		`{"traceEvents":[{"ph":"b","pid":1,"tid":0,"ts":5,"cat":"commit"}]}`,
		`{"traceEvents":[{"ph":"B","pid":1,"tid":0,"ts":5,"name":"x"}]}`,
	}
	for i, doc := range bad {
		if err := ValidatePerfetto([]byte(doc)); err == nil {
			t.Errorf("bad doc %d accepted", i)
		}
	}
}

func TestKindByName(t *testing.T) {
	for k := Kind(1); k < numKinds; k++ {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v,%v, want %v,true", k.String(), got, ok, k)
		}
	}
	if _, ok := KindByName("nope"); ok {
		t.Error("KindByName accepted unknown name")
	}
}
