package trace

import "strconv"

// appendTile renders the tile half a la the old printf trace: "D5" for the
// directory module, "P3" for the processor.
func (e *Event) appendTile(b []byte) []byte {
	if e.Dir {
		b = append(b, 'D')
	} else {
		b = append(b, 'P')
	}
	return strconv.AppendInt(b, int64(e.Node), 10)
}

func appendTag(b []byte, proc int, seq uint64) []byte {
	b = append(b, 'P')
	b = strconv.AppendInt(b, int64(proc), 10)
	b = append(b, '.')
	return strconv.AppendUint(b, seq, 10)
}

// AppendText renders the event as one human-readable line (no trailing
// newline), in the spirit of the old sbtrace output: a "[  cycle]" gutter,
// then ">"/"<" for NoC send/deliver, "!" for faults, "*" for protocol
// lifecycle events.
func (e *Event) AppendText(b []byte) []byte {
	b = append(b, '[')
	n := len(b)
	b = strconv.AppendUint(b, uint64(e.T), 10)
	for len(b)-n < 7 { // right-align the cycle like the old "%7d"
		b = append(b, 0)
		copy(b[n+1:], b[n:])
		b[n] = ' '
	}
	b = append(b, "] "...)

	switch e.Kind {
	case KSend, KDeliver, KFaultDelay, KFaultDup, KFaultRetransmit, KFaultHot:
		switch e.Kind {
		case KSend:
			b = append(b, "> "...)
		case KDeliver:
			b = append(b, "< "...)
		default:
			b = append(b, "! "...)
			b = append(b, e.Kind.String()...)
			b = append(b, ' ')
		}
		b = append(b, e.MsgKind.String()...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(e.Src), 10)
		b = append(b, "->"...)
		b = strconv.AppendInt(b, int64(e.Dst), 10)
		b = append(b, ' ')
		b = appendTag(b, e.Tag.Proc, e.Tag.Seq)
		return b
	}

	b = append(b, "* "...)
	b = e.appendTile(b)
	b = append(b, ' ')
	b = append(b, e.Kind.String()...)
	if e.Kind.Span() {
		if e.Phase == PhaseBegin {
			b = append(b, " begin"...)
		} else {
			b = append(b, " end"...)
		}
	}
	b = append(b, ' ')
	b = appendTag(b, e.Tag.Proc, e.Tag.Seq)
	b = append(b, " try="...)
	b = strconv.AppendInt(b, int64(e.Try), 10)
	if e.Kind == KCommit && e.Phase == PhaseEnd {
		if e.OK {
			b = append(b, " ok"...)
		} else {
			b = append(b, " fail"...)
		}
	}
	if e.Cause != CauseNone {
		b = append(b, " cause="...)
		b = append(b, e.Cause.String()...)
	}
	if e.HasOther {
		b = append(b, " by "...)
		b = appendTag(b, e.Other.Proc, e.Other.Seq)
	}
	return b
}

// AppendJSON renders the event as one deterministic JSON object (no trailing
// newline). Field order and formatting are fixed so that two runs of the
// same seed produce byte-identical JSONL streams — the trace determinism
// contract.
func (e *Event) AppendJSON(b []byte) []byte {
	b = append(b, `{"t":`...)
	b = strconv.AppendUint(b, uint64(e.T), 10)
	b = append(b, `,"ev":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","ph":"`...)
	b = append(b, e.Phase.String()...)
	b = append(b, `","node":`...)
	b = strconv.AppendInt(b, int64(e.Node), 10)
	b = append(b, `,"side":"`...)
	if e.Dir {
		b = append(b, "dir"...)
	} else {
		b = append(b, "core"...)
	}
	b = append(b, `","tag":"`...)
	b = appendTag(b, e.Tag.Proc, e.Tag.Seq)
	b = append(b, `","try":`...)
	b = strconv.AppendInt(b, int64(e.Try), 10)
	if e.Kind == KCommit && e.Phase == PhaseEnd {
		if e.OK {
			b = append(b, `,"ok":true`...)
		} else {
			b = append(b, `,"ok":false`...)
		}
	}
	if e.Cause != CauseNone {
		b = append(b, `,"cause":"`...)
		b = append(b, e.Cause.String()...)
		b = append(b, '"')
	}
	if e.HasOther {
		b = append(b, `,"other":"`...)
		b = appendTag(b, e.Other.Proc, e.Other.Seq)
		b = append(b, '"')
	}
	switch e.Kind {
	case KSend, KDeliver, KFaultDelay, KFaultDup, KFaultRetransmit, KFaultHot:
		b = append(b, `,"msg":"`...)
		b = append(b, e.MsgKind.String()...)
		b = append(b, `","src":`...)
		b = strconv.AppendInt(b, int64(e.Src), 10)
		b = append(b, `,"dst":`...)
		b = strconv.AppendInt(b, int64(e.Dst), 10)
	}
	b = append(b, '}')
	return b
}

// String renders the event as its text line (testing convenience).
func (e Event) String() string { return string(e.AppendText(nil)) }
