// Package trace is the simulator's structured observability layer: typed
// span and instant events for the chunk commit lifecycle (execute →
// commit-request → group formation → grab/occupied → commit or squash, with
// squash causes and preempting-chunk causality links), NoC message
// send/deliver events, and fault-injection events.
//
// Emission is zero-cost when disabled: a nil *Tracer is a valid tracer whose
// methods return immediately without allocating, so the DES hot loop pays a
// single nil check per site. Formatting is deferred entirely to sinks — the
// Event struct is all-scalar (no strings, no fmt) and handed to the Sink by
// value.
//
// Sinks (sinks.go, perfetto.go): a text formatter compatible with the old
// printf trace, a deterministic JSONL writer, a Chrome trace-event/Perfetto
// JSON exporter, a fixed-size ring-buffer flight recorder whose tail is
// attached to deadlock dumps and crash bundles, plus filter and fan-out
// combinators.
package trace

import (
	"scalablebulk/internal/event"
	"scalablebulk/internal/msg"
)

// Kind enumerates every event type the simulator emits.
type Kind uint8

const (
	// KindNone is the zero Kind; no event carries it.
	KindNone Kind = iota

	// --- Spans (emitted with PhaseBegin / PhaseEnd) ---

	// KExec: a core executes a chunk. Ends on completion or on any of the
	// squash/abandon paths (Cause says which).
	KExec
	// KCommit: one commit attempt, from the processor's commit request to
	// its success or failure notification (OK distinguishes them).
	KCommit
	// KHold: a directory module (or the centralized agent) is held by a
	// chunk's group — ScalableBulk stHeld, TCC head-of-pipeline, SEQ-PRO
	// occupancy, BulkSC arbiter in-flight entry.
	KHold

	// --- Commit-lifecycle instants ---

	// KCommitReq: a directory module received a commit_request.
	KCommitReq
	// KGroupFormed: the attempt's group formed (commit authorized).
	KGroupFormed
	// KGroupFail: group formation failed at a module (Cause says why).
	KGroupFail
	// KCollision: two forming groups collided; Tag lost to Other.
	KCollision
	// KReserved: a module bounced Tag because it is reserved for the
	// starving chunk Other.
	KReserved
	// KRecall: an OCI commit_recall for Tag was received or looked out for.
	KRecall
	// KStaleClear: a stale pending entry for Tag was cleared at a module.
	KStaleClear
	// KSquash: a processor squashed chunk Tag (Cause = conflict or
	// aliasing; Other = the preempting committer's chunk when known).
	KSquash
	// KRefused: the processor learned its commit attempt was refused.
	KRefused
	// KWatchdog: a stall watchdog abandoned the attempt.
	KWatchdog
	// KCommitDone: the processor learned its commit completed.
	KCommitDone

	// --- NoC ---

	// KSend: a message was injected into the network.
	KSend
	// KDeliver: a message arrived and is about to run its handler.
	KDeliver

	// --- Fault injection ---

	// KFaultDelay: the injector jittered a delivery.
	KFaultDelay
	// KFaultDup: the injector duplicated a delivery.
	KFaultDup
	// KFaultRetransmit: the injector deferred a delivery to a retransmit.
	KFaultRetransmit
	// KFaultHot: the injector applied a hot-node delay.
	KFaultHot

	numKinds
)

// NumKinds is the number of defined event kinds.
const NumKinds = int(numKinds)

var kindNames = [...]string{
	KindNone:         "none",
	KExec:            "exec",
	KCommit:          "commit",
	KHold:            "hold",
	KCommitReq:       "commit_req",
	KGroupFormed:     "group_formed",
	KGroupFail:       "group_fail",
	KCollision:       "collision",
	KReserved:        "reserved",
	KRecall:          "recall",
	KStaleClear:      "stale_clear",
	KSquash:          "squash",
	KRefused:         "refused",
	KWatchdog:        "watchdog",
	KCommitDone:      "commit_done",
	KSend:            "send",
	KDeliver:         "deliver",
	KFaultDelay:      "fault_delay",
	KFaultDup:        "fault_dup",
	KFaultRetransmit: "fault_retransmit",
	KFaultHot:        "fault_hot",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// KindByName resolves a kind name ("commit", "squash", ...) for CLI filters.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name && Kind(k) != KindNone {
			return Kind(k), true
		}
	}
	return KindNone, false
}

// Span reports whether the kind is a span (emitted with begin/end phases).
func (k Kind) Span() bool { return k == KExec || k == KCommit || k == KHold }

// Phase distinguishes span boundaries from instants.
type Phase uint8

const (
	// PhaseInstant is the zero Phase: a point event.
	PhaseInstant Phase = iota
	// PhaseBegin opens a span.
	PhaseBegin
	// PhaseEnd closes a span.
	PhaseEnd
)

func (p Phase) String() string {
	switch p {
	case PhaseBegin:
		return "B"
	case PhaseEnd:
		return "E"
	}
	return "I"
}

// Cause classifies why a span ended or an instant fired.
type Cause uint8

const (
	// CauseNone: success, or no cause applies.
	CauseNone Cause = iota
	// CauseConflict: squash on a true data conflict.
	CauseConflict
	// CauseAliasing: squash on signature aliasing (false positive).
	CauseAliasing
	// CauseCollision: the group lost a formation collision.
	CauseCollision
	// CauseReserved: bounced by a starvation reservation.
	CauseReserved
	// CauseRecalled: cancelled by an OCI commit_recall.
	CauseRecalled
	// CauseWatchdog: abandoned by a stall watchdog.
	CauseWatchdog
	// CauseDenied: refused by an arbiter/vendor decision.
	CauseDenied
	// CauseAbandoned: the run reached its chunk target and dropped the
	// in-progress work.
	CauseAbandoned
	// CauseStale: a stale entry or late message for a dead attempt.
	CauseStale

	numCauses
)

var causeNames = [...]string{
	CauseNone:      "",
	CauseConflict:  "conflict",
	CauseAliasing:  "aliasing",
	CauseCollision: "collision",
	CauseReserved:  "reserved",
	CauseRecalled:  "recalled",
	CauseWatchdog:  "watchdog",
	CauseDenied:    "denied",
	CauseAbandoned: "abandoned",
	CauseStale:     "stale",
}

func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return "cause?"
}

// Event is one trace record. It is all-scalar so emission never allocates
// and sinks receive it by value; rendering (text, JSON, Perfetto) happens
// entirely in the sink.
type Event struct {
	T     event.Time // cycle the event happened
	Kind  Kind
	Phase Phase
	Cause Cause
	// Node is the tile where the event happened; Dir says which half of the
	// tile (directory module vs processor) — sinks map this to tracks.
	Node int
	Dir  bool
	// Tag/Try identify the subject chunk and commit attempt.
	Tag msg.CTag
	Try int
	// Other, when HasOther, is a causally related chunk: the preempting
	// committer of a squash, the winner of a collision, the reservation
	// holder of a bounce.
	Other    msg.CTag
	HasOther bool
	// OK reports success on KCommit end events.
	OK bool
	// Message payload for KSend/KDeliver/fault events.
	MsgKind  msg.Kind
	Src, Dst int
}

// Sink consumes events. Implementations are single-threaded like the
// simulator; Close flushes buffered output.
type Sink interface {
	Event(Event)
	Close() error
}

// Tracer stamps events with the engine clock and hands them to its sink. A
// nil *Tracer is the disabled tracer: every method returns immediately, so
// instrumentation sites cost one nil check and zero allocations.
type Tracer struct {
	eng  *event.Engine
	sink Sink
	// Reads gates read-path NoC traffic (msg.Kind.Transient()), by far the
	// most numerous messages in a run; off unless explicitly requested.
	Reads bool
}

// New builds a tracer over the engine clock. A nil sink yields a nil (i.e.
// disabled) tracer.
func New(eng *event.Engine, sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{eng: eng, sink: sink}
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit stamps the current cycle on e and hands it to the sink.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	e.T = t.eng.Now()
	t.sink.Event(e)
}

// Span emits a begin/end boundary of span kind k at a tile.
func (t *Tracer) Span(k Kind, ph Phase, node int, dir bool, tag msg.CTag, try int) {
	if t == nil {
		return
	}
	t.sink.Event(Event{T: t.eng.Now(), Kind: k, Phase: ph, Node: node, Dir: dir, Tag: tag, Try: try})
}

// Instant emits a point event at a tile.
func (t *Tracer) Instant(k Kind, node int, dir bool, tag msg.CTag, try int) {
	if t == nil {
		return
	}
	t.sink.Event(Event{T: t.eng.Now(), Kind: k, Node: node, Dir: dir, Tag: tag, Try: try})
}

// MsgSend records a message injection (on the source tile's track).
func (t *Tracer) MsgSend(m *msg.Msg) {
	if t == nil || (!t.Reads && m.Kind.Transient()) {
		return
	}
	t.sink.Event(Event{
		T: t.eng.Now(), Kind: KSend, Node: m.Src, Dir: senderIsDir(m.Kind),
		Tag: m.Tag, MsgKind: m.Kind, Src: m.Src, Dst: m.Dst,
	})
}

// MsgDeliver records a message arrival (on the destination tile's track), at
// its actual delivery time — after contention retiming and fault rewrites —
// so printed cycle numbers match arrival order.
func (t *Tracer) MsgDeliver(m *msg.Msg) {
	if t == nil || (!t.Reads && m.Kind.Transient()) {
		return
	}
	t.sink.Event(Event{
		T: t.eng.Now(), Kind: KDeliver, Node: m.Dst, Dir: m.Kind.SideOf() == msg.SideDir,
		Tag: m.Tag, MsgKind: m.Kind, Src: m.Src, Dst: m.Dst,
	})
}

// Fault records a fault-injection action on message m.
func (t *Tracer) Fault(k Kind, m *msg.Msg) {
	if t == nil || (!t.Reads && m.Kind.Transient()) {
		return
	}
	t.sink.Event(Event{
		T: t.eng.Now(), Kind: k, Node: m.Dst, Dir: m.Kind.SideOf() == msg.SideDir,
		Tag: m.Tag, MsgKind: m.Kind, Src: m.Src, Dst: m.Dst,
	})
}

// senderIsDir reports whether a message kind originates at the directory
// half of a tile (or the centralized agent hosted there). Used only to place
// send events on the right display track.
func senderIsDir(k msg.Kind) bool {
	switch k {
	case msg.Grab, msg.GFailure, msg.GSuccess, msg.CommitFailure,
		msg.CommitSuccess, msg.BulkInv, msg.CommitDone,
		msg.ReadMemReply, msg.ReadShReply, msg.ReadDirtyFwd, msg.ReadNack,
		msg.TIDReply, msg.TCCProbeAck, msg.TCCInval, msg.TCCAck,
		msg.SeqGrant, msg.ArbGrant, msg.ArbDeny:
		return true
	}
	return false
}
