package trace

import (
	"io"
	"sort"
	"strconv"
)

// Perfetto buffers events and, on Close, writes Chrome trace-event JSON
// (the legacy JSON format Perfetto and chrome://tracing both load).
//
// Track model: pid 1 is the "cores" process and pid 2 the "directories"
// process, with one thread per tile on each side. Execution spans are
// synchronous B/E slices on their core's thread (a core executes one chunk
// at a time, so they nest trivially). Commit attempts and directory holds
// are nestable async b/e pairs keyed by chunk attempt — commit attempts
// overlap the next chunk's execution, and BulkSC's arbiter holds overlap
// each other, so synchronous slices would violate Chrome's nesting rules.
// Cycles map 1:1 to microseconds (ts is in μs).
type Perfetto struct {
	w      io.Writer
	events []Event
}

// NewPerfetto builds a Perfetto sink over w. Nothing is written until Close.
func NewPerfetto(w io.Writer) *Perfetto { return &Perfetto{w: w} }

// Event implements Sink.
func (p *Perfetto) Event(e Event) { p.events = append(p.events, e) }

const (
	pidCores = 1
	pidDirs  = 2
)

func (e *Event) track() (pid, tid int) {
	pid = pidCores
	if e.Dir {
		pid = pidDirs
	}
	return pid, e.Node
}

// Close renders the buffered events and writes the JSON document.
func (p *Perfetto) Close() error {
	var b []byte
	b = append(b, `{"displayTimeUnit":"ms","traceEvents":[`...)

	// Track metadata, deterministic order: cores then directories.
	seen := map[track2]bool{}
	var tracks []track2
	for i := range p.events {
		pid, tid := p.events[i].track()
		tr := track2{pid, tid}
		if !seen[tr] {
			seen[tr] = true
			tracks = append(tracks, tr)
		}
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].pid != tracks[j].pid {
			return tracks[i].pid < tracks[j].pid
		}
		return tracks[i].tid < tracks[j].tid
	})
	first := true
	meta := func(pid, tid int, key, name string) {
		if !first {
			b = append(b, ',')
		}
		first = false
		b = append(b, `{"ph":"M","pid":`...)
		b = strconv.AppendInt(b, int64(pid), 10)
		b = append(b, `,"tid":`...)
		b = strconv.AppendInt(b, int64(tid), 10)
		b = append(b, `,"name":"`...)
		b = append(b, key...)
		b = append(b, `","args":{"name":"`...)
		b = append(b, name...)
		b = append(b, `"}}`...)
	}
	meta(pidCores, 0, "process_name", "cores")
	meta(pidDirs, 0, "process_name", "directories")
	for _, tr := range tracks {
		side := "core "
		if tr.pid == pidDirs {
			side = "dir "
		}
		meta(tr.pid, tr.tid, "thread_name", side+strconv.Itoa(tr.tid))
	}

	// Body. Track open spans so the file is always balanced: runs stop the
	// moment the workload finishes, legitimately leaving holds (and the
	// last chunks' attempts) open — those are closed at the final cycle.
	var maxT uint64
	syncOpen := map[track2]int{}
	asyncOpen := map[string]asyncKey{}
	for i := range p.events {
		e := &p.events[i]
		if uint64(e.T) > maxT {
			maxT = uint64(e.T)
		}
		b = p.renderEvent(b, e, &first, syncOpen, asyncOpen)
	}

	// Close dangling spans at the last observed cycle.
	for _, tr := range tracks {
		for d := syncOpen[tr]; d > 0; d-- {
			b = appendDur(b, &first, "E", tr.pid, tr.tid, maxT)
			b = append(b, '}')
		}
	}
	ids := make([]string, 0, len(asyncOpen))
	for id := range asyncOpen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		k := asyncOpen[id]
		b = appendDur(b, &first, "e", k.pid, k.tid, maxT)
		b = append(b, `,"cat":"`...)
		b = append(b, k.cat...)
		b = append(b, `","id":"`...)
		b = append(b, id...)
		b = append(b, `","name":"`...)
		b = append(b, k.name...)
		b = append(b, `"}`...)
	}

	b = append(b, "]}\n"...)
	_, err := p.w.Write(b)
	return err
}

type asyncKey struct {
	pid, tid  int
	cat, name string
}

// appendDur opens one event object with the common ph/pid/tid/ts fields;
// the caller appends any extra fields and the closing brace.
func appendDur(b []byte, first *bool, ph string, pid, tid int, ts uint64) []byte {
	if !*first {
		b = append(b, ',')
	}
	*first = false
	b = append(b, `{"ph":"`...)
	b = append(b, ph...)
	b = append(b, `","pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, `,"ts":`...)
	b = strconv.AppendUint(b, ts, 10)
	return b
}

// spanID is the async-event id of one chunk attempt's span at one module:
// "P3.7/1@D5" — unique per (kind instance), shared between its b and e.
func spanID(e *Event) string {
	b := appendTag(nil, e.Tag.Proc, e.Tag.Seq)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(e.Try), 10)
	if e.Kind == KHold {
		b = append(b, '@')
		b = e.appendTile(b)
	}
	return string(b)
}

func spanName(e *Event) string {
	b := append([]byte(e.Kind.String()), ' ')
	return string(appendTag(b, e.Tag.Proc, e.Tag.Seq))
}

func (p *Perfetto) renderEvent(b []byte, e *Event, first *bool, syncOpen map[track2]int, asyncOpen map[string]asyncKey) []byte {
	pid, tid := e.track()
	ts := uint64(e.T)
	switch {
	case e.Kind == KExec:
		tr := track2{pid, tid}
		if e.Phase == PhaseBegin {
			syncOpen[tr]++
			b = appendDur(b, first, "B", pid, tid, ts)
			b = append(b, `,"cat":"exec","name":"`...)
			b = append(b, spanName(e)...)
			b = append(b, `"}`...)
		} else {
			if syncOpen[tr] == 0 {
				return b // end without begin (trace started mid-span): drop
			}
			syncOpen[tr]--
			b = appendDur(b, first, "E", pid, tid, ts)
			b = append(b, '}')
		}
	case e.Kind == KCommit || e.Kind == KHold:
		id := spanID(e)
		cat := e.Kind.String()
		if e.Phase == PhaseBegin {
			asyncOpen[id] = asyncKey{pid, tid, cat, spanName(e)}
			b = appendDur(b, first, "b", pid, tid, ts)
		} else {
			if _, ok := asyncOpen[id]; !ok {
				return b
			}
			delete(asyncOpen, id)
			b = appendDur(b, first, "e", pid, tid, ts)
		}
		b = append(b, `,"cat":"`...)
		b = append(b, cat...)
		b = append(b, `","id":"`...)
		b = append(b, id...)
		b = append(b, `","name":"`...)
		b = append(b, spanName(e)...)
		b = append(b, `"}`...)
	default:
		b = appendDur(b, first, "i", pid, tid, ts)
		b = append(b, `,"s":"t","cat":"`...)
		switch e.Kind {
		case KSend, KDeliver:
			b = append(b, "noc"...)
		case KFaultDelay, KFaultDup, KFaultRetransmit, KFaultHot:
			b = append(b, "fault"...)
		default:
			b = append(b, "lifecycle"...)
		}
		b = append(b, `","name":"`...)
		b = append(b, instantName(e)...)
		b = append(b, `"}`...)
	}
	return b
}

type track2 = struct{ pid, tid int }

func instantName(e *Event) string {
	var b []byte
	b = append(b, e.Kind.String()...)
	switch e.Kind {
	case KSend, KDeliver, KFaultDelay, KFaultDup, KFaultRetransmit, KFaultHot:
		b = append(b, ' ')
		b = append(b, e.MsgKind.String()...)
	default:
		b = append(b, ' ')
		b = appendTag(b, e.Tag.Proc, e.Tag.Seq)
		if e.Cause != CauseNone {
			b = append(b, " ("...)
			b = append(b, e.Cause.String()...)
			b = append(b, ')')
		}
		if e.HasOther {
			b = append(b, " by "...)
			b = appendTag(b, e.Other.Proc, e.Other.Seq)
		}
	}
	return string(b)
}
