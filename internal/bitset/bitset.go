// Package bitset provides the small dense bit vectors the protocols use for
// processor sets (inval_vec: sharers to invalidate) and directory-module sets
// (g_vec: group participants). They mirror the fixed-width hardware bit
// vectors carried inside protocol messages (Table 1 of the paper).
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set is a growable bit vector. The zero value is an empty set.
type Set struct {
	w []uint64
}

// New returns a set pre-sized to hold n bits.
func New(n int) Set { return Set{w: make([]uint64, (n+63)/64)} }

func (s *Set) grow(i int) {
	need := i/64 + 1
	for len(s.w) < need {
		s.w = append(s.w, 0)
	}
}

// Add inserts bit i.
func (s *Set) Add(i int) {
	s.grow(i)
	s.w[i/64] |= 1 << (i % 64)
}

// Remove clears bit i.
func (s *Set) Remove(i int) {
	if i/64 < len(s.w) {
		s.w[i/64] &^= 1 << (i % 64)
	}
}

// Has reports whether bit i is set.
func (s *Set) Has(i int) bool {
	return i/64 < len(s.w) && s.w[i/64]&(1<<(i%64)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	n := 0
	for _, w := range s.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no bit is set.
func (s *Set) Empty() bool {
	for _, w := range s.w {
		if w != 0 {
			return false
		}
	}
	return true
}

// Or merges o into s (set union), as directory modules do when accumulating
// inval_vec fields along the g message chain.
func (s *Set) Or(o Set) {
	for i, w := range o.w {
		if w == 0 {
			continue
		}
		s.grow(i*64 + 63)
		s.w[i] |= w
	}
}

// Clear empties the set, retaining capacity.
func (s *Set) Clear() {
	for i := range s.w {
		s.w[i] = 0
	}
}

// Clone returns an independent copy.
func (s *Set) Clone() Set {
	c := Set{w: make([]uint64, len(s.w))}
	copy(c.w, s.w)
	return c
}

// ForEach calls fn for every set bit in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.w {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}

// Members returns the set bits in ascending order.
func (s *Set) Members() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// FromMembers builds a set containing each listed bit.
func FromMembers(ms ...int) Set {
	var s Set
	for _, m := range ms {
		s.Add(m)
	}
	return s
}

// String renders the set as "{1,5,9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
