package bitset

import (
	"testing"
	"testing/quick"
)

func TestAddHasRemove(t *testing.T) {
	var s Set
	if s.Has(3) || !s.Empty() {
		t.Fatal("zero value not empty")
	}
	s.Add(3)
	s.Add(200)
	if !s.Has(3) || !s.Has(200) || s.Has(4) {
		t.Fatal("membership wrong after Add")
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d, want 2", s.Count())
	}
	s.Remove(3)
	if s.Has(3) || !s.Has(200) {
		t.Fatal("Remove broke membership")
	}
	s.Remove(10000) // out of range: no-op
}

func TestOrAccumulatesInvalVec(t *testing.T) {
	a := FromMembers(1, 2)
	b := FromMembers(2, 65)
	a.Or(b)
	for _, i := range []int{1, 2, 65} {
		if !a.Has(i) {
			t.Fatalf("missing %d after Or", i)
		}
	}
	if a.Count() != 3 {
		t.Fatalf("Count = %d, want 3", a.Count())
	}
}

func TestMembersOrdered(t *testing.T) {
	s := FromMembers(70, 3, 9, 0)
	got := s.Members()
	want := []int{0, 3, 9, 70}
	if len(got) != len(want) {
		t.Fatalf("Members = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromMembers(5)
	b := a.Clone()
	b.Add(6)
	if a.Has(6) {
		t.Fatal("Clone shares storage")
	}
}

func TestClearString(t *testing.T) {
	s := FromMembers(1, 2)
	if s.String() != "{1,2}" {
		t.Fatalf("String = %q", s.String())
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear left bits set")
	}
	if s.String() != "{}" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestPropertyMembership(t *testing.T) {
	f := func(adds []uint16) bool {
		var s Set
		ref := map[int]bool{}
		for _, a := range adds {
			s.Add(int(a))
			ref[int(a)] = true
		}
		if s.Count() != len(ref) {
			return false
		}
		for k := range ref {
			if !s.Has(k) {
				return false
			}
		}
		ok := true
		s.ForEach(func(i int) {
			if !ref[i] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
