package protocol

import (
	"fmt"
	"sort"
	"sync"

	"scalablebulk/internal/dir"
)

// Descriptor declares one runnable protocol (or protocol variant) to the
// registry: how to construct it, its default option block, the processor
// tuning it needs, and how it is presented to users.
type Descriptor struct {
	// Name is the registry key, matched exactly against Config.Protocol and
	// the CLIs' -protocol flags (e.g. "ScalableBulk", "TCC").
	Name string
	// Doc is the one-line description printed by the CLIs' -protocols list.
	Doc string
	// Rank orders listings: the paper's four evaluated protocols use their
	// Table 3 order (0–3); variants use ≥ 100 and sort after them by name.
	Rank int
	// Evaluated marks one of the four Table 3 protocols the paper's figures
	// compare; variants (ablations, policy experiments) leave it false and
	// are excluded from the figure sweeps but runnable everywhere else.
	Evaluated bool
	// DefaultOptions returns a fresh copy of the protocol's typed option
	// block (e.g. core.Config). Config.ProtoOptions overrides it per run.
	DefaultOptions func() any
	// New builds the engine over env with the given option block, which is
	// always non-nil and should be type-asserted to the concrete options
	// type (returning an error on mismatch).
	New func(env *dir.Env, opts any) (Engine, error)
	// Tuning is the processor-model configuration this protocol requires.
	Tuning Tuning
}

var (
	regMu    sync.RWMutex
	registry = map[string]Descriptor{}
)

// Register adds a protocol to the registry; protocol packages call it from
// init. It panics on a duplicate name or an incomplete descriptor, since
// both are programming errors caught on first use.
func Register(d Descriptor) {
	if d.Name == "" || d.New == nil || d.DefaultOptions == nil {
		panic(fmt.Sprintf("protocol: incomplete descriptor %+v", d))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[d.Name]; dup {
		panic(fmt.Sprintf("protocol: duplicate registration of %q", d.Name))
	}
	registry[d.Name] = d
}

// Lookup returns the descriptor registered under name.
func Lookup(name string) (Descriptor, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	d, ok := registry[name]
	return d, ok
}

// Descriptors returns every registered descriptor, ordered by (Rank, Name) —
// the paper's four first, variants after.
func Descriptors() []Descriptor {
	regMu.RLock()
	out := make([]Descriptor, 0, len(registry))
	for _, d := range registry {
		out = append(out, d)
	}
	regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Names returns every registered protocol name in Descriptors order.
func Names() []string {
	ds := Descriptors()
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Name
	}
	return out
}

// Evaluated returns the paper's evaluated protocols in Table 3 order.
func Evaluated() []string {
	var out []string
	for _, d := range Descriptors() {
		if d.Evaluated {
			out = append(out, d.Name)
		}
	}
	return out
}
