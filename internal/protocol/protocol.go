// Package protocol is the pluggable protocol layer: the Engine contract a
// commit protocol implements, the self-registration registry that the system
// assembly, figure harness and CLIs enumerate instead of hardcoding a
// protocol switch, and the shared machinery every engine builds on (the
// commit-deadline constants here, the watchdog/ack/trace kernel in the
// kernel subpackage).
//
// A protocol package registers itself from an init function:
//
//	func init() {
//		protocol.Register(protocol.Descriptor{
//			Name:           "TCC",
//			Doc:            "Scalable TCC: centralized TID vendor + probe/skip broadcast",
//			Rank:           1,
//			Evaluated:      true,
//			DefaultOptions: func() any { return DefaultConfig() },
//			New: func(env *dir.Env, opts any) (protocol.Engine, error) { ... },
//		})
//	}
//
// and becomes runnable by name everywhere — system.Run, the figure sweeps,
// and every CLI's -protocol flag — with zero edits to the assembly code.
// See DESIGN.md §12 for the full contract and a worked example.
package protocol

import (
	"scalablebulk/internal/dir"
	"scalablebulk/internal/event"
	"scalablebulk/internal/msg"
)

// DefaultCommitDeadline is the shared commit-stall watchdog deadline: an
// attempt still undecided this many cycles after its commit request is
// failed so the processor retries with backoff instead of hanging to the
// MaxCycles guard. It leaves ample headroom over the worst contended
// fault-free formation latency (thousands of cycles at 64 cores) while still
// detecting a wedged attempt long before the 2×10⁹-cycle budget.
const DefaultCommitDeadline event.Time = 200_000

// WatchdogDisabled, assigned to a protocol's CommitDeadline option, disables
// the stall watchdog (event.Time is unsigned, so a sentinel stands in
// for -1).
const WatchdogDisabled event.Time = ^event.Time(0)

// EffectiveDeadline normalizes a CommitDeadline option: zero selects
// DefaultCommitDeadline, WatchdogDisabled passes through.
func EffectiveDeadline(d event.Time) event.Time {
	if d == 0 {
		return DefaultCommitDeadline
	}
	return d
}

// Engine is a chunk-commit protocol engine as the processor and system
// layers consume it: the dir.Protocol message/commit entry points plus the
// protocol-specific counter export the CLIs and diagnostics read. Engines
// are built by a Descriptor's factory over a dir.Env.
type Engine interface {
	dir.Protocol
	// Stats exports the engine's protocol-specific counters (watchdog
	// firings, collision/reservation/recall tallies, ...) keyed by a short
	// stable name. It is read after the run; keys with zero values may be
	// omitted or included freely.
	Stats() map[string]uint64
}

// Debugger is optionally implemented by engines that can render per-module
// state for deadlock dumps (system.DeadlockError, crash bundles).
type Debugger interface {
	// DebugModule renders module i's protocol state, or "" if idle.
	DebugModule(i int) string
}

// AttemptEnumerator is optionally implemented by engines that can report how
// much protocol state is still live — open commit attempts plus any
// directory-side residue (occupancies, pipeline entries, arbiter in-flight
// slots). The model-checking explorer uses it as a quiescence oracle: a run
// that finished every chunk must report zero, so leaked directory state that
// no end-to-end invariant notices still fails the check. All in-tree engines
// implement it.
type AttemptEnumerator interface {
	// PendingAttempts counts live commit attempts plus directory-side
	// residue; zero means the engine is quiescent.
	PendingAttempts() int
}

// HoldObserver is optionally implemented by engines whose directory-side
// hold/release transitions the online invariant checker audits (I4: at most
// one confirmed group per module).
type HoldObserver interface {
	// SetHoldHooks installs the observation callbacks; either may be nil.
	SetHoldHooks(held, released func(module int, tag msg.CTag, try int))
}

// Tuning is the processor-model configuration a protocol requires. The
// system layer applies it to every core's proc.Config before the run.
type Tuning struct {
	// ConservativeInv buffers incoming invalidation signatures while a
	// processor awaits its own commit decision (BulkSC's pre-OCI behavior,
	// §3.3), acking only on consumption.
	ConservativeInv bool
	// OCIRecall piggy-backs commit_recall on bulk_inv_ack when an in-flight
	// commit is squashed (ScalableBulk's Optimistic Commit Initiation,
	// §3.3/§3.4). Protocols without OCI leave it off.
	OCIRecall bool
}
