package kernel

import (
	"testing"

	"scalablebulk/internal/chunk"
	"scalablebulk/internal/dir"
	"scalablebulk/internal/event"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/protocol"
	"scalablebulk/internal/stats"
)

// testEnv is the minimal machine the kernel touches: a clock, a collector,
// and a nil tracer (emission sites must tolerate trace-off runs).
func testEnv() *dir.Env {
	return &dir.Env{Eng: event.New(), Coll: stats.New()}
}

func TestNewNormalizesDeadline(t *testing.T) {
	if k := New(testEnv(), 0); k.WD.Deadline != protocol.DefaultCommitDeadline || !k.WD.Enabled() {
		t.Errorf("New(env, 0): deadline %d enabled=%t", k.WD.Deadline, k.WD.Enabled())
	}
	if k := New(testEnv(), 123); k.WD.Deadline != 123 {
		t.Errorf("New(env, 123): deadline %d", k.WD.Deadline)
	}
	if k := New(testEnv(), protocol.WatchdogDisabled); k.WD.Enabled() {
		t.Error("New(env, WatchdogDisabled): watchdog still enabled")
	}
}

func TestWatchdogDisabledArmIsNoOp(t *testing.T) {
	env := testEnv()
	k := New(env, protocol.WatchdogDisabled)
	probed := false
	k.WD.Arm(0, false, msg.CTag{}, 0,
		func() Disposition { probed = true; return Stalled },
		func() { t.Error("stalled callback ran with the watchdog disabled") })
	env.Eng.(*event.Engine).Run()
	if probed {
		t.Error("disabled watchdog still probed")
	}
	if env.Eng.Now() != 0 {
		t.Errorf("disabled watchdog advanced the clock to %d", env.Eng.Now())
	}
}

func TestWatchdogClosedStandsDown(t *testing.T) {
	env := testEnv()
	k := New(env, 100)
	probes := 0
	k.WD.Arm(3, true, msg.CTag{Proc: 3, Seq: 9}, 1,
		func() Disposition { probes++; return Closed },
		func() { t.Error("stalled callback ran on a decided attempt") })
	env.Eng.(*event.Engine).Run()
	if probes != 1 {
		t.Errorf("probe ran %d times, want 1", probes)
	}
	if k.WD.Fired != 0 {
		t.Errorf("Fired = %d on a Closed attempt", k.WD.Fired)
	}
	if env.Eng.Now() != 100 {
		t.Errorf("clock at %d, want the single deadline 100", env.Eng.Now())
	}
}

func TestWatchdogWatchingRearmsUntilStalled(t *testing.T) {
	env := testEnv()
	k := New(env, 50)
	probes, stalls := 0, 0
	k.WD.Arm(1, false, msg.CTag{Proc: 1, Seq: 4}, 2,
		func() Disposition {
			probes++
			if probes < 3 {
				return Watching
			}
			return Stalled
		},
		func() { stalls++ })
	env.Eng.(*event.Engine).Run()
	if probes != 3 || stalls != 1 {
		t.Errorf("probes=%d stalls=%d, want 3 probes and 1 stall", probes, stalls)
	}
	if k.WD.Fired != 1 {
		t.Errorf("Fired = %d, want 1", k.WD.Fired)
	}
	if env.Eng.Now() != 150 {
		t.Errorf("clock at %d, want 3 deadlines = 150", env.Eng.Now())
	}
}

// TestLifecycleHelpersTraceOff drives every lifecycle helper with a nil
// tracer: milestones must land in the collector and nothing may panic.
func TestLifecycleHelpersTraceOff(t *testing.T) {
	env := testEnv()
	k := New(env, 0)
	ck := &chunk.Chunk{Tag: msg.CTag{Proc: 2, Seq: 5}, Retries: 1}
	k.Started(2, ck)
	k.Formed(2, 5, 1)
	k.HoldBegin(3, ck.Tag, 1)
	k.HoldEnd(3, ck.Tag, 1)
	k.Done(3, true, ck.Tag, 1)
}

func TestAckSetDuplicateSafe(t *testing.T) {
	var a AckSet[int]
	if !a.Done() {
		t.Error("zero-value AckSet (nothing expected) must be Done")
	}
	a.Expect(2)
	if a.Done() || a.Outstanding() != 2 {
		t.Errorf("after Expect(2): done=%t outstanding=%d", a.Done(), a.Outstanding())
	}
	if !a.Ack(7) {
		t.Error("first ack rejected")
	}
	if a.Ack(7) {
		t.Error("duplicate ack accepted")
	}
	if a.Count() != 1 || a.Outstanding() != 1 || a.Done() {
		t.Errorf("after dup: count=%d outstanding=%d done=%t", a.Count(), a.Outstanding(), a.Done())
	}
	if !a.Ack(9) {
		t.Error("second ack rejected")
	}
	if !a.Done() || a.Outstanding() != 0 {
		t.Errorf("after both acks: outstanding=%d done=%t", a.Outstanding(), a.Done())
	}
	// Incremental discovery (TCC finds sharers as lines drain) reopens it.
	a.Expect(1)
	if a.Done() {
		t.Error("Expect after completion did not reopen the set")
	}
	if !a.Ack(11) || !a.Done() {
		t.Error("set did not complete after the late responder acked")
	}
}

func TestAckSetUnexpectedAckGoesNegative(t *testing.T) {
	var a AckSet[string]
	if !a.Ack("ghost") {
		t.Fatal("ack rejected")
	}
	if a.Outstanding() != -1 {
		t.Errorf("Outstanding = %d after an unexpected ack, want -1 (callers assert on it)", a.Outstanding())
	}
}

// Composite keys cover per-line acks (TCC's invalKey).
func TestAckSetCompositeKey(t *testing.T) {
	type key struct {
		src  int
		line uint64
	}
	var a AckSet[key]
	a.Expect(2)
	a.Ack(key{1, 0x40})
	a.Ack(key{1, 0x80}) // same node, different line: distinct responder
	if !a.Done() {
		t.Error("per-line keys from one node not counted separately")
	}
}
