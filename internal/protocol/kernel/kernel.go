// Package kernel is the shared commit-engine kernel: the machinery every
// commit protocol needs but none should re-implement — the commit-stall
// watchdog (deadline scheduling with attempt-snapshot probing), duplicate-
// safe ack accounting for retried attempts, and the structured lifecycle
// emission (collector milestones + trace spans) that keeps all four
// protocols' traces and statistics mutually comparable.
//
// A protocol engine embeds a *Kernel built over its dir.Env and calls the
// lifecycle helpers at the same milestones the paper's protocols share:
// Started at commit request, Formed when the commit is authorized
// (group formed / TID held everywhere / occupation complete / arbiter
// grant), HoldBegin/HoldEnd around directory-side holds, and Done at
// completion. The helpers draw no randomness and touch no protocol state,
// so they preserve bit-identical results by construction.
package kernel

import (
	"scalablebulk/internal/chunk"
	"scalablebulk/internal/dir"
	"scalablebulk/internal/event"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/protocol"
	"scalablebulk/internal/trace"
)

// Kernel bundles the shared services over one machine environment.
type Kernel struct {
	Env *dir.Env
	WD  Watchdog
}

// New builds a kernel over env with the given commit-stall deadline (zero
// selects protocol.DefaultCommitDeadline, protocol.WatchdogDisabled turns
// the watchdog off).
func New(env *dir.Env, deadline event.Time) *Kernel {
	return &Kernel{Env: env, WD: Watchdog{env: env, Deadline: protocol.EffectiveDeadline(deadline)}}
}

// Started records a commit request (or re-request) milestone.
func (k *Kernel) Started(proc int, ck *chunk.Chunk) {
	k.Env.Coll.CommitStarted(proc, ck.Tag.Seq, ck.Retries, k.Env.Eng.Now())
}

// Formed records the commit-authorization milestone — the protocol's
// equivalent of ScalableBulk's group formation (Figures 14–17 feed on it).
func (k *Kernel) Formed(proc int, seq uint64, try int) {
	k.Env.Coll.GroupFormed(proc, seq, try, k.Env.Eng.Now())
}

// HoldBegin emits the directory-side hold span opening: module node now
// holds the attempt (signature held / pipeline head / occupancy / in-flight
// table entry).
func (k *Kernel) HoldBegin(node int, tag msg.CTag, try int) {
	k.Env.Trace.Span(trace.KHold, trace.PhaseBegin, node, true, tag, try)
}

// HoldEnd emits the matching hold span close.
func (k *Kernel) HoldEnd(node int, tag msg.CTag, try int) {
	k.Env.Trace.Span(trace.KHold, trace.PhaseEnd, node, true, tag, try)
}

// Done emits the commit-completion instant at node (directory-side for
// protocols that finish at a module, processor-side otherwise).
func (k *Kernel) Done(node int, dirSide bool, tag msg.CTag, try int) {
	k.Env.Trace.Instant(trace.KCommitDone, node, dirSide, tag, try)
}

// Disposition is a watchdog probe's verdict on an attempt whose deadline
// expired.
type Disposition int

const (
	// Closed: the attempt was decided (committed or failed); stand down.
	Closed Disposition = iota
	// Watching: the attempt is live but past its serialization point and
	// cannot be aborted; re-arm and keep watching.
	Watching
	// Stalled: the attempt made no progress; count it, trace it, fail it.
	Stalled
)

// Watchdog schedules commit-stall deadlines. Arming draws no randomness and
// a quiet watchdog touches no state, so an armed-but-silent watchdog leaves
// a fault-free run bit-identical — the property the golden-fingerprint tests
// pin.
type Watchdog struct {
	env *dir.Env
	// Deadline is the effective stall deadline (never zero; WatchdogDisabled
	// disarms Arm entirely).
	Deadline event.Time
	// Fired counts attempts failed by the watchdog; exported through the
	// engine's Stats().
	Fired uint64
	// Outstanding gauges deadline probes scheduled but not yet resolved
	// (a Watching re-arm keeps the probe outstanding). The model-checking
	// explorer folds it into its quiescence and state-digest computations:
	// an armed watchdog is an enabled time-driven transition.
	Outstanding int
}

// Enabled reports whether Arm schedules anything.
func (w *Watchdog) Enabled() bool { return w.Deadline != protocol.WatchdogDisabled }

// Arm schedules the stall deadline for one commit attempt, identified by its
// (tag, try) snapshot taken now — the probe must compare against the
// snapshot, not live retry counters, because a squash can advance them under
// a scheduled deadline. When the deadline expires the probe decides:
// Closed does nothing, Watching re-arms the same probe one deadline later,
// and Stalled counts the firing, emits the KWatchdog trace event at node,
// and runs stalled (the protocol's abort + retry notification).
func (w *Watchdog) Arm(node int, dirSide bool, tag msg.CTag, try int, probe func() Disposition, stalled func()) {
	if !w.Enabled() {
		return
	}
	w.Outstanding++
	w.env.Eng.After(w.Deadline, func() { w.fire(node, dirSide, tag, try, probe, stalled) })
}

func (w *Watchdog) fire(node int, dirSide bool, tag msg.CTag, try int, probe func() Disposition, stalled func()) {
	switch probe() {
	case Closed:
		w.Outstanding--
	case Watching:
		w.env.Eng.After(w.Deadline, func() { w.fire(node, dirSide, tag, try, probe, stalled) })
	case Stalled:
		w.Outstanding--
		w.Fired++
		w.env.Trace.Emit(trace.Event{
			Kind: trace.KWatchdog, Node: node, Dir: dirSide,
			Tag: tag, Try: try, Cause: trace.CauseWatchdog,
		})
		stalled()
	}
}
