package kernel

// AckSet is duplicate-safe ack accounting for one commit attempt. Under
// fault injection the network can duplicate any ack, and a bare counter
// would complete (or underflow) an attempt before every responder actually
// answered — the bug class each protocol previously guarded against with its
// own map-plus-counter pair. The key type identifies one responder: a node
// ID for whole-node acks, a composite for per-line acks.
//
// The zero value is ready to use; the set allocates lazily so idle entries
// stay allocation-free.
type AckSet[K comparable] struct {
	expected int
	seen     map[K]bool
}

// Expect adds n responders to wait for (it accumulates, for protocols that
// discover responders incrementally).
func (a *AckSet[K]) Expect(n int) { a.expected += n }

// Ack records one responder's ack; it reports false for a duplicate, which
// the caller must discard without re-counting.
func (a *AckSet[K]) Ack(k K) bool {
	if a.seen[k] {
		return false
	}
	if a.seen == nil {
		a.seen = make(map[K]bool)
	}
	a.seen[k] = true
	return true
}

// Count returns how many distinct responders acked.
func (a *AckSet[K]) Count() int { return len(a.seen) }

// Outstanding returns expected minus acked. A negative value means an ack
// arrived from a responder that was never expected — a protocol bug the
// caller may assert on.
func (a *AckSet[K]) Outstanding() int { return a.expected - len(a.seen) }

// Done reports whether every expected responder acked.
func (a *AckSet[K]) Done() bool { return a.Outstanding() <= 0 }
