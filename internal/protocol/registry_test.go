package protocol

// The registry in this test binary starts empty: engine packages register
// from their own inits and none is imported here, so these tests own every
// name they assert on.

import (
	"reflect"
	"testing"

	"scalablebulk/internal/dir"
	"scalablebulk/internal/event"
)

func testDesc(name string, rank int, eval bool) Descriptor {
	return Descriptor{
		Name: name, Doc: "test protocol " + name, Rank: rank, Evaluated: eval,
		DefaultOptions: func() any { return struct{}{} },
		New:            func(*dir.Env, any) (Engine, error) { return nil, nil },
	}
}

func TestRegisterLookupOrdering(t *testing.T) {
	Register(testDesc("zz-variant", 100, false))
	Register(testDesc("bb", 1, true))
	Register(testDesc("aa", 0, true))
	Register(testDesc("aa-variant", 100, false))

	// Descriptors order by (Rank, Name): evaluated ranks first, then
	// variants alphabetically.
	if got, want := Names(), []string{"aa", "bb", "aa-variant", "zz-variant"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	if got, want := Evaluated(), []string{"aa", "bb"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Evaluated() = %v, want %v", got, want)
	}
	d, ok := Lookup("aa")
	if !ok || d.Rank != 0 || !d.Evaluated || d.Doc != "test protocol aa" {
		t.Fatalf("Lookup(aa) = %+v, %t", d, ok)
	}
	if _, ok := Lookup("unregistered"); ok {
		t.Fatal("Lookup found a protocol that never registered")
	}
}

func TestRegisterRejectsDuplicate(t *testing.T) {
	Register(testDesc("dup", 50, false))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(testDesc("dup", 50, false))
}

func TestRegisterRejectsIncomplete(t *testing.T) {
	incomplete := []Descriptor{
		{}, // no name
		{Name: "x1", DefaultOptions: func() any { return nil }},                    // no constructor
		{Name: "x2", New: func(*dir.Env, any) (Engine, error) { return nil, nil }}, // no options
	}
	for i, d := range incomplete {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("incomplete descriptor %d accepted: %+v", i, d)
				}
			}()
			Register(d)
		}()
	}
}

func TestEffectiveDeadline(t *testing.T) {
	if got := EffectiveDeadline(0); got != DefaultCommitDeadline {
		t.Errorf("EffectiveDeadline(0) = %d, want the default %d", got, DefaultCommitDeadline)
	}
	if got := EffectiveDeadline(123); got != event.Time(123) {
		t.Errorf("EffectiveDeadline(123) = %d", got)
	}
	if got := EffectiveDeadline(WatchdogDisabled); got != WatchdogDisabled {
		t.Errorf("EffectiveDeadline(WatchdogDisabled) = %d, want it passed through", got)
	}
}
