// Package all links every in-tree commit protocol into the protocol
// registry. The system layer blank-imports it so that any program reaching
// the assembly code — the CLIs, the figure harness, tests — sees the full
// protocol set without naming any engine package itself. A new protocol (or
// variant) becomes runnable everywhere by registering itself and being
// linked here; nothing in internal/system changes.
package all

import (
	_ "scalablebulk/internal/bulksc" // BulkSC centralized arbiter
	_ "scalablebulk/internal/core"   // ScalableBulk + ScalableBulk-NoOCI
	_ "scalablebulk/internal/seqpro" // SEQ-PRO sequential occupation
	_ "scalablebulk/internal/tcc"    // Scalable TCC
)
