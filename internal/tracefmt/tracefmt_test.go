package tracefmt

import (
	"bytes"
	"errors"
	"hash/crc32"
	"path/filepath"
	"reflect"
	"testing"

	"scalablebulk/internal/chunk"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/sig"
)

// sampleTrace builds a small but representative trace: multiple cores,
// multiple chunks, mixed reads/writes, both sections populated, large line
// addresses (page bases near 2^21 pages exercise multi-byte varints and
// signed deltas).
func sampleTrace() *Trace {
	mk := func(proc int, seq uint64, lines ...int64) Rec {
		r := Rec{Proc: proc, Seq: seq, Instr: 2000}
		for i, l := range lines {
			r.Accesses = append(r.Accesses, chunk.Access{Line: sig.Line(l), Write: i%3 == 0})
		}
		return r
	}
	return &Trace{
		Header: Header{
			App: "Radix", Source: "synthetic", Protocol: "ScalableBulk",
			Fingerprint: "deadbeef", Threads: 4, PagesPerThread: 16,
			Seed: -7, ChunksPerCore: 2, WarmupPerCore: 1,
		},
		Warmup: []Rec{
			mk(0, 0, 1<<28, 1<<28+1, 5),
			mk(1, 0, 1<<29, 42),
		},
		Chunks: []Rec{
			mk(0, 0, 268435456, 268435457, 3, 268435999),
			mk(0, 1, 7, 6, 5), // descending lines: negative deltas
			mk(1, 0, 1<<30),
			mk(3, 1), // empty access list
		},
	}
}

func TestRoundTrip(t *testing.T) {
	want := sampleTrace()
	data := Encode(want)
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Header, want.Header) {
		t.Errorf("header round-trip: got %+v want %+v", got.Header, want.Header)
	}
	if !reflect.DeepEqual(got.Warmup, want.Warmup) {
		t.Errorf("warmup round-trip mismatch:\n got %+v\nwant %+v", got.Warmup, want.Warmup)
	}
	if !reflect.DeepEqual(got.Chunks, want.Chunks) {
		t.Errorf("chunks round-trip mismatch:\n got %+v\nwant %+v", got.Chunks, want.Chunks)
	}
}

// TestCanonicalEncoding: encoding is order-insensitive in, canonical out —
// the same records in any input order produce byte-identical files.
func TestCanonicalEncoding(t *testing.T) {
	a := sampleTrace()
	b := sampleTrace()
	// Reverse b's record order; Encode must re-sort.
	for i, j := 0, len(b.Chunks)-1; i < j; i, j = i+1, j-1 {
		b.Chunks[i], b.Chunks[j] = b.Chunks[j], b.Chunks[i]
	}
	if !bytes.Equal(Encode(a), Encode(b)) {
		t.Error("record order leaked into the encoding; the format is not canonical")
	}
	// And a decoded trace re-encodes to the same bytes.
	data := Encode(a)
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(Encode(back), data) {
		t.Error("decode∘encode changed the byte sequence")
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := &Trace{Header: Header{App: "x", Source: "synthetic", Threads: 1}}
	back, err := Decode(Encode(tr))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Warmup) != 0 || len(back.Chunks) != 0 {
		t.Errorf("empty trace decoded with %d+%d records", len(back.Warmup), len(back.Chunks))
	}
}

// TestTypedErrors drives every decode failure mode to its typed error.
func TestTypedErrors(t *testing.T) {
	valid := Encode(sampleTrace())

	// crc reseals the trailer after a body mutation, so structural corruption
	// is reachable past the checksum gate.
	crc := func(b []byte) []byte {
		body := append([]byte(nil), b[:len(b)-4]...)
		return append(body, sum32(body)...)
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short", []byte{'S', 'B'}, ErrTruncated},
		{"bad magic", append([]byte("NOPE"), valid[4:]...), ErrMagic},
		{"magic only", valid[:4], ErrTruncated},
		{"truncated body", valid[:len(valid)-10], ErrChecksum},
		{"flipped bit", flip(valid, len(valid)/2), ErrChecksum},
		{"future version", crc(patch(valid, 4, 99)), ErrVersion},
		{"trailing bytes", crc(append(append([]byte(nil), valid[:len(valid)-4]...), 0, 0, 0, 0, 0)), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.data)
			if err == nil {
				t.Fatal("decode succeeded on damaged input")
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("error %v, want %v", err, tc.want)
			}
		})
	}
}

// TestOrderEnforced: a structurally valid trace with out-of-order or
// duplicate (proc, seq) records is rejected as corrupt, so every trace has
// exactly one accepted representation.
func TestOrderEnforced(t *testing.T) {
	for name, recs := range map[string][]Rec{
		"out of order": {{Proc: 1, Seq: 0}, {Proc: 0, Seq: 0}},
		"dup key":      {{Proc: 0, Seq: 1}, {Proc: 0, Seq: 1}},
		"seq backward": {{Proc: 0, Seq: 2}, {Proc: 0, Seq: 1}},
	} {
		t.Run(name, func(t *testing.T) {
			// Encode re-sorts defensively, so the malformed section has to be
			// rendered by hand (encodeUnsorted) to reach the decoder's check.
			data := encodeUnsorted(&Trace{Header: Header{Threads: 2}}, recs)
			if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
				t.Errorf("error %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestSectionStats(t *testing.T) {
	tr := sampleTrace()
	st := SectionStats(tr.Chunks)
	if st.Records != 4 {
		t.Errorf("Records = %d, want 4", st.Records)
	}
	wantAcc := 0
	wantW := 0
	for _, r := range tr.Chunks {
		wantAcc += len(r.Accesses)
		for _, a := range r.Accesses {
			if a.Write {
				wantW++
			}
		}
	}
	if st.Accesses != wantAcc || st.Writes != wantW {
		t.Errorf("Accesses/Writes = %d/%d, want %d/%d", st.Accesses, st.Writes, wantAcc, wantW)
	}
}

func TestRecChunk(t *testing.T) {
	r := &Rec{Proc: 2, Seq: 5, Instr: 1234, Accesses: []chunk.Access{{Line: 9, Write: true}}}
	tag := msg.CTag{Proc: 2, Seq: 5}
	ck := r.Chunk(tag)
	if ck.Tag != tag || ck.Instr != 1234 || len(ck.Accesses) != 1 {
		t.Errorf("materialized chunk %+v does not match record", ck)
	}
	// Repeated materializations share the access backing but are distinct
	// structs (the processor mutates derived fields per execution).
	if r.Chunk(tag) == ck {
		t.Error("Chunk returned the same *chunk.Chunk twice; replays would share mutable state")
	}
}

func TestReadWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sbwt")
	want := sampleTrace()
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("file round-trip mismatch")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.sbwt")); err == nil {
		t.Error("ReadFile succeeded on a missing path")
	}
}

// --- test helpers ---

func flip(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 0x10
	return c
}

func patch(b []byte, i int, v byte) []byte {
	c := append([]byte(nil), b...)
	c[i] = v
	return c
}

// sum32 renders the CRC-32 IEEE of body as the little-endian trailer.
func sum32(body []byte) []byte {
	s := crc32.ChecksumIEEE(body)
	return []byte{byte(s), byte(s >> 8), byte(s >> 16), byte(s >> 24)}
}

// encodeUnsorted renders a trace whose chunk section keeps recs exactly as
// given (no canonical sort), resealing the checksum — the only way to reach
// the decoder's order check from a test.
func encodeUnsorted(t *Trace, recs []Rec) []byte {
	e := &enc{b: make([]byte, 0, 256)}
	e.b = append(e.b, magic[:]...)
	e.uvarint(Version)
	h := &t.Header
	e.str(h.App)
	e.str(h.Source)
	e.str(h.Protocol)
	e.str(h.Fingerprint)
	e.uvarint(uint64(h.Threads))
	e.uvarint(uint64(h.PagesPerThread))
	e.varint(h.Seed)
	e.uvarint(uint64(h.ChunksPerCore))
	e.uvarint(uint64(h.WarmupPerCore))
	e.section(nil) // empty warmup
	e.section(recs)
	return append(e.b, sum32(e.b)...)
}
