package tracefmt

import (
	"bytes"
	"testing"
)

// FuzzTraceDecode pins the decoder's two safety contracts: arbitrary bytes
// never panic (every failure is a typed error), and any input that decodes
// re-encodes to the identical byte sequence (decode∘encode identity — the
// canonical-format property record/replay relies on). The seed corpus under
// testdata/fuzz covers the valid encodings; CI's fuzz-smoke step runs this a
// few seconds per push, and `go test -fuzz=FuzzTraceDecode ./internal/tracefmt`
// runs it indefinitely.
func FuzzTraceDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("SBWT"))
	f.Add(Encode(&Trace{}))
	f.Add(Encode(sampleTrace()))
	// A resealed structural mutation (valid checksum, corrupt body) steers
	// the fuzzer past the CRC gate.
	bad := Encode(sampleTrace())
	bad = append(bad[:len(bad)-4], 1, 2, 3)
	f.Add(append(bad, sum32(bad)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(data) // must not panic
		if err != nil {
			return
		}
		out := Encode(tr)
		if !bytes.Equal(out, data) {
			t.Errorf("decode∘encode not identity:\n in  %x\n out %x", data, out)
		}
	})
}
