// Package tracefmt defines the compact versioned binary format for recorded
// workload traces: the per-core chunk address streams (reads and writes at
// cache-line granularity, in program order) that a simulation consumed,
// including the cache/page-table warm-up phase, so a recorded run can be
// replayed bit-identically under any commit protocol. The format is
// self-describing (magic + version), canonical (one byte sequence per trace:
// records are strictly ordered and integers minimally encoded), and
// tamper-evident (CRC-32 trailer); truncated or corrupt files are rejected
// with typed errors, mirroring the checkpoint-journal tamper handling of
// DESIGN.md §10. See DESIGN.md §14 for the full layout.
package tracefmt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sort"

	"scalablebulk/internal/chunk"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/sig"
)

// Version is the current trace format version. Decoders reject anything
// newer; the version is bumped only on incompatible layout changes.
const Version = 1

// magic identifies a workload trace file ("ScalableBulk Workload Trace").
var magic = [4]byte{'S', 'B', 'W', 'T'}

// Typed decode failures, matchable with errors.Is.
var (
	// ErrMagic marks a file that is not a workload trace at all.
	ErrMagic = errors.New("tracefmt: not a workload trace (bad magic)")
	// ErrVersion marks a trace written by a newer (or unknown) format version.
	ErrVersion = errors.New("tracefmt: unsupported trace version")
	// ErrTruncated marks a trace cut short mid-structure (e.g. a partial
	// copy or an interrupted write).
	ErrTruncated = errors.New("tracefmt: truncated trace")
	// ErrChecksum marks a structurally complete trace whose CRC-32 trailer
	// does not match its content.
	ErrChecksum = errors.New("tracefmt: checksum mismatch")
	// ErrCorrupt marks a trace whose structure decodes but violates the
	// format's invariants (record order, duplicate keys, count overflow).
	ErrCorrupt = errors.New("tracefmt: corrupt trace")
)

// Header carries the trace's identity and replay-validation parameters.
// App/Source/Seed/Protocol/Fingerprint are provenance: which application
// model and generator produced the stream, under which protocol it was
// recorded, and the SHA-256 of that run's ResultFingerprint (empty when the
// recording tool did not capture one). Threads, PagesPerThread,
// ChunksPerCore and WarmupPerCore are load-bearing: replay validates the
// machine shape against them.
type Header struct {
	App            string
	Source         string // registered workload source that generated the stream
	Protocol       string // protocol of the recording run (informational)
	Fingerprint    string // sha256 hex of the recording run's ResultFingerprint
	Threads        int
	PagesPerThread int
	Seed           int64
	ChunksPerCore  int // measured chunks recorded per core
	WarmupPerCore  int // warm-up chunks recorded per core
}

// Key identifies one recorded chunk within a section: the requesting core
// and its measured-chunk sequence number (or warm-up index).
type Key struct {
	Proc int
	Seq  uint64
}

// Rec is one recorded chunk: the (core, sequence) key and the access stream
// in program order. In the warm-up section Seq is the warm-up index.
type Rec struct {
	Proc     int
	Seq      uint64
	Instr    int
	Accesses []chunk.Access
}

// Trace is one decoded (or under-construction) workload trace. Warmup and
// Chunks are kept sorted by (Proc, Seq); Encode requires that order and
// Decode enforces it, so a trace has exactly one on-disk representation.
type Trace struct {
	Header Header
	Warmup []Rec
	Chunks []Rec
}

// Chunk materializes the recorded chunk under key (proc, seq) with the tag a
// live generator would have produced. The access slice is shared with the
// trace (accesses are read-only after generation), so repeated replays of a
// squashed chunk cost one struct allocation.
func (r *Rec) Chunk(tag msg.CTag) *chunk.Chunk {
	return &chunk.Chunk{Tag: tag, Instr: r.Instr, Accesses: r.Accesses}
}

// SortRecs puts recs into the canonical (Proc, Seq) order.
func SortRecs(recs []Rec) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Proc != recs[j].Proc {
			return recs[i].Proc < recs[j].Proc
		}
		return recs[i].Seq < recs[j].Seq
	})
}

// zigzag maps signed deltas to unsigned varint-friendly values.
func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// enc is the canonical encoder: minimal varints appended to one buffer.
type enc struct{ b []byte }

func (e *enc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) varint(v int64)   { e.uvarint(zigzag(v)) }
func (e *enc) str(s string)     { e.uvarint(uint64(len(s))); e.b = append(e.b, s...) }
func (e *enc) section(recs []Rec) {
	e.uvarint(uint64(len(recs)))
	for i := range recs {
		r := &recs[i]
		e.uvarint(uint64(r.Proc))
		e.uvarint(r.Seq)
		e.uvarint(uint64(r.Instr))
		e.uvarint(uint64(len(r.Accesses)))
		prev := int64(0)
		for _, a := range r.Accesses {
			d := zigzag(int64(a.Line) - prev)
			w := uint64(0)
			if a.Write {
				w = 1
			}
			e.uvarint(d<<1 | w)
			prev = int64(a.Line)
		}
	}
}

// Encode renders the trace to its canonical byte sequence. Records must
// already be in (Proc, Seq) order (SortRecs); Encode re-sorts defensively so
// the output is canonical regardless.
func Encode(t *Trace) []byte {
	SortRecs(t.Warmup)
	SortRecs(t.Chunks)
	e := &enc{b: make([]byte, 0, 1024)}
	e.b = append(e.b, magic[:]...)
	e.uvarint(Version)
	h := &t.Header
	e.str(h.App)
	e.str(h.Source)
	e.str(h.Protocol)
	e.str(h.Fingerprint)
	e.uvarint(uint64(h.Threads))
	e.uvarint(uint64(h.PagesPerThread))
	e.varint(h.Seed)
	e.uvarint(uint64(h.ChunksPerCore))
	e.uvarint(uint64(h.WarmupPerCore))
	e.section(t.Warmup)
	e.section(t.Chunks)
	sum := crc32.ChecksumIEEE(e.b)
	e.b = binary.LittleEndian.AppendUint32(e.b, sum)
	return e.b
}

// dec walks the byte slice, distinguishing truncation from corruption.
type dec struct {
	b   []byte
	pos int
}

func (d *dec) remaining() int { return len(d.b) - d.pos }

func (d *dec) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		if n == 0 {
			return 0, ErrTruncated
		}
		return 0, fmt.Errorf("%w: varint overflow at offset %d", ErrCorrupt, d.pos)
	}
	// Reject non-minimal encodings so every trace value has exactly one
	// byte representation (decode∘encode identity).
	if n > 1 && d.b[d.pos+n-1] == 0 {
		return 0, fmt.Errorf("%w: non-minimal varint at offset %d", ErrCorrupt, d.pos)
	}
	d.pos += n
	return v, nil
}

func (d *dec) varint() (int64, error) {
	u, err := d.uvarint()
	return unzigzag(u), err
}

func (d *dec) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(d.remaining()) {
		return "", ErrTruncated
	}
	if n > 1<<20 {
		return "", fmt.Errorf("%w: unreasonable string length %d", ErrCorrupt, n)
	}
	s := string(d.b[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

func (d *dec) intField(name string, limit uint64) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > limit {
		return 0, fmt.Errorf("%w: %s %d exceeds limit %d", ErrCorrupt, name, v, limit)
	}
	return int(v), nil
}

func (d *dec) section(name string) ([]Rec, error) {
	count, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// Every record costs ≥ 4 bytes, so a count claiming more records than
	// remaining bytes is corruption, not a huge allocation.
	if count > uint64(d.remaining()) {
		return nil, fmt.Errorf("%w: %s section claims %d records with %d bytes left",
			ErrCorrupt, name, count, d.remaining())
	}
	recs := make([]Rec, 0, count)
	for i := uint64(0); i < count; i++ {
		var r Rec
		if r.Proc, err = d.intField("proc", 1<<20); err != nil {
			return nil, err
		}
		if r.Seq, err = d.uvarint(); err != nil {
			return nil, err
		}
		if r.Instr, err = d.intField("instr", 1<<30); err != nil {
			return nil, err
		}
		nAcc, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if nAcc > uint64(d.remaining()) {
			return nil, fmt.Errorf("%w: record claims %d accesses with %d bytes left",
				ErrCorrupt, nAcc, d.remaining())
		}
		if nAcc > 0 {
			// Leave Accesses nil for an access-free record so decode is the
			// exact inverse of what a generator produced (round-trip equality).
			r.Accesses = make([]chunk.Access, 0, nAcc)
		}
		prev := int64(0)
		for j := uint64(0); j < nAcc; j++ {
			v, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			line := prev + unzigzag(v>>1)
			if line < 0 {
				return nil, fmt.Errorf("%w: negative line address", ErrCorrupt)
			}
			r.Accesses = append(r.Accesses, chunk.Access{
				Line: sig.Line(line), Write: v&1 == 1,
			})
			prev = line
		}
		if n := len(recs); n > 0 {
			p := &recs[n-1]
			if r.Proc < p.Proc || (r.Proc == p.Proc && r.Seq <= p.Seq) {
				return nil, fmt.Errorf("%w: %s records out of (proc, seq) order", ErrCorrupt, name)
			}
		}
		recs = append(recs, r)
	}
	return recs, nil
}

// Decode parses one canonical trace, failing with ErrMagic / ErrVersion /
// ErrTruncated / ErrChecksum / ErrCorrupt as appropriate. Arbitrary input
// never panics (FuzzTraceDecode pins this).
func Decode(data []byte) (*Trace, error) {
	if len(data) < len(magic) {
		return nil, ErrTruncated
	}
	if [4]byte(data[:4]) != magic {
		return nil, ErrMagic
	}
	if len(data) < len(magic)+4+1 {
		return nil, ErrTruncated
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, ErrChecksum
	}
	d := &dec{b: body, pos: len(magic)}
	v, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if v != Version {
		return nil, fmt.Errorf("%w: version %d (this build reads %d)", ErrVersion, v, Version)
	}
	t := &Trace{}
	h := &t.Header
	for _, dst := range []*string{&h.App, &h.Source, &h.Protocol, &h.Fingerprint} {
		if *dst, err = d.str(); err != nil {
			return nil, err
		}
	}
	if h.Threads, err = d.intField("threads", 1<<20); err != nil {
		return nil, err
	}
	if h.PagesPerThread, err = d.intField("pagesPerThread", 1<<30); err != nil {
		return nil, err
	}
	if h.Seed, err = d.varint(); err != nil {
		return nil, err
	}
	if h.ChunksPerCore, err = d.intField("chunksPerCore", 1<<30); err != nil {
		return nil, err
	}
	if h.WarmupPerCore, err = d.intField("warmupPerCore", 1<<30); err != nil {
		return nil, err
	}
	if t.Warmup, err = d.section("warmup"); err != nil {
		return nil, err
	}
	if t.Chunks, err = d.section("chunks"); err != nil {
		return nil, err
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, d.remaining())
	}
	return t, nil
}

// WriteFile encodes the trace to path (0644).
func WriteFile(path string, t *Trace) error {
	return os.WriteFile(path, Encode(t), 0o644)
}

// ReadFile reads and decodes the trace at path.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// Stats summarizes one section for inspection tools.
type Stats struct {
	Records  int
	Accesses int
	Writes   int
	Pages    int
}

// SectionStats computes record/access/write/distinct-page counts.
func SectionStats(recs []Rec) Stats {
	var s Stats
	pages := map[uint64]bool{}
	for i := range recs {
		s.Records++
		for _, a := range recs[i].Accesses {
			s.Accesses++
			if a.Write {
				s.Writes++
			}
			pages[uint64(a.Line)>>7] = true
		}
	}
	s.Pages = len(pages)
	return s
}
