package tcc

import (
	"fmt"

	"scalablebulk/internal/dir"
	"scalablebulk/internal/protocol"
)

// Name is the registry key for the Scalable TCC engine.
const Name = "TCC"

func init() {
	protocol.Register(protocol.Descriptor{
		Name:           Name,
		Doc:            "Scalable TCC: global TID order, per-directory probe/mark before write-set push (§2.2)",
		Rank:           1,
		Evaluated:      true,
		DefaultOptions: func() any { return DefaultConfig() },
		New: func(env *dir.Env, opts any) (protocol.Engine, error) {
			cfg, ok := opts.(Config)
			if !ok {
				return nil, fmt.Errorf("%s: options must be tcc.Config, got %T", Name, opts)
			}
			return New(env, cfg), nil
		},
	})
}
