package tcc_test

import (
	"testing"

	"scalablebulk/internal/msg"
	"scalablebulk/internal/system"
	"scalablebulk/internal/workload"
)

func run(t *testing.T, app string, cores, chunks int) *system.Result {
	t.Helper()
	prof, ok := workload.ByName(app)
	if !ok {
		t.Fatalf("unknown app %s", app)
	}
	cfg := system.DefaultConfig(cores, system.ProtoTCC)
	cfg.ChunksPerCore = chunks
	res, err := system.Run(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSkipBroadcast checks §2.1's defining overhead: every commit sends a
// skip to every directory outside its read/write sets, so skip+probe counts
// equal commits × machine size (aborted attempts add skips too).
func TestSkipBroadcast(t *testing.T) {
	res := run(t, "FFT", 16, 6)
	st := res.Traffic
	commits := res.ChunksCommitted
	probes := st.ByKind[msg.TCCProbe]
	skips := st.ByKind[msg.TCCSkip]
	if probes+skips < commits*16 {
		t.Fatalf("probe+skip = %d, want ≥ commits×nodes = %d", probes+skips, commits*16)
	}
	if skips < probes {
		t.Fatalf("skips (%d) should dominate probes (%d) for a low-sharing app", skips, probes)
	}
}

// TestTIDVendorCentralization: every commit makes a TID round trip.
func TestTIDVendorCentralization(t *testing.T) {
	res := run(t, "LU", 16, 6)
	st := res.Traffic
	if st.ByKind[msg.TIDRequest] < res.ChunksCommitted {
		t.Fatalf("tid_request %d < commits %d", st.ByKind[msg.TIDRequest], res.ChunksCommitted)
	}
	if st.ByKind[msg.TIDReply] != st.ByKind[msg.TIDRequest] {
		t.Fatalf("tid replies %d != requests %d", st.ByKind[msg.TIDReply], st.ByKind[msg.TIDRequest])
	}
}

// TestTwoPhaseCommit: the mark phase only starts after every probe is
// acked, so probe acks ≥ commit messages, and one mark travels per written
// line homed at a probed directory.
func TestTwoPhaseCommit(t *testing.T) {
	res := run(t, "Water-S", 16, 6)
	st := res.Traffic
	if st.ByKind[msg.TCCProbeAck] < st.ByKind[msg.TCCCommit] {
		t.Fatalf("probe acks %d < commit-phase messages %d",
			st.ByKind[msg.TCCProbeAck], st.ByKind[msg.TCCCommit])
	}
	if st.ByKind[msg.TCCMark] == 0 {
		t.Fatal("no mark messages")
	}
}

// TestConflictAbortAndRecovery: a conflict-heavy app squashes some commits
// (probes convert to skips) yet every chunk eventually commits.
func TestConflictAbortAndRecovery(t *testing.T) {
	res := run(t, "Canneal", 32, 8)
	if res.ChunksCommitted != 32*8 {
		t.Fatalf("committed %d, want %d", res.ChunksCommitted, 32*8)
	}
	if res.Squashes == 0 {
		t.Log("note: no squashes this run (conflicts are probabilistic)")
	}
	// Per-line invalidations are TCC's conflict mechanism.
	if res.Traffic.ByKind[msg.TCCInval] == 0 {
		t.Fatal("no per-line invalidations")
	}
	if res.Traffic.ByKind[msg.TCCInval] != res.Traffic.ByKind[msg.TCCInvalAck] {
		t.Fatalf("inval %d != acks %d",
			res.Traffic.ByKind[msg.TCCInval], res.Traffic.ByKind[msg.TCCInvalAck])
	}
}

// TestSameDirectorySerialization is §2.1's core claim about TCC: chunks
// using the same directory serialize even with disjoint addresses — visible
// as a nonzero chunk queue on a directory-heavy app.
func TestSameDirectorySerialization(t *testing.T) {
	res := run(t, "Radix", 32, 8)
	if res.Coll.MeanQueueLength() == 0 {
		t.Fatal("Radix under TCC should queue chunks (same-directory serialization)")
	}
}
