// Package tcc implements the Scalable TCC baseline (Table 3: "Scalable TCC
// [6]"). A commit (1) obtains a transaction ID from a centralized vendor,
// (2) sends a probe to every directory in the chunk's read/write sets and a
// skip to every other directory — a broadcast — and (3) once every probed
// directory acknowledged that the TID reached the head of its pipeline,
// sends commit/mark messages (one mark per written cache line); each
// directory applies the writes, invalidates sharers line by line, and
// advances to the next TID.
//
// The two-phase structure (probe-ack-all, then mark) is what makes commits
// atomic: a transaction can be aborted by an earlier transaction's
// invalidation only while it is still waiting for probe acks, before any
// directory applied its writes.
//
// Two chunks that use the same directory serialize even when their
// addresses are disjoint, and the skip/probe broadcast floods the network
// with small commit messages — the two scalability problems the paper
// quantifies in Figures 7/8 and 18/19.
package tcc

import (
	"fmt"
	"sort"

	"scalablebulk/internal/chunk"
	"scalablebulk/internal/dir"
	"scalablebulk/internal/event"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/protocol"
	"scalablebulk/internal/protocol/kernel"
	"scalablebulk/internal/sig"
)

// Config tunes the protocol.
type Config struct {
	// VendorServiceTime is the TID vendor's serialized per-request time.
	VendorServiceTime event.Time
	// CommitDeadline is the stall watchdog: a commit still in phase 1 this
	// many cycles after its request is aborted (probes become skips) and the
	// processor retries. Zero selects DefaultCommitDeadline; WatchdogDisabled
	// turns it off.
	CommitDeadline event.Time
}

// DefaultCommitDeadline and WatchdogDisabled alias the machine-wide values in
// internal/protocol, kept here so existing callers keep compiling.
const (
	DefaultCommitDeadline = protocol.DefaultCommitDeadline
	WatchdogDisabled      = protocol.WatchdogDisabled
)

// DefaultConfig mirrors a fast centralized TID vendor.
func DefaultConfig() Config {
	return Config{VendorServiceTime: 4, CommitDeadline: DefaultCommitDeadline}
}

// entry is one directory's record of a TID: a skip, or a probe.
type entry struct {
	known          bool // probe or skip received
	skip           bool
	tag            msg.CTag
	try            int
	held           bool // probe acked; holding the pipeline head
	committing     bool // phase 2 under way
	marksExpected  int
	marks          []sig.Line
	marksProcessed bool
	invIssued      bool
	// inv counts each per-line invalidation ack once (dup guard).
	inv kernel.AckSet[invalKey]
}

// invalKey identifies one per-line invalidation ack; duplicated deliveries
// of the same ack must not double-count.
type invalKey struct {
	src  int
	line sig.Line
}

// tccMod is one directory module's commit pipeline.
type tccMod struct {
	id      int
	next    uint64 // the TID this module processes next
	entries map[uint64]*entry
}

// job is the committing processor's view of one commit. Ack bookkeeping is
// per-module sets, not counters: under fault injection the network can
// duplicate an ack, and a counter would start phase 2 (or complete the
// commit) before every directory actually responded.
type job struct {
	ck         *chunk.Chunk
	tid        uint64
	probeAcked kernel.AckSet[int]
	doneAcked  kernel.AckSet[int]
	phase2     bool // commit/mark messages sent; past the serialization point
	started    int
	aborted    bool
	marksPer   map[int][]sig.Line
}

// Protocol is the Scalable TCC engine; it implements protocol.Engine.
type Protocol struct {
	env *dir.Env
	cfg Config
	k   *kernel.Kernel

	vendorNode int
	vendorBusy event.Time
	nextTID    uint64

	mods []*tccMod
	jobs map[int]*job
}

var (
	_ protocol.Engine   = (*Protocol)(nil)
	_ protocol.Debugger = (*Protocol)(nil)
)

// New builds a Scalable TCC engine over env.
func New(env *dir.Env, cfg Config) *Protocol {
	if cfg.VendorServiceTime == 0 {
		cfg.VendorServiceTime = 4
	}
	p := &Protocol{
		env: env, cfg: cfg, k: kernel.New(env, cfg.CommitDeadline),
		vendorNode: env.Net.Center(),
		nextTID:    1, jobs: make(map[int]*job),
	}
	for i := 0; i < env.Net.Nodes(); i++ {
		p.mods = append(p.mods, &tccMod{id: i, next: 1, entries: make(map[uint64]*entry)})
	}
	return p
}

// Name implements dir.Protocol.
func (p *Protocol) Name() string { return Name }

// Stats implements protocol.Engine.
func (p *Protocol) Stats() map[string]uint64 {
	return map[string]uint64{"fail_watchdog": p.k.WD.Fired}
}

// VendorNode returns the tile hosting the TID vendor.
func (p *Protocol) VendorNode() int { return p.vendorNode }

// RequestCommit implements dir.Protocol: first obtain a TID from the
// centralized vendor (§2.1).
func (p *Protocol) RequestCommit(proc int, ck *chunk.Chunk) {
	p.k.Started(proc, ck)
	p.jobs[proc] = &job{ck: ck}
	p.env.Net.Send(&msg.Msg{Kind: msg.TIDRequest, Src: proc, Dst: p.vendorNode, Tag: ck.Tag})
	p.armWatchdog(proc, ck)
}

// armWatchdog schedules the kernel stall deadline for one commit attempt. A
// fired watchdog aborts a phase-1 attempt (probes resolve to skips, the
// processor retries with backoff); an attempt already past its serialization
// point cannot be aborted, so the deadline re-arms and keeps watching.
func (p *Protocol) armWatchdog(proc int, ck *chunk.Chunk) {
	try := ck.Retries
	p.k.WD.Arm(proc, false, ck.Tag, try, func() kernel.Disposition {
		j := p.jobs[proc]
		if j == nil || j.ck != ck || ck.Retries != try || j.aborted {
			return kernel.Closed
		}
		if j.phase2 {
			return kernel.Watching
		}
		return kernel.Stalled
	}, func() {
		p.Abort(proc, ck.Tag)
		p.env.Cores[proc].CommitRefused(ck.Tag)
	})
}

// HandleDir implements dir.Protocol.
func (p *Protocol) HandleDir(node int, m *msg.Msg) {
	switch m.Kind {
	case msg.TIDRequest:
		p.onTIDRequest(m)
		return
	}
	mod := p.mods[node]
	if m.TID < mod.next {
		// The TID already resolved at this module (committed or skipped): a
		// delayed duplicate must not resurrect a blank entry below the
		// pipeline head, where it would sit unexamined forever.
		return
	}
	e := p.entryFor(mod, m.TID)
	switch m.Kind {
	case msg.TCCProbe:
		if e.known && !e.skip {
			return // duplicate probe
		}
		e.known = true
		e.tag = m.Tag
		e.try = int(m.Line) // probe reuses Line as the attempt index
	case msg.TCCSkip:
		e.known = true
		e.skip = true
	case msg.TCCCommit:
		if e.committing {
			return // duplicate commit message
		}
		e.committing = true
		e.marksExpected = len(m.WriteLines)
	case msg.TCCMark:
		for _, l := range e.marks {
			if l == m.Line {
				return // duplicate mark: a line is marked exactly once
			}
		}
		e.marks = append(e.marks, m.Line)
	case msg.TCCInvalAck:
		if !e.inv.Ack(invalKey{src: m.Src, line: m.Line}) {
			return // duplicate ack
		}
	default:
		panic(fmt.Sprintf("tcc: unexpected directory message %s", m))
	}
	p.drain(mod)
}

func (p *Protocol) entryFor(mod *tccMod, tid uint64) *entry {
	if e, ok := mod.entries[tid]; ok {
		return e
	}
	e := &entry{}
	mod.entries[tid] = e
	return e
}

// onTIDRequest: the vendor serializes TID allocation (§2.1: "the committing
// processor contacts a centralized agent to obtain a transaction ID").
func (p *Protocol) onTIDRequest(m *msg.Msg) {
	now := p.env.Eng.Now()
	if p.vendorBusy < now {
		p.vendorBusy = now
	}
	p.vendorBusy += p.cfg.VendorServiceTime
	tid := p.nextTID
	p.nextTID++
	p.env.Eng.At(p.vendorBusy, func() {
		p.env.Net.Send(&msg.Msg{Kind: msg.TIDReply, Src: p.vendorNode, Dst: m.Tag.Proc, Tag: m.Tag, TID: tid})
	})
}

// drain advances a module through its TID sequence. The head entry blocks
// everything behind it until fully resolved — the per-directory
// serialization of §2.1.
func (p *Protocol) drain(mod *tccMod) {
	for {
		e, ok := mod.entries[mod.next]
		if !ok || !e.known {
			return
		}
		if e.skip {
			if e.held {
				// A held probe converted to a skip (abort): release the head.
				p.k.HoldEnd(mod.id, e.tag, e.try)
			}
			delete(mod.entries, mod.next)
			mod.next++
			continue
		}
		if !e.held {
			// Probe reached the head: ack it and hold.
			e.held = true
			p.k.HoldBegin(mod.id, e.tag, e.try)
			p.noteStarted(mod, e)
			tid := mod.next
			p.env.Eng.After(p.env.DirLookup, func() {
				p.env.Net.Send(&msg.Msg{
					Kind: msg.TCCProbeAck, Src: mod.id, Dst: e.tag.Proc, Tag: e.tag, TID: tid,
				})
			})
			return
		}
		if !e.committing || len(e.marks) < e.marksExpected {
			return // waiting for the commit/mark phase
		}
		if !e.marksProcessed {
			// Directory-state update is per marked line ("for every cache
			// line in the chunk's write-set, the processor sends a mark
			// message", §2.1) — the module stays busy while it processes
			// them, holding every later TID behind it.
			e.marksProcessed = true
			delay := p.env.DirLookup * event.Time(len(e.marks)+1)
			p.env.Eng.After(delay, func() { p.drain(mod) })
			return
		}
		if e.inv.Outstanding() < 0 {
			panic("tcc: inval ack underflow")
		}
		if !e.invalSent(p, mod) {
			return // invalidations just issued; wait for acks
		}
		if e.inv.Outstanding() > 0 {
			return
		}
		// Phase 2 complete at this module.
		for _, l := range e.marks {
			p.env.State.ApplyCommitWrite(l, e.tag.Proc)
		}
		p.k.HoldEnd(mod.id, e.tag, e.try)
		p.env.Net.Send(&msg.Msg{Kind: msg.TCCAck, Src: mod.id, Dst: e.tag.Proc, Tag: e.tag, TID: mod.next})
		delete(mod.entries, mod.next)
		mod.next++
	}
}

// invalSent issues per-line invalidations exactly once; it reports whether
// they had already been issued.
func (e *entry) invalSent(p *Protocol, mod *tccMod) bool {
	if e.invIssued {
		return true
	}
	e.invIssued = true
	for _, l := range e.marks {
		li := p.env.State.Get(l)
		if li == nil {
			continue
		}
		li.Sharers.ForEach(func(sh int) {
			if sh == e.tag.Proc {
				return
			}
			e.inv.Expect(1)
			p.env.Net.Send(&msg.Msg{Kind: msg.TCCInval, Src: mod.id, Dst: sh, Tag: e.tag, TID: mod.next, Line: l})
		})
	}
	return e.inv.Outstanding() == 0
}

// noteStarted feeds the Figures 14–17 statistics: when the last of a
// chunk's directories holds its TID, its "group" has formed.
func (p *Protocol) noteStarted(mod *tccMod, e *entry) {
	j := p.jobs[e.tag.Proc]
	if j == nil || j.ck.Tag != e.tag || j.ck.Retries != e.try || j.aborted {
		return
	}
	j.started++
	if j.started == len(j.ck.Dirs) {
		p.k.Formed(e.tag.Proc, e.tag.Seq, e.try)
		p.env.Coll.SampleQueue(p.queuedChunks())
	}
}

// HandleProc implements dir.Protocol: processor-side events.
func (p *Protocol) HandleProc(node int, m *msg.Msg) {
	switch m.Kind {
	case msg.TIDReply:
		p.onTIDReply(node, m)
	case msg.TCCProbeAck:
		p.onProbeAck(node, m)
	case msg.TCCInval:
		// A job holding every probe ack is past its serialization point:
		// the invalidating writer's TID is younger (it shares the line's
		// home directory, which only advances past this job's TID once the
		// job retires there), so this chunk's reads stay valid and it must
		// not be squashed — squashing here would retry a chunk whose marks
		// the directories are already applying, committing it twice.
		var immune *msg.CTag
		if j := p.jobs[node]; j != nil && j.phase2 && !j.aborted {
			t := j.ck.Tag
			immune = &t
		}
		squashed := p.env.Cores[node].InvalidateLine(m.Line, m.Tag.Proc, immune)
		p.env.Net.Send(&msg.Msg{Kind: msg.TCCInvalAck, Src: node, Dst: m.Src, Tag: m.Tag, TID: m.TID, Line: m.Line})
		if squashed != nil {
			p.Abort(node, *squashed)
		}
	case msg.TCCAck:
		p.onDoneAck(node, m)
	default:
		panic(fmt.Sprintf("tcc: unexpected processor message %s", m))
	}
}

// onTIDReply: broadcast probes and skips (§2.1).
func (p *Protocol) onTIDReply(proc int, m *msg.Msg) {
	j := p.jobs[proc]
	if j != nil && j.tid == m.TID {
		return // duplicate delivery of the reply already consumed
	}
	if j == nil || j.ck.Tag != m.Tag || j.tid != 0 {
		// No live job for this reply (the attempt completed, aborted, or a
		// duplicated request minted a second TID). The TID was allocated
		// regardless, and every module's pipeline will stall behind it until
		// it resolves: skip it everywhere.
		p.skipEverywhere(proc, m.TID, m.Tag)
		return
	}
	j.tid = m.TID
	if j.aborted {
		// Squashed before the TID arrived: every directory still needs the
		// TID resolved, so skip everywhere.
		p.skipEverywhere(proc, j.tid, j.ck.Tag)
		delete(p.jobs, proc)
		return
	}
	j.marksPer = make(map[int][]sig.Line)
	for _, l := range j.ck.WriteLines {
		if h, ok := p.env.Map.HomeIfMapped(l); ok {
			j.marksPer[h] = append(j.marksPer[h], l)
		}
	}
	inSet := make(map[int]bool, len(j.ck.Dirs))
	for _, d := range j.ck.Dirs {
		inSet[d] = true
		p.env.Net.Send(&msg.Msg{
			Kind: msg.TCCProbe, Src: proc, Dst: d, Tag: j.ck.Tag, TID: j.tid,
			Line: sig.Line(j.ck.Retries),
		})
	}
	// Skip message to every other directory in the machine (§2.1) — the
	// broadcast that floods the network with small commit messages.
	for d := 0; d < p.env.Net.Nodes(); d++ {
		if !inSet[d] {
			p.env.Net.Send(&msg.Msg{Kind: msg.TCCSkip, Src: proc, Dst: d, Tag: j.ck.Tag, TID: j.tid})
		}
	}
	if len(j.ck.Dirs) == 0 {
		p.complete(proc, j)
	}
}

func (p *Protocol) skipEverywhere(proc int, tid uint64, tag msg.CTag) {
	for d := 0; d < p.env.Net.Nodes(); d++ {
		p.env.Net.Send(&msg.Msg{Kind: msg.TCCSkip, Src: proc, Dst: d, Tag: tag, TID: tid})
	}
}

// onProbeAck: once every probed directory holds the TID, start phase 2:
// commit messages plus one mark per written line (§2.1).
func (p *Protocol) onProbeAck(proc int, m *msg.Msg) {
	j := p.jobs[proc]
	if j == nil || j.ck.Tag != m.Tag || j.aborted || j.tid != m.TID || j.phase2 {
		return
	}
	if !j.probeAcked.Ack(m.Src) {
		return // duplicate ack from the same directory
	}
	if j.probeAcked.Count() < len(j.ck.Dirs) {
		return
	}
	j.phase2 = true
	for _, d := range j.ck.Dirs {
		p.env.Net.Send(&msg.Msg{
			Kind: msg.TCCCommit, Src: proc, Dst: d, Tag: j.ck.Tag, TID: j.tid,
			WriteLines: j.marksPer[d],
		})
		for _, l := range j.marksPer[d] {
			p.env.Net.Send(&msg.Msg{Kind: msg.TCCMark, Src: proc, Dst: d, Tag: j.ck.Tag, TID: j.tid, Line: l})
		}
	}
}

func (p *Protocol) onDoneAck(proc int, m *msg.Msg) {
	j := p.jobs[proc]
	if j == nil || j.ck.Tag != m.Tag || j.aborted || j.tid != m.TID {
		return
	}
	if !j.doneAcked.Ack(m.Src) {
		return // duplicate ack from the same directory
	}
	if j.doneAcked.Count() == len(j.ck.Dirs) {
		p.complete(proc, j)
	}
}

func (p *Protocol) complete(proc int, j *job) {
	delete(p.jobs, proc)
	p.k.Done(proc, false, j.ck.Tag, j.ck.Retries)
	p.env.Cores[proc].CommitFinished(j.ck.Tag)
}

// queuedChunks counts chunks holding a TID whose commit has not started at
// every participating directory (the Figures 16/17 metric for TCC).
func (p *Protocol) queuedChunks() int {
	n := 0
	for _, j := range p.jobs {
		if j.tid != 0 && !j.aborted && j.started < len(j.ck.Dirs) {
			n++
		}
	}
	return n
}

// Abort converts a squashed chunk's probes into skips so directories do not
// stall waiting for a commit that will never happen. Aborts only occur in
// phase 1 (before any directory applied writes): a conflicting earlier
// transaction's invalidation always arrives before this chunk's final probe
// ack (same directory, FIFO path), so atomicity holds.
func (p *Protocol) Abort(proc int, tag msg.CTag) {
	j := p.jobs[proc]
	if j == nil || j.ck.Tag != tag || j.aborted {
		return
	}
	if len(j.ck.Dirs) > 0 && j.phase2 {
		// Phase 2 under way: every directory holds this TID at its head,
		// so the commit is past its serialization point. (This cannot be
		// reached by a conflicting earlier transaction — its invalidation
		// always precedes the final probe ack on the same FIFO path — but
		// guards the model against exotic timing.)
		return
	}
	j.aborted = true
	if j.tid == 0 {
		return // TID not assigned yet: skipEverywhere runs at TIDReply
	}
	// Convert this chunk's probes to skips at its own directories; other
	// directories already received skips.
	for _, d := range j.ck.Dirs {
		p.env.Net.Send(&msg.Msg{Kind: msg.TCCSkip, Src: proc, Dst: d, Tag: tag, TID: j.tid})
	}
	delete(p.jobs, proc)
}

// DebugModule renders one directory module's pipeline state for deadlock
// diagnostics.
func (p *Protocol) DebugModule(i int) string {
	mod := p.mods[i]
	if len(mod.entries) == 0 {
		return ""
	}
	tids := make([]uint64, 0, len(mod.entries))
	for tid := range mod.entries {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(a, b int) bool { return tids[a] < tids[b] })
	s := fmt.Sprintf("D%d next=%d:", mod.id, mod.next)
	for _, tid := range tids {
		e := mod.entries[tid]
		s += fmt.Sprintf(" [tid=%d known=%v skip=%v tag=%s held=%v committing=%v marks=%d/%d pendingInv=%d]",
			tid, e.known, e.skip, e.tag, e.held, e.committing, len(e.marks), e.marksExpected, e.inv.Outstanding())
	}
	return s
}

// ReadBlocked implements dir.Protocol: a module applying a commit blocks
// reads to the lines being written.
func (p *Protocol) ReadBlocked(node int, l sig.Line) bool {
	mod := p.mods[node]
	e, ok := mod.entries[mod.next]
	if !ok || !e.held || e.skip {
		return false
	}
	for _, ml := range e.marks {
		if ml == l {
			return true
		}
	}
	return false
}

// PendingAttempts implements protocol.AttemptEnumerator: live commit jobs
// plus directory pipeline entries not yet retired.
func (p *Protocol) PendingAttempts() int {
	n := len(p.jobs)
	for _, m := range p.mods {
		n += len(m.entries)
	}
	return n
}
