// Package core implements the ScalableBulk protocol — the paper's primary
// contribution: a directory-based cache-coherence protocol that commits
// chunks with no centralized structure, communicating only with the relevant
// directory modules, and overlapping the commit of any chunks whose updated
// addresses do not overlap (§2.3, §3).
//
// The engine realizes the three generic primitives of §3:
//
//  1. Preventing access to a set of directory entries: while a chunk's W
//     signature is held at a module, overlapping loads are nacked and
//     overlapping commits collide (§3.1).
//  2. Grouping directory modules: the Group Formation protocol — a g (grab)
//     message traverses the participating modules in priority order starting
//     at the leader and returns to it; incompatible groups are resolved at
//     the lowest common ("Collision") module, which declares as winner the
//     first group for which it saw both the signature pair and the g
//     message (§3.2).
//  3. Optimistic Commit Initiation: a committing processor keeps consuming
//     bulk invalidations; if one squashes the chunk it sent out for commit,
//     the cancellation travels as a commit_recall piggy-backed on the
//     bulk_inv_ack and then on the commit_done, reaching the Collision
//     module (§3.3, §3.4).
//
// Message orderings follow Appendix A, Tables 4 and 5.
package core

import (
	"fmt"

	"scalablebulk/internal/bitset"
	"scalablebulk/internal/chunk"
	"scalablebulk/internal/dir"
	"scalablebulk/internal/event"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/protocol"
	"scalablebulk/internal/protocol/kernel"
	"scalablebulk/internal/sig"
	"scalablebulk/internal/trace"
)

// chunkState is the lifecycle of a CST entry (Figure 6: the h and c bits).
type chunkState int

const (
	// stPending: signatures and/or g received, module not yet admitted.
	stPending chunkState = iota
	// stHeld: h=1 — no conflicts found here, module admitted into the
	// group, g passed onward.
	stHeld
	// stConfirmed: c=1 — the group formed; directory state is updated.
	stConfirmed
)

// cstEntry is one Chunk State Table entry (Figure 6).
type cstEntry struct {
	tag  msg.CTag
	try  int
	rsig sig.Sig
	wsig sig.Sig
	// gvec is the participating modules in group (priority) order; the
	// leader is gvec[0].
	gvec       []int
	writeLines []sig.Line

	state    chunkState
	gotSigs  bool
	expanded bool // sharer computation done (W "expansion", §3.1)
	gotG     bool

	// invalVec accumulates the sharer processors to invalidate: own sharers
	// merged with the vector carried by the incoming g message.
	invalVec bitset.Set

	// Leader-only bookkeeping. acks counts each sharer once, so a duplicated
	// bulk_inv_ack (fault injection) cannot complete the commit early.
	leader  bool
	acks    kernel.AckSet[int]
	recalls []*msg.RecallInfo
}

// module is one directory module's protocol engine state.
type module struct {
	id  int
	cst []*cstEntry
	// reserved is the starving chunk this module is reserved for (§3.2.2).
	reserved *msg.CTag
	// squashes counts observed commit failures per chunk for starvation.
	squashes map[msg.CTag]int
	// failedTry tombstones the latest attempt known to have failed, so
	// late-arriving messages of that attempt are discarded.
	failedTry map[msg.CTag]int
	// lookout holds commit_recalls waiting for the loser's (R,W)+g (§3.4).
	lookout map[msg.CTag]int // tag → try to kill
}

// Config tunes the protocol.
type Config struct {
	// OCI enables Optimistic Commit Initiation (§3.3). Disabling it yields
	// the conservative Figure 4(c) behavior — an ablation knob.
	OCI bool
	// MaxSquashes is the §3.2.2 MAX threshold after which the group's
	// modules reserve themselves for a starving chunk.
	MaxSquashes int
	// RotationInterval, if nonzero, rotates directory-ID priorities every
	// interval for long-term fairness (§3.2.2). Zero keeps the baseline
	// lowest-ID-is-leader policy.
	RotationInterval event.Time
	// CommitDeadline is the group-formation watchdog: an attempt still open
	// this many cycles after its commit_request is failed machine-wide (a
	// synthesized g_failure + commit_failure) so the processor retries with
	// backoff instead of hanging to MaxCycles. Generous enough never to
	// fire on a fault-free run; zero selects DefaultCommitDeadline and
	// WatchdogDisabled turns the watchdog off.
	CommitDeadline event.Time
}

// DefaultCommitDeadline and WatchdogDisabled alias the machine-wide values in
// internal/protocol, kept here so existing callers keep compiling.
const (
	DefaultCommitDeadline = protocol.DefaultCommitDeadline
	WatchdogDisabled      = protocol.WatchdogDisabled
)

// DefaultConfig returns the configuration used in the paper's evaluation.
func DefaultConfig() Config {
	return Config{OCI: true, MaxSquashes: 12, CommitDeadline: DefaultCommitDeadline}
}

// FailStats counts group-formation failures by cause; used by the ablation
// benchmarks and diagnostics.
type FailStats struct {
	Collision uint64 // lost to an incompatible group (§3.2.1)
	Reserved  uint64 // bounced by a starvation reservation (§3.2.2)
	Recalled  uint64 // killed by a commit_recall lookout (§3.4)
	Watchdog  uint64 // group formation stalled past CommitDeadline
}

// Protocol is the ScalableBulk engine. It implements protocol.Engine.
type Protocol struct {
	env  *dir.Env
	cfg  Config
	k    *kernel.Kernel
	mods []*module

	// watch tracks open commit attempts for the formation watchdog: the
	// value is the attempt's ordered gvec, used to synthesize a machine-wide
	// g_failure if the attempt stalls past CommitDeadline.
	watch map[attemptKey][]int

	// Fails tallies group-formation failures by cause.
	Fails FailStats

	// OnHeld and OnReleased, when non-nil, observe CST occupancy
	// transitions (invariant checking). Nil on performance runs.
	OnHeld     func(module int, tag msg.CTag, try int)
	OnReleased func(module int, tag msg.CTag, try int)
}

// attemptKey identifies one commit attempt of one chunk.
type attemptKey struct {
	tag msg.CTag
	try int
}

var (
	_ protocol.Engine       = (*Protocol)(nil)
	_ protocol.Debugger     = (*Protocol)(nil)
	_ protocol.HoldObserver = (*Protocol)(nil)
)

// New builds a ScalableBulk engine over env.
func New(env *dir.Env, cfg Config) *Protocol {
	if cfg.MaxSquashes <= 0 {
		cfg.MaxSquashes = 12
	}
	p := &Protocol{env: env, cfg: cfg, k: kernel.New(env, cfg.CommitDeadline),
		watch: make(map[attemptKey][]int)}
	n := env.Net.Nodes()
	for i := 0; i < n; i++ {
		p.mods = append(p.mods, &module{
			id:        i,
			squashes:  make(map[msg.CTag]int),
			failedTry: make(map[msg.CTag]int),
			lookout:   make(map[msg.CTag]int),
		})
	}
	return p
}

// Name implements dir.Protocol.
func (p *Protocol) Name() string { return Name }

// Stats implements protocol.Engine: group-formation failures by cause.
func (p *Protocol) Stats() map[string]uint64 {
	return map[string]uint64{
		"fail_collision": p.Fails.Collision,
		"fail_reserved":  p.Fails.Reserved,
		"fail_recalled":  p.Fails.Recalled,
		"fail_watchdog":  p.Fails.Watchdog,
	}
}

// SetHoldHooks implements protocol.HoldObserver.
func (p *Protocol) SetHoldHooks(held, released func(module int, tag msg.CTag, try int)) {
	p.OnHeld, p.OnReleased = held, released
}

// rank returns a module's current priority rank (lower = higher priority).
// With rotation disabled this is the module ID (baseline policy, §3.2.1).
func (p *Protocol) rank(d int) int {
	if p.cfg.RotationInterval == 0 {
		return d
	}
	n := p.env.Net.Nodes()
	epoch := int(p.env.Eng.Now()/p.cfg.RotationInterval) % n
	return (d - epoch + n) % n
}

// orderGVec sorts the participating modules by current priority; the first
// element is the leader.
func (p *Protocol) orderGVec(dirs []int) []int {
	out := append([]int(nil), dirs...)
	// Insertion sort by rank: gvecs are tiny (2–6 entries typically).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && p.rank(out[j]) < p.rank(out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// RequestCommit implements dir.Protocol: the committing processor sends the
// (R,W) signature pair and the g_vec to every participating directory
// module (Figure 3(a)).
func (p *Protocol) RequestCommit(proc int, ck *chunk.Chunk) {
	try := ck.Retries
	p.k.Started(proc, ck)

	if len(ck.Dirs) == 0 {
		// A chunk with no memory footprint commits trivially.
		p.env.Eng.After(1, func() {
			p.env.Net.Send(&msg.Msg{Kind: msg.CommitSuccess, Src: proc, Dst: proc, Tag: ck.Tag})
		})
		p.k.Formed(proc, ck.Tag.Seq, try)
		return
	}

	gvec := p.orderGVec(ck.Dirs)
	p.armWatchdog(ck.Tag, try, gvec)
	for _, d := range gvec {
		p.env.Net.Send(&msg.Msg{
			Kind: msg.CommitRequest, Src: proc, Dst: d, Tag: ck.Tag,
			RSig: ck.RSig, WSig: ck.WSig, GVec: gvec,
			WriteLines: ck.WriteLines, TID: uint64(try),
		})
	}
}

// armWatchdog registers an attempt with the kernel's commit-stall watchdog.
// If the attempt is still open (no commit_success or commit_failure sent)
// when the deadline passes, the watchdog fails it machine-wide: a g_failure
// multicast unwinds whatever partial group exists and a commit_failure makes
// the processor retry with backoff — a faulted run degrades into a retry
// instead of hanging until MaxCycles.
func (p *Protocol) armWatchdog(tag msg.CTag, try int, gvec []int) {
	if !p.k.WD.Enabled() {
		return
	}
	k := attemptKey{tag, try}
	p.watch[k] = gvec
	p.k.WD.Arm(gvec[0], true, tag, try, func() kernel.Disposition {
		if _, open := p.watch[k]; !open {
			return kernel.Closed
		}
		delete(p.watch, k)
		return kernel.Stalled
	}, func() {
		p.Fails.Watchdog++
		// Synthesized failure from the leader: every module unwinds the
		// attempt (no-op where it never arrived), and the processor is told
		// directly in case the leader module never saw the attempt at all.
		for _, d := range gvec {
			p.env.Net.Send(&msg.Msg{Kind: msg.GFailure, Src: gvec[0], Dst: d, Tag: tag, TID: uint64(try)})
		}
		p.sendCommitFailure(gvec[0], tag, try)
	})
}

// closeWatchdog marks an attempt decided (success or failure notified).
func (p *Protocol) closeWatchdog(tag msg.CTag, try int) {
	delete(p.watch, attemptKey{tag, try})
}

// HandleProc implements dir.Protocol. ScalableBulk has no processor-side
// messages beyond the generic ones the core consumes.
func (p *Protocol) HandleProc(node int, m *msg.Msg) {
	panic(fmt.Sprintf("core: unexpected processor message %s", m))
}

// ReadBlocked implements dir.Protocol (§3.1): loads that hit any currently
// held W signature at the module are nacked.
func (p *Protocol) ReadBlocked(node int, l sig.Line) bool {
	for _, e := range p.mods[node].cst {
		if e.gotSigs && e.wsig.Member(l) {
			return true
		}
	}
	return false
}

// HandleDir implements dir.Protocol: the directory-side state machine.
func (p *Protocol) HandleDir(node int, m *msg.Msg) {
	mod := p.mods[node]
	switch m.Kind {
	case msg.CommitRequest:
		p.onCommitRequest(mod, m)
	case msg.Grab:
		p.onGrab(mod, m)
	case msg.GSuccess:
		p.onGSuccess(mod, m)
	case msg.GFailure:
		p.onGFailure(mod, m)
	case msg.BulkInvAck:
		p.onBulkInvAck(mod, m)
	case msg.CommitDone:
		p.onCommitDone(mod, m)
	default:
		panic(fmt.Sprintf("core: unexpected directory message %s", m))
	}
}

func (mod *module) find(tag msg.CTag) *cstEntry {
	for _, e := range mod.cst {
		if e.tag == tag {
			return e
		}
	}
	return nil
}

func (mod *module) remove(tag msg.CTag) {
	for i, e := range mod.cst {
		if e.tag == tag {
			mod.cst = append(mod.cst[:i], mod.cst[i+1:]...)
			return
		}
	}
}

func (mod *module) getOrCreate(tag msg.CTag) *cstEntry {
	if e := mod.find(tag); e != nil {
		return e
	}
	e := &cstEntry{tag: tag}
	mod.cst = append(mod.cst, e)
	return e
}

// incompatible implements the §3.2.1 group-compatibility test: two groups
// are incompatible if their W signatures overlap or if the R signature of
// one overlaps the W signature of the other.
func incompatible(a, b *cstEntry) bool {
	return a.wsig.Overlaps(&b.wsig) || a.wsig.Overlaps(&b.rsig) || a.rsig.Overlaps(&b.wsig)
}

// entryFor resolves the CST entry for an attempt, handling attempt
// staleness: messages of an older attempt than the entry's are dropped
// (nil), and an entry left over from an older, failed attempt is replaced —
// the processor only ever starts attempt N+1 after attempt N failed, so a
// lower-try entry is provably stale even if this module missed the
// g_failure (possible under message races); this keeps half-formed groups
// from wedging the module.
func (p *Protocol) entryFor(mod *module, tag msg.CTag, try int) *cstEntry {
	e := mod.find(tag)
	if e == nil {
		e = mod.getOrCreate(tag)
		e.try = try
		return e
	}
	if try < e.try {
		return nil // stale message of an older attempt
	}
	if try > e.try {
		p.env.Trace.Emit(trace.Event{
			Kind: trace.KStaleClear, Node: mod.id, Dir: true,
			Tag: tag, Try: e.try, Cause: trace.CauseStale,
		})
		if e.gotSigs {
			p.multicastFailure(mod, tag, e.try, e.gvec)
		}
		p.deallocate(mod, e, e.state == stConfirmed)
		e = mod.getOrCreate(tag)
		e.try = try
	}
	return e
}

// multicastFailure broadcasts g_failure for a dead attempt to its group so
// every module holding it unwinds; the no-starve flag is set (Line == 0).
func (p *Protocol) multicastFailure(mod *module, tag msg.CTag, try int, gvec []int) {
	for _, d := range gvec {
		if d == mod.id {
			continue
		}
		p.env.Net.Send(&msg.Msg{Kind: msg.GFailure, Src: mod.id, Dst: d, Tag: tag, TID: uint64(try)})
	}
}

func (p *Protocol) onCommitRequest(mod *module, m *msg.Msg) {
	try := int(m.TID)
	if ft, ok := mod.failedTry[m.Tag]; ok && try <= ft {
		// This attempt already failed (a g_failure beat the request here).
		// Tell the processor: normally its leader does (Table 4,
		// "R:commit_request & R:g_failure (from leader)"), but under
		// message races the leader can miss the failure, and a silent drop
		// would strand the half-formed group forever. Duplicate failure
		// notifications are discarded by the processor.
		p.sendCommitFailure(mod.id, m.Tag, try)
		return
	}
	e := p.entryFor(mod, m.Tag, try)
	if e == nil || e.gotSigs {
		return // stale or duplicate
	}
	p.env.Trace.Instant(trace.KCommitReq, mod.id, true, m.Tag, try)
	e.rsig, e.wsig = m.RSig, m.WSig
	e.gvec = m.GVec
	e.writeLines = m.WriteLines
	e.gotSigs = true
	e.leader = len(m.GVec) > 0 && m.GVec[0] == mod.id

	// Expand the W signature against the local directory to find sharers.
	// This takes DirLookup cycles but typically completes before the g
	// message arrives, keeping it off the critical path (§3.2.1).
	p.env.Eng.After(p.env.DirLookup, func() {
		if mod.find(m.Tag) != e || e.expanded {
			return // deallocated (failed) meanwhile
		}
		e.expanded = true
		p.env.State.SharersOf(e.writeLines, mod.id, p.env.Map, e.tag.Proc, &e.invalVec)
		p.tryAdvance(mod, e)
	})
}

func (p *Protocol) onGrab(mod *module, m *msg.Msg) {
	if ft, ok := mod.failedTry[m.Tag]; ok && int(m.TID) <= ft {
		// The attempt already failed (or committed) here, but upstream
		// modules hold it: unwind them, otherwise the orphaned chain
		// blocks live chunks forever.
		p.multicastFailure(mod, m.Tag, int(m.TID), m.GVec)
		return
	}
	e := p.entryFor(mod, m.Tag, int(m.TID))
	if e == nil {
		p.multicastFailure(mod, m.Tag, int(m.TID), m.GVec)
		return // stale g of an older attempt
	}
	if e.leader && e.state == stHeld {
		// The g message returned to the leader: the group is formed
		// (Figure 3(c)).
		e.invalVec.Or(m.InvalVec)
		p.confirmGroup(mod, e)
		return
	}
	e.gotG = true
	e.invalVec.Or(m.InvalVec)
	p.tryAdvance(mod, e)
}

// tryAdvance attempts the module's admission decision for a pending entry:
// the module "wins" the entry (sets h, forwards g) if it has everything it
// needs and no incompatible chunk already holds the module.
func (p *Protocol) tryAdvance(mod *module, e *cstEntry) {
	if e.state != stPending || !e.gotSigs || !e.expanded {
		return
	}
	if !e.leader && !e.gotG {
		return
	}

	// Starvation reservation (§3.2.2): a reserved module treats every other
	// chunk as a collision loser.
	if mod.reserved != nil && *mod.reserved != e.tag && !tagOlder(e.tag, *mod.reserved) {
		// A reserved module bounces chunks younger than the starving one.
		// Two deviations from a literal reading of §3.2.2, both needed for
		// liveness: bounces do not feed the victims' own starvation
		// counters (otherwise reservations breed reservations and the
		// machine convoys), and chunks older than the reservation holder
		// pass through (otherwise modules reserved for different chunks of
		// overlapping groups deadlock each other) — the globally oldest
		// chunk passes every reservation and is guaranteed progress.
		p.Fails.Reserved++
		p.env.Trace.Emit(trace.Event{
			Kind: trace.KReserved, Node: mod.id, Dir: true, Tag: e.tag, Try: e.try,
			Other: *mod.reserved, HasOther: true,
		})
		p.failGroup(mod, e, false, trace.CauseReserved)
		return
	}
	// A commit_recall on the lookout kills this attempt (§3.4).
	if try, ok := mod.lookout[e.tag]; ok {
		if e.try <= try {
			delete(mod.lookout, e.tag)
			p.Fails.Recalled++
			p.failGroup(mod, e, false, trace.CauseRecalled)
			return
		}
		delete(mod.lookout, e.tag) // stale lookout for an older attempt
	}
	// Collision detection: an incompatible group that already holds this
	// module wins; this entry loses (§3.2.1).
	for _, o := range mod.cst {
		if o != e && o.state != stPending && incompatible(e, o) {
			p.env.Trace.Emit(trace.Event{
				Kind: trace.KCollision, Node: mod.id, Dir: true, Tag: e.tag, Try: e.try,
				Other: o.tag, HasOther: true,
			})
			p.Fails.Collision++
			p.failGroup(mod, e, true, trace.CauseCollision)
			return
		}
	}

	// Win: h ← 1, push g onward, irrevocably choosing this group here.
	e.state = stHeld
	p.k.HoldBegin(mod.id, e.tag, e.try)
	if p.OnHeld != nil {
		p.OnHeld(mod.id, e.tag, e.try)
	}
	if e.leader && len(e.gvec) == 1 {
		p.confirmGroup(mod, e)
		return
	}
	next := p.successor(e, mod.id)
	p.env.Net.Send(&msg.Msg{
		Kind: msg.Grab, Src: mod.id, Dst: next, Tag: e.tag,
		InvalVec: e.invalVec.Clone(), TID: uint64(e.try), GVec: e.gvec,
	})
}

// successor returns the next module after d in the group's traversal order,
// wrapping from the last module back to the leader.
func (p *Protocol) successor(e *cstEntry, d int) int {
	for i, g := range e.gvec {
		if g == d {
			if i+1 < len(e.gvec) {
				return e.gvec[i+1]
			}
			return e.gvec[0] // back to the leader
		}
	}
	panic(fmt.Sprintf("core: module %d not in gvec %v", d, e.gvec))
}

// confirmGroup runs at the leader when the g message returns: the group is
// formed (Figure 3(c)/(d)).
func (p *Protocol) confirmGroup(mod *module, e *cstEntry) {
	e.state = stConfirmed
	p.closeWatchdog(e.tag, e.try)
	p.env.Trace.Instant(trace.KGroupFormed, mod.id, true, e.tag, e.try)
	p.k.Formed(e.tag.Proc, e.tag.Seq, e.try)

	// g_success to all members (Figure 3(c)).
	for _, d := range e.gvec[1:] {
		p.env.Net.Send(&msg.Msg{Kind: msg.GSuccess, Src: mod.id, Dst: d, Tag: e.tag})
	}
	// commit_success to the committing processor, W to the sharers
	// (Figure 3(d)).
	p.env.Net.Send(&msg.Msg{Kind: msg.CommitSuccess, Src: mod.id, Dst: e.tag.Proc, Tag: e.tag})
	p.applyWrites(mod.id, e)

	targets := e.invalVec.Members()
	e.acks.Expect(len(targets))
	for _, t := range targets {
		p.env.Net.Send(&msg.Msg{
			Kind: msg.BulkInv, Src: mod.id, Dst: t, Tag: e.tag,
			WSig: e.wsig, WriteLines: e.writeLines,
		})
	}
	if e.acks.Done() {
		p.finishCommit(mod, e)
	}
}

// applyWrites updates this module's directory entries for the committed
// chunk's written lines homed here.
func (p *Protocol) applyWrites(node int, e *cstEntry) {
	for _, l := range e.writeLines {
		if h, ok := p.env.Map.HomeIfMapped(l); ok && h == node {
			p.env.State.ApplyCommitWrite(l, e.tag.Proc)
		}
	}
}

func (p *Protocol) onGSuccess(mod *module, m *msg.Msg) {
	e := mod.find(m.Tag)
	if e == nil || e.state == stConfirmed {
		return // unknown, or a duplicate delivery (writes already applied)
	}
	e.state = stConfirmed
	p.applyWrites(mod.id, e)
}

// onBulkInvAck runs at the leader; acks may piggy-back commit_recalls.
// The AckSet counts each sharer once: under fault injection the network may
// duplicate an ack, and a double-count would fire finishCommit before every
// sharer actually invalidated.
func (p *Protocol) onBulkInvAck(mod *module, m *msg.Msg) {
	e := mod.find(m.Tag)
	if e == nil || !e.leader {
		return
	}
	if !e.acks.Ack(m.Src) {
		return // duplicate delivery, recall already captured
	}
	if m.Recall != nil {
		e.recalls = append(e.recalls, m.Recall)
	}
	if e.acks.Done() {
		p.finishCommit(mod, e)
	}
}

// finishCommit runs at the leader once every sharer acked: commit_done is
// multicast (carrying any commit_recalls), the group breaks down, and the
// signatures are deallocated (Figure 3(e)).
func (p *Protocol) finishCommit(mod *module, e *cstEntry) {
	p.k.Done(mod.id, true, e.tag, e.try)
	for _, d := range e.gvec[1:] {
		p.env.Net.Send(&msg.Msg{Kind: msg.CommitDone, Src: mod.id, Dst: d, Tag: e.tag,
			Recall: firstRecall(e.recalls)})
	}
	// Extra recalls (rare: several sharers squashed concurrently) ride in
	// separate commit_done messages, as piggy-backing implies one each.
	for _, r := range e.recalls[min(1, len(e.recalls)):] {
		for _, d := range e.gvec[1:] {
			p.env.Net.Send(&msg.Msg{Kind: msg.CommitDone, Src: mod.id, Dst: d, Tag: e.tag, Recall: r})
		}
	}
	for _, r := range e.recalls {
		p.handleRecall(mod, e, r)
	}
	p.deallocate(mod, e, true)
}

func firstRecall(rs []*msg.RecallInfo) *msg.RecallInfo {
	if len(rs) == 0 {
		return nil
	}
	return rs[0]
}

func (p *Protocol) onCommitDone(mod *module, m *msg.Msg) {
	e := mod.find(m.Tag)
	if m.Recall != nil {
		if e != nil {
			p.handleRecall(mod, e, m.Recall)
		}
	}
	if e == nil {
		return
	}
	p.deallocate(mod, e, true)
}

// handleRecall implements §3.4: the recall acts only at the Collision
// module — the first module, in the winner group's traversal order, common
// to both groups.
func (p *Protocol) handleRecall(mod *module, winner *cstEntry, r *msg.RecallInfo) {
	common := -1
	inLoser := make(map[int]bool, len(r.GVec))
	for _, d := range r.GVec {
		inLoser[d] = true
	}
	for _, d := range winner.gvec {
		if inLoser[d] {
			common = d
			break
		}
	}
	if common != mod.id {
		return // not the Collision module: no action
	}
	try := int(r.Try)
	if ft, ok := mod.failedTry[r.Tag]; ok && try <= ft {
		return // already sent g_failure for that attempt: discard (§3.4)
	}
	if loser := mod.find(r.Tag); loser != nil && loser.try == try {
		// Already has (R,W) and/or g for the loser.
		if loser.state == stPending {
			p.Fails.Recalled++
			p.failGroup(mod, loser, false, trace.CauseRecalled)
		}
		// If the loser somehow advanced here it will be killed by the
		// processor discarding commit_success; cannot happen in practice
		// because this module held the winner until now.
		return
	}
	// Be on the lookout for the loser's (R,W)+g (§3.4).
	p.env.Trace.Instant(trace.KRecall, mod.id, true, r.Tag, try)
	mod.lookout[r.Tag] = try
}

// failGroup runs at the module that detects a collision (or enforces a
// reservation/recall): it multicasts g_failure to the losing group and, if
// it is itself the loser's leader, notifies the processor (Tables 4/5).
func (p *Protocol) failGroup(mod *module, e *cstEntry, countSquash bool, cause trace.Cause) {
	p.env.Trace.Emit(trace.Event{
		Kind: trace.KGroupFail, Node: mod.id, Dir: true,
		Tag: e.tag, Try: e.try, Cause: cause,
	})
	var aux uint64
	if countSquash {
		aux = 1
	}
	for _, d := range e.gvec {
		if d == mod.id {
			continue
		}
		p.env.Net.Send(&msg.Msg{Kind: msg.GFailure, Src: mod.id, Dst: d, Tag: e.tag,
			TID: uint64(e.try), Line: sig.Line(aux)})
	}
	if e.leader {
		p.sendCommitFailure(mod.id, e.tag, e.try)
	}
	p.noteFailure(mod, e.tag, e.try, countSquash)
	p.deallocate(mod, e, false)
}

func (p *Protocol) sendCommitFailure(node int, tag msg.CTag, try int) {
	// The attempt index rides along so the processor can discard stale
	// failure notifications (several modules may report the same failed
	// attempt): without it, each stale copy would cancel a fresh attempt
	// and the retries would multiply exponentially.
	p.closeWatchdog(tag, try)
	p.env.Net.Send(&msg.Msg{Kind: msg.CommitFailure, Src: node, Dst: tag.Proc, Tag: tag, TID: uint64(try)})
}

// onGFailure: a member of a failing group tears the entry down; the loser's
// leader notifies the committing processor (Table 5).
func (p *Protocol) onGFailure(mod *module, m *msg.Msg) {
	e := mod.find(m.Tag)
	if e != nil && e.state == stConfirmed && e.try == int(m.TID) {
		// The group already formed here — a legitimate g_failure for this
		// attempt is impossible (only pending entries lose), so this is a
		// watchdog firing after a slow-but-successful formation, or a stale
		// duplicate. Tear down as a success: marking it failed would leave
		// the chunk's starvation reservation and squash history in place
		// forever, wedging the module.
		p.deallocate(mod, e, true)
		return
	}
	p.noteFailure(mod, m.Tag, int(m.TID), m.Line != 0)
	if e == nil || e.try > int(m.TID) {
		// No entry, or the entry belongs to a newer attempt: a delayed
		// duplicate failure of an older try must not tear down a newer
		// attempt's (possibly confirmed) entry. An entry with e.try below
		// the failed try is provably stale and falls through to teardown.
		return
	}
	if e.leader {
		p.sendCommitFailure(mod.id, e.tag, int(m.TID))
	}
	p.deallocate(mod, e, false)
}

// tagOlder imposes a global total order on chunks (lower sequence number
// first, processor ID as tie-break). It decides which starving chunk a
// module reserves itself for when several starve at once: without a global
// order, modules reserved for different chunks of overlapping groups
// deadlock each other — a failure mode §3.2.2 does not discuss but that
// arises immediately under heavy contention.
func tagOlder(a, b msg.CTag) bool {
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	return a.Proc < b.Proc
}

// noteFailure counts a chunk's commit failure and, past MAX, reserves the
// module for that chunk (§3.2.2). If the module is already reserved for a
// younger starving chunk, the reservation switches to the older one; the
// globally oldest starving chunk therefore eventually holds reservations at
// every module of its group and commits, guaranteeing forward progress.
func (p *Protocol) noteFailure(mod *module, tag msg.CTag, try int, countSquash bool) {
	if ft, ok := mod.failedTry[tag]; !ok || try > ft {
		mod.failedTry[tag] = try
	}
	if !countSquash {
		return
	}
	mod.squashes[tag]++
	if mod.squashes[tag] >= p.cfg.MaxSquashes &&
		(mod.reserved == nil || tagOlder(tag, *mod.reserved)) {
		t := tag
		mod.reserved = &t
		p.env.Trace.Instant(trace.KReserved, mod.id, true, tag, try)
	}
}

// DebugModule renders one directory module's CST for deadlock diagnostics.
func (p *Protocol) DebugModule(i int) string {
	mod := p.mods[i]
	if len(mod.cst) == 0 && mod.reserved == nil && len(mod.lookout) == 0 {
		return ""
	}
	s := fmt.Sprintf("D%d reserved=%v lookout=%v:", mod.id, mod.reserved, mod.lookout)
	for _, e := range mod.cst {
		s += fmt.Sprintf(" [%s try=%d st=%d sigs=%v g=%v leader=%v acks=%d gvec=%v]",
			e.tag, e.try, e.state, e.gotSigs, e.gotG, e.leader, e.acks.Outstanding(), e.gvec)
	}
	return s
}

// deallocate removes a CST entry; successful commits clear any reservation
// and failure history for the chunk, and other pending chunks blocked on
// this entry get another chance to advance.
func (p *Protocol) deallocate(mod *module, e *cstEntry, success bool) {
	mod.remove(e.tag)
	if e.state != stPending {
		p.k.HoldEnd(mod.id, e.tag, e.try)
		if p.OnReleased != nil {
			p.OnReleased(mod.id, e.tag, e.try)
		}
	}
	if success {
		delete(mod.squashes, e.tag)
		// A committed chunk never tries again: tombstone every attempt so
		// a contention-delayed message of an old attempt cannot form a
		// ghost group that blocks live chunks.
		mod.failedTry[e.tag] = int(^uint(0) >> 1)
		if mod.reserved != nil && *mod.reserved == e.tag {
			mod.reserved = nil
		}
	}
	// Unblocked entries may now win the module.
	for _, o := range append([]*cstEntry(nil), mod.cst...) {
		if o.state == stPending {
			p.tryAdvance(mod, o)
		}
	}
}

// PendingAttempts implements protocol.AttemptEnumerator: open watchdog-
// tracked attempts plus live CST entries — zero once every commit decided
// and every module tore its entries down.
func (p *Protocol) PendingAttempts() int {
	n := len(p.watch)
	for _, mod := range p.mods {
		n += len(mod.cst)
	}
	return n
}
