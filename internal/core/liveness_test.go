package core

// Regression tests for the three liveness hazards found during the
// reproduction (EXPERIMENTS.md, "Implementation notes"): stale-attempt
// wedging, cross-reservation deadlock, and failure-notification feedback.
// Each drives the module state machine directly with hand-ordered messages,
// reproducing races that arise under network contention.

import (
	"testing"

	"scalablebulk/internal/msg"
	"scalablebulk/internal/sig"
)

// inject delivers a directory-side message bypassing the network (the test
// controls ordering precisely).
func inject(r *rig, node int, m *msg.Msg) {
	m.Dst = node
	r.proto.HandleDir(node, m)
	r.eng.RunFor(5) // let the expansion callback fire
}

func requestMsg(ck *chunkLike, dst int) *msg.Msg {
	return &msg.Msg{
		Kind: msg.CommitRequest, Src: ck.tag.Proc, Dst: dst, Tag: ck.tag,
		RSig: ck.rsig, WSig: ck.wsig, GVec: ck.gvec,
		WriteLines: ck.writes, TID: uint64(ck.try),
	}
}

type chunkLike struct {
	tag        msg.CTag
	try        int
	rsig, wsig sig.Sig
	gvec       []int
	writes     []sig.Line
}

func mkAttempt(proc int, seq uint64, try int, gvec []int, writes ...sig.Line) *chunkLike {
	c := &chunkLike{tag: msg.CTag{Proc: proc, Seq: seq}, try: try, gvec: gvec, writes: writes}
	for _, l := range writes {
		c.wsig.Insert(l)
	}
	return c
}

// TestStaleAttemptReplacedByNewer: an entry left over from a failed attempt
// is replaced when a newer attempt's commit_request arrives, and the stale
// group's members are unwound with g_failure.
func TestStaleAttemptReplacedByNewer(t *testing.T) {
	r := newRig(t, 8, DefaultConfig())
	// Touch pages so writes home sensibly (not strictly needed here).
	old := mkAttempt(3, 5, 0, []int{1, 2}, 777)
	// Module 2 (non-leader) receives the old attempt's sigs; the g never
	// comes (the attempt died elsewhere and module 2 missed the g_failure).
	inject(r, 2, requestMsg(old, 2))
	if e := r.proto.mods[2].find(old.tag); e == nil || e.try != 0 {
		t.Fatal("setup: stale entry missing")
	}
	// The retry arrives.
	newer := mkAttempt(3, 5, 1, []int{1, 2}, 777)
	inject(r, 2, requestMsg(newer, 2))
	e := r.proto.mods[2].find(old.tag)
	if e == nil || e.try != 1 {
		t.Fatalf("stale entry not replaced: %+v", e)
	}
	// The stale attempt's group members got g_failure (unwinding).
	r.eng.Run()
	if r.net.Stats().ByKind[msg.GFailure] == 0 {
		t.Fatal("stale attempt's members not unwound with g_failure")
	}
}

// TestOlderMessagesOfStaleAttemptDropped: once a newer attempt's entry
// exists, a late message of the older attempt is discarded.
func TestOlderMessagesOfStaleAttemptDropped(t *testing.T) {
	r := newRig(t, 8, DefaultConfig())
	newer := mkAttempt(3, 5, 2, []int{2, 4}, 777)
	inject(r, 4, requestMsg(newer, 4))
	before := r.proto.mods[4].find(newer.tag)
	// A contention-delayed g of attempt 0 arrives.
	inject(r, 4, &msg.Msg{Kind: msg.Grab, Src: 2, Tag: newer.tag, TID: 0, GVec: []int{2, 4}})
	after := r.proto.mods[4].find(newer.tag)
	if after != before || after.try != 2 || after.gotG {
		t.Fatalf("stale g corrupted the live entry: %+v", after)
	}
}

// TestTombstonedGrabUnwindsUpstream: a g arriving for a tombstoned (failed)
// attempt must multicast g_failure so upstream holders release — the ghost
// group bug that wedged Radix under contention.
func TestTombstonedGrabUnwindsUpstream(t *testing.T) {
	r := newRig(t, 8, DefaultConfig())
	tag := msg.CTag{Proc: 5, Seq: 7}
	mod := r.proto.mods[4]
	mod.failedTry[tag] = 3 // attempt 3 already failed here
	r.proto.HandleDir(4, &msg.Msg{
		Kind: msg.Grab, Src: 2, Dst: 4, Tag: tag, TID: 3, GVec: []int{1, 2, 4},
	})
	r.eng.Run()
	// Modules 1 and 2 must have been told.
	if got := r.net.Stats().ByKind[msg.GFailure]; got != 2 {
		t.Fatalf("g_failure multicast = %d messages, want 2", got)
	}
}

// TestSuccessTombstonesAttempts: after a chunk commits, a late stale
// commit_request of an old attempt must not form a ghost group.
func TestSuccessTombstonesAttempts(t *testing.T) {
	r := newRig(t, 8, DefaultConfig())
	ck := r.mkChunk(0, 1, nil, []sig.Line{2000})
	r.procs[0].submit(ck)
	r.eng.Run()
	if !r.procs[0].done[1] {
		t.Fatal("setup: chunk did not commit")
	}
	// A contention-delayed duplicate of attempt 0 arrives at module 2.
	stale := mkAttempt(0, 1, 0, []int{2}, 2000)
	inject(r, 2, requestMsg(stale, 2))
	if e := r.proto.mods[2].find(stale.tag); e != nil {
		t.Fatalf("ghost group formed from a stale request after success: %+v", e)
	}
}

// TestReservationAgeRule: a reserved module bounces younger chunks but
// passes older ones — the rule that makes cross-reservations deadlock-free.
func TestReservationAgeRule(t *testing.T) {
	r := newRig(t, 8, DefaultConfig())
	starving := msg.CTag{Proc: 6, Seq: 10}
	mod := r.proto.mods[2]
	mod.reserved = &starving

	older := r.mkChunk(0, 3, nil, []sig.Line{2000}) // seq 3 < 10: older
	r.procs[0].submit(older)
	r.eng.Run()
	if !r.procs[0].done[3] {
		t.Fatal("older chunk bounced by a younger chunk's reservation")
	}

	younger := r.mkChunk(1, 30, nil, []sig.Line{2064}) // seq 30 > 10
	r.procs[1].submit(younger)
	r.eng.RunFor(300)
	if r.procs[1].done[30] {
		t.Fatal("younger chunk passed a reservation")
	}
	if r.proto.Fails.Reserved == 0 {
		t.Fatal("reservation bounce not recorded")
	}
}

// TestReservationSwitchesToOlderStarver: when an older chunk accumulates
// MAX failures, a module reserved for a younger chunk switches to it.
func TestReservationSwitchesToOlderStarver(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSquashes = 2
	r := newRig(t, 8, cfg)
	mod := r.proto.mods[3]
	younger := msg.CTag{Proc: 7, Seq: 20}
	older := msg.CTag{Proc: 2, Seq: 4}
	mod.reserved = &younger
	r.proto.noteFailure(mod, older, 0, true)
	r.proto.noteFailure(mod, older, 1, true)
	if mod.reserved == nil || *mod.reserved != older {
		t.Fatalf("reservation did not switch to the older starver: %v", mod.reserved)
	}
}

// TestStaleCommitFailureDiscarded: failure notices of already-retried
// attempts are ignored by the processor — the feedback loop that caused
// exponential retry storms.
func TestStaleCommitFailureDiscarded(t *testing.T) {
	r := newRig(t, 8, DefaultConfig())
	ck := r.mkChunk(0, 1, nil, []sig.Line{2000})
	ck.Retries = 5
	r.procs[0].submit(ck)
	failuresBefore := r.procs[0].failures
	// A stale failure for attempt 2 arrives.
	r.procs[0].handle(&msg.Msg{Kind: msg.CommitFailure, Src: 2, Dst: 0, Tag: ck.Tag, TID: 2})
	if r.procs[0].failures != failuresBefore {
		t.Fatal("stale commit_failure was not discarded")
	}
	// The current attempt's failure is honored.
	r.procs[0].handle(&msg.Msg{Kind: msg.CommitFailure, Src: 2, Dst: 0, Tag: ck.Tag, TID: 5})
	if r.procs[0].failures != failuresBefore+1 {
		t.Fatal("live commit_failure was discarded")
	}
	r.eng.Run()
}

// TestHighContentionRadixLikeLiveness is the end-to-end regression for the
// whole set of fixes: wide write groups (10+ modules), rapid commits, and
// per-link contention — the exact mix that used to livelock. Every chunk
// must commit and the run must terminate.
func TestHighContentionRadixLikeLiveness(t *testing.T) {
	r := newRig(t, 16, DefaultConfig())
	const perProc = 4
	var submit func(p int, seq uint64)
	submit = func(p int, seq uint64) {
		if seq > perProc {
			return
		}
		var writes []sig.Line
		// Wide scattered write groups like Radix's buckets.
		for d := 0; d < 10; d++ {
			writes = append(writes, sig.Line(((p*7+d*3)%16)*1000+(p*perProc+int(seq))%64))
		}
		ck := r.mkChunk(p, seq, nil, writes)
		r.procs[p].submit(ck)
		var poll func()
		poll = func() {
			if r.procs[p].done[seq] {
				submit(p, seq+1)
				return
			}
			r.eng.After(100, poll)
		}
		r.eng.After(100, poll)
	}
	for p := 0; p < 16; p++ {
		submit(p, 1)
	}
	r.eng.Run()
	for p := 0; p < 16; p++ {
		for seq := uint64(1); seq <= perProc; seq++ {
			if !r.procs[p].done[seq] {
				t.Fatalf("proc %d chunk %d never committed (fails: %+v)", p, seq, r.proto.Fails)
			}
		}
	}
}
