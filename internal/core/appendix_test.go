package core

import (
	"fmt"
	"strings"
	"testing"

	"scalablebulk/internal/event"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/sig"
)

// recorder captures, per directory module, the ordered sequence of protocol
// messages sent (S:) and received (R:) for one chunk tag — the exact
// notation of Appendix A, Tables 4 and 5.
type recorder struct {
	tag  msg.CTag
	seqs map[int][]string // module → events
}

func record(r *rig, tag msg.CTag) *recorder {
	rec := &recorder{tag: tag, seqs: map[int][]string{}}
	isProto := func(k msg.Kind) bool {
		switch k {
		case msg.CommitRequest, msg.Grab, msg.GFailure, msg.GSuccess,
			msg.BulkInvAck, msg.CommitDone:
			return true
		}
		return false
	}
	r.net.OnSend = func(m *msg.Msg) {
		if m.Tag != tag {
			return
		}
		switch m.Kind {
		case msg.Grab, msg.GFailure, msg.GSuccess, msg.CommitDone,
			msg.CommitSuccess, msg.CommitFailure, msg.BulkInv:
			// Directory-originated sends.
			rec.seqs[m.Src] = append(rec.seqs[m.Src], "S:"+m.Kind.String())
		}
	}
	r.net.OnDeliver = func(m *msg.Msg) {
		if m.Tag != tag {
			return
		}
		if m.Kind.SideOf() == msg.SideDir && isProto(m.Kind) {
			rec.seqs[m.Dst] = append(rec.seqs[m.Dst], "R:"+m.Kind.String())
		}
	}
	return rec
}

func (rec *recorder) seq(module int) string {
	return strings.Join(rec.seqs[module], " → ")
}

// matchOrder asserts that the events at a module appear in the given order
// (extra repetitions of the same multicast/ack events may interleave).
func matchOrder(t *testing.T, got []string, want ...string) {
	t.Helper()
	i := 0
	for _, g := range got {
		if i < len(want) && g == want[i] {
			i++
		}
	}
	if i != len(want) {
		t.Fatalf("ordering mismatch:\n got: %s\nwant: %s", strings.Join(got, " → "), strings.Join(want, " → "))
	}
}

// TestAppendixATable4SuccessfulCommit checks the message orderings of a
// successful commit for the leader and a non-leader (Table 4, column 1).
func TestAppendixATable4SuccessfulCommit(t *testing.T) {
	r := newRig(t, 8, DefaultConfig())
	ck := r.mkChunk(6, 1, []sig.Line{1000}, []sig.Line{2000, 5000})
	rec := record(r, ck.Tag)
	r.env.State.AddSharer(2000, 7) // one sharer → bulk_inv/ack traffic
	r.procs[6].submit(ck)
	r.eng.Run()
	if !r.procs[6].done[1] {
		t.Fatal("commit failed")
	}

	leader := ck.Dirs[0] // 1
	// Leader: R:commit_request → S:g → R:g → (S:commit_success &
	// S:g_success & S:bulk_inv, in any order) → R:bulk_inv_ack →
	// S:commit_done.
	for _, mid := range []string{"S:commit_success", "S:g_success", "S:bulk_inv"} {
		matchOrder(t, rec.seqs[leader],
			"R:commit_request", "S:g", "R:g", mid, "R:bulk_inv_ack", "S:commit_done")
	}

	// Non-leaders: (R:commit_request & R:g) → S:g → R:g_success →
	// R:commit_done.
	for _, d := range ck.Dirs[1:] {
		got := rec.seqs[d]
		matchOrder(t, got, "S:g", "R:g_success", "R:commit_done")
		// commit_request must precede this module's own g send.
		idxCR, idxSG := -1, -1
		for i, e := range got {
			if e == "R:commit_request" && idxCR < 0 {
				idxCR = i
			}
			if e == "S:g" && idxSG < 0 {
				idxSG = i
			}
		}
		if idxCR < 0 || idxSG < idxCR {
			t.Fatalf("module %d sent g before having signatures: %s", d, rec.seq(d))
		}
	}
}

// TestAppendixATable5FailedCommit builds a deterministic collision where
// the Collision module is not the loser's leader, and checks every module
// class of Figure 20: leader, before-Collision, Collision, after-Collision.
func TestAppendixATable5FailedCommit(t *testing.T) {
	r := newRig(t, 8, DefaultConfig())
	// Winner: dirs {2,3}; loser: dirs {0,1,2,3}. Collision module = 2 (the
	// first module, in the winner's order, common to both groups). Loser's
	// leader = 0; module 1 is "before", module 3 is "after".
	winner := r.mkChunk(4, 1, nil, []sig.Line{2000, 3000})
	loser := r.mkChunk(5, 1, nil, []sig.Line{0, 1000, 2000, 3064})
	if winner.Dirs[0] != 2 || loser.Dirs[0] != 0 {
		t.Fatalf("setup: winner %v loser %v", winner.Dirs, loser.Dirs)
	}
	rec := record(r, loser.Tag)
	r.procs[4].submit(winner)
	// Let the winner reach and hold module 2 before the loser's g arrives
	// there; the loser still has time to win modules 0 and 1 first.
	r.eng.After(3, func() { r.procs[5].submit(loser) })

	// Stop once the loser's first attempt failed, before the retry muddies
	// the recorded sequences.
	for r.procs[5].failures == 0 && r.eng.Pending() > 0 {
		r.eng.Step()
	}
	if r.procs[5].failures == 0 {
		t.Fatal("loser never failed")
	}

	// Loser's leader (module 0): R:commit_request → S:g → R:g_failure →
	// S:commit_failure.
	matchOrder(t, rec.seqs[0], "R:commit_request", "S:g", "R:g_failure", "S:commit_failure")
	// Before the Collision module (module 1): (R:commit_request & R:g) →
	// S:g → R:g_failure.
	matchOrder(t, rec.seqs[1], "S:g", "R:g_failure")
	// Collision module (module 2): (R:commit_request & R:g) →
	// S:g_failure (multicast).
	matchOrder(t, rec.seqs[2], "R:commit_request", "R:g", "S:g_failure")
	for _, e := range rec.seqs[2] {
		if e == "S:g" {
			t.Fatal("collision module forwarded the loser's g")
		}
	}
	// After the Collision module (module 3): R:commit_request & R:g_failure
	// (in any order), and it must not send g for the loser.
	seen := map[string]bool{}
	for _, e := range rec.seqs[3] {
		seen[e] = true
		if e == "S:g" {
			t.Fatal("module after collision forwarded g")
		}
	}
	if !seen["R:commit_request"] || !seen["R:g_failure"] {
		t.Fatalf("after-collision module events: %s", rec.seq(3))
	}

	// Liveness epilogue: both chunks commit in the end.
	r.eng.Run()
	if !r.procs[4].done[1] || !r.procs[5].done[1] {
		t.Fatal("chunks did not both commit eventually")
	}
}

// TestAppendixATable4FailedLeaderIsCollision: the Collision module is the
// loser's leader — R:commit_request → (S:g_failure & S:commit_failure).
func TestAppendixATable4FailedLeaderIsCollision(t *testing.T) {
	r := newRig(t, 8, DefaultConfig())
	// Winner holds module 1; loser's leader is module 1 too. A remote
	// sharer stretches the winner's commit (bulk_inv / ack round trip) so
	// the loser's request reliably arrives while the winner holds the
	// module.
	winner := r.mkChunk(4, 1, nil, []sig.Line{1000})
	loser := r.mkChunk(5, 1, nil, []sig.Line{1000, 2000})
	r.env.State.AddSharer(1000, 6)
	rec := record(r, loser.Tag)
	r.procs[4].submit(winner)
	// Submit the loser as soon as the winner's CST entry appears.
	var submitted bool
	var step func()
	step = func() {
		if !submitted {
			if e := r.proto.mods[1].find(winner.Tag); e != nil {
				submitted = true
				r.procs[5].submit(loser)
			}
		}
		if r.eng.Pending() > 0 && !r.procs[5].done[1] {
			r.eng.After(1, step)
		}
	}
	r.eng.After(1, step)
	r.eng.Run()
	if !r.procs[5].done[1] {
		t.Fatal("loser never committed")
	}
	if r.procs[5].failures == 0 {
		t.Fatal("no collision happened")
	}
	matchOrder(t, rec.seqs[1], "R:commit_request", "S:g_failure")
	// The leader sent commit_failure to the processor.
	found := false
	for _, e := range rec.seqs[1] {
		if e == "S:commit_failure" {
			found = true
		}
	}
	if !found {
		t.Fatalf("leader-collision module never sent commit_failure: %s", rec.seq(1))
	}
}

// TestDeterminism: two identical runs produce identical event counts, final
// times and traffic — the simulator's reproducibility guarantee.
func TestDeterminism(t *testing.T) {
	run := func() (event.Time, uint64, uint64) {
		r := newRig(t, 8, DefaultConfig())
		for p := 0; p < 8; p++ {
			ck := r.mkChunk(p, 1, []sig.Line{sig.Line(p * 1000)}, []sig.Line{2000 + sig.Line(p)})
			r.env.State.AddSharer(2000+sig.Line(p), (p+1)%8)
			r.procs[p].submit(ck)
		}
		r.eng.Run()
		return r.eng.Now(), r.eng.Fired(), r.net.Stats().Messages
	}
	t1, f1, m1 := run()
	t2, f2, m2 := run()
	if t1 != t2 || f1 != f2 || m1 != m2 {
		t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", t1, f1, m1, t2, f2, m2)
	}
}

func init() {
	// Silence unused-import style drift if fmt becomes unused during edits.
	_ = fmt.Sprintf
}
