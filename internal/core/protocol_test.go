package core

import (
	"fmt"
	"math/rand"
	"testing"

	"scalablebulk/internal/chunk"
	"scalablebulk/internal/dir"
	"scalablebulk/internal/event"
	"scalablebulk/internal/mem"
	"scalablebulk/internal/mesh"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/sig"
	"scalablebulk/internal/stats"
	"scalablebulk/internal/trace"
)

// fakeProc is a minimal committing processor: it submits chunks, retries on
// commit_failure, consumes bulk invalidations (OCI), and squashes with a
// commit_recall when an invalidation hits its in-flight chunk.
type fakeProc struct {
	id   int
	env  *dir.Env
	p    *Protocol
	chk  *chunk.Chunk
	done map[uint64]bool

	squashedInFlight bool
	squashes         int
	lateSuccesses    int // commit_success for an already-squashed chunk
	failures         int

	backoff     event.Time
	reexecDelay event.Time
}

func (f *fakeProc) submit(ck *chunk.Chunk) {
	f.chk = ck
	f.p.RequestCommit(f.id, ck)
}

func (f *fakeProc) handle(m *msg.Msg) {
	switch m.Kind {
	case msg.CommitSuccess:
		if f.chk == nil || m.Tag != f.chk.Tag {
			return
		}
		if f.squashedInFlight {
			// The squash was provably due to signature aliasing (a true
			// conflict shares a home module and would have failed the
			// group), so the commit stands and re-execution is abandoned.
			f.lateSuccesses++
		}
		f.env.Coll.CommitEnded(f.id, m.Tag.Seq, f.chk.Retries, f.env.Eng.Now(), true)
		f.done[m.Tag.Seq] = true
		f.chk = nil
		f.squashedInFlight = false
	case msg.CommitFailure:
		if f.chk == nil || m.Tag != f.chk.Tag || uint64(f.chk.Retries) != m.TID {
			return // stale failure of an older attempt
		}
		f.failures++
		f.env.Coll.CommitEnded(f.id, m.Tag.Seq, f.chk.Retries, f.env.Eng.Now(), false)
		f.chk.Retries++
		delay := f.backoff
		if f.squashedInFlight {
			f.squashedInFlight = false
			delay = f.reexecDelay // squashed: re-execute before retrying
		}
		ck := f.chk
		f.env.Eng.After(delay, func() {
			if f.chk == ck {
				f.p.RequestCommit(f.id, ck)
			}
		})
	case msg.BulkInv:
		var recall *msg.RecallInfo
		if f.chk != nil && !f.squashedInFlight && f.chk.ConflictsWith(&m.WSig) {
			f.squashedInFlight = true
			f.squashes++
			recall = &msg.RecallInfo{Tag: f.chk.Tag, Try: uint64(f.chk.Retries), GVec: f.chk.Dirs}
		}
		f.env.Net.Send(&msg.Msg{Kind: msg.BulkInvAck, Src: f.id, Dst: m.Src, Tag: m.Tag, Recall: recall})
	}
}

// rig is a wired mini-machine: protocol + read path + fake processors.
type rig struct {
	eng    *event.Engine
	net    *mesh.Network
	env    *dir.Env
	proto  *Protocol
	procs  []*fakeProc
	events []trace.Event
}

// rigSink collects the rig's structured trace events for assertions.
type rigSink struct{ r *rig }

func (s rigSink) Event(e trace.Event) { s.r.events = append(s.r.events, e) }
func (s rigSink) Close() error        { return nil }

func newRig(t *testing.T, nodes int, cfg Config) *rig {
	t.Helper()
	eng := event.New()
	net := mesh.New(eng, mesh.Config{Nodes: nodes, LinkLatency: 7})
	env := &dir.Env{
		Eng: eng, Net: net, Map: mem.NewMapper(nodes), State: dir.NewState(),
		Coll: stats.New(), DirLookup: 2, MemLatency: 300,
	}
	r := &rig{eng: eng, net: net, env: env}
	env.Trace = trace.New(eng, rigSink{r})
	env.Coll.Trace = env.Trace
	r.proto = New(env, cfg)
	rp := &dir.ReadPath{Env: env, Proto: r.proto}
	for i := 0; i < nodes; i++ {
		fp := &fakeProc{
			id: i, env: env, p: r.proto, done: map[uint64]bool{},
			backoff: 40 + event.Time(i)*13, reexecDelay: 200,
		}
		r.procs = append(r.procs, fp)
		node := i
		net.Register(node, func(m *msg.Msg) {
			if m.Kind.SideOf() == msg.SideDir {
				if !rp.HandleDir(node, m) {
					r.proto.HandleDir(node, m)
				}
			} else {
				r.procs[node].handle(m)
			}
		})
	}
	return r
}

// mkChunk builds a finalized chunk whose lines are pre-touched so that line
// l is homed at directory int(l)/1000 (pages are 128 lines, so l and l+1000
// are on different pages).
func (r *rig) mkChunk(proc int, seq uint64, reads, writes []sig.Line) *chunk.Chunk {
	ck := &chunk.Chunk{Tag: msg.CTag{Proc: proc, Seq: seq}, Instr: 2000}
	for _, l := range reads {
		r.env.Map.Home(l, int(l)/1000%r.net.Nodes())
		ck.Accesses = append(ck.Accesses, chunk.Access{Line: l})
	}
	for _, l := range writes {
		r.env.Map.Home(l, int(l)/1000%r.net.Nodes())
		ck.Accesses = append(ck.Accesses, chunk.Access{Line: l, Write: true})
	}
	ck.Finalize(func(l sig.Line) int { h, _ := r.env.Map.HomeIfMapped(l); return h })
	return ck
}

// checkNoIncompatibleConfirmed asserts the central §3.1 safety property: a
// module never simultaneously confirms two incompatible chunks.
func (r *rig) checkNoIncompatibleConfirmed(t *testing.T) {
	t.Helper()
	for _, mod := range r.proto.mods {
		for i, a := range mod.cst {
			for _, b := range mod.cst[i+1:] {
				if a.state != stPending && b.state != stPending && incompatible(a, b) {
					t.Fatalf("module %d holds incompatible chunks %s and %s", mod.id, a.tag, b.tag)
				}
			}
		}
	}
}

func TestSingleDirectoryCommit(t *testing.T) {
	r := newRig(t, 8, DefaultConfig())
	ck := r.mkChunk(3, 1, []sig.Line{1000}, []sig.Line{1001})
	if len(ck.Dirs) != 1 || ck.Dirs[0] != 1 {
		t.Fatalf("gvec = %v, want [1]", ck.Dirs)
	}
	r.procs[3].submit(ck)
	r.eng.Run()
	if !r.procs[3].done[1] {
		t.Fatal("chunk did not commit")
	}
	st := r.net.Stats()
	if st.ByKind[msg.Grab] != 0 {
		t.Fatal("single-module group sent g messages")
	}
	if st.ByKind[msg.CommitSuccess] != 1 {
		t.Fatalf("commit_success count = %d", st.ByKind[msg.CommitSuccess])
	}
	// Directory state updated: writer owns the written line dirty.
	li := r.env.State.Get(1001)
	if li == nil || !li.Dirty || li.Owner != 3 {
		t.Fatal("commit did not update directory state")
	}
	if len(r.proto.mods[1].cst) != 0 {
		t.Fatal("CST entry leaked")
	}
}

func TestMultiDirectoryGroupFormation(t *testing.T) {
	r := newRig(t, 8, DefaultConfig())
	// Chunk touches dirs 1, 2, 5 like Figure 3.
	ck := r.mkChunk(0, 1, []sig.Line{1000, 2000}, []sig.Line{5000})
	if len(ck.Dirs) != 3 {
		t.Fatalf("gvec = %v", ck.Dirs)
	}
	// A sharer of the written line that must be invalidated.
	r.env.State.AddSharer(5000, 7)
	r.procs[0].submit(ck)
	r.eng.Run()

	if !r.procs[0].done[1] {
		t.Fatal("chunk did not commit")
	}
	st := r.net.Stats()
	// g traverses 1→2→5→1: three grabs.
	if st.ByKind[msg.Grab] != 3 {
		t.Fatalf("g count = %d, want 3", st.ByKind[msg.Grab])
	}
	if st.ByKind[msg.GSuccess] != 2 {
		t.Fatalf("g_success count = %d, want 2", st.ByKind[msg.GSuccess])
	}
	if st.ByKind[msg.BulkInv] != 1 || st.ByKind[msg.BulkInvAck] != 1 {
		t.Fatalf("bulk inv/ack = %d/%d", st.ByKind[msg.BulkInv], st.ByKind[msg.BulkInvAck])
	}
	if st.ByKind[msg.CommitDone] != 2 {
		t.Fatalf("commit_done count = %d, want 2", st.ByKind[msg.CommitDone])
	}
	// All CSTs drained.
	for _, mod := range r.proto.mods {
		if len(mod.cst) != 0 {
			t.Fatalf("module %d CST not drained", mod.id)
		}
	}
}

func TestCompatibleChunksShareModuleConcurrently(t *testing.T) {
	// The paper's headline property (§2.3): chunks that use the same
	// directory but touch disjoint addresses commit concurrently.
	r := newRig(t, 8, DefaultConfig())
	a := r.mkChunk(0, 1, nil, []sig.Line{2000, 2001})
	b := r.mkChunk(1, 1, nil, []sig.Line{2064, 2065}) // same page region, dir 2
	if a.Dirs[0] != b.Dirs[0] {
		t.Fatalf("test setup: chunks must share a directory (%v vs %v)", a.Dirs, b.Dirs)
	}
	r.procs[0].submit(a)
	r.procs[1].submit(b)
	r.eng.Run()
	if !r.procs[0].done[1] || !r.procs[1].done[1] {
		t.Fatal("concurrent compatible commits did not both succeed")
	}
	if r.procs[0].failures+r.procs[1].failures != 0 {
		t.Fatal("compatible chunks should not fail/retry")
	}
	if r.env.Coll.CommitFailures != 0 {
		t.Fatal("collector recorded failures")
	}
}

func TestIncompatibleChunksSerialize(t *testing.T) {
	r := newRig(t, 8, DefaultConfig())
	// Both write line 2000 (same dir, overlapping W): exactly one forms
	// first; the other fails and retries, or gets squashed by the bulk inv.
	a := r.mkChunk(0, 1, nil, []sig.Line{2000})
	b := r.mkChunk(1, 1, nil, []sig.Line{2000})
	// Both procs cache the line (sharers), so invalidations flow.
	r.env.State.AddSharer(2000, 0)
	r.env.State.AddSharer(2000, 1)
	r.procs[0].submit(a)
	r.procs[1].submit(b)
	r.eng.Run()
	if !r.procs[0].done[1] || !r.procs[1].done[1] {
		t.Fatalf("both chunks must eventually commit (done: %v %v)",
			r.procs[0].done[1], r.procs[1].done[1])
	}
	// Serialization must have cost at least one failure or squash.
	total := r.procs[0].failures + r.procs[1].failures + r.procs[0].squashes + r.procs[1].squashes
	if total == 0 {
		t.Fatal("incompatible chunks committed without any collision")
	}
	r.checkNoIncompatibleConfirmed(t)
	// The final owner is whichever committed last; directory is consistent.
	li := r.env.State.Get(2000)
	if li == nil || !li.Dirty {
		t.Fatal("line not dirty after commits")
	}
}

func TestFigure3gThreeCollidingGroups(t *testing.T) {
	// G0 = dirs {0,2,3,4}, G1 = {1,2,3,7,8}, G2 = {6,7}, all mutually
	// incompatible where they overlap. At least one forms; all eventually
	// commit.
	r := newRig(t, 9, DefaultConfig())
	shared23 := []sig.Line{2000, 3000} // dirs 2 and 3
	g0 := r.mkChunk(0, 1, nil, append([]sig.Line{0, 4000}, shared23...))
	g1 := r.mkChunk(1, 1, nil, append([]sig.Line{1000, 7000, 8000}, shared23...))
	g2 := r.mkChunk(2, 1, nil, []sig.Line{6000, 7000})
	if len(g0.Dirs) != 4 || len(g1.Dirs) != 5 || len(g2.Dirs) != 2 {
		t.Fatalf("gvecs: %v %v %v", g0.Dirs, g1.Dirs, g2.Dirs)
	}
	r.procs[0].submit(g0)
	r.procs[1].submit(g1)
	r.procs[2].submit(g2)
	r.eng.Run()
	for i := 0; i < 3; i++ {
		if !r.procs[i].done[1] {
			t.Fatalf("group %d never committed", i)
		}
	}
	r.checkNoIncompatibleConfirmed(t)
}

func TestReadBlockedDuringCommit(t *testing.T) {
	r := newRig(t, 8, DefaultConfig())
	ck := r.mkChunk(0, 1, nil, []sig.Line{2000})
	// Inject the signatures directly and check the §3.1 load nack window.
	r.proto.HandleDir(2, &msg.Msg{
		Kind: msg.CommitRequest, Src: 0, Dst: 2, Tag: ck.Tag,
		RSig: ck.RSig, WSig: ck.WSig, GVec: []int{2}, WriteLines: ck.WriteLines,
	})
	if !r.proto.ReadBlocked(2, 2000) {
		t.Fatal("load to committing W line not blocked")
	}
	if r.proto.ReadBlocked(2, 2064) {
		t.Fatal("unrelated load blocked")
	}
	r.eng.Run() // commit completes
	if r.proto.ReadBlocked(2, 2000) {
		t.Fatal("load still blocked after commit done")
	}
}

func TestOCIRecallKillsLoserGroup(t *testing.T) {
	// Figure 4(d)/5(b): P0 and P1 commit overlapping chunks. When the race
	// lands so that the winner's bulk inv reaches P1 while P1's own commit
	// is in flight, P1 squashes, piggy-backs a commit_recall, and its group
	// must never form. Sweep P1's submission delay across the race window;
	// the squash path must appear somewhere, and every timing must end with
	// both chunks committed and no CST leaks.
	sawSquash, sawLookout := false, false
	for delay := event.Time(0); delay <= 120; delay += 5 {
		r := newRig(t, 8, DefaultConfig())
		a := r.mkChunk(0, 1, nil, []sig.Line{2000, 3000})
		b := r.mkChunk(1, 1, []sig.Line{2000}, []sig.Line{3064})
		r.env.State.AddSharer(2000, 1) // P1 caches the line P0 writes
		r.procs[0].submit(a)
		d := delay
		r.eng.After(1+d, func() { r.procs[1].submit(b) })
		r.eng.Run()

		if !r.procs[0].done[1] || !r.procs[1].done[1] {
			t.Fatalf("delay %d: chunks not both committed (%v %v)",
				d, r.procs[0].done[1], r.procs[1].done[1])
		}
		if r.procs[1].squashes > 0 {
			sawSquash = true
		}
		for _, e := range r.events {
			if e.Kind == trace.KRecall {
				sawLookout = true
			}
		}
		r.checkNoIncompatibleConfirmed(t)
		for _, mod := range r.proto.mods {
			if len(mod.cst) != 0 {
				t.Fatalf("delay %d: module %d CST leaked after recall", d, mod.id)
			}
			if len(mod.lookout) != 0 {
				t.Fatalf("delay %d: module %d recall lookout leaked", d, mod.id)
			}
		}
	}
	if !sawSquash {
		t.Fatal("no timing produced an OCI squash + recall")
	}
	if !sawLookout {
		t.Fatal("no timing exercised the recall lookout path (§3.4)")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestStarvationReservation(t *testing.T) {
	// A module that sees MAX failures of one chunk reserves itself.
	cfg := DefaultConfig()
	cfg.MaxSquashes = 2
	r := newRig(t, 8, cfg)
	mod := r.proto.mods[2]
	tag := msg.CTag{Proc: 5, Seq: 9}
	r.proto.noteFailure(mod, tag, 0, true)
	if mod.reserved != nil {
		t.Fatal("reserved too early")
	}
	r.proto.noteFailure(mod, tag, 1, true)
	if mod.reserved == nil || *mod.reserved != tag {
		t.Fatal("module did not reserve for the starving chunk")
	}
	// While reserved, a younger chunk's commit at this module fails even
	// if compatible (older chunks pass: the age rule that keeps
	// cross-reservations deadlock-free).
	other := r.mkChunk(0, 30, nil, []sig.Line{2000})
	r.procs[0].submit(other)
	deadline := r.eng.Now() + 500
	r.eng.RunUntil(deadline)
	if r.procs[0].failures == 0 {
		t.Fatal("reserved module accepted a younger chunk")
	}
	// The starving chunk commits and clears the reservation.
	starving := r.mkChunk(5, 9, nil, []sig.Line{2064})
	r.procs[5].submit(starving)
	r.eng.Run()
	if !r.procs[5].done[9] {
		t.Fatal("starving chunk did not commit")
	}
	if mod.reserved != nil {
		t.Fatal("reservation not cleared after starving chunk committed")
	}
	if !r.procs[0].done[30] {
		t.Fatal("other chunk never committed after reservation cleared")
	}
}

func TestEmptyFootprintChunkCommits(t *testing.T) {
	r := newRig(t, 4, DefaultConfig())
	ck := &chunk.Chunk{Tag: msg.CTag{Proc: 2, Seq: 1}, Instr: 2000}
	ck.Finalize(func(l sig.Line) int { return 0 })
	r.procs[2].submit(ck)
	r.eng.Run()
	if !r.procs[2].done[1] {
		t.Fatal("empty chunk did not commit")
	}
}

func TestPriorityRotationChangesLeader(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RotationInterval = 1000
	r := newRig(t, 8, cfg)
	// At epoch 0 the leader of {1,2,5} is 1.
	if got := r.proto.orderGVec([]int{5, 1, 2}); got[0] != 1 {
		t.Fatalf("epoch-0 leader = %d, want 1", got[0])
	}
	// Advance to epoch 2: priorities rotate so 2 is highest of {1,2,5}.
	r.eng.RunUntil(2000)
	if got := r.proto.orderGVec([]int{5, 1, 2}); got[0] != 2 {
		t.Fatalf("epoch-2 leader = %d, want 2", got[0])
	}
	// Commits still work under rotation.
	ck := r.mkChunk(0, 1, []sig.Line{1000}, []sig.Line{5000})
	r.procs[0].submit(ck)
	r.eng.Run()
	if !r.procs[0].done[1] {
		t.Fatal("commit failed under rotation")
	}
}

// TestPropertyRandomContention is the protocol's main liveness/safety
// property test: many processors repeatedly commit chunks with randomly
// overlapping footprints; every chunk eventually commits, the simulation
// quiesces, and no module ever confirms incompatible chunks.
func TestPropertyRandomContention(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			r := newRig(t, 8, DefaultConfig())
			const perProc = 5
			// Submission chains: each proc commits chunk k+1 once chunk k is done.
			var submit func(p int, seq uint64)
			submit = func(p int, seq uint64) {
				if seq > perProc {
					return
				}
				var reads, writes []sig.Line
				for n := rng.Intn(4); n >= 0; n-- {
					reads = append(reads, sig.Line(rng.Intn(6)*1000+rng.Intn(8)))
				}
				for n := rng.Intn(3); n >= 0; n-- {
					writes = append(writes, sig.Line(rng.Intn(6)*1000+rng.Intn(8)))
				}
				ck := r.mkChunk(p, seq, reads, writes)
				r.procs[p].submit(ck)
				// Poll for completion, then chain the next chunk.
				var poll func()
				poll = func() {
					if r.procs[p].done[seq] {
						submit(p, seq+1)
						return
					}
					r.eng.After(50, poll)
				}
				r.eng.After(50, poll)
			}
			for p := 0; p < 8; p++ {
				submit(p, 1)
			}
			// Safety scan while running.
			var scan func()
			scan = func() {
				r.checkNoIncompatibleConfirmed(t)
				if r.eng.Pending() > 0 {
					r.eng.After(100, scan)
				}
			}
			r.eng.After(100, scan)
			r.eng.Run()
			for p := 0; p < 8; p++ {
				for seq := uint64(1); seq <= perProc; seq++ {
					if !r.procs[p].done[seq] {
						t.Fatalf("proc %d chunk %d never committed", p, seq)
					}
				}
			}
		})
	}
}
