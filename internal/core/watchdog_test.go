package core

import (
	"testing"

	"scalablebulk/internal/event"
	"scalablebulk/internal/mesh"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/sig"
)

// dropInterposer drops messages selected by pick (once per matching message
// until budget runs out); everything else passes through unmodified.
type dropInterposer struct {
	pick   func(m *msg.Msg) bool
	budget int
}

func (d *dropInterposer) Plan(m *msg.Msg, now, at event.Time) []mesh.Delivery {
	if d.budget > 0 && d.pick(m) {
		d.budget--
		return nil
	}
	return []mesh.Delivery{{At: at, M: m}}
}

// TestWatchdogRecoversDroppedGrab: losing a g message mid-traversal strands
// the group half-formed — no module ever reports failure, so without the
// watchdog the commit hangs forever. The deadline must fire, fail the
// attempt, and let the retry commit.
func TestWatchdogRecoversDroppedGrab(t *testing.T) {
	r := newRig(t, 8, DefaultConfig())
	r.net.Fault = &dropInterposer{budget: 1, pick: func(m *msg.Msg) bool { return m.Kind == msg.Grab }}
	ck := r.mkChunk(0, 1, []sig.Line{1000, 2000}, []sig.Line{5000})
	if len(ck.Dirs) != 3 {
		t.Fatalf("gvec = %v, want 3 modules", ck.Dirs)
	}
	r.procs[0].submit(ck)
	r.eng.Run()
	if !r.procs[0].done[1] {
		t.Fatal("chunk never committed after dropped g message")
	}
	if r.proto.Fails.Watchdog != 1 {
		t.Fatalf("Watchdog fired %d times, want 1", r.proto.Fails.Watchdog)
	}
	if r.procs[0].failures != 1 {
		t.Fatalf("processor saw %d failures, want 1", r.procs[0].failures)
	}
	for _, mod := range r.proto.mods {
		if len(mod.cst) != 0 {
			t.Fatalf("module %d leaked CST entries: %s", mod.id, r.proto.DebugModule(mod.id))
		}
	}
}

// TestWatchdogNoOpAfterSuccess: a commit that completes before the deadline
// closes its watchdog; the still-scheduled deadline event fires as a no-op.
func TestWatchdogNoOpAfterSuccess(t *testing.T) {
	r := newRig(t, 8, DefaultConfig())
	ck := r.mkChunk(3, 1, []sig.Line{1000}, []sig.Line{2000})
	r.procs[3].submit(ck)
	r.eng.Run() // drains the +CommitDeadline event too
	if !r.procs[3].done[1] {
		t.Fatal("chunk did not commit")
	}
	if r.proto.Fails.Watchdog != 0 {
		t.Fatalf("watchdog fired %d times after a clean commit", r.proto.Fails.Watchdog)
	}
}

// TestWatchdogDisabled: WatchdogDisabled must not arm anything, so the
// dropped-g hang is reproduced (the chunk stays uncommitted) instead of
// recovered — this pins the opt-out knob.
func TestWatchdogDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CommitDeadline = WatchdogDisabled
	r := newRig(t, 8, cfg)
	r.net.Fault = &dropInterposer{budget: 1, pick: func(m *msg.Msg) bool { return m.Kind == msg.Grab }}
	ck := r.mkChunk(0, 1, []sig.Line{1000, 2000}, []sig.Line{5000})
	r.procs[0].submit(ck)
	r.eng.Run()
	if r.procs[0].done[1] {
		t.Fatal("chunk committed despite the dropped g message and no watchdog")
	}
	if r.proto.Fails.Watchdog != 0 {
		t.Fatal("disabled watchdog fired")
	}
}

// dupDelayInterposer duplicates BulkInvAck messages and delays the second
// distinct ack far beyond the duplicate, so a leader that double-counts the
// duplicate would finish the commit before every sharer actually acked.
type dupDelayInterposer struct {
	acks int
}

func (d *dupDelayInterposer) Plan(m *msg.Msg, now, at event.Time) []mesh.Delivery {
	if m.Kind != msg.BulkInvAck {
		return []mesh.Delivery{{At: at, M: m}}
	}
	d.acks++
	if d.acks == 1 {
		return []mesh.Delivery{{At: at, M: m}, {At: at + 50, M: m.Clone()}}
	}
	return []mesh.Delivery{{At: at + 5000, M: m}}
}

// TestDuplicateBulkInvAckCountedOnce: with two sharers to invalidate, a
// duplicated first ack must not stand in for the second sharer's ack —
// commit_done may only be sent after the delayed real ack arrives.
func TestDuplicateBulkInvAckCountedOnce(t *testing.T) {
	r := newRig(t, 8, DefaultConfig())
	r.net.Fault = &dupDelayInterposer{}
	r.env.State.AddSharer(2000, 6)
	r.env.State.AddSharer(2000, 7)
	ck := r.mkChunk(0, 1, []sig.Line{1000}, []sig.Line{2000})
	var lastAckAt, doneSentAt event.Time
	r.net.OnDeliver = func(m *msg.Msg) {
		if m.Kind == msg.BulkInvAck {
			lastAckAt = r.eng.Now()
		}
	}
	r.net.OnSend = func(m *msg.Msg) {
		if m.Kind == msg.CommitDone && doneSentAt == 0 {
			doneSentAt = r.eng.Now()
		}
	}
	r.procs[0].submit(ck)
	r.eng.Run()
	if !r.procs[0].done[1] {
		t.Fatal("chunk did not commit")
	}
	if doneSentAt == 0 {
		t.Fatal("commit_done never sent")
	}
	if doneSentAt < lastAckAt {
		t.Fatalf("commit_done sent at %d before the last real ack at %d: duplicate ack was double-counted",
			doneSentAt, lastAckAt)
	}
}

// TestGFailureAtConfirmedEntryClearsAsSuccess: a g_failure reaching an entry
// whose group already formed (only possible from a watchdog race or a
// duplicated failure) must tear it down as a success — otherwise the chunk's
// starvation reservation and squash history stay behind forever and wedge
// the module.
func TestGFailureAtConfirmedEntryClearsAsSuccess(t *testing.T) {
	r := newRig(t, 8, DefaultConfig())
	mod := r.proto.mods[1]
	tag := msg.CTag{Proc: 0, Seq: 1}
	e := mod.getOrCreate(tag)
	e.try = 2
	e.state = stConfirmed
	mod.squashes[tag] = 99
	res := tag
	mod.reserved = &res

	r.proto.onGFailure(mod, &msg.Msg{Kind: msg.GFailure, Src: 3, Dst: 1, Tag: tag, TID: 2})

	if mod.find(tag) != nil {
		t.Fatal("confirmed entry survived the g_failure")
	}
	if mod.reserved != nil {
		t.Fatal("starvation reservation not cleared: module is wedged")
	}
	if _, ok := mod.squashes[tag]; ok {
		t.Fatal("squash history not cleared")
	}
	if ft := mod.failedTry[tag]; ft != int(^uint(0)>>1) {
		t.Fatalf("committed chunk not tombstoned: failedTry = %d", ft)
	}
}
