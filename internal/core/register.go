package core

import (
	"fmt"

	"scalablebulk/internal/dir"
	"scalablebulk/internal/protocol"
)

// Name and NameNoOCI are the registry keys for the ScalableBulk engine and
// its Optimistic-Commit-Initiation-off ablation (Figure 4(c)).
const (
	Name      = "ScalableBulk"
	NameNoOCI = "ScalableBulk-NoOCI"
)

// engineFor builds the engine with OCI forced to the variant's setting; the
// rest of the option block (MAX threshold, rotation, deadline) is the
// caller's.
func engineFor(env *dir.Env, opts any, oci bool, variant string) (protocol.Engine, error) {
	cfg, ok := opts.(Config)
	if !ok {
		return nil, fmt.Errorf("%s: options must be core.Config, got %T", variant, opts)
	}
	cfg.OCI = oci
	return New(env, cfg), nil
}

func init() {
	protocol.Register(protocol.Descriptor{
		Name:           Name,
		Doc:            "the paper's protocol: distributed group formation, overlapped commits, OCI (§3)",
		Rank:           0,
		Evaluated:      true,
		DefaultOptions: func() any { return DefaultConfig() },
		New: func(env *dir.Env, opts any) (protocol.Engine, error) {
			return engineFor(env, opts, true, Name)
		},
		Tuning: protocol.Tuning{OCIRecall: true},
	})
	protocol.Register(protocol.Descriptor{
		Name:           NameNoOCI,
		Doc:            "ScalableBulk ablation: Optimistic Commit Initiation off, conservative invalidation (Figure 4(c))",
		Rank:           100,
		DefaultOptions: func() any { return DefaultConfig() },
		New: func(env *dir.Env, opts any) (protocol.Engine, error) {
			return engineFor(env, opts, false, NameNoOCI)
		},
		Tuning: protocol.Tuning{ConservativeInv: true},
	})
}
