package proc

import (
	"testing"

	"scalablebulk/internal/cache"
	"scalablebulk/internal/chunk"
	"scalablebulk/internal/dir"
	"scalablebulk/internal/event"
	"scalablebulk/internal/mem"
	"scalablebulk/internal/mesh"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/sig"
	"scalablebulk/internal/stats"
)

// scriptProto is a controllable protocol: it records commit requests and
// lets the test resolve them explicitly.
type scriptProto struct {
	env      *dir.Env
	requests []*chunk.Chunk
}

func (f *scriptProto) Name() string                    { return "script" }
func (f *scriptProto) HandleDir(node int, m *msg.Msg)  {}
func (f *scriptProto) HandleProc(node int, m *msg.Msg) {}
func (f *scriptProto) ReadBlocked(int, sig.Line) bool  { return false }
func (f *scriptProto) RequestCommit(p int, c *chunk.Chunk) {
	f.env.Coll.CommitStarted(p, c.Tag.Seq, c.Retries, f.env.Eng.Now())
	f.requests = append(f.requests, c)
}

// fixedGen deals fixed-size private chunks (always cache-resident after the
// first fill, so timing is easy to reason about).
type fixedGen struct{ accesses int }

func (g fixedGen) NextChunk(proc int, seq uint64) *chunk.Chunk {
	ck := &chunk.Chunk{Tag: msg.CTag{Proc: proc, Seq: seq}, Instr: 2000}
	for i := 0; i < g.accesses; i++ {
		ck.Accesses = append(ck.Accesses, chunk.Access{
			Line:  sig.Line(1000*(proc+1) + 100*int(seq) + i),
			Write: i%3 == 0,
		})
	}
	return ck
}

func rig(t *testing.T, cfg Config) (*Proc, *scriptProto, *event.Engine) {
	t.Helper()
	eng := event.New()
	net := mesh.New(eng, mesh.Config{Nodes: 4, LinkLatency: 7})
	env := &dir.Env{
		Eng: eng, Net: net, Map: mem.NewMapper(4), State: dir.NewState(),
		Coll: stats.New(), DirLookup: 2, MemLatency: 300,
	}
	fp := &scriptProto{env: env}
	p := New(env, fp, fixedGen{accesses: 8}, 0, 4,
		cache.Config{SizeBytes: 4 << 10, Assoc: 4},
		cache.Config{SizeBytes: 32 << 10, Assoc: 8}, cfg)
	env.Cores = []dir.Core{p, nil, nil, nil}
	for i := 0; i < 4; i++ {
		node := i
		net.Register(node, func(m *msg.Msg) {
			if node == 0 && m.Kind.SideOf() == msg.SideProc {
				p.Handle(m)
				return
			}
			if m.Kind == msg.ReadReq {
				// Minimal read service: immediate memory reply.
				net.Send(&msg.Msg{Kind: msg.ReadMemReply, Src: node, Dst: m.Src, Tag: m.Tag, Line: m.Line})
			}
		})
	}
	return p, fp, eng
}

func TestPipelineKeepsTwoChunksInFlight(t *testing.T) {
	p, fp, eng := rig(t, DefaultConfig())
	p.Start()
	eng.RunFor(50_000)
	if len(fp.requests) != 1 {
		t.Fatalf("requests = %d, want exactly 1 (commit slot busy)", len(fp.requests))
	}
	// The next chunk finished executing but must stall behind the
	// unresolved commit — that's the Commit category.
	if p.finished == nil {
		t.Fatal("second chunk should be finished-waiting")
	}
	if p.executing != nil {
		t.Fatal("a third chunk must not start with two in flight")
	}
	// Resolve the commit: the stalled chunk submits, a new one executes.
	p.CommitFinished(fp.requests[0].Tag)
	eng.RunFor(100)
	if len(fp.requests) != 2 {
		t.Fatalf("requests after resolve = %d, want 2", len(fp.requests))
	}
	if p.Acct.Commit == 0 {
		t.Fatal("commit stall cycles not accounted")
	}
	if p.Committed != 1 {
		t.Fatalf("Committed = %d", p.Committed)
	}
}

func TestRetryBacksOffExponentially(t *testing.T) {
	p, fp, eng := rig(t, DefaultConfig())
	p.Start()
	eng.RunFor(50_000)
	first := fp.requests[0]
	t0 := eng.Now()
	p.CommitRefused(first.Tag)
	eng.RunFor(10_000)
	if len(fp.requests) < 2 {
		t.Fatal("no retry after refusal")
	}
	if fp.requests[1] != first {
		t.Fatal("retry must resubmit the same chunk")
	}
	if first.Retries != 1 {
		t.Fatalf("Retries = %d", first.Retries)
	}
	_ = t0
	// Refuse repeatedly: the gap between retries must grow.
	var gaps []event.Time
	last := eng.Now()
	for i := 0; i < 4; i++ {
		p.CommitRefused(first.Tag)
		before := len(fp.requests)
		for len(fp.requests) == before {
			if !eng.Step() {
				t.Fatal("engine drained without retry")
			}
		}
		gaps = append(gaps, eng.Now()-last)
		last = eng.Now()
	}
	if gaps[len(gaps)-1] <= gaps[0] {
		t.Fatalf("backoff not growing: %v", gaps)
	}
}

func TestBulkInvalidateSquashesInFlightCommit(t *testing.T) {
	p, fp, eng := rig(t, DefaultConfig())
	p.Start()
	eng.RunFor(50_000)
	ck := fp.requests[0]
	var w sig.Sig
	w.Insert(ck.WriteLines[0]) // true conflict with the committing chunk

	recall := p.bulkInvalidate(&w, []sig.Line{ck.WriteLines[0]}, nil)
	if recall == nil {
		t.Fatal("in-flight conflict did not produce a recall")
	}
	if recall.Tag != ck.Tag {
		t.Fatalf("recall for %s, want %s", recall.Tag, ck.Tag)
	}
	if p.committing != nil {
		t.Fatal("squashed chunk still committing")
	}
	if p.Acct.Squash == 0 {
		t.Fatal("squash cycles not charged")
	}
	// The chunk re-executes and recommits with a higher try.
	eng.RunFor(100_000)
	found := false
	for _, r := range fp.requests[1:] {
		if r.Tag == ck.Tag && r.Retries > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("squashed chunk never recommitted")
	}
}

func TestBulkInvalidateSquashesExecutingChunk(t *testing.T) {
	p, fp, eng := rig(t, DefaultConfig())
	p.Start()
	eng.RunFor(50_000)
	// The finished-waiting chunk is the younger active chunk here.
	victim := p.finished
	if victim == nil {
		t.Fatal("setup: no finished chunk")
	}
	var w sig.Sig
	w.Insert(victim.Accesses[0].Line)
	squashesBefore := p.Squashes
	p.bulkInvalidate(&w, []sig.Line{victim.Accesses[0].Line}, nil)
	if p.Squashes != squashesBefore+1 {
		t.Fatal("executing/finished chunk not squashed")
	}
	if p.committing == nil || p.committing != fp.requests[0] {
		t.Fatal("older committing chunk must survive a younger-only conflict")
	}
}

func TestInvalidateLineExactness(t *testing.T) {
	p, fp, eng := rig(t, DefaultConfig())
	p.Start()
	eng.RunFor(50_000)
	ck := fp.requests[0]
	// A line NOT in the chunk: no squash (per-line disambiguation is exact).
	if got := p.InvalidateLine(999999, 2, nil); got != nil {
		t.Fatal("phantom per-line conflict")
	}
	// The chunk is immune (past its serialization point): cached copy dies,
	// but no squash.
	tag := ck.Tag
	if got := p.InvalidateLine(ck.WriteLines[0], 2, &tag); got != nil {
		t.Fatal("immune committing chunk was squashed")
	}
	if got := p.InvalidateLine(ck.WriteLines[0], 2, nil); got == nil {
		t.Fatal("true per-line conflict missed")
	}
}

func TestConservativeDeferral(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ConservativeInv = true
	cfg.OCIRecall = false
	p, fp, eng := rig(t, cfg)
	p.Start()
	eng.RunFor(50_000)
	ck := fp.requests[0]

	var w sig.Sig
	w.Insert(ck.WriteLines[0])
	m := &msg.Msg{Kind: msg.BulkInv, Src: 1, Dst: 0, Tag: msg.CTag{Proc: 1, Seq: 9},
		WSig: w, WriteLines: []sig.Line{ck.WriteLines[0]}}
	p.Handle(m)
	if len(p.deferred) != 1 {
		t.Fatal("invalidation not deferred while awaiting decision")
	}
	if p.Squashes != 0 {
		t.Fatal("deferred invalidation must not squash yet")
	}
	// The decision arrives (failure): the deferred inv is consumed and the
	// conflicting in-flight chunk squashes.
	p.CommitRefused(ck.Tag)
	if len(p.deferred) != 0 {
		t.Fatal("deferred invalidations not drained at decision")
	}
	if p.Squashes == 0 {
		t.Fatal("drained conflicting invalidation did not squash")
	}
}

func TestLateSuccessAbandonsReexecution(t *testing.T) {
	p, fp, eng := rig(t, DefaultConfig())
	p.Start()
	eng.RunFor(50_000)
	ck := fp.requests[0]
	var w sig.Sig
	w.Insert(ck.WriteLines[0])
	p.bulkInvalidate(&w, []sig.Line{ck.WriteLines[0]}, nil) // squash in flight; re-executing now
	if p.executing == nil || p.executing.Tag != ck.Tag {
		t.Fatal("squashed chunk should be re-executing")
	}
	committed := p.Committed
	// The commit success arrives anyway (aliasing race): accept the commit
	// and abandon the re-execution.
	p.CommitFinished(ck.Tag)
	if p.Committed != committed+1 {
		t.Fatal("late success not counted as commit")
	}
	if p.executing != nil && p.executing.Tag == ck.Tag {
		t.Fatal("re-execution not abandoned")
	}
}

func TestDoneStopsAtTarget(t *testing.T) {
	p, _, eng := rig(t, DefaultConfig())
	p.Start()
	for i := 0; i < 10 && !p.Done(); i++ {
		eng.RunFor(50_000)
		if p.committing != nil {
			p.CommitFinished(p.committing.Tag)
		}
	}
	if !p.Done() {
		t.Fatal("proc never reached its target")
	}
	if p.Committed != 4 {
		t.Fatalf("Committed = %d, want target 4", p.Committed)
	}
	// Invalidations after done are still acknowledged harmlessly.
	var w sig.Sig
	w.Insert(1)
	if r := p.bulkInvalidate(&w, []sig.Line{1}, nil); r != nil {
		t.Fatal("done proc produced a recall")
	}
}
