// Package proc models one tile's processor: a 1-IPC core with private
// L1/L2 caches that continuously executes 2000-instruction chunks (Table 2),
// keeps up to two chunks in flight (executing the next chunk while the
// previous one commits), disambiguates incoming invalidations against its
// chunks' signatures, squashes and re-executes on conflicts, and accounts
// every cycle into the Useful / Cache Miss / Commit / Squash breakdown of
// Figures 7 and 8.
package proc

import (
	"fmt"
	"math/rand"

	"scalablebulk/internal/cache"
	"scalablebulk/internal/chunk"
	"scalablebulk/internal/dir"
	"scalablebulk/internal/event"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/sig"
	"scalablebulk/internal/stats"
	"scalablebulk/internal/trace"
)

// Generator produces the chunk stream of one thread. It must be
// deterministic in (proc, seq): a squashed chunk re-executes the same
// accesses.
type Generator interface {
	NextChunk(proc int, seq uint64) *chunk.Chunk
}

// Config tunes the processor model.
type Config struct {
	// L2Latency is the private L2 round trip beyond the (hidden) L1 time.
	L2Latency event.Time
	// MaxActiveChunks caps in-flight chunks per core (Table 2: 2 — one
	// committing plus one executing).
	MaxActiveChunks int
	// RetryBackoff is the wait before retrying a failed commit; a per-core
	// jitter is added to break symmetric livelock.
	RetryBackoff event.Time
	// NackRetry is the wait before re-issuing a nacked read (§3.1).
	NackRetry event.Time
	// ConservativeInv buffers incoming invalidation signatures while a
	// commit decision is pending, acknowledging only on consumption — the
	// pre-OCI behavior of Figure 4(c) and of BulkSC.
	ConservativeInv bool
	// OCIRecall piggy-backs commit_recall on bulk_inv_ack when an
	// invalidation squashes the in-flight commit (ScalableBulk §3.3).
	OCIRecall bool
	// Seed randomizes backoff jitter deterministically.
	Seed int64
	// OnCommit, when non-nil, observes each chunk retirement in commit
	// order: (core, chunk sequence). A pure observer — it must not touch
	// simulator state.
	OnCommit func(core int, seq uint64)
	// OnDone, when non-nil, fires once when this core commits its last
	// target chunk (the done transition). The system layer uses it to keep
	// an O(1) all-done counter instead of scanning every core per step.
	OnDone func(core int)
}

// DefaultConfig returns the ScalableBulk processor configuration.
func DefaultConfig() Config {
	return Config{
		L2Latency:       8,
		MaxActiveChunks: 2,
		RetryBackoff:    48,
		NackRetry:       20,
		OCIRecall:       true,
	}
}

// Proc is one processor. It implements dir.Core.
type Proc struct {
	ID    int
	env   *dir.Env
	proto dir.Protocol
	hier  *cache.Hierarchy
	gen   Generator
	cfg   Config
	rng   *rand.Rand

	nextSeq uint64
	target  int
	done    bool

	// Pipeline slots. Invariant: `finished` is only non-nil while
	// `committing` occupies the commit slot (the core stalls).
	executing *chunk.Chunk
	execEpoch uint64 // invalidates stale execution continuations
	pc        int

	committing  *chunk.Chunk
	commitReqAt event.Time

	finished   *chunk.Chunk
	stallStart event.Time

	pendingRead *pendingRead
	lastMiss    sig.Line   // previous miss line, for the spatial prefetcher
	deferred    []*msg.Msg // conservative-mode buffered invalidations
	draining    bool       // consuming deferred messages: do not re-defer
	awaiting    bool       // commit decision pending (conservative window)

	// Exec-span bookkeeping (tracing only). execOpen guarantees every begun
	// KExec span ends exactly once, whichever of the abandon paths fires.
	execOpen bool
	execTag  msg.CTag
	execTry  int
	// invTag is the committing chunk behind the invalidation currently being
	// applied, so squash events can name their preemptor.
	invTag   msg.CTag
	invTagOK bool

	// Accounting.
	Acct      stats.Breakdown
	Committed int
	Squashes  int
	FinishAt  event.Time // when this core committed its last target chunk
}

type pendingRead struct {
	acc      chunk.Access
	issuedAt event.Time
	epoch    uint64
}

// New builds a processor. l1 and l2 size the private hierarchy (Table 2).
func New(env *dir.Env, proto dir.Protocol, gen Generator, id, target int, l1, l2 cache.Config, cfg Config) *Proc {
	if cfg.MaxActiveChunks == 0 {
		cfg.MaxActiveChunks = 2
	}
	p := &Proc{
		ID: id, env: env, proto: proto, gen: gen, cfg: cfg,
		hier:   cache.NewHierarchy(l1, l2),
		target: target,
		rng:    rand.New(rand.NewSource(cfg.Seed + int64(id)*7919)),
	}
	if target <= 0 {
		p.done = true // nothing to do: born finished
	}
	return p
}

var _ dir.Core = (*Proc)(nil)

// Hierarchy exposes the cache hierarchy (for tests and tooling).
func (p *Proc) Hierarchy() *cache.Hierarchy { return p.hier }

// Done reports whether the core committed its target number of chunks.
func (p *Proc) Done() bool { return p.done }

// Start begins executing the chunk stream.
func (p *Proc) Start() { p.startNextChunk() }

func (p *Proc) startNextChunk() {
	if p.done || p.executing != nil || p.finished != nil {
		return
	}
	active := 0
	if p.committing != nil {
		active++
	}
	if active >= p.cfg.MaxActiveChunks {
		return
	}
	if p.Committed+active >= p.target {
		return // enough chunks in flight to reach the target
	}
	ck := p.gen.NextChunk(p.ID, p.nextSeq)
	p.nextSeq++
	p.beginExecute(ck)
}

// traceExecBegin opens the chunk's execution span on this core's track.
func (p *Proc) traceExecBegin(ck *chunk.Chunk) {
	if !p.env.Trace.Enabled() {
		return
	}
	p.execOpen, p.execTag, p.execTry = true, ck.Tag, ck.Retries
	p.env.Trace.Span(trace.KExec, trace.PhaseBegin, p.ID, false, ck.Tag, ck.Retries)
}

// traceExecEnd closes the open execution span, if any. Safe to call on every
// path that stops or abandons the executing chunk.
func (p *Proc) traceExecEnd() {
	if !p.execOpen {
		return
	}
	p.execOpen = false
	p.env.Trace.Span(trace.KExec, trace.PhaseEnd, p.ID, false, p.execTag, p.execTry)
}

// traceSquash records one squash with its cause and, when known, the
// committing chunk that triggered it.
func (p *Proc) traceSquash(ck *chunk.Chunk, trueConflict bool) {
	if !p.env.Trace.Enabled() {
		return
	}
	cause := trace.CauseAliasing
	if trueConflict {
		cause = trace.CauseConflict
	}
	p.env.Trace.Emit(trace.Event{
		Kind: trace.KSquash, Node: p.ID, Tag: ck.Tag, Try: ck.Retries,
		Cause: cause, Other: p.invTag, HasOther: p.invTagOK,
	})
}

// beginExecute (re)starts a chunk from its first access.
func (p *Proc) beginExecute(ck *chunk.Chunk) {
	p.traceExecEnd()
	p.executing = ck
	p.pc = 0
	ck.ExecUseful, ck.ExecMiss = 0, 0
	ck.RSig.Clear()
	ck.WSig.Clear()
	p.execEpoch++
	p.pendingRead = nil
	p.traceExecBegin(ck)
	p.step(p.execEpoch)
}

// prefetchStall is the residual stall of a miss hidden by the spatial
// streamer (line contiguous with the previous miss).
const prefetchStall event.Time = 12

// writeMissStall is the store-buffer cost of a write miss; stores need no
// coherence permission in a lazy chunk machine.
const writeMissStall event.Time = 4

// instrGap spreads the chunk's non-memory instructions evenly between its
// accesses: one cycle per instruction (1 IPC).
func instrGap(ck *chunk.Chunk) event.Time {
	return event.Time(ck.Instr / (len(ck.Accesses) + 1))
}

// step runs the executing chunk forward, batching cache hits locally and
// yielding to the event engine on a miss or at chunk end.
func (p *Proc) step(epoch uint64) {
	if epoch != p.execEpoch || p.executing == nil {
		return
	}
	ck := p.executing
	gap := instrGap(ck)
	var local event.Time
	for p.pc < len(ck.Accesses) {
		a := ck.Accesses[p.pc]
		local += gap
		ck.ExecUseful += uint64(gap)
		// Signatures are built incrementally in hardware as the chunk
		// executes, so mid-chunk disambiguation works.
		if a.Write {
			ck.WSig.Insert(a.Line)
		} else {
			ck.RSig.Insert(a.Line)
		}
		lvl := p.hier.Access(a.Line, a.Write)
		p.pc++
		switch lvl {
		case cache.L1Hit:
			// 2-cycle round trip, hidden by the pipeline.
		case cache.L2Hit:
			local += p.cfg.L2Latency
			ck.ExecMiss += uint64(p.cfg.L2Latency)
		case cache.Miss:
			if a.Write {
				// Writes never block: in a lazy chunk machine a store
				// needs no coherence permission — the line is allocated
				// locally and stays speculative until commit (§2). The
				// read request still goes out so the directory learns the
				// writer caches the line (and for traffic accounting).
				local += writeMissStall
				ck.ExecMiss += uint64(writeMissStall)
				p.sendRead(a.Line)
				p.hier.Fill(a.Line, true)
				continue
			}
			if a.Line == p.lastMiss+1 {
				// Spatial streaming: the prefetcher already has the next
				// line of the run in flight (MSHRs, Table 2), so the core
				// pays only a short drain instead of the full round trip.
				// The read still goes out for directory bookkeeping and
				// traffic accounting; its reply is consumed silently.
				p.lastMiss = a.Line
				local += prefetchStall
				ck.ExecMiss += uint64(prefetchStall)
				p.sendRead(a.Line)
				p.hier.Fill(a.Line, a.Write)
				continue
			}
			acc := a
			p.env.Eng.After(local, func() { p.issueRead(acc, epoch) })
			return
		}
	}
	local += gap
	ck.ExecUseful += uint64(gap)
	// Global: finishExecution reaches the mapper (signature finalization
	// first-touch), the workload generator and the protocol engine.
	p.env.Eng.AfterGlobal(local, func() { p.finishExecution(epoch) })
}

// issueRead sends the miss to the line's home directory.
func (p *Proc) issueRead(a chunk.Access, epoch uint64) {
	if epoch != p.execEpoch {
		return
	}
	p.pendingRead = &pendingRead{acc: a, issuedAt: p.env.Eng.Now(), epoch: epoch}
	p.sendRead(a.Line)
}

func (p *Proc) sendRead(l sig.Line) {
	home := p.env.Map.Home(l, p.ID)
	m := p.env.Net.NewMsg()
	m.Kind, m.Src, m.Dst = msg.ReadReq, p.ID, home
	m.Tag, m.Line = msg.CTag{Proc: p.ID}, l
	p.env.Net.Send(m)
}

func (p *Proc) onReadReply(m *msg.Msg) {
	pr := p.pendingRead
	if pr == nil || pr.acc.Line != m.Line || pr.epoch != p.execEpoch {
		return // stale reply for a squashed execution
	}
	p.pendingRead = nil
	stall := uint64(p.env.Eng.Now() - pr.issuedAt)
	p.lastMiss = m.Line
	p.executing.ExecMiss += stall
	p.hier.Fill(m.Line, pr.acc.Write)
	p.step(p.execEpoch)
}

func (p *Proc) onReadNack(m *msg.Msg) {
	pr := p.pendingRead
	if pr == nil || pr.acc.Line != m.Line || pr.epoch != p.execEpoch {
		return
	}
	line, epoch := pr.acc.Line, pr.epoch
	// Keep issuedAt: the retry time is part of the miss stall. Re-issue
	// after a short backoff (§3.1: bounced requests are retried).
	p.env.Eng.After(p.cfg.NackRetry, func() {
		if epoch != p.execEpoch || p.pendingRead != pr {
			return
		}
		p.sendRead(line)
	})
}

// finishExecution: the chunk completed; request its commit or stall if the
// commit slot is occupied.
func (p *Proc) finishExecution(epoch uint64) {
	if epoch != p.execEpoch || p.executing == nil {
		return
	}
	ck := p.executing
	p.executing = nil
	p.traceExecEnd()
	ck.Finalize(func(l sig.Line) int { return p.env.Map.Home(l, p.ID) })
	if p.committing == nil {
		p.submitCommit(ck)
		p.startNextChunk()
		return
	}
	// Commit stall: the previous chunk has not finished committing
	// (Figures 7/8, "Commit" category).
	p.finished = ck
	p.stallStart = p.env.Eng.Now()
}

func (p *Proc) submitCommit(ck *chunk.Chunk) {
	p.committing = ck
	p.commitReqAt = p.env.Eng.Now()
	p.awaiting = true
	p.requestCommit(ck)
}

// requestCommit hands a chunk to the protocol engine, notifying the probe.
func (p *Proc) requestCommit(ck *chunk.Chunk) {
	if p.env.Probe != nil {
		p.env.Probe.CommitRequested(p.ID, ck)
	}
	p.proto.RequestCommit(p.ID, ck)
}

// CommitFinished implements dir.Core.
func (p *Proc) CommitFinished(tag msg.CTag) {
	if p.committing != nil && p.committing.Tag == tag {
		p.completeCommit()
		return
	}
	// Late commit_success for a chunk that was squashed under OCI and is
	// re-executing: the squash was provably due to signature aliasing (a
	// true conflict always shares a home module and fails the group), so
	// the commit stands and the re-execution is abandoned.
	if p.executing != nil && p.executing.Tag == tag {
		ck := p.executing
		p.Acct.Squash += ck.ExecUseful + ck.ExecMiss // partial re-execution wasted
		p.executing = nil
		p.traceExecEnd()
		p.execEpoch++
		p.pendingRead = nil
		// The commit stands, so it must land in the collector like any
		// other success — otherwise the run's commit count and its
		// latency/directory samples disagree (Result.Validate).
		now := p.env.Eng.Now()
		p.env.Coll.CommitEnded(p.ID, ck.Tag.Seq, ck.Retries, now, true)
		p.env.Coll.CommitLatency(now - p.commitReqAt)
		p.env.Coll.DirsPerCommit(len(ck.Dirs), len(ck.WriteDirs))
		p.countCommit(ck)
		p.startNextChunk()
	}
}

func (p *Proc) completeCommit() {
	ck := p.committing
	p.committing = nil
	p.awaiting = false
	now := p.env.Eng.Now()
	p.env.Coll.CommitEnded(p.ID, ck.Tag.Seq, ck.Retries, now, true)
	p.env.Coll.CommitLatency(now - p.commitReqAt)
	p.env.Coll.DirsPerCommit(len(ck.Dirs), len(ck.WriteDirs))
	p.countCommit(ck)
	p.drainDeferred()
	if p.done {
		return
	}
	if p.finished != nil {
		p.Acct.Commit += uint64(now - p.stallStart)
		next := p.finished
		p.finished = nil
		p.submitCommit(next)
	}
	p.startNextChunk()
}

// countCommit retires a chunk: caches finalize its lines and its execution
// cycles land in the Useful/CacheMiss buckets.
func (p *Proc) countCommit(ck *chunk.Chunk) {
	if p.env.Probe != nil {
		p.env.Probe.ChunkCommitted(p.ID, ck.Tag.Seq, p.env.Eng.Now())
	}
	p.hier.Commit(ck.WriteLines)
	p.Acct.Useful += ck.ExecUseful
	p.Acct.CacheMiss += ck.ExecMiss
	if p.cfg.OnCommit != nil {
		p.cfg.OnCommit(p.ID, ck.Tag.Seq)
	}
	p.Committed++
	if p.Committed >= p.target && !p.done {
		p.done = true
		p.FinishAt = p.env.Eng.Now()
		// Abandon any speculative work beyond the target.
		p.executing = nil
		p.traceExecEnd()
		p.finished = nil
		p.execEpoch++
		p.pendingRead = nil
		if p.cfg.OnDone != nil {
			p.cfg.OnDone(p.ID)
		}
	}
}

// CommitRefused implements dir.Core: wait and retry (§3.2.1).
func (p *Proc) CommitRefused(tag msg.CTag) {
	if p.committing == nil || p.committing.Tag != tag {
		return // stale failure (e.g. after an OCI recall); discard (§3.3)
	}
	ck := p.committing
	p.awaiting = false
	p.env.Coll.CommitEnded(p.ID, ck.Tag.Seq, ck.Retries, p.env.Eng.Now(), false)
	ck.Retries++
	// Exponential backoff with a cap: under heavy collision bursts a fixed
	// retry interval lets 64 processors' request storms saturate the torus
	// (latencies then diverge and retries compound). Backing off spreads
	// the retries until the concurrent group set becomes feasible.
	shift := ck.Retries
	if shift > 5 {
		shift = 5
	}
	backoff := p.cfg.RetryBackoff<<uint(shift) + event.Time(p.rng.Intn(64))
	// Global: the retry re-enters the protocol engine.
	p.env.Eng.AfterGlobal(backoff, func() {
		if p.committing == ck {
			p.commitReqAt = p.env.Eng.Now()
			p.awaiting = true
			p.requestCommit(ck)
		}
	})
	// The refusal is a decision: consume invalidations deferred during the
	// conservative window (Figure 4(c)) — this may squash ck, cancelling
	// the scheduled retry.
	p.drainDeferred()
}

// ResumeInvalidations implements dir.Core: the protocol's decision arrived
// (e.g. BulkSC's arbiter grant), ending the conservative deferral window.
func (p *Proc) ResumeInvalidations() {
	p.awaiting = false
	p.drainDeferred()
}

// requeueFor restarts execution at chunk ck, regenerating the chunk stream
// after it (abandoned younger chunks re-execute later in program order).
func (p *Proc) requeueFor(ck *chunk.Chunk) {
	if p.done {
		return
	}
	if p.executing != nil && p.executing.Tag.Seq < p.nextSeq {
		p.nextSeq = p.executing.Tag.Seq
	}
	if p.finished != nil && p.finished.Tag.Seq < p.nextSeq {
		p.nextSeq = p.finished.Tag.Seq
	}
	p.executing = nil
	p.finished = nil
	p.beginExecute(ck)
}

// squashExecuting discards the executing (or finished-waiting) chunk and
// restarts it.
func (p *Proc) squashExecuting(trueConflict bool) {
	var ck *chunk.Chunk
	now := p.env.Eng.Now()
	switch {
	case p.executing != nil:
		ck = p.executing
	case p.finished != nil:
		ck = p.finished
		// The commit stall so far is charged to Commit; the re-execution
		// restarts the clock.
		p.Acct.Commit += uint64(now - p.stallStart)
	default:
		return
	}
	p.Squashes++
	p.env.Coll.Squashed(trueConflict)
	p.traceSquash(ck, trueConflict)
	p.Acct.Squash += ck.ExecUseful + ck.ExecMiss
	ck.Squashes++
	p.hier.Squash(ck.WriteLines)
	p.executing = nil
	p.finished = nil
	p.beginExecute(ck)
}

// squashInFlight squashes the committing chunk (and, by program order, any
// younger chunk) and restarts execution at the squashed chunk. It returns
// the recall info for the cancelled attempt.
func (p *Proc) squashInFlight(trueConflict bool) *msg.RecallInfo {
	ck := p.committing
	now := p.env.Eng.Now()
	p.Squashes++
	p.env.Coll.Squashed(trueConflict)
	p.traceSquash(ck, trueConflict)
	p.env.Coll.CommitEnded(p.ID, ck.Tag.Seq, ck.Retries, now, false)
	p.Acct.Squash += ck.ExecUseful + ck.ExecMiss
	ck.Squashes++
	p.hier.Squash(ck.WriteLines)
	recall := &msg.RecallInfo{Tag: ck.Tag, Try: uint64(ck.Retries), GVec: append([]int(nil), ck.Dirs...)}
	// The younger chunk is squashed too (program order).
	if p.finished != nil {
		p.Acct.Commit += uint64(now - p.stallStart)
		p.Acct.Squash += p.finished.ExecUseful + p.finished.ExecMiss
	}
	if p.executing != nil {
		p.Acct.Squash += p.executing.ExecUseful + p.executing.ExecMiss
	}
	p.execEpoch++
	p.pendingRead = nil
	p.committing = nil
	p.awaiting = false
	ck.Retries++
	// Re-execute the squashed chunk immediately (§3.3: "the processor
	// squashes and restarts the chunk"); a later commit_failure for the
	// old attempt is discarded by CommitRefused.
	p.requeueFor(ck)
	return recall
}

// BulkInvalidate implements dir.Core (§3.1, §3.3): invalidate the cached
// lines of a committing chunk's write set and disambiguate against the
// local chunks. A committing chunk named by immune is past its
// serialization point and survives (its copies still die, its younger
// siblings still squash).
func (p *Proc) BulkInvalidate(w *sig.Sig, lines []sig.Line, committer int, immune *msg.CTag) *msg.CTag {
	r := p.bulkInvalidate(w, lines, immune)
	if r == nil {
		return nil
	}
	tag := r.Tag
	return &tag
}

// bulkInvalidate is the full-information variant used by the ScalableBulk
// message path, which needs the recall payload.
func (p *Proc) bulkInvalidate(w *sig.Sig, lines []sig.Line, immune *msg.CTag) *msg.RecallInfo {
	for _, l := range lines {
		p.hier.Invalidate(l)
	}
	if p.committing != nil && p.committing.ConflictsWith(w) &&
		!(immune != nil && p.committing.Tag == *immune) {
		return p.squashInFlight(p.committing.TrulyConflictsWith(lines))
	}
	active := p.executing
	if active == nil {
		active = p.finished
	}
	if active != nil && active.ConflictsWith(w) {
		p.squashExecuting(active.TrulyConflictsWith(lines))
	}
	return nil
}

// InvalidateLine implements dir.Core: the per-line (Scalable TCC) variant.
// Disambiguation is exact — no signature aliasing. A committing chunk named
// by immune is past its serialization point and survives: the invalidating
// writer serializes after it, so the conflict is not a violation of the
// immune chunk's atomicity (its cached copy still dies, above).
func (p *Proc) InvalidateLine(l sig.Line, committer int, immune *msg.CTag) *msg.CTag {
	p.hier.Invalidate(l)
	one := []sig.Line{l}
	if p.committing != nil && p.committing.TrulyConflictsWith(one) &&
		!(immune != nil && p.committing.Tag == *immune) {
		r := p.squashInFlight(true)
		tag := r.Tag
		return &tag
	}
	active := p.executing
	if active == nil {
		active = p.finished
	}
	if active != nil && active.TrulyConflictsWith(one) {
		p.squashExecuting(true)
	}
	return nil
}

// MaybeDefer buffers an invalidation while a commit decision is pending
// (conservative mode, Figure 4(c)). Deferred messages are consumed — and
// only then acknowledged — when the decision arrives.
func (p *Proc) MaybeDefer(m *msg.Msg) bool {
	if !p.cfg.ConservativeInv || !p.awaiting || p.draining {
		return false
	}
	p.deferred = append(p.deferred, m)
	return true
}

func (p *Proc) drainDeferred() {
	if len(p.deferred) == 0 || p.draining {
		return
	}
	p.draining = true
	for len(p.deferred) > 0 {
		m := p.deferred[0]
		p.deferred = p.deferred[1:]
		p.Handle(m)
	}
	p.draining = false
}

// Handle dispatches a processor-side message.
func (p *Proc) Handle(m *msg.Msg) {
	switch m.Kind {
	case msg.CommitSuccess:
		p.CommitFinished(m.Tag)
	case msg.CommitFailure:
		// ScalableBulk failure notices carry the attempt index; stale
		// notices for already-retried attempts are discarded (§3.3 says
		// the same for failures arriving after an OCI squash).
		if p.committing != nil && p.committing.Tag == m.Tag &&
			uint64(p.committing.Retries) != m.TID {
			return
		}
		p.CommitRefused(m.Tag)
	case msg.ReadMemReply, msg.ReadShReply, msg.ReadDirtyReply:
		p.onReadReply(m)
	case msg.ReadNack:
		p.onReadNack(m)
	case msg.BulkInv:
		if p.MaybeDefer(m) {
			return
		}
		p.invTag, p.invTagOK = m.Tag, true
		recall := p.bulkInvalidate(&m.WSig, m.WriteLines, nil)
		p.invTagOK = false
		ack := &msg.Msg{Kind: msg.BulkInvAck, Src: p.ID, Dst: m.Src, Tag: m.Tag}
		if recall != nil && p.cfg.OCIRecall {
			ack.Recall = recall
		}
		p.env.Net.Send(ack)
	default:
		p.proto.HandleProc(p.ID, m)
	}
}

func (p *Proc) String() string {
	return fmt.Sprintf("P%d committed=%d acct=%+v", p.ID, p.Committed, p.Acct)
}

// DebugState renders the pipeline slots for deadlock diagnostics.
func (p *Proc) DebugState() string {
	f := func(c *chunk.Chunk) string {
		if c == nil {
			return "-"
		}
		return fmt.Sprintf("%s(try %d, sq %d)", c.Tag, c.Retries, c.Squashes)
	}
	return fmt.Sprintf("P%d done=%v committed=%d/%d committing=%s executing=%s finished=%s awaiting=%v deferred=%d pendingRead=%v",
		p.ID, p.done, p.Committed, p.target, f(p.committing), f(p.executing), f(p.finished),
		p.awaiting, len(p.deferred), p.pendingRead != nil)
}
