// Package cache models the private cache hierarchy of each tile: a
// write-through L1 and a write-back L2 (Table 2 of the paper: 32KB/4-way/32B
// L1 with 2-cycle round trip; 512KB/8-way/32B L2 with 8-cycle round trip).
//
// Because the machine executes chunks, writes are speculative until the
// chunk commits: written lines carry a speculative bit, are discarded on
// squash, and become ordinary dirty lines on commit (the commit itself never
// writes data back to memory — §2 of the paper).
package cache

import (
	"scalablebulk/internal/mem"
	"scalablebulk/internal/sig"
)

// Config sizes a cache.
type Config struct {
	SizeBytes int
	Assoc     int
}

// Line states.
type way struct {
	line  sig.Line
	valid bool
	dirty bool
	spec  bool
	lru   uint64
}

// Cache is a set-associative, LRU, single-line-size cache model.
type Cache struct {
	sets   [][]way
	mask   uint64
	clock  uint64
	lines  int
	misses uint64
	hits   uint64
}

// New builds a cache. SizeBytes/Assoc must yield a power-of-two set count.
func New(cfg Config) *Cache {
	lines := cfg.SizeBytes / mem.LineBytes
	nsets := lines / cfg.Assoc
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic("cache: set count must be a positive power of two")
	}
	sets := make([][]way, nsets)
	backing := make([]way, nsets*cfg.Assoc)
	for i := range sets {
		sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return &Cache{sets: sets, mask: uint64(nsets - 1)}
}

func (c *Cache) set(l sig.Line) []way { return c.sets[uint64(l)&c.mask] }

func (c *Cache) find(l sig.Line) *way {
	s := c.set(l)
	for i := range s {
		if s[i].valid && s[i].line == l {
			return &s[i]
		}
	}
	return nil
}

// Lookup reports whether the line is present, updating LRU state and hit
// counters. If write is true and the line is present, it is marked dirty
// and speculative (chunk writes are speculative until commit).
func (c *Cache) Lookup(l sig.Line, write bool) bool {
	c.clock++
	if w := c.find(l); w != nil {
		w.lru = c.clock
		if write {
			w.dirty = true
			w.spec = true
		}
		c.hits++
		return true
	}
	c.misses++
	return false
}

// Contains reports presence without perturbing LRU or counters.
func (c *Cache) Contains(l sig.Line) bool { return c.find(l) != nil }

// Fill inserts a line, evicting the LRU way if needed. It returns the
// victim line and whether the victim was dirty (needing writeback).
func (c *Cache) Fill(l sig.Line, dirty, spec bool) (victim sig.Line, victimDirty, evicted bool) {
	c.clock++
	if w := c.find(l); w != nil {
		w.lru = c.clock
		w.dirty = w.dirty || dirty
		w.spec = w.spec || spec
		return 0, false, false
	}
	s := c.set(l)
	vi := 0
	for i := range s {
		if !s[i].valid {
			vi = i
			break
		}
		if s[i].lru < s[vi].lru {
			vi = i
		}
	}
	v := &s[vi]
	victim, victimDirty, evicted = v.line, v.dirty && v.valid, v.valid
	if !v.valid {
		c.lines++
	}
	*v = way{line: l, valid: true, dirty: dirty, spec: spec, lru: c.clock}
	return victim, victimDirty, evicted
}

// Invalidate drops a line; it reports whether the line was present.
func (c *Cache) Invalidate(l sig.Line) bool {
	if w := c.find(l); w != nil {
		w.valid = false
		c.lines--
		return true
	}
	return false
}

// CommitSpec turns the speculative bit of a written line into an ordinary
// dirty bit (chunk commit). Missing lines (already evicted) are fine.
func (c *Cache) CommitSpec(l sig.Line) {
	if w := c.find(l); w != nil && w.spec {
		w.spec = false
		w.dirty = true
	}
}

// SquashSpec invalidates a speculatively written line (chunk squash), so a
// restarted chunk refetches clean data. Reports whether it was present.
func (c *Cache) SquashSpec(l sig.Line) bool {
	if w := c.find(l); w != nil && w.spec {
		w.valid = false
		c.lines--
		return true
	}
	return false
}

// IsDirty reports whether the line is present and dirty.
func (c *Cache) IsDirty(l sig.Line) bool {
	w := c.find(l)
	return w != nil && w.dirty
}

// Len returns the number of valid lines.
func (c *Cache) Len() int { return c.lines }

// HitRate returns hits/(hits+misses) since construction.
func (c *Cache) HitRate() float64 {
	tot := c.hits + c.misses
	if tot == 0 {
		return 0
	}
	return float64(c.hits) / float64(tot)
}

// Level identifies where an access was satisfied.
type Level int

const (
	// L1Hit: satisfied by the L1 (2-cycle round trip, hidden by the core).
	L1Hit Level = iota
	// L2Hit: satisfied by the private L2 (8-cycle round trip).
	L2Hit
	// Miss: must go to the home directory over the network.
	Miss
)

// Hierarchy couples a tile's write-through L1 with its write-back L2.
type Hierarchy struct {
	L1 *Cache
	L2 *Cache
	// Writebacks counts dirty L2 evictions (would be memory traffic).
	Writebacks uint64
}

// NewHierarchy builds the Table 2 hierarchy.
func NewHierarchy(l1, l2 Config) *Hierarchy {
	return &Hierarchy{L1: New(l1), L2: New(l2)}
}

// Access performs a load or store lookup. On L2 hit the line is refilled
// into L1. On Miss the caller must fetch the line (through the directory)
// and then call Fill.
func (h *Hierarchy) Access(l sig.Line, write bool) Level {
	if h.L1.Lookup(l, write) {
		if write {
			// Write-through: the L2 copy is updated too.
			h.L2.Fill(l, true, true)
		}
		return L1Hit
	}
	if h.L2.Lookup(l, write) {
		h.fillL1(l, write)
		return L2Hit
	}
	return Miss
}

// Fill installs a line fetched from the network into both levels.
func (h *Hierarchy) Fill(l sig.Line, write bool) {
	if _, wb, ev := h.L2.Fill(l, write, write); ev && wb {
		h.Writebacks++
	}
	h.fillL1(l, write)
}

func (h *Hierarchy) fillL1(l sig.Line, write bool) {
	if v, _, ev := h.L1.Fill(l, write, write); ev {
		_ = v // write-through L1: no writeback on eviction
	}
}

// Invalidate drops a line from both levels (bulk invalidation hit).
// It reports whether any level held the line.
func (h *Hierarchy) Invalidate(l sig.Line) bool {
	a := h.L1.Invalidate(l)
	b := h.L2.Invalidate(l)
	return a || b
}

// Commit finalizes a committed chunk's written lines.
func (h *Hierarchy) Commit(lines []sig.Line) {
	for _, l := range lines {
		h.L1.CommitSpec(l)
		h.L2.CommitSpec(l)
	}
}

// Squash discards a squashed chunk's speculatively written lines.
func (h *Hierarchy) Squash(lines []sig.Line) {
	for _, l := range lines {
		h.L1.SquashSpec(l)
		h.L2.SquashSpec(l)
	}
}
