package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scalablebulk/internal/sig"
)

func small() *Cache { return New(Config{SizeBytes: 1024, Assoc: 2}) } // 32 lines, 16 sets

func TestLookupMissThenFillHit(t *testing.T) {
	c := small()
	if c.Lookup(5, false) {
		t.Fatal("hit in empty cache")
	}
	c.Fill(5, false, false)
	if !c.Lookup(5, false) {
		t.Fatal("miss after fill")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // assoc 2: lines l, l+16, l+32 map to the same set
	c.Fill(0, false, false)
	c.Fill(16, false, false)
	c.Lookup(0, false) // make 0 most recent
	v, _, ev := c.Fill(32, false, false)
	if !ev || v != 16 {
		t.Fatalf("evicted %d (ev=%v), want 16", v, ev)
	}
	if !c.Contains(0) || !c.Contains(32) || c.Contains(16) {
		t.Fatal("wrong survivor set")
	}
}

func TestDirtyVictimReported(t *testing.T) {
	c := small()
	c.Fill(0, true, false)
	c.Fill(16, false, false)
	_, wb, ev := c.Fill(32, false, false)
	if !ev || !wb {
		t.Fatal("dirty victim not reported for writeback")
	}
}

func TestWriteMarksSpeculative(t *testing.T) {
	c := small()
	c.Fill(7, false, false)
	c.Lookup(7, true)
	if !c.IsDirty(7) {
		t.Fatal("write did not mark dirty")
	}
	if !c.SquashSpec(7) {
		t.Fatal("speculative line not squashable")
	}
	if c.Contains(7) {
		t.Fatal("squashed line still present")
	}
}

func TestCommitSpecMakesLineNonSpeculative(t *testing.T) {
	c := small()
	c.Fill(9, true, true)
	c.CommitSpec(9)
	if c.SquashSpec(9) {
		t.Fatal("committed line was squashed")
	}
	if !c.IsDirty(9) || !c.Contains(9) {
		t.Fatal("committed line lost dirtiness or presence")
	}
}

func TestSquashOnlySpeculative(t *testing.T) {
	c := small()
	c.Fill(3, true, false) // dirty but not speculative
	if c.SquashSpec(3) {
		t.Fatal("non-speculative line squashed")
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Fill(11, false, false)
	if !c.Invalidate(11) || c.Contains(11) {
		t.Fatal("invalidate failed")
	}
	if c.Invalidate(11) {
		t.Fatal("double invalidate reported presence")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two set count did not panic")
		}
	}()
	New(Config{SizeBytes: 96, Assoc: 1})
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(Config{SizeBytes: 1024, Assoc: 2}, Config{SizeBytes: 8192, Assoc: 4})
	if h.Access(42, false) != Miss {
		t.Fatal("expected Miss on cold access")
	}
	h.Fill(42, false)
	if h.Access(42, false) != L1Hit {
		t.Fatal("expected L1 hit after fill")
	}
	// Evict 42 from tiny L1 by filling its set, keeping L2 copy.
	for i := 0; i < 8; i++ {
		h.fillL1(sig.Line(42+32*(i+1)), false)
	}
	if h.Access(42, false) != L2Hit {
		t.Fatal("expected L2 hit after L1 eviction")
	}
	if h.Access(42, false) != L1Hit {
		t.Fatal("L2 hit must refill L1")
	}
}

func TestHierarchyWriteThrough(t *testing.T) {
	h := NewHierarchy(Config{SizeBytes: 1024, Assoc: 2}, Config{SizeBytes: 8192, Assoc: 4})
	h.Fill(5, false)
	h.Access(5, true) // L1 write hit must propagate dirty+spec to L2
	if !h.L2.IsDirty(5) {
		t.Fatal("write-through did not dirty L2")
	}
	h.Squash([]sig.Line{5})
	if h.L1.Contains(5) || h.L2.Contains(5) {
		t.Fatal("squash left speculative line")
	}
}

func TestHierarchyCommit(t *testing.T) {
	h := NewHierarchy(Config{SizeBytes: 1024, Assoc: 2}, Config{SizeBytes: 8192, Assoc: 4})
	h.Fill(6, true)
	h.Commit([]sig.Line{6})
	h.Squash([]sig.Line{6}) // no-op after commit
	if !h.L2.Contains(6) {
		t.Fatal("committed line lost")
	}
}

func TestHierarchyInvalidate(t *testing.T) {
	h := NewHierarchy(Config{SizeBytes: 1024, Assoc: 2}, Config{SizeBytes: 8192, Assoc: 4})
	h.Fill(8, false)
	if !h.Invalidate(8) {
		t.Fatal("invalidate missed present line")
	}
	if h.Access(8, false) != Miss {
		t.Fatal("line still cached after invalidate")
	}
}

func TestWritebackCounting(t *testing.T) {
	h := NewHierarchy(Config{SizeBytes: 1024, Assoc: 2}, Config{SizeBytes: 1024, Assoc: 2})
	// Fill L2 set 0 (lines 0, 16) dirty, then force eviction.
	h.Fill(0, true)
	h.Fill(16, true)
	h.Fill(32, true)
	if h.Writebacks == 0 {
		t.Fatal("dirty eviction not counted as writeback")
	}
}

func TestHitRate(t *testing.T) {
	c := small()
	c.Fill(1, false, false)
	c.Lookup(1, false)
	c.Lookup(2, false)
	if hr := c.HitRate(); hr != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", hr)
	}
}

// Property: the cache never exceeds capacity, and a line just filled is
// always present until something else in its set evicts it.
func TestPropertyCapacityAndPresence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(Config{SizeBytes: 2048, Assoc: 4}) // 64 lines
		for i := 0; i < 500; i++ {
			l := sig.Line(rng.Intn(256))
			if !c.Lookup(l, rng.Intn(4) == 0) {
				c.Fill(l, false, false)
				if !c.Contains(l) {
					return false
				}
			}
			if c.Len() > 64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: LRU respects recency — in a fresh set, after touching k lines in
// order and inserting one more, the evicted line is the least recently used.
func TestPropertyLRUOrder(t *testing.T) {
	f := func(perm8 uint8) bool {
		c := New(Config{SizeBytes: 512, Assoc: 4}) // 4 sets, assoc 4
		// Same set: lines 0,4,8,12 (set count = 4).
		lines := []sig.Line{0, 4, 8, 12}
		for _, l := range lines {
			c.Fill(l, false, false)
		}
		first := lines[int(perm8)%4]
		// Touch all but `first`, so `first` is LRU.
		for _, l := range lines {
			if l != first {
				c.Lookup(l, false)
			}
		}
		v, _, ev := c.Fill(16, false, false)
		return ev && v == first
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
