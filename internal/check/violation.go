// Typed violation reporting: each recorded violation names the invariant it
// breaks, and the fold-up error is a structured errors.Is/As target — callers
// assert on invariant identity, never on message text.
package check

import (
	"errors"
	"fmt"
	"strings"
)

// Invariant identifies which of the checker's invariants a violation breaks.
type Invariant int

const (
	// I1 is CST occupancy accounting (held once per attempt, released only
	// if held, nothing held at end of run).
	I1 Invariant = 1 + iota
	// I2 is program order: in-order, exactly-once commits, each preceded by
	// a request and a group formation.
	I2
	// I3 is invalidation pairing: every delivered ack answers a real
	// invalidation.
	I3
	// I4 is liveness: every processor reaches its full chunk target.
	I4
	// I5 is write visibility: directory writes only from processors that
	// reached a serialization point.
	I5
)

// String renders the conventional invariant name ("I1" … "I5").
func (i Invariant) String() string {
	if i < I1 || i > I5 {
		return fmt.Sprintf("I?(%d)", int(i))
	}
	return fmt.Sprintf("I%d", int(i))
}

// Violation is one recorded invariant break.
type Violation struct {
	Inv Invariant `json:"invariant"`
	Msg string    `json:"msg"`
}

func (v Violation) String() string { return v.Inv.String() + ": " + v.Msg }

// ErrViolation marks any invariant-checker failure; test with errors.Is.
// The concrete *ViolationError carries the individual violations and, when
// the system layer produced it, a machine dump.
var ErrViolation = errors.New("invariant violated")

// ViolationError folds a run's violations into one error. It unwraps to
// ErrViolation, and Is additionally matches a bare Invariant target, so
// errors.Is(err, check.I2) asserts "some I2 violation occurred".
type ViolationError struct {
	Violations []Violation
	// Dropped counts violations past the recording cap.
	Dropped int
	// Dump is the machine state at the end of the run (stuck processors +
	// protocol module state), attached by the system layer.
	Dump string
	// Flight is the flight recorder's tail (rendered trace lines, oldest
	// first) when the run kept one, attached by the system layer.
	Flight []string
}

func (e *ViolationError) Error() string {
	n := len(e.Violations) + e.Dropped
	s := fmt.Sprintf("check: %d invariant violation(s): %s", n, e.Violations[0])
	if n > 1 {
		s += fmt.Sprintf(" (and %d more)", n-1)
	}
	if e.Dump != "" {
		s += "\nmachine state:\n" + e.Dump
	}
	if len(e.Flight) > 0 {
		s += fmt.Sprintf("\nflight recorder (last %d events):\n%s",
			len(e.Flight), strings.Join(e.Flight, "\n"))
	}
	return s
}

// Unwrap lets errors.Is(err, ErrViolation) match.
func (e *ViolationError) Unwrap() error { return ErrViolation }

// Is matches a bare Invariant target: errors.Is(err, check.I1) holds when
// any recorded violation is an I1 break.
func (e *ViolationError) Is(target error) bool {
	inv, ok := target.(Invariant)
	if !ok {
		return false
	}
	for _, v := range e.Violations {
		if v.Inv == inv {
			return true
		}
	}
	return false
}

// Error lets a bare Invariant be used as an errors.Is target.
func (i Invariant) Error() string { return "invariant " + i.String() + " violated" }

// Render lists every violation, one per line.
func (e *ViolationError) Render() string {
	var b strings.Builder
	for _, v := range e.Violations {
		fmt.Fprintln(&b, v)
	}
	if e.Dropped > 0 {
		fmt.Fprintf(&b, "... (%d more violations dropped)\n", e.Dropped)
	}
	return b.String()
}
