package check

import (
	"errors"
	"strings"
	"testing"

	"scalablebulk/internal/chunk"
	"scalablebulk/internal/msg"
)

func mkChunk(proc int, seq uint64) *chunk.Chunk {
	return &chunk.Chunk{Tag: msg.CTag{Proc: proc, Seq: seq}}
}

// commit drives the legal milestone sequence for one chunk.
func commit(c *Checker, proc int, seq uint64) {
	c.CommitRequested(proc, mkChunk(proc, seq))
	c.Formed(proc, seq, 0, 10)
	c.ChunkCommitted(proc, seq, 20)
}

// wantInvariant asserts that the checker's error identifies inv (and only
// matches the invariants in invs), via the errors.Is contract — no string
// matching on message text.
func wantInvariant(t *testing.T, c *Checker, invs ...Invariant) *ViolationError {
	t.Helper()
	err := c.Err()
	if err == nil {
		t.Fatalf("violation not detected")
	}
	if !errors.Is(err, ErrViolation) {
		t.Fatalf("error does not match ErrViolation: %v", err)
	}
	var ve *ViolationError
	if !errors.As(err, &ve) {
		t.Fatalf("error is not a *ViolationError: %T", err)
	}
	for _, inv := range invs {
		if !errors.Is(err, inv) {
			t.Errorf("errors.Is(err, %v) = false, violations: %v", inv, ve.Violations)
		}
	}
	for inv := I1; inv <= I5; inv++ {
		want := false
		for _, w := range invs {
			if w == inv {
				want = true
			}
		}
		if !want && errors.Is(err, inv) {
			t.Errorf("errors.Is(err, %v) = true for an invariant that did not break: %v", inv, ve.Violations)
		}
	}
	return ve
}

func TestCleanRunHasNoViolations(t *testing.T) {
	c := New(2)
	for p := 0; p < 2; p++ {
		for s := uint64(0); s < 3; s++ {
			commit(c, p, s)
		}
	}
	c.Finish(2, 3)
	if err := c.Err(); err != nil {
		t.Fatalf("clean run reported: %v", err)
	}
	if c.Count() != 0 {
		t.Fatalf("Count = %d on a clean run", c.Count())
	}
}

// TestInvariantI1Occupancy: double hold, orphan release, and an end-of-run
// leak all report I1.
func TestInvariantI1Occupancy(t *testing.T) {
	c := New(4)
	tag := msg.CTag{Proc: 1, Seq: 7}
	c.Held(2, tag, 0)
	c.Held(2, tag, 0) // double hold
	c.Released(2, tag, 0)
	c.Released(2, tag, 0) // orphan release
	c.Held(3, tag, 1)     // leaked at finish
	c.Finish(0, 0)
	ve := wantInvariant(t, c, I1)
	if len(ve.Violations) != 3 {
		t.Fatalf("want double-hold + orphan-release + leak, got %v", ve.Violations)
	}
	for _, v := range ve.Violations {
		if v.Inv != I1 {
			t.Errorf("violation %v attributed to %v, want I1", v.Msg, v.Inv)
		}
	}
}

// TestInvariantI2DoubleCommit: committing the same chunk twice reports I2.
func TestInvariantI2DoubleCommit(t *testing.T) {
	c := New(1)
	commit(c, 0, 0)
	c.ChunkCommitted(0, 0, 30)
	wantInvariant(t, c, I2)
}

// TestInvariantI2ProgramOrder: out-of-order commits report I2.
func TestInvariantI2ProgramOrder(t *testing.T) {
	c := New(1)
	commit(c, 0, 1)
	commit(c, 0, 0)
	wantInvariant(t, c, I2)
}

// TestInvariantI2CommitWithoutRequestOrFormation: a commit with no request
// and no formation reports both I2 breaks.
func TestInvariantI2CommitWithoutRequestOrFormation(t *testing.T) {
	c := New(1)
	c.ChunkCommitted(0, 0, 5)
	ve := wantInvariant(t, c, I2)
	if len(ve.Violations) != 2 {
		t.Fatalf("want request + formation violations, got %v", ve.Violations)
	}
}

// TestInvariantI2DoubleSuccess: a successful attempt end after the chunk
// already committed reports I2.
func TestInvariantI2DoubleSuccess(t *testing.T) {
	c := New(1)
	commit(c, 0, 0)
	c.Ended(0, 0, 1, 40, true)
	wantInvariant(t, c, I2)
}

// TestInvariantI3PhantomAck: an ack answering no real invalidation reports
// I3; duplicated legal acks do not.
func TestInvariantI3PhantomAck(t *testing.T) {
	c := New(4)
	tag := msg.CTag{Proc: 0, Seq: 1}
	c.Sent(&msg.Msg{Kind: msg.BulkInv, Src: 0, Dst: 2, Tag: tag})
	// Legal ack (and a duplicate of it — duplication is not a violation).
	ack := &msg.Msg{Kind: msg.BulkInvAck, Src: 2, Dst: 0, Tag: tag}
	c.Delivered(ack)
	c.Delivered(ack)
	if err := c.Err(); err != nil {
		t.Fatalf("legal ack flagged: %v", err)
	}
	// Phantom: node 3 was never sent the invalidation.
	c.Delivered(&msg.Msg{Kind: msg.BulkInvAck, Src: 3, Dst: 0, Tag: tag})
	wantInvariant(t, c, I3)
}

// TestInvariantI4LivenessShortfall: a processor short of its chunk target
// reports I4.
func TestInvariantI4LivenessShortfall(t *testing.T) {
	c := New(1)
	commit(c, 0, 0)
	c.Finish(1, 2)
	wantInvariant(t, c, I4)
}

// TestInvariantI5ApplyWithoutFormation: a directory write from a processor
// that never reached a serialization point reports I5.
func TestInvariantI5ApplyWithoutFormation(t *testing.T) {
	c := New(2)
	c.Apply(42, 1)
	wantInvariant(t, c, I5)
}

// TestViolationErrorCarriesDump: the system layer attaches the machine dump
// to the folded error; the rendered error must include it so a violation
// report is actionable without re-running.
func TestViolationErrorCarriesDump(t *testing.T) {
	c := New(1)
	c.ChunkCommitted(0, 0, 5)
	err := c.Err()
	var ve *ViolationError
	if !errors.As(err, &ve) {
		t.Fatalf("not a *ViolationError: %T", err)
	}
	ve.Dump = "P0 stuck committing chunk 0"
	if !strings.Contains(ve.Error(), "P0 stuck committing chunk 0") {
		t.Fatalf("dump missing from rendered error:\n%s", ve.Error())
	}
	if !strings.Contains(ve.Render(), "I2:") {
		t.Fatalf("Render does not name the invariant:\n%s", ve.Render())
	}
}

// TestCountTracksDropped: Count includes violations past the recording cap.
func TestCountTracksDropped(t *testing.T) {
	c := New(1)
	for i := 0; i < maxViolations+5; i++ {
		c.Apply(1, 0)
	}
	if c.Count() != maxViolations+5 {
		t.Fatalf("Count = %d, want %d", c.Count(), maxViolations+5)
	}
	var ve *ViolationError
	if !errors.As(c.Err(), &ve) || ve.Dropped != 5 {
		t.Fatalf("Dropped not folded into the error: %+v", ve)
	}
}
