package check

import (
	"strings"
	"testing"

	"scalablebulk/internal/chunk"
	"scalablebulk/internal/msg"
)

func mkChunk(proc int, seq uint64) *chunk.Chunk {
	return &chunk.Chunk{Tag: msg.CTag{Proc: proc, Seq: seq}}
}

// commit drives the legal milestone sequence for one chunk.
func commit(c *Checker, proc int, seq uint64) {
	c.CommitRequested(proc, mkChunk(proc, seq))
	c.Formed(proc, seq, 0, 10)
	c.ChunkCommitted(proc, seq, 20)
}

func TestCleanRunHasNoViolations(t *testing.T) {
	c := New(2)
	for p := 0; p < 2; p++ {
		for s := uint64(0); s < 3; s++ {
			commit(c, p, s)
		}
	}
	c.Finish(2, 3)
	if err := c.Err(); err != nil {
		t.Fatalf("clean run reported: %v", err)
	}
}

func TestDoubleCommitDetected(t *testing.T) {
	c := New(1)
	commit(c, 0, 0)
	c.ChunkCommitted(0, 0, 30)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("double commit not detected: %v", err)
	}
}

func TestProgramOrderDetected(t *testing.T) {
	c := New(1)
	commit(c, 0, 1)
	commit(c, 0, 0)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "program order") {
		t.Fatalf("out-of-order commit not detected: %v", err)
	}
}

func TestCommitWithoutRequestOrFormation(t *testing.T) {
	c := New(1)
	c.ChunkCommitted(0, 0, 5)
	v := c.Violations()
	if len(v) != 2 {
		t.Fatalf("want request + formation violations, got %v", v)
	}
}

func TestOccupancyAccounting(t *testing.T) {
	c := New(4)
	tag := msg.CTag{Proc: 1, Seq: 7}
	c.Held(2, tag, 0)
	c.Held(2, tag, 0) // double hold
	c.Released(2, tag, 0)
	c.Released(2, tag, 0) // orphan release
	c.Held(3, tag, 1)     // leaked at finish
	c.Finish(0, 0)
	v := c.Violations()
	if len(v) != 3 {
		t.Fatalf("want double-hold + orphan-release + leak, got %v", v)
	}
	if !strings.Contains(v[2], "end of run") {
		t.Fatalf("leak not reported at finish: %v", v)
	}
}

func TestPhantomAckDetected(t *testing.T) {
	c := New(4)
	tag := msg.CTag{Proc: 0, Seq: 1}
	c.Sent(&msg.Msg{Kind: msg.BulkInv, Src: 0, Dst: 2, Tag: tag})
	// Legal ack (and a duplicate of it — duplication is not a violation).
	ack := &msg.Msg{Kind: msg.BulkInvAck, Src: 2, Dst: 0, Tag: tag}
	c.Delivered(ack)
	c.Delivered(ack)
	if err := c.Err(); err != nil {
		t.Fatalf("legal ack flagged: %v", err)
	}
	// Phantom: node 3 was never sent the invalidation.
	c.Delivered(&msg.Msg{Kind: msg.BulkInvAck, Src: 3, Dst: 0, Tag: tag})
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "answers no invalidation") {
		t.Fatalf("phantom ack not detected: %v", err)
	}
}

func TestLivenessShortfallDetected(t *testing.T) {
	c := New(1)
	commit(c, 0, 0)
	c.Finish(1, 2)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "committed 1 of 2") {
		t.Fatalf("shortfall not detected: %v", err)
	}
}

func TestApplyWithoutFormationDetected(t *testing.T) {
	c := New(2)
	c.Apply(42, 1)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "never formed") {
		t.Fatalf("unformed writer not detected: %v", err)
	}
}
