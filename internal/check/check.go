// Package check is an online invariant checker for the simulated commit
// protocols. It observes the machine through the hooks the subsystems expose
// (dir.Probe commit milestones, directory write applications, the stats
// collector's formation/end events, the ScalableBulk CST occupancy hooks and
// the mesh's send/deliver taps) and records a violation the moment an
// invariant breaks — with the fault injector active, this is what turns "the
// run completed" into "the run completed and the protocol behaved".
//
// Invariants:
//
//	I1 CST occupancy accounting: a module occupancy is acquired at most once
//	   per attempt, released only if held, and no occupancy survives the run.
//	I2 Program order: each processor commits its chunks in strictly
//	   ascending sequence order, exactly once each, and only after a commit
//	   request and a successful group formation for that chunk.
//	I3 Invalidation pairing: an invalidation ack delivered to a collector
//	   must answer an invalidation that was actually sent to that responder
//	   (duplicated acks are legal — duplicated *phantom* acks are not).
//	I4 Liveness: at the end of the run every processor committed its full
//	   chunk target.
//	I5 Write visibility: directory write applications only come from
//	   processors that reached a serialization point (formed a group).
package check

import (
	"fmt"

	"scalablebulk/internal/chunk"
	"scalablebulk/internal/dir"
	"scalablebulk/internal/event"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/sig"
)

// maxViolations bounds the report; past it only the counter moves.
const maxViolations = 64

type procSeq struct {
	proc int
	seq  uint64
}

type occKey struct {
	module int
	tag    msg.CTag
	try    int
}

type invKey struct {
	kind      msg.Kind // the invalidation kind (not the ack kind)
	tag       msg.CTag
	responder int
}

// Checker accumulates invariant violations. It implements dir.Probe. All
// methods are safe on the simulator's single event thread only.
type Checker struct {
	violations []Violation
	Dropped    int // violations past maxViolations

	held      map[occKey]bool
	requested map[procSeq]bool
	formed    map[procSeq]bool
	committed map[procSeq]bool
	lastSeq   map[int]uint64
	hasLast   map[int]bool
	sentInv   map[invKey]bool
	everForm  map[int]bool
}

var _ dir.Probe = (*Checker)(nil)

// New builds a checker for an n-node machine.
func New(n int) *Checker {
	return &Checker{
		held:      make(map[occKey]bool),
		requested: make(map[procSeq]bool),
		formed:    make(map[procSeq]bool),
		committed: make(map[procSeq]bool),
		lastSeq:   make(map[int]uint64),
		hasLast:   make(map[int]bool),
		sentInv:   make(map[invKey]bool),
		everForm:  make(map[int]bool),
	}
}

func (c *Checker) violate(inv Invariant, format string, args ...any) {
	if len(c.violations) >= maxViolations {
		c.Dropped++
		return
	}
	c.violations = append(c.violations, Violation{Inv: inv, Msg: fmt.Sprintf(format, args...)})
}

// Count returns the number of violations recorded so far (dropped included).
// The model-checking explorer polls it after every delivery to stop a failing
// schedule at the exact step the first invariant broke.
func (c *Checker) Count() int { return len(c.violations) + c.Dropped }

// CommitRequested implements dir.Probe.
func (c *Checker) CommitRequested(proc int, ck *chunk.Chunk) {
	c.requested[procSeq{proc, ck.Tag.Seq}] = true
}

// ChunkCommitted implements dir.Probe: the exactly-once, in-order,
// requested-and-formed checks (I2).
func (c *Checker) ChunkCommitted(proc int, seq uint64, t event.Time) {
	k := procSeq{proc, seq}
	if c.committed[k] {
		c.violate(I2, "P%d committed chunk %d twice (t=%d)", proc, seq, t)
	}
	c.committed[k] = true
	if !c.requested[k] {
		c.violate(I2, "P%d committed chunk %d without a commit request", proc, seq)
	}
	if !c.formed[k] {
		c.violate(I2, "P%d committed chunk %d without forming a group", proc, seq)
	}
	if c.hasLast[proc] && seq <= c.lastSeq[proc] {
		c.violate(I2, "P%d committed chunk %d after chunk %d: program order broken",
			proc, seq, c.lastSeq[proc])
	}
	c.lastSeq[proc] = seq
	c.hasLast[proc] = true
}

// Held observes a ScalableBulk CST occupancy acquisition (I1).
func (c *Checker) Held(module int, tag msg.CTag, try int) {
	k := occKey{module, tag, try}
	if c.held[k] {
		c.violate(I1, "D%d held twice by %s try %d", module, tag, try)
	}
	c.held[k] = true
}

// Released observes a ScalableBulk CST occupancy release (I1).
func (c *Checker) Released(module int, tag msg.CTag, try int) {
	k := occKey{module, tag, try}
	if !c.held[k] {
		c.violate(I1, "D%d released by %s try %d without being held", module, tag, try)
	}
	delete(c.held, k)
}

// Formed observes a group formation (serialization point) via the stats
// collector.
func (c *Checker) Formed(proc int, seq uint64, try int, t event.Time) {
	c.formed[procSeq{proc, seq}] = true
	c.everForm[proc] = true
}

// Ended observes a commit attempt ending. A successful end after the chunk
// already committed would be a double serialization (I2).
func (c *Checker) Ended(proc int, seq uint64, try int, t event.Time, success bool) {
	if success && c.committed[procSeq{proc, seq}] {
		c.violate(I2, "P%d chunk %d ended successfully twice", proc, seq)
	}
}

// Apply observes a committed-write application to the directory state (I5).
func (c *Checker) Apply(l sig.Line, writer int) {
	if !c.everForm[writer] {
		c.violate(I5, "line %d written by P%d which never formed a group", l, writer)
	}
}

// invalPair maps an ack kind to the invalidation kind it answers.
func invalPair(k msg.Kind) (msg.Kind, bool) {
	switch k {
	case msg.BulkInvAck:
		return msg.BulkInv, true
	case msg.SeqInvalAck:
		return msg.SeqInval, true
	case msg.ArbInvAck:
		return msg.ArbInv, true
	case msg.TCCInvalAck:
		return msg.TCCInval, true
	}
	return 0, false
}

func isInval(k msg.Kind) bool {
	switch k {
	case msg.BulkInv, msg.SeqInval, msg.ArbInv, msg.TCCInval:
		return true
	}
	return false
}

// Sent taps mesh.Network.OnSend: record invalidations on the wire.
func (c *Checker) Sent(m *msg.Msg) {
	if isInval(m.Kind) {
		c.sentInv[invKey{m.Kind, m.Tag, m.Dst}] = true
	}
}

// Delivered taps mesh.Network.OnDeliver: an arriving ack must answer an
// invalidation that was really sent to that responder (I3). The injector
// duplicates deliveries, never invents them, so a miss here means a protocol
// fabricated or misrouted an ack.
func (c *Checker) Delivered(m *msg.Msg) {
	if inv, ok := invalPair(m.Kind); ok {
		if !c.sentInv[invKey{inv, m.Tag, m.Src}] {
			c.violate(I3, "%s from P%d for %s answers no invalidation", m.Kind, m.Src, m.Tag)
		}
	}
}

// Finish runs the end-of-run checks (I1 leaks, I4 liveness): every processor
// committed chunks [0, perProc) and no CST occupancy is still held.
func (c *Checker) Finish(procs, perProc int) {
	for p := 0; p < procs; p++ {
		n := 0
		for seq := uint64(0); seq < uint64(perProc); seq++ {
			if c.committed[procSeq{p, seq}] {
				n++
			}
		}
		if n != perProc {
			c.violate(I4, "P%d committed %d of %d chunks", p, n, perProc)
		}
	}
	for k := range c.held {
		c.violate(I1, "D%d still held by %s try %d at end of run", k.module, k.tag, k.try)
	}
}

// Violations returns the recorded violations (nil when clean).
func (c *Checker) Violations() []Violation {
	return append([]Violation(nil), c.violations...)
}

// Err folds the violations into one error, nil when the run was clean. The
// concrete type is *ViolationError; errors.Is(err, ErrViolation) and
// errors.Is(err, check.I2) both match.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	return &ViolationError{Violations: c.Violations(), Dropped: c.Dropped}
}
