package system_test

import (
	"fmt"
	"testing"

	"scalablebulk/internal/fault"
	"scalablebulk/internal/system"
	"scalablebulk/internal/workload"
)

// soakProfiles are the fault scenarios the soak sweeps. chaos combines
// jitter, duplication, loss and a hot node, so every recovery path fires.
var soakProfiles = []string{"jitter", "dup", "loss", "chaos"}

func soakConfig(t *testing.T, protocol, profile string, seed int64) system.Config {
	t.Helper()
	cfg := system.DefaultConfig(8, protocol)
	cfg.ChunksPerCore = 4
	cfg.Seed = seed
	cfg.Check = true
	p, err := fault.ByName(profile)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = p
	return cfg
}

// TestChaosSoak sweeps every protocol across fault profiles and seeds: each
// run must complete every chunk with zero invariant violations and no
// watchdog-proof deadlock (a MaxCycles abort fails the subtest with the
// machine dump).
func TestChaosSoak(t *testing.T) {
	prof, _ := workload.ByName("Radix")
	seeds := 8
	if testing.Short() {
		seeds = 2
	}
	for _, protocol := range system.Protocols {
		for _, fp := range soakProfiles {
			for s := 1; s <= seeds; s++ {
				protocol, fp, seed := protocol, fp, int64(s)
				t.Run(fmt.Sprintf("%s/%s/seed%d", protocol, fp, seed), func(t *testing.T) {
					t.Parallel()
					cfg := soakConfig(t, protocol, fp, seed)
					res, err := system.Run(prof, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if want := uint64(cfg.Cores * cfg.ChunksPerCore); res.ChunksCommitted != want {
						t.Fatalf("committed %d of %d chunks", res.ChunksCommitted, want)
					}
					if err := res.Validate(); err != nil {
						t.Fatal(err)
					}
					if res.Faults == nil || res.Faults.Planned == 0 {
						t.Fatal("fault injector never ran")
					}
				})
			}
		}
	}
}

// TestChaosReplayIdentical pins the determinism guarantee: the same
// (config, seed, profile) replays bit-identically — same finish time, same
// message count, same fault draw sequence.
func TestChaosReplayIdentical(t *testing.T) {
	prof, _ := workload.ByName("Barnes")
	for _, protocol := range system.Protocols {
		protocol := protocol
		t.Run(protocol, func(t *testing.T) {
			t.Parallel()
			cfg := soakConfig(t, protocol, "chaos", 3)
			a, err := system.Run(prof, cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := system.Run(prof, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a.Cycles != b.Cycles {
				t.Fatalf("cycles differ across replays: %d vs %d", a.Cycles, b.Cycles)
			}
			if a.Traffic.Messages != b.Traffic.Messages {
				t.Fatalf("message counts differ: %d vs %d", a.Traffic.Messages, b.Traffic.Messages)
			}
			if *a.Faults != *b.Faults {
				t.Fatalf("fault draws differ: %v vs %v", a.Faults, b.Faults)
			}
			if a.Breakdown != b.Breakdown {
				t.Fatalf("cycle breakdowns differ")
			}
		})
	}
}

// TestFaultSeedIndependentOfRunSeed: changing only FaultSeed changes the
// fault draw sequence but still completes cleanly — the injector's PRNG is
// its own stream, not entangled with workload generation.
func TestFaultSeedIndependentOfRunSeed(t *testing.T) {
	prof, _ := workload.ByName("Radix")
	cfg := soakConfig(t, system.ProtoScalableBulk, "chaos", 3)
	cfg.FaultSeed = 1001
	a, err := system.Run(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FaultSeed = 1002
	b, err := system.Run(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a.Faults == *b.Faults {
		t.Fatal("different fault seeds drew identical fault sequences")
	}
}

// TestFaultsOffIsBitNeutral: a nil profile must not perturb the simulation —
// the interposer is only consulted when set, so fault-free numbers match the
// pre-fault-injector baseline exactly.
func TestFaultsOffIsBitNeutral(t *testing.T) {
	prof, _ := workload.ByName("Radix")
	cfg := system.DefaultConfig(8, system.ProtoScalableBulk)
	cfg.ChunksPerCore = 4
	cfg.Seed = 3
	a, err := system.Run(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	off, err := fault.ByName("off")
	if err != nil || off != nil {
		t.Fatalf("off profile = %v, %v", off, err)
	}
	cfg.Faults = off
	b, err := system.Run(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Traffic.Messages != b.Traffic.Messages {
		t.Fatalf("nil profile perturbed the run: %d/%d vs %d/%d cycles/messages",
			a.Cycles, a.Traffic.Messages, b.Cycles, b.Traffic.Messages)
	}
	if b.Faults != nil {
		t.Fatal("fault stats reported with faults off")
	}
	// The checker is also timing-neutral: it only observes. (Its post-run
	// drain executes straggler events, so message *counts* legitimately
	// grow; the finish time must not.)
	cfg.Check = true
	c, err := system.Run(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycles != a.Cycles {
		t.Fatalf("checker perturbed the finish time: %d vs %d", c.Cycles, a.Cycles)
	}
	if !c.Checked {
		t.Fatal("Checked not reported")
	}
}
