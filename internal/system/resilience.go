// Execution-resilience layer: structured abort errors for cancellation and
// wall-clock deadlines, panic wrapping with machine context, and a retry
// policy that escalates the cycle budget for transient MaxCycles aborts
// under fault injection. The sweep engine and the CLIs build their crash
// bundles, checkpoint journals and graceful shutdown on these primitives.
package system

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"scalablebulk/internal/event"
	"scalablebulk/internal/workload"
)

// ctxPollInterval is how many executed events pass between cancellation /
// deadline checks in the event loop — frequent enough that a 64-core run
// reacts to SIGTERM in well under a millisecond, rare enough that the check
// is invisible in profiles.
const ctxPollInterval = 4096

// ErrAborted marks a run stopped by cancellation or a wall-clock deadline —
// the machine was live, the caller just withdrew its budget. Test with
// errors.Is; the concrete *AbortError carries the cause.
var ErrAborted = errors.New("simulation aborted")

// AbortError reports a cancellation or deadline abort, as opposed to a
// *DeadlockError (the machine stopped making progress). Cause is
// context.Canceled for cancellation and context.DeadlineExceeded for either
// the context's deadline or Config.RunTimeout.
type AbortError struct {
	App      string
	Protocol string
	Cores    int
	Cycle    event.Time // simulated time reached when the run was aborted
	Cause    error
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("system: %s/%s/%d aborted at cycle %d: %v",
		e.App, e.Protocol, e.Cores, e.Cycle, e.Cause)
}

// Unwrap lets errors.Is match both ErrAborted and the context cause.
func (e *AbortError) Unwrap() []error { return []error{ErrAborted, e.Cause} }

// RunPanic wraps a panic that escaped a simulation with the machine context
// at the moment of failure: the simulated cycle reached, a truncated machine
// dump, and the Go stack of the panicking goroutine. RunContext re-panics
// with it so sweep workers can recover one crashing point into a crash
// bundle while the rest of the sweep keeps running.
type RunPanic struct {
	App      string
	Protocol string
	Cores    int
	Cycle    event.Time
	Dump     string // truncated machine dump (MaxDumpLines)
	Stack    string // Go stack at the panic
	Value    any    // the original panic value
	// Flight is the flight recorder's tail (rendered text lines, oldest
	// first) when Config.FlightRecorder was enabled.
	Flight []string
}

func (p *RunPanic) String() string {
	return fmt.Sprintf("system: %s/%s/%d panicked at cycle %d: %v",
		p.App, p.Protocol, p.Cores, p.Cycle, p.Value)
}

// RetryPolicy retries transient aborts: a MaxCycles exhaustion under an
// enabled fault profile means the machine was still live but the fault
// schedule made it slow, so the point is re-run with an escalated cycle
// budget after a bounded, jittered backoff. Deadlocks on fault-free runs and
// cancellation aborts are never retried.
type RetryPolicy struct {
	// MaxAttempts caps total attempts, the first included (≤0 selects 3).
	MaxAttempts int
	// BudgetFactor multiplies MaxCycles on each retry (≤1 selects 4).
	BudgetFactor float64
	// Backoff is the pause before the first retry, doubling each further
	// retry (0 selects 25ms).
	Backoff time.Duration
	// MaxBackoff bounds any single pause (0 selects 2s).
	MaxBackoff time.Duration
	// Jitter adds a uniform extra in [0, Jitter×pause] drawn from a PRNG
	// seeded by the run seed, decorrelating concurrent sweep workers
	// (0 selects 0.5; negative disables).
	Jitter float64
	// Sleep replaces time.Sleep; tests stub it to run instantly.
	Sleep func(time.Duration)
}

// DefaultRetryPolicy returns the policy the soak runner uses: 3 attempts,
// budget ×4 per retry, 25ms base backoff with 50% jitter capped at 2s.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BudgetFactor: 4,
		Backoff: 25 * time.Millisecond, MaxBackoff: 2 * time.Second, Jitter: 0.5}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BudgetFactor <= 1 {
		p.BudgetFactor = 4
	}
	if p.Backoff == 0 {
		p.Backoff = 25 * time.Millisecond
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = 2 * time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// RunAttempt records one attempt of a retried run; the history lands in
// Result.Attempts, JSON reports and crash bundles.
type RunAttempt struct {
	Attempt    int        `json:"attempt"`
	MaxCycles  event.Time `json:"max_cycles"`
	BackoffMS  int64      `json:"backoff_ms,omitempty"` // pause before this attempt
	Outcome    string     `json:"outcome"`              // "ok" or the error's first line
	AbortCycle event.Time `json:"abort_cycle,omitempty"`
}

// RetryError reports a run that failed through every attempt RunWithRetry
// was allowed; Unwrap exposes the last attempt's error (so errors.Is still
// matches ErrDeadlock / ErrAborted) and Attempts the full history.
type RetryError struct {
	Attempts []RunAttempt
	Last     error
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("system: run failed after %d attempt(s): %v", len(e.Attempts), e.Last)
}

func (e *RetryError) Unwrap() error { return e.Last }

// Retryable reports whether err is a transient abort under cfg: MaxCycles
// exhaustion with a fault profile enabled.
func Retryable(err error, cfg Config) bool {
	var de *DeadlockError
	return errors.As(err, &de) && de.BudgetExhausted && cfg.Faults.Enabled()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// RunWithRetry runs prof under cfg, retrying transient MaxCycles aborts
// (see Retryable) with an escalating cycle budget per pol. Every attempt is
// recorded; a successful result carries the history in Result.Attempts, and
// a final failure returns a *RetryError wrapping the last error.
func RunWithRetry(ctx context.Context, prof workload.Profile, cfg Config, pol RetryPolicy) (*Result, error) {
	pol = pol.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed*0x9e3779b9 + int64(cfg.Cores)))
	budget := cfg.MaxCycles
	var attempts []RunAttempt
	var backedOff time.Duration
	for n := 1; ; n++ {
		run := cfg
		run.MaxCycles = budget
		res, err := RunContext(ctx, prof, run)
		rec := RunAttempt{Attempt: n, MaxCycles: budget, BackoffMS: backedOff.Milliseconds()}
		if err == nil {
			rec.Outcome = "ok"
			res.Attempts = append(attempts, rec)
			return res, nil
		}
		rec.Outcome = firstLine(err.Error())
		var de *DeadlockError
		if errors.As(err, &de) {
			rec.AbortCycle = de.Cycle
		}
		var ae *AbortError
		if errors.As(err, &ae) {
			rec.AbortCycle = ae.Cycle
		}
		attempts = append(attempts, rec)
		if n >= pol.MaxAttempts || !Retryable(err, cfg) || ctx.Err() != nil {
			return nil, &RetryError{Attempts: attempts, Last: err}
		}
		budget = event.Time(float64(budget) * pol.BudgetFactor)
		pause := pol.Backoff << (n - 1)
		if pol.Jitter > 0 {
			pause += time.Duration(rng.Float64() * pol.Jitter * float64(pause))
		}
		if pause > pol.MaxBackoff {
			pause = pol.MaxBackoff
		}
		backedOff = pause
		if pause > 0 {
			pol.Sleep(pause)
		}
	}
}
