package system

import (
	"testing"

	"scalablebulk/internal/core"
	"scalablebulk/internal/workload"
)

func quickCfg(cores int, protocol string) Config {
	cfg := DefaultConfig(cores, protocol)
	cfg.ChunksPerCore = 8
	return cfg
}

func mustRun(t *testing.T, prof workload.Profile, cfg Config) *Result {
	t.Helper()
	res, err := Run(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAllProtocolsAllAppsSmoke runs every (protocol, app) pair on a small
// machine: the whole system must terminate with every chunk committed.
func TestAllProtocolsAllAppsSmoke(t *testing.T) {
	for _, protocol := range append(Protocols, core.NameNoOCI) {
		for _, prof := range workload.All() {
			prof, protocol := prof, protocol
			t.Run(protocol+"/"+prof.Name, func(t *testing.T) {
				cfg := quickCfg(8, protocol)
				cfg.ChunksPerCore = 4
				res := mustRun(t, prof, cfg)
				if res.ChunksCommitted != uint64(8*4) {
					t.Fatalf("committed %d chunks, want %d", res.ChunksCommitted, 8*4)
				}
				if res.Cycles == 0 {
					t.Fatal("zero execution time")
				}
				if res.Breakdown.Useful == 0 {
					t.Fatal("no useful cycles accounted")
				}
			})
		}
	}
}

func TestSingleCoreRun(t *testing.T) {
	prof, _ := workload.ByName("FFT")
	cfg := quickCfg(1, ProtoScalableBulk)
	res := mustRun(t, prof, cfg)
	if res.ChunksCommitted != 8 {
		t.Fatalf("committed %d", res.ChunksCommitted)
	}
	if res.Breakdown.Commit > res.Breakdown.Useful/10 {
		t.Fatalf("single-core run has commit stalls: %+v", res.Breakdown)
	}
	if res.Coll.SquashTrueConflict+res.Coll.SquashAliasing != 0 {
		t.Fatal("single-core run squashed chunks")
	}
}

func TestDeterministicRuns(t *testing.T) {
	prof, _ := workload.ByName("Barnes")
	for _, protocol := range Protocols {
		a := mustRun(t, prof, quickCfg(8, protocol))
		b := mustRun(t, prof, quickCfg(8, protocol))
		if a.Cycles != b.Cycles || a.Traffic.Messages != b.Traffic.Messages {
			t.Fatalf("%s nondeterministic: %d/%d vs %d/%d cycles/messages",
				protocol, a.Cycles, a.Traffic.Messages, b.Cycles, b.Traffic.Messages)
		}
	}
}

func TestSeedChangesExecution(t *testing.T) {
	prof, _ := workload.ByName("FMM")
	a := mustRun(t, prof, quickCfg(8, ProtoScalableBulk))
	cfg := quickCfg(8, ProtoScalableBulk)
	cfg.Seed = 99
	b := mustRun(t, prof, cfg)
	if a.Cycles == b.Cycles && a.Traffic.Messages == b.Traffic.Messages {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestUnknownProtocolRejected(t *testing.T) {
	prof, _ := workload.ByName("FFT")
	if _, err := Run(prof, quickCfg(4, "MESI")); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestParallelRunBeatsSingleCore(t *testing.T) {
	// Strong scaling sanity: 16 cores on the same total work finish much
	// faster than 1 core.
	prof, _ := workload.ByName("LU")
	const total = 64
	one, err := RunScaled(prof, quickCfg(1, ProtoScalableBulk), total)
	if err != nil {
		t.Fatal(err)
	}
	many, err := RunScaled(prof, quickCfg(16, ProtoScalableBulk), total)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(one.Cycles) / float64(many.Cycles)
	if speedup < 4 {
		t.Fatalf("16-core speedup = %.1f, want ≥ 4 (1p: %d cycles, 16p: %d cycles)",
			speedup, one.Cycles, many.Cycles)
	}
}

func TestCommitLatencyOrderingSBFastest(t *testing.T) {
	// Figure 13's qualitative ordering at 64 processors on a contended
	// app: ScalableBulk's mean commit latency is the lowest of the four
	// protocols, and BulkSC's centralized arbiter has collapsed.
	prof, _ := workload.ByName("Barnes")
	lat := map[string]float64{}
	for _, protocol := range Protocols {
		cfg := quickCfg(64, protocol)
		cfg.ChunksPerCore = 12
		res := mustRun(t, prof, cfg)
		lat[protocol] = res.MeanCommitLatency()
	}
	for _, other := range []string{ProtoTCC, ProtoSEQ, ProtoBulkSC} {
		if lat[ProtoScalableBulk] >= lat[other] {
			t.Fatalf("ScalableBulk latency %.0f not below %s latency %.0f (all: %v)",
				lat[ProtoScalableBulk], other, lat[other], lat)
		}
	}
	// The arbiter's collapse is load-dependent; on this single moderate app
	// it should already cost ≥1.5× ScalableBulk (the all-app Figure 13
	// bench shows the full 32p→64p collapse).
	if lat[ProtoBulkSC] < 1.5*lat[ProtoScalableBulk] {
		t.Fatalf("BulkSC arbiter shows no centralization cost at 64p: %.0f vs SB %.0f",
			lat[ProtoBulkSC], lat[ProtoScalableBulk])
	}
}

func TestTCCBroadcastsSkips(t *testing.T) {
	prof, _ := workload.ByName("FFT")
	res := mustRun(t, prof, quickCfg(16, ProtoTCC))
	st := res.Traffic
	// Every commit skips the directories it does not touch: far more skip
	// messages than commits.
	if st.Messages == 0 {
		t.Fatal("no traffic")
	}
	tccRes := res
	sbRes := mustRun(t, prof, quickCfg(16, ProtoScalableBulk))
	if tccRes.Traffic.Messages <= sbRes.Traffic.Messages {
		t.Fatalf("TCC messages (%d) not above ScalableBulk (%d) — broadcast missing",
			tccRes.Traffic.Messages, sbRes.Traffic.Messages)
	}
}

// TestResultValidate runs every protocol once and cross-checks the
// accounting invariants Result.Validate encodes.
func TestResultValidate(t *testing.T) {
	prof, _ := workload.ByName("FMM")
	for _, protocol := range append(Protocols, core.NameNoOCI) {
		cfg := quickCfg(16, protocol)
		res := mustRun(t, prof, cfg)
		if err := res.Validate(); err != nil {
			t.Errorf("%s: %v", protocol, err)
		}
	}
}

// TestZeroTargetRuns: a degenerate zero-chunk run terminates immediately.
func TestZeroTargetRuns(t *testing.T) {
	prof, _ := workload.ByName("FFT")
	cfg := quickCfg(4, ProtoScalableBulk)
	cfg.ChunksPerCore = 0
	res := mustRun(t, prof, cfg)
	if res.ChunksCommitted != 0 || res.Cycles != 0 {
		t.Fatalf("zero-target run committed %d in %d cycles", res.ChunksCommitted, res.Cycles)
	}
}
