// Package system assembles and runs the full simulated machine of Table 2:
// 32 or 64 tiles on a 2D torus, each with a 1-IPC core, private 32KB L1 and
// 512KB L2, and a directory module, under any commit protocol registered in
// internal/protocol (the four Table 3 protocols link in via
// internal/protocol/all; variants register themselves without this package
// changing).
package system

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"scalablebulk/internal/cache"
	"scalablebulk/internal/check"
	"scalablebulk/internal/dir"
	"scalablebulk/internal/event"
	"scalablebulk/internal/fault"
	"scalablebulk/internal/mem"
	"scalablebulk/internal/mesh"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/proc"
	"scalablebulk/internal/protocol"
	_ "scalablebulk/internal/protocol/all" // link every in-tree protocol
	"scalablebulk/internal/sig"
	"scalablebulk/internal/stats"
	"scalablebulk/internal/trace"
	"scalablebulk/internal/workload"
)

// Names of the four Table 3 protocols, as registered in internal/protocol.
// Variants are addressed by their registry name (protocol.Names lists all).
const (
	ProtoScalableBulk = "ScalableBulk"
	ProtoTCC          = "TCC"
	ProtoSEQ          = "SEQ"
	ProtoBulkSC       = "BulkSC"
)

// Protocols lists the evaluated protocols in the paper's order, read from
// the registry (imported-package inits run before this assignment).
var Protocols = protocol.Evaluated()

// Config describes one simulation (defaults are Table 2).
type Config struct {
	Cores         int
	Protocol      string
	ChunksPerCore int
	// WarmupChunks per core are pre-touched into the caches, page table
	// and directory sharer lists before timing starts, standing in for
	// the billions of instructions a real application executes before the
	// measured region.
	WarmupChunks int
	Seed         int64

	// Shards selects the execution engine: 0 runs the serial calendar
	// queue, N ≥ 1 runs the deterministic sharded engine with N shard
	// workers (clamped to Cores). Execution-only — results, fingerprints,
	// ConfigHash and journal keys are byte-identical for every value, so
	// it is deliberately excluded from the run's identity (like
	// RunTimeout). Sharded runs do not support fault injection, trace
	// sinks or the flight recorder; Build rejects those combinations.
	Shards int

	// Workload selects the chunk-stream source by registry spec: "" or
	// "synthetic" for the default application models, an adversarial
	// generator's name, or "replay:PATH" for a recorded trace. The spec is
	// part of the run's identity (journal config hashes cover it).
	Workload string
	// WorkloadFactory, when non-nil, overrides Workload with a directly
	// injected source factory — how the trace recorder interposes on a run
	// and how tests feed hand-built sources. Not covered by config hashes;
	// journaled runs should use Workload specs.
	WorkloadFactory workload.Factory

	LinkLatency event.Time // torus link (7)
	MemLatency  event.Time // memory round trip (300)
	DirLookup   event.Time // directory/signature processing (2)
	Contention  bool       // per-link occupancy modeling

	L1, L2 cache.Config

	// ProtoOptions is the selected protocol's typed option block (e.g.
	// core.Config for ScalableBulk). Nil selects the registry descriptor's
	// DefaultOptions; a wrong concrete type is an error at Run.
	ProtoOptions any

	// MaxCycles aborts a run that exceeds this time (deadlock guard).
	MaxCycles event.Time

	// RunTimeout, when nonzero, aborts a run whose wall-clock time exceeds
	// it with an *AbortError (Cause context.DeadlineExceeded). Purely a
	// budget: it cannot perturb the results of a run that completes.
	RunTimeout time.Duration

	// OnAbort, when set, receives the machine state if the run aborts
	// (deadlock or MaxCycles) — a debugging hook.
	OnAbort func(procs []*proc.Proc, proto protocol.Engine)

	// Faults, when non-nil and enabled, interposes the seeded fault
	// injector on every network delivery.
	Faults *fault.Profile
	// FaultSeed seeds the injector's PRNG; zero reuses Seed. One
	// (profile, seed) pair replays bit-identically.
	FaultSeed int64
	// Check wires the online invariant checker into the run; violations
	// turn into a run error. Costs a few percent of runtime.
	Check bool

	// OnApplyWrite, when non-nil, observes every committed write applied to
	// the directory: the line and the committing core. It composes with the
	// Check hook. The differential cross-protocol tests use it to collect
	// each protocol's final committed-write multiset.
	OnApplyWrite func(l sig.Line, writer int)

	// OnCommit, when non-nil, observes every chunk commit in commit order:
	// the committing core and the chunk's sequence number. The conformance
	// suite uses it to assert each core's chunks commit in program order
	// (serializability of the per-core commit stream).
	OnCommit func(core int, seq uint64)

	// TraceSink, when non-nil, receives every structured lifecycle, NoC and
	// fault event of the run (package trace). The sink is closed by the
	// caller, not by Run: a caller may reuse one sink across runs.
	// Tracing observes the run without perturbing it — fingerprints are
	// bit-identical with and without a sink.
	TraceSink trace.Sink
	// FlightRecorder, when > 0, keeps the last N trace events in a ring
	// buffer whose rendered tail is attached to DeadlockError aborts, RunPanic
	// reports and crash bundles. It works with or without a TraceSink.
	FlightRecorder int
	// TraceReads includes read-path (Transient) NoC messages in the trace —
	// by far the most numerous events; off by default.
	TraceReads bool
}

// DefaultConfig returns the Table 2 machine.
func DefaultConfig(cores int, protocol string) Config {
	return Config{
		Cores:         cores,
		Protocol:      protocol,
		ChunksPerCore: 64,
		WarmupChunks:  64,
		Seed:          1,
		Contention:    true,
		LinkLatency:   7,
		MemLatency:    300,
		DirLookup:     2,
		L1:            cache.Config{SizeBytes: 32 << 10, Assoc: 4},
		L2:            cache.Config{SizeBytes: 512 << 10, Assoc: 8},
		MaxCycles:     2_000_000_000,
	}
}

// ErrDeadlock marks a run that stopped making progress; test for it with
// errors.Is. The concrete *DeadlockError carries the machine dump.
var ErrDeadlock = errors.New("simulation deadlocked")

// DeadlockError is the structured abort report: what ran, why it stopped,
// and a dump of every stuck processor plus the protocol engine's per-module
// state.
type DeadlockError struct {
	App      string
	Protocol string
	Cores    int
	Cycle    event.Time
	Reason   string // "event queue empty" or "exceeded MaxCycles=N"
	Dump     string // per-processor pipeline state + protocol module state
	// BudgetExhausted marks a MaxCycles abort (as opposed to an empty event
	// queue). Under an enabled fault profile these are treated as transient
	// — slow but live — and are retried by RunWithRetry with an escalated
	// budget.
	BudgetExhausted bool
	// Flight is the flight recorder's tail (rendered text lines, oldest
	// first) when Config.FlightRecorder was enabled: the last trace events
	// before the machine stopped.
	Flight []string
}

func (e *DeadlockError) Error() string {
	s := fmt.Sprintf("system: %s/%s/%d deadlocked at cycle %d (%s)",
		e.App, e.Protocol, e.Cores, e.Cycle, e.Reason)
	if e.Dump != "" {
		s += "\n" + e.Dump
	}
	if len(e.Flight) > 0 {
		s += fmt.Sprintf("\nflight recorder (last %d events):\n%s",
			len(e.Flight), strings.Join(e.Flight, "\n"))
	}
	return s
}

// Unwrap lets errors.Is(err, ErrDeadlock) match.
func (e *DeadlockError) Unwrap() error { return ErrDeadlock }

// ErrShardHazard marks a sharded run that aborted because a page's
// first-touch home became schedule-dependent: two tiles with different
// would-be homes raced to first-touch the same page inside one parallel
// round, so the serial engine's mapping can no longer be reproduced. Retry
// the run with Shards=0 (the serial engine resolves the touch order
// deterministically); test with errors.Is.
var ErrShardHazard = errors.New("sharded first-touch collision")

// ShardHazardError is the structured ErrShardHazard abort.
type ShardHazardError struct {
	App      string
	Protocol string
	Cores    int
	Shards   int
	Cycle    event.Time
	Page     uint64
}

func (e *ShardHazardError) Error() string {
	return fmt.Sprintf("system: %s/%s/%d (shards=%d) aborted at cycle %d: first-touch collision on page %d is schedule-dependent; rerun with Shards=0",
		e.App, e.Protocol, e.Cores, e.Shards, e.Cycle, e.Page)
}

// Unwrap lets errors.Is(err, ErrShardHazard) match.
func (e *ShardHazardError) Unwrap() error { return ErrShardHazard }

// MaxDumpLines bounds the machine dump embedded in DeadlockErrors and crash
// bundles: a 64-core dump (one line per stuck processor plus per-module
// protocol state) is truncated past this many lines with an elided-line
// count, so error logs and crash bundles stay small.
const MaxDumpLines = 48

// truncateLines caps s at max lines, appending how many were elided.
func truncateLines(s string, max int) string {
	lines := strings.Split(s, "\n")
	if len(lines) <= max {
		return s
	}
	return strings.Join(lines[:max], "\n") +
		fmt.Sprintf("\n... (%d more lines elided)", len(lines)-max)
}

// dumpMachine renders the stuck processors and the protocol's per-module
// state (any engine exposing protocol.Debugger), truncated to MaxDumpLines.
func dumpMachine(procs []*proc.Proc, proto protocol.Engine) string {
	var b strings.Builder
	for _, p := range procs {
		if !p.Done() {
			fmt.Fprintln(&b, p.DebugState())
		}
	}
	if d, ok := proto.(protocol.Debugger); ok {
		for i := 0; i < len(procs); i++ {
			if s := d.DebugModule(i); s != "" {
				fmt.Fprintln(&b, s)
			}
		}
	}
	return truncateLines(strings.TrimRight(b.String(), "\n"), MaxDumpLines)
}

// Result is everything a run measured.
type Result struct {
	App      string
	Protocol string
	Cores    int

	// Cycles is the execution time: the last core's finish time.
	Cycles event.Time
	// Breakdown sums every core's cycle accounting (Figures 7/8).
	Breakdown stats.Breakdown
	// PerCore keeps the individual accountings.
	PerCore []stats.Breakdown

	ChunksCommitted uint64
	Squashes        int
	// PerCoreCommitted is each core's committed-chunk count, in core order.
	PerCoreCommitted []int

	Coll    *stats.Collector
	Traffic mesh.Stats
	// Proto exposes the protocol engine for protocol-specific diagnostics
	// (e.g. the failure-cause counters behind Engine.Stats).
	Proto protocol.Engine

	// Faults holds the injector's counters when Config.Faults was enabled.
	Faults *fault.Stats
	// Checked reports whether the invariant checker ran (and found nothing:
	// a run with violations returns an error instead).
	Checked bool

	// Attempts is the retry history when the run went through RunWithRetry
	// (a single entry for a first-attempt success). Deliberately excluded
	// from result fingerprints: the measurements of a completed run do not
	// depend on how many escalations it took to fit the cycle budget.
	Attempts []RunAttempt

	// Sharding holds the sharded engine's execution counters when the run
	// used Config.Shards > 0, nil otherwise. Execution-only observability:
	// excluded from result fingerprints, which are independent of S.
	Sharding *event.ShardStats
	// RingResidency is the calendar ring's retained backing capacity at the
	// end of the run (summed across shard calendars on sharded runs).
	// Execution-only observability, excluded from fingerprints.
	RingResidency uint64
}

// MeanCommitLatency is a convenience accessor (Figure 13).
func (r *Result) MeanCommitLatency() float64 { return r.Coll.MeanCommitLatency() }

// Validate cross-checks the run's accounting invariants: every commit has a
// latency sample and a directory-count sample, the per-core breakdowns sum
// to the machine breakdown, and no core out-ran the final time.
func (r *Result) Validate() error {
	if n := uint64(len(r.Coll.CommitLat)); n != r.ChunksCommitted {
		return fmt.Errorf("%d commits but %d latency samples", r.ChunksCommitted, n)
	}
	if n := uint64(len(r.Coll.DirsTotal)); n != r.ChunksCommitted {
		return fmt.Errorf("%d commits but %d directory samples", r.ChunksCommitted, n)
	}
	var sum stats.Breakdown
	for _, b := range r.PerCore {
		sum.Add(b)
	}
	if sum != r.Breakdown {
		return fmt.Errorf("per-core breakdowns do not sum to the total")
	}
	if r.Coll.ChunksCommitted != r.ChunksCommitted {
		return fmt.Errorf("collector saw %d commits, cores saw %d",
			r.Coll.ChunksCommitted, r.ChunksCommitted)
	}
	return nil
}

// Run simulates one (application, machine, protocol) combination.
func Run(prof workload.Profile, cfg Config) (*Result, error) {
	return RunContext(context.Background(), prof, cfg)
}

// Machine is one fully assembled simulated multicore, built by Build and not
// yet started. RunContext drives it through the standard event loop; the
// model-checking explorer (internal/explore) installs a mesh.Scheduler on
// Net before Start and drives its own interleaved loop instead. The exported
// fields are the assembly's top-level components.
type Machine struct {
	// Eng is the serial calendar engine; nil on sharded machines, which
	// run on Shard instead (use Now for the clock either way).
	Eng *event.Engine
	// Shard is the deterministic parallel engine, nil on serial machines.
	Shard *event.ShardedEngine
	Net   *mesh.Network
	Env   *dir.Env
	Procs []*proc.Proc
	Proto protocol.Engine
	// Check is the online invariant checker, nil unless Config.Check.
	Check *check.Checker
	// Flight is the flight-recorder ring, nil unless Config.FlightRecorder.
	Flight *trace.Ring
	// Inj is the fault injector, nil unless Config.Faults enabled.
	Inj *fault.Injector

	prof workload.Profile
	cfg  Config
	// rps are the read paths (one per shard; a single entry on serial
	// machines); their nack counters fold into the collector at Finish.
	rps []*dir.ReadPath
	// done counts finished processors (maintained by the proc.OnDone hook)
	// so AllDone is O(1) instead of scanning every core per step.
	done int
}

// Now returns the simulation clock, whichever engine drives the machine.
func (m *Machine) Now() event.Time {
	if m.Shard != nil {
		return m.Shard.Now()
	}
	return m.Eng.Now()
}

// Build assembles the machine for prof under cfg: network, directory
// environment, tracer, fault injector, invariant checker, protocol engine,
// workload and processors, then runs cache/directory warm-up. The machine is
// returned stopped — no processor has issued its first chunk — so a caller
// may install observers (e.g. a mesh.Scheduler) before Start.
func Build(prof workload.Profile, cfg Config) (*Machine, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("system: need at least one core")
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("system: negative shard count %d", cfg.Shards)
	}
	shards := cfg.Shards
	if shards > cfg.Cores {
		shards = cfg.Cores
	}
	sharded := shards > 0
	if sharded {
		switch {
		case cfg.Faults.Enabled():
			return nil, fmt.Errorf("system: sharded execution does not support fault injection (delivery duplication breaks the deterministic ordering keys); run with Shards=0")
		case cfg.TraceSink != nil:
			return nil, fmt.Errorf("system: sharded execution does not support trace sinks; run with Shards=0")
		case cfg.FlightRecorder > 0:
			return nil, fmt.Errorf("system: sharded execution does not support the flight recorder; run with Shards=0")
		}
	}
	var (
		eng   *event.Engine
		se    *event.ShardedEngine
		sched event.Sched
	)
	if sharded {
		se = event.NewSharded(shards)
		sched = se.Global()
	} else {
		eng = event.New()
		sched = eng
	}
	m := &Machine{Eng: eng, Shard: se, prof: prof, cfg: cfg}
	net := mesh.New(sched, mesh.Config{
		Nodes: cfg.Cores, LinkLatency: cfg.LinkLatency, Contention: cfg.Contention,
	})
	m.Net = net
	env := &dir.Env{
		Eng: sched, Net: net, Map: mem.NewMapper(cfg.Cores), State: dir.NewState(),
		Coll: stats.New(), DirLookup: cfg.DirLookup, MemLatency: cfg.MemLatency,
	}
	m.Env = env

	// Sharded wiring: tiles map to shards in contiguous blocks, the network
	// routes deliveries onto the owning shard's calendar, the page mapper
	// goes thread-safe with per-round first-touch hazard detection, and the
	// directory state splits into per-shard parts.
	var shardOf []int
	if sharded {
		shardOf = make([]int, cfg.Cores)
		for i := range shardOf {
			shardOf[i] = i * shards / cfg.Cores
		}
		net.EnableSharding(se, shardOf, se.Views())
		env.Map.EnableLocking()
		se.BeginParallelRound = env.Map.BeginParallelRound
		se.EndParallelRound = env.Map.EndParallelRound
		env.State.Partition(shards, func(l sig.Line) int {
			if h, ok := env.Map.HomeIfMapped(l); ok {
				return shardOf[h]
			}
			return 0
		})
	}

	// Assemble the tracer: the caller's sink, the flight recorder, or both.
	sink := cfg.TraceSink
	if cfg.FlightRecorder > 0 {
		m.Flight = trace.NewRing(cfg.FlightRecorder)
		if sink != nil {
			sink = trace.Multi{sink, m.Flight}
		} else {
			sink = m.Flight
		}
	}
	if tr := trace.New(eng, sink); tr != nil {
		tr.Reads = cfg.TraceReads
		env.Trace = tr
		env.Coll.Trace = tr
		net.Trace = tr
	}

	if cfg.Faults.Enabled() {
		seed := cfg.FaultSeed
		if seed == 0 {
			seed = cfg.Seed
		}
		m.Inj = fault.New(*cfg.Faults, seed)
		m.Inj.Trace = env.Trace
		net.Fault = m.Inj
	}
	var chk *check.Checker
	if cfg.Check {
		chk = check.New(cfg.Cores)
		m.Check = chk
		env.Probe = chk
		env.State.OnApply = chk.Apply
		env.Coll.OnFormed = chk.Formed
		env.Coll.OnEnded = chk.Ended
		net.OnSend = chk.Sent
		net.OnDeliver = chk.Delivered
	}
	if cfg.OnApplyWrite != nil {
		if prev := env.State.OnApply; prev != nil {
			onApply := cfg.OnApplyWrite
			env.State.OnApply = func(l sig.Line, writer int) {
				prev(l, writer)
				onApply(l, writer)
			}
		} else {
			env.State.OnApply = cfg.OnApplyWrite
		}
	}

	pcfg := proc.DefaultConfig()
	pcfg.Seed = cfg.Seed
	pcfg.OnCommit = cfg.OnCommit
	pcfg.OnDone = func(int) { m.done++ }
	desc, ok := protocol.Lookup(cfg.Protocol)
	if !ok {
		return nil, fmt.Errorf("system: unknown protocol %q (registered: %s)",
			cfg.Protocol, strings.Join(protocol.Names(), ", "))
	}
	opts := cfg.ProtoOptions
	if opts == nil {
		opts = desc.DefaultOptions()
	}
	proto, err := desc.New(env, opts)
	if err != nil {
		return nil, fmt.Errorf("system: %w", err)
	}
	m.Proto = proto
	pcfg.ConservativeInv = desc.Tuning.ConservativeInv
	pcfg.OCIRecall = desc.Tuning.OCIRecall
	if chk != nil {
		if ho, ok := proto.(protocol.HoldObserver); ok {
			ho.SetHoldHooks(chk.Held, chk.Released)
		}
	}

	factory := cfg.WorkloadFactory
	if factory == nil {
		factory, err = workload.Resolve(cfg.Workload)
		if err != nil {
			return nil, fmt.Errorf("system: %w", err)
		}
	}
	gen, err := factory(prof, cfg.Cores, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("system: %w", err)
	}
	if v, ok := gen.(workload.Validator); ok {
		if err := v.Validate(cfg.Cores, cfg.ChunksPerCore, cfg.WarmupChunks); err != nil {
			return nil, fmt.Errorf("system: %w", err)
		}
	}
	// Per-tile environments: on serial runs every component shares env; on
	// sharded runs each shard's tiles get a copy whose Sched/Port land
	// events and sends on the owning shard. The copies are made after all
	// of env's observer wiring so they share it; slice/pointer fields
	// (Cores, State, Coll, Map) alias the same objects.
	env.Cores = make([]dir.Core, cfg.Cores)
	tileEnv := func(int) *dir.Env { return env }
	if sharded {
		envs := make([]*dir.Env, shards)
		for s := 0; s < shards; s++ {
			e := *env
			e.Eng = se.View(s)
			e.Net = net.PortOf(s)
			envs[s] = &e
		}
		tileEnv = func(node int) *dir.Env { return envs[shardOf[node]] }
		m.rps = make([]*dir.ReadPath, shards)
		for s := 0; s < shards; s++ {
			m.rps[s] = &dir.ReadPath{Env: envs[s], Proto: proto}
		}
	} else {
		m.rps = []*dir.ReadPath{{Env: env, Proto: proto}}
	}
	procs := make([]*proc.Proc, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		procs[i] = proc.New(tileEnv(i), proto, gen, i, cfg.ChunksPerCore, cfg.L1, cfg.L2, pcfg)
		env.Cores[i] = procs[i]
		if procs[i].Done() {
			m.done++ // born finished (zero chunk target)
		}
	}
	m.Procs = procs
	for i := 0; i < cfg.Cores; i++ {
		node := i
		rp := m.rps[0]
		if sharded {
			rp = m.rps[shardOf[node]]
		}
		net.Register(node, func(mm *msg.Msg) {
			if mm.Kind.SideOf() == msg.SideDir {
				if !rp.HandleDir(node, mm) {
					proto.HandleDir(node, mm)
				}
			} else {
				procs[node].Handle(mm)
			}
		})
	}

	// Warmup: pre-touch each thread's working set. Round-robin across
	// cores so shared pages get their first-touch homes the same way the
	// application's initialization phase would assign them.
	for w := 0; w < cfg.WarmupChunks; w++ {
		for i := 0; i < cfg.Cores; i++ {
			ck := gen.WarmupChunk(i, w)
			for _, a := range ck.Accesses {
				env.Map.Home(a.Line, i)
				procs[i].Hierarchy().Fill(a.Line, false)
				// Register directory sharers only for the recent working
				// set (the tail of warmup): real directories track live
				// cached copies, and unbounded registration would make
				// every commit's invalidation fan out machine-wide.
				if w >= cfg.WarmupChunks-8 {
					env.State.AddSharer(a.Line, i)
				}
			}
		}
	}
	return m, nil
}

// Start issues every processor's first chunk. Observers installed on the
// machine (network taps, a schedule controller) must be in place before it.
func (m *Machine) Start() {
	for _, p := range m.Procs {
		p.Start()
	}
}

// AllDone reports whether every processor finished its chunk target. O(1):
// the done count is maintained by the processors' OnDone hook.
func (m *Machine) AllDone() bool { return m.done >= len(m.Procs) }

// Dump renders the stuck processors and per-module protocol state, truncated
// to MaxDumpLines.
func (m *Machine) Dump() string { return dumpMachine(m.Procs, m.Proto) }

// Deadlock builds the structured no-progress abort for the machine's current
// state, running the Config.OnAbort hook first.
func (m *Machine) Deadlock(reason string, budget bool) error {
	if m.cfg.OnAbort != nil {
		m.cfg.OnAbort(m.Procs, m.Proto)
	}
	de := &DeadlockError{
		App: m.prof.Name, Protocol: m.cfg.Protocol, Cores: m.cfg.Cores,
		Cycle: m.Now(), Reason: reason, Dump: m.Dump(),
		BudgetExhausted: budget,
	}
	if m.Flight != nil {
		de.Flight = m.Flight.Dump()
	}
	return de
}

// Abort builds the structured cancellation/deadline abort.
func (m *Machine) Abort(cause error) error {
	return &AbortError{
		App: m.prof.Name, Protocol: m.cfg.Protocol, Cores: m.cfg.Cores,
		Cycle: m.Now(), Cause: cause,
	}
}

// runPanic wraps a recovered panic value into a *RunPanic with the machine
// state at the moment of failure.
func (m *Machine) runPanic(v any, stack string) *RunPanic {
	rp := &RunPanic{
		App: m.prof.Name, Protocol: m.cfg.Protocol, Cores: m.cfg.Cores,
		Cycle: m.Now(), Value: v, Stack: stack,
	}
	if len(m.Procs) > 0 && m.Proto != nil {
		rp.Dump = m.Dump()
	}
	if m.Flight != nil {
		rp.Flight = m.Flight.Dump()
	}
	return rp
}

// Finish runs the end-of-run sequence after every processor completed: with
// the checker enabled it drains protocol stragglers (late acks, watchdog
// no-ops) to a quiescent state and runs the end-of-run invariant checks,
// then builds the Result. A checker violation returns the Result alongside a
// *check.ViolationError carrying the machine dump and flight-recorder tail.
func (m *Machine) Finish() (*Result, error) {
	cfg, chk := m.cfg, m.Check
	if chk != nil {
		// Drain the stragglers (late acks, watchdog no-ops) so the
		// end-of-run checks see quiescent protocol state. Watchdogs only
		// re-arm for live attempts, so the queue empties; the step bound is
		// a backstop.
		if m.Shard != nil {
			m.Shard.Halt = nil
			for steps := 0; m.Shard.RoundStep() > 0 && steps < 10_000_000; steps++ {
			}
		} else {
			for steps := 0; m.Eng.Step() && steps < 10_000_000; steps++ {
			}
		}
		chk.Finish(cfg.Cores, cfg.ChunksPerCore)
	}
	// Fold the per-read-path nack counters (kept off the shared collector
	// so parallel rounds stay lock-free) into the collector's total.
	for _, rp := range m.rps {
		m.Env.Coll.ReadNacks += rp.Nacks
		rp.Nacks = 0
	}

	res := &Result{
		App: m.prof.Name, Protocol: cfg.Protocol, Cores: cfg.Cores,
		Coll: m.Env.Coll, Traffic: m.Net.Stats(), Proto: m.Proto,
		Checked: chk != nil,
	}
	if m.Shard != nil {
		ss := m.Shard.Stats()
		res.Sharding = &ss
		res.RingResidency = m.Shard.RingResidency()
	} else {
		res.RingResidency = m.Eng.RingResidency()
	}
	if m.Inj != nil {
		fs := m.Inj.Stats()
		res.Faults = &fs
	}
	for _, p := range m.Procs {
		res.PerCore = append(res.PerCore, p.Acct)
		res.Breakdown.Add(p.Acct)
		res.ChunksCommitted += uint64(p.Committed)
		res.PerCoreCommitted = append(res.PerCoreCommitted, p.Committed)
		res.Squashes += p.Squashes
		if p.FinishAt > res.Cycles {
			res.Cycles = p.FinishAt
		}
	}
	if chk != nil {
		if err := chk.Err(); err != nil {
			var ve *check.ViolationError
			if errors.As(err, &ve) {
				ve.Dump = m.Dump()
				if m.Flight != nil {
					ve.Flight = m.Flight.Dump()
				}
			}
			return res, err
		}
	}
	return res, nil
}

// RunContext is Run with cancellation: the event loop polls ctx (and the
// RunTimeout wall-clock deadline, if set) every ctxPollInterval events and
// aborts with an *AbortError, leaving deadlocks to *DeadlockError. A panic
// escaping the simulation is re-panicked wrapped in *RunPanic carrying the
// machine state, for sweep workers to recover into crash bundles.
func RunContext(ctx context.Context, prof workload.Profile, cfg Config) (*Result, error) {
	var m *Machine
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*RunPanic); ok {
				panic(r)
			}
			if m != nil {
				panic(m.runPanic(r, string(debug.Stack())))
			}
			panic(&RunPanic{
				App: prof.Name, Protocol: cfg.Protocol, Cores: cfg.Cores,
				Value: r, Stack: string(debug.Stack()),
			})
		}
	}()
	m, err := Build(prof, cfg)
	if err != nil {
		return nil, err
	}
	if m.Shard != nil {
		defer m.Shard.Stop()
		// Stop the round at the event that finishes the last processor,
		// exactly where the serial loop below stops stepping — trailing
		// same-cycle events must not perturb the stats. Finish clears the
		// hook before its quiescence drain.
		m.Shard.Halt = m.AllDone
	}
	m.Start()

	var deadline time.Time
	if cfg.RunTimeout > 0 {
		deadline = time.Now().Add(cfg.RunTimeout)
	}
	steps := 0
	for !m.AllDone() {
		if m.Shard != nil {
			if m.Shard.RoundStep() == 0 {
				return nil, m.Deadlock("event queue empty", false)
			}
			if pg, bad := m.Env.Map.Hazard(); bad {
				return nil, &ShardHazardError{
					App: m.prof.Name, Protocol: cfg.Protocol, Cores: cfg.Cores,
					Shards: m.Shard.Shards(), Cycle: m.Now(), Page: uint64(pg),
				}
			}
		} else if !m.Eng.Step() {
			return nil, m.Deadlock("event queue empty", false)
		}
		if m.Now() > cfg.MaxCycles {
			return nil, m.Deadlock(fmt.Sprintf("exceeded MaxCycles=%d", cfg.MaxCycles), true)
		}
		if steps++; steps%ctxPollInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, m.Abort(err)
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				return nil, m.Abort(context.DeadlineExceeded)
			}
		}
	}
	return m.Finish()
}

// TotalWork is the whole-problem chunk count for a sweep: cores ×
// chunks-per-core is held constant across machine sizes so speedups are
// measured on the same work.
func TotalWork(cfg Config) int { return cfg.Cores * cfg.ChunksPerCore }

// RunScaled runs prof on `cores` processors with the whole-problem work
// `totalChunks` divided evenly (the paper's strong-scaling setup: the same
// reference input on 1, 32 or 64 threads).
func RunScaled(prof workload.Profile, cfg Config, totalChunks int) (*Result, error) {
	return RunScaledContext(context.Background(), prof, cfg, totalChunks)
}

// RunScaledContext is RunScaled with cancellation (see RunContext).
func RunScaledContext(ctx context.Context, prof workload.Profile, cfg Config, totalChunks int) (*Result, error) {
	cfg.ChunksPerCore = totalChunks / cfg.Cores
	if cfg.ChunksPerCore < 1 {
		cfg.ChunksPerCore = 1
	}
	return RunContext(ctx, prof, cfg)
}
