package system

import (
	"bytes"
	"errors"
	"testing"

	"scalablebulk/internal/event"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/trace"
	"scalablebulk/internal/workload"
)

// collectSink records every event in order for invariant checks.
type collectSink struct{ evs []trace.Event }

func (s *collectSink) Event(e trace.Event) { s.evs = append(s.evs, e) }
func (s *collectSink) Close() error        { return nil }

// TestTraceDeterministic is the trace half of the determinism contract: the
// same seed must produce a byte-identical JSONL event stream, run to run,
// under every protocol.
func TestTraceDeterministic(t *testing.T) {
	prof, _ := workload.ByName("Barnes")
	for _, protocol := range Protocols {
		t.Run(protocol, func(t *testing.T) {
			stream := func() []byte {
				var buf bytes.Buffer
				cfg := quickCfg(8, protocol)
				cfg.ChunksPerCore = 4
				cfg.TraceSink = trace.NewJSONL(&buf)
				cfg.TraceReads = true
				mustRun(t, prof, cfg)
				return buf.Bytes()
			}
			a, b := stream(), stream()
			if len(a) == 0 {
				t.Fatal("empty trace stream")
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("same seed produced different traces (%d vs %d bytes)", len(a), len(b))
			}
		})
	}
}

// TestTraceDoesNotPerturbResults holds the observability layer to its
// zero-interference contract: attaching a sink must not change a single
// deterministic measurement.
func TestTraceDoesNotPerturbResults(t *testing.T) {
	prof, _ := workload.ByName("FFT")
	for _, protocol := range Protocols {
		plain := mustRun(t, prof, quickCfg(8, protocol))
		cfg := quickCfg(8, protocol)
		cfg.TraceSink = &collectSink{}
		cfg.TraceReads = true
		cfg.FlightRecorder = 64
		traced := mustRun(t, prof, cfg)
		if plain.Cycles != traced.Cycles ||
			plain.Traffic.Messages != traced.Traffic.Messages ||
			plain.ChunksCommitted != traced.ChunksCommitted ||
			plain.Squashes != traced.Squashes {
			t.Fatalf("%s: tracing perturbed the run: %d/%d/%d/%d vs %d/%d/%d/%d",
				protocol, plain.Cycles, plain.Traffic.Messages, plain.ChunksCommitted, plain.Squashes,
				traced.Cycles, traced.Traffic.Messages, traced.ChunksCommitted, traced.Squashes)
		}
	}
}

type spanKey struct {
	node int
	tag  msg.CTag
	try  int
}

// TestTraceSpanBalance checks the span invariants every consumer relies on:
// exec spans nest 0/1 per core and close by run end; commit and hold spans
// begin before they end, never end twice, and all close in a run that
// commits every chunk; exactly one successful commit end per committed
// chunk.
func TestTraceSpanBalance(t *testing.T) {
	prof, _ := workload.ByName("Barnes")
	for _, protocol := range Protocols {
		t.Run(protocol, func(t *testing.T) {
			sink := &collectSink{}
			cfg := quickCfg(8, protocol)
			cfg.ChunksPerCore = 4
			cfg.TraceSink = sink
			res := mustRun(t, prof, cfg)

			execDepth := map[int]int{}
			commits := map[spanKey]int{}
			holds := map[spanKey]int{}
			var commitOK uint64
			for i, e := range sink.evs {
				switch e.Kind {
				case trace.KExec:
					switch e.Phase {
					case trace.PhaseBegin:
						execDepth[e.Node]++
						if execDepth[e.Node] > 1 {
							t.Fatalf("event %d: nested exec span on core %d", i, e.Node)
						}
					case trace.PhaseEnd:
						execDepth[e.Node]--
						if execDepth[e.Node] < 0 {
							t.Fatalf("event %d: exec end without begin on core %d", i, e.Node)
						}
					}
				case trace.KCommit:
					k := spanKey{e.Node, e.Tag, e.Try}
					switch e.Phase {
					case trace.PhaseBegin:
						commits[k]++
						if commits[k] > 1 {
							t.Fatalf("event %d: commit attempt %v begun twice", i, k)
						}
					case trace.PhaseEnd:
						commits[k]--
						if commits[k] < 0 {
							t.Fatalf("event %d: commit end without begin for %v", i, k)
						}
						if e.OK {
							commitOK++
						}
					}
				case trace.KHold:
					k := spanKey{e.Node, e.Tag, e.Try}
					switch e.Phase {
					case trace.PhaseBegin:
						holds[k]++
						if holds[k] > 1 {
							t.Fatalf("event %d: hold span %v begun twice", i, k)
						}
					case trace.PhaseEnd:
						holds[k]--
						if holds[k] < 0 {
							t.Fatalf("event %d: hold end without begin for %v", i, k)
						}
					}
				}
			}
			for node, d := range execDepth {
				if d != 0 {
					t.Errorf("core %d: exec span still open at run end", node)
				}
			}
			for k, d := range commits {
				if d != 0 {
					t.Errorf("commit span %v still open at run end", k)
				}
			}
			// Hold spans may stay open at run end: the engine stops the
			// moment the last chunk commits, before its release messages
			// drain (Perfetto's Close balances those at render time). But
			// every open hold must belong to that final wave — any earlier
			// chunk's hold still open is a leak.
			lastCycle := sink.evs[len(sink.evs)-1].T
			for k, d := range holds {
				if d != 0 {
					var begun event.Time
					for _, e := range sink.evs {
						if e.Kind == trace.KHold && e.Phase == trace.PhaseBegin &&
							k == (spanKey{e.Node, e.Tag, e.Try}) {
							begun = e.T
						}
					}
					if lastCycle-begun > 2000 {
						t.Errorf("hold span %v open since cycle %d (run ended at %d): leaked",
							k, begun, lastCycle)
					}
				}
			}
			if commitOK != res.ChunksCommitted {
				t.Errorf("successful commit ends = %d, want %d (one per committed chunk)",
					commitOK, res.ChunksCommitted)
			}
		})
	}
}

// TestFlightRecorderOnDeadlock forces a MaxCycles abort and checks the
// flight recorder tail rides along on the DeadlockError.
func TestFlightRecorderOnDeadlock(t *testing.T) {
	prof, _ := workload.ByName("Barnes")
	cfg := quickCfg(8, ProtoScalableBulk)
	cfg.MaxCycles = event.Time(2000)
	cfg.FlightRecorder = 16
	_, err := Run(prof, cfg)
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("got %v, want *DeadlockError", err)
	}
	if len(de.Flight) == 0 || len(de.Flight) > 16 {
		t.Fatalf("flight recorder tail has %d lines, want 1..16", len(de.Flight))
	}
	if s := de.Error(); !bytes.Contains([]byte(s), []byte("flight recorder")) {
		t.Fatalf("DeadlockError text lacks the flight recorder tail:\n%s", s)
	}
}

// TestFlightRecorderComposesWithSink checks Multi fan-out: an explicit sink
// still sees the full stream when the flight recorder is also on.
func TestFlightRecorderComposesWithSink(t *testing.T) {
	prof, _ := workload.ByName("FFT")
	sink := &collectSink{}
	cfg := quickCfg(4, ProtoScalableBulk)
	cfg.ChunksPerCore = 2
	cfg.TraceSink = sink
	cfg.FlightRecorder = 8
	mustRun(t, prof, cfg)
	if len(sink.evs) == 0 {
		t.Fatal("explicit sink saw no events with the flight recorder enabled")
	}
}

// TestPerfettoExportValid runs the full pipeline into the Perfetto exporter
// and validates the Chrome trace-event schema — the same check the CI
// trace-smoke job performs via sbtrace.
func TestPerfettoExportValid(t *testing.T) {
	prof, _ := workload.ByName("Barnes")
	var buf bytes.Buffer
	p := trace.NewPerfetto(&buf)
	cfg := quickCfg(8, ProtoScalableBulk)
	cfg.ChunksPerCore = 2
	cfg.TraceSink = p
	mustRun(t, prof, cfg)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidatePerfetto(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"core 0"`, `"dir 0"`, "group_formed"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("perfetto output lacks %s", want)
		}
	}
}
