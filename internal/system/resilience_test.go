package system

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"scalablebulk/internal/fault"
	"scalablebulk/internal/sig"
	"scalablebulk/internal/workload"
)

func mustApp(t *testing.T, name string) workload.Profile {
	t.Helper()
	prof, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown app %q", name)
	}
	return prof
}

// TestRunContextCancel: a canceled context aborts the run with an
// *AbortError that matches both ErrAborted and context.Canceled — and does
// NOT match ErrDeadlock, so callers can tell a withdrawn budget from a
// stuck machine.
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, mustApp(t, "Radix"), quickCfg(8, ProtoScalableBulk))
	if err == nil {
		t.Fatal("expected abort, got success")
	}
	if !errors.Is(err, ErrAborted) {
		t.Errorf("errors.Is(err, ErrAborted) = false for %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	if errors.Is(err, ErrDeadlock) {
		t.Errorf("cancellation must not look like a deadlock: %v", err)
	}
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("expected *AbortError, got %T", err)
	}
	if ae.App != "Radix" || ae.Cores != 8 {
		t.Errorf("AbortError context = %s/%d, want Radix/8", ae.App, ae.Cores)
	}
}

// TestRunTimeout: Config.RunTimeout imposes a wall-clock deadline whose
// abort carries context.DeadlineExceeded as the cause.
func TestRunTimeout(t *testing.T) {
	cfg := quickCfg(64, ProtoScalableBulk)
	cfg.RunTimeout = time.Nanosecond
	_, err := RunContext(context.Background(), mustApp(t, "Barnes"), cfg)
	if err == nil {
		t.Fatal("expected deadline abort, got success")
	}
	if !errors.Is(err, ErrAborted) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("want ErrAborted + DeadlineExceeded, got %v", err)
	}
}

// TestDumpTruncated: a 64-core deadlock dump is bounded at MaxDumpLines
// with an explicit elided-line count, so error logs stay small.
func TestDumpTruncated(t *testing.T) {
	cfg := quickCfg(64, ProtoScalableBulk)
	cfg.MaxCycles = 1000
	_, err := Run(mustApp(t, "Barnes"), cfg)
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("expected *DeadlockError, got %v", err)
	}
	if !de.BudgetExhausted {
		t.Error("MaxCycles abort must set BudgetExhausted")
	}
	if !strings.Contains(de.Dump, "more lines elided") {
		t.Errorf("64-core dump should be truncated, got %d bytes without marker", len(de.Dump))
	}
	if n := strings.Count(de.Dump, "\n") + 1; n > MaxDumpLines+1 {
		t.Errorf("dump has %d lines, want <= %d", n, MaxDumpLines+1)
	}
}

func TestTruncateLines(t *testing.T) {
	in := "a\nb\nc\nd"
	if got := truncateLines(in, 4); got != in {
		t.Errorf("no-op truncation changed the dump: %q", got)
	}
	if got := truncateLines(in, 2); got != "a\nb\n... (2 more lines elided)" {
		t.Errorf("truncateLines(.., 2) = %q", got)
	}
}

// TestRunPanicWrapping: a panic escaping the simulation is re-panicked as a
// *RunPanic carrying the simulated cycle, a machine dump and the original
// stack — the raw material for crash bundles.
func TestRunPanicWrapping(t *testing.T) {
	cfg := quickCfg(8, ProtoScalableBulk)
	cfg.OnApplyWrite = func(sig.Line, int) { panic("injected fault") }
	var rec any
	func() {
		defer func() { rec = recover() }()
		_, _ = Run(mustApp(t, "Radix"), cfg)
	}()
	rp, ok := rec.(*RunPanic)
	if !ok {
		t.Fatalf("expected *RunPanic, got %T (%v)", rec, rec)
	}
	if rp.Value != "injected fault" {
		t.Errorf("Value = %v, want the original panic value", rp.Value)
	}
	if rp.App != "Radix" || rp.Protocol != ProtoScalableBulk || rp.Cores != 8 {
		t.Errorf("machine context = %s/%s/%d", rp.App, rp.Protocol, rp.Cores)
	}
	if rp.Cycle == 0 {
		t.Error("Cycle = 0; the panic fired mid-run")
	}
	if rp.Stack == "" || !strings.Contains(rp.Stack, "goroutine") {
		t.Error("Stack missing the Go stack trace")
	}
	if rp.Dump == "" {
		t.Error("Dump empty; the machine state at the panic is lost")
	}
}

// TestRetryEscalationConverges: under a fault profile, a MaxCycles abort is
// transient — RunWithRetry escalates the budget until the run converges on
// the same deterministic result a clean run produces, and records the
// attempt history.
func TestRetryEscalationConverges(t *testing.T) {
	prof := mustApp(t, "Radix")
	cfg := DefaultConfig(8, ProtoScalableBulk)
	cfg.ChunksPerCore = 4
	cfg.Seed = 3
	chaos, err := fault.ByName("chaos")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = chaos

	clean, err := Run(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.MaxCycles = clean.Cycles / 2
	if _, err := Run(prof, cfg); !Retryable(err, cfg) {
		t.Fatalf("halved budget should be a retryable abort, got %v", err)
	}

	var slept []time.Duration
	pol := RetryPolicy{MaxAttempts: 4, BudgetFactor: 4,
		Sleep: func(d time.Duration) { slept = append(slept, d) }}
	res, err := RunWithRetry(context.Background(), prof, cfg, pol)
	if err != nil {
		t.Fatalf("retry did not converge: %v", err)
	}
	if res.Cycles != clean.Cycles {
		t.Errorf("retried result diverged: %d cycles, clean run %d", res.Cycles, clean.Cycles)
	}
	if len(res.Attempts) != 2 {
		t.Fatalf("attempts = %d, want 2 (one abort, one success)", len(res.Attempts))
	}
	if a := res.Attempts[0]; a.Outcome == "ok" || a.AbortCycle == 0 {
		t.Errorf("first attempt should record the abort: %+v", a)
	}
	if a := res.Attempts[1]; a.Outcome != "ok" || a.MaxCycles != cfg.MaxCycles*4 {
		t.Errorf("second attempt should succeed at 4x budget: %+v", a)
	}
	if len(slept) != 1 {
		t.Errorf("backoffs = %d, want 1", len(slept))
	}
}

// TestRetryRefusesFaultFreeDeadlock: without a fault profile a MaxCycles
// abort is a real bug, not noise — RunWithRetry fails after one attempt and
// the error still matches ErrDeadlock.
func TestRetryRefusesFaultFreeDeadlock(t *testing.T) {
	cfg := quickCfg(8, ProtoScalableBulk)
	cfg.MaxCycles = 1000
	pol := RetryPolicy{Sleep: func(time.Duration) {}}
	_, err := RunWithRetry(context.Background(), mustApp(t, "Radix"), cfg, pol)
	var re *RetryError
	if !errors.As(err, &re) {
		t.Fatalf("expected *RetryError, got %v", err)
	}
	if len(re.Attempts) != 1 {
		t.Errorf("attempts = %d, want 1 (non-retryable)", len(re.Attempts))
	}
	if !errors.Is(err, ErrDeadlock) {
		t.Errorf("RetryError should unwrap to the deadlock: %v", err)
	}
}
