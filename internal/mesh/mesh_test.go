package mesh

import (
	"testing"
	"testing/quick"

	"scalablebulk/internal/event"
	"scalablebulk/internal/msg"
)

func newNet(t *testing.T, nodes int, cont bool) (*event.Engine, *Network) {
	t.Helper()
	eng := event.New()
	n := New(eng, Config{Nodes: nodes, LinkLatency: 7, Contention: cont})
	return eng, n
}

func TestDims(t *testing.T) {
	cases := map[int][2]int{
		1:  {1, 1},
		4:  {2, 2},
		32: {8, 4},
		64: {8, 8},
		6:  {3, 2},
	}
	for n, want := range cases {
		w, h := dims(n)
		if w != want[0] || h != want[1] {
			t.Errorf("dims(%d) = %dx%d, want %dx%d", n, w, h, want[0], want[1])
		}
		if w*h != n {
			t.Errorf("dims(%d) does not cover all nodes", n)
		}
	}
}

func TestHopsBasic(t *testing.T) {
	_, n := newNet(t, 64, false) // 8x8
	if got := n.Hops(0, 0); got != 0 {
		t.Errorf("Hops(0,0) = %d", got)
	}
	if got := n.Hops(0, 1); got != 1 {
		t.Errorf("Hops(0,1) = %d", got)
	}
	// Torus wraparound: node 0 to node 7 (same row, opposite end) is 1 hop.
	if got := n.Hops(0, 7); got != 1 {
		t.Errorf("Hops(0,7) = %d, want 1 (wraparound)", got)
	}
	// 0 (0,0) to 36 (4,4) is 4+4 = 8 hops = diameter.
	if got := n.Hops(0, 36); got != 8 {
		t.Errorf("Hops(0,36) = %d, want 8", got)
	}
	if n.Diameter() != 8 {
		t.Errorf("Diameter = %d, want 8", n.Diameter())
	}
}

func TestCenterIsCentral(t *testing.T) {
	_, n := newNet(t, 64, false)
	c := n.Center()
	worst := 0
	for i := 0; i < 64; i++ {
		if h := n.Hops(c, i); h > worst {
			worst = h
		}
	}
	if worst > n.Diameter() {
		t.Fatalf("center %d has eccentricity %d > diameter", c, worst)
	}
}

func TestDeliveryLatencyUncontended(t *testing.T) {
	eng, n := newNet(t, 64, false)
	var deliveredAt event.Time
	n.Register(9, func(m *msg.Msg) { deliveredAt = eng.Now() })
	m := &msg.Msg{Kind: msg.Grab, Src: 0, Dst: 9}
	n.Send(m)
	eng.Run()
	// 0→9 on 8x8: dx=1, dy=1 → 2 hops × 7 = 14, 1 flit → +0.
	if deliveredAt != 14 {
		t.Fatalf("delivered at %d, want 14", deliveredAt)
	}
	if got := n.Latency(0, 9, msg.Grab); got != 14 {
		t.Fatalf("Latency = %d, want 14", got)
	}
}

func TestLargeMessageSerialization(t *testing.T) {
	eng, n := newNet(t, 64, false)
	var at event.Time
	n.Register(1, func(m *msg.Msg) { at = eng.Now() })
	n.Send(&msg.Msg{Kind: msg.CommitRequest, Src: 0, Dst: 1})
	eng.Run()
	want := event.Time(7 + msg.CommitRequest.FlitsOf() - 1)
	if at != want {
		t.Fatalf("delivered at %d, want %d", at, want)
	}
}

func TestLocalDelivery(t *testing.T) {
	eng, n := newNet(t, 4, false)
	var at event.Time
	fired := false
	n.Register(2, func(m *msg.Msg) { at, fired = eng.Now(), true })
	n.Send(&msg.Msg{Kind: msg.Grab, Src: 2, Dst: 2})
	eng.Run()
	if !fired || at != 1 {
		t.Fatalf("local delivery at %d (fired=%v), want 1", at, fired)
	}
}

func TestContentionSerializesSharedLink(t *testing.T) {
	// Two large messages over the same link: the second must arrive later
	// than it would uncontended.
	engFree, nFree := newNet(t, 64, false)
	engCont, nCont := newNet(t, 64, true)

	run := func(eng *event.Engine, n *Network) event.Time {
		var last event.Time
		n.Register(1, func(m *msg.Msg) { last = eng.Now() })
		n.Send(&msg.Msg{Kind: msg.CommitRequest, Src: 0, Dst: 1})
		n.Send(&msg.Msg{Kind: msg.CommitRequest, Src: 0, Dst: 1})
		eng.Run()
		return last
	}
	free := run(engFree, nFree)
	cont := run(engCont, nCont)
	if cont <= free {
		t.Fatalf("contention did not delay: contended %d <= free %d", cont, free)
	}
}

func TestStatsCounting(t *testing.T) {
	eng, n := newNet(t, 16, false)
	got := 0
	n.Register(3, func(m *msg.Msg) { got++ })
	n.Send(&msg.Msg{Kind: msg.Grab, Src: 0, Dst: 3})
	n.Send(&msg.Msg{Kind: msg.BulkInv, Src: 0, Dst: 3})
	eng.Run()
	st := n.Stats()
	if st.Messages != 2 || st.ByKind[msg.Grab] != 1 || st.ByKind[msg.BulkInv] != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got != 2 {
		t.Fatalf("delivered %d, want 2", got)
	}
	n.ResetStats()
	if n.Stats().Messages != 0 {
		t.Fatal("ResetStats did not zero")
	}
}

func TestSameCycleFIFODelivery(t *testing.T) {
	// Equidistant messages injected in order arrive in order.
	eng, n := newNet(t, 16, false)
	var order []int
	n.Register(5, func(m *msg.Msg) { order = append(order, m.Src) })
	n.Register(1, func(m *msg.Msg) {})
	// 4 and 6 are both 1 hop from 5 on a 4x4 torus.
	n.Send(&msg.Msg{Kind: msg.Grab, Src: 4, Dst: 5})
	n.Send(&msg.Msg{Kind: msg.Grab, Src: 6, Dst: 5})
	eng.Run()
	if len(order) != 2 || order[0] != 4 || order[1] != 6 {
		t.Fatalf("order = %v, want [4 6]", order)
	}
}

// Property: hop distance is symmetric, zero iff same node, and bounded by
// the diameter.
func TestPropertyHops(t *testing.T) {
	_, n := newNet(t, 64, false)
	f := func(a, b uint8) bool {
		x, y := int(a)%64, int(b)%64
		h := n.Hops(x, y)
		if h != n.Hops(y, x) {
			return false
		}
		if (h == 0) != (x == y) {
			return false
		}
		return h <= n.Diameter()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: routed delivery time always equals Latency() when uncontended.
func TestPropertyRoutedLatencyMatchesAnalytic(t *testing.T) {
	f := func(a, b uint8) bool {
		src, dst := int(a)%32, int(b)%32
		eng := event.New()
		n := New(eng, Config{Nodes: 32, LinkLatency: 7})
		var at event.Time
		n.Register(dst, func(m *msg.Msg) { at = eng.Now() })
		if src != dst {
			n.Register(src, func(m *msg.Msg) {})
		}
		n.Send(&msg.Msg{Kind: msg.BulkInv, Src: src, Dst: dst})
		eng.Run()
		return at == n.Latency(src, dst, msg.BulkInv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleRegisterPanics(t *testing.T) {
	_, n := newNet(t, 4, false)
	n.Register(0, func(m *msg.Msg) {})
	defer func() {
		if recover() == nil {
			t.Fatal("double Register did not panic")
		}
	}()
	n.Register(0, func(m *msg.Msg) {})
}

func BenchmarkSend64(b *testing.B) {
	eng := event.New()
	n := New(eng, Config{Nodes: 64, LinkLatency: 7, Contention: true})
	for i := 0; i < 64; i++ {
		n.Register(i, func(m *msg.Msg) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(&msg.Msg{Kind: msg.Grab, Src: i % 64, Dst: (i * 7) % 64})
		if i%64 == 63 {
			eng.Run()
		}
	}
	eng.Run()
}

func TestContentionPreservesPerLinkFIFO(t *testing.T) {
	// Two messages on the same source→destination path must arrive in
	// injection order even when the first congests the links.
	eng := event.New()
	n := New(eng, Config{Nodes: 16, LinkLatency: 7, Contention: true})
	var order []msg.Kind
	n.Register(3, func(m *msg.Msg) { order = append(order, m.Kind) })
	n.Register(0, func(m *msg.Msg) {})
	n.Send(&msg.Msg{Kind: msg.CommitRequest, Src: 0, Dst: 3}) // 17 flits
	n.Send(&msg.Msg{Kind: msg.Grab, Src: 0, Dst: 3})          // 1 flit
	eng.Run()
	if len(order) != 2 || order[0] != msg.CommitRequest || order[1] != msg.Grab {
		t.Fatalf("per-link FIFO violated: %v", order)
	}
}

func TestLatencyGrowsUnderSaturation(t *testing.T) {
	// Saturating one link makes later messages arrive later: the queueing
	// behavior behind the BulkSC/TCC congestion effects.
	eng := event.New()
	n := New(eng, Config{Nodes: 16, LinkLatency: 7, Contention: true})
	var last event.Time
	n.Register(1, func(m *msg.Msg) { last = eng.Now() })
	n.Register(0, func(m *msg.Msg) {})
	for i := 0; i < 50; i++ {
		n.Send(&msg.Msg{Kind: msg.CommitRequest, Src: 0, Dst: 1})
	}
	eng.Run()
	uncontended := n.Latency(0, 1, msg.CommitRequest)
	if last < 10*uncontended {
		t.Fatalf("no queueing under saturation: last arrival %d vs uncontended %d", last, uncontended)
	}
}
