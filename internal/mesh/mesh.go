// Package mesh models the on-chip 2D torus interconnect of the simulated
// multicore (Table 2: "Interconnect: 2D torus, link latency: 7 cycles",
// after the network simulator of Das et al. used by the paper).
//
// Nodes are tiles laid out on a W×H torus; each tile hosts one core, its
// private caches, and one directory module. Messages are routed
// dimension-order (X then Y) along the minimal wraparound direction, and pay
// the per-hop link latency plus flit serialization. With contention enabled
// (the default), each directed link is a resource that a message occupies
// for its flit count, so bursts of commit traffic queue — this is what lets
// Scalable TCC's skip/probe broadcasts congest the network in Figures 18/19.
package mesh

import (
	"fmt"

	"scalablebulk/internal/event"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/trace"
)

// Config configures a torus network.
type Config struct {
	Nodes       int        // number of tiles; factored into a near-square torus
	LinkLatency event.Time // per-hop latency in cycles (paper: 7)
	Contention  bool       // model per-link occupancy and queueing
	LocalDelay  event.Time // latency of a node talking to itself (default 1)
}

// Handler receives messages delivered to a node.
type Handler func(*msg.Msg)

// Delivery is one planned handler invocation: message m arrives at time At.
type Delivery struct {
	At event.Time
	M  *msg.Msg
}

// Interposer sits between routing and delivery: given a message and its
// nominal arrival time, it returns the deliveries that actually happen —
// possibly delayed, duplicated, or retransmission-deferred. It is consulted
// only when installed (Network.Fault), so the fault-free path pays a single
// nil check. Implementations must be deterministic for replayability and must
// Clone the message for any extra delivery.
type Interposer interface {
	Plan(m *msg.Msg, now, at event.Time) []Delivery
}

// Scheduler intercepts planned deliveries after routing (and after any fault
// interposer rewrote them): Hold returns true to capture the delivery instead
// of scheduling it, taking ownership of the message. A captured delivery is
// re-injected later through Release, which delivers it at the engine's
// current time. This is the deterministic-replay hook the model-checking
// explorer (internal/explore) uses to enumerate message interleavings: the
// messages a run sends are fixed by the protocol, the scheduler only decides
// their delivery order. Implementations must be deterministic.
type Scheduler interface {
	Hold(d Delivery) bool
}

// Stats aggregates traffic accounting.
type Stats struct {
	ByKind    [msg.NumKinds]uint64 // messages sent, per kind
	FlitHops  uint64               // total flits × hops (link utilization)
	Messages  uint64               // total messages sent
	Delivered uint64               // handler invocations (≥ Messages under duplication)
}

// Port is the sending face a tile component holds: message allocation plus
// injection, and the two topology queries protocol engines use at
// construction. On serial runs every component holds the *Network itself; on
// sharded runs tile components hold their shard's *ShardPort so sends from
// parallel rounds are staged to the epoch barrier and Transient recycling
// stays shard-local.
type Port interface {
	// NewMsg returns a zeroed message, reusing a recycled Transient one.
	NewMsg() *msg.Msg
	// Send injects a message for routing and delivery.
	Send(*msg.Msg)
	// Nodes returns the number of tiles.
	Nodes() int
	// Center returns the node nearest the torus center.
	Center() int
}

// ShardRouter is the sharded engine's cross-shard handoff: scheduling a
// delivery on the destination tile's shard calendar under the current
// deterministic ordering key. *event.ShardedEngine implements it.
type ShardRouter interface {
	DeliverAt(shard int, at event.Time, local bool, fn func(any), arg any) event.Ticket
}

// Network is a deterministic 2D torus.
type Network struct {
	eng      event.Sched
	w, h     int
	linkLat  event.Time
	localLat event.Time
	cont     bool
	handlers []Handler
	// busy[node][dir] is the time a directed output link is free again.
	busy  [][4]event.Time
	stats Stats

	// OnSend, when non-nil, observes every injected message (protocol
	// conformance tests and the sbtrace tool). It must not mutate the
	// message.
	OnSend func(*msg.Msg)
	// OnDeliver, when non-nil, observes every delivered message at its
	// delivery time, before the destination handler runs.
	OnDeliver func(*msg.Msg)
	// Fault, when non-nil, rewrites planned deliveries (fault injection).
	Fault Interposer
	// Sched, when non-nil, may capture planned deliveries for later
	// re-injection via Release (model-checking schedule control). It runs
	// after Fault, so fault plans are schedulable too.
	Sched Scheduler
	// Trace, when non-nil, records structured send/deliver events. Unlike
	// OnSend/OnDeliver it copies only scalars and never retains the
	// message, so it does not disable Transient recycling.
	Trace *trace.Tracer

	// deliverFn is the delivery event handler bound once at construction, so
	// scheduling a delivery allocates neither a closure nor a method value.
	deliverFn func(any)
	// freeMsgs recycles Transient messages. The engine is single-threaded,
	// so a plain slice freelist needs no locking. Recycling is disabled
	// whenever an observer or fault interposer is installed: those may
	// retain or duplicate messages beyond the delivery handler.
	freeMsgs []*msg.Msg

	// Sharded-execution wiring, nil/empty on serial runs (see EnableSharding).
	shard       ShardRouter
	shardOf     []int
	ports       []*ShardPort
	onDeliverFn func(any)
}

// Link directions for dimension-order routing.
const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
)

// dims factors n into the most square W×H grid with W ≥ H.
func dims(n int) (w, h int) {
	w, h = n, 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			w, h = n/d, d
		}
	}
	return w, h
}

// New builds a torus for cfg.Nodes tiles. On serial runs eng is the
// *event.Engine; on sharded runs it is the coordinator's GlobalView (the
// network core only runs coordinator-side) and EnableSharding must follow.
func New(eng event.Sched, cfg Config) *Network {
	if cfg.Nodes <= 0 {
		panic("mesh: need at least one node")
	}
	if cfg.LinkLatency == 0 {
		cfg.LinkLatency = 7
	}
	if cfg.LocalDelay == 0 {
		cfg.LocalDelay = 1
	}
	w, h := dims(cfg.Nodes)
	n := &Network{
		eng:      eng,
		w:        w,
		h:        h,
		linkLat:  cfg.LinkLatency,
		localLat: cfg.LocalDelay,
		cont:     cfg.Contention,
		handlers: make([]Handler, cfg.Nodes),
		busy:     make([][4]event.Time, cfg.Nodes),
	}
	n.deliverFn = n.deliver
	return n
}

// NewMsg returns a zeroed message, reusing a recycled Transient message when
// one is available. Senders of Transient kinds should allocate through this;
// for other kinds it is equivalent to &msg.Msg{}.
func (n *Network) NewMsg() *msg.Msg {
	if k := len(n.freeMsgs); k > 0 {
		m := n.freeMsgs[k-1]
		n.freeMsgs = n.freeMsgs[:k-1]
		return m
	}
	return &msg.Msg{}
}

// Nodes returns the number of tiles.
func (n *Network) Nodes() int { return n.w * n.h }

// Dims returns the torus width and height.
func (n *Network) Dims() (w, h int) { return n.w, n.h }

// Register installs the message handler for a node. Each node has exactly
// one handler (the tile demultiplexer installed by the system assembly).
func (n *Network) Register(node int, h Handler) {
	if n.handlers[node] != nil {
		panic(fmt.Sprintf("mesh: node %d already has a handler", node))
	}
	n.handlers[node] = h
}

func (n *Network) coord(id int) (x, y int) { return id % n.w, id / n.w }

// Hops returns the dimension-order torus distance between two nodes.
func (n *Network) Hops(a, b int) int {
	ax, ay := n.coord(a)
	bx, by := n.coord(b)
	dx := torusDist(ax, bx, n.w)
	dy := torusDist(ay, by, n.h)
	return dx + dy
}

func torusDist(a, b, size int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if size-d < d {
		d = size - d
	}
	return d
}

// Diameter returns the maximum hop count between any two nodes.
func (n *Network) Diameter() int { return n.w/2 + n.h/2 }

// Center returns the node nearest the torus center; BulkSC's arbiter and
// Scalable TCC's TID vendor live there ("arbiter in the center", Table 3).
func (n *Network) Center() int { return (n.h/2)*n.w + n.w/2 }

// Send injects a message. Delivery is scheduled on the event engine after
// routing latency; the destination handler runs at the delivery time.
func (n *Network) Send(m *msg.Msg) {
	n.stats.ByKind[m.Kind]++
	n.stats.Messages++
	if n.OnSend != nil {
		n.OnSend(m)
	}
	n.Trace.MsgSend(m)
	flits := event.Time(m.Kind.FlitsOf())

	if m.Src == m.Dst {
		n.deliverAt(n.eng.Now()+n.localLat, m)
		return
	}

	// Dimension-order route: X first (minimal wrap direction), then Y.
	sx, sy := n.coord(m.Src)
	dx, dy := n.coord(m.Dst)
	t := n.eng.Now()
	hops := 0

	step := func(node int, dir int) {
		if n.cont {
			if n.busy[node][dir] > t {
				t = n.busy[node][dir]
			}
			n.busy[node][dir] = t + flits
		}
		t += n.linkLat
		hops++
	}

	x, y := sx, sy
	for x != dx {
		dir, nx := xStep(x, dx, n.w)
		step(y*n.w+x, dir)
		x = nx
	}
	for y != dy {
		dir, ny := yStep(y, dy, n.h)
		step(y*n.w+x, dir)
		y = ny
	}

	// Tail serialization: the message body follows the head flit.
	t += flits - 1
	n.stats.FlitHops += uint64(flits) * uint64(hops)
	n.deliverAt(t, m)
}

// xStep picks the minimal X direction on the torus and returns the next x.
func xStep(x, dx, w int) (dir, next int) {
	fwd := (dx - x + w) % w
	if fwd <= w-fwd {
		return dirEast, (x + 1) % w
	}
	return dirWest, (x - 1 + w) % w
}

func yStep(y, dy, h int) (dir, next int) {
	fwd := (dy - y + h) % h
	if fwd <= h-fwd {
		return dirSouth, (y + 1) % h
	}
	return dirNorth, (y - 1 + h) % h
}

func (n *Network) deliverAt(t event.Time, m *msg.Msg) {
	if n.Fault != nil {
		for _, d := range n.Fault.Plan(m, n.eng.Now(), t) {
			n.scheduleDelivery(d.At, d.M)
		}
		return
	}
	n.scheduleDelivery(t, m)
}

func (n *Network) scheduleDelivery(t event.Time, m *msg.Msg) {
	if n.handlers[m.Dst] == nil {
		panic(fmt.Sprintf("mesh: no handler at node %d for %s", m.Dst, m))
	}
	if n.Sched != nil && n.Sched.Hold(Delivery{At: t, M: m}) {
		return
	}
	if n.shard != nil {
		// Land the delivery on the destination tile's shard, tagged with
		// whether its handler is tile-isolated (parallel-round eligible).
		s := n.shardOf[m.Dst]
		n.shard.DeliverAt(s, t, m.Kind.ShardLocal(), n.ports[s].deliverFn, m)
		return
	}
	n.eng.AtArg(t, n.deliverFn, m)
}

// Release delivers a message previously captured by the Scheduler at the
// engine's current time. The delivery runs as a normal engine event (same
// handler path, same observer taps), so a released message is
// indistinguishable from one that arrived now.
func (n *Network) Release(m *msg.Msg) {
	if n.handlers[m.Dst] == nil {
		panic(fmt.Sprintf("mesh: no handler at node %d for %s", m.Dst, m))
	}
	n.eng.AtArg(n.eng.Now(), n.deliverFn, m)
}

// deliver is the delivery event: it runs the destination handler and, on the
// observer-free fast path, recycles Transient messages into the freelist.
// A handler must therefore never retain a pointer to a Transient message
// past its return (the read-path handlers copy the fields they defer on).
func (n *Network) deliver(arg any) {
	m := arg.(*msg.Msg)
	n.stats.Delivered++
	if n.OnDeliver != nil {
		n.OnDeliver(m)
	}
	n.Trace.MsgDeliver(m)
	n.handlers[m.Dst](m)
	if m.Kind.Transient() && n.Fault == nil && n.Sched == nil && n.OnSend == nil && n.OnDeliver == nil {
		*m = msg.Msg{}
		n.freeMsgs = append(n.freeMsgs, m)
	}
}

// Latency estimates the uncontended delivery latency from a to b for a
// message of the given kind (used by analytic models and tests).
func (n *Network) Latency(a, b int, k msg.Kind) event.Time {
	if a == b {
		return n.localLat
	}
	return event.Time(n.Hops(a, b))*n.linkLat + event.Time(k.FlitsOf()) - 1
}

// Stats returns a copy of the traffic counters. Delivery counts accumulated
// shard-locally during parallel rounds are folded in, so the totals are
// identical to a serial run's.
func (n *Network) Stats() Stats {
	s := n.stats
	for _, p := range n.ports {
		s.Delivered += p.delivered
	}
	return s
}

// ResetStats zeroes the traffic counters (used to exclude warm-up).
func (n *Network) ResetStats() {
	n.stats = Stats{}
	for _, p := range n.ports {
		p.delivered = 0
	}
}

// EnableSharding switches the network into sharded-delivery mode: every
// routed message lands on the destination tile's shard calendar (via se),
// and tile components send through per-shard ports so that sends issued
// inside parallel rounds are staged to the epoch barrier in deterministic
// key order rather than mutating the (order-sensitive) busy-link state
// concurrently. shardOf maps node → shard and must cover every node.
func (n *Network) EnableSharding(se ShardRouter, shardOf []int, views []*event.ShardView) {
	if len(shardOf) != n.Nodes() {
		panic("mesh: shardOf must map every node")
	}
	n.shard = se
	n.shardOf = shardOf
	n.onDeliverFn = func(a any) { n.OnDeliver(a.(*msg.Msg)) }
	n.ports = make([]*ShardPort, len(views))
	for i, v := range views {
		p := &ShardPort{n: n, view: v}
		p.deliverFn = p.deliver
		p.replaySendFn = p.replaySend
		n.ports[i] = p
	}
}

// PortOf returns the sending port for a shard. Tile components on sharded
// runs hold this instead of the *Network.
func (n *Network) PortOf(shard int) *ShardPort { return n.ports[shard] }

// ShardPort is one shard's face of the network: allocation from a
// shard-local freelist, sends that stage to the barrier during parallel
// rounds, and the delivery handler for events landing on this shard.
type ShardPort struct {
	n    *Network
	view *event.ShardView
	// free recycles Transient messages delivered to this shard's tiles;
	// shard-local, so parallel rounds recycle without locks.
	free []*msg.Msg
	// delivered counts handler invocations on this shard (folded into
	// Network.Stats).
	delivered uint64
	// Bound once so the hot paths allocate no closures.
	deliverFn    func(any)
	replaySendFn func(any)
}

// NewMsg returns a zeroed message from the shard-local freelist.
func (p *ShardPort) NewMsg() *msg.Msg {
	if k := len(p.free); k > 0 {
		m := p.free[k-1]
		p.free = p.free[:k-1]
		return m
	}
	return &msg.Msg{}
}

// Nodes returns the number of tiles.
func (p *ShardPort) Nodes() int { return p.n.Nodes() }

// Center returns the node nearest the torus center.
func (p *ShardPort) Center() int { return p.n.Center() }

// Send injects a message. During a parallel round the send is staged: the
// barrier replays it coordinator-side in deterministic key order, so the
// busy-link occupancy state is only ever touched by one goroutine and in
// the exact order a serial run would touch it. Outside parallel rounds it
// routes immediately.
func (p *ShardPort) Send(m *msg.Msg) {
	if p.view.Parallel() {
		p.view.Stage(p.replaySendFn, m)
		return
	}
	p.n.Send(m)
}

func (p *ShardPort) replaySend(a any) { p.n.Send(a.(*msg.Msg)) }

// deliver runs a delivery landing on this shard. During parallel rounds the
// observer tap is staged (child key 0, before any sends the handler stages)
// so an installed OnDeliver sees messages in exact serial order at the
// barrier; the handler itself runs on the shard worker. Transient recycling
// follows the same observer-free rule as the serial path but targets the
// shard-local freelist.
func (p *ShardPort) deliver(arg any) {
	m := arg.(*msg.Msg)
	p.delivered++
	n := p.n
	if p.view.Parallel() {
		if n.OnDeliver != nil {
			p.view.Stage(n.onDeliverFn, m)
		}
		n.handlers[m.Dst](m)
		if m.Kind.Transient() && n.Fault == nil && n.Sched == nil && n.OnSend == nil && n.OnDeliver == nil {
			*m = msg.Msg{}
			p.free = append(p.free, m)
		}
		return
	}
	if n.OnDeliver != nil {
		n.OnDeliver(m)
	}
	n.Trace.MsgDeliver(m)
	n.handlers[m.Dst](m)
	if m.Kind.Transient() && n.Fault == nil && n.Sched == nil && n.OnSend == nil && n.OnDeliver == nil {
		*m = msg.Msg{}
		p.free = append(p.free, m)
	}
}

// Interface conformance: both the network itself (serial runs) and a shard
// port (sharded runs) are what tile components send through.
var (
	_ Port = (*Network)(nil)
	_ Port = (*ShardPort)(nil)
)
