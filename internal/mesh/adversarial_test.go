package mesh

import (
	"testing"

	"scalablebulk/internal/event"
	"scalablebulk/internal/msg"
)

// scriptInterposer is a hand-written Interposer for adversarial-delivery
// tests: it rewrites each delivery through fn.
type scriptInterposer struct {
	fn func(m *msg.Msg, at event.Time) []Delivery
}

func (s *scriptInterposer) Plan(m *msg.Msg, now, at event.Time) []Delivery {
	return s.fn(m, at)
}

// TestInterposerReordersAtNode: an interposer that inflates the delay of
// every other message inverts the arrival order of back-to-back sends at a
// single destination, and the handler observes the inversion.
func TestInterposerReordersAtNode(t *testing.T) {
	eng, n := newNet(t, 16, false)
	i := 0
	n.Fault = &scriptInterposer{fn: func(m *msg.Msg, at event.Time) []Delivery {
		i++
		if i%2 == 1 {
			return []Delivery{{At: at + 500, M: m}}
		}
		return []Delivery{{At: at, M: m}}
	}}
	var got []uint64
	n.Register(5, func(m *msg.Msg) { got = append(got, m.Tag.Seq) })
	for s := uint64(1); s <= 4; s++ {
		n.Send(&msg.Msg{Kind: msg.Grab, Src: 0, Dst: 5, Tag: msg.CTag{Seq: s}})
	}
	eng.Run()
	if len(got) != 4 {
		t.Fatalf("delivered %d messages, want 4", len(got))
	}
	// Odd sends (1,3) were delayed past even sends (2,4).
	want := []uint64{2, 4, 1, 3}
	for i, s := range want {
		if got[i] != s {
			t.Fatalf("arrival order %v, want %v", got, want)
		}
	}
}

// TestInterposerDuplicatesAtNode: a duplicating interposer delivers each
// message twice, the Delivered counter counts both, and Messages counts one.
func TestInterposerDuplicatesAtNode(t *testing.T) {
	eng, n := newNet(t, 16, false)
	n.Fault = &scriptInterposer{fn: func(m *msg.Msg, at event.Time) []Delivery {
		return []Delivery{{At: at, M: m}, {At: at + 9, M: m.Clone()}}
	}}
	seen := 0
	n.Register(3, func(m *msg.Msg) { seen++ })
	for s := 0; s < 5; s++ {
		n.Send(&msg.Msg{Kind: msg.CommitDone, Src: 1, Dst: 3, Tag: msg.CTag{Seq: uint64(s)}})
	}
	eng.Run()
	if seen != 10 {
		t.Fatalf("handler saw %d deliveries, want 10", seen)
	}
	st := n.Stats()
	if st.Messages != 5 {
		t.Fatalf("Messages = %d, want 5 (duplication is not a send)", st.Messages)
	}
	if st.Delivered != 10 {
		t.Fatalf("Delivered = %d, want 10", st.Delivered)
	}
}

// TestResetStatsMidRun: counters restart from zero mid-run and the post-reset
// totals account exactly the post-reset traffic, including deliveries.
func TestResetStatsMidRun(t *testing.T) {
	eng, n := newNet(t, 16, true)
	n.Register(2, func(m *msg.Msg) {})
	for s := 0; s < 7; s++ {
		n.Send(&msg.Msg{Kind: msg.Grab, Src: 0, Dst: 2, Tag: msg.CTag{Seq: uint64(s)}})
	}
	eng.Run()
	if st := n.Stats(); st.Messages != 7 || st.Delivered != 7 {
		t.Fatalf("pre-reset stats: %+v", st)
	}
	n.ResetStats()
	if st := n.Stats(); st != (Stats{}) {
		t.Fatalf("ResetStats left residue: %+v", st)
	}
	for s := 0; s < 3; s++ {
		n.Send(&msg.Msg{Kind: msg.CommitRequest, Src: 4, Dst: 2, Tag: msg.CTag{Seq: uint64(s)}})
	}
	eng.Run()
	st := n.Stats()
	if st.Messages != 3 || st.Delivered != 3 {
		t.Fatalf("post-reset stats: %+v", st)
	}
	if st.ByKind[msg.CommitRequest] != 3 || st.ByKind[msg.Grab] != 0 {
		t.Fatalf("post-reset ByKind: %+v", st.ByKind)
	}
}

// TestPerClassAccountingTotals: ByKind totals bucket into the five traffic
// classes exactly as injected, and sum to Messages.
func TestPerClassAccountingTotals(t *testing.T) {
	eng, n := newNet(t, 16, false)
	for i := 0; i < 16; i++ {
		n.Register(i, func(m *msg.Msg) {})
	}
	inject := map[msg.Kind]int{
		msg.CommitRequest: 4, // LargeC
		msg.BulkInv:       3, // LargeC
		msg.Grab:          5, // SmallC
		msg.CommitDone:    2, // SmallC
		msg.ReadShReply:   6, // RemoteShRd
	}
	for k, count := range inject {
		for i := 0; i < count; i++ {
			n.Send(&msg.Msg{Kind: k, Src: i % 4, Dst: 8 + i%4})
		}
	}
	eng.Run()
	st := n.Stats()
	var total uint64
	for _, c := range st.ByKind {
		total += c
	}
	if total != st.Messages || st.Messages != 20 {
		t.Fatalf("ByKind sums to %d, Messages = %d, want 20", total, st.Messages)
	}
	var byClass [msg.NumClasses]uint64
	for k, c := range st.ByKind {
		byClass[msg.Kind(k).ClassOf()] += c
	}
	if byClass[msg.ClassLargeC] != 7 {
		t.Fatalf("LargeC = %d, want 7", byClass[msg.ClassLargeC])
	}
	if byClass[msg.ClassSmallC] != 7 {
		t.Fatalf("SmallC = %d, want 7", byClass[msg.ClassSmallC])
	}
	if byClass[msg.ClassRemoteShRd] != 6 {
		t.Fatalf("RemoteShRd = %d, want 6", byClass[msg.ClassRemoteShRd])
	}
}

// TestNilFaultZeroCost: with no interposer installed the delivery schedule is
// identical to a network that never had the field (guard against the hook
// perturbing the fault-free path).
func TestNilFaultZeroCost(t *testing.T) {
	run := func(install bool) []event.Time {
		eng, n := newNet(t, 16, true)
		if install {
			n.Fault = &scriptInterposer{fn: func(m *msg.Msg, at event.Time) []Delivery {
				return []Delivery{{At: at, M: m}}
			}}
		}
		var at []event.Time
		n.Register(9, func(m *msg.Msg) { at = append(at, eng.Now()) })
		for s := 0; s < 10; s++ {
			n.Send(&msg.Msg{Kind: msg.CommitRequest, Src: s % 3, Dst: 9, Tag: msg.CTag{Seq: uint64(s)}})
		}
		eng.Run()
		return at
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatal("pass-through interposer changed delivery count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pass-through interposer changed delivery %d: %d vs %d", i, a[i], b[i])
		}
	}
}
