package chunk

import (
	"testing"

	"scalablebulk/internal/msg"
	"scalablebulk/internal/sig"
)

func mkChunk(accs []Access) *Chunk {
	c := &Chunk{Tag: msg.CTag{Proc: 0, Seq: 1}, Instr: 2000, Accesses: accs}
	c.Finalize(func(l sig.Line) int { return int(l) / 100 }) // dirs by line/100
	return c
}

func TestFinalizeSetsAndDirs(t *testing.T) {
	c := mkChunk([]Access{
		{Line: 10, Write: false},
		{Line: 110, Write: true},
		{Line: 210, Write: false},
		{Line: 10, Write: false}, // duplicate read
	})
	if len(c.ReadLines) != 2 || len(c.WriteLines) != 1 {
		t.Fatalf("reads=%v writes=%v", c.ReadLines, c.WriteLines)
	}
	wantDirs := []int{0, 1, 2}
	if len(c.Dirs) != 3 {
		t.Fatalf("Dirs = %v, want %v", c.Dirs, wantDirs)
	}
	for i, d := range wantDirs {
		if c.Dirs[i] != d {
			t.Fatalf("Dirs = %v, want %v", c.Dirs, wantDirs)
		}
	}
	if len(c.WriteDirs) != 1 || c.WriteDirs[0] != 1 {
		t.Fatalf("WriteDirs = %v, want [1]", c.WriteDirs)
	}
	if c.ReadOnlyDirs() != 2 {
		t.Fatalf("ReadOnlyDirs = %d, want 2", c.ReadOnlyDirs())
	}
}

func TestWriteSubsumesRead(t *testing.T) {
	c := mkChunk([]Access{
		{Line: 5, Write: false},
		{Line: 5, Write: true},
	})
	if len(c.WriteLines) != 1 || len(c.ReadLines) != 0 {
		t.Fatalf("read-then-write line must live only in write set: R=%v W=%v",
			c.ReadLines, c.WriteLines)
	}
	if !c.WSig.Member(5) {
		t.Fatal("written line missing from W signature")
	}
}

func TestConflictDetection(t *testing.T) {
	reader := mkChunk([]Access{{Line: 50, Write: false}})
	writer := mkChunk([]Access{{Line: 50, Write: true}})
	other := mkChunk([]Access{{Line: 9000, Write: true}})

	if !reader.ConflictsWith(&writer.WSig) {
		t.Fatal("read-write conflict missed")
	}
	if reader.ConflictsWith(&other.WSig) {
		t.Fatal("false conflict between disjoint local footprints")
	}
	// Write-write conflicts too.
	w2 := mkChunk([]Access{{Line: 50, Write: true}})
	if !w2.ConflictsWith(&writer.WSig) {
		t.Fatal("write-write conflict missed")
	}
}

func TestTrueConflictClassification(t *testing.T) {
	c := mkChunk([]Access{{Line: 7, Write: false}, {Line: 8, Write: true}})
	if !c.TrulyConflictsWith([]sig.Line{7}) {
		t.Fatal("true read conflict missed")
	}
	if !c.TrulyConflictsWith([]sig.Line{8}) {
		t.Fatal("true write conflict missed")
	}
	if c.TrulyConflictsWith([]sig.Line{9999}) {
		t.Fatal("phantom true conflict")
	}
}

func TestFinalizeIdempotent(t *testing.T) {
	c := mkChunk([]Access{{Line: 1, Write: true}, {Line: 201, Write: false}})
	d1 := append([]int(nil), c.Dirs...)
	c.Finalize(func(l sig.Line) int { return int(l) / 100 })
	if len(c.Dirs) != len(d1) {
		t.Fatalf("Finalize not idempotent: %v vs %v", c.Dirs, d1)
	}
	if len(c.WriteLines) != 1 || len(c.ReadLines) != 1 {
		t.Fatal("line sets duplicated on re-finalize")
	}
}
