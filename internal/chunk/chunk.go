// Package chunk represents the atomic instruction blocks the machine
// continuously executes: ~2000 dynamic instructions (Table 2), with read and
// write sets captured in hardware address signatures and, as the chunk
// executes, a list of the home directory modules of its accesses (the g_vec
// of Table 1, "formed by the processor as it executes a chunk").
package chunk

import (
	"sort"

	"scalablebulk/internal/msg"
	"scalablebulk/internal/sig"
)

// Access is one memory reference at cache-line granularity.
type Access struct {
	Line  sig.Line
	Write bool
}

// Chunk is one atomic block, as produced by the workload generator and
// executed by a processor.
type Chunk struct {
	Tag msg.CTag
	// Instr is the dynamic instruction count of the block (2000 unless the
	// chunk was cut short by a cache overflow or system call).
	Instr int
	// Accesses are the distinct-line memory references in program order.
	Accesses []Access

	// Derived at the end of execution:

	// RSig and WSig are the chunk's read and write signatures. WSig covers
	// written lines; RSig covers lines that were only read (a line both
	// read and written appears in WSig — conflicts are detected against
	// either set, and this mirrors how Bulk inserts).
	RSig, WSig sig.Sig
	// ReadLines and WriteLines are the distinct lines per set.
	ReadLines, WriteLines []sig.Line
	// Dirs is the g_vec: ascending IDs of every home directory of the
	// chunk's accesses. WriteDirs are those homing at least one write.
	Dirs      []int
	WriteDirs []int

	// Retries counts failed commit attempts (for starvation handling and
	// statistics). Squashes counts how many times the chunk was squashed.
	Retries  int
	Squashes int

	// ExecUseful and ExecMiss are filled by the processor model: cycles of
	// useful execution and of cache-miss stall spent on the (latest)
	// execution of this chunk. They move to the Squash bucket if the chunk
	// is squashed, or to Useful/CacheMiss when it commits (Figures 7/8).
	ExecUseful uint64
	ExecMiss   uint64
}

// Finalize computes signatures, distinct line sets and the g_vec once the
// chunk has executed. home maps a line to its home directory module.
func (c *Chunk) Finalize(home func(sig.Line) int) {
	c.RSig.Clear()
	c.WSig.Clear()
	c.ReadLines = c.ReadLines[:0]
	c.WriteLines = c.WriteLines[:0]

	written := make(map[sig.Line]bool, len(c.Accesses))
	read := make(map[sig.Line]bool, len(c.Accesses))
	for _, a := range c.Accesses {
		if a.Write {
			written[a.Line] = true
		} else {
			read[a.Line] = true
		}
	}

	dirSet := make(map[int]bool, 8)
	wDirSet := make(map[int]bool, 8)
	for l := range written {
		c.WSig.Insert(l)
		c.WriteLines = append(c.WriteLines, l)
		d := home(l)
		dirSet[d] = true
		wDirSet[d] = true
	}
	for l := range read {
		if written[l] {
			continue // write set subsumes
		}
		c.RSig.Insert(l)
		c.ReadLines = append(c.ReadLines, l)
		dirSet[home(l)] = true
	}
	sortLines(c.ReadLines)
	sortLines(c.WriteLines)

	c.Dirs = c.Dirs[:0]
	for d := range dirSet {
		c.Dirs = append(c.Dirs, d)
	}
	sort.Ints(c.Dirs)
	c.WriteDirs = c.WriteDirs[:0]
	for d := range wDirSet {
		c.WriteDirs = append(c.WriteDirs, d)
	}
	sort.Ints(c.WriteDirs)
}

func sortLines(ls []sig.Line) {
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
}

// ReadOnlyDirs returns how many participating directories record only reads
// (the "Read Group" bars of Figures 9 and 10).
func (c *Chunk) ReadOnlyDirs() int { return len(c.Dirs) - len(c.WriteDirs) }

// ConflictsWith reports whether committing `other` would squash this chunk:
// other's write signature overlaps this chunk's read or write signature
// (bulk disambiguation, §3.1). Signature-based, so aliasing can report a
// conflict that is not real — exactly as in hardware.
func (c *Chunk) ConflictsWith(otherW *sig.Sig) bool {
	return otherW.Overlaps(&c.RSig) || otherW.Overlaps(&c.WSig)
}

// TrulyConflictsWith reports whether an exact line of ws is really in the
// chunk's read or write set; used only to classify squashes into "data
// conflict" vs "signature aliasing" for the §6.1 statistics.
func (c *Chunk) TrulyConflictsWith(ws []sig.Line) bool {
	mine := make(map[sig.Line]bool, len(c.ReadLines)+len(c.WriteLines))
	for _, l := range c.ReadLines {
		mine[l] = true
	}
	for _, l := range c.WriteLines {
		mine[l] = true
	}
	for _, l := range ws {
		if mine[l] {
			return true
		}
	}
	return false
}
