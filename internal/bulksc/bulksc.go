// Package bulksc implements the BulkSC baseline commit protocol (Table 3:
// "Protocol from [5] with arbiter in the center"). A centralized arbiter —
// placed on the tile nearest the torus center — receives every commit
// request, allows concurrent commits of chunks whose address signatures are
// disjoint, and serializes its own decision making. The centralization is
// exactly what makes BulkSC scale poorly from 32 to 64 processors in the
// paper's Figure 13 (mean commit latency 98 → 2954 cycles).
package bulksc

import (
	"fmt"

	"scalablebulk/internal/chunk"
	"scalablebulk/internal/dir"
	"scalablebulk/internal/event"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/protocol"
	"scalablebulk/internal/protocol/kernel"
	"scalablebulk/internal/sig"
	"scalablebulk/internal/trace"
)

// Config tunes the arbiter.
type Config struct {
	// ServiceTime is the arbiter's base per-request decision time;
	// requests are serialized behind it (the centralization bottleneck).
	ServiceTime event.Time
	// PerInflight adds decision time per in-flight commit the request must
	// be intersected against. This load dependence is what collapses the
	// centralized arbiter between 32 and 64 processors (Figure 13: mean
	// commit latency 98 → 2954 cycles): more cores → more in-flight
	// signatures → slower decisions → longer queues → more in flight.
	PerInflight event.Time
	// RetryBackoff is how long a denied processor waits before re-sending
	// its permission-to-commit request.
	RetryBackoff event.Time
	// CommitDeadline is the stall watchdog: an attempt still awaiting its
	// arbiter decision this many cycles after the request is abandoned and
	// retried. Zero selects DefaultCommitDeadline; WatchdogDisabled turns
	// it off.
	CommitDeadline event.Time
}

// DefaultCommitDeadline and WatchdogDisabled alias the machine-wide values in
// internal/protocol, kept here so existing callers keep compiling.
const (
	DefaultCommitDeadline = protocol.DefaultCommitDeadline
	WatchdogDisabled      = protocol.WatchdogDisabled
)

// DefaultConfig mirrors a fast centralized arbiter.
func DefaultConfig() Config {
	return Config{ServiceTime: 6, PerInflight: 5, RetryBackoff: 30, CommitDeadline: DefaultCommitDeadline}
}

type inflight struct {
	tag        msg.CTag
	rsig, wsig sig.Sig
	writeLines []sig.Line
	try        int
}

// commitJob is the committing processor's side of a granted commit. try is
// the attempt index snapshotted at RequestCommit — ck.Retries moves when the
// attempt is refused, so every message matched against this attempt uses the
// snapshot.
type commitJob struct {
	ck      *chunk.Chunk
	try     uint64
	granted bool
	// inv counts each responder's ack once (dup guard).
	inv kernel.AckSet[int]
}

// Protocol is the BulkSC engine; it implements protocol.Engine.
type Protocol struct {
	env *dir.Env
	cfg Config
	k   *kernel.Kernel

	arbNode  int
	busy     event.Time // arbiter pipeline: time its queue drains
	inflight []*inflight

	jobs map[int]*commitJob // committing processor → job
}

var (
	_ protocol.Engine   = (*Protocol)(nil)
	_ protocol.Debugger = (*Protocol)(nil)
)

// New builds a BulkSC engine over env.
func New(env *dir.Env, cfg Config) *Protocol {
	if cfg.ServiceTime == 0 {
		cfg.ServiceTime = 6
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 30
	}
	return &Protocol{env: env, cfg: cfg, k: kernel.New(env, cfg.CommitDeadline),
		arbNode: env.Net.Center(), jobs: make(map[int]*commitJob)}
}

// Name implements dir.Protocol.
func (p *Protocol) Name() string { return Name }

// Stats implements protocol.Engine.
func (p *Protocol) Stats() map[string]uint64 {
	return map[string]uint64{"fail_watchdog": p.k.WD.Fired}
}

// ArbiterNode returns the tile hosting the centralized arbiter.
func (p *Protocol) ArbiterNode() int { return p.arbNode }

// RequestCommit implements dir.Protocol: send the signatures to the central
// arbiter and wait for OK / not-OK.
func (p *Protocol) RequestCommit(proc int, ck *chunk.Chunk) {
	p.k.Started(proc, ck)
	j := &commitJob{ck: ck, try: uint64(ck.Retries)}
	p.jobs[proc] = j
	p.env.Net.Send(&msg.Msg{
		Kind: msg.ArbRequest, Src: proc, Dst: p.arbNode, Tag: ck.Tag,
		RSig: ck.RSig, WSig: ck.WSig, WriteLines: ck.WriteLines,
		TID: j.try,
	})
	p.armWatchdog(proc, ck)
}

// armWatchdog schedules the kernel stall deadline for one commit attempt. An
// attempt already granted is past its serialization point (the arbiter
// checked it against everything in flight), so the deadline re-arms and
// keeps watching the ack collection; an attempt still awaiting its decision
// is abandoned and retried — a late grant for it is handed back with an
// abandoning arb_done so the arbiter's entry cannot leak.
func (p *Protocol) armWatchdog(proc int, ck *chunk.Chunk) {
	try := uint64(ck.Retries)
	p.k.WD.Arm(proc, false, ck.Tag, int(try), func() kernel.Disposition {
		j := p.jobs[proc]
		if j == nil || j.ck != ck || j.try != try {
			return kernel.Closed
		}
		if j.granted {
			return kernel.Watching
		}
		return kernel.Stalled
	}, func() {
		delete(p.jobs, proc)
		p.env.Cores[proc].CommitRefused(ck.Tag)
	})
}

// HandleDir implements dir.Protocol: arbiter-side processing.
func (p *Protocol) HandleDir(node int, m *msg.Msg) {
	if node != p.arbNode {
		panic(fmt.Sprintf("bulksc: directory message %s at non-arbiter node %d", m, node))
	}
	switch m.Kind {
	case msg.ArbRequest:
		p.onRequest(m)
	case msg.ArbDone:
		p.onDone(m)
	default:
		panic(fmt.Sprintf("bulksc: unexpected directory message %s", m))
	}
}

// onRequest queues the decision behind the arbiter's serialized pipeline.
func (p *Protocol) onRequest(m *msg.Msg) {
	now := p.env.Eng.Now()
	if p.busy < now {
		p.busy = now
	}
	p.busy += p.cfg.ServiceTime + p.cfg.PerInflight*event.Time(len(p.inflight))
	p.env.Eng.At(p.busy, func() { p.decide(m) })
}

func (p *Protocol) decide(m *msg.Msg) {
	for _, f := range p.inflight {
		if f.tag == m.Tag && f.try == int(m.TID) {
			// Duplicate of an attempt already granted and in flight: resend
			// the grant (idempotent at the processor) instead of
			// self-conflicting on the signature intersection below.
			p.env.Net.Send(&msg.Msg{Kind: msg.ArbGrant, Src: p.arbNode, Dst: m.Tag.Proc, Tag: m.Tag, TID: m.TID})
			return
		}
	}
	for _, f := range p.inflight {
		// The arbiter allows concurrent commits as long as the addresses a
		// chunk wrote do not overlap the addresses accessed by any other
		// committing chunk (§2.1).
		if m.WSig.Overlaps(&f.wsig) || m.WSig.Overlaps(&f.rsig) || m.RSig.Overlaps(&f.wsig) {
			p.env.Trace.Emit(trace.Event{
				Kind: trace.KRefused, Node: p.arbNode, Dir: true,
				Tag: m.Tag, Try: int(m.TID), Cause: trace.CauseDenied,
				Other: f.tag, HasOther: true,
			})
			p.env.Net.Send(&msg.Msg{Kind: msg.ArbDeny, Src: p.arbNode, Dst: m.Tag.Proc, Tag: m.Tag, TID: m.TID})
			return
		}
	}
	p.inflight = append(p.inflight, &inflight{
		tag: m.Tag, rsig: m.RSig, wsig: m.WSig, writeLines: m.WriteLines, try: int(m.TID),
	})
	p.k.HoldBegin(p.arbNode, m.Tag, int(m.TID))
	p.k.Formed(m.Tag.Proc, m.Tag.Seq, int(m.TID))
	p.env.Net.Send(&msg.Msg{Kind: msg.ArbGrant, Src: p.arbNode, Dst: m.Tag.Proc, Tag: m.Tag, TID: m.TID})
}

func (p *Protocol) onDone(m *msg.Msg) {
	for i, f := range p.inflight {
		if f.tag == m.Tag && f.try == int(m.TID) {
			if !m.Abandon {
				// The commit is globally visible: update directory state.
				for _, l := range f.writeLines {
					p.env.State.ApplyCommitWrite(l, f.tag.Proc)
				}
			}
			p.inflight = append(p.inflight[:i], p.inflight[i+1:]...)
			p.k.HoldEnd(p.arbNode, f.tag, f.try)
			return
		}
	}
}

// HandleProc implements dir.Protocol: committing-processor side.
func (p *Protocol) HandleProc(node int, m *msg.Msg) {
	switch m.Kind {
	case msg.ArbGrant:
		p.onGrant(node, m)
	case msg.ArbDeny:
		p.onDeny(node, m)
	case msg.ArbInv:
		// Bulk invalidation from another committing processor. A processor
		// awaiting its arbiter decision defers it (no ack until consumed);
		// otherwise invalidate, disambiguate, and ack.
		if p.env.Cores[node].MaybeDefer(m) {
			return
		}
		p.env.Cores[node].BulkInvalidate(&m.WSig, m.WriteLines, m.Tag.Proc, nil)
		p.env.Net.Send(&msg.Msg{Kind: msg.ArbInvAck, Src: node, Dst: m.Src, Tag: m.Tag, TID: m.TID})
	case msg.ArbInvAck:
		p.onInvAck(node, m)
	default:
		panic(fmt.Sprintf("bulksc: unexpected processor message %s", m))
	}
}

// onGrant: OK to commit — broadcast the W signature to every other
// processor for cached-line invalidation and chunk disambiguation.
func (p *Protocol) onGrant(node int, m *msg.Msg) {
	job := p.jobs[node]
	if job == nil || job.ck.Tag != m.Tag || job.try != m.TID {
		// Stale grant (the watchdog abandoned this attempt, or the grant was
		// duplicated past the commit): the arbiter is holding an in-flight
		// entry for a dead attempt — tear it down, without applying its
		// writes, or every overlapping commit is denied forever.
		p.env.Net.Send(&msg.Msg{Kind: msg.ArbDone, Src: node, Dst: p.arbNode, Tag: m.Tag, TID: m.TID, Abandon: true})
		return
	}
	if job.granted {
		return // duplicate grant; invalidations already broadcast
	}
	job.granted = true
	// The decision arrived: the conservative deferral window ends and any
	// buffered invalidations are consumed (they cannot conflict with the
	// granted chunk — the arbiter checked it against everything their
	// senders still have in flight).
	p.env.Cores[node].ResumeInvalidations()
	n := p.env.Net.Nodes()
	job.inv.Expect(n - 1)
	if job.inv.Done() {
		p.complete(node, job)
		return
	}
	for d := 0; d < n; d++ {
		if d == node {
			continue
		}
		p.env.Net.Send(&msg.Msg{
			Kind: msg.ArbInv, Src: node, Dst: d, Tag: m.Tag, TID: job.try,
			WSig: job.ck.WSig, WriteLines: job.ck.WriteLines,
		})
	}
}

func (p *Protocol) onDeny(node int, m *msg.Msg) {
	job := p.jobs[node]
	if job == nil || job.ck.Tag != m.Tag || job.try != m.TID || job.granted {
		return // stale or duplicated deny; a granted attempt ignores it
	}
	delete(p.jobs, node)
	p.env.Cores[node].CommitRefused(m.Tag)
}

func (p *Protocol) onInvAck(node int, m *msg.Msg) {
	job := p.jobs[node]
	if job == nil || job.ck.Tag != m.Tag || job.try != m.TID || !job.granted {
		return
	}
	if !job.inv.Ack(m.Src) {
		return // duplicate ack from the same responder
	}
	if job.inv.Done() {
		p.complete(node, job)
	}
}

func (p *Protocol) complete(node int, job *commitJob) {
	delete(p.jobs, node)
	tag := job.ck.Tag
	p.k.Done(node, false, tag, int(job.try))
	p.env.Net.Send(&msg.Msg{Kind: msg.ArbDone, Src: node, Dst: p.arbNode, Tag: tag, TID: job.try})
	p.env.Cores[node].CommitFinished(tag)
}

// DebugModule renders the arbiter's in-flight table for deadlock
// diagnostics (non-arbiter nodes hold no protocol state).
func (p *Protocol) DebugModule(i int) string {
	if i != p.arbNode || len(p.inflight) == 0 {
		return ""
	}
	s := fmt.Sprintf("ARB@%d busy=%d inflight:", p.arbNode, p.busy)
	for _, f := range p.inflight {
		s += fmt.Sprintf(" %s try=%d", f.tag, f.try)
	}
	return s
}

// ReadBlocked implements dir.Protocol: BulkSC directories hold no committing
// signatures, so reads are never nacked at the directory.
//
// Note on squash safety: BulkSC processors are conservative (§3.3) — they
// buffer incoming invalidation signatures while awaiting the arbiter's
// decision and ack only on consumption, so a sender stays in-flight at the
// arbiter until every receiver consumed its W signature. A chunk whose
// commit has been granted therefore can never be squashed by a buffered
// invalidation: the arbiter checked it against everything still in flight.
func (p *Protocol) ReadBlocked(node int, l sig.Line) bool { return false }

// PendingAttempts implements protocol.AttemptEnumerator: live commit jobs
// plus arbiter in-flight table entries.
func (p *Protocol) PendingAttempts() int {
	return len(p.jobs) + len(p.inflight)
}
