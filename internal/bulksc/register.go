package bulksc

import (
	"fmt"

	"scalablebulk/internal/dir"
	"scalablebulk/internal/protocol"
)

// Name is the registry key for the BulkSC engine.
const Name = "BulkSC"

func init() {
	protocol.Register(protocol.Descriptor{
		Name:           Name,
		Doc:            "BulkSC: centralized arbiter serializes commits, conservative invalidation (§2.2)",
		Rank:           3,
		Evaluated:      true,
		DefaultOptions: func() any { return DefaultConfig() },
		New: func(env *dir.Env, opts any) (protocol.Engine, error) {
			cfg, ok := opts.(Config)
			if !ok {
				return nil, fmt.Errorf("%s: options must be bulksc.Config, got %T", Name, opts)
			}
			return New(env, cfg), nil
		},
		Tuning: protocol.Tuning{ConservativeInv: true},
	})
}
