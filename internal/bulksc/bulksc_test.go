package bulksc_test

import (
	"testing"

	"scalablebulk/internal/msg"
	"scalablebulk/internal/system"
	"scalablebulk/internal/workload"
)

func run(t *testing.T, app string, cores, chunks int) *system.Result {
	t.Helper()
	prof, ok := workload.ByName(app)
	if !ok {
		t.Fatalf("unknown app %s", app)
	}
	cfg := system.DefaultConfig(cores, system.ProtoBulkSC)
	cfg.ChunksPerCore = chunks
	res, err := system.Run(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestArbiterRoundTrip: every commit makes an arbiter round trip (request →
// grant/deny), and grants are eventually released with arb_done.
func TestArbiterRoundTrip(t *testing.T) {
	res := run(t, "FFT", 16, 6)
	st := res.Traffic
	if st.ByKind[msg.ArbRequest] < res.ChunksCommitted {
		t.Fatalf("arb requests %d < commits %d", st.ByKind[msg.ArbRequest], res.ChunksCommitted)
	}
	if st.ByKind[msg.ArbGrant] != st.ByKind[msg.ArbDone] {
		t.Fatalf("grants %d != dones %d (in-flight leak)",
			st.ByKind[msg.ArbGrant], st.ByKind[msg.ArbDone])
	}
	if st.ByKind[msg.ArbGrant]+st.ByKind[msg.ArbDeny] != st.ByKind[msg.ArbRequest] {
		t.Fatalf("decisions %d != requests %d",
			st.ByKind[msg.ArbGrant]+st.ByKind[msg.ArbDeny], st.ByKind[msg.ArbRequest])
	}
}

// TestInvalidationBroadcast: a granted commit broadcasts its W signature to
// every other processor (n-1 arb_inv per grant), all acked.
func TestInvalidationBroadcast(t *testing.T) {
	const cores = 16
	res := run(t, "LU", cores, 4)
	st := res.Traffic
	wantInv := st.ByKind[msg.ArbGrant] * (cores - 1)
	if st.ByKind[msg.ArbInv] != wantInv {
		t.Fatalf("arb_inv = %d, want grants×(n-1) = %d", st.ByKind[msg.ArbInv], wantInv)
	}
	if st.ByKind[msg.ArbInvAck] != st.ByKind[msg.ArbInv] {
		t.Fatalf("acks %d != invs %d", st.ByKind[msg.ArbInvAck], st.ByKind[msg.ArbInv])
	}
}

// TestDenyAndRetry: overlapping chunks get denied and retry until granted.
func TestDenyAndRetry(t *testing.T) {
	res := run(t, "Canneal", 64, 8)
	if res.ChunksCommitted != 64*8 {
		t.Fatalf("committed %d", res.ChunksCommitted)
	}
	if res.Traffic.ByKind[msg.ArbDeny] == 0 {
		t.Fatal("expected arbiter denials on a conflicting 64-processor run")
	}
}

// TestCentralizationCollapse is the Figure 13 cliff: with the same per-core
// work, the 64-processor machine's mean commit latency is far above the
// 16-processor machine's, because every decision funnels through one
// arbiter whose service time grows with the in-flight set.
func TestCentralizationCollapse(t *testing.T) {
	small := run(t, "Barnes", 16, 8)
	big := run(t, "Barnes", 64, 8)
	if big.MeanCommitLatency() < 1.5*small.MeanCommitLatency() {
		t.Fatalf("no collapse: 64p latency %.0f vs 16p %.0f",
			big.MeanCommitLatency(), small.MeanCommitLatency())
	}
}

// TestConservativeWindowDeadlockFree: processors defer invalidations while
// awaiting the arbiter's decision; mutual deferral must not deadlock.
func TestConservativeWindowDeadlockFree(t *testing.T) {
	// Heavy mutual sharing maximizes the cross-deferral window.
	res := run(t, "Blackscholes", 32, 6)
	if res.ChunksCommitted != 32*6 {
		t.Fatalf("committed %d", res.ChunksCommitted)
	}
}
