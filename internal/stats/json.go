package stats

import "encoding/json"

// collectorJSON is the Collector's serialized form for sweep checkpoint
// journals. It must round-trip every field that any figure reduction reads —
// including the closed commit attempts behind BottleneckRatio — so that a
// result restored from a journal renders byte-identical figure output.
type collectorJSON struct {
	CommitLat          []uint32   `json:"commit_lat"`
	DirsTotal          []uint8    `json:"dirs_total"`
	DirsWrite          []uint8    `json:"dirs_write"`
	Attempts           []*Attempt `json:"attempts"`
	QueueSamples       []int      `json:"queue_samples"`
	SquashTrueConflict uint64     `json:"squash_true_conflict"`
	SquashAliasing     uint64     `json:"squash_aliasing"`
	ChunksCommitted    uint64     `json:"chunks_committed"`
	CommitFailures     uint64     `json:"commit_failures"`
	ReadNacks          uint64     `json:"read_nacks"`
}

// MarshalJSON serializes the collector, including the closed commit attempts
// (the open map is empty once a run completes, and the observer hooks are
// run-scoped, so neither is persisted).
func (c *Collector) MarshalJSON() ([]byte, error) {
	return json.Marshal(collectorJSON{
		CommitLat: c.CommitLat, DirsTotal: c.DirsTotal, DirsWrite: c.DirsWrite,
		Attempts: c.attempts, QueueSamples: c.QueueSamples,
		SquashTrueConflict: c.SquashTrueConflict, SquashAliasing: c.SquashAliasing,
		ChunksCommitted: c.ChunksCommitted, CommitFailures: c.CommitFailures,
		ReadNacks: c.ReadNacks,
	})
}

// UnmarshalJSON restores a collector serialized by MarshalJSON.
func (c *Collector) UnmarshalJSON(data []byte) error {
	var v collectorJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*c = Collector{
		CommitLat: v.CommitLat, DirsTotal: v.DirsTotal, DirsWrite: v.DirsWrite,
		attempts: v.Attempts, QueueSamples: v.QueueSamples,
		SquashTrueConflict: v.SquashTrueConflict, SquashAliasing: v.SquashAliasing,
		ChunksCommitted: v.ChunksCommitted, CommitFailures: v.CommitFailures,
		ReadNacks: v.ReadNacks,
		open:      make(map[attemptKey]*Attempt),
	}
	return nil
}
