// Package stats collects and reduces every metric the paper's evaluation
// section reports: per-core cycle breakdowns (Figures 7/8), directories
// accessed per chunk commit (Figures 9–12), commit latency distributions
// (Figure 13), the bottleneck ratio (Figures 14/15), chunk queue lengths
// (Figures 16/17), and squash classification (§6.1).
package stats

import (
	"sort"

	"scalablebulk/internal/event"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/trace"
)

// TrafficClasses reduces per-kind message counts into the five Figure 18/19
// classes. Read transactions are reconstructed from their replies: a memory
// read is request+reply (2 messages), a remote-shared read likewise, and a
// remote-dirty read is request+forward+reply (3 messages). Nacked reads and
// their retries count as small commit-protocol traffic, since the nack is a
// commit-window artifact (§3.1).
func TrafficClasses(byKind [msg.NumKinds]uint64) [msg.NumClasses]uint64 {
	var out [msg.NumClasses]uint64
	out[msg.ClassMemRd] = 2 * byKind[msg.ReadMemReply]
	out[msg.ClassRemoteShRd] = 2 * byKind[msg.ReadShReply]
	out[msg.ClassRemoteDirtyRd] = 3 * byKind[msg.ReadDirtyReply]
	for k := 0; k < msg.NumKinds; k++ {
		kind := msg.Kind(k)
		switch kind {
		case msg.ReadReq, msg.ReadMemReply, msg.ReadShReply,
			msg.ReadDirtyFwd, msg.ReadDirtyReply:
			continue
		case msg.ReadNack:
			out[msg.ClassSmallC] += 2 * byKind[k] // nack + retried request
		default:
			out[kind.ClassOf()] += byKind[k]
		}
	}
	return out
}

// Breakdown is the per-core cycle accounting of Figures 7/8: cycles
// executing one instruction (Useful), stalling for cache misses (CacheMiss),
// stalling waiting for a chunk to commit (Commit), and wasted on squashed
// chunks (Squash).
type Breakdown struct {
	Useful    uint64
	CacheMiss uint64
	Commit    uint64
	Squash    uint64
}

// Total returns the sum of all categories.
func (b Breakdown) Total() uint64 { return b.Useful + b.CacheMiss + b.Commit + b.Squash }

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.Useful += o.Useful
	b.CacheMiss += o.CacheMiss
	b.Commit += o.Commit
	b.Squash += o.Squash
}

// Attempt records one commit attempt's milestones for the bottleneck-ratio
// computation (§6.4.1): Req is when the commit was initiated (group
// formation starts), Formed is when the group formed (commit authorized),
// Done is when the commit fully completed. Failed attempts have Formed ==
// Done == 0 and Success == false.
type Attempt struct {
	Req, Formed, Done event.Time
	Success           bool
}

// Collector gathers protocol- and core-level events during a run. It is
// single-threaded, like the simulator.
type Collector struct {
	// CommitLat holds the latency (cycles from commit request to commit
	// completion at the processor) of every successful chunk commit.
	CommitLat []uint32
	// DirsTotal and DirsWrite hold, per successful commit, the number of
	// directories accessed and how many of them recorded writes.
	DirsTotal []uint8
	DirsWrite []uint8

	attempts []*Attempt
	open     map[attemptKey]*Attempt

	// QueueSamples holds the machine-wide count of chunks queued waiting to
	// commit, sampled at each new group formation (§6.4.2).
	QueueSamples []int

	// Squash accounting (§6.1).
	SquashTrueConflict uint64
	SquashAliasing     uint64

	// ChunksCommitted counts successful commits.
	ChunksCommitted uint64
	// CommitFailures counts failed commit attempts (retries).
	CommitFailures uint64
	// ReadNacks counts loads bounced by directories (§3.1).
	ReadNacks uint64

	// OnFormed and OnEnded, when non-nil, mirror GroupFormed / CommitEnded
	// events to an external observer (the invariant checker). Nil on
	// performance runs.
	OnFormed func(proc int, seq uint64, try int, t event.Time)
	OnEnded  func(proc int, seq uint64, try int, t event.Time, success bool)

	// Trace, when non-nil, mirrors every commit attempt as a structured
	// KCommit span (begin at CommitStarted, formed instant, end at
	// CommitEnded). Because all four protocols report their milestones
	// here, this one hook gives them a uniform lifecycle trace.
	Trace *trace.Tracer
}

type attemptKey struct {
	proc int
	seq  uint64
	try  int
}

// New returns an empty collector.
func New() *Collector {
	return &Collector{open: make(map[attemptKey]*Attempt)}
}

// CommitStarted records the beginning of a commit attempt (the try index
// distinguishes retries of the same chunk).
func (c *Collector) CommitStarted(proc int, seq uint64, try int, t event.Time) {
	a := &Attempt{Req: t}
	c.attempts = append(c.attempts, a)
	c.open[attemptKey{proc, seq, try}] = a
	c.Trace.Span(trace.KCommit, trace.PhaseBegin, proc, false, msg.CTag{Proc: proc, Seq: seq}, try)
}

// GroupFormed records that the attempt's group formed (or, for baselines,
// that the commit was authorized) at time t.
func (c *Collector) GroupFormed(proc int, seq uint64, try int, t event.Time) {
	if a := c.open[attemptKey{proc, seq, try}]; a != nil {
		a.Formed = t
	}
	c.Trace.Instant(trace.KGroupFormed, proc, false, msg.CTag{Proc: proc, Seq: seq}, try)
	if c.OnFormed != nil {
		c.OnFormed(proc, seq, try, t)
	}
}

// CommitEnded closes an attempt. For successful attempts t is when the
// processor learned the commit completed; lat is recorded into CommitLat by
// the caller via CommitLatency.
func (c *Collector) CommitEnded(proc int, seq uint64, try int, t event.Time, success bool) {
	k := attemptKey{proc, seq, try}
	if a := c.open[k]; a != nil {
		a.Done = t
		a.Success = success
		delete(c.open, k)
	}
	if success {
		c.ChunksCommitted++
	} else {
		c.CommitFailures++
	}
	c.Trace.Emit(trace.Event{
		Kind: trace.KCommit, Phase: trace.PhaseEnd, Node: proc,
		Tag: msg.CTag{Proc: proc, Seq: seq}, Try: try, OK: success,
	})
	if c.OnEnded != nil {
		c.OnEnded(proc, seq, try, t, success)
	}
}

// CommitLatency records one successful commit's latency in cycles.
func (c *Collector) CommitLatency(cycles event.Time) {
	c.CommitLat = append(c.CommitLat, uint32(cycles))
}

// DirsPerCommit records the group size of one successful commit.
func (c *Collector) DirsPerCommit(total, write int) {
	c.DirsTotal = append(c.DirsTotal, clamp8(total))
	c.DirsWrite = append(c.DirsWrite, clamp8(write))
}

func clamp8(v int) uint8 {
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// SampleQueue records the machine-wide queued-chunk count at a formation.
func (c *Collector) SampleQueue(n int) { c.QueueSamples = append(c.QueueSamples, n) }

// Squashed classifies one squash as a true data conflict or signature
// aliasing.
func (c *Collector) Squashed(trueConflict bool) {
	if trueConflict {
		c.SquashTrueConflict++
	} else {
		c.SquashAliasing++
	}
}

// --- Reductions ---

// MeanCommitLatency returns the mean successful-commit latency in cycles.
func (c *Collector) MeanCommitLatency() float64 {
	if len(c.CommitLat) == 0 {
		return 0
	}
	var sum uint64
	for _, v := range c.CommitLat {
		sum += uint64(v)
	}
	return float64(sum) / float64(len(c.CommitLat))
}

// LatencyHistogram buckets commit latencies: bucket i covers
// [i*width, (i+1)*width); the final bucket is open-ended.
func (c *Collector) LatencyHistogram(width uint32, buckets int) []int {
	h := make([]int, buckets)
	for _, v := range c.CommitLat {
		b := int(v / width)
		if b >= buckets {
			b = buckets - 1
		}
		h[b]++
	}
	return h
}

// MeanDirsPerCommit returns the average number of directories accessed per
// commit, total and write-recording (Figures 9/10).
func (c *Collector) MeanDirsPerCommit() (total, write float64) {
	if len(c.DirsTotal) == 0 {
		return 0, 0
	}
	var st, sw uint64
	for i := range c.DirsTotal {
		st += uint64(c.DirsTotal[i])
		sw += uint64(c.DirsWrite[i])
	}
	n := float64(len(c.DirsTotal))
	return float64(st) / n, float64(sw) / n
}

// DirsDistribution returns the percentage of commits that accessed exactly
// 0,1,...,max directories, with the final entry covering "more" (Figs 11/12).
func (c *Collector) DirsDistribution(max int) []float64 {
	out := make([]float64, max+2)
	if len(c.DirsTotal) == 0 {
		return out
	}
	for _, d := range c.DirsTotal {
		i := int(d)
		if i > max {
			i = max + 1
		}
		out[i]++
	}
	for i := range out {
		out[i] = out[i] * 100 / float64(len(c.DirsTotal))
	}
	return out
}

// BottleneckRatio computes §6.4.1's metric: at each group formation event,
// the number of chunks in the process of forming groups that will
// eventually succeed, divided by the number of chunks that have formed
// groups and are completing their commit; the per-event ratios are averaged.
func (c *Collector) BottleneckRatio() float64 {
	type ev struct {
		t     event.Time
		kind  int // 0 = start forming, 1 = formed, 2 = done
		order int
	}
	var evs []ev
	for _, a := range c.attempts {
		if !a.Success || a.Formed == 0 {
			continue // exclude chunks whose formation is later squashed (§6.4.1)
		}
		evs = append(evs, ev{a.Req, 0, len(evs)}, ev{a.Formed, 1, len(evs)}, ev{a.Done, 2, len(evs)})
	}
	if len(evs) == 0 {
		return 0
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		if evs[i].kind != evs[j].kind {
			// At a tie, respect causality within an attempt: it starts
			// forming, forms, then completes — otherwise a zero-duration
			// commit decrements the committing count before incrementing
			// it and the ratio divides by zero.
			return evs[i].kind < evs[j].kind
		}
		return evs[i].order < evs[j].order
	})

	forming, committing := 0, 0
	var sum float64
	n := 0
	for _, e := range evs {
		switch e.kind {
		case 0:
			forming++
		case 1:
			// "This ratio is sampled every time that a new group is
			// formed" — the new group counts as committing, not forming.
			forming--
			committing++
			sum += float64(forming) / float64(committing)
			n++
		case 2:
			committing--
		}
	}
	return sum / float64(n)
}

// MeanQueueLength returns the average sampled chunk queue length (§6.4.2).
func (c *Collector) MeanQueueLength() float64 {
	if len(c.QueueSamples) == 0 {
		return 0
	}
	sum := 0
	for _, v := range c.QueueSamples {
		sum += v
	}
	return float64(sum) / float64(len(c.QueueSamples))
}
