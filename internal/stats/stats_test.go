package stats

import (
	"math"
	"scalablebulk/internal/event"
	"scalablebulk/internal/msg"
	"testing"
)

func TestBreakdown(t *testing.T) {
	b := Breakdown{Useful: 10, CacheMiss: 5, Commit: 3, Squash: 2}
	if b.Total() != 20 {
		t.Fatalf("Total = %d", b.Total())
	}
	b.Add(Breakdown{Useful: 1, CacheMiss: 1, Commit: 1, Squash: 1})
	if b.Total() != 24 || b.Useful != 11 {
		t.Fatalf("Add wrong: %+v", b)
	}
}

func TestMeanCommitLatency(t *testing.T) {
	c := New()
	if c.MeanCommitLatency() != 0 {
		t.Fatal("empty mean not 0")
	}
	c.CommitLatency(100)
	c.CommitLatency(200)
	if got := c.MeanCommitLatency(); got != 150 {
		t.Fatalf("mean = %v", got)
	}
}

func TestLatencyHistogram(t *testing.T) {
	c := New()
	for _, v := range []uint32{5, 15, 25, 9999} {
		c.CommitLatency(event.Time(v))
	}
	h := c.LatencyHistogram(10, 4)
	want := []int{1, 1, 1, 1} // last bucket open-ended
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("hist = %v, want %v", h, want)
		}
	}
}

func TestDirsPerCommit(t *testing.T) {
	c := New()
	c.DirsPerCommit(4, 2)
	c.DirsPerCommit(2, 1)
	tot, wr := c.MeanDirsPerCommit()
	if tot != 3 || wr != 1.5 {
		t.Fatalf("means = %v,%v", tot, wr)
	}
	c.DirsPerCommit(500, 500) // clamped
	if c.DirsTotal[2] != 255 {
		t.Fatal("clamp failed")
	}
}

func TestDirsDistribution(t *testing.T) {
	c := New()
	c.DirsPerCommit(1, 0)
	c.DirsPerCommit(1, 1)
	c.DirsPerCommit(3, 1)
	c.DirsPerCommit(20, 5)
	d := c.DirsDistribution(14)
	if d[1] != 50 {
		t.Fatalf("d[1] = %v, want 50", d[1])
	}
	if d[3] != 25 {
		t.Fatalf("d[3] = %v, want 25", d[3])
	}
	if d[15] != 25 { // "more" bucket
		t.Fatalf("more bucket = %v, want 25", d[15])
	}
	var sum float64
	for _, v := range d {
		sum += v
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Fatalf("distribution sums to %v", sum)
	}
}

func TestAttemptLifecycleCounts(t *testing.T) {
	c := New()
	c.CommitStarted(0, 1, 0, 10)
	c.GroupFormed(0, 1, 0, 20)
	c.CommitEnded(0, 1, 0, 30, true)
	c.CommitStarted(1, 1, 0, 12)
	c.CommitEnded(1, 1, 0, 25, false)
	if c.ChunksCommitted != 1 || c.CommitFailures != 1 {
		t.Fatalf("committed=%d failures=%d", c.ChunksCommitted, c.CommitFailures)
	}
}

func TestBottleneckRatioSerialVsOverlapped(t *testing.T) {
	// Fully serial commits: while each group forms, no other is committing
	// except the previous one finishing — construct a clearly bottlenecked
	// trace vs a clearly overlapped one and compare.
	serial := New()
	// Ten chunks all request at t=0 but form one at a time (stalled waiting
	// for one another): at each formation many chunks are still forming.
	for i := 0; i < 10; i++ {
		serial.CommitStarted(i, 1, 0, 0)
		serial.GroupFormed(i, 1, 0, event.Time(100*(i+1)))
		serial.CommitEnded(i, 1, 0, event.Time(100*(i+1)+50), true)
	}
	fast := New()
	// Ten chunks whose groups form immediately and commit slowly: at each
	// formation nobody else is stuck forming.
	for i := 0; i < 10; i++ {
		t0 := event.Time(i * 10)
		fast.CommitStarted(i, 1, 0, t0)
		fast.GroupFormed(i, 1, 0, t0+1)
		fast.CommitEnded(i, 1, 0, t0+100, true)
	}
	if serial.BottleneckRatio() <= fast.BottleneckRatio() {
		t.Fatalf("serial ratio %v should exceed overlapped ratio %v",
			serial.BottleneckRatio(), fast.BottleneckRatio())
	}
}

func TestBottleneckRatioExcludesFailures(t *testing.T) {
	c := New()
	c.CommitStarted(0, 1, 0, 0)
	c.CommitEnded(0, 1, 0, 50, false) // failed: excluded
	if got := c.BottleneckRatio(); got != 0 {
		t.Fatalf("ratio with only failures = %v, want 0", got)
	}
}

func TestQueueSamples(t *testing.T) {
	c := New()
	if c.MeanQueueLength() != 0 {
		t.Fatal("empty queue mean not 0")
	}
	c.SampleQueue(2)
	c.SampleQueue(4)
	if c.MeanQueueLength() != 3 {
		t.Fatalf("mean queue = %v", c.MeanQueueLength())
	}
}

func TestSquashClassification(t *testing.T) {
	c := New()
	c.Squashed(true)
	c.Squashed(false)
	c.Squashed(false)
	if c.SquashTrueConflict != 1 || c.SquashAliasing != 2 {
		t.Fatalf("squash counts %d/%d", c.SquashTrueConflict, c.SquashAliasing)
	}
}

func TestTrafficClasses(t *testing.T) {
	var byKind [msg.NumKinds]uint64
	byKind[msg.ReadReq] = 10 // requests are reconstructed from replies
	byKind[msg.ReadMemReply] = 4
	byKind[msg.ReadShReply] = 3
	byKind[msg.ReadDirtyFwd] = 2
	byKind[msg.ReadDirtyReply] = 2
	byKind[msg.ReadNack] = 1
	byKind[msg.CommitRequest] = 5 // large (carries signatures)
	byKind[msg.BulkInv] = 6       // large
	byKind[msg.Grab] = 7          // small
	byKind[msg.CommitDone] = 8    // small

	cls := TrafficClasses(byKind)
	if cls[msg.ClassMemRd] != 8 { // 2 × replies
		t.Errorf("MemRd = %d, want 8", cls[msg.ClassMemRd])
	}
	if cls[msg.ClassRemoteShRd] != 6 {
		t.Errorf("RemoteShRd = %d, want 6", cls[msg.ClassRemoteShRd])
	}
	if cls[msg.ClassRemoteDirtyRd] != 6 { // 3 × replies
		t.Errorf("RemoteDirtyRd = %d, want 6", cls[msg.ClassRemoteDirtyRd])
	}
	if cls[msg.ClassLargeC] != 11 {
		t.Errorf("LargeC = %d, want 11", cls[msg.ClassLargeC])
	}
	if cls[msg.ClassSmallC] != 17 { // 7 + 8 + 2×nack
		t.Errorf("SmallC = %d, want 17", cls[msg.ClassSmallC])
	}
}
