package sig

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

// linesFrom decodes a byte string into a bounded list of line addresses, the
// shared input shape for the fuzz targets and quick properties.
func linesFrom(data []byte) []Line {
	var ls []Line
	for len(data) >= 8 && len(ls) < 256 {
		ls = append(ls, Line(binary.LittleEndian.Uint64(data)))
		data = data[8:]
	}
	return ls
}

func sigPair(data []byte) (Sig, Sig, []Line, []Line) {
	ls := linesFrom(data)
	half := len(ls) / 2
	return FromLines(ls[:half]), FromLines(ls[half:]), ls[:half], ls[half:]
}

// checkAgainstRef asserts every optimized kernel is bit-equivalent to its
// reference implementation on the given pair, and that the Bloom-filter
// algebra holds. It is the single oracle shared by fuzzing and quick.Check.
func checkAgainstRef(t *testing.T, a, b Sig, aLines, bLines []Line) {
	t.Helper()
	if a.Empty() != RefEmpty(&a) {
		t.Fatalf("Empty disagrees with RefEmpty: %v vs %v (%s)", a.Empty(), RefEmpty(&a), a.Dump())
	}
	if got, ref := a.Overlaps(&b), RefOverlaps(&a, &b); got != ref {
		t.Fatalf("Overlaps disagrees with RefOverlaps: %v vs %v", got, ref)
	}
	if got, ref := a.Intersect(b), RefIntersect(a, b); got != ref {
		t.Fatalf("Intersect disagrees with RefIntersect")
	}
	if got, ref := a.Union(b), RefUnion(a, b); got != ref {
		t.Fatalf("Union disagrees with RefUnion")
	}
	if got, ref := a.BankOverlap(&b), RefBankOverlap(&a, &b); got != ref {
		t.Fatalf("BankOverlap disagrees with RefBankOverlap: %v vs %v", got, ref)
	}

	// No false negatives: every inserted line is a member (both kernels).
	for _, l := range aLines {
		if !a.Member(l) || !RefMember(&a, l) {
			t.Fatalf("inserted line %#x not a member", uint64(l))
		}
	}

	// Overlaps is symmetric and consistent with intersection emptiness.
	if a.Overlaps(&b) != b.Overlaps(&a) {
		t.Fatalf("Overlaps not symmetric")
	}
	inter := a.Intersect(b)
	if a.Overlaps(&b) != !inter.Empty() {
		t.Fatalf("Overlaps=%v inconsistent with Intersect().Empty()=%v", a.Overlaps(&b), inter.Empty())
	}

	// Union is a superset of both operands: every line inserted into either
	// side is a member of the union, and unioning back changes nothing.
	u := a.Union(b)
	for _, l := range append(append([]Line(nil), aLines...), bLines...) {
		if !u.Member(l) {
			t.Fatalf("union missing line %#x", uint64(l))
		}
	}
	if u.Union(a) != u || u.Union(b) != u {
		t.Fatalf("Union not absorbing its operands")
	}

	// Clear implies Empty, under both kernels.
	c := a
	c.Clear()
	if !c.Empty() || !RefEmpty(&c) {
		t.Fatalf("cleared signature not empty")
	}

	// Non-empty signatures have occupancy; empty ones estimate zero lines.
	if len(aLines) > 0 && a.Empty() {
		t.Fatalf("signature with %d inserts reports Empty", len(aLines))
	}
	if len(aLines) == 0 && (!a.Empty() || a.PopCount() != 0) {
		t.Fatalf("zero-insert signature not empty")
	}
}

// FuzzSigMembership fuzzes single-signature invariants: inserted lines are
// always members, Clear implies Empty, and optimized kernels match reference.
func FuzzSigMembership(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0})
	seed := make([]byte, 8*64)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		ls := linesFrom(data)
		s := FromLines(ls)
		for _, l := range ls {
			if !s.Member(l) || !RefMember(&s, l) {
				t.Fatalf("false negative for line %#x", uint64(l))
			}
		}
		if s.Empty() != RefEmpty(&s) {
			t.Fatalf("Empty kernel disagreement: opt=%v ref=%v inserts=%d", s.Empty(), RefEmpty(&s), len(ls))
		}
		if len(ls) > 0 && s.Empty() {
			t.Fatalf("signature with %d inserts reports Empty", len(ls))
		}
		s.Clear()
		if !s.Empty() || s.PopCount() != 0 {
			t.Fatalf("Clear did not empty the signature")
		}
	})
}

// FuzzSigSetOps fuzzes two-signature set algebra and new-vs-reference kernel
// equivalence.
func FuzzSigSetOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0})
	mixed := make([]byte, 8*32)
	for i := range mixed {
		mixed[i] = byte(i*i + 11)
	}
	f.Add(mixed)
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b, aLines, bLines := sigPair(data)
		checkAgainstRef(t, a, b, aLines, bLines)
	})
}

// TestQuickSigProperties runs the same oracle under testing/quick's random
// generator, which explores a different input distribution than the fuzzer's
// corpus mutation.
func TestQuickSigProperties(t *testing.T) {
	prop := func(raw []byte) bool {
		a, b, aLines, bLines := sigPair(raw)
		checkAgainstRef(t, a, b, aLines, bLines)
		return !t.Failed()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMemberKernelsAgree probes membership of arbitrary (not necessarily
// inserted) lines: the optimized and reference Member must agree everywhere,
// including on false-positive probes.
func TestQuickMemberKernelsAgree(t *testing.T) {
	prop := func(inserted []uint64, probes []uint64) bool {
		var s Sig
		for _, l := range inserted {
			s.Insert(Line(l))
		}
		for _, p := range probes {
			if s.Member(Line(p)) != RefMember(&s, Line(p)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSigOverlaps(b *testing.B) {
	a := FromLines([]Line{1, 513, 4097, 70000})
	c := FromLines([]Line{2, 514, 4098, 70001})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkBool = a.Overlaps(&c)
	}
}

func BenchmarkSigOverlapsRef(b *testing.B) {
	a := FromLines([]Line{1, 513, 4097, 70000})
	c := FromLines([]Line{2, 514, 4098, 70001})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkBool = RefOverlaps(&a, &c)
	}
}

func BenchmarkSigUnion(b *testing.B) {
	a := FromLines([]Line{1, 513, 4097, 70000})
	c := FromLines([]Line{2, 514, 4098, 70001})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkSig = a.Union(c)
	}
}

func BenchmarkSigUnionRef(b *testing.B) {
	a := FromLines([]Line{1, 513, 4097, 70000})
	c := FromLines([]Line{2, 514, 4098, 70001})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkSig = RefUnion(a, c)
	}
}

var (
	sinkBool bool
	sinkSig  Sig
)
