package sig

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyZeroValue(t *testing.T) {
	var s Sig
	if !s.Empty() {
		t.Fatal("zero-value signature is not empty")
	}
	if s.Member(42) {
		t.Fatal("empty signature claims membership")
	}
	if s.PopCount() != 0 {
		t.Fatal("empty signature has set bits")
	}
}

func TestInsertMember(t *testing.T) {
	var s Sig
	lines := []Line{0, 1, 2, 0xdeadbeef, 1 << 40, 12345}
	for _, l := range lines {
		s.Insert(l)
	}
	for _, l := range lines {
		if !s.Member(l) {
			t.Fatalf("line %#x inserted but not member (false negative)", l)
		}
	}
	if s.Empty() {
		t.Fatal("non-empty signature reports Empty")
	}
}

func TestClear(t *testing.T) {
	var s Sig
	s.Insert(7)
	s.Clear()
	if !s.Empty() || s.Member(7) {
		t.Fatal("Clear did not empty the signature")
	}
}

func TestIntersectionSoundness(t *testing.T) {
	// Sets with a common element must overlap (no false negatives).
	a := FromLines([]Line{10, 20, 30})
	b := FromLines([]Line{99, 30, 777})
	if !a.Overlaps(&b) {
		t.Fatal("signatures of intersecting sets report disjoint")
	}
	inter := a.Intersect(b)
	if !inter.Member(30) {
		t.Fatal("intersection lost common element")
	}
}

func TestUnionContainsBoth(t *testing.T) {
	a := FromLines([]Line{1, 2, 3})
	b := FromLines([]Line{100, 200})
	u := a.Union(b)
	for _, l := range []Line{1, 2, 3, 100, 200} {
		if !u.Member(l) {
			t.Fatalf("union missing %d", l)
		}
	}
}

// clusteredSet emulates a realistic chunk footprint: a few runs of
// consecutive lines starting at random pages inside a region of the address
// space. Real chunk footprints are spatially clustered like this; the Bulk
// signature scheme is designed around that property.
func clusteredSet(rng *rand.Rand, region uint64, runs, runLen int) []Line {
	var out []Line
	for r := 0; r < runs; r++ {
		page := region + uint64(rng.Intn(1<<16))*128 // random page in region
		off := uint64(rng.Intn(128 - runLen))
		for i := 0; i < runLen; i++ {
			out = append(out, Line(page+off+uint64(i)))
		}
	}
	return out
}

func TestDisjointClusteredSetsUsuallyDisjoint(t *testing.T) {
	// Two chunks with clustered footprints in disjoint address regions must
	// almost never alias. Statistical, but deterministic with a fixed seed.
	rng := rand.New(rand.NewSource(1))
	falsePos := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		a := FromLines(clusteredSet(rng, 0, 8, 4))     // 32 lines, region A
		b := FromLines(clusteredSet(rng, 1<<40, 8, 4)) // 32 lines, region B
		if a.Overlaps(&b) {
			falsePos++
		}
	}
	if falsePos > trials/20 { // < 5%
		t.Fatalf("false positive rate too high: %d/%d", falsePos, trials)
	}
}

func TestSamePageDisjointLinesAreDisjoint(t *testing.T) {
	// Bank 0 indexes by exact line offset within 16 KB regions, so two
	// disjoint line sets inside the same page can never alias.
	a := FromLines([]Line{1000, 1001, 1002})
	b := FromLines([]Line{1010, 1011, 1012})
	if a.Overlaps(&b) {
		t.Fatal("disjoint same-page line sets alias")
	}
}

func TestEstimateCardinality(t *testing.T) {
	var s Sig
	for i := 0; i < 64; i++ {
		s.Insert(Line(i * 977))
	}
	est := s.EstimateCardinality()
	if est < 48 || est > 80 {
		t.Fatalf("cardinality estimate %d far from 64", est)
	}
}

func TestStringAndDump(t *testing.T) {
	var s Sig
	s.Insert(5)
	if s.String() == "" || s.Dump() == "" {
		t.Fatal("empty string rendering")
	}
}

// Property: no false negatives — every inserted line is a member, and a
// signature overlaps any signature that shares a line with it.
func TestPropertyNoFalseNegatives(t *testing.T) {
	f := func(ls []uint64, extra []uint64, shared uint64) bool {
		if len(ls) > 256 {
			ls = ls[:256]
		}
		if len(extra) > 256 {
			extra = extra[:256]
		}
		var a, b Sig
		for _, l := range ls {
			a.Insert(Line(l))
		}
		for _, l := range extra {
			b.Insert(Line(l))
		}
		a.Insert(Line(shared))
		b.Insert(Line(shared))
		for _, l := range ls {
			if !a.Member(Line(l)) {
				return false
			}
		}
		return a.Overlaps(&b) && a.Member(Line(shared)) && b.Member(Line(shared))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: union is a superset encoder, intersect is symmetric.
func TestPropertyAlgebra(t *testing.T) {
	f := func(xs, ys []uint64) bool {
		var a, b Sig
		for _, x := range xs {
			a.Insert(Line(x))
		}
		for _, y := range ys {
			b.Insert(Line(y))
		}
		u := a.Union(b)
		for _, x := range xs {
			if !u.Member(Line(x)) {
				return false
			}
		}
		for _, y := range ys {
			if !u.Member(Line(y)) {
				return false
			}
		}
		i1, i2 := a.Intersect(b), b.Intersect(a)
		return i1 == i2 && a.Overlaps(&b) == b.Overlaps(&a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	var s Sig
	for i := 0; i < b.N; i++ {
		s.Insert(Line(i))
	}
}

func BenchmarkOverlaps(b *testing.B) {
	a := FromLines([]Line{1, 2, 3, 4, 5})
	c := FromLines([]Line{6, 7, 8, 9, 10})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Overlaps(&c)
	}
}
