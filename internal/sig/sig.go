// Package sig implements Bulk-style hardware address signatures.
//
// A signature is a fixed-size (2 Kbit by default, as in Table 2 of the
// paper) register that encodes a set of cache-line addresses with a
// partitioned Bloom filter, exactly as in "Bulk Disambiguation of Speculative
// Threads in Multiprocessors" (Ceze et al., ISCA 2006), which both BulkSC and
// ScalableBulk build on. The filter is split into Banks independent banks;
// inserting an address sets exactly one bit in every bank, each chosen by an
// independent hash of the line address.
//
// The two operations the protocols rely on are:
//
//   - membership (is line a possibly in the set?), used by directory modules
//     to nack loads that hit a committing chunk's write set, and
//   - intersection emptiness (do two sets possibly overlap?), used for chunk
//     disambiguation and group-compatibility checks.
//
// Both admit false positives (aliasing) but never false negatives, which is
// what makes them safe: at worst an operation is nacked or a chunk squashed
// unnecessarily (§3.1 of the paper).
package sig

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

const (
	// Bits is the signature size from Table 2 of the paper: 2 Kbit.
	Bits = 2048
	// Banks is the number of independent Bloom banks. Each inserted line
	// sets one bit per bank.
	Banks = 4
	// bankBits is the size of one bank in bits; must be a power of two.
	bankBits  = Bits / Banks
	bankWords = bankBits / 64
	words     = Bits / 64
)

// Line is a cache-line address (byte address >> line-offset bits).
type Line uint64

// Sig is a 2 Kbit address signature. The zero value is the empty signature.
// Sig is a value type: assignment copies it, and methods that combine
// signatures return new values, mirroring how the hardware moves whole
// signature registers between structures.
type Sig struct {
	w [words]uint64
}

// The four banks mirror Bulk's fixed bit-permutation networks, each viewing
// the line address through a different fixed permutation so the signature
// exploits the structure of real footprints:
//
//   - Bank 0 is a pure bit-slice of the line offset (address mod 512
//     lines). It discriminates footprints that interleave within shared
//     pages — per-thread bucket slices, different slots of a shared
//     structure — because different offsets map to different bits exactly.
//   - Banks 1–3 apply three independent fixed permutations (modeled as
//     multiplicative hashes) to the full page number. Footprints on
//     disjoint page sets — the common case in partitioned parallel code,
//     including regions laid out at large power-of-two strides — disagree
//     in these banks with high probability, and the three permutations are
//     independent so their false-positive rates multiply.
//
// Two chunks whose footprints are disjoint in *either* line offsets or page
// sets therefore test disjoint; only same-page random interleavings alias —
// the same physics as the hardware scheme.
var pageMuls = [3]uint64{0x9e3779b97f4a7c15, 0xc2b2ae3d27d4eb4f, 0x165667b19e3779f9}

func hash(l Line, bank uint) uint32 {
	if bank == 0 {
		return uint32(uint64(l) & (bankBits - 1))
	}
	page := uint64(l) >> 7 // 4 KB pages of 128 lines
	x := page * pageMuls[bank-1]
	return uint32(x >> (64 - 9)) // top 9 bits: well-mixed page hash
}

// Insert adds a line address to the signature.
func (s *Sig) Insert(l Line) {
	for b := uint(0); b < Banks; b++ {
		bit := hash(l, b)
		idx := b*bankWords + uint(bit)/64
		s.w[idx] |= 1 << (bit % 64)
	}
}

// Member reports whether l may be in the set. False positives are possible;
// false negatives are not.
func (s *Sig) Member(l Line) bool {
	for b := uint(0); b < Banks; b++ {
		bit := hash(l, b)
		idx := b*bankWords + uint(bit)/64
		if s.w[idx]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// The set operations below are the simulator's hottest kernels after the
// event queue: every bulk invalidation runs Overlaps against up to three
// chunk signatures per core, and every commit clears and rebuilds two
// signatures. The boolean tests (Empty, Overlaps, BankOverlap) are
// hand-unrolled over the fixed 8-word banks — no loop counters, no variable
// indexing, bounds checks gone — and short-circuit per bank; the whole-word
// combiners (Intersect, Union) stay as range loops, which the compiler
// already turns into straight-line code. The pre-optimization loop versions
// live on as the Ref* kernels in ref.go; the fuzz and property tests in this
// package hold the two families bit-equivalent.

// Compile-time guard: the unrolled kernels assume exactly 8 words per bank.
var _ [bankWords - 8]struct{}
var _ [8 - bankWords]struct{}

// bankOr ORs the 8 words of the bank starting at word index i.
func bankOr(w *[words]uint64, i int) uint64 {
	return w[i] | w[i+1] | w[i+2] | w[i+3] | w[i+4] | w[i+5] | w[i+6] | w[i+7]
}

// bankAndOr ORs the pairwise AND of the 8-word banks starting at i.
func bankAndOr(a, b *[words]uint64, i int) uint64 {
	return a[i]&b[i] | a[i+1]&b[i+1] | a[i+2]&b[i+2] | a[i+3]&b[i+3] |
		a[i+4]&b[i+4] | a[i+5]&b[i+5] | a[i+6]&b[i+6] | a[i+7]&b[i+7]
}

// Empty reports whether the signature certainly encodes the empty set.
// Because every insertion sets one bit in every bank, a signature with any
// all-zero bank represents the empty set.
func (s *Sig) Empty() bool {
	w := &s.w
	return bankOr(w, 0) == 0 || bankOr(w, 8) == 0 ||
		bankOr(w, 16) == 0 || bankOr(w, 24) == 0
}

// Clear resets the signature to the empty set.
func (s *Sig) Clear() { *s = Sig{} }

// Intersect returns the bitwise intersection of two signatures. If the
// result is Empty, the encoded sets are certainly disjoint.
func (s Sig) Intersect(o Sig) Sig {
	var r Sig
	// A plain range loop: the compiler eliminates all bounds checks against
	// the fixed-size array and this benchmarks faster than manual unrolling.
	for i := range s.w {
		r.w[i] = s.w[i] & o.w[i]
	}
	return r
}

// Union returns the bitwise union of two signatures; it encodes a superset
// of the union of the two sets.
func (s Sig) Union(o Sig) Sig {
	var r Sig
	for i := range s.w {
		r.w[i] = s.w[i] | o.w[i]
	}
	return r
}

// Overlaps reports whether the two signatures may encode intersecting sets.
// It is the hardware's fast compatibility test, equivalent to intersecting
// and testing emptiness, but without materializing the intersection.
func (s *Sig) Overlaps(o *Sig) bool {
	a, b := &s.w, &o.w
	return bankAndOr(a, b, 0) != 0 && bankAndOr(a, b, 8) != 0 &&
		bankAndOr(a, b, 16) != 0 && bankAndOr(a, b, 24) != 0
}

// BankOverlap reports, per bank, whether the two signatures' banks
// intersect. Diagnostic: the full Overlaps test is the AND of all banks.
func (s *Sig) BankOverlap(o *Sig) [Banks]bool {
	a, b := &s.w, &o.w
	return [Banks]bool{
		bankAndOr(a, b, 0) != 0,
		bankAndOr(a, b, 8) != 0,
		bankAndOr(a, b, 16) != 0,
		bankAndOr(a, b, 24) != 0,
	}
}

// PopCount returns the number of set bits, a measure of occupancy.
func (s Sig) PopCount() int {
	n := 0
	for _, w := range s.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// EstimateCardinality estimates how many distinct lines were inserted, using
// the standard Bloom occupancy inversion on the fullest bank. It is used
// only for statistics, never for protocol decisions.
func (s Sig) EstimateCardinality() int {
	best := 0.0
	for b := 0; b < Banks; b++ {
		n := 0
		for i := 0; i < bankWords; i++ {
			n += bits.OnesCount64(s.w[b*bankWords+i])
		}
		if n == bankBits {
			return bankBits // saturated
		}
		est := -float64(bankBits) * math.Log(1-float64(n)/float64(bankBits))
		if est > best {
			best = est
		}
	}
	return int(best + 0.5)
}

// String renders a short occupancy summary, e.g. "sig[57/2048]".
func (s Sig) String() string { return fmt.Sprintf("sig[%d/%d]", s.PopCount(), Bits) }

// Dump renders the raw banks in hex; used by trace tooling.
func (s Sig) Dump() string {
	var b strings.Builder
	for bank := 0; bank < Banks; bank++ {
		if bank > 0 {
			b.WriteByte('|')
		}
		for i := 0; i < bankWords; i++ {
			fmt.Fprintf(&b, "%016x", s.w[bank*bankWords+i])
		}
	}
	return b.String()
}

// FromLines builds a signature containing every line in ls.
func FromLines(ls []Line) Sig {
	var s Sig
	for _, l := range ls {
		s.Insert(l)
	}
	return s
}
