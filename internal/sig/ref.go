package sig

// Reference kernels: the straightforward generic-loop implementations of the
// signature set operations, exactly as they were before the unrolled
// word-level kernels in sig.go replaced them on the hot path. They are kept
// (not test-only) for two jobs:
//
//   - the fuzz and property tests in this package assert the optimized
//     kernels are bit-equivalent to these for all inputs, and
//   - cmd/sbbench benchmarks both families so the kernel speedup stays
//     measured against its baseline.
//
// Protocol code must never call these.

// RefEmpty is the reference implementation of Sig.Empty.
func RefEmpty(s *Sig) bool {
	for b := 0; b < Banks; b++ {
		var or uint64
		for i := 0; i < bankWords; i++ {
			or |= s.w[b*bankWords+i]
		}
		if or == 0 {
			return true
		}
	}
	return false
}

// RefMember is the reference implementation of Sig.Member.
func RefMember(s *Sig, l Line) bool {
	for b := uint(0); b < Banks; b++ {
		bit := hash(l, b)
		idx := b*bankWords + uint(bit)/64
		if s.w[idx]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// RefIntersect is the reference implementation of Sig.Intersect.
func RefIntersect(s, o Sig) Sig {
	var r Sig
	for i := range s.w {
		r.w[i] = s.w[i] & o.w[i]
	}
	return r
}

// RefUnion is the reference implementation of Sig.Union.
func RefUnion(s, o Sig) Sig {
	var r Sig
	for i := range s.w {
		r.w[i] = s.w[i] | o.w[i]
	}
	return r
}

// RefOverlaps is the reference implementation of Sig.Overlaps.
func RefOverlaps(s, o *Sig) bool {
	for b := 0; b < Banks; b++ {
		var or uint64
		for i := 0; i < bankWords; i++ {
			or |= s.w[b*bankWords+i] & o.w[b*bankWords+i]
		}
		if or == 0 {
			return false
		}
	}
	return true
}

// RefBankOverlap is the reference implementation of Sig.BankOverlap.
func RefBankOverlap(s, o *Sig) [Banks]bool {
	var out [Banks]bool
	for b := 0; b < Banks; b++ {
		var or uint64
		for i := 0; i < bankWords; i++ {
			or |= s.w[b*bankWords+i] & o.w[b*bankWords+i]
		}
		out[b] = or != 0
	}
	return out
}
