// Package msg defines every message that travels on the simulated on-chip
// network: the ten ScalableBulk protocol messages of Table 1 of the paper,
// the read-path coherence messages, and the baseline protocols' messages
// (Scalable TCC's TID/probe/skip/mark, SEQ-PRO's occupy/release, and BulkSC's
// arbiter traffic).
//
// Each message kind carries a traffic Class and a size in flits, which feed
// the Figure 18/19 traffic characterization: messages that carry signatures
// are LargeCMessage; all other commit-protocol messages are SmallCMessage.
package msg

import (
	"fmt"

	"scalablebulk/internal/bitset"
	"scalablebulk/internal/sig"
)

// CTag is the unique tag of a chunk: the originating processor ID
// concatenated with a processor-local sequence number (Table 1).
type CTag struct {
	Proc int
	Seq  uint64
}

func (t CTag) String() string { return fmt.Sprintf("P%d.%d", t.Proc, t.Seq) }

// Kind enumerates every message type in the system.
type Kind int

const (
	// --- ScalableBulk commit protocol (Table 1 of the paper) ---

	// CommitRequest: processor requests to commit a chunk; sent to all
	// directory modules in the chunk's read- and write-sets.
	// Payload: CTag, WSig, RSig, g_vec.
	CommitRequest Kind = iota
	// Grab ("g"): source directory is part of a group and tries to grab the
	// destination module into the same group. Payload: CTag, inval_vec.
	Grab
	// GFailure: a module detected that group formation failed and notifies
	// all modules in the group.
	GFailure
	// GSuccess: the leader informs all modules that the group formed.
	GSuccess
	// CommitFailure: leader → committing processor: the commit failed.
	CommitFailure
	// CommitSuccess: leader → committing processor: the commit succeeded.
	CommitSuccess
	// BulkInv: leader → sharer processors: bulk invalidation carrying the
	// committing chunk's W signature (also used for disambiguation).
	BulkInv
	// BulkInvAck: sharer processor → leader: invalidation acknowledged.
	// May piggy-back a CommitRecall (§3.3).
	BulkInvAck
	// CommitDone: leader releases all modules in the group and requests
	// signature deallocation. May piggy-back a CommitRecall (§3.4).
	CommitDone
	// CommitRecall: a processor whose chunk was squashed under Optimistic
	// Commit Initiation cancels its in-flight commit. Always piggy-backed
	// (on BulkInvAck, then on CommitDone); modeled as a standalone kind so
	// traces show it, but it never travels alone.
	CommitRecall

	// --- Read path (conventional directory transactions between commits) ---

	// ReadReq: core → home directory, cache-line read miss.
	ReadReq
	// ReadMemReply: directory → core, line served from memory (MemRd class).
	ReadMemReply
	// ReadShReply: directory → core, line served by a remote cache holding
	// it shared (RemoteShRd class).
	ReadShReply
	// ReadDirtyFwd: directory → owner tile, forward of a read that hit a
	// dirty remote line (RemoteDirtyRd class).
	ReadDirtyFwd
	// ReadDirtyReply: owner → core, dirty line data (RemoteDirtyRd class).
	ReadDirtyReply
	// ReadNack: directory → core, read bounced because the line is inside a
	// committing chunk's W signature (§3.1); the core retries.
	ReadNack

	// --- Scalable TCC baseline ---

	// TIDRequest: committing processor → centralized TID vendor.
	TIDRequest
	// TIDReply: vendor → processor, the allocated transaction ID.
	TIDReply
	// TCCProbe: processor → each directory in the chunk's read/write sets.
	TCCProbe
	// TCCProbeAck: directory → processor, the TID is at the head of this
	// module's pipeline; all earlier transactions here are done.
	TCCProbeAck
	// TCCSkip: processor → every other directory (broadcast filler).
	TCCSkip
	// TCCCommit: processor → probed directory, begin the commit phase
	// (sent once every probe ack arrived; announces the mark count).
	TCCCommit
	// TCCMark: processor → directory, one per written cache line.
	TCCMark
	// TCCInval: directory → sharer processor, per-line invalidation.
	TCCInval
	// TCCInvalAck: sharer processor → directory.
	TCCInvalAck
	// TCCAck: directory → committing processor, this module's part is done.
	TCCAck

	// --- SEQ-PRO baseline ---

	// SeqOccupy: processor → directory, occupy request (in ascending order).
	SeqOccupy
	// SeqGrant: directory → processor, module occupied.
	SeqGrant
	// SeqInval: committing processor → sharer processor, W-signature
	// invalidation once all modules are occupied.
	SeqInval
	// SeqInvalAck: sharer → committing processor.
	SeqInvalAck
	// SeqRelease: processor → directory, release an occupied module.
	SeqRelease

	// --- BulkSC baseline ---

	// ArbRequest: processor → central arbiter, permission to commit
	// (carries R and W signatures).
	ArbRequest
	// ArbGrant: arbiter → processor, OK to commit.
	ArbGrant
	// ArbDeny: arbiter → processor, not OK; retry later.
	ArbDeny
	// ArbInv: committing processor → every other processor, W-signature
	// invalidation and disambiguation.
	ArbInv
	// ArbInvAck: processor → committing processor.
	ArbInvAck
	// ArbDone: processor → central arbiter, commit finished; the arbiter
	// deallocates the chunk's signatures.
	ArbDone

	numKinds
)

var kindNames = [...]string{
	CommitRequest: "commit_request",
	Grab:          "g",
	GFailure:      "g_failure",
	GSuccess:      "g_success",
	CommitFailure: "commit_failure",
	CommitSuccess: "commit_success",
	BulkInv:       "bulk_inv",
	BulkInvAck:    "bulk_inv_ack",
	CommitDone:    "commit_done",
	CommitRecall:  "commit_recall",

	ReadReq:        "read_req",
	ReadMemReply:   "read_mem_reply",
	ReadShReply:    "read_sh_reply",
	ReadDirtyFwd:   "read_dirty_fwd",
	ReadDirtyReply: "read_dirty_reply",
	ReadNack:       "read_nack",

	TIDRequest:  "tid_request",
	TIDReply:    "tid_reply",
	TCCProbe:    "tcc_probe",
	TCCProbeAck: "tcc_probe_ack",
	TCCSkip:     "tcc_skip",
	TCCCommit:   "tcc_commit",
	TCCMark:     "tcc_mark",
	TCCInval:    "tcc_inval",
	TCCInvalAck: "tcc_inval_ack",
	TCCAck:      "tcc_ack",

	SeqOccupy:   "seq_occupy",
	SeqGrant:    "seq_grant",
	SeqInval:    "seq_inval",
	SeqInvalAck: "seq_inval_ack",
	SeqRelease:  "seq_release",

	ArbRequest: "arb_request",
	ArbGrant:   "arb_grant",
	ArbDeny:    "arb_deny",
	ArbInv:     "arb_inv",
	ArbInvAck:  "arb_inv_ack",
	ArbDone:    "arb_done",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// NumKinds is the number of defined message kinds.
const NumKinds = int(numKinds)

// Side says which half of a tile consumes a message kind: the processor
// (core + private caches) or the directory module / centralized agent that
// shares the tile. The tile demultiplexer routes on this.
type Side int

const (
	// SideDir: consumed by the tile's directory module (or the central
	// arbiter / TID vendor hosted on that tile).
	SideDir Side = iota
	// SideProc: consumed by the tile's processor.
	SideProc
)

// SideOf returns the consuming side for a message kind.
func (k Kind) SideOf() Side {
	switch k {
	case CommitFailure, CommitSuccess, BulkInv,
		ReadMemReply, ReadShReply, ReadDirtyReply, ReadNack,
		TIDReply, TCCProbeAck, TCCInval, TCCAck,
		SeqGrant, SeqInval, SeqInvalAck,
		ArbGrant, ArbDeny, ArbInv, ArbInvAck:
		return SideProc
	default:
		return SideDir
	}
}

// Class buckets messages for the Figure 18/19 traffic characterization.
type Class int

const (
	// ClassMemRd: reads of a cache line from memory.
	ClassMemRd Class = iota
	// ClassRemoteShRd: reads served by a remote cache in state shared.
	ClassRemoteShRd
	// ClassRemoteDirtyRd: reads served by a remote cache in state dirty.
	ClassRemoteDirtyRd
	// ClassLargeC: commit-protocol messages that carry signatures.
	ClassLargeC
	// ClassSmallC: all other commit-protocol messages.
	ClassSmallC
	// NumClasses is the number of traffic classes.
	NumClasses
)

var classNames = [...]string{"MemRd", "RemoteShRd", "RemoteDirtyRd", "LargeCMessage", "SmallCMessage"}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Transient reports whether a message kind is consumed entirely within its
// delivery handler: no protocol component retains a pointer to it past the
// handler's return. Transient messages are the read-path traffic — by far
// the most numerous messages in a run — and the network recycles them
// through its freelist after delivery (observer-free runs only; see
// mesh.Network). Commit-protocol messages are excluded: some are retained
// (a deferred BulkInv, an arbiter's queued request) and none are numerous
// enough to matter.
func (k Kind) Transient() bool {
	switch k {
	case ReadReq, ReadMemReply, ReadShReply, ReadDirtyFwd, ReadDirtyReply, ReadNack:
		return true
	}
	return false
}

// ShardLocal reports whether a message's delivery handler touches only its
// destination tile's state (the tile's processor, caches, pending-read
// bookkeeping, and home directory slice) — the classification the sharded
// engine uses to fan a cycle out across shard workers. Exactly the read-path
// (Transient) kinds qualify today: every commit-protocol kind reaches the
// shared protocol engines, workload generator or statistics collector, so
// their rounds serialize on the coordinator. The sets coincide but the
// meanings differ (recyclable vs tile-isolated), so this is a separate
// predicate: a future kind could be one without the other.
func (k Kind) ShardLocal() bool { return k.Transient() }

// ClassOf returns the traffic class of a message kind. Read requests and
// nacks are attributed to MemRd here; the stats package reconstructs the
// exact per-transaction classes from reply counts (see stats.TrafficFrom).
func (k Kind) ClassOf() Class {
	switch k {
	case ReadReq, ReadNack, ReadMemReply:
		return ClassMemRd
	case ReadShReply:
		return ClassRemoteShRd
	case ReadDirtyFwd, ReadDirtyReply:
		return ClassRemoteDirtyRd
	case CommitRequest, BulkInv, ArbRequest, ArbInv, SeqInval:
		// These carry signatures (Table 1 / §6.5).
		return ClassLargeC
	default:
		return ClassSmallC
	}
}

// Flit sizing. A flit is 16 bytes; small control messages fit in one flit,
// and a compressed 2 Kbit signature adds sigFlits flits. commit_request
// carries both R and W signatures (Table 1), bulk_inv carries one W.
const (
	SmallFlits = 1
	sigFlits   = 8 // 2 Kbit compressed ≈ 128 B ≈ 8 flits
)

// FlitsOf returns the size of a message kind in flits.
func (k Kind) FlitsOf() int {
	switch k {
	case CommitRequest, ArbRequest:
		return SmallFlits + 2*sigFlits // R and W signatures
	case BulkInv, ArbInv, SeqInval:
		return SmallFlits + sigFlits // W signature
	case ReadMemReply, ReadShReply, ReadDirtyReply:
		return SmallFlits + 2 // 32 B line data
	default:
		return SmallFlits
	}
}

// RecallInfo is the payload of a piggy-backed commit_recall: the tag of the
// squashed chunk and the failed group's g_vec, so the winner's leader can
// route the recall to the Collision module (§3.4).
type RecallInfo struct {
	Tag  CTag
	Try  uint64 // commit attempt index the recall cancels
	GVec []int
}

// Msg is a message in flight. A single flat struct (rather than one type per
// kind) keeps the hot simulation path allocation-light; unused fields are
// zero.
type Msg struct {
	Kind Kind
	Src  int // source node ID
	Dst  int // destination node ID
	Tag  CTag

	// Commit-protocol payloads.
	RSig, WSig sig.Sig    // signatures (CommitRequest, BulkInv, ArbRequest)
	GVec       []int      // participating directory modules, ascending IDs
	InvalVec   bitset.Set // sharer processors to invalidate (Grab)
	Recall     *RecallInfo

	// Simulation-only: the exact line sets behind the signatures, used to
	// update directory state precisely while all protocol *decisions* still
	// go through the signatures (see DESIGN.md §2).
	WriteLines []sig.Line
	ReadLines  []sig.Line

	// Read path.
	Line sig.Line

	// Baselines.
	TID uint64
	// Abandon marks an ArbDone that tears down a dead attempt's arbiter
	// entry (stale grant after a watchdog unwind): the entry is cleared but
	// its writes are NOT applied to the directory — the chunk never
	// committed.
	Abandon bool
}

func (m *Msg) String() string {
	return fmt.Sprintf("%s %d→%d %s", m.Kind, m.Src, m.Dst, m.Tag)
}

// Clone returns a deep copy of the message. The fault injector uses it to
// duplicate in-flight messages: the copy must not alias any mutable payload
// (GVec, InvalVec, Recall, line lists), or a handler consuming one delivery
// could corrupt the other.
func (m *Msg) Clone() *Msg {
	c := *m
	if m.GVec != nil {
		c.GVec = append([]int(nil), m.GVec...)
	}
	c.InvalVec = m.InvalVec.Clone()
	if m.Recall != nil {
		r := *m.Recall
		if r.GVec != nil {
			r.GVec = append([]int(nil), r.GVec...)
		}
		c.Recall = &r
	}
	if m.WriteLines != nil {
		c.WriteLines = append([]sig.Line(nil), m.WriteLines...)
	}
	if m.ReadLines != nil {
		c.ReadLines = append([]sig.Line(nil), m.ReadLines...)
	}
	return &c
}
