package msg

import (
	"strings"
	"testing"

	"scalablebulk/internal/bitset"
	"scalablebulk/internal/sig"
)

// TestMessageTable1Complete checks that all ten ScalableBulk message types of
// Table 1 exist, with the paper's names.
func TestMessageTable1Complete(t *testing.T) {
	table1 := map[Kind]string{
		CommitRequest: "commit_request",
		Grab:          "g",
		GFailure:      "g_failure",
		GSuccess:      "g_success",
		CommitFailure: "commit_failure",
		CommitSuccess: "commit_success",
		BulkInv:       "bulk_inv",
		BulkInvAck:    "bulk_inv_ack",
		CommitDone:    "commit_done",
		CommitRecall:  "commit_recall",
	}
	if len(table1) != 10 {
		t.Fatalf("Table 1 has ten message types, got %d", len(table1))
	}
	for k, name := range table1 {
		if k.String() != name {
			t.Errorf("kind %d = %q, want %q", int(k), k.String(), name)
		}
	}
}

func TestEveryKindNamed(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
}

// TestSignatureCarryingMessagesAreLarge encodes §6.5: "in ScalableBulk, the
// LargeCMessage are those that carry signatures, namely commit_request and
// bulk_inv; SmallCMessage are the rest of the messages in Table 1."
func TestSignatureCarryingMessagesAreLarge(t *testing.T) {
	large := map[Kind]bool{CommitRequest: true, BulkInv: true}
	table1 := []Kind{CommitRequest, Grab, GFailure, GSuccess, CommitFailure,
		CommitSuccess, BulkInv, BulkInvAck, CommitDone, CommitRecall}
	for _, k := range table1 {
		want := ClassSmallC
		if large[k] {
			want = ClassLargeC
		}
		if got := k.ClassOf(); got != want {
			t.Errorf("%s class = %s, want %s", k, got, want)
		}
	}
}

func TestReadClassMapping(t *testing.T) {
	cases := map[Kind]Class{
		ReadMemReply:   ClassMemRd,
		ReadShReply:    ClassRemoteShRd,
		ReadDirtyFwd:   ClassRemoteDirtyRd,
		ReadDirtyReply: ClassRemoteDirtyRd,
	}
	for k, want := range cases {
		if got := k.ClassOf(); got != want {
			t.Errorf("%s class = %s, want %s", k, got, want)
		}
	}
}

func TestFlitSizes(t *testing.T) {
	if CommitRequest.FlitsOf() <= BulkInv.FlitsOf() {
		t.Error("commit_request carries two signatures, must exceed bulk_inv")
	}
	if BulkInv.FlitsOf() <= Grab.FlitsOf() {
		t.Error("bulk_inv carries a signature, must exceed g")
	}
	if Grab.FlitsOf() != SmallFlits {
		t.Errorf("g is a small message, got %d flits", Grab.FlitsOf())
	}
}

func TestCTagString(t *testing.T) {
	tag := CTag{Proc: 3, Seq: 17}
	if tag.String() != "P3.17" {
		t.Fatalf("CTag.String = %q", tag.String())
	}
	m := &Msg{Kind: Grab, Src: 1, Dst: 2, Tag: tag}
	if !strings.Contains(m.String(), "g 1→2 P3.17") {
		t.Fatalf("Msg.String = %q", m.String())
	}
}

func TestSideRouting(t *testing.T) {
	procSide := []Kind{CommitSuccess, CommitFailure, BulkInv, ReadMemReply,
		ReadNack, TIDReply, TCCInval, SeqGrant, SeqInval, ArbGrant, ArbInv}
	dirSide := []Kind{CommitRequest, Grab, GFailure, GSuccess, BulkInvAck,
		CommitDone, ReadReq, TIDRequest, TCCProbe, TCCSkip, TCCMark,
		SeqOccupy, SeqRelease, ArbRequest, ArbDone, ReadDirtyFwd}
	for _, k := range procSide {
		if k.SideOf() != SideProc {
			t.Errorf("%s routed to dir, want proc", k)
		}
	}
	for _, k := range dirSide {
		if k.SideOf() != SideDir {
			t.Errorf("%s routed to proc, want dir", k)
		}
	}
}

func TestBaselineInvalidationsCarrySignatures(t *testing.T) {
	// BulkSC and SEQ invalidations carry W signatures (large); Scalable TCC
	// invalidates per line (small) — the root of its small-message traffic.
	if ArbInv.ClassOf() != ClassLargeC || SeqInval.ClassOf() != ClassLargeC {
		t.Error("signature invalidations must be LargeCMessage")
	}
	if TCCInval.ClassOf() != ClassSmallC || TCCMark.ClassOf() != ClassSmallC ||
		TCCSkip.ClassOf() != ClassSmallC || TCCProbe.ClassOf() != ClassSmallC {
		t.Error("TCC per-line commit messages must be SmallCMessage")
	}
}

func TestClassNames(t *testing.T) {
	want := []string{"MemRd", "RemoteShRd", "RemoteDirtyRd", "LargeCMessage", "SmallCMessage"}
	for i, w := range want {
		if Class(i).String() != w {
			t.Errorf("class %d = %q, want %q", i, Class(i).String(), w)
		}
	}
}

// TestCloneDeepCopies verifies the duplicator contract: a clone shares no
// mutable payload with the original.
func TestCloneDeepCopies(t *testing.T) {
	var iv bitset.Set
	iv.Add(3)
	m := &Msg{
		Kind: Grab, Src: 1, Dst: 2, Tag: CTag{Proc: 3, Seq: 17},
		GVec:     []int{2, 5, 9},
		InvalVec: iv,
		Recall: &RecallInfo{
			Tag: CTag{Proc: 4, Seq: 8}, Try: 2, GVec: []int{1, 7},
		},
		WriteLines: []sig.Line{10, 20},
		ReadLines:  []sig.Line{30},
		TID:        6,
	}
	m.WSig.Insert(10)
	c := m.Clone()

	if c.Kind != m.Kind || c.Tag != m.Tag || c.TID != m.TID || c.WSig != m.WSig {
		t.Fatal("clone does not copy scalar fields")
	}
	c.GVec[0] = -1
	c.InvalVec.Add(60)
	c.Recall.Try = 99
	c.Recall.GVec[0] = -1
	c.WriteLines[0] = 999
	c.ReadLines[0] = 999
	if m.GVec[0] != 2 || m.InvalVec.Has(60) || m.Recall.Try != 2 ||
		m.Recall.GVec[0] != 1 || m.WriteLines[0] != 10 || m.ReadLines[0] != 30 {
		t.Fatal("mutating the clone leaked into the original")
	}

	// Nil payloads clone to nil (no gratuitous allocation).
	n := (&Msg{Kind: CommitDone}).Clone()
	if n.GVec != nil || n.Recall != nil || n.WriteLines != nil || n.ReadLines != nil {
		t.Fatal("nil payloads must stay nil")
	}
}
