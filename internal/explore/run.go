// One schedule execution: build a machine, capture every commit-protocol
// delivery, and alternate between letting the engine compute and delivering
// a chosen pending message, checking invariants after every event.
package explore

import (
	"fmt"
	"hash/fnv"
	"runtime/debug"

	"scalablebulk/internal/mesh"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/protocol"
	"scalablebulk/internal/sig"
	"scalablebulk/internal/system"
)

// writeKey identifies one committed-write attribution (the differential
// suite's multiset element).
type writeKey struct {
	line   sig.Line
	writer int
}

// controller implements mesh.Scheduler: it captures every non-Transient
// delivery (the commit-protocol messages) and leaves read-path traffic on
// the engine's normal timing. Holding only protocol messages is the model's
// abstraction boundary: read requests and replies are load-path plumbing
// whose ordering the commit protocols may not depend on, and holding them
// would square the state space for no added coverage.
type controller struct {
	pending []mesh.Delivery
	seq     []uint64 // arrival order tiebreak, parallel to pending
	skips   []int    // times each entry was enabled but passed over
	nextSeq uint64
}

func (c *controller) Hold(d mesh.Delivery) bool {
	if d.M.Kind.Transient() {
		return false
	}
	c.pending = append(c.pending, d)
	c.seq = append(c.seq, c.nextSeq)
	c.skips = append(c.skips, 0)
	c.nextSeq++
	return true
}

// enabled returns the indices of deliveries that may go next, in arrival
// order. Unless unordered, only the oldest pending delivery of each
// (src, dst) pair is enabled — the torus's per-pair FIFO guarantee. The
// fairness bound then kicks in: if any enabled delivery has been passed
// over maxSkips times, the oldest such delivery is the only choice, so no
// schedule can starve a message forever (maxSkips < 0 disables the bound).
func (c *controller) enabled(unordered bool, maxSkips int) []int {
	out := make([]int, 0, len(c.pending))
	for i := range c.pending {
		if !unordered {
			shadowed := false
			for j := 0; j < i; j++ {
				if c.pending[j].M.Src == c.pending[i].M.Src &&
					c.pending[j].M.Dst == c.pending[i].M.Dst {
					shadowed = true
					break
				}
			}
			if shadowed {
				continue
			}
		}
		out = append(out, i)
	}
	if maxSkips >= 0 {
		for _, i := range out {
			if c.skips[i] >= maxSkips {
				return []int{i} // forced: deliver the starved message now
			}
		}
	}
	return out
}

// release delivers pending[enabled[chosen]] now and charges a skip to every
// other enabled delivery (the fairness clock).
func (c *controller) release(net *mesh.Network, enabled []int, chosen int) {
	for _, i := range enabled {
		if i != enabled[chosen] {
			c.skips[i]++
		}
	}
	i := enabled[chosen]
	m := c.pending[i].M
	c.pending = append(c.pending[:i], c.pending[i+1:]...)
	c.seq = append(c.seq[:i], c.seq[i+1:]...)
	c.skips = append(c.skips[:i], c.skips[i+1:]...)
	net.Release(m)
}

// point records one choice point for the DFS driver: the state digest (for
// visited-set pruning) and the branch indices worth exploring from it.
type point struct {
	digest   uint64
	branches []int
}

// outcome is everything one executed schedule produced.
type outcome struct {
	choices   []int
	points    []point
	violation *Violation
	writes    map[writeKey]int
	// digest folds the final machine state and the committed-write multiset:
	// two runs with equal digests ended in the same time-free state with the
	// same committed writes — the bit-identity anchor for schedule replay.
	digest uint64
	dump   string
	flight []string
}

// execute runs one schedule: prescribed choice indices in prefix, default
// (oldest pending) afterwards. With expand set it also computes the branch
// sets the DFS driver explores; replay/minimization trials leave it off.
func (e *explorer) execute(prefix []int, expand bool) (out *outcome, err error) {
	spec := e.opts.Spec
	out = &outcome{writes: map[writeKey]int{}}

	cfg := system.DefaultConfig(spec.Cores, spec.Proto)
	cfg.ChunksPerCore = spec.Chunks
	cfg.WarmupChunks = spec.Warmup
	cfg.Seed = spec.Seed
	cfg.MaxCycles = spec.MaxCycles
	// The checker is the scheduler: every delivery is a DFS choice point, so
	// the machine must run the serial engine regardless of what any copied
	// sweep config said (LoadSpec already rejects sharded specs).
	cfg.Shards = 0
	cfg.Check = true
	cfg.FlightRecorder = 96
	cfg.OnApplyWrite = func(l sig.Line, writer int) { out.writes[writeKey{l, writer}]++ }

	m, err := system.Build(spec.Profile, cfg)
	if err != nil {
		return nil, err
	}
	// A protocol panic under a legal interleaving is a finding, not a
	// checker crash: convert it to a violation so it gets minimized and
	// recorded like any other.
	defer func() {
		if r := recover(); r != nil {
			out.violation = &Violation{
				Kind: KindInvariant, Step: len(out.choices),
				Msg: fmt.Sprintf("panic: %v\n%s", r, debug.Stack()),
			}
			if m != nil {
				out.dump = m.Dump()
				if m.Flight != nil {
					out.flight = m.Flight.Dump()
				}
			}
			err = nil
		}
	}()

	ctrl := &controller{}
	m.Net.Sched = ctrl
	m.Start()

	fail := func(kind, format string, args ...any) {
		out.violation = &Violation{Kind: kind, Step: len(out.choices), Msg: fmt.Sprintf(format, args...)}
		out.dump = m.Dump()
		if m.Flight != nil {
			out.flight = m.Flight.Dump()
		}
	}

	// pathSeen detects state recurrence in the run's default-continuation
	// region: past the prescribed prefix every choice is "oldest pending",
	// so revisiting a time-free state digest means the machine is in a cycle
	// it will repeat forever — a livelock, reported without burning the
	// whole depth budget.
	pathSeen := map[uint64]int{}

	for {
		if m.Check.Count() > 0 {
			fail(KindInvariant, "invariant broke during execution")
			if vs := m.Check.Violations(); len(vs) > 0 {
				out.violation.Invariants = vs
				out.violation.Msg = vs[0].String()
			}
			break
		}
		if m.Eng.Now() > spec.MaxCycles {
			fail(KindLivelock, "exceeded cycle budget MaxCycles=%d with work left", spec.MaxCycles)
			break
		}
		t, ok := m.Eng.NextAt()
		if ok && (len(ctrl.pending) == 0 || t <= m.Eng.Now()+spec.Horizon) {
			// Near-future machine work (cache fills, link hops, retry
			// backoff): not a scheduling decision, let it run.
			m.Eng.Step()
			continue
		}
		if len(ctrl.pending) > 0 {
			// Choice point: only far-future events (commit watchdogs)
			// besides the deliverable messages.
			step := len(out.choices)
			if step >= e.opts.MaxDepth {
				fail(KindLivelock, "no quiescence within %d scheduling steps", e.opts.MaxDepth)
				break
			}
			enabled := ctrl.enabled(spec.Unordered, spec.MaxSkips)
			dig := e.digest(m, ctrl)
			if step >= len(prefix) {
				if prev, seen := pathSeen[dig]; seen {
					fail(KindLivelock, "state at step %d recurred at step %d: the default schedule cycles", prev, step)
					break
				}
				pathSeen[dig] = step
			}
			idx := 0
			if step < len(prefix) {
				// Out-of-range indices (from minimization trials against a
				// shifted pending set) wrap deterministically.
				idx = prefix[step] % len(enabled)
				if idx < 0 {
					idx = 0
				}
			}
			if expand {
				out.points = append(out.points, point{digest: dig, branches: e.branches(ctrl, enabled, idx)})
			}
			out.choices = append(out.choices, idx)
			ctrl.release(m.Net, enabled, idx)
			continue
		}
		if ok {
			// Nothing deliverable and only far-future events: jump time
			// (this is how an armed commit watchdog gets to fire).
			m.Eng.Step()
			continue
		}
		// Engine empty, nothing pending.
		break
	}

	if len(out.choices) > e.deepest {
		e.deepest = len(out.choices)
	}
	if out.violation != nil {
		return out, nil
	}
	if !m.AllDone() {
		fail(KindDeadlock, "no events and no pending messages with work left")
		return out, nil
	}
	// Completed: end-of-run invariant checks (I1 leaks, I4 liveness).
	if _, ferr := m.Finish(); ferr != nil {
		fail(KindInvariant, "%v", ferr)
		out.violation.Invariants = m.Check.Violations()
		if len(out.violation.Invariants) > 0 {
			out.violation.Msg = out.violation.Invariants[0].String()
		}
		return out, nil
	}
	// Quiescence: the engine must hold no live protocol state after every
	// chunk committed — leaked CST entries, ghost occupancies or stranded
	// queue entries count even when no end-to-end invariant noticed them.
	if ae, ok := m.Proto.(protocol.AttemptEnumerator); ok {
		if n := ae.PendingAttempts(); n != 0 {
			fail(KindQuiescence, "%d protocol attempt(s)/entries live after completion", n)
			return out, nil
		}
	}
	out.digest = e.finalDigest(m, out)
	// A completed machine dumps empty (nothing is stuck), but keep the
	// flight recorder's tail: if the run later turns out to diverge from the
	// reference multiset (checked post-run, when m is gone), the message
	// history is the diagnostic.
	if m.Flight != nil {
		out.flight = m.Flight.Dump()
	}
	return out, nil
}

// digest hashes the machine's time-free state: per-processor pipeline state,
// per-module protocol state, the live-attempt gauge, and the pending
// deliveries in arrival order. Two states with equal digests behave
// identically under the same future choices (the processor and module debug
// renderings deliberately contain no timestamps; BulkSC's arbiter renders
// its pipeline-drain time, which only makes its digests conservatively
// unequal — less pruning, never wrong pruning).
func (e *explorer) digest(m *system.Machine, ctrl *controller) uint64 {
	h := fnv.New64a()
	for _, p := range m.Procs {
		fmt.Fprintln(h, p.DebugState())
	}
	if d, ok := m.Proto.(protocol.Debugger); ok {
		for i := range m.Procs {
			fmt.Fprintln(h, d.DebugModule(i))
		}
	}
	if ae, ok := m.Proto.(protocol.AttemptEnumerator); ok {
		fmt.Fprintln(h, ae.PendingAttempts())
	}
	for i := range ctrl.pending {
		describeMsg(h, ctrl.pending[i].M)
		fmt.Fprintln(h, ctrl.skips[i])
	}
	return h.Sum64()
}

// finalDigest anchors replay bit-identity: final machine state plus the
// committed-write multiset (order-independent fold).
func (e *explorer) finalDigest(m *system.Machine, out *outcome) uint64 {
	h := fnv.New64a()
	for _, p := range m.Procs {
		fmt.Fprintln(h, p.DebugState())
	}
	var fold uint64
	for k, n := range out.writes {
		kh := fnv.New64a()
		fmt.Fprintf(kh, "%d/%d/%d", uint64(k.line), k.writer, n)
		fold += kh.Sum64()
	}
	fmt.Fprintf(h, "writes=%d fold=%d choices=%d", len(out.writes), fold, len(out.choices))
	return h.Sum64()
}

// describeMsg writes a message's schedule-relevant identity (kind, route,
// chunk attempt, and full footprint) into the digest.
func describeMsg(h interface{ Write([]byte) (int, error) }, m *msg.Msg) {
	fmt.Fprintf(h, "%s %d>%d %v t%d L%d wl%v rl%v g%v a%v\n",
		m.Kind, m.Src, m.Dst, m.Tag, m.TID, uint64(m.Line),
		m.WriteLines, m.ReadLines, m.GVec, m.Abandon)
}

// branches computes the branch set at a choice point: which enabled
// deliveries are worth exploring as alternatives to each other.
//
// Without reduction it is every enabled index. With reduction it is the
// persistent-set closure seeded by the default choice: start from the taken
// delivery and add every enabled delivery that does not commute with a
// member, to a fixpoint. Two deliveries commute when they target different
// nodes AND touch disjoint footprints (tag, explicit lines, signatures) —
// delivering them in either order reaches the same state, so one order
// suffices. The closure is computed over currently-enabled deliveries only;
// a not-yet-sent message that would conflict is invisible to it, which is
// the standard static-approximation caveat — the -noreduce mode exists to
// cross-check exactly this (DESIGN.md §13).
func (e *explorer) branches(ctrl *controller, enabled []int, taken int) []int {
	if e.opts.NoReduce {
		out := make([]int, len(enabled))
		for i := range enabled {
			out[i] = i
		}
		return out
	}
	in := make([]bool, len(enabled))
	in[taken] = true
	for changed := true; changed; {
		changed = false
		for i := range enabled {
			if in[i] {
				continue
			}
			for j := range enabled {
				if in[j] && conflicts(ctrl.pending[enabled[i]].M, ctrl.pending[enabled[j]].M) {
					in[i] = true
					changed = true
					break
				}
			}
		}
	}
	var out []int
	for i, ok := range in {
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// conflicts reports whether two pending deliveries may not commute: same
// destination node (same handler state), same chunk attempt (same job /
// CST entry, wherever it lives), or overlapping address footprints.
func conflicts(a, b *msg.Msg) bool {
	if a.Dst == b.Dst {
		return true
	}
	if a.Tag == b.Tag {
		return true
	}
	if linesOverlap(a, b) {
		return true
	}
	if a.WSig.Overlaps(&b.WSig) || a.WSig.Overlaps(&b.RSig) ||
		a.RSig.Overlaps(&b.WSig) {
		return true
	}
	return false
}

// linesOverlap intersects the explicit line footprints of two messages.
func linesOverlap(a, b *msg.Msg) bool {
	la := lineSet(a)
	if len(la) == 0 {
		return false
	}
	for _, l := range lineSet(b) {
		for _, k := range la {
			if l == k {
				return true
			}
		}
	}
	return false
}

func lineSet(m *msg.Msg) []sig.Line {
	out := make([]sig.Line, 0, 1+len(m.WriteLines)+len(m.ReadLines))
	if m.Line != 0 {
		out = append(out, m.Line)
	}
	out = append(out, m.WriteLines...)
	out = append(out, m.ReadLines...)
	return out
}
