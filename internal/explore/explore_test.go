package explore

import (
	"errors"
	"path/filepath"
	"testing"

	"scalablebulk/internal/event"
	"scalablebulk/internal/mesh"
	"scalablebulk/internal/msg"
)

// TestExhaustDefault: the default 2×2 forced-conflict space for the paper's
// reference protocol exhausts cleanly — the checker's baseline claim.
func TestExhaustDefault(t *testing.T) {
	rep, err := Explore(DefaultOptions("SEQ"))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", rep.Summary())
	if !rep.Clean() {
		t.Fatalf("violation: %s\n%s", rep.Violation, rep.Dump)
	}
	if rep.Outcome != "exhausted" {
		t.Fatalf("outcome %q (budget %q), want exhausted", rep.Outcome, rep.BoundHit)
	}
	if rep.Runs < 100 {
		t.Fatalf("only %d runs — the explorer is not actually branching", rep.Runs)
	}
	if rep.Pruned == 0 {
		t.Fatal("visited-set pruning never fired on a space this size")
	}
}

// TestBudgetReportsBounded: an undersized run budget must be reported
// honestly as "bounded", never dressed up as exhaustion.
func TestBudgetReportsBounded(t *testing.T) {
	opts := DefaultOptions("SEQ")
	opts.MaxRuns = 10
	rep, err := Explore(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != "bounded" || rep.BoundHit != "max runs" {
		t.Fatalf("outcome %q / bound %q, want bounded / max runs", rep.Outcome, rep.BoundHit)
	}
	if !rep.Clean() {
		t.Fatalf("unexpected violation: %s", rep.Violation)
	}
}

// TestCounterexampleRoundTrip uses a real finding — ScalableBulk's
// per-pair-FIFO dependence surfaces as a divergence under unordered
// delivery — to exercise the full violation pipeline: detection,
// minimization, schedule serialization, and bit-identical replay.
func TestCounterexampleRoundTrip(t *testing.T) {
	opts := DefaultOptions("BulkSC")
	opts.Unordered = true
	rep, err := Explore(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Skip("BulkSC no longer depends on per-pair FIFO; pick a new violating config for this test")
	}
	if rep.Violation.Kind != KindDivergence {
		t.Fatalf("violation kind %q, want divergence", rep.Violation.Kind)
	}
	if rep.Schedule == nil {
		t.Fatal("violation reported without a replayable schedule")
	}
	if len(rep.Schedule.Choices) >= rep.MinimizedFrom {
		t.Errorf("minimization did not shrink: %d choices from %d",
			len(rep.Schedule.Choices), rep.MinimizedFrom)
	}

	path := filepath.Join(t.TempDir(), "ce.json")
	if err := rep.Schedule.Save(path); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSchedule(path)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := s.Replay()
	if err != nil {
		t.Fatalf("counterexample did not reproduce: %v", err)
	}
	if rr.Violation == nil || rr.Violation.Kind != KindDivergence {
		t.Fatalf("replay violation = %v, want divergence", rr.Violation)
	}
	if len(rr.Flight) == 0 {
		t.Error("replay of a divergence carried no flight-recorder tail")
	}
}

// TestReplayDetectsTampering: a clean schedule's recorded digest anchors
// bit-identity — a wrong digest must fail the replay.
func TestReplayDetectsTampering(t *testing.T) {
	s := &Schedule{Version: ScheduleVersion, Spec: DefaultSpec("SEQ")}
	rr, err := s.Replay()
	if err != nil || rr.Violation != nil {
		t.Fatalf("default schedule should replay clean: %v / %v", err, rr.Violation)
	}
	if rr.Digest == 0 {
		t.Fatal("clean replay produced no final digest")
	}

	s.Expect = &Expect{Digest: rr.Digest, Steps: rr.Steps}
	if _, err := s.Replay(); err != nil {
		t.Fatalf("correct expectation rejected: %v", err)
	}
	s.Expect.Digest ^= 1
	if _, err := s.Replay(); err == nil {
		t.Fatal("corrupted digest accepted")
	}
	s.Expect.Digest ^= 1
	s.Expect.Steps++
	if _, err := s.Replay(); err == nil {
		t.Fatal("wrong step count accepted")
	}
}

// TestScheduleFileValidation: version and spec completeness are enforced on
// load, so a stale or hand-mangled file fails loudly instead of replaying a
// different machine.
func TestScheduleFileValidation(t *testing.T) {
	dir := t.TempDir()
	good := &Schedule{Version: ScheduleVersion, Spec: DefaultSpec("SEQ"), Choices: []int{1, 2}}
	path := filepath.Join(dir, "s.json")
	if err := good.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSchedule(path); err != nil {
		t.Fatal(err)
	}

	bad := *good
	bad.Version = ScheduleVersion + 1
	if err := bad.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSchedule(path); err == nil {
		t.Fatal("wrong schedule version accepted")
	}
	bad = *good
	bad.Spec.Proto = ""
	if err := bad.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSchedule(path); err == nil {
		t.Fatal("schedule without a protocol accepted")
	}
}

// TestSpecFileRoundTrip: the sbsoak → sbcheck hand-off format.
func TestSpecFileRoundTrip(t *testing.T) {
	spec := DefaultSpec("TCC")
	spec.Cores, spec.Unordered = 3, true
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := spec.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != spec {
		t.Fatalf("round trip changed the spec:\n got %+v\nwant %+v", got, spec)
	}
	if _, err := LoadSpec(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing spec file accepted")
	}
}

// TestSpecRejectsShards: a spec copied from a sharded sweep config must fail
// at load with the typed error — the checker only drives the serial engine.
func TestSpecRejectsShards(t *testing.T) {
	spec := DefaultSpec("ScalableBulk")
	spec.Shards = 4
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := spec.Save(path); err != nil {
		t.Fatal(err)
	}
	_, err := LoadSpec(path)
	var se *SpecShardsError
	if !errors.As(err, &se) {
		t.Fatalf("LoadSpec(shards=4) = %v, want *SpecShardsError", err)
	}
	if se.Shards != 4 || se.Path != path {
		t.Fatalf("error fields = %+v, want shards 4 at %s", se, path)
	}
}

// TestReductionSoundness cross-checks the DPOR reduction against the
// unreduced exploration on the same space: identical verdict, and the
// reduction must not have explored more schedules than the full walk.
func TestReductionSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("two full exhaustions")
	}
	reduced, err := Explore(DefaultOptions("SEQ"))
	if err != nil {
		t.Fatal(err)
	}
	full := DefaultOptions("SEQ")
	full.NoReduce = true
	unreduced, err := Explore(full)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("reduced: %s", reduced.Summary())
	t.Logf("unreduced: %s", unreduced.Summary())
	if reduced.Clean() != unreduced.Clean() {
		t.Fatalf("reduction changed the verdict: reduced clean=%v, unreduced clean=%v",
			reduced.Clean(), unreduced.Clean())
	}
	if unreduced.Outcome == "exhausted" && reduced.Outcome != "exhausted" {
		t.Error("full walk exhausted but the reduced walk did not")
	}
	if reduced.Runs > unreduced.Runs {
		t.Errorf("reduction explored more (%d) than the full walk (%d)", reduced.Runs, unreduced.Runs)
	}
}

// newTestNet builds a minimal live network for controller unit tests.
func newTestNet() *mesh.Network {
	eng := event.New()
	net := mesh.New(eng, mesh.Config{Nodes: 4, LinkLatency: 1})
	for i := 0; i < 4; i++ {
		net.Register(i, func(m *msg.Msg) {})
	}
	return net
}

func hold(c *controller, src, dst int) {
	c.Hold(mesh.Delivery{M: &msg.Msg{Kind: msg.SeqOccupy, Src: src, Dst: dst}})
}

// TestControllerFIFOShadowing: by default only the oldest pending delivery
// of each (src,dst) pair is enabled — the torus's per-pair ordering — and
// unordered mode lifts exactly that constraint.
func TestControllerFIFOShadowing(t *testing.T) {
	c := &controller{}
	hold(c, 0, 1)
	hold(c, 0, 1) // same pair: shadowed
	hold(c, 1, 0) // different pair: enabled

	if got := c.enabled(false, -1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("FIFO enabled = %v, want [0 2]", got)
	}
	if got := c.enabled(true, -1); len(got) != 3 {
		t.Fatalf("unordered enabled = %v, want all three", got)
	}
}

// TestControllerFairnessBound: a delivery passed over maxSkips times becomes
// the only enabled choice, so no schedule can starve a message forever.
func TestControllerFairnessBound(t *testing.T) {
	net := newTestNet()
	c := &controller{}
	hold(c, 0, 1)
	hold(c, 1, 0)
	hold(c, 2, 3)

	const maxSkips = 2
	// Deliver the newest twice; the passed-over entries accumulate skips.
	for i := 0; i < maxSkips; i++ {
		en := c.enabled(false, maxSkips)
		if len(en) != 3 {
			t.Fatalf("round %d: %d enabled, want 3 (skips below the bound)", i, len(en))
		}
		c.release(net, en, len(en)-1)
		hold(c, 2, 3) // replace the delivered message to keep three pending
	}
	// Both survivors are now at the bound; the oldest must be forced.
	en := c.enabled(false, maxSkips)
	if len(en) != 1 || en[0] != 0 {
		t.Fatalf("enabled = %v, want the starved oldest only [0]", en)
	}
	// Unlimited skips: no forcing.
	if en := c.enabled(false, -1); len(en) != 3 {
		t.Fatalf("maxSkips=-1 enabled = %v, want all three", en)
	}
}

// TestProfiles: the checking workloads exist and force what they claim.
func TestProfiles(t *testing.T) {
	ps := Profiles()
	conflict, ok := ps["conflict"]
	if !ok || conflict.ConflictFrac != 1 {
		t.Fatalf("conflict profile missing or not forcing conflicts: %+v", conflict)
	}
	free, ok := ps["free"]
	if !ok || free.SharedFrac != 0 {
		t.Fatalf("free profile missing or sharing lines: %+v", free)
	}
}
