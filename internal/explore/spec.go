// Spec files: a bare Spec is the "starting state" hand-off format between
// tools — sbsoak writes one for every failed sweep point, and sbcheck -spec
// explores from it (the checker cannot reproduce a fault-injected run, but it
// can exhaust the same protocol/workload shape the failure came from, with
// unordered mode standing in for the injector's delivery jitter).
package explore

import (
	"encoding/json"
	"fmt"
	"os"
)

// LoadSpec reads and validates a spec file.
func LoadSpec(path string) (Spec, error) {
	var s Spec
	b, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(b, &s); err != nil {
		return s, fmt.Errorf("explore: %s: %w", path, err)
	}
	if s.Proto == "" || s.Cores <= 0 || s.Chunks <= 0 {
		return s, fmt.Errorf("explore: %s: incomplete spec (need proto, cores, chunks)", path)
	}
	if s.Shards != 0 {
		return s, &SpecShardsError{Path: path, Shards: s.Shards}
	}
	return s.normalize(), nil
}

// Save writes the spec as indented JSON.
func (s Spec) Save(path string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
