// Micro-workloads for model checking: the differential suite's conflict-free
// and forced-conflict profiles scaled down until a 2-core run generates a
// few dozen protocol messages per chunk round — small enough to enumerate
// interleavings, rich enough to exercise occupation, invalidation, squash
// and retry paths.
package explore

import "scalablebulk/internal/workload"

// ConflictProfile makes every chunk write the single hot shared line, so
// concurrent chunks always conflict and commits must serialize — the
// maximum-contention micro-workload and the checking default.
func ConflictProfile() workload.Profile {
	return workload.Profile{
		Name: "MCConflict", Suite: "CHECK",
		ChunkInstr: 200, Accesses: 4, WriteFrac: 0.5,
		SharedFrac: 0.5, ScatterFrac: 0, ConflictFrac: 1, ReadHotFrac: 0,
		RunLen: 2, SharedPagesPerChunk: 1,
		TotalPrivatePages: 8, SharedPages: 2,
		PrivateSkew: 2, SharedSkew: 1, HotLines: 1,
	}
}

// FreeProfile keeps every chunk's footprint private to its thread: no
// shared pages, no hot lines. Commits may overlap freely; any squash or
// serialization stall under it is protocol-induced.
func FreeProfile() workload.Profile {
	return workload.Profile{
		Name: "MCFree", Suite: "CHECK",
		ChunkInstr: 200, Accesses: 4, WriteFrac: 0.5,
		SharedFrac: 0, ScatterFrac: 0, ConflictFrac: 0, ReadHotFrac: 0,
		RunLen: 2, SharedPagesPerChunk: 1,
		TotalPrivatePages: 8, SharedPages: 2,
		PrivateSkew: 2, SharedSkew: 1, HotLines: 0,
	}
}

// Profiles maps the checking profile names for CLI selection.
func Profiles() map[string]workload.Profile {
	return map[string]workload.Profile{
		"conflict": ConflictProfile(),
		"free":     FreeProfile(),
	}
}
