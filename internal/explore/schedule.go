// Replayable schedule files: a Schedule pins the machine spec and the choice
// sequence; Replay re-executes it bit-identically and verifies the recorded
// expectation. Counterexamples, the regression corpus under
// testdata/schedules/, and sbsoak escalation stubs all use this format.
package explore

import (
	"encoding/json"
	"fmt"
	"os"

	"scalablebulk/internal/check"
)

// ScheduleVersion is bumped whenever the schedule semantics change (choice
// encoding, horizon policy, digest composition).
const ScheduleVersion = 1

// Expect records what replaying the schedule must reproduce. For a
// counterexample: the violation kind (and invariant); for a clean schedule
// (regression corpus): the final-state digest. A zero Expect just replays
// without verification.
type Expect struct {
	// Kind is the expected violation kind, "" for a clean run.
	Kind string `json:"kind,omitempty"`
	// Invariant is the expected first invariant (1–5) for Kind "invariant".
	Invariant int `json:"invariant,omitempty"`
	// Digest is the expected final-state digest for clean runs (0 skips the
	// comparison — e.g. hand-written schedule stubs).
	Digest uint64 `json:"digest,omitempty"`
	// Steps is the expected total choice-step count (0 skips).
	Steps int `json:"steps,omitempty"`
}

// Schedule is the on-disk replay format (JSON).
type Schedule struct {
	Version int     `json:"version"`
	Spec    Spec    `json:"spec"`
	Choices []int   `json:"choices"`
	Expect  *Expect `json:"expect,omitempty"`
	// Note is a free-form provenance line ("minimized counterexample for
	// ...", "regression: PR 1 seqpro ghost occupancy", ...).
	Note string `json:"note,omitempty"`
}

// LoadSchedule reads and validates a schedule file.
func LoadSchedule(path string) (*Schedule, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Schedule
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("explore: %s: %w", path, err)
	}
	if s.Version != ScheduleVersion {
		return nil, fmt.Errorf("explore: %s: schedule version %d, want %d", path, s.Version, ScheduleVersion)
	}
	if s.Spec.Proto == "" || s.Spec.Cores <= 0 || s.Spec.Chunks <= 0 {
		return nil, fmt.Errorf("explore: %s: incomplete spec %+v", path, s.Spec)
	}
	s.Spec = s.Spec.normalize()
	return &s, nil
}

// Save writes the schedule as indented JSON.
func (s *Schedule) Save(path string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReplayResult is one schedule re-execution's outcome.
type ReplayResult struct {
	// Violation is nil for a clean run.
	Violation *Violation
	// Digest is the final-state digest of a clean run.
	Digest uint64
	// Steps is the total choice steps taken.
	Steps  int
	Dump   string
	Flight []string
}

// Replay re-executes the schedule and, when it carries an expectation,
// verifies the outcome reproduces it bit-identically: same violation kind
// and invariant, or same final-state digest and step count. A mismatch is
// returned as an error — the schedule no longer means what it was recorded
// to mean (a protocol change altered behavior under this interleaving).
func (s *Schedule) Replay() (*ReplayResult, error) {
	opts := Options{Spec: s.Spec.normalize(),
		MaxDepth: 2000, MaxRuns: 1, MaxStates: 1}
	e := &explorer{opts: opts}
	if s.Expect != nil && s.Expect.Kind == KindDivergence {
		// Divergence is relative to the default schedule's committed-write
		// multiset: re-derive the reference before replaying.
		ref, err := e.execute(nil, false)
		if err != nil {
			return nil, err
		}
		if ref.violation != nil {
			return nil, fmt.Errorf("explore: reference run failed (%s); cannot verify divergence", ref.violation)
		}
		e.refWrites = ref.writes
	}
	out, err := e.execute(s.Choices, false)
	if err != nil {
		return nil, err
	}
	if out.violation == nil && e.refWrites != nil {
		out.violation = e.checkDivergence(out)
	}
	rr := &ReplayResult{
		Violation: out.violation, Digest: out.digest, Steps: len(out.choices),
		Dump: out.dump, Flight: out.flight,
	}
	if s.Expect == nil {
		return rr, nil
	}
	want := s.Expect
	if want.Kind == "" {
		if out.violation != nil {
			return rr, fmt.Errorf("explore: replay expected a clean run, got %s", out.violation)
		}
		if want.Digest != 0 && out.digest != want.Digest {
			return rr, fmt.Errorf("explore: replay final-state digest %#x, recorded %#x: the run is no longer bit-identical",
				out.digest, want.Digest)
		}
		if want.Steps != 0 && len(out.choices) != want.Steps {
			return rr, fmt.Errorf("explore: replay took %d choice steps, recorded %d", len(out.choices), want.Steps)
		}
		return rr, nil
	}
	if out.violation == nil {
		return rr, fmt.Errorf("explore: replay expected a %s violation, got a clean run", want.Kind)
	}
	if out.violation.Kind != want.Kind {
		return rr, fmt.Errorf("explore: replay violation kind %q, recorded %q", out.violation.Kind, want.Kind)
	}
	if want.Invariant != 0 && int(out.violation.firstInvariant()) != want.Invariant {
		return rr, fmt.Errorf("explore: replay broke %v, recorded I%d",
			out.violation.firstInvariant(), want.Invariant)
	}
	return rr, nil
}

// invariantName is a convenience for reports.
func invariantName(i int) string { return check.Invariant(i).String() }
