// Counterexample minimization: shrink a failing schedule to the shortest
// failing prefix, then simplify the surviving choices — every trial is a
// fresh deterministic re-execution, so the minimized schedule provably still
// fails with the same violation class.
package explore

// minimizeBudget bounds re-executions spent shrinking one counterexample.
const minimizeBudget = 300

// minimize delta-debugs out's failing schedule. It returns the minimized
// choices and that schedule's outcome, or (nil, nil) if minimization could
// not reproduce the failure (the original is then reported as-is).
func (e *explorer) minimize(out *outcome) ([]int, *outcome) {
	orig := out.violation
	trials := 0
	fails := func(prefix []int) *outcome {
		if trials >= minimizeBudget {
			return nil
		}
		trials++
		o, err := e.execute(prefix, false)
		if err != nil {
			return nil
		}
		if o.violation == nil && orig.Kind == KindDivergence {
			// Divergence is detected against the reference multiset, which
			// execute does not consult — recompute it for the trial.
			o.violation = e.checkDivergence(o)
		}
		if o.violation == nil || !sameFailure(orig, o.violation) {
			return nil
		}
		return o
	}

	best := trimZeros(out.choices)
	bestOut := fails(best)
	if bestOut == nil {
		// The recorded choices should reproduce by determinism; if the
		// budget or a non-reproducing trim got in the way, report the
		// original run unminimized.
		return nil, nil
	}

	// Shortest failing prefix: binary search on the truncation point. The
	// property is monotone in practice (a longer prescribed prefix of the
	// same failing schedule still fails); the final verification run keeps
	// us honest if it is not.
	lo, hi := 0, len(best)
	var cut []int
	var cutOut *outcome
	for lo < hi {
		mid := (lo + hi) / 2
		if o := fails(best[:mid]); o != nil {
			hi = mid
			cut, cutOut = best[:mid], o
		} else {
			lo = mid + 1
		}
	}
	if cutOut != nil {
		best, bestOut = cut, cutOut
	}

	// Greedy simplification: try zeroing each nonzero choice (a zero is the
	// default "oldest pending", the least surprising delivery).
	for i := 0; i < len(best); i++ {
		if best[i] == 0 {
			continue
		}
		trial := append([]int(nil), best...)
		trial[i] = 0
		trial = trimZeros(trial)
		if o := fails(trial); o != nil {
			best, bestOut = trial, o
			if i >= len(best) {
				break
			}
		}
	}
	return best, bestOut
}

// trimZeros drops trailing zero choices: the default continuation re-derives
// them, so they carry no information.
func trimZeros(c []int) []int {
	n := len(c)
	for n > 0 && c[n-1] == 0 {
		n--
	}
	return append([]int(nil), c[:n]...)
}
