// Package explore is a systematic-concurrency-testing model checker for the
// registered commit protocols: it drives small configurations (2–4 cores ×
// 2–3 chunks) through the mesh-message interleavings a protocol can
// experience, checking the I1–I5 invariants, committed-write serializability
// and quiescence at every step, and emitting a minimized, replayable
// counterexample schedule when anything breaks.
//
// The state space is the tree of scheduling choices: whenever undelivered
// commit-protocol messages are pending and the machine has nothing nearer to
// do, the explorer picks which pending message to deliver next. A schedule
// is the sequence of choice indices; re-executing a schedule reproduces the
// run bit-identically because everything else in the simulator is
// deterministic (the same property the fault interposer's replayability
// rests on). Exploration is depth-first over schedule prefixes with a
// state-digest visited set, DPOR-style partial-order reduction over
// statically commuting deliveries, and depth/run budgets with honest
// "bounded-exhaustive" reporting when a budget trips. See DESIGN.md §13.
package explore

import (
	"fmt"
	"strings"

	"scalablebulk/internal/check"
	"scalablebulk/internal/event"
	"scalablebulk/internal/workload"
)

// Spec pins everything a run needs to be reconstructed: the machine shape
// and the workload. It is embedded verbatim in schedule files, so a recorded
// counterexample replays against the exact configuration that produced it.
type Spec struct {
	Proto  string `json:"proto"`
	Cores  int    `json:"cores"`
	Chunks int    `json:"chunks"` // chunks per core
	Seed   int64  `json:"seed"`
	Warmup int    `json:"warmup"` // warm-up chunks per core
	// Profile is the full workload model (all fields are scalars).
	Profile workload.Profile `json:"profile"`
	// Horizon is the engine-event lookahead that separates "let the machine
	// compute" from "open a scheduling choice point" (see run.go). It is
	// part of the schedule semantics and therefore of the Spec.
	Horizon event.Time `json:"horizon"`
	// MaxCycles bounds one run's simulated time.
	MaxCycles event.Time `json:"max_cycles"`
	// Unordered lifts the per-(src,dst) FIFO delivery constraint, exploring
	// reorderings of same-pair messages too. Off by default: the torus
	// routes same-pair messages over the identical dimension-order path and
	// each later message queues behind the earlier one's link reservations,
	// so the real network is per-pair FIFO — unordered mode over-approximates
	// it (useful against protocols that should not depend on ordering, e.g.
	// TCC's phase-1/phase-2 atomicity argument explicitly does).
	Unordered bool `json:"unordered,omitempty"`
	// MaxSkips is the fairness bound: a pending delivery that has been
	// enabled-but-passed-over this many times becomes the only enabled
	// choice. Without it the DFS converges on starvation schedules (never
	// deliver message X, retry forever) and reports vacuous livelocks no
	// real network exhibits. Negative means unlimited; 0 selects the
	// default.
	MaxSkips int `json:"max_skips,omitempty"`
	// Shards exists only so a spec hand-written from a sweep config fails
	// loudly instead of silently: the checker owns the event loop (its
	// choice points ARE the scheduler), so it always runs the serial
	// engine, and LoadSpec rejects any spec requesting otherwise with
	// *SpecShardsError. Results never depend on the shard count (that is
	// the sharded engine's contract), so nothing is lost by pinning 0.
	Shards int `json:"shards,omitempty"`
}

// SpecShardsError reports a spec file that requested a sharded execution
// engine. The model checker single-steps the event loop through its own
// scheduler, so Spec.Shards must be 0.
type SpecShardsError struct {
	Path   string
	Shards int
}

func (e *SpecShardsError) Error() string {
	return fmt.Sprintf("explore: %s: spec requests shards=%d; the checker drives the serial engine only (set shards to 0 or drop the field)",
		e.Path, e.Shards)
}

// DefaultMaxSkips bounds how often one pending message may be passed over.
// 3 keeps the 2-core × 2-chunk space fully exhaustible for every registered
// protocol in minutes while still reordering every pair of concurrent
// commit messages; raise it for a stronger (slower) adversary.
const DefaultMaxSkips = 3

// DefaultHorizon comfortably exceeds every near event the machine generates
// between deliveries (memory at +300, capped commit retry backoff under ~2k)
// while staying far below the 200k commit watchdog, so watchdogs fire only
// when no message is in flight — deterministic stall manifestation.
const DefaultHorizon event.Time = 8192

// DefaultSpec returns the standard tiny checking configuration for a
// protocol: 2 cores × 2 chunks on the forced-conflict micro-profile.
func DefaultSpec(proto string) Spec {
	return Spec{
		Proto: proto, Cores: 2, Chunks: 2, Seed: 1, Warmup: 2,
		Profile:   ConflictProfile(),
		Horizon:   DefaultHorizon,
		MaxCycles: 500_000_000,
		MaxSkips:  DefaultMaxSkips,
	}
}

// normalize fills zero fields with defaults so hand-written schedule files
// can omit them.
func (s Spec) normalize() Spec {
	if s.Horizon == 0 {
		s.Horizon = DefaultHorizon
	}
	if s.MaxCycles == 0 {
		s.MaxCycles = 500_000_000
	}
	if s.Profile.Accesses == 0 {
		s.Profile = ConflictProfile()
	}
	if s.MaxSkips == 0 {
		s.MaxSkips = DefaultMaxSkips
	}
	return s
}

// Options configures an exploration.
type Options struct {
	Spec
	// MaxDepth bounds the scheduling choice steps of one run; exceeding it
	// reports a livelock (no quiescence within the bound). It must be far
	// above any healthy run's depth — see DefaultOptions.
	MaxDepth int
	// MaxRuns bounds the number of schedules executed; hitting it makes the
	// exploration bounded rather than exhaustive.
	MaxRuns int
	// MaxStates bounds the visited-digest set; hitting it likewise.
	MaxStates int
	// NoReduce disables partial-order reduction and explores every enabled
	// delivery at every choice point (the exhaustive cross-check for the
	// reduction's soundness).
	NoReduce bool
}

// DefaultOptions returns the standard budget for proto: deep enough that a
// healthy 2×2 run never trips MaxDepth, large enough that the default 2×2
// space exhausts for every registered protocol (the CI smoke passes smaller
// budgets and accepts the "bounded" outcome).
func DefaultOptions(proto string) Options {
	return Options{
		Spec:      DefaultSpec(proto),
		MaxDepth:  2000,
		MaxRuns:   150_000,
		MaxStates: 500_000,
	}
}

// Violation kinds a run can end with.
const (
	KindInvariant  = "invariant"  // an I1–I5 invariant broke (check package)
	KindDeadlock   = "deadlock"   // no events, no pending messages, work left
	KindLivelock   = "livelock"   // state recurrence or depth/cycle bound hit
	KindDivergence = "divergence" // committed writes differ from the reference schedule
	KindQuiescence = "quiescence" // protocol state left over after completion
)

// Violation describes why a schedule failed.
type Violation struct {
	Kind string `json:"kind"`
	// Step is the choice step at which the violation was detected.
	Step int    `json:"step"`
	Msg  string `json:"msg"`
	// Invariants carries the individual checker violations for
	// KindInvariant.
	Invariants []check.Violation `json:"invariants,omitempty"`
}

func (v *Violation) String() string {
	return fmt.Sprintf("%s at step %d: %s", v.Kind, v.Step, v.Msg)
}

// firstInvariant returns the invariant of the first checker violation, or 0.
func (v *Violation) firstInvariant() check.Invariant {
	if len(v.Invariants) > 0 {
		return v.Invariants[0].Inv
	}
	return 0
}

// sameFailure reports whether b reproduces a's failure class: the same kind,
// and for invariant violations the same first invariant. Minimization uses
// it so shrinking cannot wander onto a different bug.
func sameFailure(a, b *Violation) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Kind == b.Kind && a.firstInvariant() == b.firstInvariant()
}

// Report is the exploration result — crash-bundle-style, JSON-serializable.
type Report struct {
	Spec    Spec   `json:"spec"`
	Outcome string `json:"outcome"` // "exhausted", "bounded", or "violation"
	// BoundHit names the budget that tripped for "bounded".
	BoundHit  string     `json:"bound_hit,omitempty"`
	Runs      int        `json:"runs"`    // schedules executed
	Deepest   int        `json:"deepest"` // longest run in choice steps
	States    int        `json:"states"`  // distinct choice-point digests
	Pruned    int        `json:"pruned"`  // choice points skipped via the visited set
	Reduced   bool       `json:"reduced"` // partial-order reduction was on
	Violation *Violation `json:"violation,omitempty"`
	// Schedule is the minimized counterexample (replayable).
	Schedule *Schedule `json:"schedule,omitempty"`
	// MinimizedFrom is the failing schedule's length before minimization.
	MinimizedFrom int `json:"minimized_from,omitempty"`
	// Dump is the machine state at the violation; Flight the flight
	// recorder's tail (oldest first).
	Dump   string   `json:"dump,omitempty"`
	Flight []string `json:"flight,omitempty"`
}

// Clean reports whether the exploration found no violation.
func (r *Report) Clean() bool { return r.Violation == nil }

// Summary renders a one-paragraph human summary.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %dc×%dch: %s (%d runs, %d states, deepest %d",
		r.Spec.Proto, r.Spec.Cores, r.Spec.Chunks, r.Outcome, r.Runs, r.States, r.Deepest)
	if r.Pruned > 0 {
		fmt.Fprintf(&b, ", %d pruned", r.Pruned)
	}
	fmt.Fprintf(&b, ")")
	if r.BoundHit != "" {
		fmt.Fprintf(&b, " [budget: %s]", r.BoundHit)
	}
	if r.Violation != nil {
		fmt.Fprintf(&b, "\n  violation: %s", r.Violation)
		if r.Schedule != nil {
			fmt.Fprintf(&b, "\n  counterexample: %d choice(s) (minimized from %d): %v",
				len(r.Schedule.Choices), r.MinimizedFrom, r.Schedule.Choices)
		}
	}
	return b.String()
}

// Explore runs the model checker over opts and returns the report. It is
// deterministic: the same options always explore the same schedules in the
// same order and return the same report.
func Explore(opts Options) (*Report, error) {
	opts.Spec = opts.Spec.normalize()
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 2000
	}
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = 4000
	}
	if opts.MaxStates <= 0 {
		opts.MaxStates = 200_000
	}
	e := &explorer{opts: opts}
	return e.run()
}

// explorer is one exploration's mutable state.
type explorer struct {
	opts    Options
	visited map[uint64]bool // expanded choice-point digests
	pruned  int
	runs    int
	deepest int

	// reference outcome (default schedule): committed-write multiset.
	refWrites map[writeKey]int
}

// run is the DFS driver: execute schedule prefixes, enqueue unexplored
// branches, stop at the first violation (minimizing it) or when the prefix
// stack and budgets allow no more work.
func (e *explorer) run() (*Report, error) {
	e.visited = make(map[uint64]bool)
	rep := &Report{Spec: e.opts.Spec, Reduced: !e.opts.NoReduce}

	// Reference run: the all-default schedule fixes the committed-write
	// multiset every other schedule must serialize to.
	ref, err := e.execute(nil, true)
	if err != nil {
		return nil, err
	}
	e.runs++
	e.refWrites = ref.writes
	if ref.violation != nil {
		return e.fail(rep, ref)
	}

	// DFS over schedule prefixes. The stack is LIFO so exploration digs
	// deep before wide, keeping the prefix cache-warm in the visited set.
	stack := [][]int{}
	e.expand(ref, 0, &stack)
	for len(stack) > 0 {
		if e.runs >= e.opts.MaxRuns {
			rep.BoundHit = "max runs"
			break
		}
		if len(e.visited) >= e.opts.MaxStates {
			rep.BoundHit = "max states"
			break
		}
		prefix := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out, err := e.execute(prefix, true)
		if err != nil {
			return nil, err
		}
		e.runs++
		if out.violation != nil {
			return e.fail(rep, out)
		}
		if div := e.checkDivergence(out); div != nil {
			out.violation = div
			return e.fail(rep, out)
		}
		e.expand(out, len(prefix), &stack)
	}

	rep.Runs = e.runs
	rep.Deepest = e.deepest
	rep.States = len(e.visited)
	rep.Pruned = e.pruned
	if rep.BoundHit == "" {
		rep.Outcome = "exhausted"
	} else {
		rep.Outcome = "bounded"
	}
	return rep, nil
}

// expand enqueues the unexplored branches of out's choice points at depth ≥
// from (shallower points were expanded by the run that created the prefix).
// A choice point whose state digest was already expanded anywhere in the
// tree is pruned: the same time-free machine state yields the same subtree.
func (e *explorer) expand(out *outcome, from int, stack *[][]int) {
	for d := from; d < len(out.points); d++ {
		pt := out.points[d]
		if e.visited[pt.digest] {
			e.pruned++
			continue
		}
		e.visited[pt.digest] = true
		for i := len(pt.branches) - 1; i >= 0; i-- {
			alt := pt.branches[i]
			if alt == out.choices[d] {
				continue
			}
			prefix := make([]int, d+1)
			copy(prefix, out.choices[:d])
			prefix[d] = alt
			*stack = append(*stack, prefix)
		}
	}
}

// checkDivergence compares a completed run's committed writes against the
// reference schedule's: the multiset is a pure function of (profile, seed,
// chunk count) under a serializable memory model, so any difference means a
// schedule changed which writes committed — lost, duplicated or
// misattributed updates.
func (e *explorer) checkDivergence(out *outcome) *Violation {
	if diff := diffWrites(e.refWrites, out.writes); diff != "" {
		return &Violation{
			Kind: KindDivergence, Step: len(out.choices),
			Msg: "committed-write multiset differs from the default schedule:" + diff,
		}
	}
	return nil
}

// fail minimizes the failing schedule and builds the violation report.
func (e *explorer) fail(rep *Report, out *outcome) (*Report, error) {
	rep.Runs = e.runs
	rep.Deepest = e.deepest
	rep.States = len(e.visited)
	rep.Pruned = e.pruned
	rep.Outcome = "violation"
	rep.Violation = out.violation
	rep.Dump = out.dump
	rep.Flight = out.flight
	rep.MinimizedFrom = len(out.choices)

	min, minOut := e.minimize(out)
	if minOut != nil {
		// Report the minimized run's view of the failure (same class, and
		// its dump shows the shortest path to it).
		rep.Violation = minOut.violation
		rep.Dump = minOut.dump
		rep.Flight = minOut.flight
		rep.Schedule = e.schedule(min, minOut)
	} else {
		rep.Schedule = e.schedule(out.choices, out)
	}
	return rep, nil
}

// schedule builds the replayable schedule file content for choices/out.
func (e *explorer) schedule(choices []int, out *outcome) *Schedule {
	s := &Schedule{
		Version: ScheduleVersion,
		Spec:    e.opts.Spec,
		Choices: append([]int(nil), choices...),
		Expect: &Expect{
			Digest: out.digest,
			Steps:  len(out.choices),
		},
	}
	if out.violation != nil {
		s.Expect.Kind = out.violation.Kind
		s.Expect.Invariant = int(out.violation.firstInvariant())
	}
	return s
}

// diffWrites summarizes the first differences between two write multisets
// (same shape as the differential suite's comparison); "" when equal.
func diffWrites(a, b map[writeKey]int) string {
	var out string
	n := 0
	for k, va := range a {
		if vb := b[k]; va != vb && n < 5 {
			out += fmt.Sprintf(" line %#x by core %d: %d vs %d;", uint64(k.line), k.writer, va, vb)
			n++
		}
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok && n < 5 {
			out += fmt.Sprintf(" line %#x by core %d: absent vs %d;", uint64(k.line), k.writer, vb)
			n++
		}
	}
	return out
}
